// Thread sweep over the morsel-driven parallel executor: scan+filter,
// scan+filter+join, aggregation, sort and distinct workloads planned at
// parallelism 1 / 2 / 4 / 8. Parallelism 1 is the legacy serial tree (the
// baseline the speedup is measured against); the oracle tests guarantee
// the parallel plans return byte-identical results, so the sweep measures
// pure execution-layer scaling. Emits BENCH_query.json alongside the
// console report (see bench_util.h / check_bench_json.py).

#include <benchmark/benchmark.h>

#include <string>
#include <variant>

#include "bench/bench_util.h"
#include "exec/metrics.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace insightnotes::bench {
namespace {

constexpr size_t kSpecies = 256;          // One bird row per species.
constexpr size_t kAnnotationsPerTuple = 12;
constexpr size_t kMorselSize = 32;        // 256 rows -> 8 morsels.

/// Plans `text` at the given parallelism and drains the tree directly
/// (bypassing Engine::Execute so repeated iterations don't grow the
/// zoom-in cache).
size_t RunQuery(core::Engine* engine, const std::string& text, size_t parallelism) {
  sql::Statement statement = Check(sql::Parse(text), "parse");
  auto* select = std::get_if<sql::SelectStatement>(&statement);
  if (select == nullptr) std::abort();
  sql::PlannerOptions options;
  options.parallelism = parallelism;
  options.morsel_size = kMorselSize;
  auto plan = Check(sql::PlanSelect(*select, engine, options), "plan");
  Check(plan->Open(), "open");
  core::AnnotatedTuple tuple;
  size_t rows = 0;
  while (Check(plan->Next(&tuple), "next")) ++rows;
  return rows;
}

size_t SumPrunedRows(const exec::PlanMetrics& node) {
  size_t total = static_cast<size_t>(node.metrics.rows_pruned);
  for (const exec::PlanMetrics& child : node.children) total += SumPrunedRows(child);
  return total;
}

/// One untimed run of `text` that drains the plan and then snapshots the
/// pruning counters — the timed loop cannot keep the plan alive.
size_t PrunedRowsOf(core::Engine* engine, const std::string& text, size_t parallelism) {
  sql::Statement statement = Check(sql::Parse(text), "parse");
  auto* select = std::get_if<sql::SelectStatement>(&statement);
  if (select == nullptr) std::abort();
  sql::PlannerOptions options;
  options.parallelism = parallelism;
  options.morsel_size = kMorselSize;
  auto plan = Check(sql::PlanSelect(*select, engine, options), "plan");
  Check(plan->Open(), "open");
  core::AnnotatedTuple tuple;
  while (Check(plan->Next(&tuple), "next")) {
  }
  return SumPrunedRows(exec::CollectPlanMetrics(plan.get()));
}

void BM_ParallelScanFilter(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  const std::string query =
      "SELECT b.id, b.name, b.weight FROM birds b WHERE b.weight > 1.0";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(built->engine.get(), query, parallelism));
  }
  state.counters["threads"] = static_cast<double>(parallelism);
  state.SetLabel("scan+filter/p" + std::to_string(parallelism));
}

void BM_ParallelScanFilterJoin(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  const std::string query =
      "SELECT l.id, l.name, r.id FROM birds l, birds r "
      "WHERE l.family = r.family AND l.weight > 1.0";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(built->engine.get(), query, parallelism));
  }
  state.counters["threads"] = static_cast<double>(parallelism);
  state.SetLabel("scan+filter+join/p" + std::to_string(parallelism));
}

void BM_ParallelAggregate(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  // Pre-aggregation runs inside the workers; the merge above the gather
  // folds the per-worker group tables (and their partially-merged
  // summaries) in morsel order.
  const std::string query =
      "SELECT b.family, COUNT(*), SUM(b.weight), AVG(b.weight), MIN(b.name) "
      "FROM birds b GROUP BY b.family";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(built->engine.get(), query, parallelism));
  }
  state.counters["threads"] = static_cast<double>(parallelism);
  state.SetLabel("aggregate/p" + std::to_string(parallelism));
}

void BM_ParallelSort(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  const std::string query =
      "SELECT b.id, b.name, b.weight FROM birds b "
      "ORDER BY b.weight DESC, b.id";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(built->engine.get(), query, parallelism));
  }
  state.counters["threads"] = static_cast<double>(parallelism);
  state.SetLabel("sort/p" + std::to_string(parallelism));
}

// The top-k family runs on a wider table (more rows, lighter annotation
// load): 64 morsels give the workers real scan parallelism to amortize the
// pool dispatch latency, and n >> k makes the pruning ratio meaningful.
constexpr size_t kTopKSpecies = 2048;
constexpr size_t kTopKAnnotationsPerTuple = 4;

void BM_ParallelTopK(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  size_t k = static_cast<size_t>(state.range(1));
  BuiltWorkload* built = GetWorkload(kTopKSpecies, kTopKAnnotationsPerTuple);
  // ORDER BY + LIMIT takes the pushed-down top-k path: each worker keeps a
  // size-k heap and skips rows behind the shared k-th-candidate bound, so
  // the parallel entries measure heap + pruning cost, not a full sort.
  const std::string query =
      "SELECT b.id, b.name, b.weight FROM birds b "
      "ORDER BY b.weight DESC, b.id LIMIT " + std::to_string(k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(built->engine.get(), query, parallelism));
  }
  state.counters["threads"] = static_cast<double>(parallelism);
  state.counters["limit_k"] = static_cast<double>(k);
  state.counters["rows_pruned"] = static_cast<double>(
      PrunedRowsOf(built->engine.get(), query, parallelism));
  state.SetLabel("topk/p" + std::to_string(parallelism) + "/k" + std::to_string(k));
}

void BM_ParallelDistinct(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  const std::string query = "SELECT DISTINCT b.family FROM birds b";
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(built->engine.get(), query, parallelism));
  }
  state.counters["threads"] = static_cast<double>(parallelism);
  state.SetLabel("distinct/p" + std::to_string(parallelism));
}

BENCHMARK(BM_ParallelAggregate)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ParallelSort)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
// k sweep kept to {8, 64}: with at most 8 workers, 8-worker heaps of 8
// retain at most 64 rows, so rows_pruned is provably non-increasing in k
// at every thread count — check_bench_json.py enforces exactly that.
BENCHMARK(BM_ParallelTopK)
    ->Args({1, 8})->Args({2, 8})->Args({4, 8})->Args({8, 8})
    ->Args({1, 64})->Args({2, 64})->Args({4, 64})->Args({8, 64})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ParallelDistinct)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ParallelScanFilter)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_ParallelScanFilterJoin)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace insightnotes::bench

int main(int argc, char** argv) {
  return insightnotes::bench::RunBenchmarksWithJsonReport(argc, argv,
                                                          "BENCH_query.json");
}
