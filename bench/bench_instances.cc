// Experiment E4 — scalability w.r.t. the number of summary instances
// linked to a relation (Section 2.3): annotation-insert throughput and
// query-time propagation cost as 1..16 instances maintain summaries on the
// same table.
//
// Expected shape: cost grows roughly linearly with the number of linked
// instances (each maintains its own objects), with classifier instances
// cheapest and cluster instances steepest.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "exec/projection.h"
#include "workload/annotation_gen.h"

namespace insightnotes::bench {
namespace {

std::unique_ptr<core::Engine> EngineWithKInstances(size_t k, bool clusters) {
  auto engine = std::make_unique<core::Engine>();
  Check(engine->Init(), "init");
  workload::WorkloadConfig config;
  config.num_species = 8;
  config.annotations_per_tuple = 0;
  config.with_classifier1 = false;
  config.with_classifier2 = false;
  config.with_cluster = false;
  config.with_snippet = false;
  workload::WorkloadBuilder builder(config);
  Check(builder.BuildBase(engine.get()), "base");
  for (size_t i = 0; i < k; ++i) {
    std::string name = "inst" + std::to_string(i);
    if (clusters) {
      Check(engine->RegisterInstance(core::SummaryInstance::MakeCluster(name, 0.35)),
            "register");
    } else {
      auto instance = core::SummaryInstance::MakeClassifier(
          name, {"Behavior", "Disease", "Anatomy", "Other"});
      for (const auto& [label, text] :
           workload::AnnotationGenerator::ClassBird1Training()) {
        Check(instance->classifier()->Train(label, text), "train");
      }
      Check(engine->RegisterInstance(std::move(instance)), "register");
    }
    Check(engine->LinkInstance(name, "birds"), "link");
  }
  return engine;
}

void BM_InsertThroughputVsInstances(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  bool clusters = state.range(1) == 1;
  auto engine = EngineWithKInstances(k, clusters);
  workload::AnnotationGenerator gen(31);
  const auto& species = workload::CuratedSpecies()[0];
  Random rng(5);
  for (auto _ : state) {
    state.PauseTiming();
    auto g = gen.GenerateComment(species);
    core::AnnotateSpec spec;
    spec.table = "birds";
    spec.row = rng.Uniform(8);
    spec.body = g.annotation.body;
    state.ResumeTiming();
    Check(engine->Annotate(spec), "annotate");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(std::string(clusters ? "cluster" : "classifier") + " x" +
                 std::to_string(k));
}
BENCHMARK(BM_InsertThroughputVsInstances)
    ->ArgsProduct({{1, 2, 4, 8, 16}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// Batched parallel ingest with k instances linked: thread sweep at a fixed
/// instance count. Shows how much of the per-instance maintenance cost the
/// row-sharded ingest path reclaims as workers are added.
void BM_BatchInsertVsInstancesThreads(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  bool clusters = state.range(1) == 1;
  constexpr size_t kInstances = 4;
  constexpr size_t kBatchSize = 256;

  workload::AnnotationGenerator gen(41);
  const auto& species = workload::CuratedSpecies();
  std::vector<core::AnnotateSpec> specs;
  specs.reserve(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    auto g = gen.GenerateComment(species[i % species.size()]);
    core::AnnotateSpec spec;
    spec.table = "birds";
    spec.row = static_cast<rel::RowId>(i % 8);
    spec.body = g.annotation.body;
    specs.push_back(std::move(spec));
  }

  for (auto _ : state) {
    state.PauseTiming();
    auto engine = EngineWithKInstances(kInstances, clusters);
    state.ResumeTiming();
    Check(engine->AnnotateBatch(specs, {.num_threads = threads}), "batch");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatchSize));
  state.SetLabel(std::string(clusters ? "cluster" : "classifier") + " x" +
                 std::to_string(kInstances) + " threads=" +
                 std::to_string(threads));
}
BENCHMARK(BM_BatchInsertVsInstancesThreads)
    ->ArgsProduct({{1, 2, 4, 8}, {0, 1}})
    ->Iterations(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_QueryCostVsInstances(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));
  auto engine = EngineWithKInstances(k, /*clusters=*/false);
  // 50 annotations per row.
  workload::AnnotationGenerator gen(37);
  const auto& species = workload::CuratedSpecies()[0];
  for (rel::RowId row = 0; row < 8; ++row) {
    for (int i = 0; i < 50; ++i) {
      auto g = gen.GenerateComment(species);
      core::AnnotateSpec spec;
      spec.table = "birds";
      spec.row = row;
      spec.body = g.annotation.body;
      Check(engine->Annotate(spec), "annotate");
    }
  }
  for (auto _ : state) {
    auto scan = Check(engine->MakeScan("birds", "b"), "scan");
    Check(scan->Open(), "open");
    core::AnnotatedTuple t;
    size_t rows = 0;
    while (Check(scan->Next(&t), "next")) ++rows;
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel("instances=" + std::to_string(k));
}
BENCHMARK(BM_QueryCostVsInstances)->Arg(1)->Arg(4)->Arg(16)->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace insightnotes::bench

BENCHMARK_MAIN();
