// Experiment E3 — zoom-in performance under the result cache (Section 2.2).
//
// A pool of query results with heterogeneous sizes and recomputation costs
// competes for a limited disk-backed cache; zoom-in references follow a
// Zipf-skewed pattern. Policies compared: no cache, LRU, LFU and the
// paper's RCO.
//
// Expected shape: any cache beats re-execution by orders of magnitude on
// hits; under budget pressure with mixed costs/sizes, RCO achieves a
// better effective latency than LRU/LFU because it preferentially keeps
// small, expensive-to-recompute results.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "common/random.h"
#include "core/rco_cache.h"

namespace insightnotes::bench {
namespace {

/// A synthetic result snapshot of `rows` rows and per-row payload bytes.
core::ResultSnapshot MakeSnapshot(size_t rows, size_t row_bytes) {
  core::ResultSnapshot snapshot;
  snapshot.column_names = {"id", "payload"};
  for (size_t r = 0; r < rows; ++r) {
    core::RowSnapshot row;
    row.tuple = rel::Tuple({rel::Value(static_cast<int64_t>(r)),
                            rel::Value(std::string(row_bytes, 'x'))});
    core::SummarySnapshot s;
    s.instance = "ClassBird1";
    s.rendered = "[(Behavior, 3)]";
    s.components.push_back(core::ComponentSnapshot{"Behavior", {1, 2, 3}});
    row.summaries.push_back(std::move(s));
    snapshot.rows.push_back(std::move(row));
  }
  return snapshot;
}

struct ResultPoolEntry {
  core::ResultSnapshot snapshot;
  double cost_seconds;  // Simulated recompute cost.
  size_t size;
};

std::vector<ResultPoolEntry> MakeResultPool(size_t n, uint64_t seed) {
  Random rng(seed);
  std::vector<ResultPoolEntry> pool;
  pool.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    ResultPoolEntry entry;
    // Anti-correlated mix: small results tend to be expensive (complex
    // aggregations), large results cheap (scans) — the regime where RCO's
    // complexity/overhead terms matter.
    bool small_expensive = rng.Bernoulli(0.5);
    size_t rows = small_expensive ? 2 + rng.Uniform(4) : 40 + rng.Uniform(60);
    entry.cost_seconds = small_expensive ? 0.05 + rng.NextDouble() * 0.2
                                         : 0.001 + rng.NextDouble() * 0.004;
    entry.snapshot = MakeSnapshot(rows, 256);
    entry.size = entry.snapshot.SizeBytes();
    pool.push_back(std::move(entry));
  }
  return pool;
}

/// Simulated zoom-in session: `kReferences` Zipf-skewed references over the
/// result pool. A miss "re-executes" (we charge the entry's cost as counted
/// simulated work) and re-admits the snapshot. Reports effective simulated
/// latency per zoom-in.
void BM_ZoomInPolicy(benchmark::State& state) {
  auto policy = static_cast<core::CachePolicy>(state.range(0));
  size_t budget_kb = static_cast<size_t>(state.range(1));
  constexpr size_t kResults = 64;
  constexpr size_t kReferences = 512;

  auto pool = MakeResultPool(kResults, 99);
  double total_cost = 0.0;
  uint64_t total_hits = 0;
  uint64_t total_refs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    core::ZoomInCache cache(policy, budget_kb * 1024);
    Check(cache.Init(), "cache init");
    Random rng(7);
    // Warm: admit everything once (results were executed once by the user).
    for (size_t i = 0; i < pool.size(); ++i) {
      Check(cache.Put(i, pool[i].snapshot, pool[i].cost_seconds), "put");
    }
    double session_cost = 0.0;
    state.ResumeTiming();
    for (size_t r = 0; r < kReferences; ++r) {
      size_t target = rng.Zipf(kResults, 1.0);
      auto snapshot = cache.Get(target);
      if (!snapshot.ok()) {
        // Miss: simulated re-execution cost, then re-admit.
        session_cost += pool[target].cost_seconds;
        Check(cache.Put(target, pool[target].snapshot, pool[target].cost_seconds),
              "readmit");
      }
      benchmark::DoNotOptimize(snapshot.ok());
    }
    state.PauseTiming();
    total_cost += session_cost;
    total_hits += cache.stats().hits;
    total_refs += kReferences;
    state.ResumeTiming();
  }
  state.counters["sim_reexec_s_per_session"] =
      benchmark::Counter(total_cost / static_cast<double>(state.iterations()));
  state.counters["hit_ratio"] =
      benchmark::Counter(static_cast<double>(total_hits) / total_refs);
  state.SetLabel(std::string(core::CachePolicyToString(policy)) + "/" +
                 std::to_string(budget_kb) + "KB");
}
BENCHMARK(BM_ZoomInPolicy)
    ->ArgsProduct({{static_cast<int>(core::CachePolicy::kNone),
                    static_cast<int>(core::CachePolicy::kLru),
                    static_cast<int>(core::CachePolicy::kLfu),
                    static_cast<int>(core::CachePolicy::kRco)},
                   {64, 256, 1024}})
    ->Unit(benchmark::kMillisecond);

/// Eviction-heavy admission at a steady population of `n` live entries:
/// every Put displaces exactly one victim, so the measured cost is dominated
/// by victim selection. Regression guard for the PickVictim normalization
/// pre-pass — RCO score maxima are now hoisted to one O(n) scan per
/// eviction, where the previous code recomputed them per candidate, making
/// each eviction O(n^2); before the fix this bench degraded ~n times faster
/// than linearly as `n` grows.
void BM_EvictionHeavyPut(benchmark::State& state) {
  auto policy = static_cast<core::CachePolicy>(state.range(0));
  size_t n = static_cast<size_t>(state.range(1));

  core::ResultSnapshot snapshot = MakeSnapshot(/*rows=*/1, /*row_bytes=*/64);
  size_t entry_size = snapshot.SizeBytes();
  // Budget fits exactly n entries: the (n+1)-th admission must evict.
  core::ZoomInCache cache(policy, entry_size * n);
  Check(cache.Init(), "cache init");
  Random rng(3);
  for (size_t i = 0; i < n; ++i) {
    Check(cache.Put(i, snapshot, 0.01 + rng.NextDouble()), "warm");
  }
  core::QueryId next_qid = n;
  for (auto _ : state) {
    Check(cache.Put(next_qid++, snapshot, 0.01 + rng.NextDouble()), "put");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel(std::string(core::CachePolicyToString(policy)) + "/n=" +
                 std::to_string(n));
}
BENCHMARK(BM_EvictionHeavyPut)
    ->ArgsProduct({{static_cast<int>(core::CachePolicy::kLru),
                    static_cast<int>(core::CachePolicy::kRco)},
                   {64, 256, 1024}})
    ->Unit(benchmark::kMicrosecond);

/// Raw zoom-in latency through the real engine: cache hit vs. forced
/// re-execution (tiny cache).
void BM_ZoomInEndToEnd(benchmark::State& state) {
  bool cached = state.range(0) == 1;
  core::EngineOptions options;
  if (!cached) options.cache_budget_bytes = 64;  // Nothing fits.
  auto engine = std::make_unique<core::Engine>(options);
  Check(engine->Init(), "init");
  workload::WorkloadConfig config;
  config.num_species = 30;
  config.annotations_per_tuple = 40;
  workload::WorkloadBuilder builder(config);
  Check(builder.Build(engine.get()), "build");
  auto scan = Check(engine->MakeScan("birds"), "scan");
  auto result = Check(engine->Execute(std::move(scan)), "execute");

  core::ZoomInRequest request;
  request.qid = result.qid;
  request.instance_name = "ClassBird1";
  request.component_index = 0;
  for (auto _ : state) {
    auto zoom = Check(engine->ZoomIn(request), "zoomin");
    benchmark::DoNotOptimize(zoom.rows.size());
  }
  state.SetLabel(cached ? "cache-hit" : "re-execute");
}
BENCHMARK(BM_ZoomInEndToEnd)->Arg(1)->Arg(0)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace insightnotes::bench

BENCHMARK_MAIN();
