// Query-lifecycle costs: how fast a cancelled statement unwinds, and what
// the cooperative interrupt checks + memory accounting cost a query that
// never trips them. BM_CancelUnwind arms the deterministic cancel-at-check
// trip and times the full abort path (trip -> workers drain -> clean
// kCancelled return) at parallelism 1 / 2 / 8. BM_MemoryBudgetOverhead
// runs the same join with and without an attached QueryContext, so the
// budgeted-vs-unbudgeted delta isolates the lifecycle overhead against the
// PR-5 parallel baseline (BENCH_query.json). Emits BENCH_cancel.json
// (see bench_util.h / check_bench_json.py).

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <variant>

#include "bench/bench_util.h"
#include "exec/query_context.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace insightnotes::bench {
namespace {

constexpr size_t kSpecies = 256;          // One bird row per species.
constexpr size_t kAnnotationsPerTuple = 12;
constexpr size_t kMorselSize = 32;        // 256 rows -> 8 morsels.

// Self-join with a filter: enough work per morsel that an early abort is
// visibly cheaper than a full drain, shared across both benchmark families
// so the overhead numbers compare like against like.
const char* const kJoinQuery =
    "SELECT l.id, l.name, r.id FROM birds l, birds r "
    "WHERE l.family = r.family AND l.weight > 1.0";

/// Plans `text` at the given parallelism (attaching `context` when set) and
/// drains the tree directly, bypassing Engine::Execute so repeated
/// iterations don't grow the zoom-in cache. Returns the terminal status:
/// OK for a full drain, the interrupt status for an aborted one; an aborted
/// plan is Closed so its workers are joined before the next iteration.
Status RunQuery(core::Engine* engine, const std::string& text, size_t parallelism,
                const std::shared_ptr<exec::QueryContext>& context,
                size_t* rows_out) {
  sql::Statement statement = Check(sql::Parse(text), "parse");
  auto* select = std::get_if<sql::SelectStatement>(&statement);
  if (select == nullptr) std::abort();
  sql::PlannerOptions options;
  options.parallelism = parallelism;
  options.morsel_size = kMorselSize;
  auto plan = Check(sql::PlanSelect(*select, engine, options), "plan");
  if (context != nullptr) plan->SetQueryContext(context);
  Status status = plan->Open();
  size_t rows = 0;
  if (status.ok()) {
    core::AnnotatedTuple tuple;
    while (true) {
      Result<bool> more = plan->Next(&tuple);
      if (!more.ok()) {
        status = more.status();
        break;
      }
      if (!*more) break;
      ++rows;
    }
  }
  if (!status.ok()) {
    Status closed = plan->Close();  // Joins any still-running workers.
    (void)closed;
  }
  if (rows_out != nullptr) *rows_out = rows;
  return status;
}

void BM_CancelUnwind(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  auto context = std::make_shared<exec::QueryContext>();
  // Trip a few checks in so the plan is genuinely in flight (workers
  // dispatched, first morsels claimed) when the cancellation lands.
  constexpr uint64_t kTrip = 4;
  for (auto _ : state) {
    context->CancelAtCheck(kTrip);
    context->BeginStatement(0, 0);
    Status status = RunQuery(built->engine.get(), kJoinQuery, parallelism,
                             context, nullptr);
    if (!status.IsCancelled()) {
      fprintf(stderr, "cancel bench: expected kCancelled, got %s\n",
              status.ToString().c_str());
      std::abort();
    }
  }
  context->CancelAtCheck(0);
  state.counters["threads"] = static_cast<double>(parallelism);
  state.SetLabel("cancel-unwind/p" + std::to_string(parallelism));
}

void BM_MemoryBudgetOverhead(benchmark::State& state) {
  size_t parallelism = static_cast<size_t>(state.range(0));
  bool budgeted = state.range(1) != 0;
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  std::shared_ptr<exec::QueryContext> context;
  if (budgeted) {
    context = std::make_shared<exec::QueryContext>();
    // A limit far above the join's footprint: every slab reservation and
    // interrupt check runs, none ever fails — pure accounting overhead.
    context->BeginStatement(0, size_t{1} << 32);
  }
  size_t rows = 0;
  for (auto _ : state) {
    Status status =
        RunQuery(built->engine.get(), kJoinQuery, parallelism, context, &rows);
    Check(status, "budgeted run");
    benchmark::DoNotOptimize(rows);
  }
  state.counters["threads"] = static_cast<double>(parallelism);
  state.counters["budgeted"] = budgeted ? 1.0 : 0.0;
  if (budgeted) {
    state.counters["mem_peak"] = static_cast<double>(context->budget().peak());
  }
  state.SetLabel(std::string("join/") + (budgeted ? "budgeted" : "bare") + "/p" +
                 std::to_string(parallelism));
}

BENCHMARK(BM_CancelUnwind)
    ->Arg(1)->Arg(2)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_MemoryBudgetOverhead)
    ->Args({1, 0})->Args({2, 0})->Args({8, 0})
    ->Args({1, 1})->Args({2, 1})->Args({8, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace insightnotes::bench

int main(int argc, char** argv) {
  return insightnotes::bench::RunBenchmarksWithJsonReport(argc, argv,
                                                          "BENCH_cancel.json");
}
