// Experiment E6 — the Theorems 1&2 normalization (project-before-merge).
//
// Two aspects: (a) correctness — under normalization, differently phrased
// equivalent SPJ queries propagate identical summaries (asserted here at
// setup, measured in the integration tests); (b) cost — early projection
// trims annotation state *before* the join replicates it across matches,
// so the normalized plan is also cheaper on annotation-heavy joins.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "sql/session.h"

namespace insightnotes::bench {
namespace {

/// Two joined tables with many annotations on never-referenced columns —
/// the regime where early trimming pays.
std::unique_ptr<core::Engine> JoinWorkload(size_t per_tuple) {
  auto engine = std::make_unique<core::Engine>();
  Check(engine->Init(), "init");
  workload::WorkloadConfig config;
  config.num_species = 16;
  config.annotations_per_tuple = per_tuple;
  config.cell_fraction = 0.9;  // Mostly cell-level: trimming is effective.
  workload::WorkloadBuilder builder(config);
  Check(builder.Build(engine.get()), "build");
  // Second table joining on family.
  Check(engine->CreateTable(
            "families", rel::Schema({{"family", rel::ValueType::kString, "families"},
                                     {"conservation", rel::ValueType::kString,
                                      "families"}})),
        "table");
  std::set<std::string> seen;
  for (const auto& species : workload::GenerateSpecies(16, config.seed)) {
    if (!seen.insert(species.family).second) continue;
    Check(engine->Insert("families", rel::Tuple({rel::Value(species.family),
                                                 rel::Value("least-concern")})),
          "insert");
  }
  Check(engine->LinkInstance("ClassBird2", "families"), "link");
  return engine;
}

constexpr const char* kQuery =
    "SELECT b.name, f.conservation FROM birds b, families f "
    "WHERE b.family = f.family AND b.weight > 0.1";

void BM_NormalizedPlan(benchmark::State& state) {
  size_t per_tuple = static_cast<size_t>(state.range(0));
  auto engine = JoinWorkload(per_tuple);
  sql::PlannerOptions options;
  options.project_before_merge = true;
  sql::SqlSession session(engine.get(), options);
  for (auto _ : state) {
    auto out = session.Execute(kQuery);
    Check(out.status().ok() ? Status::OK() : out.status(), "execute");
    benchmark::DoNotOptimize(out->result.rows.size());
  }
  state.SetLabel("project-before-merge");
}
BENCHMARK(BM_NormalizedPlan)->Arg(20)->Arg(80)->Arg(200)->Unit(benchmark::kMillisecond);

void BM_NaivePullUpPlan(benchmark::State& state) {
  size_t per_tuple = static_cast<size_t>(state.range(0));
  auto engine = JoinWorkload(per_tuple);
  sql::PlannerOptions options;
  options.project_before_merge = false;
  sql::SqlSession session(engine.get(), options);
  for (auto _ : state) {
    auto out = session.Execute(kQuery);
    Check(out.status().ok() ? Status::OK() : out.status(), "execute");
    benchmark::DoNotOptimize(out->result.rows.size());
  }
  state.SetLabel("naive-pull-up");
}
BENCHMARK(BM_NaivePullUpPlan)->Arg(20)->Arg(80)->Arg(200)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace insightnotes::bench

BENCHMARK_MAIN();
