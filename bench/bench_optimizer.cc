// Cost-based optimizer benchmark: the same query planned rule-driven
// (optimized=0) and cost-based (optimized=1) over ANALYZEd, indexed
// tables. The oracle tests guarantee both plans return byte-identical
// results, so each sweep isolates one optimizer decision: index-backed
// equality and range access paths versus full scans, and join reordering
// that joins a selectively filtered small table before a big one. Emits
// BENCH_optimizer.json; check_bench_json.py enforces that the optimized
// side of every family is no slower than the rule-driven side.

#include <benchmark/benchmark.h>

#include <string>
#include <variant>

#include "bench/bench_util.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace insightnotes::bench {
namespace {

constexpr int64_t kFactRows = 20000;   // Indexed single-table workload.
constexpr int64_t kJoinRows = 2000;    // Each big join side.
constexpr int64_t kDimRows = 100;      // Selectively filtered small table.
constexpr int64_t kJoinKeyNdv = 40;    // a|b join fan-out: 2000^2/40 rows.

/// Engine with ANALYZEd + indexed tables for the optimizer sweeps:
///   fact(id, val)  — kFactRows rows, id unique and indexed;
///   a(k, j), b(k, pad) — kJoinRows rows each, k with kJoinKeyNdv values;
///   c(j, sel)      — kDimRows rows, sel unique (c.sel = 5 keeps one row).
core::Engine* GetOptimizerWorkload() {
  static core::Engine* engine = [] {
    auto* built = new core::Engine();  // Lives for the whole bench run.
    Check(built->Init(), "engine init");
    Check(built->CreateTable(
              "fact", rel::Schema({{"id", rel::ValueType::kInt64, "fact"},
                                   {"val", rel::ValueType::kInt64, "fact"}})),
          "create fact");
    Check(built->CreateTable(
              "a", rel::Schema({{"k", rel::ValueType::kInt64, "a"},
                                {"j", rel::ValueType::kInt64, "a"}})),
          "create a");
    Check(built->CreateTable(
              "b", rel::Schema({{"k", rel::ValueType::kInt64, "b"},
                                {"pad", rel::ValueType::kInt64, "b"}})),
          "create b");
    Check(built->CreateTable(
              "c", rel::Schema({{"j", rel::ValueType::kInt64, "c"},
                                {"sel", rel::ValueType::kInt64, "c"}})),
          "create c");
    for (int64_t i = 0; i < kFactRows; ++i) {
      Check(built->Insert("fact", rel::Tuple({rel::Value(i),
                                              rel::Value(i % 97)})),
            "insert fact");
    }
    for (int64_t i = 0; i < kJoinRows; ++i) {
      Check(built->Insert("a", rel::Tuple({rel::Value(i % kJoinKeyNdv),
                                           rel::Value(i)})),
            "insert a");
      Check(built->Insert("b", rel::Tuple({rel::Value(i % kJoinKeyNdv),
                                           rel::Value(i)})),
            "insert b");
    }
    for (int64_t i = 0; i < kDimRows; ++i) {
      Check(built->Insert("c", rel::Tuple({rel::Value(i), rel::Value(i)})),
            "insert c");
    }
    Check(built->CreateIndex("fact", "id"), "index fact.id");
    for (const char* table : {"fact", "a", "b", "c"}) {
      Check(built->Analyze(table), "analyze");
    }
    return built;
  }();
  return engine;
}

size_t RunQuery(core::Engine* engine, const std::string& text, bool optimize) {
  sql::Statement statement = Check(sql::Parse(text), "parse");
  auto* select = std::get_if<sql::SelectStatement>(&statement);
  if (select == nullptr) std::abort();
  sql::PlannerOptions options;
  options.optimize = optimize;
  auto plan = Check(sql::PlanSelect(*select, engine, options), "plan");
  Check(plan->Open(), "open");
  core::AnnotatedTuple tuple;
  size_t rows = 0;
  while (Check(plan->Next(&tuple), "next")) ++rows;
  return rows;
}

void RunSweep(benchmark::State& state, const std::string& query,
              const char* label) {
  bool optimize = state.range(0) != 0;
  core::Engine* engine = GetOptimizerWorkload();
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunQuery(engine, query, optimize));
  }
  state.counters["optimized"] = optimize ? 1.0 : 0.0;
  state.SetLabel(std::string(label) + (optimize ? "/optimized" : "/rule-driven"));
}

// Index-backed equality probe vs full scan: the rule-driven side walks all
// kFactRows rows, the optimized side probes one.
void BM_OptIndexEqualityProbe(benchmark::State& state) {
  RunSweep(state, "SELECT f.val FROM fact f WHERE f.id = 12345", "index-eq");
}

// Index-backed range access vs full scan: the probe fetches ~0.5% of the
// table and the residual filter trims the inclusive bound.
void BM_OptIndexRangeProbe(benchmark::State& state) {
  RunSweep(state, "SELECT f.val FROM fact f WHERE f.id < 100", "index-range");
}

// Join reordering: rule-driven FROM order materializes the a|b fan-out
// (kJoinRows^2 / kJoinKeyNdv rows) before c filters it; the cost-based
// order joins the one surviving c row first and pays a RestoreOrder sort.
void BM_OptJoinReorder(benchmark::State& state) {
  RunSweep(state,
           "SELECT a.j, b.pad, c.sel FROM a a, b b, c c "
           "WHERE a.k = b.k AND a.j = c.j AND c.sel = 5",
           "join-reorder");
}

BENCHMARK(BM_OptIndexEqualityProbe)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_OptIndexRangeProbe)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();
BENCHMARK(BM_OptJoinReorder)
    ->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace insightnotes::bench

int main(int argc, char** argv) {
  return insightnotes::bench::RunBenchmarksWithJsonReport(argc, argv,
                                                          "BENCH_optimizer.json");
}
