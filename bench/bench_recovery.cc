// Experiment E8 — parallel WAL replay (restart latency vs. cores).
//
// A synthetic segmented log (thousands of annotations spread over many
// rows, so recovery partitions into many independent chains) is built
// once on disk; each measured iteration reopens the database and times
// Engine::Init() — page-file audit, segment decode and chain replay.
// Sweeping recovery_threads over 1/2/4/8 shows restart time scaling with
// cores; the parallel replays rebuild the identical logical state as the
// serial one (see integration/crash_recovery_test.cc,
// ParallelRecoveryMatchesSerialReplay), so this measures pure speedup.
// Wall-clock (UseRealTime) is the honest metric: the opening thread
// sleeps while pool workers replay chains. On a 1-core container the
// sweep is flat by construction.
//
// Emits BENCH_recovery.json (see bench_util.h); bench/check_bench_json.py
// validates the sweep shape (threads counter, parallelism-1 baseline,
// constant replayed-record count).

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"

namespace insightnotes::bench {
namespace {

constexpr size_t kNumRows = 64;
constexpr size_t kNumAnnotations = 6000;

std::string DbPath() {
  return (std::filesystem::temp_directory_path() / "insightnotes_bench_recovery.db")
      .string();
}

/// Removes the page file plus every WAL artifact (segments, manifest) —
/// all share the db path as a name prefix.
void RemoveDbFiles() {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path prefix = DbPath();
  const std::string stem = prefix.filename().string();
  for (fs::directory_iterator it(prefix.parent_path(), ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path().filename().string().rfind(stem, 0) == 0) {
      std::error_code remove_ec;
      fs::remove(it->path(), remove_ec);
    }
  }
}

core::EngineOptions RecoveryOptions(size_t threads) {
  core::EngineOptions options;
  options.db_path = DbPath();
  options.open_existing = true;
  options.recovery_threads = threads;
  // Keep the log byte-stable across repeated reopens: every iteration must
  // replay the same records, or the sweep compares different workloads.
  options.compact_wal_on_checkpoint = false;
  return options;
}

/// Builds the on-disk database once: kNumAnnotations spread uniformly over
/// kNumRows rows, committed through the segmented WAL in small segments so
/// the decode phase has real per-segment parallelism too.
void EnsureDatabase() {
  static const bool built = [] {
    RemoveDbFiles();
    core::EngineOptions options;
    options.db_path = DbPath();
    options.wal_segment_bytes = 64 << 10;
    options.compact_wal_on_checkpoint = false;
    core::Engine engine(options);
    Check(engine.Init(), "build init");
    Check(engine.CreateTable(
              "notes", rel::Schema({{"id", rel::ValueType::kInt64, "notes"},
                                    {"label", rel::ValueType::kString, "notes"}})),
          "create table");
    for (size_t i = 0; i < kNumRows; ++i) {
      Check(engine.Insert("notes",
                          rel::Tuple({rel::Value(static_cast<int64_t>(i)),
                                      rel::Value("row" + std::to_string(i))})),
            "insert row");
    }
    std::vector<core::AnnotateSpec> specs;
    specs.reserve(kNumAnnotations);
    for (size_t i = 0; i < kNumAnnotations; ++i) {
      core::AnnotateSpec spec;
      spec.table = "notes";
      spec.row = static_cast<rel::RowId>(i % kNumRows);
      spec.author = "bench-" + std::to_string(i % 7);
      spec.body = "synthetic recovery workload annotation " + std::to_string(i) +
                  " with enough trailing text to make the replay decode and "
                  "store apply cost realistic per record";
      specs.push_back(std::move(spec));
    }
    Check(engine.AnnotateBatch(specs), "annotate batch");
    // Destruction checkpoints: the page file is flushed and the log synced,
    // leaving a clean on-disk database for the reopen sweep.
    return true;
  }();
  (void)built;
}

/// Restart latency: Engine::Init() with open_existing over the prebuilt
/// log, as a function of replay parallelism. Only Init is timed — engine
/// construction and the closing checkpoint happen off the clock.
void BM_ParallelRecovery(benchmark::State& state) {
  const size_t threads = static_cast<size_t>(state.range(0));
  EnsureDatabase();
  uint64_t replayed = 0;
  uint64_t chains = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = std::make_unique<core::Engine>(RecoveryOptions(threads));
    state.ResumeTiming();
    Check(engine->Init(), "recover");
    state.PauseTiming();
    replayed = engine->recovery().wal_records_replayed;
    chains = engine->recovery().replay_chains;
    engine.reset();
    state.ResumeTiming();
  }
  state.counters["threads"] = static_cast<double>(threads);
  state.counters["wal_records"] = static_cast<double>(replayed);
  state.counters["chains"] = static_cast<double>(chains);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * replayed));
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelRecovery)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace insightnotes::bench

int main(int argc, char** argv) {
  int result = insightnotes::bench::RunBenchmarksWithJsonReport(argc, argv,
                                                                "BENCH_recovery.json");
  insightnotes::bench::RemoveDbFiles();
  return result;
}
