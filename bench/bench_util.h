// Shared benchmark scaffolding: engine construction, workload presets and
// a tiny cache of built engines so repeated benchmark registrations over
// the same configuration don't pay the setup cost every time.

#ifndef INSIGHTNOTES_BENCH_BENCH_UTIL_H_
#define INSIGHTNOTES_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <tuple>

#include "core/engine.h"
#include "sql/session.h"
#include "workload/workload.h"

namespace insightnotes::bench {

/// Aborts the benchmark run on error — a broken setup must not produce
/// numbers silently.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
            status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T Check(Result<T> result, const char* what) {
  Check(result.status().ok() ? Status::OK() : result.status(), what);
  return std::move(result).value();
}

struct BuiltWorkload {
  std::unique_ptr<core::Engine> engine;
  workload::WorkloadStats stats;
  workload::WorkloadConfig config;
};

/// Builds (and memoizes per distinct key) an annotated bird database.
inline BuiltWorkload* GetWorkload(size_t num_species, size_t annotations_per_tuple,
                                  bool with_summaries = true,
                                  double document_fraction = 0.02) {
  using Key = std::tuple<size_t, size_t, bool, int>;
  static auto* cache = new std::map<Key, std::unique_ptr<BuiltWorkload>>();
  Key key{num_species, annotations_per_tuple, with_summaries,
          static_cast<int>(document_fraction * 1000)};
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  auto built = std::make_unique<BuiltWorkload>();
  built->engine = std::make_unique<core::Engine>();
  Check(built->engine->Init(), "engine init");
  workload::WorkloadConfig config;
  config.num_species = num_species;
  config.annotations_per_tuple = annotations_per_tuple;
  config.document_fraction = document_fraction;
  config.with_classifier1 = with_summaries;
  config.with_classifier2 = with_summaries;
  config.with_cluster = with_summaries;
  config.with_snippet = with_summaries;
  built->config = config;
  workload::WorkloadBuilder builder(config);
  built->stats = Check(builder.Build(built->engine.get()), "workload build");
  auto* raw = built.get();
  (*cache)[key] = std::move(built);
  return raw;
}

}  // namespace insightnotes::bench

#endif  // INSIGHTNOTES_BENCH_BENCH_UTIL_H_
