// Shared benchmark scaffolding: engine construction, workload presets and
// a tiny cache of built engines so repeated benchmark registrations over
// the same configuration don't pay the setup cost every time.

#ifndef INSIGHTNOTES_BENCH_BENCH_UTIL_H_
#define INSIGHTNOTES_BENCH_BENCH_UTIL_H_

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "core/engine.h"
#include "sql/session.h"
#include "workload/workload.h"

namespace insightnotes::bench {

/// Aborts the benchmark run on error — a broken setup must not produce
/// numbers silently.
inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    fprintf(stderr, "benchmark setup failed (%s): %s\n", what,
            status.ToString().c_str());
    std::abort();
  }
}

template <typename T>
T Check(Result<T> result, const char* what) {
  Check(result.status().ok() ? Status::OK() : result.status(), what);
  return std::move(result).value();
}

struct BuiltWorkload {
  std::unique_ptr<core::Engine> engine;
  workload::WorkloadStats stats;
  workload::WorkloadConfig config;
};

/// Builds (and memoizes per distinct key) an annotated bird database.
inline BuiltWorkload* GetWorkload(size_t num_species, size_t annotations_per_tuple,
                                  bool with_summaries = true,
                                  double document_fraction = 0.02) {
  using Key = std::tuple<size_t, size_t, bool, int>;
  static auto* cache = new std::map<Key, std::unique_ptr<BuiltWorkload>>();
  Key key{num_species, annotations_per_tuple, with_summaries,
          static_cast<int>(document_fraction * 1000)};
  auto it = cache->find(key);
  if (it != cache->end()) return it->second.get();

  auto built = std::make_unique<BuiltWorkload>();
  built->engine = std::make_unique<core::Engine>();
  Check(built->engine->Init(), "engine init");
  workload::WorkloadConfig config;
  config.num_species = num_species;
  config.annotations_per_tuple = annotations_per_tuple;
  config.document_fraction = document_fraction;
  config.with_classifier1 = with_summaries;
  config.with_classifier2 = with_summaries;
  config.with_cluster = with_summaries;
  config.with_snippet = with_summaries;
  built->config = config;
  workload::WorkloadBuilder builder(config);
  built->stats = Check(builder.Build(built->engine.get()), "workload build");
  auto* raw = built.get();
  (*cache)[key] = std::move(built);
  return raw;
}

/// Drop-in BENCHMARK_MAIN() replacement that, in addition to the console
/// report, always writes Google Benchmark's JSON report to `default_path`
/// (override with $INSIGHTNOTES_BENCH_JSON, or pass --benchmark_out=
/// explicitly) so CI can record the perf trajectory machine-readably.
/// bench/check_bench_json.py validates the emitted schema.
inline int RunBenchmarksWithJsonReport(int argc, char** argv,
                                       const char* default_path) {
  const char* env = std::getenv("INSIGHTNOTES_BENCH_JSON");
  std::string path = env != nullptr ? env : default_path;
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--benchmark_out", 15) == 0) has_out = true;
  }
  std::string out_flag = "--benchmark_out=" + path;
  std::string format_flag = "--benchmark_out_format=json";
  if (!has_out && !path.empty()) {
    args.push_back(out_flag.data());
    args.push_back(format_flag.data());
  }
  int effective_argc = static_cast<int>(args.size());
  benchmark::Initialize(&effective_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(effective_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace insightnotes::bench

#endif  // INSIGHTNOTES_BENCH_BENCH_UTIL_H_
