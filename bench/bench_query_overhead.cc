// Experiment E2 — the headline comparison: query-time annotation handling
// cost for (a) no annotations, (b) InsightNotes summary propagation, and
// (c) a conventional raw-annotation propagation engine (DBNotes-style),
// sweeping the number of raw annotations per tuple.
//
// Expected shape: summary propagation adds a near-constant overhead over
// the bare query regardless of how many raw annotations exist (summaries
// are compact), while the raw baseline degrades linearly with the
// annotation volume — the gap widening to orders of magnitude at the
// paper's 100s-of-annotations-per-tuple regime.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "core/raw_baseline.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/projection.h"
#include "rel/expression.h"
#include "sql/session.h"

namespace insightnotes::bench {
namespace {

constexpr size_t kSpecies = 24;

// Two query classes:
//  * carry-through (SELECT * ... WHERE): annotations/summaries are carried
//    through selection unchanged — pure propagation cost, the paper's
//    headline scenario;
//  * trimming SPJ (SELECT id, name, weight): columns are dropped, so both
//    systems additionally pay per-annotation elimination work.
std::vector<std::string> CarryColumns() {
  return {"b.id", "b.name", "b.sci_name", "b.family", "b.region", "b.weight",
          "b.population"};
}
std::vector<std::string> TrimColumns() { return {"b.id", "b.name", "b.weight"}; }

size_t RunPipeline(core::Engine* engine, bool with_summaries, bool trim) {
  auto scan = Check(engine->MakeScan("birds", "b", with_summaries), "scan");
  const auto& schema = scan->OutputSchema();
  size_t weight = Check(schema.IndexOf("b.weight"), "col");
  auto filter = std::make_unique<exec::FilterOperator>(
      std::move(scan),
      rel::MakeCompare(rel::CompareOp::kGt, rel::MakeColumn(weight, "b.weight"),
                       rel::MakeLiteral(rel::Value(1.0))));
  auto project = Check(exec::ProjectOperator::FromColumns(
                           std::move(filter), trim ? TrimColumns() : CarryColumns()),
                       "project");
  Check(project->Open(), "open");
  core::AnnotatedTuple t;
  size_t rows = 0;
  while (Check(project->Next(&t), "next")) ++rows;
  return rows;
}

/// (a) The query with annotation processing off.
void BM_QueryNoAnnotations(benchmark::State& state) {
  size_t per_tuple = static_cast<size_t>(state.range(0));
  bool trim = state.range(1) == 1;
  BuiltWorkload* built = GetWorkload(kSpecies, per_tuple);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPipeline(built->engine.get(), false, trim));
  }
  state.SetLabel(trim ? "plain/trim" : "plain/carry");
}

/// (b) The same query with InsightNotes summary propagation.
void BM_QuerySummaryPropagation(benchmark::State& state) {
  size_t per_tuple = static_cast<size_t>(state.range(0));
  bool trim = state.range(1) == 1;
  BuiltWorkload* built = GetWorkload(kSpecies, per_tuple);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunPipeline(built->engine.get(), true, trim));
  }
  state.SetLabel(trim ? "insightnotes/trim" : "insightnotes/carry");
}

/// (c) Raw propagation baseline: full annotation bodies ride along.
void BM_QueryRawPropagation(benchmark::State& state) {
  size_t per_tuple = static_cast<size_t>(state.range(0));
  bool trim = state.range(1) == 1;
  BuiltWorkload* built = GetWorkload(kSpecies, per_tuple);
  core::Engine* engine = built->engine.get();
  auto table = Check(engine->catalog()->GetTable("birds"), "table");
  core::RawPropagationEngine raw(engine->annotations());
  // Base schema positions: id=0 name=1 ... weight=5 population=6.
  auto weight_gt = rel::MakeCompare(rel::CompareOp::kGt, rel::MakeColumn(5, "weight"),
                                    rel::MakeLiteral(rel::Value(1.0)));
  std::vector<size_t> kept =
      trim ? std::vector<size_t>{0, 1, 5} : std::vector<size_t>{0, 1, 2, 3, 4, 5, 6};
  for (auto _ : state) {
    auto scanned = Check(raw.Scan(*table), "scan");
    auto filtered = Check(raw.Filter(std::move(scanned), *weight_gt), "filter");
    auto projected = raw.Project(filtered, kept);
    benchmark::DoNotOptimize(projected.size());
  }
  state.SetLabel(trim ? "raw/trim" : "raw/carry");
}

/// Join variant of all three modes: birds self-join on family.
void BM_JoinSummaryVsRaw(benchmark::State& state) {
  size_t per_tuple = static_cast<size_t>(state.range(0));
  bool use_summaries = state.range(1) == 1;
  bool raw_mode = state.range(1) == 2;
  BuiltWorkload* built = GetWorkload(kSpecies, per_tuple);
  core::Engine* engine = built->engine.get();
  auto table = Check(engine->catalog()->GetTable("birds"), "table");

  if (raw_mode) {
    core::RawPropagationEngine raw(engine->annotations());
    auto key = rel::MakeColumn(3, "family");
    for (auto _ : state) {
      auto left = Check(raw.Scan(*table), "scan");
      auto right = Check(raw.Scan(*table), "scan");
      auto joined = Check(raw.Join(left, right, *key, *key), "join");
      benchmark::DoNotOptimize(joined.size());
    }
    state.SetLabel("raw-propagation");
    return;
  }
  for (auto _ : state) {
    auto left = Check(engine->MakeScan("birds", "l", use_summaries), "scan");
    auto right = Check(engine->MakeScan("birds", "r", use_summaries), "scan");
    size_t lf = Check(left->OutputSchema().IndexOf("l.family"), "col");
    size_t rf = Check(right->OutputSchema().IndexOf("r.family"), "col");
    auto join = std::make_unique<exec::HashJoinOperator>(
        std::move(left), std::move(right), rel::MakeColumn(lf, "l.family"),
        rel::MakeColumn(rf, "r.family"));
    Check(join->Open(), "open");
    core::AnnotatedTuple t;
    size_t rows = 0;
    while (Check(join->Next(&t), "next")) ++rows;
    benchmark::DoNotOptimize(rows);
  }
  state.SetLabel(use_summaries ? "insightnotes" : "plain");
}

BENCHMARK(BM_QueryNoAnnotations)
    ->ArgsProduct({{10, 50, 150, 400}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QuerySummaryPropagation)
    ->ArgsProduct({{10, 50, 150, 400}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_QueryRawPropagation)
    ->ArgsProduct({{10, 50, 150, 400}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_JoinSummaryVsRaw)
    ->ArgsProduct({{10, 50, 150}, {0, 1, 2}})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace insightnotes::bench

int main(int argc, char** argv) {
  return insightnotes::bench::RunBenchmarksWithJsonReport(argc, argv,
                                                          "BENCH_query.json");
}
