// Experiment E7 — mining-kernel microbenchmarks: the per-annotation cost of
// each summarization technique in isolation (Naive Bayes classification,
// online clustering insert, extractive snippet generation, tokenization and
// sparse-vector ops). These are the unit costs the maintenance experiments
// (E1) compose.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "mining/clustering.h"
#include "mining/naive_bayes.h"
#include "mining/snippets.h"
#include "txt/tokenizer.h"
#include "workload/annotation_gen.h"

namespace insightnotes::bench {
namespace {

std::vector<std::string> SampleComments(size_t n, uint64_t seed) {
  workload::AnnotationGenerator gen(seed);
  std::vector<std::string> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(
        gen.GenerateComment(workload::CuratedSpecies()[i % 20]).annotation.body);
  }
  return out;
}

void BM_Tokenize(benchmark::State& state) {
  txt::Tokenizer tokenizer;
  auto comments = SampleComments(256, 3);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(comments[i++ % comments.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_Tokenize);

void BM_NaiveBayesTrain(benchmark::State& state) {
  auto comments = SampleComments(256, 5);
  mining::NaiveBayesClassifier nb({"a", "b", "c", "d"});
  size_t i = 0;
  for (auto _ : state) {
    Check(nb.Train(i % 4, comments[i % comments.size()]), "train");
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NaiveBayesTrain);

void BM_NaiveBayesClassify(benchmark::State& state) {
  mining::NaiveBayesClassifier nb({"Behavior", "Disease", "Anatomy", "Other"});
  for (const auto& [label, text] : workload::AnnotationGenerator::ClassBird1Training()) {
    Check(nb.Train(label, text), "train");
  }
  auto comments = SampleComments(256, 7);
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nb.Classify(comments[i++ % comments.size()]));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_NaiveBayesClassify);

void BM_ClusterInsert(benchmark::State& state) {
  size_t preexisting = static_cast<size_t>(state.range(0));
  mining::TextVectorizer vectorizer;
  mining::ClusterSet clusters(0.35);
  auto comments = SampleComments(preexisting + 4096, 9);
  mining::DocId next = 0;
  for (size_t i = 0; i < preexisting; ++i) {
    Check(clusters.Add(next, vectorizer.Vectorize(comments[next])).status(), "add");
    ++next;
  }
  for (auto _ : state) {
    if (next >= comments.size()) {
      // Pool exhausted: restart from the preloaded baseline.
      state.PauseTiming();
      clusters = mining::ClusterSet(0.35);
      next = 0;
      while (next < preexisting) {
        Check(clusters.Add(next, vectorizer.Vectorize(comments[next])).status(),
              "add");
        ++next;
      }
      state.ResumeTiming();
    }
    Check(clusters.Add(next, vectorizer.Vectorize(comments[next])).status(), "add");
    ++next;
  }
  state.SetLabel("preexisting=" + std::to_string(preexisting));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterInsert)->Arg(0)->Arg(100)->Arg(1000);

void BM_SnippetExtraction(benchmark::State& state) {
  size_t sentences = static_cast<size_t>(state.range(0));
  workload::AnnotationGenerator gen(11);
  auto doc = gen.GenerateDocument(workload::CuratedSpecies()[0], sentences);
  mining::SnippetExtractor extractor;
  for (auto _ : state) {
    benchmark::DoNotOptimize(extractor.Summarize(doc.annotation.body));
  }
  state.SetLabel("sentences=" + std::to_string(sentences));
}
BENCHMARK(BM_SnippetExtraction)->Arg(5)->Arg(20)->Arg(100)->Unit(benchmark::kMicrosecond);

void BM_SparseCosine(benchmark::State& state) {
  mining::TextVectorizer vectorizer;
  auto comments = SampleComments(64, 13);
  std::vector<txt::SparseVector> vectors;
  for (const auto& c : comments) vectors.push_back(vectorizer.Vectorize(c));
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        vectors[i % vectors.size()].Cosine(vectors[(i + 1) % vectors.size()]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SparseCosine);

/// Clone cost of a populated summary object — the unit cost of carrying a
/// summary through one pipeline stage (COW: should be ~O(1)).
void BM_SummaryObjectClone(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  auto instance = core::SummaryInstance::MakeCluster("c", 0.35);
  auto object = instance->NewObject();
  workload::AnnotationGenerator gen(15);
  for (size_t i = 0; i < n; ++i) {
    auto g = gen.GenerateComment(workload::CuratedSpecies()[i % 20]);
    g.annotation.id = i;
    Check(object->AddAnnotation(g.annotation), "add");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(object->Clone());
  }
  state.SetLabel("annotations=" + std::to_string(n));
}
BENCHMARK(BM_SummaryObjectClone)->Arg(10)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace insightnotes::bench

BENCHMARK_MAIN();
