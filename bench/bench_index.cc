// Experiment E11 — persistent index adoption vs. rebuild (restart cost).
//
// A file-backed database with a committed B+-tree index (CREATE INDEX +
// checkpoint) is prebuilt once per table size; the sweep then measures
// three things as the table grows 16x:
//
//   BM_IndexOpenPersistent  — Engine::Init() + CreateTable() on reopen:
//                             the WAL index-checkpoint adoption path. Must
//                             stay FLAT in table size — the tree is
//                             attached from its committed root page, never
//                             rebuilt from a table scan.
//   BM_IndexRebuild         — CreateIndex() over the same rows on a fresh
//                             engine: the O(N) scan-build the adoption
//                             path avoids. The contrast series.
//   BM_IndexProbeEq         — equality probes against the adopted tree
//                             (O(log N) descent + leaf walk).
//
// Emits BENCH_index.json (see bench_util.h); bench/check_bench_json.py
// (check_index_sweep) validates that the persistent-open series does not
// scale with table size while the rebuild series does the real work.

#include <benchmark/benchmark.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "exec/index_scan.h"

namespace insightnotes::bench {
namespace {

constexpr int64_t kKeySpan = 97;  // id = i % kKeySpan: multimap probes.

std::string DbPath(size_t rows) {
  return (std::filesystem::temp_directory_path() /
          ("insightnotes_bench_index_" + std::to_string(rows) + ".db"))
      .string();
}

void RemoveDbFiles(size_t rows) {
  namespace fs = std::filesystem;
  std::error_code ec;
  const fs::path prefix = DbPath(rows);
  const std::string stem = prefix.filename().string();
  for (fs::directory_iterator it(prefix.parent_path(), ec), end; !ec && it != end;
       it.increment(ec)) {
    if (it->path().filename().string().rfind(stem, 0) == 0) {
      std::error_code remove_ec;
      fs::remove(it->path(), remove_ec);
    }
  }
}

core::EngineOptions IndexOptions(size_t rows, bool open_existing) {
  core::EngineOptions options;
  options.db_path = DbPath(rows);
  options.open_existing = open_existing;
  // Keep the log byte-stable across repeated reopens: every iteration must
  // replay the same records, or the sweep compares different workloads.
  options.compact_wal_on_checkpoint = false;
  return options;
}

rel::Schema BenchSchema() {
  return rel::Schema({{"id", rel::ValueType::kInt64, "t"}});
}

void InsertRows(core::Engine* engine, size_t rows) {
  for (size_t i = 0; i < rows; ++i) {
    Check(engine->Insert(
              "t", rel::Tuple({rel::Value(static_cast<int64_t>(i) % kKeySpan)})),
          "insert row");
  }
}

/// Builds the on-disk database once per size: `rows` rows, a committed
/// index on t.id, a durable index checkpoint. Returns after the closing
/// checkpoint so reopen iterations find a clean database.
void EnsureDatabase(size_t rows) {
  static auto* built = new std::vector<size_t>();
  for (size_t size : *built) {
    if (size == rows) return;
  }
  RemoveDbFiles(rows);
  core::Engine engine(IndexOptions(rows, /*open_existing=*/false));
  Check(engine.Init(), "build init");
  Check(engine.CreateTable("t", BenchSchema()), "create table");
  InsertRows(&engine, rows);
  Check(engine.CreateIndex("t", "id"), "create index");
  Check(engine.Checkpoint(), "checkpoint");
  built->push_back(rows);
}

/// Restart cost with a committed index: Init (WAL replay, idx-file
/// adoption) plus the CreateTable that reattaches the tree. Flat in table
/// size — the rows themselves are NOT reloaded, and the tree is adopted
/// from its committed root, not rebuilt.
void BM_IndexOpenPersistent(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  EnsureDatabase(rows);
  uint64_t adopted = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = std::make_unique<core::Engine>(IndexOptions(rows, true));
    state.ResumeTiming();
    Check(engine->Init(), "reopen");
    auto table = Check(engine->CreateTable("t", BenchSchema()), "reattach table");
    benchmark::DoNotOptimize(table->IndexOn(0));
    state.PauseTiming();
    adopted = engine->recovery().indexes_recovered;
    if (adopted != 1) {
      fprintf(stderr, "benchmark invalid: reopen adopted %llu indexes\n",
              static_cast<unsigned long long>(adopted));
      std::abort();
    }
    engine.reset();
    state.ResumeTiming();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persistent"] = 1;
  state.SetLabel("rows=" + std::to_string(rows));
}
BENCHMARK(BM_IndexOpenPersistent)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);

/// The scan-build the adoption path avoids: CreateIndex over `rows` live
/// rows on an in-memory engine. O(N log N); the contrast series for
/// check_index_sweep.
void BM_IndexRebuild(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = std::make_unique<core::Engine>();
    Check(engine->Init(), "init");
    Check(engine->CreateTable("t", BenchSchema()), "create table");
    InsertRows(engine.get(), rows);
    state.ResumeTiming();
    Check(engine->CreateIndex("t", "id"), "create index");
    state.PauseTiming();
    engine.reset();
    state.ResumeTiming();
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["persistent"] = 0;
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * rows));
  state.SetLabel("rows=" + std::to_string(rows));
}
BENCHMARK(BM_IndexRebuild)
    ->Arg(1000)
    ->Arg(4000)
    ->Arg(16000)
    ->Unit(benchmark::kMillisecond);

/// Equality probes against the adopted persistent tree: one probe per
/// iteration, cycling through the key space.
void BM_IndexProbeEq(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  EnsureDatabase(rows);
  core::Engine engine(IndexOptions(rows, /*open_existing=*/true));
  Check(engine.Init(), "reopen");
  auto* table = Check(engine.CreateTable("t", BenchSchema()), "reattach table");
  InsertRows(&engine, rows);  // Catch-up replay: rows are configuration.
  int64_t key = 0;
  std::vector<rel::RowId> out;
  for (auto _ : state) {
    exec::IndexProbeSpec spec;
    spec.column = 0;
    spec.has_eq = true;
    spec.eq = rel::Value(key);
    key = (key + 1) % kKeySpan;
    out.clear();
    Check(exec::ProbeIndex(*table, spec, &out), "probe");
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("rows=" + std::to_string(rows));
}
BENCHMARK(BM_IndexProbeEq)->Arg(1000)->Arg(16000)->Unit(benchmark::kMicrosecond);

/// Range scans ([lo, hi] over ~20% of the key space) against the adopted
/// tree: descent + ordered leaf walk + RowId sort.
void BM_IndexRangeScan(benchmark::State& state) {
  const size_t rows = static_cast<size_t>(state.range(0));
  EnsureDatabase(rows);
  core::Engine engine(IndexOptions(rows, /*open_existing=*/true));
  Check(engine.Init(), "reopen");
  auto* table = Check(engine.CreateTable("t", BenchSchema()), "reattach table");
  InsertRows(&engine, rows);
  int64_t lo = 0;
  std::vector<rel::RowId> out;
  for (auto _ : state) {
    exec::IndexProbeSpec spec;
    spec.column = 0;
    spec.has_lo = true;
    spec.lo = rel::Value(lo);
    spec.has_hi = true;
    spec.hi = rel::Value(lo + kKeySpan / 5);
    lo = (lo + 7) % kKeySpan;
    out.clear();
    Check(exec::ProbeIndex(*table, spec, &out), "range probe");
    benchmark::DoNotOptimize(out.data());
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
  state.SetLabel("rows=" + std::to_string(rows));
}
BENCHMARK(BM_IndexRangeScan)->Arg(1000)->Arg(16000)->Unit(benchmark::kMicrosecond);

void CleanupAll() {
  for (size_t rows : {1000u, 4000u, 16000u}) RemoveDbFiles(rows);
}

}  // namespace
}  // namespace insightnotes::bench

int main(int argc, char** argv) {
  int result = insightnotes::bench::RunBenchmarksWithJsonReport(argc, argv,
                                                                "BENCH_index.json");
  insightnotes::bench::CleanupAll();
  return result;
}
