#!/usr/bin/env python3
"""Validates the machine-readable benchmark report (BENCH_query.json).

The bench binaries built on bench/bench_util.h always emit a Google
Benchmark JSON report next to the console output. CI runs this script
after a bench smoke invocation to make sure the report parses and the
fields downstream tooling depends on are present with sane values.

Usage: check_bench_json.py [report.json ...]
"""

import json
import sys


def fail(path, message):
    print(f"{path}: FAIL: {message}", file=sys.stderr)
    return 1


def check_report(path):
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return fail(path, f"unreadable or invalid JSON: {err}")

    for key in ("context", "benchmarks"):
        if key not in report:
            return fail(path, f"missing top-level key '{key}'")

    context = report["context"]
    if not isinstance(context.get("date"), str) or not context["date"]:
        return fail(path, "context.date missing or empty")
    if not isinstance(context.get("num_cpus"), int) or context["num_cpus"] < 1:
        return fail(path, "context.num_cpus missing or < 1")

    benchmarks = report["benchmarks"]
    if not isinstance(benchmarks, list) or not benchmarks:
        return fail(path, "benchmarks array missing or empty")

    for i, entry in enumerate(benchmarks):
        where = f"benchmarks[{i}]"
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            return fail(path, f"{where}.name missing or empty")
        for field in ("real_time", "cpu_time"):
            value = entry.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                return fail(path, f"{where}.{field} ({name}) missing or negative")
        if entry.get("time_unit") not in ("ns", "us", "ms", "s"):
            return fail(path, f"{where}.time_unit ({name}) invalid")

    status = check_thread_sweeps(path, benchmarks)
    if status:
        return status

    print(f"{path}: OK ({len(benchmarks)} benchmark entries)")
    return 0


def check_thread_sweeps(path, benchmarks):
    """Parallel-executor sweeps (BM_Parallel*) must carry a `threads`
    counter, and every swept family needs its parallelism-1 entry — that is
    the serial baseline the speedup trajectory is computed against."""
    families = {}
    for i, entry in enumerate(benchmarks):
        name = entry.get("name", "")
        if not name.startswith("BM_Parallel"):
            continue
        threads = entry.get("threads")
        if not isinstance(threads, (int, float)) or threads < 1:
            return fail(path, f"benchmarks[{i}].threads ({name}) missing or < 1")
        families.setdefault(name.split("/")[0], set()).add(int(threads))
    for family, seen in sorted(families.items()):
        if max(seen) > 1 and 1 not in seen:
            return fail(path, f"{family}: thread sweep has no parallelism-1 baseline")
    return 0


def main(argv):
    paths = argv[1:] or ["BENCH_query.json"]
    return max(check_report(path) for path in paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
