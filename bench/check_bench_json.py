#!/usr/bin/env python3
"""Validates the machine-readable benchmark report (BENCH_query.json).

The bench binaries built on bench/bench_util.h always emit a Google
Benchmark JSON report next to the console output. CI runs this script
after a bench smoke invocation to make sure the report parses and the
fields downstream tooling depends on are present with sane values.

Usage: check_bench_json.py [report.json ...]
"""

import json
import sys


def fail(path, message):
    print(f"{path}: FAIL: {message}", file=sys.stderr)
    return 1


def check_report(path):
    try:
        with open(path, encoding="utf-8") as handle:
            report = json.load(handle)
    except (OSError, json.JSONDecodeError) as err:
        return fail(path, f"unreadable or invalid JSON: {err}")

    for key in ("context", "benchmarks"):
        if key not in report:
            return fail(path, f"missing top-level key '{key}'")

    context = report["context"]
    if not isinstance(context.get("date"), str) or not context["date"]:
        return fail(path, "context.date missing or empty")
    if not isinstance(context.get("num_cpus"), int) or context["num_cpus"] < 1:
        return fail(path, "context.num_cpus missing or < 1")

    benchmarks = report["benchmarks"]
    if not isinstance(benchmarks, list) or not benchmarks:
        return fail(path, "benchmarks array missing or empty")

    for i, entry in enumerate(benchmarks):
        where = f"benchmarks[{i}]"
        name = entry.get("name")
        if not isinstance(name, str) or not name:
            return fail(path, f"{where}.name missing or empty")
        for field in ("real_time", "cpu_time"):
            value = entry.get(field)
            if not isinstance(value, (int, float)) or value < 0:
                return fail(path, f"{where}.{field} ({name}) missing or negative")
        if entry.get("time_unit") not in ("ns", "us", "ms", "s"):
            return fail(path, f"{where}.time_unit ({name}) invalid")

    status = check_thread_sweeps(path, benchmarks)
    if status:
        return status

    status = check_limit_sweep(path, benchmarks)
    if status:
        return status

    status = check_recovery_sweep(path, benchmarks)
    if status:
        return status

    status = check_cancellation_sweep(path, benchmarks)
    if status:
        return status

    status = check_optimizer_sweep(path, benchmarks)
    if status:
        return status

    status = check_concurrency_sweep(path, benchmarks, context["num_cpus"])
    if status:
        return status

    status = check_index_sweep(path, benchmarks)
    if status:
        return status

    print(f"{path}: OK ({len(benchmarks)} benchmark entries)")
    return 0


def check_thread_sweeps(path, benchmarks):
    """Parallel-executor sweeps (BM_Parallel*) must carry a `threads`
    counter, and every swept family needs its parallelism-1 entry — that is
    the serial baseline the speedup trajectory is computed against."""
    families = {}
    for i, entry in enumerate(benchmarks):
        name = entry.get("name", "")
        if not name.startswith("BM_Parallel"):
            continue
        threads = entry.get("threads")
        if not isinstance(threads, (int, float)) or threads < 1:
            return fail(path, f"benchmarks[{i}].threads ({name}) missing or < 1")
        families.setdefault(name.split("/")[0], set()).add(int(threads))
    for family, seen in sorted(families.items()):
        if max(seen) > 1 and 1 not in seen:
            return fail(path, f"{family}: thread sweep has no parallelism-1 baseline")
    return 0


EXPECTED_TOPK_KS = (8, 64)


def check_limit_sweep(path, benchmarks):
    """The top-k family (BM_ParallelTopK) must sweep the expected k values
    with a parallelism-1 serial baseline per k, carry a rows_pruned counter
    everywhere, actually prune at the tightest k once the plan is parallel,
    and prune monotonically non-increasingly as k grows at a fixed thread
    count (guaranteed because max_threads * min_k <= max_k)."""
    entries = []
    for i, entry in enumerate(benchmarks):
        name = entry.get("name", "")
        if not name.startswith("BM_ParallelTopK"):
            continue
        where = f"benchmarks[{i}] ({name})"
        for counter in ("threads", "limit_k", "rows_pruned"):
            value = entry.get(counter)
            if not isinstance(value, (int, float)) or value < 0:
                return fail(path, f"{where}.{counter} missing or negative")
        entries.append((int(entry["threads"]), int(entry["limit_k"]),
                        float(entry["rows_pruned"]), name))
    if not entries:
        # Reports from other bench binaries simply have no top-k family.
        return 0

    ks_seen = {k for _, k, _, _ in entries}
    if not set(EXPECTED_TOPK_KS) <= ks_seen:
        return fail(path, f"BM_ParallelTopK: k sweep {sorted(ks_seen)} missing "
                          f"expected values {list(EXPECTED_TOPK_KS)}")
    for k in sorted(ks_seen):
        threads = {t for t, kk, _, _ in entries if kk == k}
        if max(threads) > 1 and 1 not in threads:
            return fail(path, f"BM_ParallelTopK k={k}: no parallelism-1 baseline")

    min_k = min(ks_seen)
    for t, k, pruned, name in entries:
        if t > 1 and k == min_k and pruned <= 0:
            return fail(path, f"{name}: parallel top-k with k={k} pruned no rows")

    by_threads = {}
    for t, k, pruned, _ in entries:
        by_threads.setdefault(t, []).append((k, pruned))
    for t, points in sorted(by_threads.items()):
        points.sort()
        for (k_lo, pruned_lo), (k_hi, pruned_hi) in zip(points, points[1:]):
            if pruned_hi > pruned_lo:
                return fail(path, f"BM_ParallelTopK threads={t}: rows_pruned grew "
                                  f"from {pruned_lo} (k={k_lo}) to {pruned_hi} "
                                  f"(k={k_hi}); pruning must not increase with k")
    return 0


def check_recovery_sweep(path, benchmarks):
    """The recovery family (BM_ParallelRecovery) sweeps WAL-replay
    parallelism over a fixed prebuilt log: every entry must carry the
    threads / wal_records / chains counters, the parallelism-1 serial
    baseline must be present (the generic thread-sweep check enforces it
    too), every entry must have replayed the same record count (otherwise
    the sweep timed different workloads), and the parallel entries must
    have partitioned replay into more than one chain — a single chain
    cannot scale with cores."""
    entries = []
    for i, entry in enumerate(benchmarks):
        name = entry.get("name", "")
        if not name.startswith("BM_ParallelRecovery"):
            continue
        where = f"benchmarks[{i}] ({name})"
        for counter in ("threads", "wal_records", "chains"):
            value = entry.get(counter)
            if not isinstance(value, (int, float)) or value < 1:
                return fail(path, f"{where}.{counter} missing or < 1")
        entries.append((int(entry["threads"]), int(entry["wal_records"]),
                        int(entry["chains"]), name))
    if not entries:
        # Reports from other bench binaries simply have no recovery family.
        return 0

    threads_seen = {t for t, _, _, _ in entries}
    if max(threads_seen) > 1 and 1 not in threads_seen:
        return fail(path, "BM_ParallelRecovery: no parallelism-1 baseline")
    records_seen = {r for _, r, _, _ in entries}
    if len(records_seen) != 1:
        return fail(path, f"BM_ParallelRecovery: replayed record counts differ "
                          f"across the sweep: {sorted(records_seen)}")
    for t, _, chains, name in entries:
        if t > 1 and chains < 2:
            return fail(path, f"{name}: parallel replay produced {chains} "
                              f"chain(s); partitioning did not happen")
    return 0


def check_cancellation_sweep(path, benchmarks):
    """The query-lifecycle families (BM_CancelUnwind / BM_MemoryBudgetOverhead)
    must carry a `threads` counter with a parallelism-1 baseline, and the
    overhead family must sweep both sides of the comparison — every thread
    count needs a budgeted AND an unbudgeted entry, plus a positive mem_peak
    on the budgeted side (a zero peak means accounting never ran and the
    "overhead" measured nothing)."""
    cancel_threads = set()
    overhead = {}
    for i, entry in enumerate(benchmarks):
        name = entry.get("name", "")
        if not (name.startswith("BM_CancelUnwind")
                or name.startswith("BM_MemoryBudgetOverhead")):
            continue
        where = f"benchmarks[{i}] ({name})"
        threads = entry.get("threads")
        if not isinstance(threads, (int, float)) or threads < 1:
            return fail(path, f"{where}.threads missing or < 1")
        if name.startswith("BM_CancelUnwind"):
            cancel_threads.add(int(threads))
            continue
        budgeted = entry.get("budgeted")
        if budgeted not in (0, 1, 0.0, 1.0):
            return fail(path, f"{where}.budgeted missing or not 0/1")
        if budgeted and not entry.get("mem_peak", 0) > 0:
            return fail(path, f"{where}: budgeted run reports no mem_peak")
        overhead.setdefault(int(threads), set()).add(int(budgeted))
    if not cancel_threads and not overhead:
        # Reports from other bench binaries have no lifecycle families.
        return 0

    if cancel_threads and max(cancel_threads) > 1 and 1 not in cancel_threads:
        return fail(path, "BM_CancelUnwind: no parallelism-1 baseline")
    for threads, sides in sorted(overhead.items()):
        if sides != {0, 1}:
            return fail(path, f"BM_MemoryBudgetOverhead threads={threads}: "
                              f"needs both budgeted and unbudgeted entries, "
                              f"saw budgeted={sorted(sides)}")
    if overhead and max(overhead) > 1 and 1 not in overhead:
        return fail(path, "BM_MemoryBudgetOverhead: no parallelism-1 baseline")
    return 0


# The optimized plan may not regress past this factor of the rule-driven
# plan. The bench workloads are engineered with >= 5x margins (index probe
# vs 20k-row scan, 1-row-first join vs a 100k-row intermediate), so 1.25
# only absorbs timer noise, never a real plan-choice regression.
OPTIMIZER_TOLERANCE = 1.25


def check_optimizer_sweep(path, benchmarks):
    """The optimizer families (BM_Opt*) sweep the same query rule-driven
    (optimized=0) and cost-based (optimized=1). Both sides must be present
    per family and the optimized side must be no slower than the
    rule-driven side (within OPTIMIZER_TOLERANCE) — the optimizer's whole
    contract is that it never picks a worse plan than the identity one."""
    families = {}
    for i, entry in enumerate(benchmarks):
        name = entry.get("name", "")
        if not name.startswith("BM_Opt"):
            continue
        where = f"benchmarks[{i}] ({name})"
        optimized = entry.get("optimized")
        if optimized not in (0, 1, 0.0, 1.0):
            return fail(path, f"{where}.optimized missing or not 0/1")
        family = name.split("/")[0]
        families.setdefault(family, {}).setdefault(int(optimized), []).append(
            float(entry["real_time"]))
    if not families:
        # Reports from other bench binaries have no optimizer families.
        return 0

    for family, sides in sorted(families.items()):
        if set(sides) != {0, 1}:
            return fail(path, f"{family}: needs both rule-driven and optimized "
                              f"entries, saw optimized={sorted(sides)}")
        baseline = min(sides[0])
        optimized = min(sides[1])
        if optimized > baseline * OPTIMIZER_TOLERANCE:
            return fail(path, f"{family}: optimized plan took {optimized:.3f} "
                              f"vs rule-driven {baseline:.3f} (> {OPTIMIZER_TOLERANCE}x); "
                              f"the cost-based plan regressed")
    return 0


# Successive reader counts on the idle side may not lose more than this
# fraction of throughput while they still fit the host's cores. Scaling is
# allowed to be flat (slot contention, 1-core CI hosts); what the check
# rejects is throughput actively collapsing as readers are added, which is
# the signature of a shared lock on the read path.
CONCURRENCY_TOLERANCE = 0.85


def check_concurrency_sweep(path, benchmarks, num_cpus):
    """The concurrent-session families (BM_Concurrent*) sweep reader counts
    against one shared engine, idle and under live AnnotateBatch ingest.
    Every entry must carry readers / with_ingest / qps counters, each
    (family, ingest-side) series needs its 1-reader baseline, at least one
    with-ingest series must be present (reader scaling with an idle writer
    does not exercise snapshot isolation at all), and on the idle side
    throughput must be monotone non-decreasing — within tolerance — for
    reader counts that still fit the host's cores. Beyond num_cpus readers
    merely time-slice, so a flat or declining tail there is acceptable."""
    series = {}
    for i, entry in enumerate(benchmarks):
        name = entry.get("name", "")
        if not name.startswith("BM_Concurrent"):
            continue
        where = f"benchmarks[{i}] ({name})"
        readers = entry.get("readers")
        if not isinstance(readers, (int, float)) or readers < 1:
            return fail(path, f"{where}.readers missing or < 1")
        with_ingest = entry.get("with_ingest")
        if with_ingest not in (0, 1, 0.0, 1.0):
            return fail(path, f"{where}.with_ingest missing or not 0/1")
        qps = entry.get("qps")
        if not isinstance(qps, (int, float)) or qps <= 0:
            return fail(path, f"{where}.qps missing or not positive")
        family = name.split("/")[0]
        series.setdefault((family, int(with_ingest)), {})[int(readers)] = float(qps)
    if not series:
        # Reports from other bench binaries have no concurrency families.
        return 0

    if not any(ingest for _, ingest in series):
        return fail(path, "BM_Concurrent*: no with-ingest series present")
    for (family, ingest), points in sorted(series.items()):
        if 1 not in points:
            return fail(path, f"{family} (ingest={ingest}): reader sweep has "
                              f"no 1-reader baseline")
        if ingest:
            continue
        counts = sorted(points)
        best_so_far = points[counts[0]]
        for readers in counts[1:]:
            if readers > num_cpus:
                break
            if points[readers] < best_so_far * CONCURRENCY_TOLERANCE:
                return fail(path, f"{family}: throughput fell from "
                                  f"{best_so_far:.1f} to {points[readers]:.1f} qps "
                                  f"at {readers} readers (<= {num_cpus} cores); "
                                  f"reader scaling regressed")
            best_so_far = max(best_so_far, points[readers])
    return 0


# The persistent-open series may not spread wider than this factor across
# the table-size sweep. The sweep spans 16x in rows; adoption reads a
# fixed number of WAL records and metadata pages regardless of table
# size, so anything approaching linear growth (16x) means the reopen
# rebuilt the tree from a scan. 5x absorbs filesystem and timer noise.
INDEX_OPEN_TOLERANCE = 5.0


def check_index_sweep(path, benchmarks):
    """The persistent-index family: BM_IndexOpenPersistent (adoption on
    reopen, persistent=1) must carry rows/persistent counters, sweep a
    >= 4x row span, and stay FLAT in table size — open time scaling with
    rows is the signature of a restart-time table-scan rebuild, the exact
    thing the WAL index checkpoint exists to avoid. The BM_IndexRebuild
    contrast series (persistent=0) must be present and must grow with
    rows (it does the O(N) work)."""
    opens = {}
    rebuilds = {}
    for i, entry in enumerate(benchmarks):
        name = entry.get("name", "")
        if not (name.startswith("BM_IndexOpenPersistent")
                or name.startswith("BM_IndexRebuild")):
            continue
        where = f"benchmarks[{i}] ({name})"
        rows = entry.get("rows")
        if not isinstance(rows, (int, float)) or rows < 1:
            return fail(path, f"{where}.rows missing or < 1")
        persistent = entry.get("persistent")
        if persistent not in (0, 1, 0.0, 1.0):
            return fail(path, f"{where}.persistent missing or not 0/1")
        series = opens if name.startswith("BM_IndexOpenPersistent") else rebuilds
        expected = 1 if series is opens else 0
        if int(persistent) != expected:
            return fail(path, f"{where}.persistent={persistent}, "
                              f"expected {expected}")
        # Keep the best time per size: benchmark repetitions append
        # mean/median/stddev entries whose real_time is not a sample.
        prev = series.get(int(rows))
        time = float(entry["real_time"])
        series[int(rows)] = time if prev is None else min(prev, time)
    if not opens and not rebuilds:
        # Reports from other bench binaries have no index families.
        return 0

    if not opens:
        return fail(path, "BM_IndexOpenPersistent: series missing")
    if not rebuilds:
        return fail(path, "BM_IndexRebuild: contrast series missing")
    if len(opens) < 2 or max(opens) < 4 * min(opens):
        return fail(path, f"BM_IndexOpenPersistent: row sweep {sorted(opens)} "
                          f"spans less than 4x")
    slowest = max(opens.values())
    fastest = min(opens.values())
    if fastest > 0 and slowest > fastest * INDEX_OPEN_TOLERANCE:
        return fail(path, f"BM_IndexOpenPersistent: open time spread "
                          f"{slowest:.3f}/{fastest:.3f} exceeds "
                          f"{INDEX_OPEN_TOLERANCE}x across the row sweep; "
                          f"reopen is scaling with table size (rebuild?)")
    if len(rebuilds) >= 2 and rebuilds[max(rebuilds)] <= rebuilds[min(rebuilds)]:
        return fail(path, f"BM_IndexRebuild: build time did not grow from "
                          f"{min(rebuilds)} to {max(rebuilds)} rows; the "
                          f"contrast series measured nothing")
    return 0


def main(argv):
    paths = argv[1:] or ["BENCH_query.json"]
    return max(check_report(path) for path in paths)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
