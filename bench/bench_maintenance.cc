// Experiment E1 — incremental summary maintenance (Section 2.3).
//
// Series 1: annotation-insertion throughput per summary type as the number
//           of annotations already on the tuple grows (incremental cost).
// Series 2: incremental maintenance vs. rebuild-from-scratch after a batch
//           of insertions — the paper's motivation for incremental updates.
//
// Expected shape: classifier/snippet insertion cost is ~flat (per-document
// work only); clustering grows mildly with the number of groups; rebuild
// cost grows linearly with the annotation count, so incremental wins by a
// widening margin.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "workload/annotation_gen.h"

namespace insightnotes::bench {
namespace {

enum InstanceKind : int { kClassifier = 0, kCluster = 1, kSnippet = 2 };

std::unique_ptr<core::SummaryInstance> MakeInstance(InstanceKind kind) {
  switch (kind) {
    case kClassifier: {
      auto instance = core::SummaryInstance::MakeClassifier(
          "bench", {"Behavior", "Disease", "Anatomy", "Other"});
      for (const auto& [label, text] :
           workload::AnnotationGenerator::ClassBird1Training()) {
        Check(instance->classifier()->Train(label, text), "train");
      }
      return instance;
    }
    case kCluster:
      return core::SummaryInstance::MakeCluster("bench", 0.35);
    case kSnippet:
      return core::SummaryInstance::MakeSnippet("bench");
  }
  return nullptr;
}

const char* KindName(InstanceKind kind) {
  switch (kind) {
    case kClassifier:
      return "classifier";
    case kCluster:
      return "cluster";
    case kSnippet:
      return "snippet";
  }
  return "?";
}

/// Marginal maintenance cost at a steady population: each iteration folds
/// one new annotation into a summary carrying `preexisting` annotations and
/// then removes it again (keeping the measured state size constant across
/// iterations).
void BM_IncrementalInsert(benchmark::State& state) {
  auto kind = static_cast<InstanceKind>(state.range(0));
  size_t preexisting = static_cast<size_t>(state.range(1));

  auto instance = MakeInstance(kind);
  auto object = instance->NewObject();
  workload::AnnotationGenerator gen(7);
  const auto& species = workload::CuratedSpecies()[0];
  ann::AnnotationId next_id = 0;
  for (size_t i = 0; i < preexisting; ++i) {
    auto g = kind == kSnippet ? gen.GenerateDocument(species, 5)
                              : gen.GenerateComment(species);
    g.annotation.id = next_id++;
    Check(object->AddAnnotation(g.annotation), "preload");
  }
  // A fixed pool of extra annotations cycled through the loop (ids above
  // the preloaded range so they never collide).
  std::vector<ann::Annotation> pool;
  for (size_t i = 0; i < 128; ++i) {
    auto g = kind == kSnippet ? gen.GenerateDocument(species, 5)
                              : gen.GenerateComment(species);
    g.annotation.id = next_id + i;
    pool.push_back(g.annotation);
  }

  size_t i = 0;
  for (auto _ : state) {
    const ann::Annotation& note = pool[i++ % pool.size()];
    Check(object->AddAnnotation(note), "add");
    if (object->Contains(note.id)) {
      Check(object->RemoveAnnotation(note.id), "remove");
    }
  }
  state.SetLabel(KindName(kind));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IncrementalInsert)
    ->ArgsProduct({{kClassifier, kCluster, kSnippet}, {0, 50, 200, 500}})
    ->Unit(benchmark::kMicrosecond);

/// End-to-end engine path: Annotate() with all four standard instances
/// linked, as a function of the target tuple's current annotation count.
void BM_EngineAnnotatePath(benchmark::State& state) {
  size_t preexisting = static_cast<size_t>(state.range(0));
  core::Engine engine;
  Check(engine.Init(), "init");
  workload::WorkloadConfig config;
  config.num_species = 4;
  config.annotations_per_tuple = 0;
  workload::WorkloadBuilder builder(config);
  Check(builder.BuildBase(&engine), "base");
  workload::AnnotationGenerator gen(11);
  const auto& species = workload::CuratedSpecies()[0];
  auto annotate = [&](rel::RowId row) {
    auto g = gen.GenerateComment(species);
    core::AnnotateSpec spec;
    spec.table = "birds";
    spec.row = row;
    spec.body = g.annotation.body;
    spec.author = g.annotation.author;
    Check(engine.Annotate(spec), "annotate");
  };
  for (size_t i = 0; i < preexisting; ++i) annotate(0);
  for (auto _ : state) {
    annotate(0);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
// Fixed iteration count: the annotated tuple must not grow far past its
// configured starting population during measurement.
BENCHMARK(BM_EngineAnnotatePath)
    ->Arg(0)
    ->Arg(100)
    ->Arg(400)
    ->Iterations(100)
    ->Unit(benchmark::kMicrosecond);

/// Series 3: batched ingest throughput vs. worker threads (AnnotateBatch).
/// A batch spread uniformly over many rows is folded into all four standard
/// instances, sharded by target row. Compare items/s across threads=1/2/4/8
/// — the parallel results are byte-identical to serial (see
/// integration/parallel_ingest_test.cc), so this measures pure speedup.
/// Wall-clock (UseRealTime) is the honest metric: the main thread sleeps
/// while shards fold, so CPU time would overstate throughput wildly. The
/// observed speedup is gated by the machine's core count — on a 1-core
/// container the sweep is flat by construction (~95% of batch time is in
/// the row-sharded fold, but there is no second core to run it on).
void BM_ParallelBatchIngest(benchmark::State& state) {
  size_t threads = static_cast<size_t>(state.range(0));
  constexpr size_t kRows = 64;
  constexpr size_t kBatchSize = 512;

  // One shared batch: generation cost stays outside the measured region.
  // Realistic mix of short comments and attached documents (the documents
  // carry the snippet/cluster mining weight).
  workload::AnnotationGenerator gen(17);
  const auto& species = workload::CuratedSpecies();
  std::vector<core::AnnotateSpec> specs;
  specs.reserve(kBatchSize);
  for (size_t i = 0; i < kBatchSize; ++i) {
    const auto& sp = species[i % species.size()];
    auto g = i % 8 == 0 ? gen.GenerateDocument(sp, 8) : gen.GenerateComment(sp);
    core::AnnotateSpec spec;
    spec.table = "birds";
    spec.row = static_cast<rel::RowId>(i % kRows);
    spec.body = g.annotation.body;
    spec.author = g.annotation.author;
    spec.kind = g.annotation.kind;
    spec.title = g.annotation.title;
    specs.push_back(std::move(spec));
  }
  // Warm-up batch (unmeasured): spawns the engine's ingest pool so thread
  // start-up cost is not charged to the first measured batch.
  std::vector<core::AnnotateSpec> warmup(specs.begin(), specs.begin() + 2);

  for (auto _ : state) {
    state.PauseTiming();
    core::Engine engine;
    Check(engine.Init(), "init");
    workload::WorkloadConfig config;
    config.num_species = kRows;
    config.annotations_per_tuple = 0;
    workload::WorkloadBuilder builder(config);
    Check(builder.BuildBase(&engine), "base");
    Check(engine.AnnotateBatch(warmup, {.num_threads = threads}), "warmup");
    state.ResumeTiming();
    Check(engine.AnnotateBatch(specs, {.num_threads = threads}), "batch");
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * kBatchSize));
  state.SetLabel("threads=" + std::to_string(threads));
}
BENCHMARK(BM_ParallelBatchIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Iterations(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

/// Incremental total cost vs. rebuild-from-scratch for a row with N
/// annotations (the rebuild is what a non-incremental engine pays per
/// refresh).
void BM_RebuildRow(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  core::Engine engine;
  Check(engine.Init(), "init");
  workload::WorkloadConfig config;
  config.num_species = 2;
  config.annotations_per_tuple = 0;
  workload::WorkloadBuilder builder(config);
  Check(builder.BuildBase(&engine), "base");
  workload::AnnotationGenerator gen(13);
  const auto& species = workload::CuratedSpecies()[0];
  for (size_t i = 0; i < n; ++i) {
    auto g = gen.GenerateComment(species);
    core::AnnotateSpec spec;
    spec.table = "birds";
    spec.row = 0;
    spec.body = g.annotation.body;
    Check(engine.Annotate(spec), "annotate");
  }
  auto table = Check(engine.catalog()->GetTable("birds"), "table");
  for (auto _ : state) {
    Check(engine.summaries()->RebuildRow(table->id(), 0), "rebuild");
  }
  state.SetLabel("rebuild_n=" + std::to_string(n));
}
BENCHMARK(BM_RebuildRow)->Arg(50)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace insightnotes::bench

BENCHMARK_MAIN();
