// Reader-scaling sweep over the epoch-based snapshot machinery: 1/2/4/8
// concurrent sessions each draining pinned-epoch queries against a shared
// engine, with and without a live AnnotateBatch writer in the background.
// Three reader workloads: plain scan, summary-predicate filter
// (SUMMARY_COUNT), and zoom-in against a retained query (shared-cache
// pressure). Before every with-ingest sweep a pinned-epoch oracle pins a
// snapshot and re-runs the query twice under live ingest — the rendered
// results must be byte-identical, or the benchmark aborts: numbers from a
// torn read would be worthless. Emits BENCH_concurrency.json alongside
// the console report (see bench_util.h / check_bench_json.py).

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "bench/bench_util.h"
#include "core/engine_snapshot.h"
#include "sql/parser.h"
#include "sql/planner.h"

namespace insightnotes::bench {
namespace {

constexpr size_t kSpecies = 256;  // One bird row per species.
constexpr size_t kAnnotationsPerTuple = 12;
// With-ingest sweeps build a private engine per benchmark (the writer
// mutates it), so keep that workload smaller than the shared idle one.
constexpr size_t kIngestSpecies = 128;
constexpr size_t kIngestAnnotations = 6;
// Queries each reader session issues per timed iteration. Large enough to
// amortize the thread spawn, small enough to keep the 8-reader point fast.
constexpr size_t kQueriesPerReader = 8;

const char kScanQuery[] =
    "SELECT b.id, b.name, b.weight FROM birds b WHERE b.weight > 1.0";
const char kSummaryFilterQuery[] =
    "SELECT b.id, b.name FROM birds b WHERE SUMMARY_COUNT(ClassBird1) > 0";

/// Plans `text` serially and runs it through Engine::Execute, which pins
/// the current epoch for the query's lifetime (or reuses
/// `options.snapshot` when set).
core::QueryResult RunPinnedQuery(core::Engine* engine, const std::string& text,
                                 core::ExecuteOptions options) {
  sql::Statement statement = Check(sql::Parse(text), "parse");
  auto* select = std::get_if<sql::SelectStatement>(&statement);
  if (select == nullptr) std::abort();
  auto plan = Check(sql::PlanSelect(*select, engine, {}), "plan");
  return Check(engine->Execute(std::move(plan), std::move(options)), "execute");
}

/// One reader session: kQueriesPerReader back-to-back unretained queries.
void ReaderLoop(core::Engine* engine, const std::string& query) {
  for (size_t q = 0; q < kQueriesPerReader; ++q) {
    core::ExecuteOptions options;
    options.retain = false;
    benchmark::DoNotOptimize(
        RunPinnedQuery(engine, query, std::move(options)).rows.size());
  }
}

void ZoomInReaderLoop(core::Engine* engine, core::QueryId qid) {
  for (size_t q = 0; q < kQueriesPerReader; ++q) {
    core::ZoomInRequest request;
    request.qid = qid;
    request.instance_name = "ClassBird1";
    request.component_index = 0;
    benchmark::DoNotOptimize(Check(engine->ZoomIn(request), "zoomin").rows.size());
  }
}

/// Background ingest: small AnnotateBatches in a tight loop (with a short
/// breather so the sweep models steady ingest, not writer saturation).
class IngestWriter {
 public:
  IngestWriter(core::Engine* engine, size_t num_rows)
      : thread_([this, engine, num_rows] {
          static const char* kBodies[] = {
              "observed unusual migration pattern this season",
              "weight sample disputed, see field notebook",
              "plumage suggests a juvenile, reclassify",
          };
          size_t tick = 0;
          while (!stop_.load(std::memory_order_relaxed)) {
            std::vector<core::AnnotateSpec> batch(4);
            for (auto& spec : batch) {
              spec.table = "birds";
              spec.row = static_cast<rel::RowId>(tick % num_rows);
              spec.body = kBodies[tick % 3];
              ++tick;
            }
            Check(engine->AnnotateBatch(batch).status(), "ingest batch");
            std::this_thread::sleep_for(std::chrono::microseconds(500));
          }
        }) {}

  ~IngestWriter() {
    stop_.store(true, std::memory_order_relaxed);
    thread_.join();
  }

 private:
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

/// Pins an epoch and replays `query` against it twice while the writer
/// keeps publishing new epochs; the two rendered results must match byte
/// for byte. A fixed caller-chosen qid keeps the rendering comparable.
void VerifyPinnedOracle(core::Engine* engine, const std::string& query) {
  auto pinned = Check(engine->PinSnapshot(), "pin snapshot");
  auto run = [&]() {
    core::ExecuteOptions options;
    options.retain = false;
    options.qid = core::QueryId{1} << 60;
    options.snapshot = pinned;
    return sql::FormatResult(RunPinnedQuery(engine, query, std::move(options)));
  };
  std::string first = run();
  std::string second = run();
  if (first != second) {
    fprintf(stderr, "pinned-epoch oracle mismatch under live ingest\n");
    std::abort();
  }
}

/// The workload for with-ingest sweeps is rebuilt per benchmark so one
/// sweep's writer traffic doesn't inflate the store the next one scans.
std::unique_ptr<BuiltWorkload> BuildFreshWorkload() {
  auto built = std::make_unique<BuiltWorkload>();
  built->engine = std::make_unique<core::Engine>();
  Check(built->engine->Init(), "engine init");
  workload::WorkloadConfig config;
  config.num_species = kIngestSpecies;
  config.annotations_per_tuple = kIngestAnnotations;
  built->config = config;
  workload::WorkloadBuilder builder(config);
  built->stats = Check(builder.Build(built->engine.get()), "workload build");
  return built;
}

void RunReaderSweep(benchmark::State& state, core::Engine* engine,
                    const std::string& query, bool with_ingest,
                    const char* label) {
  size_t readers = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    std::vector<std::thread> sessions;
    sessions.reserve(readers);
    for (size_t r = 0; r < readers; ++r)
      sessions.emplace_back([&] { ReaderLoop(engine, query); });
    for (auto& session : sessions) session.join();
  }
  state.counters["readers"] = static_cast<double>(readers);
  state.counters["with_ingest"] = with_ingest ? 1.0 : 0.0;
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * readers * kQueriesPerReader),
      benchmark::Counter::kIsRate);
  state.SetLabel(std::string(label) + "/r" + std::to_string(readers) +
                 (with_ingest ? "/ingest" : "/idle"));
}

void BM_ConcurrentScan(benchmark::State& state) {
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  RunReaderSweep(state, built->engine.get(), kScanQuery, /*with_ingest=*/false,
                 "scan");
}

void BM_ConcurrentScanIngest(benchmark::State& state) {
  auto built = BuildFreshWorkload();
  IngestWriter writer(built->engine.get(), built->stats.num_rows);
  VerifyPinnedOracle(built->engine.get(), kScanQuery);
  RunReaderSweep(state, built->engine.get(), kScanQuery, /*with_ingest=*/true,
                 "scan");
}

void BM_ConcurrentSummaryFilter(benchmark::State& state) {
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  RunReaderSweep(state, built->engine.get(), kSummaryFilterQuery,
                 /*with_ingest=*/false, "summary-filter");
}

void BM_ConcurrentSummaryFilterIngest(benchmark::State& state) {
  auto built = BuildFreshWorkload();
  IngestWriter writer(built->engine.get(), built->stats.num_rows);
  VerifyPinnedOracle(built->engine.get(), kSummaryFilterQuery);
  RunReaderSweep(state, built->engine.get(), kSummaryFilterQuery,
                 /*with_ingest=*/true, "summary-filter");
}

void RunZoomInSweep(benchmark::State& state, core::Engine* engine,
                    bool with_ingest) {
  size_t readers = static_cast<size_t>(state.range(0));
  // Retain one query for the readers to zoom into; the cached result is
  // keyed by the retained query's pinned epoch, so it stays a cache hit
  // even while the writer publishes new epochs.
  core::QueryResult retained =
      RunPinnedQuery(engine, kScanQuery, core::ExecuteOptions{});
  for (auto _ : state) {
    std::vector<std::thread> sessions;
    sessions.reserve(readers);
    for (size_t r = 0; r < readers; ++r)
      sessions.emplace_back([&] { ZoomInReaderLoop(engine, retained.qid); });
    for (auto& session : sessions) session.join();
  }
  state.counters["readers"] = static_cast<double>(readers);
  state.counters["with_ingest"] = with_ingest ? 1.0 : 0.0;
  state.counters["qps"] = benchmark::Counter(
      static_cast<double>(state.iterations() * readers * kQueriesPerReader),
      benchmark::Counter::kIsRate);
  state.SetLabel(std::string("zoom-in/r") + std::to_string(readers) +
                 (with_ingest ? "/ingest" : "/idle"));
}

void BM_ConcurrentZoomIn(benchmark::State& state) {
  BuiltWorkload* built = GetWorkload(kSpecies, kAnnotationsPerTuple);
  RunZoomInSweep(state, built->engine.get(), /*with_ingest=*/false);
}

void BM_ConcurrentZoomInIngest(benchmark::State& state) {
  auto built = BuildFreshWorkload();
  IngestWriter writer(built->engine.get(), built->stats.num_rows);
  VerifyPinnedOracle(built->engine.get(), kScanQuery);
  RunZoomInSweep(state, built->engine.get(), /*with_ingest=*/true);
}

BENCHMARK(BM_ConcurrentScan)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ConcurrentScanIngest)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(4);
BENCHMARK(BM_ConcurrentSummaryFilter)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ConcurrentSummaryFilterIngest)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(4);
BENCHMARK(BM_ConcurrentZoomIn)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime();
BENCHMARK(BM_ConcurrentZoomInIngest)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)->UseRealTime()->Iterations(4);

}  // namespace
}  // namespace insightnotes::bench

int main(int argc, char** argv) {
  return insightnotes::bench::RunBenchmarksWithJsonReport(
      argc, argv, "BENCH_concurrency.json");
}
