// Experiment E5 — the AnnotationInvariant/DataInvariant "summarize-once"
// optimization (Section 2.3, Figure 4's Properties field): an annotation
// shared by k tuples is summarized once and the cached result reused,
// versus re-summarizing for every attachment when the properties are off.
//
// Expected shape: with invariants ON, the cost of attaching a shared
// annotation to its k-th tuple is ~flat (cache hit); with invariants OFF it
// pays the full classification/summarization each time — a ~kx total win
// for provenance-style annotations.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "workload/annotation_gen.h"

namespace insightnotes::bench {
namespace {

std::unique_ptr<core::Engine> EngineWithClassifier(bool invariant, size_t rows) {
  auto engine = std::make_unique<core::Engine>();
  Check(engine->Init(), "init");
  rel::Schema schema({{"id", rel::ValueType::kInt64, "t"}});
  Check(engine->CreateTable("t", schema), "table");
  for (size_t i = 0; i < rows; ++i) {
    Check(engine->Insert("t", rel::Tuple({rel::Value(static_cast<int64_t>(i))})),
          "insert");
  }
  core::SummaryProperties properties;
  properties.annotation_invariant = invariant;
  properties.data_invariant = invariant;
  auto instance = core::SummaryInstance::MakeClassifier(
      "nb", {"Behavior", "Disease", "Anatomy", "Other"}, properties);
  for (const auto& [label, text] : workload::AnnotationGenerator::ClassBird1Training()) {
    Check(instance->classifier()->Train(label, text), "train");
  }
  Check(engine->RegisterInstance(std::move(instance)), "register");
  Check(engine->LinkInstance("nb", "t"), "link");
  return engine;
}

/// Attaching one shared annotation to k tuples, invariants on vs. off.
void BM_SharedAnnotationFanout(benchmark::State& state) {
  size_t fanout = static_cast<size_t>(state.range(0));
  bool invariant = state.range(1) == 1;
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = EngineWithClassifier(invariant, fanout);
    core::AnnotateSpec spec;
    spec.table = "t";
    spec.row = 0;
    spec.body =
        "record produced by the experiment pipeline and imported from the "
        "legacy curation database by the provenance team during batch seven";
    state.ResumeTiming();
    auto id = Check(engine->Annotate(spec), "annotate");
    for (rel::RowId row = 1; row < fanout; ++row) {
      Check(engine->AttachAnnotation(id, "t", row), "attach");
    }
    state.PauseTiming();
    auto instance = Check(engine->summaries()->GetInstance("nb"), "instance");
    state.counters["cache_hits"] =
        benchmark::Counter(static_cast<double>(instance->cache_hits()));
    state.ResumeTiming();
  }
  state.SetLabel(invariant ? "invariant-on" : "invariant-off");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * fanout));
}
BENCHMARK(BM_SharedAnnotationFanout)
    ->ArgsProduct({{8, 64, 256}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

/// Snippet variant: the shared annotation is a large document, so each
/// redundant re-summarization is expensive.
void BM_SharedDocumentFanout(benchmark::State& state) {
  size_t fanout = static_cast<size_t>(state.range(0));
  bool invariant = state.range(1) == 1;
  workload::AnnotationGenerator gen(17);
  auto doc = gen.GenerateDocument(workload::CuratedSpecies()[0], 40);
  for (auto _ : state) {
    state.PauseTiming();
    auto engine = std::make_unique<core::Engine>();
    Check(engine->Init(), "init");
    Check(engine->CreateTable("t", rel::Schema({{"id", rel::ValueType::kInt64, "t"}})),
          "table");
    for (size_t i = 0; i < fanout; ++i) {
      Check(engine->Insert("t", rel::Tuple({rel::Value(static_cast<int64_t>(i))})),
            "insert");
    }
    core::SummaryProperties properties;
    properties.annotation_invariant = invariant;
    properties.data_invariant = invariant;
    Check(engine->RegisterInstance(
              core::SummaryInstance::MakeSnippet("snip", {}, properties)),
          "register");
    Check(engine->LinkInstance("snip", "t"), "link");
    core::AnnotateSpec spec;
    spec.table = "t";
    spec.row = 0;
    spec.kind = ann::AnnotationKind::kDocument;
    spec.title = doc.annotation.title;
    spec.body = doc.annotation.body;
    state.ResumeTiming();
    auto id = Check(engine->Annotate(spec), "annotate");
    for (rel::RowId row = 1; row < fanout; ++row) {
      Check(engine->AttachAnnotation(id, "t", row), "attach");
    }
  }
  state.SetLabel(invariant ? "invariant-on" : "invariant-off");
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * fanout));
}
BENCHMARK(BM_SharedDocumentFanout)
    ->ArgsProduct({{8, 64}, {0, 1}})
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace insightnotes::bench

BENCHMARK_MAIN();
