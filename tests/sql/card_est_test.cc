// Hand-checked cardinality estimates: default selectivities without
// statistics, NDV/histogram-driven selectivities with them, join-size
// estimation, the annotation-count distribution behind SUMMARY_COUNT
// predicates, and the ToText/FromText stats round trip.

#include "sql/card_est.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "rel/stats.h"
#include "sql/parser.h"
#include "testutil.h"

namespace insightnotes::sql {
namespace {

using testutil::I;
using testutil::S;

class CardEstTest : public ::testing::Test {
 protected:
  CardEstTest()
      : schema_(rel::Schema({{"a", rel::ValueType::kInt64, "t"},
                             {"s", rel::ValueType::kString, "t"}})) {}

  /// Parses one WHERE predicate and hands back its AST.
  AstExprPtr Where(const std::string& predicate) {
    auto statement = Parse("SELECT t.a FROM t t WHERE " + predicate);
    EXPECT_TRUE(statement.ok()) << statement.status().ToString();
    auto select = std::move(std::get<SelectStatement>(*statement));
    EXPECT_NE(select.where, nullptr);
    return std::move(select.where);
  }

  double Sel(const std::string& predicate, const rel::TableStats* stats) {
    AstExprPtr pred = Where(predicate);
    return EstimateSelectivity(*pred, schema_, stats);
  }

  /// Stats for t(a, s) with a = 0..99 (distinct) and s cycling 10 strings.
  rel::TableStats UniformStats() {
    rel::TableStats stats;
    stats.row_count = 100;
    std::vector<rel::Value> a_values, s_values;
    for (int64_t i = 0; i < 100; ++i) {
      a_values.push_back(I(i));
      s_values.push_back(S("s" + std::to_string(i % 10)));
    }
    stats.columns.push_back(rel::BuildColumnStats(std::move(a_values)));
    stats.columns.push_back(rel::BuildColumnStats(std::move(s_values)));
    return stats;
  }

  /// Like UniformStats but with a = 10..109, so literals below 10 are
  /// provably out of range without needing negative literals.
  rel::TableStats ShiftedStats() {
    rel::TableStats stats;
    stats.row_count = 100;
    std::vector<rel::Value> values;
    for (int64_t i = 10; i < 110; ++i) values.push_back(I(i));
    stats.columns.push_back(rel::BuildColumnStats(std::move(values)));
    stats.columns.push_back(rel::ColumnStats{});
    return stats;
  }

  rel::Schema schema_;
};

TEST_F(CardEstTest, DefaultsWithoutStats) {
  EXPECT_DOUBLE_EQ(Sel("t.a = 5", nullptr), kDefaultEqSelectivity);
  EXPECT_DOUBLE_EQ(Sel("t.a < 5", nullptr), kDefaultRangeSelectivity);
  EXPECT_DOUBLE_EQ(Sel("t.a >= 5", nullptr), kDefaultRangeSelectivity);
  EXPECT_DOUBLE_EQ(Sel("t.a != 5", nullptr), 1.0 - kDefaultEqSelectivity);
  // Conjunction multiplies, disjunction inclusion-excludes, NOT complements.
  EXPECT_DOUBLE_EQ(Sel("t.a = 5 AND t.a < 9", nullptr), 0.1 * 0.3);
  EXPECT_DOUBLE_EQ(Sel("t.a = 5 OR t.a < 9", nullptr), 0.1 + 0.3 - 0.1 * 0.3);
  EXPECT_DOUBLE_EQ(Sel("NOT t.a = 5", nullptr), 0.9);
  // Shapes with no column-vs-literal normal form fall back by operator.
  EXPECT_DOUBLE_EQ(Sel("t.a + 1 = 5", nullptr), kDefaultEqSelectivity);
}

TEST_F(CardEstTest, EqualitySelectivityFromNdv) {
  rel::TableStats stats = UniformStats();
  // 100 distinct values, no nulls: 1/ndv of the full mass.
  EXPECT_NEAR(Sel("t.a = 50", &stats), 0.01, 1e-9);
  EXPECT_NEAR(Sel("50 = t.a", &stats), 0.01, 1e-9);
  // Outside [min, max]: provably empty. (A negative literal parses as the
  // arithmetic 0 - k, so the below-min probe uses a shifted domain.)
  EXPECT_DOUBLE_EQ(Sel("t.a = 200", &stats), 0.0);
  rel::TableStats shifted = ShiftedStats();
  EXPECT_DOUBLE_EQ(Sel("t.a = 5", &shifted), 0.0);
  // String column: 10 distinct values.
  EXPECT_NEAR(Sel("t.s = 's3'", &stats), 0.1, 1e-9);
}

TEST_F(CardEstTest, RangeSelectivityFromHistogram) {
  rel::TableStats stats = UniformStats();
  // Uniform 0..99: the equi-depth histogram puts ~half the mass below 50.
  EXPECT_NEAR(Sel("t.a < 50", &stats), 0.5, 0.05);
  EXPECT_NEAR(Sel("t.a >= 90", &stats), 0.1, 0.05);
  EXPECT_NEAR(Sel("t.a > 25 AND t.a < 75", &stats), 0.5, 0.07);
  // Literal-on-the-left flips the operator: 50 > t.a == t.a < 50.
  EXPECT_NEAR(Sel("50 > t.a", &stats), 0.5, 0.05);
  // Ranges subsuming the whole domain / fully below it.
  EXPECT_NEAR(Sel("t.a <= 99", &stats), 1.0, 0.02);
  rel::TableStats shifted = ShiftedStats();
  EXPECT_DOUBLE_EQ(Sel("t.a < 5", &shifted), 0.0);
}

TEST_F(CardEstTest, NullFractionScalesEstimates) {
  rel::TableStats stats;
  stats.row_count = 100;
  std::vector<rel::Value> values;
  for (int64_t i = 0; i < 50; ++i) values.push_back(I(i));
  for (int64_t i = 0; i < 50; ++i) values.emplace_back();
  stats.columns.push_back(rel::BuildColumnStats(std::move(values)));
  stats.columns.push_back(rel::ColumnStats{});
  // Half the rows are NULL and never satisfy a comparison: eq selectivity
  // is (1/50 distinct) * (0.5 non-null) of ALL rows.
  EXPECT_NEAR(Sel("t.a = 10", &stats), 0.01, 1e-9);
  EXPECT_NEAR(Sel("t.a < 25", &stats), 0.25, 0.05);
}

TEST_F(CardEstTest, BuildColumnStatsProperties) {
  std::vector<rel::Value> values = {I(5), I(1), I(9), I(1), rel::Value(), I(5)};
  rel::ColumnStats stats = rel::BuildColumnStats(std::move(values), 4);
  EXPECT_EQ(stats.non_null_count, 5u);
  EXPECT_EQ(stats.null_count, 1u);
  EXPECT_EQ(stats.ndv, 3u);  // {1, 5, 9}.
  EXPECT_EQ(stats.min.AsInt64(), 1);
  EXPECT_EQ(stats.max.AsInt64(), 9);
  ASSERT_FALSE(stats.bounds.empty());
  EXPECT_EQ(stats.bounds.front().AsInt64(), 1);
  EXPECT_EQ(stats.bounds.back().AsInt64(), 9);
  EXPECT_DOUBLE_EQ(stats.NonNullFraction(), 5.0 / 6.0);
}

TEST_F(CardEstTest, JoinRowEstimates) {
  // |L| * |R| / max(ndv): a key-foreign-key join keeps the fact side.
  EXPECT_DOUBLE_EQ(EstimateJoinRows(1000, 100, 50, 100), 1000.0);
  // NDVs clamp to the side's row count (can't have more distincts than rows).
  EXPECT_DOUBLE_EQ(EstimateJoinRows(10, 10, 1000, 1000), 10.0);
  // Degenerate inputs stay finite; unknown NDVs floor at 1 (cross-like).
  EXPECT_DOUBLE_EQ(EstimateJoinRows(0, 100, 10, 10), 0.0);
  EXPECT_DOUBLE_EQ(EstimateJoinRows(100, 100, 0, 0), 100.0 * 100.0);
}

TEST_F(CardEstTest, ColumnNdvFallsBackToRowCount) {
  rel::TableStats stats = UniformStats();
  EXPECT_DOUBLE_EQ(ColumnNdv(schema_, "t.a", &stats, 7.0), 100.0);
  EXPECT_DOUBLE_EQ(ColumnNdv(schema_, "t.s", &stats, 7.0), 10.0);
  EXPECT_DOUBLE_EQ(ColumnNdv(schema_, "t.a", nullptr, 7.0), 7.0);
  EXPECT_DOUBLE_EQ(ColumnNdv(schema_, "t.ghost", &stats, 7.0), 7.0);
}

TEST_F(CardEstTest, AnnCountSelectivity) {
  rel::TableStats stats;
  stats.ann_count_freq = {{0, 80}, {1, 15}, {2, 5}};
  EXPECT_DOUBLE_EQ(stats.AnnCountSelectivity(rel::CompareOp::kGt, 0), 0.20);
  EXPECT_DOUBLE_EQ(stats.AnnCountSelectivity(rel::CompareOp::kEq, 1), 0.15);
  EXPECT_DOUBLE_EQ(stats.AnnCountSelectivity(rel::CompareOp::kLe, 1), 0.95);
  EXPECT_DOUBLE_EQ(stats.AnnCountSelectivity(rel::CompareOp::kGe, 2), 0.05);
  EXPECT_DOUBLE_EQ(stats.AnnCountSelectivity(rel::CompareOp::kNe, 0), 0.20);
  // No distribution recorded: agnostic.
  rel::TableStats empty;
  EXPECT_DOUBLE_EQ(empty.AnnCountSelectivity(rel::CompareOp::kGt, 0), 0.5);
}

TEST_F(CardEstTest, StatsTextRoundTrip) {
  rel::TableStats stats = UniformStats();
  stats.annotated_rows = 12;
  stats.total_annotations = 30;
  stats.ann_count_freq = {{0, 88}, {1, 7}, {3, 5}};
  stats.instances.push_back(rel::InstanceDensity{"Class Bird\n1", 12, 30});
  // A string column with hostile values (spaces, empty, NULL).
  std::vector<rel::Value> hostile = {S("hello world"), S(""), rel::Value(),
                                     S("line\nbreak")};
  stats.columns.push_back(rel::BuildColumnStats(std::move(hostile)));

  std::string text = stats.ToText();
  auto parsed = rel::TableStats::FromText(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->ToText(), text);
  EXPECT_EQ(parsed->row_count, stats.row_count);
  EXPECT_EQ(parsed->columns.size(), stats.columns.size());
  ASSERT_EQ(parsed->instances.size(), 1u);
  EXPECT_EQ(parsed->instances[0].instance, "Class Bird\n1");

  EXPECT_FALSE(rel::TableStats::FromText("garbage here").ok());
  EXPECT_FALSE(rel::TableStats::FromText("anncount 1:2").ok());  // Missing rows.
}

}  // namespace
}  // namespace insightnotes::sql
