// Planner tests: plan shape (projection push-down, join selection) and
// end-to-end correctness of planner-produced trees for query forms not
// covered by the session tests.

#include "sql/planner.h"

#include <gtest/gtest.h>

#include "exec/metrics.h"
#include "sql/parser.h"
#include "sql/session.h"
#include "testutil.h"

namespace insightnotes::sql {
namespace {

class PlannerTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
  }

  std::unique_ptr<exec::Operator> PlanOf(const std::string& sql,
                                         bool normalize = true) {
    auto statement = Parse(sql);
    EXPECT_TRUE(statement.ok()) << statement.status().ToString();
    PlannerOptions options;
    options.project_before_merge = normalize;
    auto plan = PlanSelect(std::get<SelectStatement>(*statement), engine_.get(),
                           options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? std::move(*plan) : nullptr;
  }

  std::vector<core::AnnotatedTuple> Run(const std::string& sql,
                                        bool normalize = true) {
    auto plan = PlanOf(sql, normalize);
    EXPECT_NE(plan, nullptr);
    std::vector<core::AnnotatedTuple> rows;
    if (plan == nullptr) return rows;
    EXPECT_TRUE(plan->Open().ok());
    core::AnnotatedTuple t;
    while (true) {
      auto more = plan->Next(&t);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      rows.push_back(std::move(t));
      t = core::AnnotatedTuple();
    }
    return rows;
  }
};

TEST_F(PlannerTest, OutputSchemaNamesFollowSelectList) {
  auto plan = PlanOf("SELECT r.a, r.c FROM R r");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->OutputSchema().ToString(), "(r.a BIGINT, r.c TEXT)");
}

TEST_F(PlannerTest, AliasRenamesOutput) {
  auto plan = PlanOf("SELECT r.a AS alpha FROM R r");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->OutputSchema().ColumnAt(0).name, "alpha");
}

TEST_F(PlannerTest, StarExpandsAllTables) {
  auto plan = PlanOf("SELECT * FROM R r, S s WHERE r.a = s.x");
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->OutputSchema().NumColumns(), 7u);
}

TEST_F(PlannerTest, EquiJoinUsesHashJoin) {
  auto plan = PlanOf("SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x");
  ASSERT_NE(plan, nullptr);
  // Root is the final projection; its child is the join. We can only check
  // the root's name, so execute and validate results instead.
  auto rows = Run("SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x");
  EXPECT_EQ(rows.size(), 2u);  // Matches on 1 and 3.
}

TEST_F(PlannerTest, ReversedJoinPredicateStillPlans) {
  auto rows = Run("SELECT r.a, s.z FROM R r, S s WHERE s.x = r.a");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(PlannerTest, NonEquiJoinFallsBackToCross) {
  auto rows = Run("SELECT r.a, s.x FROM R r, S s WHERE r.a < s.x");
  // Pairs where a < x: a=1 with x={3,4}, a=2 with x={3,4}, a=3 with x=4.
  EXPECT_EQ(rows.size(), 5u);
}

TEST_F(PlannerTest, ThreeWayJoin) {
  ASSERT_TRUE(engine_
                  ->CreateTable("T", rel::Schema({{"k", rel::ValueType::kInt64, "T"},
                                                  {"v", rel::ValueType::kString, "T"}}))
                  .ok());
  ASSERT_TRUE(engine_->Insert("T", rel::Tuple({testutil::I(1), testutil::S("v1")})).ok());
  auto rows = Run(
      "SELECT r.a, s.z, t.v FROM R r, S s, T t "
      "WHERE r.a = s.x AND s.x = t.k");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(2).AsString(), "v1");
}

TEST_F(PlannerTest, SecondJoinConjunctBecomesFilter) {
  auto rows = Run(
      "SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x AND r.b < s.x + 10");
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(PlannerTest, ExpressionInSelectList) {
  auto rows = Run("SELECT r.a + r.b AS total FROM R r WHERE r.a = 1");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 3);
}

TEST_F(PlannerTest, GlobalAggregateWithoutGroupBy) {
  auto rows = Run("SELECT COUNT(*) AS n, SUM(r.a) AS s, MIN(r.b) AS lo, "
                  "MAX(r.b) AS hi, AVG(r.a) AS mean FROM R r");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 3);
  EXPECT_EQ(rows[0].tuple.ValueAt(1).AsInt64(), 6);
  EXPECT_EQ(rows[0].tuple.ValueAt(2).AsInt64(), 2);
  EXPECT_EQ(rows[0].tuple.ValueAt(3).AsInt64(), 9);
  EXPECT_DOUBLE_EQ(rows[0].tuple.ValueAt(4).AsFloat64(), 2.0);
}

TEST_F(PlannerTest, GroupBySelectOrderIndependent) {
  // Aggregate listed before the group column.
  auto rows = Run("SELECT COUNT(*) AS n, r.b FROM R r GROUP BY r.b ORDER BY r.b");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 2);  // n for b=2.
  EXPECT_EQ(rows[0].tuple.ValueAt(1).AsInt64(), 2);  // b=2.
}

TEST_F(PlannerTest, ProjectionPushDownTrimsScanSchema) {
  // With normalization, the scan side of the plan is projected to needed
  // columns; verify by checking summaries were trimmed for annotations on
  // unreferenced columns (behavioral evidence of the push-down).
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "note on d", {3})).ok());
  auto rows = Run("SELECT r.a FROM R r WHERE r.b = 2");
  ASSERT_EQ(rows.size(), 2u);
  auto* class1 = rows[0].FindSummary("ClassBird1");
  ASSERT_NE(class1, nullptr);
  EXPECT_EQ(class1->NumAnnotations(), 0u);
  // Without normalization the trim happens at the (final) projection, so
  // the end state matches for single-table plans.
  auto naive_rows = Run("SELECT r.a FROM R r WHERE r.b = 2", false);
  EXPECT_EQ(naive_rows[0].FindSummary("ClassBird1")->NumAnnotations(), 0u);
}

TEST_F(PlannerTest, ErrorsPropagate) {
  auto statement = Parse("SELECT nope FROM R r");
  ASSERT_TRUE(statement.ok());
  auto plan = PlanSelect(std::get<SelectStatement>(*statement), engine_.get(), {});
  EXPECT_TRUE(plan.status().IsNotFound());

  statement = Parse("SELECT r.a FROM R r WHERE ghost = 1");
  ASSERT_TRUE(statement.ok());
  plan = PlanSelect(std::get<SelectStatement>(*statement), engine_.get(), {});
  EXPECT_FALSE(plan.ok());
}

TEST_F(PlannerTest, LimitZero) {
  auto rows = Run("SELECT r.a FROM R r LIMIT 0");
  EXPECT_TRUE(rows.empty());
}

TEST_F(PlannerTest, OrderByExpressionDescending) {
  auto rows = Run("SELECT r.a FROM R r ORDER BY r.a * -1");
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 3);
}

// ---------------------------------------------------------------------------
// Top-k LIMIT pushdown metrics: the planner-produced parallel plans must
// surface their pruning work (rows_pruned / bound_updates) through the
// EXPLAIN ANALYZE counter snapshot, and the counters must be internally
// consistent: every input row of a PartialTopK worker is either retained
// in its heap (partial_groups) or counted as pruned.
// ---------------------------------------------------------------------------

class TopKMetricsTest : public PlannerTest {
 protected:
  static constexpr int64_t kBigRows = 300;

  void SetUp() override {
    PlannerTest::SetUp();
    ASSERT_TRUE(engine_
                    ->CreateTable("big",
                                  rel::Schema({{"id", rel::ValueType::kInt64, "big"},
                                               {"val", rel::ValueType::kInt64, "big"}}))
                    .ok());
    for (int64_t i = 0; i < kBigRows; ++i) {
      // val decreasing: early morsels hold the ORDER BY val ASC losers, so
      // a tightening shared bound has real rows to prune.
      ASSERT_TRUE(
          engine_->Insert("big", rel::Tuple({testutil::I(i), testutil::I(kBigRows - i)}))
              .ok());
    }
  }

  std::unique_ptr<exec::Operator> PlanParallel(const std::string& sql,
                                               size_t parallelism,
                                               size_t morsel_size) {
    auto statement = Parse(sql);
    EXPECT_TRUE(statement.ok()) << statement.status().ToString();
    PlannerOptions options;
    options.parallelism = parallelism;
    options.morsel_size = morsel_size;
    auto plan = PlanSelect(std::get<SelectStatement>(*statement), engine_.get(),
                           options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? std::move(*plan) : nullptr;
  }

  static size_t Drain(exec::Operator* plan) {
    EXPECT_TRUE(plan->Open().ok());
    size_t rows = 0;
    core::AnnotatedTuple t;
    while (true) {
      auto more = plan->Next(&t);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      ++rows;
    }
    return rows;
  }

  static void CollectByPrefix(const exec::PlanMetrics& node, const std::string& prefix,
                              std::vector<const exec::PlanMetrics*>* out) {
    if (node.name.rfind(prefix, 0) == 0) out->push_back(&node);
    for (const auto& child : node.children) CollectByPrefix(child, prefix, out);
  }
};

TEST_F(TopKMetricsTest, OrderByLimitReportsConsistentPruningCounters) {
  constexpr size_t kLimit = 5;
  for (size_t parallelism : {2u, 4u, 8u}) {
    SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
    auto plan = PlanParallel("SELECT b.id FROM big b ORDER BY b.val LIMIT 5",
                             parallelism, /*morsel_size=*/16);
    ASSERT_NE(plan, nullptr);
    EXPECT_EQ(Drain(plan.get()), kLimit);

    exec::PlanMetrics metrics = exec::CollectPlanMetrics(plan.get());
    std::vector<const exec::PlanMetrics*> workers;
    CollectByPrefix(metrics, "PartialTopK(5)", &workers);
    ASSERT_EQ(workers.size(), parallelism);

    uint64_t scanned = 0, pruned = 0, retained = 0, bound_updates = 0;
    for (const auto* worker : workers) {
      // Per-worker conservation: every input row was either kept in the
      // size-k heap or counted pruned (shared-bound skip, own-root skip,
      // or heap eviction). A gap here means silently dropped rows.
      EXPECT_EQ(worker->rows_in,
                worker->metrics.rows_pruned + worker->metrics.partial_groups)
          << worker->name;
      EXPECT_LE(worker->metrics.partial_groups, kLimit);
      scanned += worker->rows_in;
      pruned += worker->metrics.rows_pruned;
      retained += worker->metrics.partial_groups;
      bound_updates += worker->metrics.bound_updates;
    }
    EXPECT_EQ(scanned, static_cast<uint64_t>(kBigRows));
    EXPECT_EQ(pruned + retained, static_cast<uint64_t>(kBigRows));
    // 240 rows against k=5 must actually prune, and at least the first
    // worker to fill its heap publishes a shared bound.
    EXPECT_GT(pruned, 0u);
    EXPECT_GE(bound_updates, 1u);

    std::vector<const exec::PlanMetrics*> merges;
    CollectByPrefix(metrics, "SortMerge", &merges);
    ASSERT_EQ(merges.size(), 1u);
    // Runs reach the merge through the shared sink (not Next), so rows_in
    // stays 0; what is observable is that the retained runs cover k and
    // the merge stops exactly at the limit.
    EXPECT_GE(retained, static_cast<uint64_t>(kLimit));
    EXPECT_EQ(merges[0]->metrics.rows_out, kLimit);
  }
}

TEST_F(TopKMetricsTest, QuotaLimitReportsUndispatchedRowsAsPruned) {
  auto plan = PlanParallel("SELECT b.id FROM big b LIMIT 5", /*parallelism=*/4,
                           /*morsel_size=*/16);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(Drain(plan.get()), 5u);

  exec::PlanMetrics metrics = exec::CollectPlanMetrics(plan.get());
  std::vector<const exec::PlanMetrics*> gathers;
  CollectByPrefix(metrics, "Gather", &gathers);
  ASSERT_EQ(gathers.size(), 1u);
  // The row quota stops morsel dispatch once the first morsels cover the
  // limit; with 240 rows and k=5 most of the table is never dispatched.
  EXPECT_GT(gathers[0]->metrics.rows_pruned, 0u);
  // Dispatched + undispatched covers the table exactly once.
  EXPECT_EQ(gathers[0]->rows_in + gathers[0]->metrics.rows_pruned,
            static_cast<uint64_t>(kBigRows));
}

TEST_F(TopKMetricsTest, ExplainAnalyzeRendersPruningFields) {
  SqlSession session(engine_.get());
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 4").ok());
  auto out = session.Execute(
      "EXPLAIN ANALYZE SELECT b.id FROM big b ORDER BY b.val LIMIT 5");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->message.find("PartialTopK(5)"), std::string::npos) << out->message;
  EXPECT_NE(out->message.find("rows_pruned="), std::string::npos) << out->message;
  EXPECT_NE(out->message.find("bound_updates="), std::string::npos) << out->message;
  EXPECT_NE(out->message.find("5 row(s)"), std::string::npos) << out->message;
}

// Cost-based optimizer: join reordering and index-backed access paths.
// Three tables where the rule-driven FROM order joins the two big tables
// first (~18000 intermediate rows) while joining the selectively filtered
// small table early collapses the intermediate to ~1 row.
class OptimizerPlanTest : public PlannerTest {
 protected:
  static constexpr int64_t kBigRows = 600;
  static constexpr int64_t kSmallRows = 100;
  static constexpr int64_t kKeyNdv = 20;

  void SetUp() override {
    PlannerTest::SetUp();
    ASSERT_TRUE(engine_
                    ->CreateTable("a", rel::Schema({{"k", rel::ValueType::kInt64, "a"},
                                                    {"j", rel::ValueType::kInt64, "a"}}))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("b", rel::Schema({{"k", rel::ValueType::kInt64, "b"},
                                                    {"pad", rel::ValueType::kInt64, "b"}}))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("c", rel::Schema({{"j", rel::ValueType::kInt64, "c"},
                                                    {"sel", rel::ValueType::kInt64, "c"}}))
                    .ok());
    for (int64_t i = 0; i < kBigRows; ++i) {
      ASSERT_TRUE(
          engine_->Insert("a", rel::Tuple({testutil::I(i % kKeyNdv), testutil::I(i)}))
              .ok());
      ASSERT_TRUE(
          engine_->Insert("b", rel::Tuple({testutil::I(i % kKeyNdv), testutil::I(i)}))
              .ok());
    }
    for (int64_t i = 0; i < kSmallRows; ++i) {
      ASSERT_TRUE(
          engine_->Insert("c", rel::Tuple({testutil::I(i), testutil::I(i)})).ok());
    }
  }

  void AnalyzeAll() {
    for (const char* table : {"a", "b", "c"}) {
      auto rows = engine_->Analyze(table);
      ASSERT_TRUE(rows.ok()) << rows.status().ToString();
    }
  }

  std::unique_ptr<exec::Operator> PlanOptimized(const std::string& sql,
                                                bool optimize) {
    auto statement = Parse(sql);
    EXPECT_TRUE(statement.ok()) << statement.status().ToString();
    PlannerOptions options;
    options.optimize = optimize;
    options.parallelism = 4;
    auto plan = PlanSelect(std::get<SelectStatement>(*statement), engine_.get(),
                           options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    return plan.ok() ? std::move(*plan) : nullptr;
  }

  /// Rendered rows of `sql`, in emission order.
  std::vector<std::string> RowsOf(const std::string& sql, bool optimize) {
    auto plan = PlanOptimized(sql, optimize);
    EXPECT_NE(plan, nullptr);
    std::vector<std::string> rows;
    if (plan == nullptr) return rows;
    EXPECT_TRUE(plan->Open().ok());
    core::AnnotatedTuple t;
    while (true) {
      auto more = plan->Next(&t);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      rows.push_back(t.tuple.ToString());
      t = core::AnnotatedTuple();
    }
    return rows;
  }

  static constexpr const char* kFlipQuery =
      "SELECT a.j, b.pad, c.sel FROM a a, b b, c c "
      "WHERE a.k = b.k AND a.j = c.j AND c.sel = 5";
};

TEST_F(OptimizerPlanTest, NoReorderWithoutStatistics) {
  // The stats gate: with no ANALYZE, default selectivities are not
  // evidence, so the optimizer keeps the rule-driven FROM order.
  auto plan = PlanOptimized(kFlipQuery, /*optimize=*/true);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(exec::RenderPlan(plan.get()).find("RestoreOrder"),
            std::string::npos);
}

TEST_F(OptimizerPlanTest, JoinOrderFlipsWhenStatsSaySo) {
  AnalyzeAll();
  auto plan = PlanOptimized(kFlipQuery, /*optimize=*/true);
  ASSERT_NE(plan, nullptr);
  // The filtered small table joins before the second big table, and the
  // reordered plan restores canonical FROM order at the root.
  std::string shape = exec::RenderPlan(plan.get());
  EXPECT_NE(shape.find("RestoreOrder"), std::string::npos) << shape;

  std::vector<std::string> expected = RowsOf(kFlipQuery, /*optimize=*/false);
  // a.j = 5 pairs with c.j = 5 and a.k = 5 matches kBigRows/kKeyNdv b-rows.
  EXPECT_EQ(expected.size(), static_cast<size_t>(kBigRows / kKeyNdv));
  EXPECT_EQ(RowsOf(kFlipQuery, /*optimize=*/true), expected);
}

TEST_F(OptimizerPlanTest, IndexProbeReplacesScanForSelectiveEquality) {
  ASSERT_TRUE(engine_->CreateIndex("a", "j").ok());
  // Index probes need no ANALYZE: the index is explicit DDL and the
  // default equality selectivity already makes the probe cheaper.
  const std::string sql = "SELECT a.k FROM a a WHERE a.j = 7";
  auto plan = PlanOptimized(sql, /*optimize=*/true);
  ASSERT_NE(plan, nullptr);
  std::string shape = exec::RenderPlan(plan.get());
  EXPECT_NE(shape.find("IndexScan"), std::string::npos) << shape;
  EXPECT_EQ(RowsOf(sql, /*optimize=*/true), RowsOf(sql, /*optimize=*/false));
}

TEST_F(OptimizerPlanTest, ExplainShowsEstimatedRowsAndSetOptimizerKnob) {
  AnalyzeAll();
  SqlSession session(engine_.get());
  // a.j is unique over 600 rows, so the stats-driven estimate for the
  // equality filter is 1 row — unmistakably different from the 600-row
  // operator heuristic EXPLAIN falls back to without the optimizer.
  auto out = session.Execute("EXPLAIN SELECT a.k FROM a a WHERE a.j = 7");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->message.find("est_rows="), std::string::npos) << out->message;
  EXPECT_NE(out->message.find("(est_rows=1)"), std::string::npos) << out->message;

  auto toggled = session.Execute("SET OPTIMIZER = off");
  ASSERT_TRUE(toggled.ok()) << toggled.status().ToString();
  EXPECT_NE(toggled->message.find("optimizer = off"), std::string::npos);
  out = session.Execute("EXPLAIN SELECT a.k FROM a a WHERE a.j = 7");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->message.find("(est_rows=1)"), std::string::npos) << out->message;
}

}  // namespace
}  // namespace insightnotes::sql
