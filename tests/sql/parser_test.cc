#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace insightnotes::sql {
namespace {

TEST(LexerTest, TokenizesBasicQuery) {
  auto tokens = Lex("SELECT r.a FROM R r WHERE r.b = 2");
  ASSERT_TRUE(tokens.ok());
  ASSERT_GE(tokens->size(), 10u);
  EXPECT_EQ((*tokens)[0].type, TokenType::kKeyword);
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[1].text, "r");
  EXPECT_EQ((*tokens)[2].text, ".");
  EXPECT_EQ(tokens->back().type, TokenType::kEnd);
}

TEST(LexerTest, KeywordsCaseInsensitive) {
  auto tokens = Lex("select SeLeCt FROM");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "SELECT");
  EXPECT_EQ((*tokens)[1].text, "SELECT");
  EXPECT_EQ((*tokens)[2].text, "FROM");
}

TEST(LexerTest, StringEscapes) {
  auto tokens = Lex("'it''s a goose'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "it's a goose");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_TRUE(Lex("'oops").status().IsParseError());
}

TEST(LexerTest, NumbersAndFloats) {
  auto tokens = Lex("42 3.25");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kInteger);
  EXPECT_EQ((*tokens)[0].int_value, 42);
  EXPECT_EQ((*tokens)[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*tokens)[1].float_value, 3.25);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("SELECT -- comment here\n1");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);  // SELECT, 1, END.
}

TEST(LexerTest, TwoCharSymbols) {
  auto tokens = Lex("a != b <> c <= d >= e");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].text, "!=");
  EXPECT_EQ((*tokens)[3].text, "<>");
  EXPECT_EQ((*tokens)[5].text, "<=");
  EXPECT_EQ((*tokens)[7].text, ">=");
}

TEST(ParserTest, ParsesFigure2Query) {
  auto stmt = Parse(
      "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = std::get<SelectStatement>(*stmt);
  ASSERT_EQ(select.items.size(), 3u);
  EXPECT_EQ(select.items[0].expr->name, "r.a");
  EXPECT_EQ(select.items[2].expr->name, "s.z");
  ASSERT_EQ(select.from.size(), 2u);
  EXPECT_EQ(select.from[0].table, "R");
  EXPECT_EQ(select.from[0].alias, "r");
  ASSERT_NE(select.where, nullptr);
  EXPECT_EQ(select.where->kind, AstExpr::Kind::kLogical);
}

TEST(ParserTest, ParsesSelectStar) {
  auto stmt = Parse("SELECT * FROM birds");
  ASSERT_TRUE(stmt.ok());
  const auto& select = std::get<SelectStatement>(*stmt);
  ASSERT_EQ(select.items.size(), 1u);
  EXPECT_EQ(select.items[0].expr, nullptr);
  EXPECT_EQ(select.from[0].alias, "birds");  // Defaults to the table name.
}

TEST(ParserTest, ParsesGroupByOrderByLimit) {
  auto stmt = Parse(
      "SELECT b, COUNT(*) AS cnt, SUM(a) AS total FROM R GROUP BY b "
      "ORDER BY cnt DESC, b LIMIT 10");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& select = std::get<SelectStatement>(*stmt);
  ASSERT_EQ(select.items.size(), 3u);
  EXPECT_EQ(select.items[1].expr->kind, AstExpr::Kind::kAggregate);
  EXPECT_EQ(select.items[1].expr->agg_fn, exec::AggregateFunction::kCountStar);
  EXPECT_EQ(select.items[1].alias, "cnt");
  EXPECT_EQ(select.items[2].expr->agg_fn, exec::AggregateFunction::kSum);
  ASSERT_EQ(select.group_by.size(), 1u);
  ASSERT_EQ(select.order_by.size(), 2u);
  EXPECT_FALSE(select.order_by[0].ascending);
  EXPECT_TRUE(select.order_by[1].ascending);
  EXPECT_EQ(select.limit, 10u);
}

TEST(ParserTest, ParsesDistinct) {
  auto stmt = Parse("SELECT DISTINCT name FROM birds");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE(std::get<SelectStatement>(*stmt).distinct);
}

TEST(ParserTest, ParsesCreateTable) {
  auto stmt = Parse("CREATE TABLE birds (id BIGINT, name TEXT, weight DOUBLE)");
  ASSERT_TRUE(stmt.ok());
  const auto& create = std::get<CreateTableStatement>(*stmt);
  EXPECT_EQ(create.table, "birds");
  ASSERT_EQ(create.columns.size(), 3u);
  EXPECT_EQ(create.columns[0].second, rel::ValueType::kInt64);
  EXPECT_EQ(create.columns[1].second, rel::ValueType::kString);
  EXPECT_EQ(create.columns[2].second, rel::ValueType::kFloat64);
}

TEST(ParserTest, ParsesInsertMultipleRows) {
  auto stmt = Parse("INSERT INTO birds VALUES (1, 'Swan Goose', 3.2), (2, 'Heron', -1.5)");
  ASSERT_TRUE(stmt.ok());
  const auto& insert = std::get<InsertStatement>(*stmt);
  ASSERT_EQ(insert.rows.size(), 2u);
  EXPECT_EQ(insert.rows[0][1].AsString(), "Swan Goose");
  EXPECT_DOUBLE_EQ(insert.rows[1][2].AsFloat64(), -1.5);
}

TEST(ParserTest, ParsesAnnotate) {
  auto stmt = Parse(
      "ANNOTATE birds ROW 3 COLUMNS (name, weight) TEXT 'size seems wrong' "
      "AUTHOR 'alice'");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& annotate = std::get<AnnotateStatement>(*stmt);
  EXPECT_EQ(annotate.table, "birds");
  EXPECT_EQ(annotate.row, 3u);
  EXPECT_EQ(annotate.columns, (std::vector<std::string>{"name", "weight"}));
  EXPECT_EQ(annotate.body, "size seems wrong");
  EXPECT_EQ(annotate.author, "alice");
  EXPECT_FALSE(annotate.is_document);
}

TEST(ParserTest, ParsesAnnotateDocument) {
  auto stmt = Parse(
      "ANNOTATE birds ROW 0 TEXT 'long article body' AS DOCUMENT TITLE 'Wiki'");
  ASSERT_TRUE(stmt.ok());
  const auto& annotate = std::get<AnnotateStatement>(*stmt);
  EXPECT_TRUE(annotate.is_document);
  EXPECT_EQ(annotate.title, "Wiki");
}

TEST(ParserTest, ParsesZoomInFigure3) {
  auto stmt = Parse(
      "ZoomIn Reference QID 101 Where c1 = 'x' On NaiveBayesClass Index 1;");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  const auto& zoomin = std::get<ZoomInStatement>(*stmt);
  EXPECT_EQ(zoomin.qid, 101u);
  ASSERT_NE(zoomin.where, nullptr);
  EXPECT_EQ(zoomin.instance, "NaiveBayesClass");
  EXPECT_EQ(zoomin.index, 0u);  // 1-based syntax -> 0-based internal.
}

TEST(ParserTest, ZoomInIndexMustBePositive) {
  EXPECT_FALSE(Parse("ZOOMIN REFERENCE QID 1 ON x INDEX 0").ok());
}

TEST(ParserTest, ParsesCreateInstanceVariants) {
  auto classifier = Parse(
      "CREATE SUMMARY INSTANCE ClassBird1 CLASSIFIER LABELS "
      "('Behavior', 'Disease', 'Anatomy', 'Other')");
  ASSERT_TRUE(classifier.ok()) << classifier.status().ToString();
  const auto& c = std::get<CreateInstanceStatement>(*classifier);
  EXPECT_EQ(c.type, CreateInstanceStatement::Type::kClassifier);
  EXPECT_EQ(c.labels.size(), 4u);

  auto cluster = Parse("CREATE SUMMARY INSTANCE SimCluster CLUSTER THRESHOLD 0.4");
  ASSERT_TRUE(cluster.ok());
  EXPECT_DOUBLE_EQ(std::get<CreateInstanceStatement>(*cluster).threshold, 0.4);

  auto snippet = Parse("CREATE SUMMARY INSTANCE TextSummary1 SNIPPET");
  ASSERT_TRUE(snippet.ok());
  EXPECT_EQ(std::get<CreateInstanceStatement>(*snippet).type,
            CreateInstanceStatement::Type::kSnippet);
}

TEST(ParserTest, ParsesTrainAndLink) {
  auto train = Parse("TRAIN SUMMARY ClassBird1 LABEL 'Behavior' WITH 'eating stonewort'");
  ASSERT_TRUE(train.ok());
  EXPECT_EQ(std::get<TrainInstanceStatement>(*train).label, "Behavior");

  auto link = Parse("LINK SUMMARY ClassBird1 TO birds");
  ASSERT_TRUE(link.ok());
  EXPECT_TRUE(std::get<LinkStatement>(*link).link);

  auto unlink = Parse("UNLINK SUMMARY ClassBird1 FROM birds");
  ASSERT_TRUE(unlink.ok());
  EXPECT_FALSE(std::get<LinkStatement>(*unlink).link);
}

TEST(ParserTest, OperatorPrecedence) {
  auto stmt = Parse("SELECT a FROM t WHERE a + 1 * 2 = 3 AND b = 1 OR c = 2");
  ASSERT_TRUE(stmt.ok());
  const auto& where = *std::get<SelectStatement>(*stmt).where;
  // Top node is OR.
  ASSERT_EQ(where.kind, AstExpr::Kind::kLogical);
  EXPECT_EQ(where.logical_op, rel::LogicalOp::kOr);
  // Left of OR is the AND.
  EXPECT_EQ(where.left->logical_op, rel::LogicalOp::kAnd);
  // a + (1*2): the additive's right child is the multiplication.
  const AstExpr& cmp = *where.left->left;
  ASSERT_EQ(cmp.kind, AstExpr::Kind::kCompare);
  ASSERT_EQ(cmp.left->kind, AstExpr::Kind::kArithmetic);
  EXPECT_EQ(cmp.left->arith_op, rel::ArithmeticOp::kAdd);
  EXPECT_EQ(cmp.left->right->arith_op, rel::ArithmeticOp::kMul);
}

TEST(ParserTest, RejectsGarbage) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("FLY ME TO THE MOON").ok());
  EXPECT_FALSE(Parse("SELECT FROM t").ok());
  EXPECT_FALSE(Parse("SELECT a FROM").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(Parse("SELECT a FROM t extra garbage here").ok());
  EXPECT_FALSE(Parse("CREATE TABLE t (a WIDGET)").ok());
  EXPECT_FALSE(Parse("INSERT INTO t VALUES (1,)").ok());
}

TEST(ParserTest, ParenthesesOverridePrecedence) {
  auto stmt = Parse("SELECT a FROM t WHERE (a + 1) * 2 = 6");
  ASSERT_TRUE(stmt.ok());
  const auto& where = *std::get<SelectStatement>(*stmt).where;
  EXPECT_EQ(where.left->arith_op, rel::ArithmeticOp::kMul);
  EXPECT_EQ(where.left->left->arith_op, rel::ArithmeticOp::kAdd);
}

TEST(ParserTest, UnaryMinusLowersToSubtraction) {
  auto stmt = Parse("SELECT a FROM t WHERE a = -5");
  ASSERT_TRUE(stmt.ok());
  const auto& where = *std::get<SelectStatement>(*stmt).where;
  EXPECT_EQ(where.right->kind, AstExpr::Kind::kArithmetic);
  EXPECT_EQ(where.right->arith_op, rel::ArithmeticOp::kSub);
}

}  // namespace
}  // namespace insightnotes::sql
