// End-to-end SQL tests: DDL through zoom-in, entirely through the SQL
// surface (as InsightNotesGate would drive it).

#include "sql/session.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace insightnotes::sql {
namespace {

class SessionTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    session_ = std::make_unique<SqlSession>(engine_.get());
  }

  ExecutionOutput Must(const std::string& sql) {
    auto out = session_->Execute(sql);
    EXPECT_TRUE(out.ok()) << sql << " -> " << out.status().ToString();
    return out.ok() ? std::move(*out) : ExecutionOutput{};
  }

  void BuildBirdsDatabase() {
    Must("CREATE TABLE birds (id BIGINT, name TEXT, weight DOUBLE)");
    Must("INSERT INTO birds VALUES (1, 'Swan Goose', 3.2), (2, 'Grey Heron', 1.5), "
         "(3, 'Mute Swan', 11.0)");
    Must("CREATE SUMMARY INSTANCE ClassBird1 CLASSIFIER LABELS "
         "('Behavior', 'Disease', 'Anatomy', 'Other')");
    Must("TRAIN SUMMARY ClassBird1 LABEL 'Behavior' WITH "
         "'eating stonewort foraging flying migration'");
    Must("TRAIN SUMMARY ClassBird1 LABEL 'Disease' WITH "
         "'influenza infection sick parasite'");
    Must("TRAIN SUMMARY ClassBird1 LABEL 'Anatomy' WITH "
         "'size weight wingspan beak feathers'");
    Must("TRAIN SUMMARY ClassBird1 LABEL 'Other' WITH 'article wikipedia photo'");
    Must("LINK SUMMARY ClassBird1 TO birds");
  }

  std::unique_ptr<SqlSession> session_;
};

TEST_F(SessionTest, CreateInsertSelect) {
  Must("CREATE TABLE birds (id BIGINT, name TEXT, weight DOUBLE)");
  Must("INSERT INTO birds VALUES (1, 'Swan Goose', 3.2)");
  auto out = Must("SELECT * FROM birds");
  ASSERT_EQ(out.kind, ExecutionOutput::Kind::kRows);
  ASSERT_EQ(out.result.rows.size(), 1u);
  EXPECT_EQ(out.result.rows[0].tuple.ValueAt(1).AsString(), "Swan Goose");
  EXPECT_EQ(out.result.schema.NumColumns(), 3u);
}

TEST_F(SessionTest, SelectWithFilterAndProjection) {
  BuildBirdsDatabase();
  auto out = Must("SELECT name FROM birds WHERE weight > 2.0");
  ASSERT_EQ(out.result.rows.size(), 2u);
  EXPECT_EQ(out.result.schema.ToString(), "(birds.name TEXT)");
}

TEST_F(SessionTest, AnnotationsFlowIntoSummaries) {
  BuildBirdsDatabase();
  Must("ANNOTATE birds ROW 0 TEXT 'found eating stonewort' AUTHOR 'alice'");
  Must("ANNOTATE birds ROW 0 TEXT 'signs of influenza infection' AUTHOR 'bob'");
  auto out = Must("SELECT * FROM birds WHERE id = 1");
  ASSERT_EQ(out.result.rows.size(), 1u);
  auto* summary = out.result.rows[0].FindSummary("ClassBird1");
  ASSERT_NE(summary, nullptr);
  EXPECT_EQ(summary->Render(),
            "[(Behavior, 1), (Disease, 1), (Anatomy, 0), (Other, 0)]");
}

TEST_F(SessionTest, ZoomInThroughSql) {
  BuildBirdsDatabase();
  Must("ANNOTATE birds ROW 0 TEXT 'found eating stonewort'");
  Must("ANNOTATE birds ROW 0 TEXT 'observed foraging at dusk'");
  auto result = Must("SELECT * FROM birds");
  uint64_t qid = result.result.qid;
  auto zoom = Must("ZOOMIN REFERENCE QID " + std::to_string(qid) +
                   " WHERE id = 1 ON ClassBird1 INDEX 1");
  ASSERT_EQ(zoom.kind, ExecutionOutput::Kind::kZoomIn);
  ASSERT_EQ(zoom.zoom.rows.size(), 1u);
  EXPECT_EQ(zoom.zoom.rows[0].component_label, "Behavior");
  EXPECT_EQ(zoom.zoom.rows[0].annotations.size(), 2u);
  EXPECT_EQ(zoom.zoom.rows[0].annotations[0].body, "found eating stonewort");
}

TEST_F(SessionTest, JoinQueryPropagatesSummaries) {
  CreateFigure2Tables();
  CreateFigure2Instances();
  session_ = std::make_unique<SqlSession>(engine_.get());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "produced by experiment alpha")).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("S", 0, "why is x one")).ok());
  auto out = Must("SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2");
  ASSERT_EQ(out.result.rows.size(), 1u);  // Only (1,2) x (1,...) matches.
  EXPECT_EQ(out.result.schema.NumColumns(), 3u);
  auto* class2 = out.result.rows[0].FindSummary("ClassBird2");
  ASSERT_NE(class2, nullptr);
  EXPECT_EQ(class2->NumAnnotations(), 2u);
}

TEST_F(SessionTest, GroupByAggregate) {
  BuildBirdsDatabase();
  Must("INSERT INTO birds VALUES (4, 'Swan Goose', 3.4)");
  auto out = Must(
      "SELECT name, COUNT(*) AS cnt, AVG(weight) AS avg_w FROM birds "
      "GROUP BY name ORDER BY cnt DESC, name ASC");
  ASSERT_EQ(out.result.rows.size(), 3u);
  EXPECT_EQ(out.result.rows[0].tuple.ValueAt(0).AsString(), "Swan Goose");
  EXPECT_EQ(out.result.rows[0].tuple.ValueAt(1).AsInt64(), 2);
  EXPECT_NEAR(out.result.rows[0].tuple.ValueAt(2).AsFloat64(), 3.3, 1e-9);
}

TEST_F(SessionTest, DistinctCollapsesDuplicates) {
  BuildBirdsDatabase();
  Must("INSERT INTO birds VALUES (5, 'Swan Goose', 9.9)");
  auto out = Must("SELECT DISTINCT name FROM birds ORDER BY name");
  ASSERT_EQ(out.result.rows.size(), 3u);
}

TEST_F(SessionTest, LimitAndOrder) {
  BuildBirdsDatabase();
  auto out = Must("SELECT id FROM birds ORDER BY weight DESC LIMIT 2");
  ASSERT_EQ(out.result.rows.size(), 2u);
  EXPECT_EQ(out.result.rows[0].tuple.ValueAt(0).AsInt64(), 3);  // Mute Swan.
}

TEST_F(SessionTest, UnlinkChangesVisibleSummaries) {
  BuildBirdsDatabase();
  Must("ANNOTATE birds ROW 0 TEXT 'eating stonewort'");
  auto before = Must("SELECT * FROM birds WHERE id = 1");
  EXPECT_NE(before.result.rows[0].FindSummary("ClassBird1"), nullptr);
  Must("UNLINK SUMMARY ClassBird1 FROM birds");
  auto after = Must("SELECT * FROM birds WHERE id = 1");
  EXPECT_EQ(after.result.rows[0].FindSummary("ClassBird1"), nullptr);
}

TEST_F(SessionTest, ErrorsSurfaceCleanly) {
  EXPECT_TRUE(session_->Execute("SELECT * FROM ghosts").status().IsNotFound());
  Must("CREATE TABLE t (a BIGINT)");
  EXPECT_TRUE(session_->Execute("CREATE TABLE t (a BIGINT)").status().IsAlreadyExists());
  EXPECT_TRUE(session_->Execute("INSERT INTO t VALUES ('text')").status().IsTypeError());
  EXPECT_TRUE(session_->Execute("SELECT nope FROM t").status().IsNotFound());
  EXPECT_TRUE(session_->Execute("TRAIN SUMMARY missing LABEL 'x' WITH 'y'")
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(session_->Execute("ANNOTATE t ROW 99 TEXT 'x'").status().IsNotFound());
}

TEST_F(SessionTest, AggregateMixedWithNonGroupColumnFails) {
  BuildBirdsDatabase();
  auto out = session_->Execute("SELECT name, COUNT(*) FROM birds");
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST_F(SessionTest, FormattersProduceReadableOutput) {
  BuildBirdsDatabase();
  Must("ANNOTATE birds ROW 0 TEXT 'eating stonewort'");
  auto out = Must("SELECT * FROM birds WHERE id = 1");
  std::string rendered = FormatResult(out.result);
  EXPECT_NE(rendered.find("Swan Goose"), std::string::npos);
  EXPECT_NE(rendered.find("ClassBird1"), std::string::npos);
  auto zoom = Must("ZOOMIN REFERENCE QID " + std::to_string(out.result.qid) +
                   " ON ClassBird1 INDEX 1");
  std::string zoom_rendered = FormatZoomIn(zoom.zoom);
  EXPECT_NE(zoom_rendered.find("Behavior"), std::string::npos);
  EXPECT_NE(zoom_rendered.find("eating stonewort"), std::string::npos);
}

TEST_F(SessionTest, CrossProductWithoutJoinPredicate) {
  Must("CREATE TABLE a (x BIGINT)");
  Must("CREATE TABLE b (y BIGINT)");
  Must("INSERT INTO a VALUES (1), (2)");
  Must("INSERT INTO b VALUES (10), (20), (30)");
  auto out = Must("SELECT x, y FROM a, b");
  EXPECT_EQ(out.result.rows.size(), 6u);
}

}  // namespace
}  // namespace insightnotes::sql
