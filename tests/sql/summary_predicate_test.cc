// Summary-based predicates (Section 2.1): filtering and sorting tuples by
// the contents of their summary objects, without touching raw annotations.

#include <gtest/gtest.h>

#include "exec/summary_filter.h"
#include "sql/session.h"
#include "testutil.h"

namespace insightnotes::sql {
namespace {

class SummaryPredicateTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
    session_ = std::make_unique<SqlSession>(engine_.get());
    // Row 0: 3 behavior + 1 disease; row 1: 1 disease; row 2: none.
    Note(0, "found eating stonewort");
    Note(0, "observed foraging at dusk");
    Note(0, "migration flock flying south");
    Note(0, "signs of influenza infection");
    Note(1, "parasite infestation suspected disease");
  }

  void Note(rel::RowId row, const std::string& body) {
    ASSERT_TRUE(engine_->Annotate(Spec("R", row, body)).ok());
  }

  ExecutionOutput Must(const std::string& sql) {
    auto out = session_->Execute(sql);
    EXPECT_TRUE(out.ok()) << sql << " -> " << out.status().ToString();
    return out.ok() ? std::move(*out) : ExecutionOutput{};
  }

  std::unique_ptr<SqlSession> session_;
};

TEST_F(SummaryPredicateTest, SpecEvaluatesCounts) {
  auto scan = engine_->MakeScan("R", "r");
  ASSERT_TRUE(scan.ok());
  ASSERT_TRUE((*scan)->Open().ok());
  core::AnnotatedTuple t;
  ASSERT_TRUE(*(*scan)->Next(&t));
  exec::SummaryCountSpec total{"ClassBird1", ""};
  EXPECT_EQ(*total.Evaluate(t), 4);
  exec::SummaryCountSpec behavior{"ClassBird1", "Behavior"};
  EXPECT_EQ(*behavior.Evaluate(t), 3);
  exec::SummaryCountSpec unknown_label{"ClassBird1", "Nope"};
  EXPECT_EQ(*unknown_label.Evaluate(t), 0);
  exec::SummaryCountSpec unknown_instance{"Ghost", ""};
  EXPECT_EQ(*unknown_instance.Evaluate(t), 0);
}

TEST_F(SummaryPredicateTest, FilterByTotalCount) {
  auto out = Must("SELECT r.a FROM R r WHERE SUMMARY_COUNT(ClassBird1) > 0");
  ASSERT_EQ(out.result.rows.size(), 2u);  // Rows 0 and 1.
}

TEST_F(SummaryPredicateTest, FilterByLabelCount) {
  auto out = Must(
      "SELECT r.a FROM R r WHERE SUMMARY_COUNT(ClassBird1, 'Behavior') >= 3");
  ASSERT_EQ(out.result.rows.size(), 1u);
  EXPECT_EQ(out.result.rows[0].tuple.ValueAt(0).AsInt64(), 1);
}

TEST_F(SummaryPredicateTest, FlippedComparisonNormalized) {
  auto out = Must("SELECT r.a FROM R r WHERE 1 <= SUMMARY_COUNT(ClassBird1, 'Disease')");
  ASSERT_EQ(out.result.rows.size(), 2u);
}

TEST_F(SummaryPredicateTest, CombinesWithRegularPredicates) {
  auto out = Must(
      "SELECT r.a FROM R r WHERE r.b = 2 AND SUMMARY_COUNT(ClassBird1, 'Disease') = 1");
  ASSERT_EQ(out.result.rows.size(), 2u);  // Rows 0 and 1 both have b=2, 1 disease.
}

TEST_F(SummaryPredicateTest, OrderBySummaryCount) {
  auto out = Must(
      "SELECT r.a FROM R r ORDER BY SUMMARY_COUNT(ClassBird1) DESC, r.a ASC");
  ASSERT_EQ(out.result.rows.size(), 3u);
  EXPECT_EQ(out.result.rows[0].tuple.ValueAt(0).AsInt64(), 1);  // 4 annotations.
  EXPECT_EQ(out.result.rows[1].tuple.ValueAt(0).AsInt64(), 2);  // 1 annotation.
  EXPECT_EQ(out.result.rows[2].tuple.ValueAt(0).AsInt64(), 3);  // 0 annotations.
}

TEST_F(SummaryPredicateTest, SummaryPredicateAfterJoin) {
  // ClassBird2 is on both R and S; the filter applies to the merged object.
  ASSERT_TRUE(engine_->Annotate(Spec("S", 0, "why is this here")).ok());
  auto out = Must(
      "SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x "
      "AND SUMMARY_COUNT(ClassBird2) >= 5");
  // Row (1, z0): merged ClassBird2 has 4 from R + 1 from S = 5.
  ASSERT_EQ(out.result.rows.size(), 1u);
  EXPECT_EQ(out.result.rows[0].tuple.ValueAt(0).AsInt64(), 1);
}

TEST_F(SummaryPredicateTest, NonLiteralComparisonRejected) {
  auto out = session_->Execute(
      "SELECT r.a FROM R r WHERE SUMMARY_COUNT(ClassBird1) > r.b");
  EXPECT_TRUE(out.status().IsInvalidArgument());
}

TEST_F(SummaryPredicateTest, SummaryCountOutsideConjunctRejected) {
  auto out = session_->Execute(
      "SELECT r.a FROM R r WHERE SUMMARY_COUNT(ClassBird1) + 1 = 2");
  EXPECT_FALSE(out.ok());
}

TEST_F(SummaryPredicateTest, ParserRoundTrip) {
  auto out = Must("SELECT r.a FROM R r WHERE SUMMARY_COUNT(SimCluster) >= 0");
  EXPECT_EQ(out.result.rows.size(), 3u);
}

}  // namespace
}  // namespace insightnotes::sql
