#include "annotation/annotation_store.h"

#include <gtest/gtest.h>

#include <memory>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace insightnotes::ann {
namespace {

class AnnotationStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(disk_.Open("").ok());
    pool_ = std::make_unique<storage::BufferPool>(&disk_, 64);
    store_ = std::make_unique<AnnotationStore>(pool_.get());
  }

  Annotation Note(const std::string& body, AnnotationKind kind = AnnotationKind::kComment) {
    Annotation a;
    a.kind = kind;
    a.author = "tester";
    a.timestamp = 1000;
    a.body = body;
    return a;
  }

  storage::DiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<AnnotationStore> store_;
};

TEST_F(AnnotationStoreTest, AddAndGet) {
  auto id = store_->Add(Note("size seems wrong"), CellRegion{0, 5, {2}});
  ASSERT_TRUE(id.ok());
  auto note = store_->Get(*id);
  ASSERT_TRUE(note.ok());
  EXPECT_EQ(note->body, "size seems wrong");
  EXPECT_EQ(note->author, "tester");
  EXPECT_EQ(note->id, *id);
  EXPECT_FALSE(note->archived);
  EXPECT_EQ(store_->NumAnnotations(), 1u);
  EXPECT_EQ(store_->NumAttachments(), 1u);
}

TEST_F(AnnotationStoreTest, GetMissingFails) {
  EXPECT_TRUE(store_->Get(99).status().IsNotFound());
}

TEST_F(AnnotationStoreTest, OnRowReturnsAttachmentsInOrder) {
  auto a = store_->Add(Note("first"), CellRegion{0, 7, {}});
  auto b = store_->Add(Note("second"), CellRegion{0, 7, {1}});
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto& atts = store_->OnRow(0, 7);
  ASSERT_EQ(atts.size(), 2u);
  EXPECT_EQ(atts[0].annotation, *a);
  EXPECT_TRUE(atts[0].columns.empty());
  EXPECT_EQ(atts[1].annotation, *b);
  EXPECT_EQ(atts[1].columns, (std::vector<size_t>{1}));
  EXPECT_TRUE(store_->OnRow(0, 8).empty());
  EXPECT_TRUE(store_->OnRow(1, 7).empty());
}

TEST_F(AnnotationStoreTest, OnCellFiltersByColumn) {
  ASSERT_TRUE(store_->Add(Note("whole row"), CellRegion{0, 3, {}}).ok());
  auto col1 = store_->Add(Note("col 1 only"), CellRegion{0, 3, {1}});
  ASSERT_TRUE(col1.ok());
  ASSERT_TRUE(store_->Add(Note("cols 0 and 2"), CellRegion{0, 3, {0, 2}}).ok());
  auto on1 = store_->OnCell(0, 3, 1);
  ASSERT_EQ(on1.size(), 2u);  // Whole-row + col-1.
  EXPECT_EQ(on1[1], *col1);
  EXPECT_EQ(store_->OnCell(0, 3, 2).size(), 2u);  // Whole-row + cols{0,2}.
}

TEST_F(AnnotationStoreTest, SharedAnnotationAcrossRows) {
  auto id = store_->Add(Note("provenance: produced by experiment E"),
                        CellRegion{0, 1, {}});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->Attach(*id, CellRegion{0, 2, {}}).ok());
  ASSERT_TRUE(store_->Attach(*id, CellRegion{1, 9, {0}}).ok());
  EXPECT_EQ(store_->NumAnnotations(), 1u);
  EXPECT_EQ(store_->NumAttachments(), 3u);
  auto regions = store_->RegionsOf(*id);
  ASSERT_TRUE(regions.ok());
  EXPECT_EQ(regions->size(), 3u);
  EXPECT_EQ(store_->OnRow(0, 2).size(), 1u);
  EXPECT_EQ(store_->OnRow(1, 9).size(), 1u);
}

TEST_F(AnnotationStoreTest, ReattachToSameRowUnionsColumns) {
  auto id = store_->Add(Note("x"), CellRegion{0, 1, {0}});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store_->Attach(*id, CellRegion{0, 1, {2}}).ok());
  const auto& atts = store_->OnRow(0, 1);
  ASSERT_EQ(atts.size(), 1u);
  EXPECT_EQ(atts[0].columns, (std::vector<size_t>{0, 2}));
  EXPECT_EQ(store_->NumAttachments(), 1u);
  // Whole-row attachment absorbs the column set.
  ASSERT_TRUE(store_->Attach(*id, CellRegion{0, 1, {}}).ok());
  EXPECT_TRUE(store_->OnRow(0, 1)[0].columns.empty());
}

TEST_F(AnnotationStoreTest, ColumnsNormalized) {
  auto id = store_->Add(Note("x"), CellRegion{0, 1, {3, 1, 3, 2}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store_->OnRow(0, 1)[0].columns, (std::vector<size_t>{1, 2, 3}));
}

TEST_F(AnnotationStoreTest, InvalidRegionRejected) {
  EXPECT_TRUE(store_->Add(Note("x"), CellRegion{}).status().IsInvalidArgument());
  auto id = store_->Add(Note("y"), CellRegion{0, 0, {}});
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(store_->Attach(*id, CellRegion{}).IsInvalidArgument());
  EXPECT_TRUE(store_->Attach(12345, CellRegion{0, 0, {}}).IsNotFound());
}

TEST_F(AnnotationStoreTest, ArchiveMarksButKeeps) {
  auto id = store_->Add(Note("obsolete claim"), CellRegion{0, 1, {}});
  ASSERT_TRUE(id.ok());
  EXPECT_FALSE(store_->IsArchived(*id));
  ASSERT_TRUE(store_->Archive(*id).ok());
  EXPECT_TRUE(store_->IsArchived(*id));
  auto note = store_->Get(*id);
  ASSERT_TRUE(note.ok());
  EXPECT_TRUE(note->archived);
  EXPECT_TRUE(store_->Archive(999).IsNotFound());
}

TEST_F(AnnotationStoreTest, LargeDocumentBodyRoundTrips) {
  std::string article(20000, 'a');
  for (size_t i = 0; i < article.size(); i += 37) article[i] = 'b';
  Annotation doc = Note(article, AnnotationKind::kDocument);
  doc.title = "Wikipedia article: Swan Goose";
  auto id = store_->Add(std::move(doc), CellRegion{0, 1, {}});
  ASSERT_TRUE(id.ok());
  auto note = store_->Get(*id);
  ASSERT_TRUE(note.ok());
  EXPECT_EQ(note->body, article);
  EXPECT_EQ(note->title, "Wikipedia article: Swan Goose");
  EXPECT_EQ(note->kind, AnnotationKind::kDocument);
}

TEST_F(AnnotationStoreTest, ScanTableVisitsRowsSorted) {
  ASSERT_TRUE(store_->Add(Note("c"), CellRegion{0, 9, {}}).ok());
  ASSERT_TRUE(store_->Add(Note("a"), CellRegion{0, 2, {}}).ok());
  ASSERT_TRUE(store_->Add(Note("b"), CellRegion{0, 2, {1}}).ok());
  ASSERT_TRUE(store_->Add(Note("other table"), CellRegion{1, 1, {}}).ok());
  std::vector<rel::RowId> rows;
  store_->ScanTable(0, [&](rel::RowId row, const Attachment&) {
    rows.push_back(row);
    return true;
  });
  EXPECT_EQ(rows, (std::vector<rel::RowId>{2, 2, 9}));
}

TEST_F(AnnotationStoreTest, CellRegionSurvivesProjection) {
  CellRegion whole_row{0, 1, {}};
  CellRegion cells{0, 1, {1, 3}};
  EXPECT_TRUE(whole_row.SurvivesProjection({0}));
  EXPECT_TRUE(whole_row.SurvivesProjection({}));
  EXPECT_TRUE(cells.SurvivesProjection({3, 5}));
  EXPECT_FALSE(cells.SurvivesProjection({0, 2}));
  EXPECT_FALSE(cells.SurvivesProjection({}));
}

}  // namespace
}  // namespace insightnotes::ann
