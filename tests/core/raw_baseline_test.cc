// Raw-propagation baseline tests: the comparator engine must implement the
// same annotation semantics (region trimming, join dedup) so E2 compares
// like for like.

#include "core/raw_baseline.h"

#include <gtest/gtest.h>

#include "exec/filter.h"
#include "testutil.h"

namespace insightnotes::core {
namespace {

using testutil::I;
using testutil::S;

class RawBaselineTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    CreateFigure2Tables();  // R(a,b,c,d), S(x,y,z); no instances needed.
    raw_ = std::make_unique<RawPropagationEngine>(engine_->annotations());
  }

  const rel::Table& Table(const std::string& name) {
    return *engine_->catalog()->GetTable(name).value();
  }

  std::unique_ptr<RawPropagationEngine> raw_;
};

TEST_F(RawBaselineTest, ScanAttachesFullBodies) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "first note")).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "second note", {2})).ok());
  auto scanned = raw_->Scan(Table("R"));
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned->size(), 3u);
  EXPECT_EQ((*scanned)[0].annotations.size(), 2u);
  EXPECT_EQ((*scanned)[0].annotations[0].body, "first note");
  EXPECT_TRUE((*scanned)[0].coverage[0].empty());
  EXPECT_EQ((*scanned)[0].coverage[1], (std::vector<size_t>{2}));
  EXPECT_TRUE((*scanned)[1].annotations.empty());
}

TEST_F(RawBaselineTest, ScanSkipsArchived) {
  auto id = engine_->Annotate(Spec("R", 0, "obsolete"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine_->annotations()->Archive(*id).ok());
  auto scanned = raw_->Scan(Table("R"));
  ASSERT_TRUE(scanned.ok());
  EXPECT_TRUE((*scanned)[0].annotations.empty());
}

TEST_F(RawBaselineTest, FilterPropagatesAnnotationsUntouched) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "note")).ok());
  auto scanned = raw_->Scan(Table("R"));
  ASSERT_TRUE(scanned.ok());
  auto pred = rel::MakeCompare(rel::CompareOp::kEq, rel::MakeColumn(1, "b"),
                               rel::MakeLiteral(I(2)));
  auto filtered = raw_->Filter(std::move(*scanned), *pred);
  ASSERT_TRUE(filtered.ok());
  ASSERT_EQ(filtered->size(), 2u);  // Rows with b = 2.
  EXPECT_EQ((*filtered)[0].annotations.size(), 1u);
}

TEST_F(RawBaselineTest, ProjectTrimsByRegion) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "on dropped c", {2})).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "on kept a", {0})).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "whole row")).ok());
  auto scanned = raw_->Scan(Table("R"));
  ASSERT_TRUE(scanned.ok());
  auto projected = raw_->Project(*scanned, {0, 1});
  ASSERT_EQ(projected[0].tuple.NumValues(), 2u);
  ASSERT_EQ(projected[0].annotations.size(), 2u);
  EXPECT_EQ(projected[0].annotations[0].body, "on kept a");
  EXPECT_EQ(projected[0].annotations[0].body, "on kept a");
  EXPECT_EQ(projected[0].coverage[0], (std::vector<size_t>{0}));
  EXPECT_EQ(projected[0].annotations[1].body, "whole row");
}

TEST_F(RawBaselineTest, JoinUnionsWithDedup) {
  auto shared = engine_->Annotate(Spec("R", 0, "shared provenance"));
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(engine_->AttachAnnotation(*shared, "S", 0).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("S", 0, "s-only note", {0})).ok());
  auto left = raw_->Scan(Table("R"));
  auto right = raw_->Scan(Table("S"));
  ASSERT_TRUE(left.ok());
  ASSERT_TRUE(right.ok());
  auto lkey = rel::MakeColumn(0, "a");
  auto rkey = rel::MakeColumn(0, "x");
  auto joined = raw_->Join(*left, *right, *lkey, *rkey);
  ASSERT_TRUE(joined.ok());
  // R.a {1,2,3} x S.x {1,3,4} -> 2 matches.
  ASSERT_EQ(joined->size(), 2u);
  const RawTuple& first = (*joined)[0];
  EXPECT_EQ(first.tuple.NumValues(), 7u);
  // shared counted once + s-only note.
  EXPECT_EQ(first.annotations.size(), 2u);
  // s-only coverage shifted by R's width (4).
  EXPECT_EQ(first.coverage[1], (std::vector<size_t>{4}));
}

TEST_F(RawBaselineTest, AgreesWithSummaryEngineOnRowCounts) {
  CreateFigure2Instances();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine_->Annotate(Spec("R", i % 3, "note " + std::to_string(i))).ok());
  }
  // Raw pipeline.
  auto scanned = raw_->Scan(Table("R"));
  ASSERT_TRUE(scanned.ok());
  auto pred = rel::MakeCompare(rel::CompareOp::kEq, rel::MakeColumn(1, "b"),
                               rel::MakeLiteral(I(2)));
  auto filtered = raw_->Filter(std::move(*scanned), *pred);
  ASSERT_TRUE(filtered.ok());
  // Summary pipeline.
  auto scan = engine_->MakeScan("R", "r");
  ASSERT_TRUE(scan.ok());
  auto filter = std::make_unique<exec::FilterOperator>(
      std::move(*scan), rel::MakeCompare(rel::CompareOp::kEq,
                                         rel::MakeColumn(1, "r.b"),
                                         rel::MakeLiteral(I(2))));
  auto result = engine_->Execute(std::move(filter));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(filtered->size(), result->rows.size());
  for (size_t i = 0; i < filtered->size(); ++i) {
    // Raw annotation count == summary's distinct annotation count.
    auto* class1 = result->rows[i].FindSummary("ClassBird1");
    ASSERT_NE(class1, nullptr);
    EXPECT_EQ((*filtered)[i].annotations.size(), class1->NumAnnotations());
  }
}

}  // namespace
}  // namespace insightnotes::core
