// Epoch lifetime and visibility tests for the engine's snapshot isolation
// (core/engine_snapshot.h): pinning freezes what a reader sees, publishes
// retire superseded epochs exactly once, Checkpoint never perturbs a
// pinned reader, and a poisoned engine refuses new pins while letting
// already-pinned readers finish.

#include "core/engine_snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "storage/fault_injection.h"
#include "testutil.h"

namespace insightnotes::core {
namespace {

using testutil::I;
using testutil::S;

/// NumAnnotations of the row's summary object for `instance`, or -1.
int64_t CountFor(const std::vector<std::unique_ptr<SummaryObject>>& summaries,
                 const std::string& instance) {
  for (const auto& summary : summaries) {
    if (summary->instance_name() == instance) {
      return static_cast<int64_t>(summary->NumAnnotations());
    }
  }
  return -1;
}

class EngineSnapshotTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
    auto table = engine_->catalog()->GetTable("R");
    ASSERT_TRUE(table.ok());
    r_id_ = (*table)->id();
  }

  rel::TableId r_id_ = 0;
};

TEST_F(EngineSnapshotTest, PinReflectsPublishedState) {
  auto snap = engine_->PinSnapshot();
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ((*snap)->epoch(), engine_->CurrentEpoch());
  EXPECT_GT((*snap)->epoch(), 0u);
  EXPECT_TRUE((*snap)->CoversTable(r_id_));
  EXPECT_EQ((*snap)->VisibleRows(r_id_), 3u);
  EXPECT_EQ((*snap)->num_annotations(),
            engine_->annotations()->NumAnnotations());
}

TEST_F(EngineSnapshotTest, VisibilityFrozenAtPin) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "influenza lesion sick")).ok());
  auto snap_a = engine_->PinSnapshot();
  ASSERT_TRUE(snap_a.ok());

  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "parasite infection")).ok());
  ASSERT_TRUE(engine_->Insert("R", rel::Tuple({I(4), I(9), S("c3"), S("d3")})).ok());
  auto snap_b = engine_->PinSnapshot();
  ASSERT_TRUE(snap_b.ok());
  EXPECT_GT((*snap_b)->epoch(), (*snap_a)->epoch());

  // The older pin still sees exactly the state at its publish.
  auto old_summaries = (*snap_a)->SummariesFor(r_id_, 0);
  ASSERT_TRUE(old_summaries.ok());
  EXPECT_EQ(CountFor(*old_summaries, "ClassBird1"), 1);
  EXPECT_EQ((*snap_a)->VisibleRows(r_id_), 3u);

  auto new_summaries = (*snap_b)->SummariesFor(r_id_, 0);
  ASSERT_TRUE(new_summaries.ok());
  EXPECT_EQ(CountFor(*new_summaries, "ClassBird1"), 2);
  EXPECT_EQ((*snap_b)->VisibleRows(r_id_), 4u);

  // Attachment lists are frozen too.
  std::vector<AttachmentInfo> old_atts, new_atts;
  (*snap_a)->AppendAttachments(r_id_, 0, &old_atts);
  (*snap_b)->AppendAttachments(r_id_, 0, &new_atts);
  EXPECT_EQ(old_atts.size(), 1u);
  EXPECT_EQ(new_atts.size(), 2u);
}

TEST_F(EngineSnapshotTest, EpochRetiredExactlyOnce) {
  auto snap = engine_->PinSnapshot();
  ASSERT_TRUE(snap.ok());
  uint64_t pinned_epoch = (*snap)->epoch();
  uint64_t baseline = engine_->RetiredEpochs();

  // Two publishes: the first supersedes the pinned epoch (still held, so
  // not retired), the second retires the intermediate epoch.
  ASSERT_TRUE(engine_->Annotate(Spec("R", 1, "first publish")).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 1, "second publish")).ok());
  EXPECT_EQ(engine_->CurrentEpoch(), pinned_epoch + 2);
  EXPECT_EQ(engine_->RetiredEpochs(), baseline + 1);

  // Dropping the last pin retires the pinned epoch — once.
  snap->reset();
  EXPECT_EQ(engine_->RetiredEpochs(), baseline + 2);

  // A fresh pin lands on the current epoch.
  auto repin = engine_->PinSnapshot();
  ASSERT_TRUE(repin.ok());
  EXPECT_EQ((*repin)->epoch(), pinned_epoch + 2);
  EXPECT_EQ(engine_->RetiredEpochs(), baseline + 2);
}

TEST_F(EngineSnapshotTest, CheckpointWhileReaderPinned) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 2, "foraging behavior")).ok());
  auto snap = engine_->PinSnapshot();
  ASSERT_TRUE(snap.ok());
  uint64_t epoch = (*snap)->epoch();

  ASSERT_TRUE(engine_->Checkpoint().ok());
  // Checkpoint persists state but publishes nothing: the epoch is unchanged
  // and the pinned reader's view stays fully readable.
  EXPECT_EQ(engine_->CurrentEpoch(), epoch);
  auto summaries = (*snap)->SummariesFor(r_id_, 2);
  ASSERT_TRUE(summaries.ok());
  EXPECT_EQ(CountFor(*summaries, "ClassBird1"), 1);
}

TEST_F(EngineSnapshotTest, ArchiveVisibleOnlyAfterPinnedEpoch) {
  auto id = engine_->Annotate(Spec("R", 0, "wingspan beak anatomy"));
  ASSERT_TRUE(id.ok());
  auto snap_before = engine_->PinSnapshot();
  ASSERT_TRUE(snap_before.ok());

  ASSERT_TRUE(engine_->ArchiveAnnotation(*id).ok());
  auto snap_after = engine_->PinSnapshot();
  ASSERT_TRUE(snap_after.ok());

  EXPECT_FALSE((*snap_before)->IsArchived(*id));
  EXPECT_TRUE((*snap_after)->IsArchived(*id));

  std::vector<AttachmentInfo> before_atts, after_atts;
  (*snap_before)->AppendAttachments(r_id_, 0, &before_atts);
  (*snap_after)->AppendAttachments(r_id_, 0, &after_atts);
  EXPECT_EQ(before_atts.size(), 1u);
  EXPECT_TRUE(after_atts.empty());
}

TEST_F(EngineSnapshotTest, ExecutePinsAndReportsEpoch) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "migration flying")).ok());
  auto pinned = engine_->PinSnapshot();
  ASSERT_TRUE(pinned.ok());

  // Mutate past the pin; executing against the held snapshot must see the
  // old state while a default execution sees the new one.
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "photo reference link")).ok());

  auto old_scan = engine_->MakeScan("R");
  ASSERT_TRUE(old_scan.ok());
  ExecuteOptions old_options;
  old_options.snapshot = *pinned;
  old_options.retain = false;
  auto old_result = engine_->Execute(std::move(*old_scan), std::move(old_options));
  ASSERT_TRUE(old_result.ok());
  EXPECT_EQ(old_result->epoch, (*pinned)->epoch());
  EXPECT_EQ(old_result->rows[0].FindSummary("ClassBird1")->NumAnnotations(), 1u);

  auto new_scan = engine_->MakeScan("R");
  ASSERT_TRUE(new_scan.ok());
  auto new_result = engine_->Execute(std::move(*new_scan));
  ASSERT_TRUE(new_result.ok());
  EXPECT_EQ(new_result->epoch, engine_->CurrentEpoch());
  EXPECT_GT(new_result->epoch, (*pinned)->epoch());
  EXPECT_EQ(new_result->rows[0].FindSummary("ClassBird1")->NumAnnotations(), 2u);
}

// A poisoned engine (WAL-committed record that failed to apply) refuses
// new pins — they would expose half-applied state — but a reader that
// pinned before the failure keeps its consistent epoch to the end.
TEST(EngineSnapshotPoisonTest, PoisonedEngineRefusesNewPinsOnly) {
  std::string db_path = ::testing::TempDir() + "/snapshot_poison_test.db";
  auto disk = std::make_shared<storage::FaultInjectingDiskManager>();
  auto* faults = disk.get();
  EngineOptions options;
  options.db_path = db_path;
  options.disk = disk;
  options.io_retry.max_attempts = 1;
  Engine engine(options);
  ASSERT_TRUE(engine.Init().ok());
  ASSERT_TRUE(
      engine.CreateTable("t", rel::Schema({{"v", rel::ValueType::kString, "t"}}))
          .ok());
  ASSERT_TRUE(engine.Insert("t", rel::Tuple({rel::Value(std::string("row"))})).ok());

  core::AnnotateSpec spec;
  spec.table = "t";
  spec.row = 0;
  spec.body = "note";

  auto pinned = engine.PinSnapshot();
  ASSERT_TRUE(pinned.ok());

  // Arm one-shot faults until one lands inside the store apply and poisons
  // the engine (see crash_recovery_test for the fault taxonomy).
  bool poisoned = false;
  for (int i = 0; i < 200 && !poisoned; ++i) {
    faults->FailOnceAt(storage::IoOpKind::kAny, faults->op_count());
    (void)engine.Annotate(spec);
    poisoned = engine.requires_recovery();
  }
  faults->Reset();
  ASSERT_TRUE(poisoned) << "no injected fault ever landed in a store apply";

  // New pins are refused...
  EXPECT_FALSE(engine.PinSnapshot().ok());
  // ...but the pre-poison pin still reads its epoch consistently.
  auto table = engine.catalog()->GetTable("t");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE((*pinned)->CoversTable((*table)->id()));
  std::vector<AttachmentInfo> atts;
  (*pinned)->AppendAttachments((*table)->id(), 0, &atts);

  std::remove(db_path.c_str());
  std::remove((db_path + ".wal.manifest").c_str());
  for (uint64_t id = 1; id <= 8; ++id) {
    std::remove(
        storage::SegmentedWal::SegmentPathFor(db_path + ".wal", id).c_str());
  }
}

// Pin/publish stress: readers continuously pin the current epoch and walk
// its row states while a writer annotates. Run under TSAN this covers the
// acquire/release pair on the published slot and the refcounted retirement;
// under ASan it verifies no epoch's state is freed while still pinned.
TEST_F(EngineSnapshotTest, ConcurrentPinAndPublishStress) {
  constexpr int kReaders = 4;
  constexpr int kWrites = 60;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        auto snap = engine_->PinSnapshot();
        if (!snap.ok()) continue;
        for (rel::RowId row = 0; row < (*snap)->VisibleRows(r_id_); ++row) {
          auto summaries = (*snap)->SummariesFor(r_id_, row);
          ASSERT_TRUE(summaries.ok());
          std::vector<AttachmentInfo> atts;
          (*snap)->AppendAttachments(r_id_, row, &atts);
        }
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  // At least kWrites epochs, then keep publishing until some reader
  // finished a full pin+walk (the writer can otherwise outrun readers that
  // were never scheduled, and the reads assertion below would race).
  for (int i = 0; i < kWrites || (reads.load() == 0 && i < kWrites * 100);
       ++i) {
    ASSERT_TRUE(
        engine_->Annotate(Spec("R", static_cast<rel::RowId>(i % 3),
                               i % 2 == 0 ? "foraging behavior migration"
                                          : "disease infection parasite"))
            .ok());
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  EXPECT_GT(reads.load(), 0u);
  // Quiescent now: every superseded epoch must have been retired.
  EXPECT_GE(engine_->RetiredEpochs(), static_cast<uint64_t>(kWrites) - 1);
}

}  // namespace
}  // namespace insightnotes::core
