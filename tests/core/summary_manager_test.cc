#include "core/summary_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "annotation/annotation_store.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace insightnotes::core {
namespace {

class SummaryManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(disk_.Open("").ok());
    pool_ = std::make_unique<storage::BufferPool>(&disk_, 128);
    store_ = std::make_unique<ann::AnnotationStore>(pool_.get());
    manager_ = std::make_unique<SummaryManager>(store_.get());

    auto classifier = SummaryInstance::MakeClassifier(
        "ClassBird1", {"Behavior", "Disease", "Anatomy", "Other"});
    auto* nb = classifier->classifier();
    ASSERT_TRUE(nb->Train(0, "eating stonewort foraging flying").ok());
    ASSERT_TRUE(nb->Train(1, "influenza infection sick parasite").ok());
    ASSERT_TRUE(nb->Train(2, "size weight wingspan beak").ok());
    ASSERT_TRUE(nb->Train(3, "article wikipedia photo").ok());
    ASSERT_TRUE(manager_->RegisterInstance(std::move(classifier)).ok());
    ASSERT_TRUE(
        manager_->RegisterInstance(SummaryInstance::MakeCluster("SimCluster", 0.3)).ok());
  }

  /// Adds an annotation and routes it through the maintenance hook, as the
  /// engine does.
  ann::AnnotationId Annotate(rel::TableId table, rel::RowId row, const std::string& body,
                             std::vector<size_t> columns = {}) {
    ann::Annotation note;
    note.body = body;
    note.author = "tester";
    auto id = store_->Add(std::move(note), ann::CellRegion{table, row, columns});
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(
        manager_->OnAnnotationAttached(*id, ann::CellRegion{table, row, columns}).ok());
    return *id;
  }

  storage::DiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<ann::AnnotationStore> store_;
  std::unique_ptr<SummaryManager> manager_;
};

TEST_F(SummaryManagerTest, RegisterAndLookup) {
  EXPECT_TRUE(manager_->GetInstance("ClassBird1").ok());
  EXPECT_TRUE(manager_->GetInstance("nope").status().IsNotFound());
  EXPECT_EQ(manager_->InstanceNames(),
            (std::vector<std::string>{"ClassBird1", "SimCluster"}));
  EXPECT_TRUE(manager_
                  ->RegisterInstance(SummaryInstance::MakeCluster("SimCluster"))
                  .IsAlreadyExists());
}

TEST_F(SummaryManagerTest, LinkUnlink) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  EXPECT_TRUE(manager_->IsLinked("ClassBird1", 0));
  EXPECT_FALSE(manager_->IsLinked("SimCluster", 0));
  EXPECT_TRUE(manager_->Link("ClassBird1", 0).IsAlreadyExists());
  EXPECT_EQ(manager_->LinkedTo(0).size(), 1u);
  ASSERT_TRUE(manager_->Unlink("ClassBird1", 0).ok());
  EXPECT_FALSE(manager_->IsLinked("ClassBird1", 0));
  EXPECT_TRUE(manager_->Unlink("ClassBird1", 0).IsNotFound());
  EXPECT_TRUE(manager_->Link("ghost", 0).IsNotFound());
}

TEST_F(SummaryManagerTest, ManyToManyLinks) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  ASSERT_TRUE(manager_->Link("ClassBird1", 1).ok());
  ASSERT_TRUE(manager_->Link("SimCluster", 0).ok());
  EXPECT_EQ(manager_->LinkedTo(0).size(), 2u);
  EXPECT_EQ(manager_->LinkedTo(1).size(), 1u);
}

TEST_F(SummaryManagerTest, IncrementalMaintenanceOnInsert) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  Annotate(0, 5, "found eating stonewort");
  Annotate(0, 5, "influenza infection observed");
  const auto* objects = manager_->RowObjects(0, 5);
  ASSERT_NE(objects, nullptr);
  ASSERT_EQ(objects->size(), 1u);
  EXPECT_EQ((*objects)[0]->NumAnnotations(), 2u);
  EXPECT_EQ((*objects)[0]->Render(),
            "[(Behavior, 1), (Disease, 1), (Anatomy, 0), (Other, 0)]");
}

TEST_F(SummaryManagerTest, LinkSummarizesExistingAnnotations) {
  // Annotations arrive before any instance is linked.
  Annotate(0, 1, "eating stonewort");
  Annotate(0, 1, "wingspan measured");
  Annotate(0, 2, "influenza detected");
  EXPECT_EQ(manager_->RowObjects(0, 1), nullptr);
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  const auto* row1 = manager_->RowObjects(0, 1);
  ASSERT_NE(row1, nullptr);
  EXPECT_EQ((*row1)[0]->NumAnnotations(), 2u);
  const auto* row2 = manager_->RowObjects(0, 2);
  ASSERT_NE(row2, nullptr);
  EXPECT_EQ((*row2)[0]->NumAnnotations(), 1u);
}

TEST_F(SummaryManagerTest, MultipleInstancesMaintainedTogether) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  ASSERT_TRUE(manager_->Link("SimCluster", 0).ok());
  Annotate(0, 3, "goose eating stonewort");
  Annotate(0, 3, "goose eating stonewort again");
  const auto* objects = manager_->RowObjects(0, 3);
  ASSERT_NE(objects, nullptr);
  EXPECT_EQ(objects->size(), 2u);
  for (const auto& object : *objects) {
    EXPECT_EQ(object->NumAnnotations(), 2u);
  }
}

TEST_F(SummaryManagerTest, UnlinkDropsObjects) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  ASSERT_TRUE(manager_->Link("SimCluster", 0).ok());
  Annotate(0, 3, "goose eating stonewort");
  ASSERT_TRUE(manager_->Unlink("SimCluster", 0).ok());
  const auto* objects = manager_->RowObjects(0, 3);
  ASSERT_NE(objects, nullptr);
  ASSERT_EQ(objects->size(), 1u);
  EXPECT_EQ((*objects)[0]->instance_name(), "ClassBird1");
}

TEST_F(SummaryManagerTest, SummariesForClonesMaintainedState) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  Annotate(0, 4, "eating stonewort");
  auto clones = manager_->SummariesFor(0, 4);
  ASSERT_TRUE(clones.ok());
  ASSERT_EQ(clones->size(), 1u);
  ASSERT_TRUE((*clones)[0]->RemoveAnnotation(0).ok());
  // The maintained object is untouched.
  EXPECT_EQ((*manager_->RowObjects(0, 4))[0]->NumAnnotations(), 1u);
}

TEST_F(SummaryManagerTest, SummariesForUnannotatedRowGivesEmptyObjects) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  auto clones = manager_->SummariesFor(0, 77);
  ASSERT_TRUE(clones.ok());
  ASSERT_EQ(clones->size(), 1u);
  EXPECT_EQ((*clones)[0]->NumAnnotations(), 0u);
}

TEST_F(SummaryManagerTest, ArchivedAnnotationsSkipped) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  auto id = Annotate(0, 6, "eating stonewort");
  ASSERT_TRUE(store_->Archive(id).ok());
  // Future maintenance skips it; a rebuild removes its effect, leaving the
  // row indistinguishable from a never-annotated one.
  ASSERT_TRUE(manager_->RebuildRow(0, 6).ok());
  auto summaries = manager_->SummariesFor(0, 6);
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries->size(), 1u);
  EXPECT_EQ((*summaries)[0]->NumAnnotations(), 0u);
}

TEST_F(SummaryManagerTest, RebuildMatchesIncremental) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  Annotate(0, 8, "eating stonewort");
  Annotate(0, 8, "influenza signs");
  Annotate(0, 8, "wingspan large");
  std::string incremental = (*manager_->RowObjects(0, 8))[0]->Render();
  ASSERT_TRUE(manager_->RebuildTable(0).ok());
  std::string rebuilt = (*manager_->RowObjects(0, 8))[0]->Render();
  EXPECT_EQ(incremental, rebuilt);
}

TEST_F(SummaryManagerTest, SharedAnnotationCacheHits) {
  ASSERT_TRUE(manager_->Link("ClassBird1", 0).ok());
  auto instance = manager_->GetInstance("ClassBird1");
  ASSERT_TRUE(instance.ok());
  (*instance)->ResetCacheCounters();
  // One annotation attached to 10 rows: classified once, 9 cache hits
  // (AnnotationInvariant + DataInvariant optimization).
  ann::Annotation note;
  note.body = "produced by experiment E";
  auto id = store_->Add(std::move(note), ann::CellRegion{0, 0, {}});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager_->OnAnnotationAttached(*id, ann::CellRegion{0, 0, {}}).ok());
  for (rel::RowId row = 1; row < 10; ++row) {
    ASSERT_TRUE(store_->Attach(*id, ann::CellRegion{0, row, {}}).ok());
    ASSERT_TRUE(manager_->OnAnnotationAttached(*id, ann::CellRegion{0, row, {}}).ok());
  }
  EXPECT_EQ((*instance)->cache_misses(), 1u);
  EXPECT_EQ((*instance)->cache_hits(), 9u);
}

TEST_F(SummaryManagerTest, NonInvariantInstanceSkipsCache) {
  SummaryProperties props;
  props.annotation_invariant = false;
  props.data_invariant = false;
  ASSERT_TRUE(manager_
                  ->RegisterInstance(SummaryInstance::MakeClassifier(
                      "NoCache", {"x", "y"}, props))
                  .ok());
  ASSERT_TRUE(manager_->Link("NoCache", 2).ok());
  auto instance = manager_->GetInstance("NoCache");
  ASSERT_TRUE(instance.ok());
  ann::Annotation note;
  note.body = "shared note";
  auto id = store_->Add(std::move(note), ann::CellRegion{2, 0, {}});
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager_->OnAnnotationAttached(*id, ann::CellRegion{2, 0, {}}).ok());
  for (rel::RowId row = 1; row < 5; ++row) {
    ASSERT_TRUE(store_->Attach(*id, ann::CellRegion{2, row, {}}).ok());
    ASSERT_TRUE(manager_->OnAnnotationAttached(*id, ann::CellRegion{2, row, {}}).ok());
  }
  EXPECT_EQ((*instance)->cache_hits(), 0u);
  EXPECT_EQ((*instance)->cache_misses(), 5u);
}

}  // namespace
}  // namespace insightnotes::core
