#include "core/summary_object.h"

#include <gtest/gtest.h>

#include "core/summary_instance.h"

namespace insightnotes::core {
namespace {

ann::Annotation Note(ann::AnnotationId id, const std::string& body,
                     ann::AnnotationKind kind = ann::AnnotationKind::kComment) {
  ann::Annotation a;
  a.id = id;
  a.kind = kind;
  a.author = "tester";
  a.body = body;
  return a;
}

class ClassifierObjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = SummaryInstance::MakeClassifier(
        "ClassBird1", {"Behavior", "Disease", "Anatomy", "Other"});
    auto* nb = instance_->classifier();
    ASSERT_TRUE(nb->Train(0, "eating stonewort foraging flying migration").ok());
    ASSERT_TRUE(nb->Train(1, "influenza infection sick parasite disease").ok());
    ASSERT_TRUE(nb->Train(2, "size weight wingspan beak feathers large").ok());
    ASSERT_TRUE(nb->Train(3, "article wikipedia photo link reference").ok());
    object_ = instance_->NewObject();
  }

  std::unique_ptr<SummaryInstance> instance_;
  std::unique_ptr<SummaryObject> object_;
};

TEST_F(ClassifierObjectTest, EmptyObjectRenders) {
  EXPECT_EQ(object_->NumAnnotations(), 0u);
  EXPECT_EQ(object_->NumComponents(), 4u);
  EXPECT_EQ(object_->Render(),
            "[(Behavior, 0), (Disease, 0), (Anatomy, 0), (Other, 0)]");
}

TEST_F(ClassifierObjectTest, AddClassifiesIntoLabels) {
  ASSERT_TRUE(object_->AddAnnotation(Note(1, "found eating stonewort")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(2, "signs of influenza infection")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(3, "large size and wingspan")).ok());
  auto* classifier = static_cast<ClassifierObject*>(object_.get());
  EXPECT_EQ(classifier->LabelCount(0), 1u);
  EXPECT_EQ(classifier->LabelCount(1), 1u);
  EXPECT_EQ(classifier->LabelCount(2), 1u);
  EXPECT_EQ(object_->NumAnnotations(), 3u);
  EXPECT_TRUE(object_->Contains(2));
  EXPECT_FALSE(object_->Contains(9));
}

TEST_F(ClassifierObjectTest, DuplicateAddRejected) {
  ASSERT_TRUE(object_->AddAnnotation(Note(1, "eating stonewort")).ok());
  EXPECT_TRUE(object_->AddAnnotation(Note(1, "eating stonewort")).IsAlreadyExists());
}

TEST_F(ClassifierObjectTest, RemoveDecrementsLabel) {
  ASSERT_TRUE(object_->AddAnnotation(Note(1, "eating stonewort")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(2, "eating plants daily")).ok());
  ASSERT_TRUE(object_->RemoveAnnotation(1).ok());
  auto* classifier = static_cast<ClassifierObject*>(object_.get());
  EXPECT_EQ(classifier->LabelCount(0), 1u);
  EXPECT_FALSE(object_->Contains(1));
  EXPECT_TRUE(object_->RemoveAnnotation(1).IsNotFound());
}

TEST_F(ClassifierObjectTest, MergeDoesNotDoubleCountShared) {
  // Figure 2: five common annotations must not be counted twice
  // (sum = 22 instead of 27).
  auto left = instance_->NewObject();
  auto right = instance_->NewObject();
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(left->AddAnnotation(Note(i, "eating stonewort daily")).ok());
  }
  for (int i = 6; i <= 22; ++i) {  // ids 6..10 shared with left.
    ASSERT_TRUE(right->AddAnnotation(Note(i, "eating stonewort daily")).ok());
  }
  ASSERT_TRUE(left->MergeWith(*right).ok());
  EXPECT_EQ(left->NumAnnotations(), 22u);
}

TEST_F(ClassifierObjectTest, MergeAcrossInstancesRejected) {
  auto other_instance = SummaryInstance::MakeClassifier("ClassBird2", {"a", "b"});
  auto other = other_instance->NewObject();
  EXPECT_TRUE(object_->MergeWith(*other).IsInvalidArgument());
}

TEST_F(ClassifierObjectTest, ZoomInReturnsExactIds) {
  ASSERT_TRUE(object_->AddAnnotation(Note(5, "eating stonewort")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(3, "foraging and eating")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(8, "influenza detected")).ok());
  auto behavior = object_->ZoomIn(0);
  ASSERT_TRUE(behavior.ok());
  EXPECT_EQ(*behavior, (std::vector<ann::AnnotationId>{3, 5}));
  auto disease = object_->ZoomIn(1);
  ASSERT_TRUE(disease.ok());
  EXPECT_EQ(*disease, (std::vector<ann::AnnotationId>{8}));
  EXPECT_TRUE(object_->ZoomIn(4).status().IsOutOfRange());
  EXPECT_EQ(*object_->ComponentLabel(0), "Behavior");
}

TEST_F(ClassifierObjectTest, CloneIsIndependent) {
  ASSERT_TRUE(object_->AddAnnotation(Note(1, "eating stonewort")).ok());
  auto clone = object_->Clone();
  ASSERT_TRUE(clone->RemoveAnnotation(1).ok());
  EXPECT_TRUE(object_->Contains(1));
  EXPECT_FALSE(clone->Contains(1));
}

class ClusterObjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = SummaryInstance::MakeCluster("SimCluster", 0.3);
    object_ = instance_->NewObject();
  }
  std::unique_ptr<SummaryInstance> instance_;
  std::unique_ptr<SummaryObject> object_;
};

TEST_F(ClusterObjectTest, SimilarAnnotationsGroup) {
  ASSERT_TRUE(object_->AddAnnotation(Note(1, "goose eating stonewort in the lake")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(2, "goose eating stonewort daily")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(3, "wingspan and weight measured")).ok());
  EXPECT_EQ(object_->NumComponents(), 2u);
  EXPECT_EQ(object_->NumAnnotations(), 3u);
}

TEST_F(ClusterObjectTest, RemoveReelectsRepresentative) {
  ASSERT_TRUE(object_->AddAnnotation(Note(1, "goose eating stonewort lake plants")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(2, "goose eating stonewort")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(3, "eating stonewort lake")).ok());
  ASSERT_EQ(object_->NumComponents(), 1u);
  auto* cluster = static_cast<ClusterObject*>(object_.get());
  mining::DocId rep = cluster->clusters().groups()[0].representative;
  ASSERT_TRUE(object_->RemoveAnnotation(rep).ok());
  EXPECT_EQ(object_->NumComponents(), 1u);
  EXPECT_NE(cluster->clusters().groups()[0].representative, rep);
}

TEST_F(ClusterObjectTest, ZoomInReturnsGroupMembers) {
  ASSERT_TRUE(object_->AddAnnotation(Note(7, "goose eating stonewort")).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(9, "goose eating stonewort too")).ok());
  ASSERT_EQ(object_->NumComponents(), 1u);
  auto members = object_->ZoomIn(0);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(*members, (std::vector<ann::AnnotationId>{7, 9}));
}

TEST_F(ClusterObjectTest, MergeSharedAnnotationOnce) {
  auto left = instance_->NewObject();
  auto right = instance_->NewObject();
  ASSERT_TRUE(left->AddAnnotation(Note(1, "goose eating stonewort")).ok());
  ASSERT_TRUE(right->AddAnnotation(Note(1, "goose eating stonewort")).ok());
  ASSERT_TRUE(right->AddAnnotation(Note(2, "disease influenza outbreak")).ok());
  ASSERT_TRUE(left->MergeWith(*right).ok());
  EXPECT_EQ(left->NumAnnotations(), 2u);
}

TEST_F(ClusterObjectTest, RenderShowsRepresentativeAndSize) {
  ASSERT_TRUE(object_->AddAnnotation(Note(4, "goose eating stonewort")).ok());
  std::string rendered = object_->Render();
  EXPECT_NE(rendered.find("A4"), std::string::npos);
  EXPECT_NE(rendered.find("x1"), std::string::npos);
}

class SnippetObjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mining::SnippetOptions opts;
    opts.max_sentences = 1;
    opts.max_chars = 100;
    instance_ = SummaryInstance::MakeSnippet("TextSummary1", opts);
    object_ = instance_->NewObject();
  }
  std::unique_ptr<SummaryInstance> instance_;
  std::unique_ptr<SummaryObject> object_;
};

TEST_F(SnippetObjectTest, OnlyDocumentsContribute) {
  ASSERT_TRUE(object_->AddAnnotation(Note(1, "a short comment")).ok());
  EXPECT_EQ(object_->NumAnnotations(), 0u);
  ann::Annotation doc = Note(2, "The swan goose breeds in Mongolia. It winters in China.",
                             ann::AnnotationKind::kDocument);
  doc.title = "Wikipedia article";
  ASSERT_TRUE(object_->AddAnnotation(doc).ok());
  EXPECT_EQ(object_->NumAnnotations(), 1u);
  EXPECT_EQ(object_->NumComponents(), 1u);
  EXPECT_EQ(*object_->ComponentLabel(0), "Wikipedia article");
}

TEST_F(SnippetObjectTest, SnippetIsShortAndExtractive) {
  std::string article =
      "The swan goose is a large goose. It breeds in Mongolia and winters in "
      "eastern China where large flocks gather.";
  ASSERT_TRUE(object_
                  ->AddAnnotation(Note(1, article, ann::AnnotationKind::kDocument))
                  .ok());
  std::string rendered = object_->Render();
  EXPECT_LE(rendered.size(), 110u);
  EXPECT_NE(rendered.find("goose"), std::string::npos);
}

TEST_F(SnippetObjectTest, RemoveDeletesSnippet) {
  ASSERT_TRUE(object_->AddAnnotation(Note(1, "Doc one.", ann::AnnotationKind::kDocument)).ok());
  ASSERT_TRUE(object_->AddAnnotation(Note(2, "Doc two.", ann::AnnotationKind::kDocument)).ok());
  // Removing the Wikipedia article during projection (Figure 2 step 1).
  ASSERT_TRUE(object_->RemoveAnnotation(2).ok());
  EXPECT_EQ(object_->NumComponents(), 1u);
  // Removing a non-contributing id is a tolerated no-op.
  EXPECT_TRUE(object_->RemoveAnnotation(99).ok());
}

TEST_F(SnippetObjectTest, MergeUnionsDocuments) {
  auto left = instance_->NewObject();
  auto right = instance_->NewObject();
  ASSERT_TRUE(left->AddAnnotation(Note(1, "Doc A.", ann::AnnotationKind::kDocument)).ok());
  ASSERT_TRUE(right->AddAnnotation(Note(1, "Doc A.", ann::AnnotationKind::kDocument)).ok());
  ASSERT_TRUE(right->AddAnnotation(Note(2, "Doc B.", ann::AnnotationKind::kDocument)).ok());
  ASSERT_TRUE(left->MergeWith(*right).ok());
  EXPECT_EQ(left->NumAnnotations(), 2u);
  auto ids = left->ZoomIn(1);
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<ann::AnnotationId>{2}));
}

TEST(SummaryObjectAlgebraTest, AddThenRemoveIsIdentityAcrossTypes) {
  auto classifier_instance = SummaryInstance::MakeClassifier("c", {"x", "y"});
  auto cluster_instance = SummaryInstance::MakeCluster("g", 0.3);
  mining::SnippetOptions opts;
  auto snippet_instance = SummaryInstance::MakeSnippet("s", opts);
  std::vector<std::unique_ptr<SummaryObject>> objects;
  objects.push_back(classifier_instance->NewObject());
  objects.push_back(cluster_instance->NewObject());
  objects.push_back(snippet_instance->NewObject());
  for (auto& object : objects) {
    ann::Annotation base = Note(1, "base annotation body text",
                                ann::AnnotationKind::kDocument);
    ASSERT_TRUE(object->AddAnnotation(base).ok());
    std::string before = object->Render();
    ann::Annotation extra = Note(2, "another extra annotation here",
                                 ann::AnnotationKind::kDocument);
    ASSERT_TRUE(object->AddAnnotation(extra).ok());
    ASSERT_TRUE(object->RemoveAnnotation(2).ok());
    EXPECT_EQ(object->Render(), before) << object->instance_name();
  }
}

}  // namespace
}  // namespace insightnotes::core
