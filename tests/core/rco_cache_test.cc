#include "core/rco_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <thread>
#include <vector>

namespace insightnotes::core {
namespace {

/// A snapshot of roughly `bytes` serialized size.
ResultSnapshot SnapshotOfSize(size_t bytes) {
  ResultSnapshot snapshot;
  snapshot.column_names = {"pad"};
  RowSnapshot row;
  row.tuple = rel::Tuple({rel::Value(std::string(bytes, 'x'))});
  snapshot.rows.push_back(std::move(row));
  return snapshot;
}

TEST(ZoomInCacheTest, PutGetRoundTrip) {
  ZoomInCache cache(CachePolicy::kLru, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  ResultSnapshot snapshot;
  snapshot.column_names = {"r.a", "r.b"};
  RowSnapshot row;
  row.tuple = rel::Tuple({rel::Value(static_cast<int64_t>(1))});
  SummarySnapshot s;
  s.instance = "ClassBird1";
  s.rendered = "[(Behavior, 2)]";
  s.components.push_back(ComponentSnapshot{"Behavior", {10, 20}});
  row.summaries.push_back(s);
  snapshot.rows.push_back(std::move(row));

  ASSERT_TRUE(cache.Put(7, snapshot, 0.5).ok());
  auto back = cache.Get(7);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->column_names, snapshot.column_names);
  ASSERT_EQ(back->rows.size(), 1u);
  ASSERT_EQ(back->rows[0].summaries.size(), 1u);
  EXPECT_EQ(back->rows[0].summaries[0].rendered, "[(Behavior, 2)]");
  EXPECT_EQ(back->rows[0].summaries[0].components[0].ids,
            (std::vector<ann::AnnotationId>{10, 20}));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ZoomInCacheTest, MissCounts) {
  ZoomInCache cache(CachePolicy::kLru, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  EXPECT_TRUE(cache.Get(1).status().IsNotFound());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ZoomInCacheTest, NonePolicyRejectsEverything) {
  ZoomInCache cache(CachePolicy::kNone, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(100), 1.0).ok());
  EXPECT_TRUE(cache.Get(1).status().IsNotFound());
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ZoomInCacheTest, OversizeSnapshotRejected) {
  ZoomInCache cache(CachePolicy::kLru, 512);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(4096), 1.0).ok());
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(ZoomInCacheTest, LruEvictsOldest) {
  // Budget fits ~2 entries of ~400B.
  ZoomInCache cache(CachePolicy::kLru, 800);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Get(1).ok());  // Touch 1 so 2 is LRU.
  ASSERT_TRUE(cache.Put(3, SnapshotOfSize(300), 1.0).ok());
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ZoomInCacheTest, LfuEvictsLeastFrequent) {
  ZoomInCache cache(CachePolicy::kLfu, 800);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  ASSERT_TRUE(cache.Get(1).ok());  // qid 1 referenced more.
  ASSERT_TRUE(cache.Put(3, SnapshotOfSize(300), 1.0).ok());
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(ZoomInCacheTest, RcoKeepsExpensiveResults) {
  // Two cold entries, same size and recency: RCO must evict the cheap one.
  ZoomInCache cache(CachePolicy::kRco, 800);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(300), /*cost=*/10.0).ok());  // Expensive.
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(300), /*cost=*/0.01).ok());  // Cheap.
  ASSERT_TRUE(cache.Put(3, SnapshotOfSize(300), /*cost=*/5.0).ok());
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ZoomInCacheTest, RcoPenalizesLargeResults) {
  RcoWeights weights;
  weights.recency = 0.0;  // Isolate the overhead factor.
  weights.complexity = 0.0;
  weights.overhead = 1.0;
  ZoomInCache cache(CachePolicy::kRco, 1000, "", weights);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(500), 1.0).ok());  // Large.
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(100), 1.0).ok());  // Small.
  ASSERT_TRUE(cache.Put(3, SnapshotOfSize(400), 1.0).ok());
  EXPECT_FALSE(cache.Contains(1));  // The big entry went first.
  EXPECT_TRUE(cache.Contains(2));
}

TEST(ZoomInCacheTest, ReplacingSameQidUpdates) {
  ZoomInCache cache(CachePolicy::kLru, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(100), 1.0).ok());
  size_t used_before = cache.stats().bytes_used;
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(200), 1.0).ok());
  EXPECT_GT(cache.stats().bytes_used, used_before);
  auto back = cache.Get(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows[0].tuple.ValueAt(0).AsString().size(), 200u);
}

TEST(ZoomInCacheTest, FileBackedCache) {
  std::string path = ::testing::TempDir() + "/insightnotes_cache_test.db";
  {
    ZoomInCache cache(CachePolicy::kRco, 1 << 20, path);
    ASSERT_TRUE(cache.Init().ok());
    ASSERT_TRUE(cache.Put(1, SnapshotOfSize(5000), 1.0).ok());
    auto back = cache.Get(1);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->rows[0].tuple.ValueAt(0).AsString().size(), 5000u);
  }
  // Destructor removed the backing file.
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

TEST(ZoomInCacheTest, HeapReadFailureCountsMissNotHit) {
  // A torn backing record must surface as a miss: no hit is counted and the
  // snapshot is not returned. (Previously the hit was counted and recency
  // bumped before the heap read, so a failed read still looked like a hit.)
  ZoomInCache cache(CachePolicy::kLru, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(100), 1.0).ok());
  ASSERT_TRUE(cache.CorruptBackingRecordForTest(1).ok());
  auto back = cache.Get(1);
  EXPECT_FALSE(back.ok());
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  // The directory entry survives; only the backing read failed.
  EXPECT_TRUE(cache.Contains(1));
}

TEST(ZoomInCacheTest, FailedReplacementKeepsOldSnapshotReadable) {
  // Replacing qid 1 with a bigger snapshot needs an eviction; the only
  // victim candidate (qid 2, since the replaced entry is pinned) has a torn
  // backing record, so eviction — and with it the replacement — fails.
  // The old snapshot of qid 1 must remain readable. (Previously Put erased
  // the old entry before MakeRoom, losing it on a failed replacement.)
  ZoomInCache cache(CachePolicy::kLru, 800);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.CorruptBackingRecordForTest(2).ok());

  uint64_t rejected_before = cache.stats().rejected;
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(600), 1.0).ok());
  EXPECT_EQ(cache.stats().rejected, rejected_before + 1);

  auto back = cache.Get(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows[0].tuple.ValueAt(0).AsString().size(), 300u);
}

TEST(ZoomInCacheTest, OversizedReplacementKeepsOldEntry) {
  ZoomInCache cache(CachePolicy::kLru, 512);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(100), 1.0).ok());
  // Larger than the whole budget: rejected, old snapshot untouched.
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(4096), 1.0).ok());
  EXPECT_EQ(cache.stats().rejected, 1u);
  auto back = cache.Get(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows[0].tuple.ValueAt(0).AsString().size(), 100u);
}

TEST(ZoomInCacheTest, ReplacementNeverEvictsItself) {
  // The entry being replaced is pinned: growing it within budget must not
  // pick it as its own victim even when it is the eviction-policy favorite.
  ZoomInCache cache(CachePolicy::kLru, 800);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(300), 1.0).ok());  // LRU favorite.
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(600), 1.0).ok());  // Needs room.
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));  // 2 evicted, not the pinned 1.
  auto back = cache.Get(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows[0].tuple.ValueAt(0).AsString().size(), 600u);
}

/// Brute-force reference model of the cache's bookkeeping: same tick,
/// recency/frequency and RCO-score semantics, victim picked by exhaustive
/// scan. Drives an eviction-heavy random workload and cross-checks contents
/// and stats after every operation.
class CacheOracle {
 public:
  CacheOracle(CachePolicy policy, size_t budget, RcoWeights weights)
      : policy_(policy), budget_(budget), weights_(weights) {}

  void Put(QueryId qid, size_t bytes, double cost) {
    if (bytes > budget_) {
      ++stats_.rejected;
      return;
    }
    auto existing = entries_.find(qid);
    size_t reclaimable = existing != entries_.end() ? existing->second.size : 0;
    bool pinned = existing != entries_.end();
    while (stats_.bytes_used - reclaimable + bytes > budget_) {
      if (entries_.size() <= (pinned ? 1u : 0u)) {
        ++stats_.rejected;
        return;
      }
      QueryId victim = PickVictim(pinned ? &qid : nullptr);
      stats_.bytes_used -= entries_[victim].size;
      entries_.erase(victim);
      ++stats_.evictions;
    }
    if (existing != entries_.end()) {
      stats_.bytes_used -= existing->second.size;
      entries_.erase(existing);
    }
    Entry e;
    e.size = bytes;
    e.cost = cost;
    e.last_ref = ++tick_;
    e.ref_count = 1;
    entries_[qid] = e;
    stats_.bytes_used += bytes;
    ++stats_.insertions;
  }

  void Get(QueryId qid) {
    auto it = entries_.find(qid);
    if (it == entries_.end()) {
      ++stats_.misses;
      return;
    }
    ++stats_.hits;
    it->second.last_ref = ++tick_;
    ++it->second.ref_count;
  }

  bool Contains(QueryId qid) const { return entries_.contains(qid); }
  const CacheStats& stats() const { return stats_; }

 private:
  struct Entry {
    size_t size = 0;
    double cost = 0.0;
    uint64_t last_ref = 0;
    uint64_t ref_count = 0;
  };

  QueryId PickVictim(const QueryId* exclude) const {
    double max_cost = 1e-9;
    size_t max_size = 1;
    for (const auto& [qid, e] : entries_) {
      max_cost = std::max(max_cost, e.cost);
      max_size = std::max(max_size, e.size);
    }
    bool have = false;
    QueryId victim = 0;
    uint64_t best_tick = 0;
    double best_score = 0.0;
    for (const auto& [qid, e] : entries_) {
      if (exclude != nullptr && qid == *exclude) continue;
      double score = 0.0;
      uint64_t key = 0;
      switch (policy_) {
        case CachePolicy::kLru:
          key = e.last_ref;
          if (!have || key < best_tick) { best_tick = key; victim = qid; }
          break;
        case CachePolicy::kLfu:
          key = e.ref_count;
          if (!have || key < best_tick) { best_tick = key; victim = qid; }
          break;
        case CachePolicy::kRco: {
          double age = static_cast<double>(tick_ - e.last_ref);
          double recency = 1.0 / (1.0 + age);
          double complexity = e.cost / max_cost;
          double overhead =
              static_cast<double>(e.size) / static_cast<double>(max_size);
          score = weights_.recency * recency + weights_.complexity * complexity -
                  weights_.overhead * overhead;
          if (!have || score < best_score) { best_score = score; victim = qid; }
          break;
        }
        case CachePolicy::kNone:
          if (!have) victim = qid;
          break;
      }
      have = true;
    }
    return victim;
  }

  CachePolicy policy_;
  size_t budget_;
  RcoWeights weights_;
  std::map<QueryId, Entry> entries_;
  uint64_t tick_ = 0;
  CacheStats stats_;
};

TEST(ZoomInCacheTest, EvictionHeavyRunMatchesBruteForceOracle) {
  for (CachePolicy policy :
       {CachePolicy::kLru, CachePolicy::kLfu, CachePolicy::kRco}) {
    RcoWeights weights;  // Defaults, as the cache uses them.
    const size_t kBudget = 1500;
    ZoomInCache cache(policy, kBudget, "", weights);
    ASSERT_TRUE(cache.Init().ok());
    CacheOracle oracle(policy, kBudget, weights);

    uint64_t rng = 0x9e3779b97f4a7c15ull + static_cast<uint64_t>(policy);
    auto next = [&rng]() {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };
    constexpr QueryId kQids = 12;
    for (int op = 0; op < 400; ++op) {
      QueryId qid = next() % kQids;
      if (next() % 4 == 0) {
        (void)cache.Get(qid);
        oracle.Get(qid);
      } else {
        size_t payload = 100 + next() % 500;
        double cost = 0.01 * static_cast<double>(1 + next() % 1000);
        ResultSnapshot snapshot = SnapshotOfSize(payload);
        std::string bytes;
        snapshot.Serialize(&bytes);
        ASSERT_TRUE(cache.Put(qid, snapshot, cost).ok());
        oracle.Put(qid, bytes.size(), cost);
      }
      for (QueryId q = 0; q < kQids; ++q) {
        ASSERT_EQ(cache.Contains(q), oracle.Contains(q))
            << "policy=" << CachePolicyToString(policy) << " op=" << op
            << " qid=" << q;
      }
      ASSERT_EQ(cache.stats().hits, oracle.stats().hits) << "op=" << op;
      ASSERT_EQ(cache.stats().misses, oracle.stats().misses) << "op=" << op;
      ASSERT_EQ(cache.stats().evictions, oracle.stats().evictions)
          << "policy=" << CachePolicyToString(policy) << " op=" << op;
      ASSERT_EQ(cache.stats().insertions, oracle.stats().insertions)
          << "op=" << op;
      ASSERT_EQ(cache.stats().rejected, oracle.stats().rejected) << "op=" << op;
      ASSERT_EQ(cache.stats().bytes_used, oracle.stats().bytes_used)
          << "op=" << op;
    }
  }
}

TEST(SnapshotTest, SerializationRoundTripsEmpty) {
  ResultSnapshot empty;
  std::string bytes;
  empty.Serialize(&bytes);
  auto back = ResultSnapshot::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->rows.empty());
  EXPECT_TRUE(back->column_names.empty());
}

TEST(SnapshotTest, DeserializeRejectsTruncation) {
  ResultSnapshot snapshot = SnapshotOfSize(100);
  std::string bytes;
  snapshot.Serialize(&bytes);
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{3}}) {
    auto back = ResultSnapshot::Deserialize(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(back.ok()) << "cut=" << cut;
  }
}

TEST(ZoomInCacheTest, EpochKeyedLookup) {
  ZoomInCache cache(CachePolicy::kLru, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(7, SnapshotOfSize(100), 1.0, /*epoch=*/5).ok());

  // Same epoch hits; a different epoch is a miss (stale summary versions);
  // the wildcard matches either way.
  EXPECT_TRUE(cache.Get(7, 5).ok());
  EXPECT_TRUE(cache.Get(7, 6).status().IsNotFound());
  EXPECT_TRUE(cache.Get(7, ZoomInCache::kAnyEpoch).ok());

  // An entry stored under the wildcard serves every epoch.
  ASSERT_TRUE(cache.Put(8, SnapshotOfSize(100), 1.0).ok());
  EXPECT_TRUE(cache.Get(8, 3).ok());
  EXPECT_TRUE(cache.Get(8, 9).ok());
}

// Counter conservation under the sharded-lock path: counters are atomics
// bumped from many threads, and every operation lands in exactly one
// bucket, so the totals must reconcile exactly after the threads join.
TEST(ZoomInCacheTest, ConcurrentCountersConserve) {
  ZoomInCache cache(CachePolicy::kLru, 1 << 20);  // Roomy: no evictions.
  ASSERT_TRUE(cache.Init().ok());
  constexpr int kThreads = 8;
  constexpr int kQidsPerThread = 16;
  constexpr int kGetsPerQid = 4;
  const size_t entry_payload = 64;

  std::string serialized;
  SnapshotOfSize(entry_payload).Serialize(&serialized);

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Disjoint qid ranges spread across every shard (qid % kThreads == t).
      for (int i = 0; i < kQidsPerThread; ++i) {
        QueryId qid = static_cast<QueryId>(t + i * kThreads);
        // Miss first, then insert, then hit.
        EXPECT_TRUE(cache.Get(qid).status().IsNotFound());
        EXPECT_TRUE(cache.Put(qid, SnapshotOfSize(entry_payload), 1.0).ok());
        for (int g = 0; g < kGetsPerQid; ++g) {
          EXPECT_TRUE(cache.Get(qid).ok());
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  CacheStats stats = cache.stats();
  constexpr uint64_t kEntries = kThreads * kQidsPerThread;
  EXPECT_EQ(stats.insertions, kEntries);
  EXPECT_EQ(stats.hits, kEntries * kGetsPerQid);
  EXPECT_EQ(stats.misses, kEntries);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.bytes_used, kEntries * serialized.size());
  for (QueryId qid = 0; qid < kEntries; ++qid) {
    EXPECT_TRUE(cache.Contains(qid)) << qid;
  }
}

// Conservation with evictions: insertions == evictions + live entries,
// and bytes_used equals the live entries' total serialized size.
TEST(ZoomInCacheTest, ConcurrentEvictionConservation) {
  std::string serialized;
  SnapshotOfSize(64).Serialize(&serialized);
  // Budget fits ~20 entries, so concurrent inserts of 128 distinct qids
  // must evict; the directory totals still have to reconcile.
  ZoomInCache cache(CachePolicy::kLru, serialized.size() * 20);
  ASSERT_TRUE(cache.Init().ok());
  constexpr int kThreads = 8;
  constexpr int kQidsPerThread = 16;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kQidsPerThread; ++i) {
        QueryId qid = static_cast<QueryId>(t + i * kThreads);
        EXPECT_TRUE(cache.Put(qid, SnapshotOfSize(64), 1.0).ok());
        (void)cache.Get(qid);  // May hit or miss (already evicted).
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  CacheStats stats = cache.stats();
  uint64_t live = 0;
  for (QueryId qid = 0; qid < kThreads * kQidsPerThread; ++qid) {
    if (cache.Contains(qid)) ++live;
  }
  EXPECT_EQ(stats.insertions, static_cast<uint64_t>(kThreads * kQidsPerThread));
  EXPECT_EQ(stats.insertions, stats.evictions + live);
  EXPECT_EQ(stats.bytes_used, live * serialized.size());
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(kThreads * kQidsPerThread));
}

}  // namespace
}  // namespace insightnotes::core
