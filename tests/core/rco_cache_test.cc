#include "core/rco_cache.h"

#include <gtest/gtest.h>

namespace insightnotes::core {
namespace {

/// A snapshot of roughly `bytes` serialized size.
ResultSnapshot SnapshotOfSize(size_t bytes) {
  ResultSnapshot snapshot;
  snapshot.column_names = {"pad"};
  RowSnapshot row;
  row.tuple = rel::Tuple({rel::Value(std::string(bytes, 'x'))});
  snapshot.rows.push_back(std::move(row));
  return snapshot;
}

TEST(ZoomInCacheTest, PutGetRoundTrip) {
  ZoomInCache cache(CachePolicy::kLru, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  ResultSnapshot snapshot;
  snapshot.column_names = {"r.a", "r.b"};
  RowSnapshot row;
  row.tuple = rel::Tuple({rel::Value(static_cast<int64_t>(1))});
  SummarySnapshot s;
  s.instance = "ClassBird1";
  s.rendered = "[(Behavior, 2)]";
  s.components.push_back(ComponentSnapshot{"Behavior", {10, 20}});
  row.summaries.push_back(s);
  snapshot.rows.push_back(std::move(row));

  ASSERT_TRUE(cache.Put(7, snapshot, 0.5).ok());
  auto back = cache.Get(7);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->column_names, snapshot.column_names);
  ASSERT_EQ(back->rows.size(), 1u);
  ASSERT_EQ(back->rows[0].summaries.size(), 1u);
  EXPECT_EQ(back->rows[0].summaries[0].rendered, "[(Behavior, 2)]");
  EXPECT_EQ(back->rows[0].summaries[0].components[0].ids,
            (std::vector<ann::AnnotationId>{10, 20}));
  EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(ZoomInCacheTest, MissCounts) {
  ZoomInCache cache(CachePolicy::kLru, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  EXPECT_TRUE(cache.Get(1).status().IsNotFound());
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(ZoomInCacheTest, NonePolicyRejectsEverything) {
  ZoomInCache cache(CachePolicy::kNone, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(100), 1.0).ok());
  EXPECT_TRUE(cache.Get(1).status().IsNotFound());
  EXPECT_EQ(cache.stats().rejected, 1u);
  EXPECT_EQ(cache.stats().insertions, 0u);
}

TEST(ZoomInCacheTest, OversizeSnapshotRejected) {
  ZoomInCache cache(CachePolicy::kLru, 512);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(4096), 1.0).ok());
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(ZoomInCacheTest, LruEvictsOldest) {
  // Budget fits ~2 entries of ~400B.
  ZoomInCache cache(CachePolicy::kLru, 800);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Get(1).ok());  // Touch 1 so 2 is LRU.
  ASSERT_TRUE(cache.Put(3, SnapshotOfSize(300), 1.0).ok());
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ZoomInCacheTest, LfuEvictsLeastFrequent) {
  ZoomInCache cache(CachePolicy::kLfu, 800);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(300), 1.0).ok());
  ASSERT_TRUE(cache.Get(1).ok());
  ASSERT_TRUE(cache.Get(1).ok());  // qid 1 referenced more.
  ASSERT_TRUE(cache.Put(3, SnapshotOfSize(300), 1.0).ok());
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(ZoomInCacheTest, RcoKeepsExpensiveResults) {
  // Two cold entries, same size and recency: RCO must evict the cheap one.
  ZoomInCache cache(CachePolicy::kRco, 800);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(300), /*cost=*/10.0).ok());  // Expensive.
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(300), /*cost=*/0.01).ok());  // Cheap.
  ASSERT_TRUE(cache.Put(3, SnapshotOfSize(300), /*cost=*/5.0).ok());
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(ZoomInCacheTest, RcoPenalizesLargeResults) {
  RcoWeights weights;
  weights.recency = 0.0;  // Isolate the overhead factor.
  weights.complexity = 0.0;
  weights.overhead = 1.0;
  ZoomInCache cache(CachePolicy::kRco, 1000, "", weights);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(500), 1.0).ok());  // Large.
  ASSERT_TRUE(cache.Put(2, SnapshotOfSize(100), 1.0).ok());  // Small.
  ASSERT_TRUE(cache.Put(3, SnapshotOfSize(400), 1.0).ok());
  EXPECT_FALSE(cache.Contains(1));  // The big entry went first.
  EXPECT_TRUE(cache.Contains(2));
}

TEST(ZoomInCacheTest, ReplacingSameQidUpdates) {
  ZoomInCache cache(CachePolicy::kLru, 1 << 20);
  ASSERT_TRUE(cache.Init().ok());
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(100), 1.0).ok());
  size_t used_before = cache.stats().bytes_used;
  ASSERT_TRUE(cache.Put(1, SnapshotOfSize(200), 1.0).ok());
  EXPECT_GT(cache.stats().bytes_used, used_before);
  auto back = cache.Get(1);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->rows[0].tuple.ValueAt(0).AsString().size(), 200u);
}

TEST(ZoomInCacheTest, FileBackedCache) {
  std::string path = ::testing::TempDir() + "/insightnotes_cache_test.db";
  {
    ZoomInCache cache(CachePolicy::kRco, 1 << 20, path);
    ASSERT_TRUE(cache.Init().ok());
    ASSERT_TRUE(cache.Put(1, SnapshotOfSize(5000), 1.0).ok());
    auto back = cache.Get(1);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back->rows[0].tuple.ValueAt(0).AsString().size(), 5000u);
  }
  // Destructor removed the backing file.
  FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(f, nullptr);
  if (f != nullptr) std::fclose(f);
}

TEST(SnapshotTest, SerializationRoundTripsEmpty) {
  ResultSnapshot empty;
  std::string bytes;
  empty.Serialize(&bytes);
  auto back = ResultSnapshot::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->rows.empty());
  EXPECT_TRUE(back->column_names.empty());
}

TEST(SnapshotTest, DeserializeRejectsTruncation) {
  ResultSnapshot snapshot = SnapshotOfSize(100);
  std::string bytes;
  snapshot.Serialize(&bytes);
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{3}}) {
    auto back = ResultSnapshot::Deserialize(std::string_view(bytes).substr(0, cut));
    EXPECT_FALSE(back.ok()) << "cut=" << cut;
  }
}

}  // namespace
}  // namespace insightnotes::core
