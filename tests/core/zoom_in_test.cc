// Zoom-in end-to-end tests, mirroring Figure 3: query results carry
// classifier/snippet summaries; ZoomIn commands retrieve the refuting
// annotations / the attached article.

#include "core/zoom_in.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "exec/filter.h"
#include "testutil.h"

namespace insightnotes::core {
namespace {

using testutil::Col;
using testutil::I;
using testutil::S;

class ZoomInTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    // Figure 3 schema: T(c1 TEXT, c2 TEXT, c3 BIGINT).
    ASSERT_TRUE(engine_
                    ->CreateTable("T", rel::Schema({{"c1", rel::ValueType::kString, "T"},
                                                    {"c2", rel::ValueType::kString, "T"},
                                                    {"c3", rel::ValueType::kInt64, "T"}}))
                    .ok());
    ASSERT_TRUE(engine_->Insert("T", rel::Tuple({S("x"), S("y"), I(5)})).ok());
    ASSERT_TRUE(engine_->Insert("T", rel::Tuple({S("x"), S("y"), I(10)})).ok());

    // NaiveBayesClass with {refute, approve}; TextSummary for documents.
    auto classifier = SummaryInstance::MakeClassifier(
        "NaiveBayesClass", {"refute", "approve", "other"});
    auto* nb = classifier->classifier();
    ASSERT_TRUE(nb->Train(0, "wrong invalid incorrect needs verification bogus").ok());
    ASSERT_TRUE(nb->Train(1, "confirmed verified correct agree accurate").ok());
    ASSERT_TRUE(nb->Train(2, "article wikipedia describes species goose breeds").ok());
    ASSERT_TRUE(engine_->RegisterInstance(std::move(classifier)).ok());
    ASSERT_TRUE(engine_
                    ->RegisterInstance(SummaryInstance::MakeSnippet("TextSummary"))
                    .ok());
    ASSERT_TRUE(engine_->LinkInstance("NaiveBayesClass", "T").ok());
    ASSERT_TRUE(engine_->LinkInstance("TextSummary", "T").ok());

    // Figure 3 annotations: one refuting note on r1, two on r2, plus an
    // approving note on r1 and a Wikipedia article on r1.
    refute_r1_ = *engine_->Annotate(Spec("T", 0, "Value 5 is wrong"));
    ASSERT_TRUE(engine_->Annotate(Spec("T", 0, "confirmed correct by survey")).ok());
    refute_r2_a_ = *engine_->Annotate(Spec("T", 1, "Needs verification"));
    refute_r2_b_ = *engine_->Annotate(Spec("T", 1, "Invalid experiment"));
    AnnotateSpec doc = Spec("T", 0,
                            "The swan goose is a large goose. It breeds in Mongolia.");
    doc.kind = ann::AnnotationKind::kDocument;
    doc.title = "Wikipedia article";
    wiki_ = *engine_->Annotate(doc);
  }

  Result<QueryResult> RunSelectAll() {
    auto scan = engine_->MakeScan("T", "t");
    EXPECT_TRUE(scan.ok());
    return engine_->Execute(std::move(*scan));
  }

  ann::AnnotationId refute_r1_ = 0;
  ann::AnnotationId refute_r2_a_ = 0;
  ann::AnnotationId refute_r2_b_ = 0;
  ann::AnnotationId wiki_ = 0;
};

TEST_F(ZoomInTest, RetrieveRefutingAnnotations) {
  auto result = RunSelectAll();
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 2u);

  // "ZoomIn Reference QID <qid> Where c1 = 'x' On NaiveBayesClass Index 0".
  ZoomInRequest request;
  request.qid = result->qid;
  request.predicate = rel::MakeCompare(rel::CompareOp::kEq,
                                       Col(result->schema, "t.c1"),
                                       rel::MakeLiteral(S("x")));
  request.instance_name = "NaiveBayesClass";
  request.component_index = 0;  // "refute".
  auto zoom = engine_->ZoomIn(request);
  ASSERT_TRUE(zoom.ok());
  ASSERT_EQ(zoom->rows.size(), 2u);
  EXPECT_TRUE(zoom->served_from_cache);

  // r1: one refuting annotation.
  EXPECT_EQ(zoom->rows[0].component_label, "refute");
  ASSERT_EQ(zoom->rows[0].annotations.size(), 1u);
  EXPECT_EQ(zoom->rows[0].annotations[0].body, "Value 5 is wrong");
  // r2: two refuting annotations.
  ASSERT_EQ(zoom->rows[1].annotations.size(), 2u);
  EXPECT_EQ(zoom->rows[1].annotations[0].body, "Needs verification");
  EXPECT_EQ(zoom->rows[1].annotations[1].body, "Invalid experiment");
}

TEST_F(ZoomInTest, RetrieveWikipediaArticle) {
  auto result = RunSelectAll();
  ASSERT_TRUE(result.ok());
  // "ZoomIn Reference QID ... Where c3 = 5 On TextSummary Index 0".
  ZoomInRequest request;
  request.qid = result->qid;
  request.predicate = rel::MakeCompare(rel::CompareOp::kEq,
                                       Col(result->schema, "t.c3"),
                                       rel::MakeLiteral(I(5)));
  request.instance_name = "TextSummary";
  request.component_index = 0;
  auto zoom = engine_->ZoomIn(request);
  ASSERT_TRUE(zoom.ok());
  ASSERT_EQ(zoom->rows.size(), 1u);
  EXPECT_EQ(zoom->rows[0].component_label, "Wikipedia article");
  ASSERT_EQ(zoom->rows[0].annotations.size(), 1u);
  EXPECT_EQ(zoom->rows[0].annotations[0].id, wiki_);
  EXPECT_NE(zoom->rows[0].annotations[0].body.find("Mongolia"), std::string::npos);
}

TEST_F(ZoomInTest, UnknownQidFails) {
  ZoomInRequest request;
  request.qid = 424242;
  request.instance_name = "NaiveBayesClass";
  EXPECT_TRUE(engine_->ZoomIn(request).status().IsNotFound());
}

TEST_F(ZoomInTest, UnknownInstanceFails) {
  auto result = RunSelectAll();
  ASSERT_TRUE(result.ok());
  ZoomInRequest request;
  request.qid = result->qid;
  request.instance_name = "NoSuchInstance";
  EXPECT_TRUE(engine_->ZoomIn(request).status().IsNotFound());
}

TEST_F(ZoomInTest, NoPredicateSelectsAllRows) {
  auto result = RunSelectAll();
  ASSERT_TRUE(result.ok());
  ZoomInRequest request;
  request.qid = result->qid;
  request.instance_name = "NaiveBayesClass";
  request.component_index = 1;  // "approve".
  auto zoom = engine_->ZoomIn(request);
  ASSERT_TRUE(zoom.ok());
  ASSERT_EQ(zoom->rows.size(), 2u);
  EXPECT_EQ(zoom->rows[0].annotations.size(), 1u);  // r1's approving note.
  EXPECT_EQ(zoom->rows[1].annotations.size(), 0u);
}

TEST_F(ZoomInTest, CacheMissTriggersReexecution) {
  // Cache too small for any snapshot: every zoom-in re-runs the plan.
  options_.cache_budget_bytes = 16;
  engine_ = std::make_unique<Engine>(options_);
  ASSERT_TRUE(engine_->Init().ok());
  ASSERT_TRUE(engine_
                  ->CreateTable("T", rel::Schema({{"c1", rel::ValueType::kString, "T"}}))
                  .ok());
  ASSERT_TRUE(engine_->Insert("T", rel::Tuple({S("x")})).ok());
  auto classifier = SummaryInstance::MakeClassifier("NB", {"refute", "approve"});
  ASSERT_TRUE(classifier->classifier()->Train(0, "wrong").ok());
  ASSERT_TRUE(engine_->RegisterInstance(std::move(classifier)).ok());
  ASSERT_TRUE(engine_->LinkInstance("NB", "T").ok());
  ASSERT_TRUE(engine_->Annotate(Spec("T", 0, "wrong value")).ok());

  auto scan = engine_->MakeScan("T");
  ASSERT_TRUE(scan.ok());
  auto result = engine_->Execute(std::move(*scan));
  ASSERT_TRUE(result.ok());

  ZoomInRequest request;
  request.qid = result->qid;
  request.instance_name = "NB";
  request.component_index = 0;
  auto zoom = engine_->ZoomIn(request);
  ASSERT_TRUE(zoom.ok());
  EXPECT_FALSE(zoom->served_from_cache);  // Re-executed transparently.
  ASSERT_EQ(zoom->rows.size(), 1u);
  EXPECT_EQ(zoom->rows[0].annotations.size(), 1u);
}

TEST_F(ZoomInTest, ZoomInAfterArchiveReflectsCuration) {
  ASSERT_TRUE(engine_->ArchiveAnnotation(refute_r1_).ok());
  auto result = RunSelectAll();
  ASSERT_TRUE(result.ok());
  ZoomInRequest request;
  request.qid = result->qid;
  request.instance_name = "NaiveBayesClass";
  request.component_index = 0;
  auto zoom = engine_->ZoomIn(request);
  ASSERT_TRUE(zoom.ok());
  // r1's refuting annotation was archived: its effect is gone.
  EXPECT_EQ(zoom->rows[0].annotations.size(), 0u);
  EXPECT_EQ(zoom->rows[1].annotations.size(), 2u);
}

TEST_F(ZoomInTest, QidsAreUniquePerExecution) {
  auto a = RunSelectAll();
  auto b = RunSelectAll();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->qid, b->qid);
  EXPECT_GT(a->qid, 100u);  // Figure 3 style QIDs (101, 102, ...).
}

}  // namespace
}  // namespace insightnotes::core
