// Engine facade tests: the public API surface a downstream user programs
// against (tables, annotations, instances, execution, zoom-in plumbing).

#include "core/engine.h"

#include <gtest/gtest.h>

#include "exec/projection.h"
#include "testutil.h"

namespace insightnotes::core {
namespace {

using testutil::I;
using testutil::S;

class EngineTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    ASSERT_TRUE(engine_
                    ->CreateTable("birds",
                                  rel::Schema({{"id", rel::ValueType::kInt64, "birds"},
                                               {"name", rel::ValueType::kString,
                                                "birds"}}))
                    .ok());
    ASSERT_TRUE(engine_->Insert("birds", rel::Tuple({I(1), S("Swan Goose")})).ok());
    auto instance = SummaryInstance::MakeClassifier("NB", {"x", "y"});
    ASSERT_TRUE(instance->classifier()->Train(0, "xray xylophone").ok());
    ASSERT_TRUE(instance->classifier()->Train(1, "yellow yonder").ok());
    ASSERT_TRUE(engine_->RegisterInstance(std::move(instance)).ok());
    ASSERT_TRUE(engine_->LinkInstance("NB", "birds").ok());
  }
};

TEST_F(EngineTest, AnnotateValidatesTarget) {
  EXPECT_TRUE(engine_->Annotate(Spec("ghosts", 0, "x")).status().IsNotFound());
  EXPECT_TRUE(engine_->Annotate(Spec("birds", 99, "x")).status().IsNotFound());
  EXPECT_TRUE(engine_->Annotate(Spec("birds", 0, "x", {17})).status().IsOutOfRange());
  EXPECT_TRUE(engine_->Annotate(Spec("birds", 0, "valid")).ok());
}

TEST_F(EngineTest, AttachValidatesTarget) {
  auto id = engine_->Annotate(Spec("birds", 0, "note"));
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(engine_->AttachAnnotation(*id, "ghosts", 0).IsNotFound());
  EXPECT_TRUE(engine_->AttachAnnotation(*id, "birds", 99).IsNotFound());
  EXPECT_TRUE(engine_->AttachAnnotation(99999, "birds", 0).IsNotFound());
}

TEST_F(EngineTest, ArchiveRemovesEffectEverywhere) {
  ASSERT_TRUE(engine_->Insert("birds", rel::Tuple({I(2), S("Heron")})).ok());
  auto id = engine_->Annotate(Spec("birds", 0, "xray shared note"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine_->AttachAnnotation(*id, "birds", 1).ok());
  auto table = engine_->catalog()->GetTable("birds");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(engine_->summaries()->RowObjects((*table)->id(), 0)->at(0)->NumAnnotations(), 1u);
  ASSERT_TRUE(engine_->ArchiveAnnotation(*id).ok());
  for (rel::RowId row : {0, 1}) {
    auto summaries = engine_->summaries()->SummariesFor((*table)->id(), row);
    ASSERT_TRUE(summaries.ok());
    EXPECT_EQ((*summaries)[0]->NumAnnotations(), 0u) << row;
  }
  EXPECT_TRUE(engine_->ArchiveAnnotation(424242).IsNotFound());
}

TEST_F(EngineTest, ExecuteAssignsMonotonicQids) {
  auto scan1 = engine_->MakeScan("birds");
  ASSERT_TRUE(scan1.ok());
  auto r1 = engine_->Execute(std::move(*scan1));
  ASSERT_TRUE(r1.ok());
  auto scan2 = engine_->MakeScan("birds");
  ASSERT_TRUE(scan2.ok());
  auto r2 = engine_->Execute(std::move(*scan2));
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->qid, r1->qid + 1);
  EXPECT_GE(r1->execute_seconds, 0.0);
}

TEST_F(EngineTest, SchemaOfReturnsStoredSchema) {
  auto scan = engine_->MakeScan("birds", "b");
  ASSERT_TRUE(scan.ok());
  auto result = engine_->Execute(std::move(*scan));
  ASSERT_TRUE(result.ok());
  auto schema = engine_->SchemaOf(result->qid);
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->ToString(), "(b.id BIGINT, b.name TEXT)");
  EXPECT_TRUE(engine_->SchemaOf(9999).status().IsNotFound());
}

TEST_F(EngineTest, MakeScanUnknownTable) {
  EXPECT_TRUE(engine_->MakeScan("ghosts").status().IsNotFound());
}

TEST_F(EngineTest, ResultsCachedForZoomIn) {
  ASSERT_TRUE(engine_->Annotate(Spec("birds", 0, "xray observation")).ok());
  auto scan = engine_->MakeScan("birds");
  ASSERT_TRUE(scan.ok());
  auto result = engine_->Execute(std::move(*scan));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(engine_->cache()->Contains(result->qid));
  ZoomInRequest request;
  request.qid = result->qid;
  request.instance_name = "NB";
  request.component_index = 0;
  auto zoom = engine_->ZoomIn(request);
  ASSERT_TRUE(zoom.ok());
  EXPECT_TRUE(zoom->served_from_cache);
  EXPECT_EQ(zoom->rows[0].annotations.size(), 1u);
}

TEST_F(EngineTest, FileBackedEngineWorks) {
  EngineOptions options;
  options.db_path = ::testing::TempDir() + "/insightnotes_engine_test.db";
  Engine engine(options);
  ASSERT_TRUE(engine.Init().ok());
  ASSERT_TRUE(engine
                  .CreateTable("t", rel::Schema({{"v", rel::ValueType::kString, "t"}}))
                  .ok());
  ASSERT_TRUE(engine.Insert("t", rel::Tuple({S("persisted to a real file")})).ok());
  auto scan = engine.MakeScan("t");
  ASSERT_TRUE(scan.ok());
  auto result = engine.Execute(std::move(*scan));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0].tuple.ValueAt(0).AsString(), "persisted to a real file");
  std::remove(options.db_path.c_str());
  // The WAL is segmented: remove the manifest and every segment file.
  std::remove((options.db_path + ".wal.manifest").c_str());
  for (uint64_t id = 1; id <= 4; ++id) {
    std::remove(
        storage::SegmentedWal::SegmentPathFor(options.db_path + ".wal", id).c_str());
  }
}

TEST_F(EngineTest, MaintainedSummariesUnaffectedByQueryMutation) {
  // COW safety: a query trims a clone; the maintained object must not see it.
  ASSERT_TRUE(engine_->Annotate(Spec("birds", 0, "xray note", {1})).ok());
  auto table = engine_->catalog()->GetTable("birds");
  ASSERT_TRUE(table.ok());
  std::string before =
      engine_->summaries()->RowObjects((*table)->id(), 0)->at(0)->Render();
  // Project only id: the annotation on column 1 gets trimmed in the clone.
  auto scan = engine_->MakeScan("birds", "b");
  ASSERT_TRUE(scan.ok());
  auto project = exec::ProjectOperator::FromColumns(std::move(*scan), {"b.id"});
  ASSERT_TRUE(project.ok());
  auto result = engine_->Execute(std::move(*project));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0].FindSummary("NB")->NumAnnotations(), 0u);
  std::string after =
      engine_->summaries()->RowObjects((*table)->id(), 0)->at(0)->Render();
  EXPECT_EQ(before, after);
}

}  // namespace
}  // namespace insightnotes::core
