#include "storage/page.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace insightnotes::storage {
namespace {

class SlottedPageTest : public ::testing::Test {
 protected:
  SlottedPageTest() : page_(buffer_) { page_.Initialize(); }
  char buffer_[kPageSize] = {};
  SlottedPage page_;
};

TEST_F(SlottedPageTest, FreshPageIsEmpty) {
  EXPECT_EQ(page_.NumSlots(), 0);
  EXPECT_EQ(page_.NumRecords(), 0);
  EXPECT_GT(page_.FreeSpace(), kPageSize - 32);
}

TEST_F(SlottedPageTest, InsertAndGet) {
  auto slot = page_.Insert("hello world");
  ASSERT_TRUE(slot.ok());
  auto got = page_.Get(*slot);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "hello world");
  EXPECT_EQ(page_.NumRecords(), 1);
}

TEST_F(SlottedPageTest, MultipleRecordsKeepDistinctSlots) {
  std::vector<SlotId> slots;
  for (int i = 0; i < 10; ++i) {
    auto slot = page_.Insert("record-" + std::to_string(i));
    ASSERT_TRUE(slot.ok());
    slots.push_back(*slot);
  }
  for (int i = 0; i < 10; ++i) {
    auto got = page_.Get(slots[i]);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "record-" + std::to_string(i));
  }
}

TEST_F(SlottedPageTest, DeleteTombstones) {
  auto a = page_.Insert("aaa");
  auto b = page_.Insert("bbb");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(page_.Delete(*a).ok());
  EXPECT_TRUE(page_.Get(*a).status().IsNotFound());
  // Other record is unaffected; slot ids stay stable.
  auto got = page_.Get(*b);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "bbb");
  EXPECT_EQ(page_.NumSlots(), 2);
  EXPECT_EQ(page_.NumRecords(), 1);
}

TEST_F(SlottedPageTest, DoubleDeleteFails) {
  auto a = page_.Insert("aaa");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(page_.Delete(*a).ok());
  EXPECT_TRUE(page_.Delete(*a).IsNotFound());
}

TEST_F(SlottedPageTest, OutOfRangeSlot) {
  EXPECT_TRUE(page_.Get(0).status().IsNotFound());
  EXPECT_TRUE(page_.Delete(99).IsNotFound());
}

TEST_F(SlottedPageTest, FillsUntilCapacityExceeded) {
  std::string record(100, 'x');
  int inserted = 0;
  while (true) {
    auto slot = page_.Insert(record);
    if (!slot.ok()) {
      EXPECT_TRUE(slot.status().IsCapacityExceeded());
      break;
    }
    ++inserted;
  }
  // ~4KB page / (100B + 4B slot) => ~39 records.
  EXPECT_GT(inserted, 30);
  EXPECT_LT(inserted, 41);
  // Everything inserted is still readable.
  for (SlotId s = 0; s < inserted; ++s) {
    ASSERT_TRUE(page_.Get(s).ok());
  }
}

TEST_F(SlottedPageTest, EmptyRecordAllowed) {
  auto slot = page_.Insert("");
  ASSERT_TRUE(slot.ok());
  auto got = page_.Get(*slot);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "");
}

TEST_F(SlottedPageTest, RejectsOversizeRecord) {
  std::string big(kPageSize + 1, 'x');
  EXPECT_TRUE(page_.Insert(big).status().IsInvalidArgument());
  std::string nearly(kPageSize - 2, 'x');
  EXPECT_TRUE(page_.Insert(nearly).status().IsCapacityExceeded());
}

TEST_F(SlottedPageTest, BinaryDataRoundTrips) {
  std::string binary("\x00\x01\xff\x7f" "mixed\x00tail", 14);
  auto slot = page_.Insert(binary);
  ASSERT_TRUE(slot.ok());
  auto got = page_.Get(*slot);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, binary);
}

}  // namespace
}  // namespace insightnotes::storage
