// SlottedPage against hostile buffers: pages whose headers, slot
// directories or slot entries were corrupted on disk. Accessors must
// return errors (Corruption / NotFound), never read or write out of
// bounds — the ASan+UBSan CI job keeps this suite honest.

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "common/random.h"
#include "storage/page.h"

namespace insightnotes::storage {
namespace {

// Mirror of the private on-page layout, for crafting corrupt images:
//   [checksum word][u16 num_slots][u16 free_ptr][slots: {u16 off, u16 len}...]
constexpr size_t kNumSlotsAt = kPageDataOffset;
constexpr size_t kFreePtrAt = kPageDataOffset + sizeof(uint16_t);
constexpr size_t kSlotsAt = kPageDataOffset + 2 * sizeof(uint16_t);

void PutU16(char* page, size_t at, uint16_t v) { std::memcpy(page + at, &v, sizeof(v)); }

struct PageBuffer {
  char data[kPageSize];

  PageBuffer() {
    SlottedPage page(data);
    page.Initialize();
  }
  SlottedPage View() { return SlottedPage(data); }
};

TEST(PageHostileTest, HugeSlotCountIsCorruption) {
  PageBuffer buf;
  PutU16(buf.data, kNumSlotsAt, 0xFFFF);  // Directory would be ~256 KiB.
  SlottedPage page = buf.View();
  EXPECT_EQ(page.NumRecords(), 0u);
  EXPECT_EQ(page.FreeSpace(), 0u);
  EXPECT_FALSE(page.HasRoomFor(1));
  EXPECT_TRUE(page.Insert("x").status().IsCorruption());
  EXPECT_TRUE(page.Get(0).status().IsCorruption());
  EXPECT_TRUE(page.Delete(0).IsCorruption());
}

TEST(PageHostileTest, FreePtrPastPageEndIsCorruption) {
  PageBuffer buf;
  PutU16(buf.data, kFreePtrAt, 0xFFFF);  // > kPageSize.
  SlottedPage page = buf.View();
  EXPECT_EQ(page.FreeSpace(), 0u);
  EXPECT_TRUE(page.Insert("x").status().IsCorruption());
  EXPECT_TRUE(page.Get(0).status().IsCorruption());
}

TEST(PageHostileTest, FreePtrInsideDirectoryIsCorruption) {
  PageBuffer buf;
  SlottedPage page = buf.View();
  ASSERT_TRUE(page.Insert("record").ok());
  // Point free_ptr below the directory end (header + 1 slot).
  PutU16(buf.data, kFreePtrAt, static_cast<uint16_t>(kSlotsAt));
  EXPECT_EQ(page.FreeSpace(), 0u);
  EXPECT_TRUE(page.Insert("x").status().IsCorruption());
  EXPECT_TRUE(page.Get(0).status().IsCorruption());
}

TEST(PageHostileTest, SlotOffsetBelowFreePtrIsCorruption) {
  PageBuffer buf;
  SlottedPage page = buf.View();
  ASSERT_TRUE(page.Insert("victim").ok());
  // Redirect slot 0 into the directory region (offset < free_ptr).
  PutU16(buf.data, kSlotsAt, static_cast<uint16_t>(kPageDataOffset));
  auto got = page.Get(0);
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
}

TEST(PageHostileTest, SlotLengthPastPageEndIsCorruption) {
  PageBuffer buf;
  SlottedPage page = buf.View();
  ASSERT_TRUE(page.Insert("victim").ok());
  // Slot 0 keeps its (valid) offset but claims a length that runs past the
  // end of the page.
  PutU16(buf.data, kSlotsAt + sizeof(uint16_t), 0xFFFE);
  auto got = page.Get(0);
  EXPECT_TRUE(got.status().IsCorruption()) << got.status().ToString();
}

TEST(PageHostileTest, TombstoneEdgeCases) {
  PageBuffer buf;
  SlottedPage page = buf.View();
  auto slot = page.Insert("to delete");
  ASSERT_TRUE(slot.ok());
  ASSERT_TRUE(page.Delete(*slot).ok());
  // Tombstones answer NotFound, not Corruption, and stay deleted.
  EXPECT_TRUE(page.Get(*slot).status().IsNotFound());
  EXPECT_TRUE(page.Delete(*slot).IsNotFound());
  // Out-of-range slots are NotFound too.
  EXPECT_TRUE(page.Get(7).status().IsNotFound());
  EXPECT_TRUE(page.Delete(7).IsNotFound());
  // A tombstone does not hide its neighbors.
  auto other = page.Insert("still here");
  ASSERT_TRUE(other.ok());
  auto got = page.Get(*other);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "still here");
}

TEST(PageHostileTest, AllSlotsTombstonedCountsZeroLive) {
  PageBuffer buf;
  SlottedPage page = buf.View();
  for (int i = 0; i < 5; ++i) {
    auto slot = page.Insert("r" + std::to_string(i));
    ASSERT_TRUE(slot.ok());
    ASSERT_TRUE(page.Delete(*slot).ok());
  }
  EXPECT_EQ(page.NumSlots(), 5u);
  EXPECT_EQ(page.NumRecords(), 0u);
}

TEST(PageHostileTest, RandomGarbageNeverCrashes) {
  Random rng(20150831);
  char data[kPageSize];
  for (int round = 0; round < 256; ++round) {
    for (size_t i = 0; i < kPageSize; ++i) {
      data[i] = static_cast<char>(rng.NextUint64() & 0xFF);
    }
    SlottedPage page(data);
    // Every accessor must come back with a value or an error — no OOB
    // reads/writes, no hangs (ASan/UBSan enforce the memory half).
    page.NumSlots();
    page.NumRecords();
    page.FreeSpace();
    page.HasRoomFor(64);
    for (SlotId slot = 0; slot < 4; ++slot) {
      auto got = page.Get(slot);
      if (got.ok()) continue;
      EXPECT_TRUE(got.status().IsNotFound() || got.status().IsCorruption());
    }
    page.Insert("probe").status();
    page.Delete(0);
  }
}

TEST(PageHostileTest, ZeroedBufferBehavesAsCorrupt) {
  // An all-zero page (e.g. allocated but never written): num_slots = 0 but
  // free_ptr = 0 < directory end, so the header is invalid — readers get a
  // clean error instead of garbage.
  char data[kPageSize];
  std::memset(data, 0, kPageSize);
  SlottedPage page(data);
  EXPECT_EQ(page.NumRecords(), 0u);
  EXPECT_EQ(page.FreeSpace(), 0u);
  EXPECT_TRUE(page.Insert("x").status().IsCorruption());
  EXPECT_TRUE(page.Get(0).status().IsCorruption());
}

}  // namespace
}  // namespace insightnotes::storage
