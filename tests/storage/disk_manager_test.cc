// DiskManager durability behavior: page checksums, non-truncating reopen,
// fsync, and close-failure propagation. The round-trip and closed-handle
// basics live in buffer_pool_test.cc.

#include "storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>

namespace insightnotes::storage {
namespace {

class DiskManagerFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/insightnotes_dm_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  /// Page image with `fill` bytes in the payload area.
  static void FillPage(char* page, char fill) {
    std::memset(page, 0, kPageSize);
    std::memset(page + kPageDataOffset, fill, kPageSize - kPageDataOffset);
  }

  std::string path_;
};

TEST_F(DiskManagerFileTest, ChecksumDetectsFlippedBit) {
  char page[kPageSize];
  FillPage(page, 'a');
  {
    DiskManager disk;
    ASSERT_TRUE(disk.Open(path_).ok());
    auto id = disk.AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(disk.WritePage(*id, page).ok());
    ASSERT_TRUE(disk.Close().ok());
  }
  // Flip one payload byte behind the manager's back.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, kPageSize / 2, SEEK_SET), 0);
  ASSERT_EQ(std::fputc('X', f), 'X');
  ASSERT_EQ(std::fclose(f), 0);

  DiskManager disk;
  ASSERT_TRUE(disk.Open(path_, DiskOpenMode::kOpenExisting).ok());
  char out[kPageSize];
  Status read = disk.ReadPage(0, out);
  EXPECT_TRUE(read.IsCorruption()) << read.ToString();
}

TEST_F(DiskManagerFileTest, ReopenKeepsPages) {
  char page[kPageSize];
  {
    DiskManager disk;
    ASSERT_TRUE(disk.Open(path_).ok());
    for (char fill : {'a', 'b', 'c'}) {
      auto id = disk.AllocatePage();
      ASSERT_TRUE(id.ok());
      FillPage(page, fill);
      ASSERT_TRUE(disk.WritePage(*id, page).ok());
    }
    ASSERT_TRUE(disk.Fsync().ok());
    ASSERT_TRUE(disk.Close().ok());
  }
  DiskManager disk;
  ASSERT_TRUE(disk.Open(path_, DiskOpenMode::kOpenExisting).ok());
  EXPECT_EQ(disk.num_pages(), 3u);
  char out[kPageSize];
  char fills[] = {'a', 'b', 'c'};
  for (PageId id = 0; id < 3; ++id) {
    ASSERT_TRUE(disk.ReadPage(id, out).ok()) << "page " << id;
    EXPECT_EQ(out[kPageDataOffset], fills[id]);
    EXPECT_EQ(out[kPageSize - 1], fills[id]);
  }
  // Reopened files keep allocating past the existing pages.
  auto next = disk.AllocatePage();
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(*next, 3u);
}

TEST_F(DiskManagerFileTest, TruncateModeDiscardsExistingPages) {
  {
    DiskManager disk;
    ASSERT_TRUE(disk.Open(path_).ok());
    ASSERT_TRUE(disk.AllocatePage().ok());
    ASSERT_TRUE(disk.Close().ok());
  }
  DiskManager disk;
  ASSERT_TRUE(disk.Open(path_, DiskOpenMode::kTruncate).ok());
  EXPECT_EQ(disk.num_pages(), 0u);
}

TEST_F(DiskManagerFileTest, ReopenCreatesMissingFile) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(path_, DiskOpenMode::kOpenExisting).ok());
  EXPECT_EQ(disk.num_pages(), 0u);
  ASSERT_TRUE(disk.AllocatePage().ok());
}

TEST_F(DiskManagerFileTest, PartialTailPageReadsAsCorruption) {
  // Simulate a crash mid-append: one full valid page plus half a page.
  char page[kPageSize];
  FillPage(page, 'v');
  {
    DiskManager disk;
    ASSERT_TRUE(disk.Open(path_).ok());
    auto id = disk.AllocatePage();
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(disk.WritePage(*id, page).ok());
    ASSERT_TRUE(disk.Close().ok());
  }
  std::FILE* f = std::fopen(path_.c_str(), "ab");
  ASSERT_NE(f, nullptr);
  char half[kPageSize / 2];
  std::memset(half, 'T', sizeof(half));
  ASSERT_EQ(std::fwrite(half, 1, sizeof(half), f), sizeof(half));
  ASSERT_EQ(std::fclose(f), 0);

  DiskManager disk;
  ASSERT_TRUE(disk.Open(path_, DiskOpenMode::kOpenExisting).ok());
  ASSERT_EQ(disk.num_pages(), 2u);  // The torn partial page counts.
  char out[kPageSize];
  EXPECT_TRUE(disk.ReadPage(0, out).ok());
  Status torn = disk.ReadPage(1, out);
  EXPECT_TRUE(torn.IsCorruption()) << torn.ToString();
}

TEST_F(DiskManagerFileTest, FsyncSucceedsOnOpenFile) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(path_).ok());
  ASSERT_TRUE(disk.AllocatePage().ok());
  EXPECT_TRUE(disk.Fsync().ok());
}

TEST_F(DiskManagerFileTest, CloseIsIdempotent) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open(path_).ok());
  EXPECT_TRUE(disk.Close().ok());
  EXPECT_TRUE(disk.Close().ok());
  EXPECT_FALSE(disk.is_open());
}

TEST(DiskManagerInMemoryTest, ChecksumSemanticsMatchFileMode) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open("").ok());
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  char page[kPageSize];
  std::memset(page, 0, kPageSize);
  std::memset(page + kPageDataOffset, 'm', kPageSize - kPageDataOffset);
  ASSERT_TRUE(disk.WritePage(*id, page).ok());
  char out[kPageSize];
  ASSERT_TRUE(disk.ReadPage(*id, out).ok());
  EXPECT_EQ(std::memcmp(out + kPageDataOffset, page + kPageDataOffset,
                        kPageSize - kPageDataOffset),
            0);
  EXPECT_TRUE(disk.Fsync().ok());  // No-op in memory.
}

TEST(DiskManagerInMemoryTest, FsyncFailsWhenClosed) {
  DiskManager disk;
  EXPECT_TRUE(disk.Fsync().IsInternal());
}

TEST(DiskManagerOpenTest, OpenFailsOnUnwritablePath) {
  DiskManager disk;
  Status s = disk.Open("/nonexistent-dir/insightnotes.db");
  EXPECT_TRUE(s.IsIoError()) << s.ToString();
}

TEST(DiskManagerOpenTest, DoubleOpenFails) {
  DiskManager disk;
  ASSERT_TRUE(disk.Open("").ok());
  EXPECT_TRUE(disk.Open("").IsInternal());
}

}  // namespace
}  // namespace insightnotes::storage
