#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "storage/disk_manager.h"

namespace insightnotes::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void SetUp() override { ASSERT_TRUE(disk_.Open("").ok()); }
  DiskManager disk_;
};

TEST_F(BufferPoolTest, NewPageIsZeroed) {
  BufferPool pool(&disk_, 4);
  auto guard = pool.NewPage();
  ASSERT_TRUE(guard.ok());
  for (size_t i = 0; i < kPageSize; ++i) {
    ASSERT_EQ(guard->data()[i], 0);
  }
}

TEST_F(BufferPoolTest, WriteThenReadBack) {
  BufferPool pool(&disk_, 4);
  PageId id;
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->page_id();
    // Bytes below kPageDataOffset belong to the disk layer's checksum word.
    std::memcpy(guard->MutableData() + kPageDataOffset, "persisted", 9);
  }
  auto again = pool.FetchPage(id);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(std::memcmp(again->data() + kPageDataOffset, "persisted", 9), 0);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  BufferPool pool(&disk_, 2);
  std::vector<PageId> ids;
  for (int i = 0; i < 6; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    ids.push_back(guard->page_id());
    std::string payload = "page-" + std::to_string(i);
    std::memcpy(guard->MutableData() + kPageDataOffset, payload.data(), payload.size());
  }
  // All six pages must be readable even though only two frames exist.
  for (int i = 0; i < 6; ++i) {
    auto guard = pool.FetchPage(ids[i]);
    ASSERT_TRUE(guard.ok());
    std::string expected = "page-" + std::to_string(i);
    EXPECT_EQ(
        std::memcmp(guard->data() + kPageDataOffset, expected.data(), expected.size()),
        0);
  }
}

TEST_F(BufferPoolTest, HitsAndMissesAreCounted) {
  BufferPool pool(&disk_, 2);
  auto g = pool.NewPage();
  ASSERT_TRUE(g.ok());
  PageId id = g->page_id();
  g->Release();
  uint64_t misses_before = pool.misses();
  ASSERT_TRUE(pool.FetchPage(id).ok());  // Hit: still resident.
  EXPECT_EQ(pool.misses(), misses_before);
  EXPECT_GE(pool.hits(), 1u);
}

TEST_F(BufferPoolTest, AllPinnedFails) {
  BufferPool pool(&disk_, 2);
  auto a = pool.NewPage();
  auto b = pool.NewPage();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto c = pool.NewPage();
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsCapacityExceeded());
  // Releasing one pin makes room again.
  a->Release();
  auto d = pool.NewPage();
  EXPECT_TRUE(d.ok());
}

TEST_F(BufferPoolTest, LruEvictsColdestPage) {
  BufferPool pool(&disk_, 2);
  PageId a, b;
  {
    auto ga = pool.NewPage();
    ASSERT_TRUE(ga.ok());
    a = ga->page_id();
  }
  {
    auto gb = pool.NewPage();
    ASSERT_TRUE(gb.ok());
    b = gb->page_id();
  }
  // Touch `a` so `b` becomes the LRU victim.
  { ASSERT_TRUE(pool.FetchPage(a).ok()); }
  {
    auto gc = pool.NewPage();
    ASSERT_TRUE(gc.ok());
  }
  // `a` should still be resident (hit); `b` should miss.
  uint64_t misses = pool.misses();
  { ASSERT_TRUE(pool.FetchPage(a).ok()); }
  EXPECT_EQ(pool.misses(), misses);
  { ASSERT_TRUE(pool.FetchPage(b).ok()); }
  EXPECT_EQ(pool.misses(), misses + 1);
}

TEST_F(BufferPoolTest, FlushAllPersistsToDisk) {
  BufferPool pool(&disk_, 4);
  auto g = pool.NewPage();
  ASSERT_TRUE(g.ok());
  std::memcpy(g->MutableData() + kPageDataOffset, "flushme", 7);
  PageId id = g->page_id();
  g->Release();
  ASSERT_TRUE(pool.FlushAll().ok());
  char raw[kPageSize];
  ASSERT_TRUE(disk_.ReadPage(id, raw).ok());
  EXPECT_EQ(std::memcmp(raw + kPageDataOffset, "flushme", 7), 0);
}

TEST_F(BufferPoolTest, MoveSemanticsOfGuard) {
  BufferPool pool(&disk_, 2);
  auto g = pool.NewPage();
  ASSERT_TRUE(g.ok());
  PageGuard moved = std::move(*g);
  EXPECT_TRUE(moved.valid());
  moved.Release();
  EXPECT_FALSE(moved.valid());
  // After release, both frames are free again.
  ASSERT_TRUE(pool.NewPage().ok());
  ASSERT_TRUE(pool.NewPage().ok());
}

TEST(DiskManagerTest, FileBackedRoundTrip) {
  DiskManager disk;
  std::string path = ::testing::TempDir() + "/insightnotes_disk_test.db";
  ASSERT_TRUE(disk.Open(path).ok());
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  char out[kPageSize];
  std::memset(out, 'z', kPageSize);
  ASSERT_TRUE(disk.WritePage(*id, out).ok());
  char in[kPageSize];
  ASSERT_TRUE(disk.ReadPage(*id, in).ok());
  // The checksum word is owned by the disk layer; the payload below it
  // round-trips bit-exactly.
  EXPECT_EQ(std::memcmp(in + kPageDataOffset, out + kPageDataOffset,
                        kPageSize - kPageDataOffset),
            0);
  EXPECT_TRUE(disk.ReadPage(99, in).IsOutOfRange());
  ASSERT_TRUE(disk.Close().ok());
  std::remove(path.c_str());
}

TEST(DiskManagerTest, OperationsFailWhenClosed) {
  DiskManager disk;
  char buf[kPageSize];
  EXPECT_TRUE(disk.ReadPage(0, buf).IsInternal());
  EXPECT_TRUE(disk.WritePage(0, buf).IsInternal());
  EXPECT_FALSE(disk.AllocatePage().ok());
}

}  // namespace
}  // namespace insightnotes::storage
