// SegmentedWal unit tests: rotation + manifest bookkeeping, liveness
// accounting, incremental compaction (rewrite and fully-dead erase),
// legacy single-file migration, orphan cleanup, and a crash-point sweep
// that kills the log at every scripted op of its fault schedule and
// checks the surviving files still replay to a consistent history.

#include "storage/wal_segments.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "storage/wal.h"

namespace insightnotes::storage {
namespace {

namespace fs = std::filesystem;

class WalSegmentsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "/inwal_seg_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".wal";
    RemoveAll();
  }
  void TearDown() override { RemoveAll(); }

  void RemoveAll() {
    std::error_code ec;
    fs::path dir = fs::path(base_).parent_path();
    const std::string stem = fs::path(base_).filename().string();
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->path().filename().string().rfind(stem, 0) == 0) {
        std::error_code remove_ec;
        fs::remove(it->path(), remove_ec);
      }
    }
  }

  static SegmentedWal::Options SmallSegments() {
    SegmentedWal::Options options;
    options.segment_bytes = 128;  // ~3 records of 40 payload bytes each.
    options.compact_min_dead_ratio = 0.25;
    return options;
  }

  /// 40-byte unique payload; size chosen so 3 records cross the 128-byte
  /// rotation threshold.
  static std::string Payload(size_t i) {
    std::string p = "crash-sweep-record-" + std::to_string(i) + "-";
    p.resize(40, 'x');
    return p;
  }

  /// Replays every segment the manifest lists, in order.
  std::vector<std::string> ReplayAll() {
    auto manifest = SegmentedWal::LoadForReplay(base_);
    EXPECT_TRUE(manifest.ok()) << manifest.status().ToString();
    std::vector<std::string> replayed;
    if (!manifest.ok()) return replayed;
    for (const SegmentedWal::SegmentRef& ref : manifest->segments) {
      auto stats = WriteAheadLog::Replay(ref.path, [&](std::string_view payload) {
        replayed.emplace_back(payload);
        return Status::OK();
      });
      EXPECT_TRUE(stats.ok()) << ref.path << ": " << stats.status().ToString();
    }
    return replayed;
  }

  std::string base_;
};

TEST_F(WalSegmentsTest, AppendRotateAndReplayPreserveOrder) {
  std::vector<std::string> appended;
  {
    SegmentedWal wal;
    ASSERT_TRUE(wal.Open(base_, /*truncate=*/true, UINT64_MAX, 0, SmallSegments()).ok());
    for (size_t i = 0; i < 12; ++i) {
      auto pos = wal.Append(Payload(i));
      ASSERT_TRUE(pos.ok());
      ASSERT_TRUE(wal.Sync().ok());
      appended.push_back(Payload(i));
      ASSERT_TRUE(wal.MaybeRotate().ok());
    }
    EXPECT_GE(wal.num_segments(), 3u) << "rotation never fired";
    EXPECT_EQ(wal.num_appended(), 12u);
    ASSERT_TRUE(wal.Close().ok());
  }
  EXPECT_EQ(ReplayAll(), appended);
}

TEST_F(WalSegmentsTest, ReopenResumesTheActiveSegment) {
  {
    SegmentedWal wal;
    ASSERT_TRUE(wal.Open(base_, /*truncate=*/true, UINT64_MAX, 0, SmallSegments()).ok());
    ASSERT_TRUE(wal.Append(Payload(0)).ok());
    ASSERT_TRUE(wal.Append(Payload(1)).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  {
    SegmentedWal wal;
    // active_records seeds positions: the next record is index 2.
    ASSERT_TRUE(wal.Open(base_, /*truncate=*/false, UINT64_MAX, /*active_records=*/2,
                         SmallSegments())
                    .ok());
    auto pos = wal.Append(Payload(2));
    ASSERT_TRUE(pos.ok());
    EXPECT_EQ(pos->record_index, 2u);
    ASSERT_TRUE(wal.Sync().ok());
  }
  EXPECT_EQ(ReplayAll(), (std::vector<std::string>{Payload(0), Payload(1), Payload(2)}));
}

TEST_F(WalSegmentsTest, TruncateToRollsBackUnacknowledgedRecords) {
  SegmentedWal wal;
  ASSERT_TRUE(wal.Open(base_, /*truncate=*/true, UINT64_MAX, 0, SmallSegments()).ok());
  ASSERT_TRUE(wal.Append(Payload(0)).ok());
  ASSERT_TRUE(wal.Sync().ok());
  auto mark = wal.MarkPos();
  ASSERT_TRUE(mark.ok());
  ASSERT_TRUE(wal.Append(Payload(1)).ok());
  ASSERT_TRUE(wal.Append(Payload(2)).ok());
  ASSERT_TRUE(wal.TruncateTo(*mark).ok());
  // The rolled-back positions are reused by the next append.
  auto pos = wal.Append(Payload(3));
  ASSERT_TRUE(pos.ok());
  EXPECT_EQ(pos->record_index, 1u);
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Close().ok());
  EXPECT_EQ(ReplayAll(), (std::vector<std::string>{Payload(0), Payload(3)}));
}

TEST_F(WalSegmentsTest, CompactOnceRewritesOnlyLiveRecords) {
  SegmentedWal wal;
  ASSERT_TRUE(wal.Open(base_, /*truncate=*/true, UINT64_MAX, 0, SmallSegments()).ok());
  std::vector<WalRecordPos> positions;
  for (size_t i = 0; i < 12; ++i) {
    auto pos = wal.Append(Payload(i));
    ASSERT_TRUE(pos.ok());
    positions.push_back(*pos);
    ASSERT_TRUE(wal.Sync().ok());
    ASSERT_TRUE(wal.MaybeRotate().ok());
  }
  // Records 1 and 2 share sealed segment 1 with live record 0.
  wal.MarkDead(positions[1]);
  wal.MarkDead(positions[2]);
  auto result = wal.CompactOnce();
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->compacted);
  EXPECT_EQ(result->live_records, 1u);
  EXPECT_EQ(result->dead_records, 2u);
  EXPECT_NE(result->new_segment_id, 0u);
  // The retired file is gone; the replacement holds the live record.
  EXPECT_FALSE(fs::exists(SegmentedWal::SegmentPathFor(base_, result->segment_id)));
  EXPECT_TRUE(fs::exists(SegmentedWal::SegmentPathFor(base_, result->new_segment_id)));
  // No further candidate passes the threshold.
  auto again = wal.CompactOnce();
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->compacted);
  ASSERT_TRUE(wal.Close().ok());

  std::vector<std::string> expected;
  for (size_t i = 0; i < 12; ++i) {
    if (i != 1 && i != 2) expected.push_back(Payload(i));
  }
  EXPECT_EQ(ReplayAll(), expected);
}

TEST_F(WalSegmentsTest, FullyDeadSegmentIsErasedWithoutReplacement) {
  SegmentedWal wal;
  ASSERT_TRUE(wal.Open(base_, /*truncate=*/true, UINT64_MAX, 0, SmallSegments()).ok());
  std::vector<WalRecordPos> positions;
  for (size_t i = 0; i < 6; ++i) {
    auto pos = wal.Append(Payload(i));
    ASSERT_TRUE(pos.ok());
    positions.push_back(*pos);
    ASSERT_TRUE(wal.Sync().ok());
    ASSERT_TRUE(wal.MaybeRotate().ok());
  }
  const size_t segments_before = wal.num_segments();
  // All of sealed segment 1 dies.
  for (size_t i = 0; i < 3; ++i) wal.MarkDead(positions[i]);
  auto result = wal.CompactOnce();
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->compacted);
  EXPECT_EQ(result->live_records, 0u);
  EXPECT_EQ(result->new_segment_id, 0u);  // Erased, not replaced.
  EXPECT_EQ(wal.num_segments(), segments_before - 1);
  EXPECT_FALSE(fs::exists(SegmentedWal::SegmentPathFor(base_, result->segment_id)));
  ASSERT_TRUE(wal.Close().ok());
  EXPECT_EQ(ReplayAll(), (std::vector<std::string>{Payload(3), Payload(4), Payload(5)}));
}

TEST_F(WalSegmentsTest, BelowThresholdSegmentIsLeftAlone) {
  SegmentedWal::Options options = SmallSegments();
  options.segment_bytes = 512;  // ~10 records per segment.
  SegmentedWal wal;
  ASSERT_TRUE(wal.Open(base_, /*truncate=*/true, UINT64_MAX, 0, options).ok());
  std::vector<WalRecordPos> positions;
  for (size_t i = 0; i < 20; ++i) {
    auto pos = wal.Append(Payload(i));
    ASSERT_TRUE(pos.ok());
    positions.push_back(*pos);
    ASSERT_TRUE(wal.Sync().ok());
    ASSERT_TRUE(wal.MaybeRotate().ok());
  }
  ASSERT_GE(wal.num_segments(), 2u);
  // One dead record out of ~10 stays under the 0.25 ratio.
  wal.MarkDead(positions[1]);
  auto result = wal.CompactOnce();
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->compacted);
}

TEST_F(WalSegmentsTest, LegacySingleFileLogIsMigratedToSegmentOne) {
  {
    WriteAheadLog legacy;
    ASSERT_TRUE(legacy.Open(base_, /*truncate=*/true).ok());
    for (size_t i = 0; i < 3; ++i) ASSERT_TRUE(legacy.Append(Payload(i)).ok());
    ASSERT_TRUE(legacy.Sync().ok());
    ASSERT_TRUE(legacy.Close().ok());
  }
  auto manifest = SegmentedWal::LoadForReplay(base_);
  ASSERT_TRUE(manifest.ok()) << manifest.status().ToString();
  ASSERT_EQ(manifest->segments.size(), 1u);
  EXPECT_EQ(manifest->segments[0].id, 1u);
  EXPECT_EQ(manifest->next_segment_id, 2u);
  EXPECT_FALSE(fs::exists(base_)) << "legacy file must be renamed, not copied";
  EXPECT_TRUE(fs::exists(SegmentedWal::SegmentPathFor(base_, 1)));
  EXPECT_TRUE(fs::exists(SegmentedWal::ManifestPathFor(base_)));
  EXPECT_EQ(ReplayAll(), (std::vector<std::string>{Payload(0), Payload(1), Payload(2)}));
}

TEST_F(WalSegmentsTest, OrphanedSegmentFilesAreRemovedAtLoad) {
  {
    SegmentedWal wal;
    ASSERT_TRUE(wal.Open(base_, /*truncate=*/true, UINT64_MAX, 0, SmallSegments()).ok());
    ASSERT_TRUE(wal.Append(Payload(0)).ok());
    ASSERT_TRUE(wal.Sync().ok());
  }
  // A segment file the manifest never committed (crash mid-rotation).
  const std::string orphan = SegmentedWal::SegmentPathFor(base_, 99);
  {
    WriteAheadLog stray;
    ASSERT_TRUE(stray.Open(orphan, /*truncate=*/true).ok());
    ASSERT_TRUE(stray.Close().ok());
  }
  // And a half-written manifest swap.
  { std::ofstream(SegmentedWal::ManifestPathFor(base_) + ".tmp") << "junk"; }
  auto manifest = SegmentedWal::LoadForReplay(base_);
  ASSERT_TRUE(manifest.ok());
  EXPECT_FALSE(fs::exists(orphan));
  EXPECT_FALSE(fs::exists(SegmentedWal::ManifestPathFor(base_) + ".tmp"));
  EXPECT_EQ(ReplayAll(), (std::vector<std::string>{Payload(0)}));
}

// The crash sweep: one deterministic workload — fresh open, 12 appends
// with rotation, a liveness pattern that makes segment 2 fully dead and
// segments 1 and 3 two-thirds dead, then compaction drained to a
// fixpoint — is killed at every scripted fault-op index in turn. After
// each kill the surviving files must load and replay to a consistent
// history: a subsequence of the acknowledged records that still contains
// every live one.
TEST_F(WalSegmentsTest, CrashSweepAtEveryScriptedOp) {
  struct WorkloadRun {
    std::vector<std::string> acked;  // Payloads acknowledged, in order.
    std::set<std::string> dead;      // Subset marked superseded.
  };
  auto run_workload = [&](SegmentedWal::FaultHook hook) {
    WorkloadRun out;
    SegmentedWal wal;
    wal.SetFaultHook(std::move(hook));  // Before Open: its manifest write is scripted too.
    if (!wal.Open(base_, /*truncate=*/true, UINT64_MAX, 0, SmallSegments()).ok()) {
      return out;
    }
    std::vector<WalRecordPos> positions;
    std::vector<size_t> acked_index;
    for (size_t i = 0; i < 12; ++i) {
      auto pos = wal.Append(Payload(i));
      if (pos.ok() && wal.Sync().ok()) {
        out.acked.push_back(Payload(i));
        positions.push_back(*pos);
        acked_index.push_back(i);
      }
      wal.MaybeRotate().ok();  // Fails after the kill fires; expected.
    }
    // Records 1,2 (segment 1), 3,4,5 (all of segment 2) and 7,8 (segment 3)
    // die; 0, 6 and 9..11 stay live.
    for (size_t j = 0; j < positions.size(); ++j) {
      const size_t i = acked_index[j];
      if (i >= 1 && i <= 5) {
        wal.MarkDead(positions[j]);
        out.dead.insert(Payload(i));
      } else if (i == 7 || i == 8) {
        wal.MarkDead(positions[j]);
        out.dead.insert(Payload(i));
      }
    }
    // Drain compaction to a fixpoint, like the engine's background pass.
    while (true) {
      auto result = wal.CompactOnce();
      if (!result.ok() || !result->compacted) break;
    }
    wal.Close().ok();
    return out;
  };

  // Probe: record the full op schedule with a hook that never fails.
  RemoveAll();
  std::vector<std::string> op_names;
  WorkloadRun probe = run_workload([&op_names](const char* op) {
    op_names.emplace_back(op);
    return Status::OK();
  });
  ASSERT_EQ(probe.acked.size(), 12u);
  auto seen = [&](const char* name) {
    return std::find(op_names.begin(), op_names.end(), name) != op_names.end();
  };
  for (const char* required :
       {"rotate_sync", "rotate_create", "rotate_seg_fsync", "rotate_dir_fsync",
        "manifest_temp", "manifest_fsync", "manifest_rename", "manifest_dir_fsync",
        "compact_read", "compact_create", "compact_write", "compact_fsync",
        "compact_dir_fsync", "retire_remove", "retire_dir_fsync"}) {
    EXPECT_TRUE(seen(required)) << "op '" << required << "' never fired";
  }
  // The probe run itself must have compacted everything marked dead.
  {
    std::vector<std::string> replayed = ReplayAll();
    std::vector<std::string> expected;
    for (const std::string& p : probe.acked) {
      if (probe.dead.find(p) == probe.dead.end()) expected.push_back(p);
    }
    EXPECT_EQ(replayed, expected);
  }

  for (size_t kill = 0; kill < op_names.size(); ++kill) {
    SCOPED_TRACE("kill at scripted op " + std::to_string(kill) + " (" +
                 op_names[kill] + ")");
    RemoveAll();
    size_t fired = 0;
    WorkloadRun run = run_workload([&fired, kill](const char* op) -> Status {
      if (fired++ == kill) {
        return Status::IoError(std::string("simulated crash at ") + op);
      }
      return Status::OK();
    });

    std::vector<std::string> replayed = ReplayAll();
    // (a) No invention, duplication or reordering: the surviving history is
    // a subsequence of the acknowledged one.
    size_t cursor = 0;
    for (const std::string& payload : replayed) {
      while (cursor < run.acked.size() && run.acked[cursor] != payload) ++cursor;
      ASSERT_LT(cursor, run.acked.size())
          << "replayed record out of order or never acknowledged: " << payload;
      ++cursor;
    }
    // (b) No acknowledged live record may be lost, whatever the crash point.
    std::set<std::string> survived(replayed.begin(), replayed.end());
    for (const std::string& payload : run.acked) {
      if (run.dead.find(payload) == run.dead.end()) {
        EXPECT_TRUE(survived.count(payload) > 0)
            << "live acknowledged record lost: " << payload;
      }
    }
  }
}

}  // namespace
}  // namespace insightnotes::storage
