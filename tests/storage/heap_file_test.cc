#include "storage/heap_file.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/random.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace insightnotes::storage {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(disk_.Open("").ok());
    pool_ = std::make_unique<BufferPool>(&disk_, 16);
    heap_ = std::make_unique<HeapFile>(pool_.get());
  }
  DiskManager disk_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, AppendAndGet) {
  auto rid = heap_->Append("an annotation about swans");
  ASSERT_TRUE(rid.ok());
  auto got = heap_->Get(*rid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "an annotation about swans");
  EXPECT_EQ(heap_->num_records(), 1u);
}

TEST_F(HeapFileTest, ManyRecordsSpanPages) {
  std::map<int, RecordId> rids;
  for (int i = 0; i < 500; ++i) {
    auto rid = heap_->Append("record payload number " + std::to_string(i));
    ASSERT_TRUE(rid.ok());
    rids[i] = *rid;
  }
  EXPECT_GT(heap_->num_data_pages(), 1u);
  for (const auto& [i, rid] : rids) {
    auto got = heap_->Get(rid);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "record payload number " + std::to_string(i));
  }
}

TEST_F(HeapFileTest, OverflowRecordRoundTrips) {
  // ~3 pages worth of document (a "large attached article").
  std::string article;
  Random rng(5);
  while (article.size() < 3 * kPageSize + 123) {
    article += "sentence " + std::to_string(rng.NextUint64() % 1000) + " about bird behavior. ";
  }
  auto rid = heap_->Append(article);
  ASSERT_TRUE(rid.ok());
  auto got = heap_->Get(*rid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, article);
}

TEST_F(HeapFileTest, OverflowBoundaryExactMultiple) {
  // Exercise the exact-chunk-multiple edge in the overflow writer.
  // 2 * kOverflowPayload: page minus checksum word minus overflow header.
  std::string payload(2 * (kPageSize - kPageDataOffset - 8), 'q');
  auto rid = heap_->Append(payload);
  ASSERT_TRUE(rid.ok());
  auto got = heap_->Get(*rid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->size(), payload.size());
  EXPECT_EQ(*got, payload);
}

TEST_F(HeapFileTest, DeleteHidesRecordFromScan) {
  auto a = heap_->Append("keep me");
  auto b = heap_->Append("delete me");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(heap_->Delete(*b).ok());
  EXPECT_TRUE(heap_->Get(*b).status().IsNotFound());
  int count = 0;
  ASSERT_TRUE(heap_
                  ->Scan([&](const RecordId&, std::string_view bytes) {
                    EXPECT_EQ(bytes, "keep me");
                    ++count;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(count, 1);
  EXPECT_EQ(heap_->num_records(), 1u);
}

TEST_F(HeapFileTest, ScanVisitsAllInOrder) {
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(heap_->Append("r" + std::to_string(i)).ok());
  }
  int next = 0;
  ASSERT_TRUE(heap_
                  ->Scan([&](const RecordId&, std::string_view bytes) {
                    EXPECT_EQ(bytes, "r" + std::to_string(next));
                    ++next;
                    return true;
                  })
                  .ok());
  EXPECT_EQ(next, 50);
}

TEST_F(HeapFileTest, ScanEarlyStop) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(heap_->Append("x").ok());
  }
  int seen = 0;
  ASSERT_TRUE(heap_
                  ->Scan([&](const RecordId&, std::string_view) {
                    ++seen;
                    return seen < 3;
                  })
                  .ok());
  EXPECT_EQ(seen, 3);
}

TEST_F(HeapFileTest, ScanResolvesOverflowRecords) {
  std::string big(kPageSize * 2, 'B');
  ASSERT_TRUE(heap_->Append("small").ok());
  ASSERT_TRUE(heap_->Append(big).ok());
  std::vector<size_t> sizes;
  ASSERT_TRUE(heap_
                  ->Scan([&](const RecordId&, std::string_view bytes) {
                    sizes.push_back(bytes.size());
                    return true;
                  })
                  .ok());
  ASSERT_EQ(sizes.size(), 2u);
  EXPECT_EQ(sizes[0], 5u);
  EXPECT_EQ(sizes[1], big.size());
}

TEST_F(HeapFileTest, TwoHeapFilesShareOnePool) {
  HeapFile other(pool_.get());
  auto a = heap_->Append("mine");
  auto b = other.Append("yours");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*heap_->Get(*a), "mine");
  EXPECT_EQ(*other.Get(*b), "yours");
  int count = 0;
  ASSERT_TRUE(heap_->Scan([&](const RecordId&, std::string_view) {
    ++count;
    return true;
  }).ok());
  EXPECT_EQ(count, 1);
}

TEST_F(HeapFileTest, EmptyRecord) {
  auto rid = heap_->Append("");
  ASSERT_TRUE(rid.ok());
  auto got = heap_->Get(*rid);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "");
}

}  // namespace
}  // namespace insightnotes::storage
