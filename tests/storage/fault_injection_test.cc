// Fault-injection harness: scripted transient errors, torn writes and
// crash cut-offs against the global operation counter, plus the retry
// policy that turns transient faults into successes.

#include "storage/fault_injection.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/io_retry.h"

namespace insightnotes::storage {
namespace {

void FillPage(char* page, char fill) {
  std::memset(page, 0, kPageSize);
  std::memset(page + kPageDataOffset, fill, kPageSize - kPageDataOffset);
}

/// Retry policy whose sleeps are recorded instead of slept.
IoRetryPolicy RecordingPolicy(std::vector<int64_t>* sleeps, int max_attempts = 4) {
  IoRetryPolicy policy;
  policy.max_attempts = max_attempts;
  policy.sleep = [sleeps](int64_t nanos) { sleeps->push_back(nanos); };
  return policy;
}

TEST(FaultInjectionTest, TransientWriteFailsExactlyOnce) {
  FaultInjectingDiskManager disk;
  ASSERT_TRUE(disk.Open("").ok());
  auto id = disk.AllocatePage();  // Zero-fill goes through WritePage: op 0.
  ASSERT_TRUE(id.ok());

  char page[kPageSize];
  FillPage(page, 'w');
  disk.FailOnceAt(IoOpKind::kWrite, disk.op_count());
  Status failed = disk.WritePage(*id, page);
  EXPECT_TRUE(failed.IsIoError()) << failed.ToString();
  EXPECT_EQ(disk.faults_injected(), 1u);
  // The same logical write succeeds on retry.
  ASSERT_TRUE(disk.WritePage(*id, page).ok());
  char out[kPageSize];
  ASSERT_TRUE(disk.ReadPage(*id, out).ok());
  EXPECT_EQ(out[kPageDataOffset], 'w');
}

TEST(FaultInjectionTest, TransientReadDoesNotMatchWrites) {
  FaultInjectingDiskManager disk;
  ASSERT_TRUE(disk.Open("").ok());
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  char page[kPageSize];
  FillPage(page, 'r');
  // Scripted against reads only: the write occupying this op index does
  // not match, so it sails through and the fault never fires.
  disk.FailOnceAt(IoOpKind::kRead, disk.op_count());
  ASSERT_TRUE(disk.WritePage(*id, page).ok());
  EXPECT_EQ(disk.faults_injected(), 0u);
  disk.Reset();  // Drop the stale (index-passed) fault.
  // Scheduled at the index the read actually occupies, it fires.
  disk.FailOnceAt(IoOpKind::kRead, disk.op_count());
  Status failed = disk.ReadPage(*id, page);
  EXPECT_TRUE(failed.IsIoError()) << failed.ToString();
  EXPECT_TRUE(disk.ReadPage(*id, page).ok());
}

TEST(FaultInjectionTest, TornWriteLeavesChecksumMismatch) {
  FaultInjectingDiskManager disk;
  std::string path = ::testing::TempDir() + "/insightnotes_torn_test.db";
  std::remove(path.c_str());
  ASSERT_TRUE(disk.Open(path).ok());
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  char page[kPageSize];
  FillPage(page, 't');

  disk.TearWriteAt(disk.op_count());
  Status torn = disk.WritePage(*id, page);
  EXPECT_TRUE(torn.IsIoError()) << torn.ToString();

  char out[kPageSize];
  Status read = disk.ReadPage(*id, out);
  EXPECT_TRUE(read.IsCorruption()) << read.ToString();

  // A full rewrite heals the page.
  ASSERT_TRUE(disk.WritePage(*id, page).ok());
  ASSERT_TRUE(disk.ReadPage(*id, out).ok());
  EXPECT_EQ(out[kPageSize - 1], 't');
  ASSERT_TRUE(disk.Close().ok());
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, TornWriteSurvivesReopen) {
  std::string path = ::testing::TempDir() + "/insightnotes_torn_reopen_test.db";
  std::remove(path.c_str());
  {
    FaultInjectingDiskManager disk;
    ASSERT_TRUE(disk.Open(path).ok());
    auto id = disk.AllocatePage();
    ASSERT_TRUE(id.ok());
    char page[kPageSize];
    FillPage(page, 'x');
    disk.TearWriteAt(disk.op_count());
    EXPECT_TRUE(disk.WritePage(*id, page).IsIoError());
    ASSERT_TRUE(disk.Close().ok());
  }
  // A plain DiskManager reopening the file sees the corruption.
  DiskManager disk;
  ASSERT_TRUE(disk.Open(path, DiskOpenMode::kOpenExisting).ok());
  ASSERT_EQ(disk.num_pages(), 1u);
  char out[kPageSize];
  EXPECT_TRUE(disk.ReadPage(0, out).IsCorruption());
  ASSERT_TRUE(disk.Close().ok());
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, CrashFailsEveryOperationFromCutoff) {
  FaultInjectingDiskManager disk;
  ASSERT_TRUE(disk.Open("").ok());
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  char page[kPageSize];
  FillPage(page, 'c');
  ASSERT_TRUE(disk.WritePage(*id, page).ok());

  disk.CrashAtOp(disk.op_count());
  EXPECT_FALSE(disk.crashed());
  EXPECT_TRUE(disk.WritePage(*id, page).IsIoError());
  EXPECT_TRUE(disk.crashed());
  EXPECT_TRUE(disk.ReadPage(*id, page).IsIoError());
  EXPECT_TRUE(disk.Fsync().IsIoError());
  EXPECT_FALSE(disk.AllocatePage().ok());

  disk.Reset();
  EXPECT_FALSE(disk.crashed());
  EXPECT_TRUE(disk.ReadPage(*id, page).ok());
  EXPECT_TRUE(disk.Fsync().ok());
}

TEST(FaultInjectionTest, DirFsyncFaultMatchesOnlyDirectoryFsyncs) {
  FaultInjectingDiskManager disk;
  std::string path = ::testing::TempDir() + "/insightnotes_dirfsync_test.db";
  std::remove(path.c_str());
  ASSERT_TRUE(disk.Open(path).ok());
  const std::string dir = ::testing::TempDir();

  // A write occupies the scripted index: the kDirFsync fault does not match.
  disk.FailOnceAt(IoOpKind::kDirFsync, disk.op_count());
  ASSERT_TRUE(disk.AllocatePage().ok());
  EXPECT_EQ(disk.faults_injected(), 0u);
  disk.Reset();

  // Scheduled at the index the directory fsync actually occupies, it fires
  // exactly once.
  disk.FailOnceAt(IoOpKind::kDirFsync, disk.op_count());
  Status failed = disk.FsyncDir(dir);
  EXPECT_TRUE(failed.IsIoError()) << failed.ToString();
  EXPECT_EQ(disk.faults_injected(), 1u);
  EXPECT_TRUE(disk.FsyncDir(dir).ok());

  // Crash cut-offs fail directory fsyncs like any other counted op.
  disk.CrashAtOp(disk.op_count());
  EXPECT_TRUE(disk.FsyncDir(dir).IsIoError());
  EXPECT_TRUE(disk.crashed());
  disk.Reset();
  ASSERT_TRUE(disk.Close().ok());
  std::remove(path.c_str());
}

TEST(FaultInjectionTest, OpCounterAndScriptsAreThreadSafe) {
  FaultInjectingDiskManager disk;
  ASSERT_TRUE(disk.Open("").ok());  // In-memory: FsyncDir is a counted no-op.
  const std::string dir = ::testing::TempDir();
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 256;
  std::vector<std::thread> workers;
  std::atomic<int> failures{0};
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&disk, &failures, &dir] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        if (!disk.FsyncDir(dir).ok()) failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Concurrent scripting must not race the op stream (the scripted index
  // is far beyond the ops issued, so nothing ever fires).
  for (int i = 0; i < 64; ++i) disk.FailOnceAt(IoOpKind::kRead, uint64_t{1} << 20);
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(disk.op_count(), static_cast<uint64_t>(kThreads) * kOpsPerThread);
}

TEST(FaultInjectionTest, AllocateRollsBackWhenZeroFillFails) {
  FaultInjectingDiskManager disk;
  ASSERT_TRUE(disk.Open("").ok());
  ASSERT_TRUE(disk.AllocatePage().ok());
  EXPECT_EQ(disk.num_pages(), 1u);

  // The allocation's zero-fill write fails: num_pages_ must roll back so
  // the id is not left permanently unreadable.
  disk.FailOnceAt(IoOpKind::kWrite, disk.op_count());
  EXPECT_FALSE(disk.AllocatePage().ok());
  EXPECT_EQ(disk.num_pages(), 1u);

  // The next allocation hands out the same id again.
  auto retried = disk.AllocatePage();
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(*retried, 1u);
  EXPECT_EQ(disk.num_pages(), 2u);
}

TEST(IoRetryTest, TransientFaultHealedByRetry) {
  FaultInjectingDiskManager disk;
  ASSERT_TRUE(disk.Open("").ok());
  auto id = disk.AllocatePage();
  ASSERT_TRUE(id.ok());
  char page[kPageSize];
  FillPage(page, 'h');

  std::vector<int64_t> sleeps;
  IoRetryPolicy policy = RecordingPolicy(&sleeps);
  disk.FailOnceAt(IoOpKind::kWrite, disk.op_count());
  Status s = RetryIo(policy, [&] { return disk.WritePage(*id, page); });
  EXPECT_TRUE(s.ok()) << s.ToString();
  ASSERT_EQ(sleeps.size(), 1u);
  EXPECT_EQ(sleeps[0], policy.initial_backoff_nanos);
}

TEST(IoRetryTest, BackoffDoublesAndCaps) {
  std::vector<int64_t> sleeps;
  IoRetryPolicy policy = RecordingPolicy(&sleeps, /*max_attempts=*/6);
  policy.initial_backoff_nanos = 40;
  policy.max_backoff_nanos = 100;
  int calls = 0;
  Status s = RetryIo(policy, [&] {
    ++calls;
    return Status::IoError("still down");
  });
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(calls, 6);
  // 40, 80, then capped at 100.
  EXPECT_EQ(sleeps, (std::vector<int64_t>{40, 80, 100, 100, 100}));
}

TEST(IoRetryTest, CorruptionIsNotRetried) {
  std::vector<int64_t> sleeps;
  IoRetryPolicy policy = RecordingPolicy(&sleeps);
  int calls = 0;
  Status s = RetryIo(policy, [&] {
    ++calls;
    return Status::Corruption("bad page");
  });
  EXPECT_TRUE(s.IsCorruption());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(sleeps.empty());
}

TEST(IoRetryTest, BufferPoolRetriesTransientReadAndWrite) {
  auto disk = std::make_unique<FaultInjectingDiskManager>();
  ASSERT_TRUE(disk->Open("").ok());
  std::vector<int64_t> sleeps;
  BufferPool pool(disk.get(), 2, RecordingPolicy(&sleeps));

  PageId id;
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->page_id();
    std::memcpy(guard->MutableData() + kPageDataOffset, "retry me", 8);
  }
  // Evict `id` through two more pages; the eviction write hits a transient
  // fault that the pool's retry policy absorbs.
  disk->FailOnceAt(IoOpKind::kWrite, disk->op_count());
  ASSERT_TRUE(pool.NewPage().ok());
  ASSERT_TRUE(pool.NewPage().ok());
  EXPECT_GE(sleeps.size(), 1u);

  // Re-reading the evicted page across a transient read fault also heals.
  disk->FailOnceAt(IoOpKind::kRead, disk->op_count());
  auto back = pool.FetchPage(id);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(std::memcmp(back->data() + kPageDataOffset, "retry me", 8), 0);
}

TEST(IoRetryTest, FlushAllAggregatesErrorsAndKeepsFlushing) {
  auto disk = std::make_unique<FaultInjectingDiskManager>();
  ASSERT_TRUE(disk->Open("").ok());
  // No retries: every IoError surfaces immediately.
  IoRetryPolicy no_retry;
  no_retry.max_attempts = 1;
  BufferPool pool(disk.get(), 4, no_retry);

  std::vector<PageId> ids;
  for (int i = 0; i < 3; ++i) {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    ids.push_back(guard->page_id());
    guard->MutableData()[kPageDataOffset] = static_cast<char>('0' + i);
  }
  // First flushed frame fails; the rest must still be written out.
  uint64_t writes_before = disk->num_writes();
  disk->FailOnceAt(IoOpKind::kWrite, disk->op_count());
  Status flushed = pool.FlushAll();
  EXPECT_TRUE(flushed.IsIoError()) << flushed.ToString();
  EXPECT_EQ(disk->num_writes(), writes_before + 2);  // 2 of 3 landed.

  // The failed frame stayed dirty: a second FlushAll completes the job.
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_EQ(disk->num_writes(), writes_before + 3);
  char out[kPageSize];
  for (size_t i = 0; i < ids.size(); ++i) {
    ASSERT_TRUE(disk->ReadPage(ids[i], out).ok());
    EXPECT_EQ(out[kPageDataOffset], static_cast<char>('0' + i));
  }
}

TEST(IoRetryTest, FailedReadDoesNotLeakBufferPoolFrame) {
  auto disk = std::make_unique<FaultInjectingDiskManager>();
  ASSERT_TRUE(disk->Open("").ok());
  IoRetryPolicy no_retry;
  no_retry.max_attempts = 1;
  BufferPool pool(disk.get(), 2, no_retry);
  PageId id;
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
    id = guard->page_id();
  }
  {
    auto guard = pool.NewPage();
    ASSERT_TRUE(guard.ok());
  }
  {
    auto guard = pool.NewPage();  // Evicts one of the two.
    ASSERT_TRUE(guard.ok());
  }
  // Clean every frame so the fetches below evict without writing — the
  // scripted fault index must land on the read itself.
  ASSERT_TRUE(pool.FlushAll().ok());
  // Every fetch of the evicted page fails 8 times in a row...
  for (int i = 0; i < 8; ++i) {
    disk->FailOnceAt(IoOpKind::kRead, disk->op_count());
    EXPECT_FALSE(pool.FetchPage(id).ok());
  }
  // ...yet no frame leaked: both pages are still fetchable afterwards.
  EXPECT_TRUE(pool.FetchPage(id).ok());
}

}  // namespace
}  // namespace insightnotes::storage
