// WriteAheadLog framing, replay, torn-tail handling, and the annotation
// layer's logical record codec layered on top of it.

#include "storage/wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <variant>
#include <vector>

#include "annotation/wal_records.h"

namespace insightnotes::storage {
namespace {

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/insightnotes_wal_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".wal";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::vector<std::string> ReplayAll(uint64_t* valid_bytes = nullptr,
                                     uint64_t* truncated = nullptr) {
    std::vector<std::string> records;
    auto stats = WriteAheadLog::Replay(path_, [&](std::string_view payload) {
      records.emplace_back(payload);
      return Status::OK();
    });
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    if (stats.ok()) {
      EXPECT_EQ(stats->records, records.size());
      if (valid_bytes != nullptr) *valid_bytes = stats->valid_bytes;
      if (truncated != nullptr) *truncated = stats->truncated_bytes;
    }
    return records;
  }

  void AppendRaw(const std::string& bytes) {
    std::FILE* f = std::fopen(path_.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    ASSERT_EQ(std::fclose(f), 0);
  }

  std::string path_;
};

TEST_F(WalTest, AppendReplayRoundTrip) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, /*truncate=*/true).ok());
    ASSERT_TRUE(wal.Append("first").ok());
    ASSERT_TRUE(wal.Append("").ok());  // Empty payloads are legal frames.
    ASSERT_TRUE(wal.Append(std::string(10000, 'x')).ok());
    ASSERT_TRUE(wal.Sync().ok());
    EXPECT_EQ(wal.num_appended(), 3u);
    ASSERT_TRUE(wal.Close().ok());
  }
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "first");
  EXPECT_EQ(records[1], "");
  EXPECT_EQ(records[2], std::string(10000, 'x'));
}

TEST_F(WalTest, MissingFileReplaysAsEmpty) {
  uint64_t valid = 99, truncated = 99;
  auto records = ReplayAll(&valid, &truncated);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(valid, 0u);
  EXPECT_EQ(truncated, 0u);
}

TEST_F(WalTest, BadMagicIsCorruption) {
  AppendRaw("definitely not a WAL header");
  auto stats = WriteAheadLog::Replay(
      path_, [](std::string_view) { return Status::OK(); });
  EXPECT_TRUE(stats.status().IsCorruption()) << stats.status().ToString();
}

TEST_F(WalTest, TornTailStopsReplayAndIsTruncatedOnReopen) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, true).ok());
    ASSERT_TRUE(wal.Append("kept-1").ok());
    ASSERT_TRUE(wal.Append("kept-2").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // A crash mid-append leaves a frame header promising more bytes than the
  // file holds.
  AppendRaw(std::string("\x40\x00\x00\x00\x99\x99\x99\x99partial", 15));

  uint64_t valid = 0, truncated = 0;
  auto records = ReplayAll(&valid, &truncated);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1], "kept-2");
  EXPECT_EQ(truncated, 15u);

  // Reopening for append with keep_bytes cuts the torn tail off, and new
  // appends extend the clean prefix.
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, false, valid).ok());
    ASSERT_TRUE(wal.Append("after-recovery").ok());
    ASSERT_TRUE(wal.Sync().ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  records = ReplayAll(&valid, &truncated);
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[2], "after-recovery");
  EXPECT_EQ(truncated, 0u);
}

TEST_F(WalTest, CorruptPayloadStopsReplayAtThatRecord) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, true).ok());
    ASSERT_TRUE(wal.Append("good").ok());
    ASSERT_TRUE(wal.Append("about to rot").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  // Flip the last payload byte: the CRC no longer matches.
  std::FILE* f = std::fopen(path_.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, -1, SEEK_END), 0);
  ASSERT_EQ(std::fputc('!', f), '!');
  ASSERT_EQ(std::fclose(f), 0);

  uint64_t truncated = 0;
  auto records = ReplayAll(nullptr, &truncated);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "good");
  EXPECT_GT(truncated, 0u);
}

TEST_F(WalTest, ReopenWithoutTruncateKeepsRecords) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, true).ok());
    ASSERT_TRUE(wal.Append("one").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, false).ok());
    ASSERT_TRUE(wal.Append("two").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "one");
  EXPECT_EQ(records[1], "two");
}

TEST_F(WalTest, TruncateToRollsBackAppendedRecords) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, /*truncate=*/true).ok());
  ASSERT_TRUE(wal.Append("keep").ok());
  ASSERT_TRUE(wal.Sync().ok());
  auto mark = wal.AppendOffset();
  ASSERT_TRUE(mark.ok()) << mark.status().ToString();
  // Even a synced record can be rolled back: the engine does this when the
  // store mutation the record describes never applied.
  ASSERT_TRUE(wal.Append("rolled back").ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.TruncateTo(*mark).ok());
  EXPECT_FALSE(wal.failed());
  ASSERT_TRUE(wal.Append("replacement").ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Close().ok());

  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], "keep");
  EXPECT_EQ(records[1], "replacement");
}

TEST_F(WalTest, TruncateToZeroKeepsMagicIntactOnReopen) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, /*truncate=*/true).ok());
    auto mark = wal.AppendOffset();
    ASSERT_TRUE(mark.ok());
    ASSERT_TRUE(wal.Append("only").ok());
    ASSERT_TRUE(wal.TruncateTo(*mark).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  uint64_t valid = 0, truncated = 0;
  auto records = ReplayAll(&valid, &truncated);
  EXPECT_TRUE(records.empty());
  EXPECT_EQ(truncated, 0u);

  // The rolled-back log accepts appends again after a reopen.
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, /*truncate=*/false, valid).ok());
    ASSERT_TRUE(wal.Append("fresh").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  records = ReplayAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "fresh");
}

TEST_F(WalTest, RewriteReplacesLogAtomically) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, /*truncate=*/true).ok());
  ASSERT_TRUE(wal.Append("stale-1").ok());
  ASSERT_TRUE(wal.Append("stale-2").ok());
  ASSERT_TRUE(wal.Append("stale-3").ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Rewrite({"compact-1", "compact-2"}).ok());
  EXPECT_FALSE(wal.failed());
  // The rewritten log accepts appends without a reopen.
  ASSERT_TRUE(wal.Append("after").ok());
  ASSERT_TRUE(wal.Sync().ok());
  ASSERT_TRUE(wal.Close().ok());

  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 3u);
  EXPECT_EQ(records[0], "compact-1");
  EXPECT_EQ(records[1], "compact-2");
  EXPECT_EQ(records[2], "after");
}

TEST_F(WalTest, RewriteToEmptyLeavesValidLog) {
  WriteAheadLog wal;
  ASSERT_TRUE(wal.Open(path_, /*truncate=*/true).ok());
  ASSERT_TRUE(wal.Append("doomed").ok());
  ASSERT_TRUE(wal.Rewrite({}).ok());
  ASSERT_TRUE(wal.Append("fresh").ok());
  ASSERT_TRUE(wal.Close().ok());
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "fresh");
}

TEST_F(WalTest, RewriteLeavesNoTempFileBehind) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, /*truncate=*/true).ok());
    ASSERT_TRUE(wal.Rewrite({"only"}).ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  EXPECT_FALSE(std::filesystem::exists(path_ + ".compact"));
  auto records = ReplayAll();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], "only");
}

TEST_F(WalTest, RewriteOnClosedLogIsRefused) {
  WriteAheadLog wal;
  EXPECT_FALSE(wal.Rewrite({"x"}).ok());
}

TEST_F(WalTest, ReplayStopsOnCallbackError) {
  {
    WriteAheadLog wal;
    ASSERT_TRUE(wal.Open(path_, true).ok());
    ASSERT_TRUE(wal.Append("a").ok());
    ASSERT_TRUE(wal.Append("b").ok());
    ASSERT_TRUE(wal.Close().ok());
  }
  int delivered = 0;
  auto stats = WriteAheadLog::Replay(path_, [&](std::string_view) {
    ++delivered;
    return Status::Internal("replay handler refused");
  });
  EXPECT_TRUE(stats.status().IsInternal());
  EXPECT_EQ(delivered, 1);
}

}  // namespace
}  // namespace insightnotes::storage

namespace insightnotes::ann {
namespace {

Annotation MakeNote(const std::string& body) {
  Annotation note;
  note.kind = AnnotationKind::kComment;
  note.author = "alice";
  note.timestamp = 1437004800;
  note.title = "observation";
  note.body = body;
  return note;
}

TEST(WalRecordsTest, AddRecordRoundTrip) {
  WalAddRecord add;
  add.expected_id = 42;
  add.note = MakeNote("a goose eating stonewort");
  add.region = CellRegion{7, 123, {0, 2, 5}};
  auto decoded = DecodeWalEntry(EncodeWalEntry(WalEntry(add)));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  const auto* got = std::get_if<WalAddRecord>(&*decoded);
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->expected_id, 42u);
  EXPECT_EQ(got->note.kind, AnnotationKind::kComment);
  EXPECT_EQ(got->note.author, "alice");
  EXPECT_EQ(got->note.timestamp, 1437004800);
  EXPECT_EQ(got->note.title, "observation");
  EXPECT_EQ(got->note.body, "a goose eating stonewort");
  EXPECT_EQ(got->region.table, 7u);
  EXPECT_EQ(got->region.row, 123u);
  EXPECT_EQ(got->region.columns, (std::vector<size_t>{0, 2, 5}));
}

TEST(WalRecordsTest, AttachAndArchiveRoundTrip) {
  WalAttachRecord attach;
  attach.id = 9;
  attach.region = CellRegion{3, 77, {}};
  auto decoded_attach = DecodeWalEntry(EncodeWalEntry(WalEntry(attach)));
  ASSERT_TRUE(decoded_attach.ok());
  const auto* got_attach = std::get_if<WalAttachRecord>(&*decoded_attach);
  ASSERT_NE(got_attach, nullptr);
  EXPECT_EQ(got_attach->id, 9u);
  EXPECT_EQ(got_attach->region.table, 3u);
  EXPECT_EQ(got_attach->region.row, 77u);
  EXPECT_TRUE(got_attach->region.columns.empty());

  auto decoded_archive = DecodeWalEntry(EncodeWalEntry(WalEntry(WalArchiveRecord{5})));
  ASSERT_TRUE(decoded_archive.ok());
  const auto* got_archive = std::get_if<WalArchiveRecord>(&*decoded_archive);
  ASSERT_NE(got_archive, nullptr);
  EXPECT_EQ(got_archive->id, 5u);
}

TEST(WalRecordsTest, MalformedPayloadsAreCorruption) {
  EXPECT_TRUE(DecodeWalEntry("").status().IsCorruption());
  EXPECT_TRUE(DecodeWalEntry("\x09").status().IsCorruption());  // Unknown tag.

  WalAddRecord add;
  add.expected_id = 1;
  add.note = MakeNote("body");
  add.region = CellRegion{1, 2, {3}};
  std::string encoded = EncodeWalEntry(WalEntry(add));
  // Every strict prefix must be rejected, not mis-decoded.
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto truncated = DecodeWalEntry(std::string_view(encoded).substr(0, len));
    EXPECT_TRUE(truncated.status().IsCorruption()) << "prefix length " << len;
  }
  // Trailing garbage is rejected too.
  EXPECT_TRUE(DecodeWalEntry(encoded + "x").status().IsCorruption());
}

TEST(WalRecordsTest, HugeColumnCountIsRejectedNotAllocated) {
  // A corrupt count of ~4 billion columns must fail bounds-checking before
  // any allocation is attempted.
  WalAttachRecord attach;
  attach.id = 1;
  attach.region = CellRegion{1, 2, {}};
  std::string encoded = EncodeWalEntry(WalEntry(attach));
  // The column count is the last u32; overwrite it with 0xFFFFFFFF.
  ASSERT_GE(encoded.size(), 4u);
  encoded.replace(encoded.size() - 4, 4, "\xFF\xFF\xFF\xFF");
  EXPECT_TRUE(DecodeWalEntry(encoded).status().IsCorruption());
}

}  // namespace
}  // namespace insightnotes::ann
