// Persistent-index acceptance suite: CREATE INDEX builds a WAL-committed
// B+-tree through the index file; closing and reopening the engine must
// reattach the committed tree from the latest WalIndexCheckpointRecord —
// never rebuild it from a table scan — and the reattached tree must answer
// probes identically to a scan oracle after the caller replays its setup
// (tables and rows are configuration; the WAL is truth for annotations).
// Also locks in the snapshot-visibility contract of index-backed access:
// rows inserted after a pinned epoch and rows deleted since the probe are
// masked from IndexScan output.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/engine.h"
#include "exec/index_scan.h"
#include "sql/session.h"
#include "testutil.h"

namespace insightnotes::core {
namespace {

using testutil::I;
using testutil::S;

constexpr uint64_t kInitialRows = 200;   // Present when CREATE INDEX runs.
constexpr uint64_t kLaterRows = 100;     // Maintained incrementally after.
constexpr uint64_t kTotalRows = kInitialRows + kLaterRows;

/// Deterministic row contents: ids repeat (multimap probes), bands cycle.
rel::Tuple BirdRow(uint64_t i) {
  return rel::Tuple({I(static_cast<int64_t>((i * 7) % 50)),
                     S("band-" + std::to_string(i % 13))});
}

rel::Schema BirdSchema() {
  return rel::Schema({{"id", rel::ValueType::kInt64, "birds"},
                      {"band", rel::ValueType::kString, "birds"}});
}

class PersistentIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_path_ = ::testing::TempDir() + "/insightnotes_pidx_" +
               std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    RemoveDbFiles();
  }
  void TearDown() override { RemoveDbFiles(); }

  EngineOptions Options(bool open_existing) {
    EngineOptions options;
    options.db_path = db_path_;
    options.open_existing = open_existing;
    // Small fanout: 300 rows build a multi-level tree, so reopen exercises
    // internal-node adoption, not just a root leaf.
    options.index_max_node_entries = 8;
    return options;
  }

  /// The caller-side setup replay: schema plus the first `rows` rows.
  static rel::Table* SetupBirds(Engine* engine, uint64_t rows) {
    auto table = engine->CreateTable("birds", BirdSchema());
    EXPECT_TRUE(table.ok()) << table.status().ToString();
    if (!table.ok()) return nullptr;
    for (uint64_t i = 0; i < rows; ++i) {
      auto row = engine->Insert("birds", BirdRow(i));
      EXPECT_TRUE(row.ok()) << row.status().ToString();
    }
    return *table;
  }

  static std::vector<rel::RowId> ProbeEq(const rel::Table& table, int64_t key) {
    exec::IndexProbeSpec spec;
    spec.column = 0;
    spec.has_eq = true;
    spec.eq = I(key);
    std::vector<rel::RowId> out;
    Status s = exec::ProbeIndex(table, spec, &out);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  static std::vector<rel::RowId> ProbeRange(const rel::Table& table, int64_t lo,
                                            int64_t hi) {
    exec::IndexProbeSpec spec;
    spec.column = 0;
    spec.has_lo = true;
    spec.lo = I(lo);
    spec.has_hi = true;
    spec.hi = I(hi);
    std::vector<rel::RowId> out;
    Status s = exec::ProbeIndex(table, spec, &out);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  /// Scan-derived oracle for rows whose id lies in [lo, hi].
  static std::vector<rel::RowId> ScanRange(const rel::Table& table, int64_t lo,
                                           int64_t hi) {
    std::vector<rel::RowId> out;
    Status s = table.Scan([&](rel::RowId row, const rel::Tuple& tuple) {
      int64_t v = tuple.ValueAt(0).AsInt64();
      if (v >= lo && v <= hi) out.push_back(row);
      return true;
    });
    EXPECT_TRUE(s.ok()) << s.ToString();
    return out;
  }

  void RemoveDbFiles() {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir = fs::path(db_path_).parent_path();
    const std::string stem = fs::path(db_path_).filename().string();
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->path().filename().string().rfind(stem, 0) == 0) {
        std::error_code remove_ec;
        fs::remove(it->path(), remove_ec);
      }
    }
  }

  std::string db_path_;
};

TEST_F(PersistentIndexTest, CreateIndexSurvivesReopenWithoutRebuild) {
  {
    Engine engine(Options(/*open_existing=*/false));
    ASSERT_TRUE(engine.Init().ok());
    rel::Table* birds = SetupBirds(&engine, kInitialRows);
    ASSERT_NE(birds, nullptr);
    ASSERT_TRUE(engine.CreateIndex("birds", "id").ok());
    // Incremental maintenance past the create-time bound.
    for (uint64_t i = kInitialRows; i < kTotalRows; ++i) {
      ASSERT_TRUE(engine.Insert("birds", BirdRow(i)).ok());
    }
    ASSERT_TRUE(engine.Checkpoint().ok());
  }  // Destructor checkpoints again; both are fine.

  Engine engine(Options(/*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok());
  // The committed tree was adopted from the WAL index checkpoint, not
  // rebuilt: it surfaces before any row exists again, with the committed
  // entry count and the CREATE-INDEX-time covered bound.
  EXPECT_EQ(engine.recovery().indexes_recovered, 1u);
  EXPECT_GE(engine.recovery().index_checkpoints_replayed, 1u);
  rel::Table* birds = SetupBirds(&engine, 0);
  ASSERT_NE(birds, nullptr);
  const rel::TableIndex* index = birds->IndexOn(0);
  ASSERT_NE(index, nullptr);
  EXPECT_TRUE(index->persistent());
  EXPECT_EQ(index->NumEntries(), kTotalRows);
  EXPECT_EQ(index->tree()->covered_rows(), kInitialRows);
  ASSERT_TRUE(index->tree()->CheckInvariants().ok());

  // Setup replay: re-inserting every row is idempotent against the
  // committed tree (covered rows are skipped, the rest dedupe).
  for (uint64_t i = 0; i < kTotalRows; ++i) {
    ASSERT_TRUE(engine.Insert("birds", BirdRow(i)).ok());
  }
  EXPECT_EQ(index->NumEntries(), kTotalRows);
  ASSERT_TRUE(index->tree()->CheckInvariants().ok());

  // Probes answer exactly like a scan oracle.
  for (int64_t key = 0; key < 50; ++key) {
    EXPECT_EQ(ProbeEq(*birds, key), ScanRange(*birds, key, key)) << key;
  }
  EXPECT_EQ(ProbeRange(*birds, 10, 30), ScanRange(*birds, 10, 30));
  EXPECT_EQ(ProbeRange(*birds, -5, 3), ScanRange(*birds, -5, 3));
  EXPECT_EQ(ProbeRange(*birds, 49, 200), ScanRange(*birds, 49, 200));
}

TEST_F(PersistentIndexTest, MultipleIndexesAcrossTablesSurviveReopen) {
  {
    Engine engine(Options(/*open_existing=*/false));
    ASSERT_TRUE(engine.Init().ok());
    ASSERT_NE(SetupBirds(&engine, kInitialRows), nullptr);
    ASSERT_TRUE(engine
                    .CreateTable("sightings",
                                 rel::Schema({{"n", rel::ValueType::kInt64,
                                               "sightings"}}))
                    .ok());
    for (uint64_t i = 0; i < 40; ++i) {
      ASSERT_TRUE(
          engine.Insert("sightings", rel::Tuple({I(static_cast<int64_t>(i % 9))}))
              .ok());
    }
    ASSERT_TRUE(engine.CreateIndex("birds", "id").ok());
    ASSERT_TRUE(engine.CreateIndex("birds", "band").ok());
    ASSERT_TRUE(engine.CreateIndex("sightings", "n").ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }

  Engine engine(Options(/*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_EQ(engine.recovery().indexes_recovered, 3u);
  rel::Table* birds = SetupBirds(&engine, kInitialRows);
  ASSERT_NE(birds, nullptr);
  ASSERT_NE(birds->IndexOn(0), nullptr);
  ASSERT_NE(birds->IndexOn(1), nullptr);
  EXPECT_EQ(birds->IndexOn(0)->NumEntries(), kInitialRows);
  EXPECT_EQ(birds->IndexOn(1)->NumEntries(), kInitialRows);
  EXPECT_TRUE(birds->IndexOn(1)->persistent());

  // String-keyed probes over-approximate by contract (23-byte prefix), but
  // exact short keys are exact; compare against the scan oracle.
  exec::IndexProbeSpec spec;
  spec.column = 1;
  spec.has_eq = true;
  spec.eq = S("band-3");
  std::vector<rel::RowId> got;
  ASSERT_TRUE(exec::ProbeIndex(*birds, spec, &got).ok());
  std::vector<rel::RowId> expected;
  ASSERT_TRUE(birds
                  ->Scan([&](rel::RowId row, const rel::Tuple& tuple) {
                    if (tuple.ValueAt(1).AsString() == "band-3") {
                      expected.push_back(row);
                    }
                    return true;
                  })
                  .ok());
  // Probe results are a superset; the residual filter upstairs trims them.
  for (rel::RowId row : expected) {
    EXPECT_NE(std::find(got.begin(), got.end(), row), got.end()) << row;
  }
}

TEST_F(PersistentIndexTest, PendingIndexesSurviveAnIdleReopenCycle) {
  {
    Engine engine(Options(/*open_existing=*/false));
    ASSERT_TRUE(engine.Init().ok());
    ASSERT_NE(SetupBirds(&engine, kInitialRows), nullptr);
    ASSERT_TRUE(engine.CreateIndex("birds", "id").ok());
  }
  {
    // Reopen but never re-create the table: the committed index stays
    // pending. The checkpoint this engine writes (destructor) must carry
    // the pending index forward, not silently drop it.
    Engine engine(Options(/*open_existing=*/true));
    ASSERT_TRUE(engine.Init().ok());
    EXPECT_EQ(engine.recovery().indexes_recovered, 1u);
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  Engine engine(Options(/*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_EQ(engine.recovery().indexes_recovered, 1u);
  rel::Table* birds = SetupBirds(&engine, kInitialRows);
  ASSERT_NE(birds, nullptr);
  const rel::TableIndex* index = birds->IndexOn(0);
  ASSERT_NE(index, nullptr);
  EXPECT_EQ(index->NumEntries(), kInitialRows);
  EXPECT_EQ(ProbeEq(*birds, 7), ScanRange(*birds, 7, 7));
}

TEST_F(PersistentIndexTest, ReopenedIndexSurfacesBeforeRowsExist) {
  {
    Engine engine(Options(/*open_existing=*/false));
    ASSERT_TRUE(engine.Init().ok());
    ASSERT_NE(SetupBirds(&engine, kInitialRows), nullptr);
    ASSERT_TRUE(engine.CreateIndex("birds", "id").ok());
  }
  Engine engine(Options(/*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok());
  rel::Table* birds = SetupBirds(&engine, 0);  // Schema only, no rows yet.
  ASSERT_NE(birds, nullptr);
  const rel::TableIndex* index = birds->IndexOn(0);
  ASSERT_NE(index, nullptr);
  // The tree answers with committed RowIds; with the heap still empty an
  // IndexScan masks every one of them through IsLive, emitting nothing.
  EXPECT_EQ(index->NumEntries(), kInitialRows);
  auto plan = std::make_unique<exec::IndexScanOperator>(
      birds, "", engine.summaries(), engine.annotations(),
      [] {
        exec::IndexProbeSpec spec;
        spec.column = 0;
        spec.has_eq = true;
        spec.eq = I(7);
        return spec;
      }());
  auto result = engine.Execute(std::move(plan));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->rows.empty());
}

// In-memory engines build the same persistent trees over an in-memory
// index file, so the snapshot-visibility contract is testable without
// touching disk: rows inserted after the pinned epoch and rows deleted
// since the probe are masked out of IndexScan output.
TEST(PersistentIndexSnapshotTest, PinnedSnapshotMasksLateAndDeadRows) {
  Engine engine;
  ASSERT_TRUE(engine.Init().ok());
  ASSERT_TRUE(engine.CreateTable("birds", BirdSchema()).ok());
  for (uint64_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine.Insert("birds", rel::Tuple({I(5), S("x")})).ok());
  }
  ASSERT_TRUE(engine.CreateIndex("birds", "id").ok());
  auto table = engine.catalog()->GetTable("birds");
  ASSERT_TRUE(table.ok());
  const rel::TableIndex* index = (*table)->IndexOn(0);
  ASSERT_NE(index, nullptr);
  ASSERT_TRUE(index->persistent());

  auto pinned = engine.PinSnapshot();
  ASSERT_TRUE(pinned.ok());
  // Past-the-pin inserts land in the live index but must stay invisible to
  // a query executing against the pinned epoch.
  for (uint64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine.Insert("birds", rel::Tuple({I(5), S("late")})).ok());
  }
  // A row deleted after the pin is masked too (the probe checks liveness
  // at emission; deleted rows have no tuple to emit).
  ASSERT_TRUE((*table)->Delete(3).ok());

  exec::IndexProbeSpec spec;
  spec.column = 0;
  spec.has_eq = true;
  spec.eq = I(5);
  auto plan = std::make_unique<exec::IndexScanOperator>(
      *table, "", engine.summaries(), engine.annotations(), spec);
  ExecuteOptions options;
  options.snapshot = *pinned;
  options.retain = false;
  auto result = engine.Execute(std::move(plan), options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // 20 pinned-visible rows minus the deleted one; none of the 10 late rows.
  EXPECT_EQ(result->rows.size(), 19u);
}

}  // namespace
}  // namespace insightnotes::core
