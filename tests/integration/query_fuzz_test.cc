// Differential query fuzzer: a seeded generator emits ~200 random SELECTs
// — filter/projection/join/aggregate/DISTINCT/ORDER BY/LIMIT mixes, with
// and without summary predicates — over a seeded annotated dataset, and
// every query must produce BYTE-IDENTICAL results (tuples, merged summary
// objects, attachment metadata, order) when executed serially and at
// parallelism 2 and 8 under two morsel sizes. This locks in the whole
// parallel plan space at once: partial aggregation/sort/distinct, the
// top-k LIMIT pushdown and its shared-bound pruning, and the no-ORDER-BY
// row-quota path all sit under the same oracle.
//
// A failure prints the offending SQL plus the seed; replay with
// INSIGHTNOTES_FUZZ_SEED=<seed>. The fixed default seed keeps CI runs
// (tier-1 and TSAN, see .github/workflows/ci.yml) deterministic.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "exec/query_context.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql/session.h"
#include "testutil.h"

namespace insightnotes {
namespace {

using testutil::EngineFixture;
using testutil::I;
using testutil::S;

constexpr uint64_t kDefaultSeed = 20260806;
constexpr int kNumQueries = 200;
constexpr int64_t kFactRows = 120;
constexpr int64_t kDimRows = 10;

uint64_t FuzzSeed() {
  const char* env = std::getenv("INSIGHTNOTES_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return static_cast<uint64_t>(std::strtoull(env, nullptr, 10));
  }
  return kDefaultSeed;
}

class QueryFuzzTest : public EngineFixture {
 protected:
  void SetUp() override {
    EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
    CreateDataset();
  }

  /// t(id, grp, val, txt) joins d(k, name) on grp = k. Heavy annotation
  /// coverage (including shared attachments) so summary merging is part of
  /// every oracle comparison; duplicate grp/val/txt values guarantee sort
  /// ties straddling LIMIT boundaries and non-trivial DISTINCT folds.
  void CreateDataset() {
    CreateDatasetTables();
    AnnotateDataset();
  }

  /// Tables, rows and instance links only — the configuration half, which
  /// a file-backed reopen must replay by hand (the WAL replays the
  /// annotations itself; see PersistedIndexFuzzTest).
  void CreateDatasetTables() {
    ASSERT_TRUE(engine_
                    ->CreateTable("t",
                                  rel::Schema({{"id", rel::ValueType::kInt64, "t"},
                                               {"grp", rel::ValueType::kInt64, "t"},
                                               {"val", rel::ValueType::kInt64, "t"},
                                               {"txt", rel::ValueType::kString, "t"}}))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("d",
                                  rel::Schema({{"k", rel::ValueType::kInt64, "d"},
                                               {"name", rel::ValueType::kString, "d"}}))
                    .ok());
    Random rng(11);
    for (int64_t i = 0; i < kFactRows; ++i) {
      ASSERT_TRUE(engine_
                      ->Insert("t", rel::Tuple({I(i), I(i % kDimRows),
                                                I(static_cast<int64_t>(rng.Uniform(50))),
                                                S("s" + std::to_string(i % 9))}))
                      .ok());
    }
    for (int64_t k = 0; k < kDimRows; ++k) {
      ASSERT_TRUE(
          engine_->Insert("d", rel::Tuple({I(k), S("g" + std::to_string(k))})).ok());
    }
    ASSERT_TRUE(engine_->LinkInstance("ClassBird1", "t").ok());
    ASSERT_TRUE(engine_->LinkInstance("SimCluster", "t").ok());
  }

  void AnnotateDataset() {
    Random rng(12);
    const std::vector<std::string> bodies = {
        "found eating stonewort near the shore",
        "signs of influenza infection detected",
        "wingspan and body size measured today",
        "why is this measurement so high",
        "general remark about the observation",
    };
    for (int i = 0; i < 70; ++i) {
      rel::RowId row = static_cast<rel::RowId>(rng.Uniform(kFactRows));
      std::vector<size_t> columns;
      if (rng.Bernoulli(0.5)) columns.push_back(rng.Uniform(4));
      auto id = engine_->Annotate(
          Spec("t", row, bodies[rng.Uniform(bodies.size())], columns));
      ASSERT_TRUE(id.ok());
      if (rng.Bernoulli(0.3)) {
        ASSERT_TRUE(engine_
                        ->AttachAnnotation(
                            *id, "t", static_cast<rel::RowId>(rng.Uniform(kFactRows)))
                        .ok());
      }
    }
  }

  // ---- Generator: every emitted query is valid by construction. ----

  std::string GenPredicate(Random& rng, bool with_dim) {
    switch (rng.Uniform(with_dim ? 8 : 7)) {
      case 0: return "t.val > " + std::to_string(rng.Uniform(50));
      case 1: return "t.val < " + std::to_string(rng.Uniform(50));
      case 2: return "t.grp = " + std::to_string(rng.Uniform(kDimRows));
      case 3: return "t.id >= " + std::to_string(rng.Uniform(kFactRows));
      case 4: return "t.txt = 's" + std::to_string(rng.Uniform(9)) + "'";
      case 5: return "SUMMARY_COUNT(ClassBird1) > " + std::to_string(rng.Uniform(2));
      case 6: return "SUMMARY_COUNT(SimCluster) >= " + std::to_string(rng.Uniform(2));
      default: return "d.name = 'g" + std::to_string(rng.Uniform(kDimRows)) + "'";
    }
  }

  std::string GenWhere(Random& rng, bool with_dim) {
    size_t conjuncts = rng.Uniform(3);  // 0..2
    std::string out;
    for (size_t i = 0; i < conjuncts; ++i) {
      out += (i == 0) ? " WHERE " : " AND ";
      out += GenPredicate(rng, with_dim);
    }
    return out;
  }

  std::string GenOrderKey(Random& rng, bool with_dim) {
    static const char* kKeys[] = {"t.id", "t.grp", "t.val", "t.txt"};
    std::string key;
    if (rng.Bernoulli(0.12)) {
      key = "SUMMARY_COUNT(ClassBird1)";
    } else if (with_dim && rng.Bernoulli(0.2)) {
      key = "d.name";
    } else {
      key = kKeys[rng.Uniform(4)];
    }
    if (rng.Bernoulli(0.5)) key += " DESC";
    return key;
  }

  std::string GenLimit(Random& rng) {
    static const int kLimits[] = {0, 1, 2, 5, 17, 60, 300};
    return " LIMIT " + std::to_string(kLimits[rng.Uniform(7)]);
  }

  std::string GenQuery(Random& rng) {
    bool with_dim = rng.Bernoulli(0.25);
    bool agg = rng.Bernoulli(0.3);
    std::string from = with_dim ? " FROM t t, d d" : " FROM t t";
    std::string where = GenWhere(rng, with_dim);
    if (with_dim) {
      where += where.empty() ? " WHERE " : " AND ";
      where += "t.grp = d.k";
    }
    std::string sql = "SELECT ";
    if (agg) {
      std::string group = rng.Bernoulli(0.5) ? "t.grp" : "t.txt";
      static const char* kAggs[] = {"COUNT(*)",   "SUM(t.val)", "MIN(t.val)",
                                    "MAX(t.val)", "AVG(t.val)", "MIN(t.txt)"};
      sql += group;
      size_t n = 1 + rng.Uniform(3);
      for (size_t i = 0; i < n; ++i) sql += std::string(", ") + kAggs[rng.Uniform(6)];
      sql += from + where + " GROUP BY " + group;
      if (rng.Bernoulli(0.5)) {
        sql += " ORDER BY " + group;
        if (rng.Bernoulli(0.5)) sql += " DESC";
      }
    } else {
      if (rng.Bernoulli(0.2)) sql += "DISTINCT ";
      static const char* kCols[] = {"t.id", "t.grp", "t.val", "t.txt", "d.k", "d.name"};
      std::string items;
      size_t pool = with_dim ? 6 : 4;
      for (size_t c = 0; c < pool; ++c) {
        if (!rng.Bernoulli(0.5)) continue;
        if (!items.empty()) items += ", ";
        items += kCols[c];
      }
      if (items.empty()) items = "t.id";
      sql += items + from + where;
      if (rng.Bernoulli(0.6)) {
        sql += " ORDER BY " + GenOrderKey(rng, with_dim);
        if (rng.Bernoulli(0.4)) sql += ", " + GenOrderKey(rng, with_dim);
      }
    }
    if (rng.Bernoulli(0.5)) sql += GenLimit(rng);
    return sql;
  }

  // ---- Differential execution. ----

  Result<core::QueryResult> TryExecute(const std::string& sql_text, size_t parallelism,
                                       size_t morsel_size,
                                       std::shared_ptr<exec::QueryContext> context,
                                       bool optimize = false) {
    auto statement = sql::Parse(sql_text);
    EXPECT_TRUE(statement.ok()) << statement.status().ToString();
    auto* select = std::get_if<sql::SelectStatement>(&*statement);
    EXPECT_NE(select, nullptr);
    sql::PlannerOptions options;
    options.parallelism = parallelism;
    options.morsel_size = morsel_size;
    options.optimize = optimize;
    INSIGHTNOTES_ASSIGN_OR_RETURN(auto plan,
                                  sql::PlanSelect(*select, engine_.get(), options));
    if (context != nullptr) plan->SetQueryContext(context);
    return engine_->Execute(std::move(plan));
  }

  core::QueryResult Execute(const std::string& sql_text, size_t parallelism,
                            size_t morsel_size, bool optimize = false) {
    auto result = TryExecute(sql_text, parallelism, morsel_size, nullptr, optimize);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(*result) : core::QueryResult{};
  }

  /// Full byte-for-byte rendering: data values, summaries in pipeline
  /// order (Render() covers component order and representative election),
  /// attachment metadata in order.
  static std::vector<std::string> RenderRows(const core::QueryResult& result) {
    std::vector<std::string> rows;
    for (const core::AnnotatedTuple& row : result.rows) {
      std::ostringstream os;
      os << row.tuple.ToString();
      for (const auto& summary : row.summaries) {
        os << " || " << summary->instance_name() << "=" << summary->Render();
      }
      for (const auto& attachment : row.attachments) {
        os << " [A" << attachment.id << ":";
        for (size_t c : attachment.columns) os << c << ",";
        os << "]";
      }
      rows.push_back(os.str());
    }
    return rows;
  }

  std::vector<std::string> Run(const std::string& sql_text, size_t parallelism,
                               size_t morsel_size, bool optimize = false) {
    return RenderRows(Execute(sql_text, parallelism, morsel_size, optimize));
  }

  /// Executes against an explicitly pinned epoch, unretained (bulk replay
  /// must not grow the zoom-in registry). Thread-safe: no shared
  /// QueryContext — Engine::Execute creates a private one per call.
  Result<core::QueryResult> TryExecutePinned(const std::string& sql_text,
                                             size_t parallelism,
                                             core::ReadSnapshot snapshot) {
    auto statement = sql::Parse(sql_text);
    if (!statement.ok()) return statement.status();
    auto* select = std::get_if<sql::SelectStatement>(&*statement);
    if (select == nullptr) return Status::Internal("not a SELECT");
    sql::PlannerOptions options;
    options.parallelism = parallelism;
    options.morsel_size = 16;
    INSIGHTNOTES_ASSIGN_OR_RETURN(auto plan,
                                  sql::PlanSelect(*select, engine_.get(), options));
    core::ExecuteOptions exec_options;
    exec_options.snapshot = std::move(snapshot);
    exec_options.retain = false;
    return engine_->Execute(std::move(plan), std::move(exec_options));
  }

  /// Concurrent-session mode: `num_sessions` reader threads replay a
  /// fuzzed corpus against one pinned epoch while a writer annotates live.
  /// Every replay must be byte-identical to the pre-ingest baseline
  /// computed against the same pin — a reader observing any concurrent
  /// mutation (torn summary fold, attachment append, archive flip) breaks
  /// the oracle.
  void RunConcurrentSessions(size_t num_sessions) {
    const uint64_t seed = FuzzSeed();
    Random rng(seed + 3);  // Distinct stream from the other fuzz sweeps.
    std::vector<std::string> corpus;
    corpus.reserve(kNumQueries);
    for (int q = 0; q < kNumQueries; ++q) corpus.push_back(GenQuery(rng));

    auto pinned = engine_->PinSnapshot();
    ASSERT_TRUE(pinned.ok()) << pinned.status().ToString();
    std::vector<std::vector<std::string>> baselines(corpus.size());
    for (size_t i = 0; i < corpus.size(); ++i) {
      auto result = TryExecutePinned(corpus[i], 1, *pinned);
      ASSERT_TRUE(result.ok()) << corpus[i] << "\n  " << result.status().ToString()
                               << "\nreplay: INSIGHTNOTES_FUZZ_SEED=" << seed;
      baselines[i] = RenderRows(*result);
    }

    // Live ingest: single writer annotating (plus periodic batches) for the
    // whole replay. Capped so a slow TSAN run cannot grow the store
    // unboundedly; the early queries still race against live publishes.
    // gtest assertions are not thread-safe off the main thread, so both the
    // writer and the readers collect failures for the post-join assert.
    std::mutex failures_mutex;
    std::vector<std::string> failures;

    std::atomic<bool> stop{false};
    std::thread writer([&] {
      Random wrng(seed + 99);
      const std::vector<std::string> bodies = {
          "fresh influenza lesion observed",
          "foraging behavior while migrating",
          "beak wingspan anatomy note",
      };
      for (int i = 0; i < 3000 && !stop.load(std::memory_order_acquire); ++i) {
        Status written;
        if (i % 8 == 7) {
          std::vector<core::AnnotateSpec> batch;
          for (int b = 0; b < 4; ++b) {
            batch.push_back(Spec("t", static_cast<rel::RowId>(wrng.Uniform(kFactRows)),
                                 bodies[wrng.Uniform(bodies.size())]));
          }
          written = engine_->AnnotateBatch(batch).status();
        } else {
          written = engine_
                        ->Annotate(Spec("t",
                                        static_cast<rel::RowId>(wrng.Uniform(kFactRows)),
                                        bodies[wrng.Uniform(bodies.size())]))
                        .status();
        }
        if (!written.ok()) {
          std::lock_guard<std::mutex> lock(failures_mutex);
          failures.push_back("ingest failed: " + written.ToString());
          return;
        }
      }
    });
    std::vector<std::thread> readers;
    readers.reserve(num_sessions);
    for (size_t t = 0; t < num_sessions; ++t) {
      readers.emplace_back([&, t] {
        for (size_t i = t; i < corpus.size(); i += num_sessions) {
          // Alternate serial and morsel-parallel plans under the pin.
          size_t parallelism = i % 2 == 0 ? 1 : 2;
          auto result = TryExecutePinned(corpus[i], parallelism, *pinned);
          if (!result.ok()) {
            std::lock_guard<std::mutex> lock(failures_mutex);
            failures.push_back(corpus[i] + "\n  " + result.status().ToString());
            continue;
          }
          if (RenderRows(*result) != baselines[i]) {
            std::lock_guard<std::mutex> lock(failures_mutex);
            failures.push_back("diverged from pinned-epoch oracle: " + corpus[i]);
          }
        }
      });
    }
    for (std::thread& reader : readers) reader.join();
    stop.store(true, std::memory_order_release);
    writer.join();

    EXPECT_TRUE(failures.empty()) << failures.size() << " replay failure(s), first:\n"
                                  << failures[0]
                                  << "\nreplay: INSIGHTNOTES_FUZZ_SEED=" << seed;
    // The pinned epoch must still be the readers' view even though the
    // writer published far past it.
    EXPECT_GT(engine_->CurrentEpoch(), (*pinned)->epoch());
  }
};

// Cancellation fuzzing: each random query runs once with a seeded
// cancellation point (the trip fires at a random cooperative interrupt
// check) and then again uncancelled. A tripped run must fail with exactly
// kCancelled; the uncancelled rerun must stay byte-identical to serial —
// cancellation mid-flight (including mid-parallel-plan) leaves no torn
// shared state behind. Replay with INSIGHTNOTES_FUZZ_SEED=<seed>.
TEST_F(QueryFuzzTest, SeededCancellationLeavesEngineConsistent) {
  const uint64_t seed = FuzzSeed();
  Random rng(seed + 1);  // Distinct stream from the byte-identity fuzz.
  auto context = std::make_shared<exec::QueryContext>();
  constexpr int kCancelQueries = 50;
  int cancelled_runs = 0;
  for (int q = 0; q < kCancelQueries; ++q) {
    const std::string sql = GenQuery(rng);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" + std::to_string(q) +
                 " sql: " + sql);
    std::vector<std::string> serial = Run(sql, 1, 16);
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "replay: INSIGHTNOTES_FUZZ_SEED=" << seed << "\n  " << sql;

    const size_t parallelism = rng.Bernoulli(0.5) ? 8 : 2;
    const uint64_t trip = 1 + rng.Uniform(80);
    context->CancelAtCheck(trip);
    context->BeginStatement(0, 0);
    auto tripped = TryExecute(sql, parallelism, 16, context);
    if (!tripped.ok()) {
      ++cancelled_runs;
      ASSERT_TRUE(tripped.status().IsCancelled())
          << "trip=" << trip << " parallelism=" << parallelism
          << "\nreplay: INSIGHTNOTES_FUZZ_SEED=" << seed << "\n  " << sql
          << "\n  " << tripped.status().ToString();
    }
    // Disarmed, the same query must come back byte-identical to serial.
    context->CancelAtCheck(0);
    context->BeginStatement(0, 0);
    auto clean = TryExecute(sql, parallelism, 16, context);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString()
                            << "\nreplay: INSIGHTNOTES_FUZZ_SEED=" << seed;
    std::vector<std::string> rows;
    for (const core::AnnotatedTuple& row : clean->rows) {
      std::ostringstream os;
      os << row.tuple.ToString();
      for (const auto& summary : row.summaries) {
        os << " || " << summary->instance_name() << "=" << summary->Render();
      }
      for (const auto& attachment : row.attachments) {
        os << " [A" << attachment.id << ":";
        for (size_t c : attachment.columns) os << c << ",";
        os << "]";
      }
      rows.push_back(os.str());
    }
    ASSERT_EQ(rows, serial) << "parallelism=" << parallelism << " trip=" << trip
                            << "\nreplay: INSIGHTNOTES_FUZZ_SEED=" << seed << "\n  "
                            << sql;
  }
  // The sweep must actually exercise cancellation, not just finish early.
  EXPECT_GT(cancelled_runs, kCancelQueries / 4)
      << "too few runs tripped; widen the trip range";
}

TEST_F(QueryFuzzTest, RandomQueriesMatchSerialByteForByte) {
  const uint64_t seed = FuzzSeed();
  Random rng(seed);
  for (int q = 0; q < kNumQueries; ++q) {
    const std::string sql = GenQuery(rng);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" + std::to_string(q) +
                 " sql: " + sql);
    std::vector<std::string> serial = Run(sql, 1, 16);
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "replay: INSIGHTNOTES_FUZZ_SEED=" << seed << "\n  " << sql;
    for (size_t parallelism : {2u, 8u}) {
      for (size_t morsel : {16u, 13u}) {
        ASSERT_EQ(serial, Run(sql, parallelism, morsel))
            << "parallelism=" << parallelism << " morsel=" << morsel
            << "\nreplay: INSIGHTNOTES_FUZZ_SEED=" << seed << "\n  " << sql;
      }
    }
  }
}

// Optimizer differential: with ANALYZE statistics and secondary indexes in
// place, every fuzzed query must return byte-identical results with the
// cost-based optimizer ON (join reordering + RestoreOrder, index-backed
// access paths, parallelism choice) as with it OFF — across serial and
// parallel execution. This is the safety net behind `SET OPTIMIZER = ON`
// being the session default.
TEST_F(QueryFuzzTest, OptimizerPlansMatchRuleDrivenByteForByte) {
  ASSERT_TRUE(engine_->Analyze("t").ok());
  ASSERT_TRUE(engine_->Analyze("d").ok());
  ASSERT_TRUE(engine_->CreateIndex("t", "val").ok());
  ASSERT_TRUE(engine_->CreateIndex("t", "grp").ok());
  ASSERT_TRUE(engine_->CreateIndex("t", "txt").ok());
  ASSERT_TRUE(engine_->CreateIndex("d", "k").ok());

  const uint64_t seed = FuzzSeed();
  Random rng(seed + 2);  // Distinct stream from the other fuzz sweeps.
  for (int q = 0; q < kNumQueries; ++q) {
    const std::string sql = GenQuery(rng);
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" + std::to_string(q) +
                 " sql: " + sql);
    std::vector<std::string> baseline = Run(sql, 1, 16, /*optimize=*/false);
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "replay: INSIGHTNOTES_FUZZ_SEED=" << seed << "\n  " << sql;
    for (size_t parallelism : {1u, 2u, 8u}) {
      ASSERT_EQ(baseline, Run(sql, parallelism, 16, /*optimize=*/true))
          << "optimizer on, parallelism=" << parallelism
          << "\nreplay: INSIGHTNOTES_FUZZ_SEED=" << seed << "\n  " << sql;
    }
  }
}

// Persisted-index differential: the same fuzzed corpus, answered by
// indexes that crossed an engine restart. A file-backed engine builds the
// four secondary indexes, records optimizer-on baselines, closes; the
// reopen must ADOPT the committed B+-trees from the index checkpoint
// (recovery().indexes_recovered — no table-scan rebuild), the replayed
// configuration (tables, rows, links; annotations come back through the
// WAL) must line the trees up with the live row set, and every query must
// stay byte-identical at parallelism 1/2/8 with EXPLAIN still choosing
// IndexScan.
class PersistedIndexFuzzTest : public QueryFuzzTest {
 protected:
  void SetUp() override {
    db_path_ = ::testing::TempDir() + "/insightnotes_pfuzz_" +
               std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    RemoveDbFiles();
    options_.db_path = db_path_;
    options_.index_max_node_entries = 8;  // Multi-level trees at 120 rows.
    options_.io_retry.sleep = [](int64_t) {};
    QueryFuzzTest::SetUp();
  }

  void TearDown() override {
    engine_.reset();
    RemoveDbFiles();
  }

  void RemoveDbFiles() {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir = fs::path(db_path_).parent_path();
    const std::string stem = fs::path(db_path_).filename().string();
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->path().filename().string().rfind(stem, 0) == 0) {
        std::error_code remove_ec;
        fs::remove(it->path(), remove_ec);
      }
    }
  }

  /// EXPLAIN through a fresh SqlSession (optimizer is the session
  /// default); returns the rendered plan tree.
  std::string ExplainPlan(const std::string& sql) {
    sql::SqlSession session(engine_.get());
    auto out = session.Execute("EXPLAIN " + sql);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    return out.ok() ? out->message : "";
  }

  std::string db_path_;
};

TEST_F(PersistedIndexFuzzTest, ReopenedIndexesAnswerCorpusByteForByte) {
  ASSERT_TRUE(engine_->Analyze("t").ok());
  ASSERT_TRUE(engine_->Analyze("d").ok());
  ASSERT_TRUE(engine_->CreateIndex("t", "val").ok());
  ASSERT_TRUE(engine_->CreateIndex("t", "grp").ok());
  ASSERT_TRUE(engine_->CreateIndex("t", "txt").ok());
  ASSERT_TRUE(engine_->CreateIndex("d", "k").ok());

  const uint64_t seed = FuzzSeed();
  Random rng(seed + 4);  // Distinct stream from the other fuzz sweeps.
  std::vector<std::string> corpus;
  corpus.reserve(kNumQueries);
  for (int q = 0; q < kNumQueries; ++q) corpus.push_back(GenQuery(rng));

  std::vector<std::vector<std::string>> baselines(corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    baselines[i] = Run(corpus[i], 1, 16, /*optimize=*/true);
    ASSERT_FALSE(::testing::Test::HasFailure())
        << "replay: INSIGHTNOTES_FUZZ_SEED=" << seed << "\n  " << corpus[i];
  }
  const std::string probe_sql = "SELECT t.id FROM t t WHERE t.val = 7";
  EXPECT_NE(ExplainPlan(probe_sql).find("IndexScan"), std::string::npos)
      << "optimizer skipped the index before the restart";

  engine_.reset();  // Shutdown checkpoint; the index epoch is already durable.

  options_.open_existing = true;
  engine_ = std::make_unique<core::Engine>(options_);
  ASSERT_TRUE(engine_->Init().ok());
  EXPECT_EQ(engine_->recovery().indexes_recovered, 4u)
      << "reopen rebuilt instead of adopting the committed trees";
  // Configuration replay — the annotations are already back via the WAL.
  CreateFigure2Tables();
  CreateFigure2Instances();
  CreateDatasetTables();
  ASSERT_TRUE(engine_->Analyze("t").ok());
  ASSERT_TRUE(engine_->Analyze("d").ok());

  auto t = engine_->catalog()->GetTable("t");
  auto d = engine_->catalog()->GetTable("d");
  ASSERT_TRUE(t.ok() && d.ok());
  for (size_t column : {1u, 2u, 3u}) {  // grp, val, txt.
    const rel::TableIndex* index = (*t)->IndexOn(column);
    ASSERT_NE(index, nullptr) << "t column " << column;
    ASSERT_TRUE(index->persistent()) << "t column " << column;
    // Adopted trees cover exactly the rows committed before the restart —
    // a rebuild would have covered none of them.
    EXPECT_EQ(index->tree()->covered_rows(), static_cast<uint64_t>(kFactRows));
    EXPECT_TRUE(index->tree()->CheckInvariants().ok());
  }
  ASSERT_NE((*d)->IndexOn(0), nullptr);

  EXPECT_NE(ExplainPlan(probe_sql).find("IndexScan"), std::string::npos)
      << "optimizer stopped choosing the adopted index after the restart";

  for (size_t i = 0; i < corpus.size(); ++i) {
    SCOPED_TRACE("seed=" + std::to_string(seed) + " query#" + std::to_string(i) +
                 " sql: " + corpus[i]);
    for (size_t parallelism : {1u, 2u, 8u}) {
      ASSERT_EQ(baselines[i], Run(corpus[i], parallelism, 16, /*optimize=*/true))
          << "parallelism=" << parallelism
          << "\nreplay: INSIGHTNOTES_FUZZ_SEED=" << seed << "\n  " << corpus[i];
    }
  }
}

// Concurrent multi-session reads under live ingest, at 1/2/8 sessions.
// One pinned epoch is the oracle: every session's replay of the corpus
// must be byte-identical to the baseline computed against that pin before
// ingest started, serial and morsel-parallel alike. Run under TSAN this
// sweeps the epoch publish/pin/retire protocol and the sharded caches.
TEST_F(QueryFuzzTest, ConcurrentSessionsMatchPinnedEpochOracle1) {
  RunConcurrentSessions(1);
}

TEST_F(QueryFuzzTest, ConcurrentSessionsMatchPinnedEpochOracle2) {
  RunConcurrentSessions(2);
}

TEST_F(QueryFuzzTest, ConcurrentSessionsMatchPinnedEpochOracle8) {
  RunConcurrentSessions(8);
}

}  // namespace
}  // namespace insightnotes
