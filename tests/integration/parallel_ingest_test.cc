// Parallel annotation-ingestion determinism: AnnotateBatch with N threads
// must leave the engine in a state byte-identical (serialized summary
// snapshots) to serial ingest of the same specs — the guarantee of
// DESIGN.md's concurrency model. Per-tuple summary state is partitioned by
// row across shards; cluster vocabulary growth is committed in a serial,
// batch-order pre-pass.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/zoom_in.h"
#include "workload/annotation_gen.h"
#include "workload/workload.h"

namespace insightnotes::core {
namespace {

constexpr size_t kRows = 24;

workload::WorkloadConfig BaseConfig() {
  workload::WorkloadConfig config;
  config.num_species = kRows;
  config.annotations_per_tuple = 0;  // Annotations come from the batch.
  return config;
}

std::unique_ptr<Engine> FreshEngine() {
  auto engine = std::make_unique<Engine>();
  EXPECT_TRUE(engine->Init().ok());
  workload::WorkloadBuilder builder(BaseConfig());
  EXPECT_TRUE(builder.BuildBase(engine.get()).ok());
  return engine;
}

/// A mixed batch across all rows: comments and documents, whole-row and
/// per-cell targets, deterministic under `seed`.
std::vector<AnnotateSpec> MakeBatch(size_t count, uint64_t seed) {
  workload::AnnotationGenerator gen(seed);
  const auto& species = workload::CuratedSpecies();
  std::vector<AnnotateSpec> specs;
  specs.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    const auto& sp = species[i % species.size()];
    bool document = i % 7 == 0;
    auto g = document ? gen.GenerateDocument(sp, 6) : gen.GenerateComment(sp);
    AnnotateSpec spec;
    spec.table = "birds";
    spec.row = static_cast<rel::RowId>((i * 13) % kRows);
    spec.body = g.annotation.body;
    spec.author = g.annotation.author;
    spec.kind = g.annotation.kind;
    spec.title = g.annotation.title;
    spec.timestamp = static_cast<int64_t>(i);
    if (i % 3 == 0) spec.columns = {i % 5};
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// Serialized snapshot of every row's summary objects — the byte-identity
/// fingerprint of the maintained summarization state.
std::string SummaryFingerprint(Engine* engine) {
  auto scan = engine->MakeScan("birds");
  EXPECT_TRUE(scan.ok());
  rel::Schema schema = (*scan)->OutputSchema();
  EXPECT_TRUE((*scan)->Open().ok());
  std::vector<AnnotatedTuple> rows;
  AnnotatedTuple tuple;
  while (true) {
    auto more = (*scan)->Next(&tuple);
    EXPECT_TRUE(more.ok());
    if (!more.ok() || !*more) break;
    rows.push_back(std::move(tuple));
    tuple = AnnotatedTuple();
  }
  auto snapshot = ResultSnapshot::Capture(schema, rows);
  EXPECT_TRUE(snapshot.ok());
  std::string bytes;
  snapshot->Serialize(&bytes);
  return bytes;
}

TEST(ParallelIngestTest, BatchSerialMatchesPerSpecAnnotate) {
  auto specs = MakeBatch(200, 17);

  auto loop_engine = FreshEngine();
  for (const AnnotateSpec& spec : specs) {
    ASSERT_TRUE(loop_engine->Annotate(spec).ok());
  }

  auto batch_engine = FreshEngine();
  auto ids = batch_engine->AnnotateBatch(specs, {.num_threads = 1});
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), specs.size());

  EXPECT_EQ(SummaryFingerprint(loop_engine.get()),
            SummaryFingerprint(batch_engine.get()));
}

TEST(ParallelIngestTest, ParallelIngestIsByteIdenticalToSerial) {
  auto specs = MakeBatch(400, 23);

  auto serial = FreshEngine();
  ASSERT_TRUE(serial->AnnotateBatch(specs, {.num_threads = 1}).ok());
  std::string serial_bytes = SummaryFingerprint(serial.get());
  ASSERT_FALSE(serial_bytes.empty());

  for (size_t threads : {2, 4, 8}) {
    auto parallel = FreshEngine();
    auto ids = parallel->AnnotateBatch(specs, {.num_threads = threads});
    ASSERT_TRUE(ids.ok()) << "threads=" << threads;
    EXPECT_EQ(serial_bytes, SummaryFingerprint(parallel.get()))
        << "threads=" << threads;
  }
}

TEST(ParallelIngestTest, RepeatedParallelRunsAreStable) {
  // Rerunning the same parallel ingest must reproduce the same bytes —
  // thread scheduling may not leak into summary state.
  auto specs = MakeBatch(150, 31);
  std::string first;
  for (int run = 0; run < 3; ++run) {
    auto engine = FreshEngine();
    ASSERT_TRUE(engine->AnnotateBatch(specs, {.num_threads = 4}).ok());
    std::string bytes = SummaryFingerprint(engine.get());
    if (run == 0) {
      first = bytes;
    } else {
      EXPECT_EQ(first, bytes) << "run=" << run;
    }
  }
}

TEST(ParallelIngestTest, IdsAssignedInSpecOrder) {
  auto engine = FreshEngine();
  auto specs = MakeBatch(50, 5);
  auto ids = engine->AnnotateBatch(specs, {.num_threads = 4});
  ASSERT_TRUE(ids.ok());
  ASSERT_EQ(ids->size(), 50u);
  for (size_t i = 0; i < ids->size(); ++i) {
    EXPECT_EQ((*ids)[i], static_cast<ann::AnnotationId>(i));
  }
  EXPECT_EQ(engine->annotations()->NumAnnotations(), 50u);
}

TEST(ParallelIngestTest, BatchValidatesUpFront) {
  auto engine = FreshEngine();
  auto specs = MakeBatch(10, 3);
  specs[7].row = 9999;  // Invalid: must fail the whole batch before ingest.
  auto ids = engine->AnnotateBatch(specs, {.num_threads = 4});
  EXPECT_TRUE(ids.status().IsNotFound());
  EXPECT_EQ(engine->annotations()->NumAnnotations(), 0u);
  EXPECT_EQ(engine->summaries()->NumMaintainedRows(), 0u);
}

TEST(ParallelIngestTest, ZoomInSeesParallelIngestedAnnotations) {
  auto engine = FreshEngine();
  auto specs = MakeBatch(120, 11);
  ASSERT_TRUE(engine->AnnotateBatch(specs, {.num_threads = 4}).ok());

  auto scan = engine->MakeScan("birds");
  ASSERT_TRUE(scan.ok());
  auto result = engine->Execute(std::move(*scan));
  ASSERT_TRUE(result.ok());

  ZoomInRequest request;
  request.qid = result->qid;
  request.instance_name = "ClassBird1";
  request.component_index = 0;
  auto zoom = engine->ZoomIn(request);
  ASSERT_TRUE(zoom.ok());
  // Every annotation id surfaced by zoom-in must resolve in the store.
  size_t resolved = 0;
  for (const auto& row : zoom->rows) {
    for (const auto& note : row.annotations) {
      EXPECT_FALSE(note.body.empty());
      ++resolved;
    }
  }
  EXPECT_GT(resolved, 0u);
}

}  // namespace
}  // namespace insightnotes::core
