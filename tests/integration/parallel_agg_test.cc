// Parallel aggregation / sort / distinct oracle: the partial-state plan
// shapes (PartialAggregate+AggregateMerge, PartialSort+SortMerge,
// PartialDistinct+DistinctMerge) must produce results BYTE-IDENTICAL to
// the serial operators — same tuples in the same order, identical merged
// summary objects (shared annotations counted once, cluster representative
// election included), identical attachment metadata, and bit-identical
// float SUM/AVG results (the merge replays recorded terms in morsel
// order). Runs at parallelism {1, 2, 8} with morsel sizes that divide the
// table unevenly on purpose.
//
// The stress test at the bottom doubles as the TSAN target for the
// partial-aggregation publish/merge protocol (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql/session.h"
#include "testutil.h"

namespace insightnotes {
namespace {

using testutil::EngineFixture;
using testutil::F;
using testutil::I;
using testutil::S;

class ParallelAggTest : public EngineFixture {
 protected:
  void SetUp() override {
    EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
    CreateObservationTable();
  }

  /// obs(id, station, reading, temp, note): kObsRows rows over a few
  /// stations, with a float column whose per-group sums exercise the
  /// non-associative double addition, plus heavy annotation coverage so
  /// group/distinct merges fold real summary objects.
  void CreateObservationTable() {
    ASSERT_TRUE(engine_
                    ->CreateTable("obs",
                                  rel::Schema({{"id", rel::ValueType::kInt64, "obs"},
                                               {"station", rel::ValueType::kInt64, "obs"},
                                               {"reading", rel::ValueType::kInt64, "obs"},
                                               {"temp", rel::ValueType::kFloat64, "obs"},
                                               {"note", rel::ValueType::kString, "obs"}}))
                    .ok());
    Random rng(7);
    for (int64_t i = 0; i < kObsRows; ++i) {
      // Irrational-ish temps: float addition order visibly matters.
      double temp = 0.1 + static_cast<double>(rng.Uniform(1000)) / 7.0;
      auto row = engine_->Insert(
          "obs",
          rel::Tuple({I(i), I(i % 5), I(static_cast<int64_t>(rng.Uniform(40))),
                      F(temp), S("n" + std::to_string(i % 9))}));
      ASSERT_TRUE(row.ok());
    }
    ASSERT_TRUE(engine_->LinkInstance("ClassBird1", "obs").ok());
    ASSERT_TRUE(engine_->LinkInstance("SimCluster", "obs").ok());

    const std::vector<std::string> bodies = {
        "found eating stonewort near the shore",
        "signs of influenza infection detected",
        "wingspan and body size measured today",
        "why is this measurement so high",
        "general remark about the observation",
    };
    for (int i = 0; i < 80; ++i) {
      rel::RowId row = static_cast<rel::RowId>(rng.Uniform(kObsRows));
      std::vector<size_t> columns;
      if (rng.Bernoulli(0.5)) columns.push_back(rng.Uniform(5));
      auto id = engine_->Annotate(
          Spec("obs", row, bodies[rng.Uniform(bodies.size())], columns));
      ASSERT_TRUE(id.ok());
      // Shared annotations: the same annotation on several rows, so group
      // and distinct merges must count it once.
      if (rng.Bernoulli(0.3)) {
        ASSERT_TRUE(engine_
                        ->AttachAnnotation(*id, "obs",
                                           static_cast<rel::RowId>(rng.Uniform(kObsRows)))
                        .ok());
      }
    }
  }

  core::QueryResult Execute(const std::string& sql_text, size_t parallelism,
                            size_t morsel_size) {
    auto statement = sql::Parse(sql_text);
    EXPECT_TRUE(statement.ok()) << statement.status().ToString();
    auto* select = std::get_if<sql::SelectStatement>(&*statement);
    EXPECT_NE(select, nullptr);
    sql::PlannerOptions options;
    options.parallelism = parallelism;
    options.morsel_size = morsel_size;
    auto plan = sql::PlanSelect(*select, engine_.get(), options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto result = engine_->Execute(std::move(*plan));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? std::move(*result) : core::QueryResult{};
  }

  /// Full byte-for-byte rendering: data values, summaries in pipeline
  /// order (Render() covers component order and representative election),
  /// attachments in order.
  std::vector<std::string> Run(const std::string& sql_text, size_t parallelism,
                               size_t morsel_size) {
    core::QueryResult result = Execute(sql_text, parallelism, morsel_size);
    std::vector<std::string> rows;
    for (const core::AnnotatedTuple& row : result.rows) {
      std::ostringstream os;
      os << row.tuple.ToString();
      for (const auto& summary : row.summaries) {
        os << " || " << summary->instance_name() << "=" << summary->Render();
      }
      for (const auto& attachment : row.attachments) {
        os << " [A" << attachment.id << ":";
        for (size_t c : attachment.columns) os << c << ",";
        os << "]";
      }
      rows.push_back(os.str());
    }
    return rows;
  }

  void ExpectOracle(const std::string& sql_text) {
    SCOPED_TRACE(sql_text);
    std::vector<std::string> serial = Run(sql_text, 1, 16);
    ASSERT_FALSE(::testing::Test::HasFailure());
    for (size_t parallelism : {2u, 8u}) {
      for (size_t morsel : {16u, 13u}) {
        SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                     " morsel=" + std::to_string(morsel));
        EXPECT_EQ(serial, Run(sql_text, parallelism, morsel));
      }
    }
  }

  static constexpr int64_t kObsRows = 300;
};

TEST_F(ParallelAggTest, GroupByAllAggregatesOracle) {
  ExpectOracle(
      "SELECT o.station, COUNT(*), COUNT(o.reading), SUM(o.reading), "
      "MIN(o.reading), MAX(o.reading), AVG(o.reading) "
      "FROM obs o GROUP BY o.station ORDER BY o.station");
}

TEST_F(ParallelAggTest, GroupByWithoutOrderByOracle) {
  // No ORDER BY: group emission order is first-seen order, which the
  // morsel-ordered merge must reproduce exactly.
  ExpectOracle("SELECT o.note, COUNT(*) FROM obs o GROUP BY o.note");
}

TEST_F(ParallelAggTest, GroupSummariesAndRepresentativesOracle) {
  // Groups collapse many annotated tuples; merged classifier counts and
  // cluster representative election must match the serial fold.
  ExpectOracle(
      "SELECT o.station, COUNT(*) FROM obs o GROUP BY o.station "
      "ORDER BY o.station");
  ExpectOracle("SELECT o.note, SUM(o.reading) FROM obs o GROUP BY o.note");
}

TEST_F(ParallelAggTest, MinMaxOverStringsOracle) {
  ExpectOracle(
      "SELECT o.station, MIN(o.note), MAX(o.note) FROM obs o "
      "GROUP BY o.station ORDER BY o.station");
}

TEST_F(ParallelAggTest, GlobalAggregateOracle) {
  ExpectOracle(
      "SELECT COUNT(*), SUM(o.reading), MIN(o.note), MAX(o.temp) FROM obs o");
}

TEST_F(ParallelAggTest, EmptyInputOracle) {
  // Global aggregate over empty input still emits one zero-count row;
  // grouped aggregate emits none. Both must match serial exactly.
  ExpectOracle("SELECT COUNT(*), SUM(o.reading) FROM obs o WHERE o.id < 0");
  ExpectOracle(
      "SELECT o.station, COUNT(*) FROM obs o WHERE o.id < 0 GROUP BY o.station");
  ExpectOracle("SELECT o.id FROM obs o WHERE o.id < 0 ORDER BY o.id");
  ExpectOracle("SELECT DISTINCT o.note FROM obs o WHERE o.id < 0");
}

TEST_F(ParallelAggTest, FloatSumBitIdentical) {
  // Rendering rounds doubles; compare the raw tuples so SUM/AVG over the
  // float column must reproduce the serial result bit for bit (the merge
  // replays the recorded terms in morsel order).
  const std::string q =
      "SELECT o.station, SUM(o.temp), AVG(o.temp) FROM obs o "
      "GROUP BY o.station ORDER BY o.station";
  core::QueryResult serial = Execute(q, 1, 16);
  ASSERT_FALSE(::testing::Test::HasFailure());
  for (size_t parallelism : {2u, 8u}) {
    for (size_t morsel : {16u, 13u}) {
      SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                   " morsel=" + std::to_string(morsel));
      core::QueryResult parallel = Execute(q, parallelism, morsel);
      ASSERT_EQ(serial.rows.size(), parallel.rows.size());
      for (size_t i = 0; i < serial.rows.size(); ++i) {
        EXPECT_TRUE(serial.rows[i].tuple == parallel.rows[i].tuple)
            << "row " << i << ": " << serial.rows[i].tuple.ToString() << " vs "
            << parallel.rows[i].tuple.ToString();
      }
    }
  }
}

TEST_F(ParallelAggTest, AggregateOutputSchemaTypes) {
  // Aggregate result columns carry real types inferred from the argument
  // expression instead of degrading to NULL.
  auto statement = sql::Parse(
      "SELECT o.station, COUNT(*), SUM(o.reading), SUM(o.temp), AVG(o.reading), "
      "MIN(o.note) FROM obs o GROUP BY o.station");
  ASSERT_TRUE(statement.ok());
  auto* select = std::get_if<sql::SelectStatement>(&*statement);
  ASSERT_NE(select, nullptr);
  for (size_t parallelism : {1u, 4u}) {
    SCOPED_TRACE(parallelism);
    sql::PlannerOptions options;
    options.parallelism = parallelism;
    auto plan = sql::PlanSelect(*select, engine_.get(), options);
    ASSERT_TRUE(plan.ok()) << plan.status().ToString();
    const rel::Schema& schema = (*plan)->OutputSchema();
    ASSERT_EQ(schema.NumColumns(), 6u);
    EXPECT_EQ(schema.ColumnAt(0).type, rel::ValueType::kInt64);    // station
    EXPECT_EQ(schema.ColumnAt(1).type, rel::ValueType::kInt64);    // COUNT(*)
    EXPECT_EQ(schema.ColumnAt(2).type, rel::ValueType::kInt64);    // SUM(int)
    EXPECT_EQ(schema.ColumnAt(3).type, rel::ValueType::kFloat64);  // SUM(float)
    EXPECT_EQ(schema.ColumnAt(4).type, rel::ValueType::kFloat64);  // AVG
    EXPECT_EQ(schema.ColumnAt(5).type, rel::ValueType::kString);   // MIN(text)
  }
}

TEST_F(ParallelAggTest, OrderByMultiKeyOracle) {
  // Many reading/note ties: the k-way merge must reproduce the serial
  // stable-sort tie order (input order) exactly.
  ExpectOracle(
      "SELECT o.id, o.reading, o.note FROM obs o "
      "ORDER BY o.reading DESC, o.note ASC");
  ExpectOracle("SELECT o.id, o.station FROM obs o ORDER BY o.station");
}

TEST_F(ParallelAggTest, OrderBySummaryCountOracle) {
  // SUMMARY_COUNT keys interleave with expression keys inside one run
  // comparator.
  ExpectOracle(
      "SELECT o.id FROM obs o "
      "ORDER BY SUMMARY_COUNT(ClassBird1) DESC, o.id ASC");
}

TEST_F(ParallelAggTest, OrderByWithFilterAndLimitOracle) {
  ExpectOracle(
      "SELECT o.id, o.reading FROM obs o WHERE o.reading > 10 "
      "ORDER BY o.reading ASC, o.id DESC LIMIT 20");
}

TEST_F(ParallelAggTest, DistinctOracle) {
  // No ORDER BY: distinct emission order is global first-seen order, which
  // the morsel-ordered fold must reproduce; merged summaries ride along.
  ExpectOracle("SELECT DISTINCT o.note FROM obs o");
  ExpectOracle("SELECT DISTINCT o.station, o.note FROM obs o");
}

TEST_F(ParallelAggTest, ExplainShowsPartialPlanShapes) {
  sql::SqlSession session(engine_.get());
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 4").ok());
  auto agg = session.Execute(
      "EXPLAIN SELECT o.station, COUNT(*) FROM obs o GROUP BY o.station");
  ASSERT_TRUE(agg.ok()) << agg.status().ToString();
  EXPECT_NE(agg->message.find("AggregateMerge"), std::string::npos) << agg->message;
  EXPECT_NE(agg->message.find("PartialAggregate"), std::string::npos) << agg->message;
  EXPECT_NE(agg->message.find("Gather"), std::string::npos) << agg->message;

  auto sort = session.Execute("EXPLAIN SELECT o.id FROM obs o ORDER BY o.id");
  ASSERT_TRUE(sort.ok()) << sort.status().ToString();
  EXPECT_NE(sort->message.find("SortMerge"), std::string::npos) << sort->message;
  EXPECT_NE(sort->message.find("PartialSort"), std::string::npos) << sort->message;

  auto distinct = session.Execute("EXPLAIN SELECT DISTINCT o.note FROM obs o");
  ASSERT_TRUE(distinct.ok()) << distinct.status().ToString();
  EXPECT_NE(distinct->message.find("DistinctMerge"), std::string::npos)
      << distinct->message;
  EXPECT_NE(distinct->message.find("PartialDistinct"), std::string::npos)
      << distinct->message;
}

TEST_F(ParallelAggTest, ExplainAnalyzeReportsPartialMetrics) {
  sql::SqlSession session(engine_.get());
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 2").ok());
  auto out = session.Execute(
      "EXPLAIN ANALYZE SELECT o.station, COUNT(*), SUM(o.reading) FROM obs o "
      "GROUP BY o.station");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->message.find("partial_groups="), std::string::npos) << out->message;
  EXPECT_NE(out->message.find("AggregateMerge"), std::string::npos) << out->message;
}

// TSAN target: hammer the partial-state publish/merge protocol (aggregate,
// distinct, and sort runs) from repeated 8-worker executions so races in
// the shared sinks or the gather handoff surface under ThreadSanitizer.
TEST_F(ParallelAggTest, StressParallelAggregateRepeatedExecution) {
  const std::string agg =
      "SELECT o.station, COUNT(*), SUM(o.temp) FROM obs o GROUP BY o.station";
  const std::string sort = "SELECT o.id FROM obs o ORDER BY o.reading DESC, o.id";
  const std::string distinct = "SELECT DISTINCT o.note FROM obs o";
  std::vector<std::string> agg_serial = Run(agg, 1, 8);
  std::vector<std::string> sort_serial = Run(sort, 1, 8);
  std::vector<std::string> distinct_serial = Run(distinct, 1, 8);
  for (int iteration = 0; iteration < 8; ++iteration) {
    SCOPED_TRACE(iteration);
    EXPECT_EQ(agg_serial, Run(agg, 8, 8));
    EXPECT_EQ(sort_serial, Run(sort, 8, 8));
    EXPECT_EQ(distinct_serial, Run(distinct, 8, 8));
  }
}

}  // namespace
}  // namespace insightnotes
