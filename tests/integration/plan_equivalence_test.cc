// Theorems 1 & 2 of the full paper: with project-before-merge
// normalization, equivalent query plans propagate *identical* summary
// objects. We execute the same query through differently shaped plans and
// compare the captured result snapshots.

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"
#include "core/zoom_in.h"
#include "exec/hash_join.h"
#include "exec/projection.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql/session.h"
#include "testutil.h"

namespace insightnotes {
namespace {

using testutil::EngineFixture;

class PlanEquivalenceTest : public EngineFixture {
 protected:
  void SetUp() override {
    EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
  }

  /// A spread of annotations across kept and dropped columns of both
  /// tables, plus shared ones.
  void SeedAnnotations(uint64_t seed) {
    Random rng(seed);
    const std::vector<std::string> bodies = {
        "found eating stonewort near the shore",
        "signs of influenza infection detected",
        "wingspan and body size measured today",
        "produced by experiment lineage pipeline",
        "why is this measurement so high",
        "general remark about the observation",
    };
    for (int i = 0; i < 40; ++i) {
      std::string table = rng.Bernoulli(0.5) ? "R" : "S";
      rel::RowId row = rng.Uniform(3);
      size_t num_columns = table == "R" ? 4 : 3;
      std::vector<size_t> columns;
      if (rng.Bernoulli(0.6)) columns.push_back(rng.Uniform(num_columns));
      auto id = engine_->Annotate(
          Spec(table, row, bodies[rng.Uniform(bodies.size())], columns));
      ASSERT_TRUE(id.ok());
      // Occasionally share with the other table.
      if (rng.Bernoulli(0.2)) {
        ASSERT_TRUE(
            engine_->AttachAnnotation(*id, table == "R" ? "S" : "R", rng.Uniform(3))
                .ok());
      }
    }
  }

  /// Executes `sql_text` under the given planner options and captures the
  /// result snapshot, with rows canonically keyed by their data values.
  std::map<std::string, std::vector<std::string>> RunAndCapture(
      const std::string& sql_text, bool normalize) {
    sql::PlannerOptions options;
    options.project_before_merge = normalize;
    sql::SqlSession session(engine_.get(), options);
    auto out = session.Execute(sql_text);
    EXPECT_TRUE(out.ok()) << out.status().ToString();
    std::map<std::string, std::vector<std::string>> rendered;
    if (!out.ok()) return rendered;
    auto snapshot =
        core::ResultSnapshot::Capture(out->result.schema, out->result.rows);
    EXPECT_TRUE(snapshot.ok());
    for (const auto& row : snapshot->rows) {
      std::vector<std::string> summaries;
      for (const auto& s : row.summaries) {
        // Canonical form: instance + sorted per-component annotation-id
        // sets. Group order and representative choice are presentation
        // details (merge order dependent); membership is the semantics.
        std::vector<std::string> components;
        for (const auto& c : s.components) {
          std::vector<ann::AnnotationId> ids = c.ids;
          std::sort(ids.begin(), ids.end());
          std::string repr;
          for (auto id : ids) repr += std::to_string(id) + ",";
          components.push_back(std::move(repr));
        }
        std::sort(components.begin(), components.end());
        std::string repr = s.instance + "|";
        for (const auto& c : components) repr += "{" + c + "}";
        summaries.push_back(std::move(repr));
      }
      std::sort(summaries.begin(), summaries.end());
      rendered[row.tuple.ToString()] = std::move(summaries);
    }
    return rendered;
  }
};

TEST_F(PlanEquivalenceTest, NormalizedPlansPropagateIdenticalSummaries) {
  SeedAnnotations(7);
  // The same logical query phrased three ways: explicit narrow projection,
  // reordered FROM list, and reordered WHERE conjuncts.
  auto a = RunAndCapture(
      "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2", true);
  auto b = RunAndCapture(
      "SELECT r.a, r.b, s.z FROM S s, R r WHERE s.x = r.a AND r.b = 2", true);
  auto c = RunAndCapture(
      "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.b = 2 AND s.x = r.a", true);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST_F(PlanEquivalenceTest, DeterministicAcrossRepeatedExecution) {
  SeedAnnotations(11);
  std::string q = "SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x";
  auto first = RunAndCapture(q, true);
  auto second = RunAndCapture(q, true);
  EXPECT_EQ(first, second);
}

TEST_F(PlanEquivalenceTest, NaivePullUpPlanDiffersWhenTrimmingMatters) {
  // The Theorem 1 violation scenario: a shared annotation X sits on r only
  // via the projected-out column r.c, and on s via the kept join column
  // s.x. Under the normalized plan, X's effect on r is trimmed *before*
  // the join, so it cannot bridge r-side and s-side cluster groups. Under
  // the naive pull-up plan, X is still present on both sides when the
  // merge runs, fusing groups that stay fused even after the late trim —
  // a different (and plan-dependent) summary.
  auto x = engine_->Annotate(Spec("R", 0, "alpha beta gamma", {2}));
  ASSERT_TRUE(x.ok());
  ASSERT_TRUE(engine_->AttachAnnotation(*x, "S", 0, {0}).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "alpha beta gamma delta")).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("S", 0, "alpha beta epsilon", {0})).ok());
  std::string q = "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2";
  auto normalized = RunAndCapture(q, true);
  auto naive = RunAndCapture(q, false);
  ASSERT_EQ(normalized.size(), naive.size());
  EXPECT_NE(normalized, naive);
}

TEST_F(PlanEquivalenceTest, TrimmingIsOrderIndependentUnderManySeeds) {
  for (uint64_t seed : {3u, 5u, 9u}) {
    SCOPED_TRACE(seed);
    SeedAnnotations(seed);
    auto a = RunAndCapture(
        "SELECT r.a, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2", true);
    auto b = RunAndCapture(
        "SELECT r.a, s.z FROM S s, R r WHERE r.b = 2 AND r.a = s.x", true);
    EXPECT_EQ(a, b);
  }
}

TEST_F(PlanEquivalenceTest, SingleTableProjectionOrderInvariance) {
  SeedAnnotations(13);
  // Project(Filter(Scan)) vs Filter applied on already-projected columns.
  auto a = RunAndCapture("SELECT r.a FROM R r WHERE r.b = 2", true);
  // Equivalent phrasing with both columns projected then narrowed: the
  // binder resolves r.a identically; summaries must match.
  auto b = RunAndCapture("SELECT r.a FROM R r WHERE r.b = 2 AND 1 = 1", true);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace insightnotes
