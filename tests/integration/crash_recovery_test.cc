// Crash-recovery acceptance suite: a 500-annotation ingest is interrupted
// by scripted faults (transient EIO, torn page writes, hard crash
// cut-offs) at swept operation indices; after reopen + WAL replay the
// annotation store and the maintained summaries must be byte-identical
// (serialized snapshots) to an uninterrupted oracle, and the recovery
// audit must flag every injected torn page.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/summary_instance.h"
#include "exec/index_scan.h"
#include "storage/fault_injection.h"
#include "storage/wal_segments.h"
#include "testutil.h"

namespace insightnotes::core {
namespace {

constexpr size_t kNumAnnotations = 500;
constexpr size_t kNumRows = 10;

// Fault points swept per fault type. Each point is a full
// ingest -> crash -> reopen -> compare cycle, so the sweep samples the op
// range instead of visiting every index.
constexpr size_t kSweepPoints = 10;

std::vector<AnnotateSpec> MakeSpecs() {
  static const char* kThemes[] = {
      "eating stonewort foraging flying migration behavior seen near the reed beds",
      "influenza infection sick parasite disease lesion found on the left wing",
      "size weight wingspan beak feathers anatomy large adult specimen measured",
      "article wikipedia photo link reference misc material filed for later",
  };
  std::vector<AnnotateSpec> specs;
  specs.reserve(kNumAnnotations);
  for (size_t i = 0; i < kNumAnnotations; ++i) {
    AnnotateSpec spec;
    spec.table = "notes";
    spec.row = static_cast<rel::RowId>(i % kNumRows);
    if (i % 3 == 1) spec.columns = {1};
    spec.author = "tester-" + std::to_string(i % 7);
    spec.timestamp = 1437004800 + static_cast<int64_t>(i);
    spec.body = std::string(kThemes[i % 4]) + ". Observation " + std::to_string(i) +
                " with enough trailing detail text to spread the annotation "
                "bodies across many heap-file pages.";
    if (i % 25 == 0) {
      spec.kind = ann::AnnotationKind::kDocument;
      spec.title = "Field report " + std::to_string(i);
      spec.body += " Extended document section follows. " + spec.body;
    }
    specs.push_back(std::move(spec));
  }
  return specs;
}

/// A plain disk that records the kind of every page operation, so the
/// sweeps know which global op indices exist and which of them are writes.
class OpRecordingDiskManager final : public storage::DiskManager {
 public:
  Status ReadPage(storage::PageId id, char* out) override {
    ops.push_back('r');
    return DiskManager::ReadPage(id, out);
  }
  Status WritePage(storage::PageId id, const char* data) override {
    ops.push_back('w');
    return DiskManager::WritePage(id, data);
  }

  std::vector<char> ops;
};

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_path_ = ::testing::TempDir() + "/insightnotes_crash_" +
               std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    RemoveDbFiles();
    specs_ = MakeSpecs();
    oracle_ = BuildOracle(/*with_extras=*/false);
    ASSERT_FALSE(oracle_.empty());
  }
  void TearDown() override { RemoveDbFiles(); }

  /// Removes the page file plus every WAL artifact (segments, manifest,
  /// temp leftovers) — all share the db path as a name prefix.
  void RemoveDbFiles() { RemoveFilesWithPrefix(db_path_); }

  static void RemoveFilesWithPrefix(const std::string& prefix) {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir = fs::path(prefix).parent_path();
    const std::string stem = fs::path(prefix).filename().string();
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      const std::string name = it->path().filename().string();
      if (name.rfind(stem, 0) == 0) {
        std::error_code remove_ec;
        fs::remove(it->path(), remove_ec);
      }
    }
  }

  /// Copies the page file + WAL artifacts to a sibling path prefix, so one
  /// crashed database can be recovered several times from identical bytes.
  static void CopyDbFiles(const std::string& from, const std::string& to) {
    namespace fs = std::filesystem;
    RemoveFilesWithPrefix(to);
    std::error_code ec;
    fs::path dir = fs::path(from).parent_path();
    const std::string stem = fs::path(from).filename().string();
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      const std::string name = it->path().filename().string();
      if (name.rfind(stem, 0) == 0) {
        std::error_code copy_ec;
        fs::copy_file(it->path(), fs::path(to + name.substr(stem.size())),
                      fs::copy_options::overwrite_existing, copy_ec);
        ASSERT_FALSE(copy_ec) << "copying " << name << ": " << copy_ec.message();
      }
    }
  }

  /// Total bytes of every WAL artifact (segments + manifest).
  uintmax_t WalBytes() const {
    namespace fs = std::filesystem;
    uintmax_t total = 0;
    std::error_code ec;
    fs::path dir = fs::path(db_path_).parent_path();
    const std::string stem = fs::path(db_path_).filename().string() + ".wal";
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      const std::string name = it->path().filename().string();
      if (name.rfind(stem, 0) == 0) {
        std::error_code size_ec;
        uintmax_t size = fs::file_size(it->path(), size_ec);
        if (!size_ec) total += size;
      }
    }
    return total;
  }

  static std::string ReadFileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
  }

  EngineOptions FileBackedOptions(std::shared_ptr<storage::DiskManager> disk = nullptr,
                                  bool open_existing = false) {
    EngineOptions options;
    options.db_path = db_path_;
    options.buffer_pool_pages = 8;  // Small pool: ingest must do real I/O.
    options.open_existing = open_existing;
    options.disk = std::move(disk);
    options.io_retry.sleep = [](int64_t) {};  // Backoff without wall-clock cost.
    return options;
  }

  /// Creates the notes table (10 rows), a trained classifier and a snippet
  /// instance, and links both. Run after Init (and after recovery replay:
  /// schema and instances are configuration, not WAL state).
  void SetupDatabase(Engine* engine) {
    ASSERT_TRUE(engine
                    ->CreateTable("notes",
                                  rel::Schema({{"id", rel::ValueType::kInt64, "notes"},
                                               {"label", rel::ValueType::kString, "notes"}}))
                    .ok());
    for (size_t i = 0; i < kNumRows; ++i) {
      auto row = engine->Insert("notes", rel::Tuple({testutil::I(static_cast<int64_t>(i)),
                                                     testutil::S("row" + std::to_string(i))}));
      ASSERT_TRUE(row.ok());
      ASSERT_EQ(*row, static_cast<rel::RowId>(i));
    }

    auto classifier = SummaryInstance::MakeClassifier(
        "BirdClass", {"Behavior", "Disease", "Anatomy", "Other"});
    auto* nb = classifier->classifier();
    ASSERT_TRUE(nb->Train(0, "eating stonewort foraging flying migration behavior").ok());
    ASSERT_TRUE(nb->Train(1, "influenza infection sick parasite disease lesion").ok());
    ASSERT_TRUE(nb->Train(2, "size weight wingspan beak feathers anatomy large").ok());
    ASSERT_TRUE(nb->Train(3, "article wikipedia photo link reference misc").ok());
    ASSERT_TRUE(engine->RegisterInstance(std::move(classifier)).ok());

    mining::SnippetOptions snippet_opts;
    snippet_opts.max_sentences = 1;
    snippet_opts.max_chars = 120;
    ASSERT_TRUE(
        engine->RegisterInstance(SummaryInstance::MakeSnippet("Snippets", snippet_opts)).ok());

    ASSERT_TRUE(engine->LinkInstance("BirdClass", "notes").ok());
    ASSERT_TRUE(engine->LinkInstance("Snippets", "notes").ok());
  }

  /// Post-batch mutations exercising the Attach and Archive WAL records.
  void ApplyExtras(Engine* engine) {
    ASSERT_TRUE(engine->AttachAnnotation(0, "notes", 5, {0}).ok());
    ASSERT_TRUE(engine->ArchiveAnnotation(7).ok());
  }

  /// Serializes everything recovery must reproduce: every stored
  /// annotation (all fields + regions + archived flag) and the rendered
  /// summary objects of every row.
  std::string Snapshot(Engine* engine) {
    std::ostringstream out;
    auto* store = engine->annotations();
    out << "annotations=" << store->NumAnnotations()
        << " attachments=" << store->NumAttachments() << "\n";
    for (ann::AnnotationId id = 0; id < store->NumAnnotations(); ++id) {
      auto note = store->Get(id);
      if (!note.ok()) {
        out << id << "|ERROR " << note.status().ToString() << "\n";
        continue;
      }
      out << id << "|" << static_cast<int>(note->kind) << "|" << note->author << "|"
          << note->timestamp << "|" << note->title << "|" << note->body << "|"
          << note->archived;
      auto regions = store->RegionsOf(id);
      if (regions.ok()) {
        for (const ann::CellRegion& region : *regions) {
          out << "|" << region.table << ":" << region.row << ":";
          for (size_t column : region.columns) out << column << ",";
        }
      }
      out << "\n";
    }
    auto table = engine->catalog()->GetTable("notes");
    if (table.ok()) {
      for (rel::RowId row = 0; row < static_cast<rel::RowId>(kNumRows); ++row) {
        auto summaries = engine->summaries()->SummariesFor((*table)->id(), row);
        if (!summaries.ok()) {
          out << "row " << row << ": ERROR " << summaries.status().ToString() << "\n";
          continue;
        }
        for (const auto& object : *summaries) {
          out << "row " << row << ": " << object->Render() << "\n";
        }
      }
    }
    return out.str();
  }

  /// Uninterrupted in-memory run of the same workload: the ground truth
  /// every faulted run must converge back to.
  std::string BuildOracle(bool with_extras) {
    Engine engine;  // In-memory: no page file, no WAL.
    EXPECT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    if (::testing::Test::HasFatalFailure()) return "";
    auto ids = engine.AnnotateBatch(specs_);
    EXPECT_TRUE(ids.ok());
    if (with_extras) ApplyExtras(&engine);
    return Snapshot(&engine);
  }

  /// Clean file-backed run on a recording disk: yields the deterministic
  /// op-index range [batch_begin, batch_end) of the ingest and the op
  /// kinds, which the fault sweeps sample.
  void ProbeOpStream(std::vector<char>* ops, uint64_t* batch_begin, uint64_t* batch_end) {
    RemoveDbFiles();
    auto disk = std::make_shared<OpRecordingDiskManager>();
    Engine engine(FileBackedOptions(disk));
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    *batch_begin = disk->ops.size();
    auto ids = engine.AnnotateBatch(specs_);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    *batch_end = disk->ops.size();
    ASSERT_GT(*batch_end, *batch_begin)
        << "ingest produced no disk I/O; shrink the buffer pool";
    *ops = disk->ops;
  }

  static std::vector<uint64_t> SamplePoints(const std::vector<uint64_t>& candidates) {
    std::vector<uint64_t> points;
    if (candidates.empty()) return points;
    size_t stride = std::max<size_t>(1, candidates.size() / kSweepPoints);
    for (size_t i = 0; i < candidates.size(); i += stride) points.push_back(candidates[i]);
    if (points.back() != candidates.back()) points.push_back(candidates.back());
    return points;
  }

  /// Reopens the database after a simulated crash and checks the recovered
  /// state against the oracle. Returns the recovery report for
  /// fault-specific assertions.
  RecoveryReport RecoverAndCompare(const std::string& context) {
    Engine engine(FileBackedOptions(nullptr, /*open_existing=*/true));
    EXPECT_TRUE(engine.Init().ok()) << context;
    EXPECT_TRUE(engine.recovery().performed) << context;
    EXPECT_EQ(engine.recovery().wal_records_replayed, kNumAnnotations) << context;
    SetupDatabase(&engine);  // Link() re-summarizes the replayed annotations.
    EXPECT_EQ(Snapshot(&engine), oracle_) << context;
    EXPECT_TRUE(engine.Checkpoint().ok()) << context;
    return engine.recovery();
  }

  std::string db_path_;
  std::vector<AnnotateSpec> specs_;
  std::string oracle_;
};

TEST_F(CrashRecoveryTest, TransientFaultsAreAbsorbedByRetry) {
  std::vector<char> ops;
  uint64_t begin = 0, end = 0;
  ProbeOpStream(&ops, &begin, &end);

  std::vector<uint64_t> candidates;
  for (uint64_t k = begin; k < end; ++k) candidates.push_back(k);
  for (uint64_t k : SamplePoints(candidates)) {
    SCOPED_TRACE("transient EIO at op " + std::to_string(k));
    RemoveDbFiles();
    auto disk = std::make_shared<storage::FaultInjectingDiskManager>();
    Engine engine(FileBackedOptions(disk));
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    disk->FailOnceAt(storage::IoOpKind::kAny, k);

    // The retry layer absorbs the fault: ingest completes and the engine
    // state matches the oracle with no recovery involved.
    auto ids = engine.AnnotateBatch(specs_);
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    EXPECT_EQ(ids->size(), kNumAnnotations);
    EXPECT_EQ(disk->faults_injected(), 1u);
    EXPECT_EQ(Snapshot(&engine), oracle_);
    EXPECT_TRUE(engine.Checkpoint().ok());
  }
}

TEST_F(CrashRecoveryTest, HardCrashRecoversFromWalReplay) {
  std::vector<char> ops;
  uint64_t begin = 0, end = 0;
  ProbeOpStream(&ops, &begin, &end);

  std::vector<uint64_t> candidates;
  for (uint64_t k = begin; k < end; ++k) candidates.push_back(k);
  for (uint64_t k : SamplePoints(candidates)) {
    SCOPED_TRACE("hard crash at op " + std::to_string(k));
    RemoveDbFiles();
    auto disk = std::make_shared<storage::FaultInjectingDiskManager>();
    auto* faults = disk.get();
    {
      // The engine takes sole ownership: destroying it closes the disk and
      // flushes whatever the "crashed" process had managed to write.
      Engine engine(FileBackedOptions(std::move(disk)));
      ASSERT_TRUE(engine.Init().ok());
      SetupDatabase(&engine);
      faults->CrashAtOp(k);
      // The batch was WAL-committed before the first store mutation, so the
      // crash loses no annotations; the ingest itself fails.
      auto ids = engine.AnnotateBatch(specs_);
      EXPECT_FALSE(ids.ok());
      EXPECT_TRUE(faults->crashed());
      // The destructor's best-effort checkpoint also hits the dead disk; it
      // must degrade to a logged error, not a crash.
    }
    RecoverAndCompare("crash at op " + std::to_string(k));
  }
}

TEST_F(CrashRecoveryTest, TornPageWritesAreFlaggedAndRecovered) {
  std::vector<char> ops;
  uint64_t begin = 0, end = 0;
  ProbeOpStream(&ops, &begin, &end);

  std::vector<uint64_t> write_indices;
  for (uint64_t k = begin; k < end; ++k) {
    if (ops[k] == 'w') write_indices.push_back(k);
  }
  ASSERT_FALSE(write_indices.empty());
  for (uint64_t k : SamplePoints(write_indices)) {
    SCOPED_TRACE("torn write at op " + std::to_string(k));
    RemoveDbFiles();
    auto disk = std::make_shared<storage::FaultInjectingDiskManager>();
    auto* faults = disk.get();
    {
      Engine engine(FileBackedOptions(std::move(disk)));
      ASSERT_TRUE(engine.Init().ok());
      SetupDatabase(&engine);
      // Tear the page at op k, keeping only the stamped checksum word and
      // a sliver of the header — the appended record bytes near the page
      // tail are lost, so the stored checksum cannot match. The crash at
      // k+1 kills the retry that would otherwise heal the page, so the
      // tear survives to the reopen.
      faults->TearWriteAt(k, /*keep_bytes=*/64);
      faults->CrashAtOp(k + 1);
      auto ids = engine.AnnotateBatch(specs_);
      EXPECT_FALSE(ids.ok());
    }
    RecoveryReport report = RecoverAndCompare("torn write at op " + std::to_string(k));
    // The checksum audit must flag the injected torn page.
    EXPECT_GE(report.corrupt_pages, 1u);
    EXPECT_GT(report.pages_scanned, 0u);
  }
}

TEST_F(CrashRecoveryTest, CleanShutdownReopensWithoutCorruption) {
  std::string oracle_with_extras = BuildOracle(/*with_extras=*/true);
  ASSERT_FALSE(oracle_with_extras.empty());

  RemoveDbFiles();
  {
    Engine engine(FileBackedOptions());
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    auto ids = engine.AnnotateBatch(specs_);
    ASSERT_TRUE(ids.ok());
    ApplyExtras(&engine);
    ASSERT_TRUE(engine.Checkpoint().ok());
  }

  Engine engine(FileBackedOptions(nullptr, /*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(engine.recovery().performed);
  // 500 adds + 1 attach + 1 archive.
  EXPECT_EQ(engine.recovery().wal_records_replayed, kNumAnnotations + 2);
  EXPECT_EQ(engine.recovery().corrupt_pages, 0u);
  EXPECT_GT(engine.recovery().pages_scanned, 0u);
  EXPECT_EQ(engine.recovery().wal_bytes_truncated, 0u);
  SetupDatabase(&engine);
  EXPECT_EQ(Snapshot(&engine), oracle_with_extras);
}

// Background compaction keeps the segmented log bounded: superseded
// records pile up in sealed segments, and the pass a checkpoint schedules
// retires them while the engine keeps running.
TEST_F(CrashRecoveryTest, CheckpointCompactionKeepsWalBounded) {
  RemoveDbFiles();
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 20);
  EngineOptions options = FileBackedOptions();
  options.wal_segment_bytes = 512;  // Tiny segments: rotation is frequent.
  Engine engine(options);
  ASSERT_TRUE(engine.Init().ok());
  SetupDatabase(&engine);
  ASSERT_TRUE(engine.AnnotateBatch(specs).ok());
  ApplyExtras(&engine);
  // Re-archiving an archived annotation logs a record that is dead on
  // arrival; a few hundred of them fill whole segments with garbage.
  for (int i = 0; i < 200; ++i) ASSERT_TRUE(engine.ArchiveAnnotation(7).ok());
  uintmax_t bytes_before = WalBytes();

  ASSERT_TRUE(engine.Checkpoint().ok());
  engine.WaitForWalCompaction();
  WalCompactionStats stats = engine.wal_compaction();
  EXPECT_GE(stats.compactions, 1u);
  EXPECT_GE(stats.segments_retired, 1u);
  EXPECT_GE(stats.records_dropped, 100u);
  EXPECT_EQ(stats.failures, 0u);
  // The retired garbage is actually gone from disk.
  EXPECT_LT(WalBytes(), bytes_before);

  // With no new mutations, further checkpoints converge: each marker kills
  // its predecessor, so the live set — and the bytes holding it — stops
  // growing once the dead segments are retired.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(engine.Checkpoint().ok());
    engine.WaitForWalCompaction();
  }
  EXPECT_EQ(engine.wal_compaction().failures, 0u);
  EXPECT_LT(WalBytes(), bytes_before);
}

// The compacted log must reproduce per-row attachment order, which
// cross-row attaches make different from annotation-id order.
TEST_F(CrashRecoveryTest, CompactedWalReplaysInterleavedAttachOrder) {
  RemoveDbFiles();
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 30);
  auto mutate = [&](Engine* engine) {
    ASSERT_TRUE(engine->AnnotateBatch(specs).ok());
    // Row 1 now holds annotations in order {1, 11, 21, 20, 3}: the last two
    // attached out of id order, and 3 as a whole-row region.
    ASSERT_TRUE(engine->AttachAnnotation(20, "notes", 1, {0}).ok());
    ASSERT_TRUE(engine->AttachAnnotation(3, "notes", 1).ok());
    ASSERT_TRUE(engine->AttachAnnotation(15, "notes", 2, {1}).ok());
    ASSERT_TRUE(engine->ArchiveAnnotation(4).ok());
  };
  {
    EngineOptions options = FileBackedOptions();
    options.wal_segment_bytes = 512;  // Force rotation so compaction has work.
    Engine engine(options);
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    mutate(&engine);
    ASSERT_TRUE(engine.Checkpoint().ok());
    engine.WaitForWalCompaction();
    ASSERT_TRUE(engine.Checkpoint().ok());  // The new marker retires the old.
    engine.WaitForWalCompaction();
  }
  Engine engine(FileBackedOptions(nullptr, /*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(engine.recovery().performed);
  SetupDatabase(&engine);
  Engine oracle;
  ASSERT_TRUE(oracle.Init().ok());
  SetupDatabase(&oracle);
  mutate(&oracle);
  EXPECT_EQ(Snapshot(&engine), Snapshot(&oracle));
}

// Compaction is an option: disabling it restores the append-only marker
// behavior, and recovery still converges to the same state.
TEST_F(CrashRecoveryTest, CompactionCanBeDisabled) {
  RemoveDbFiles();
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 20);
  EngineOptions options = FileBackedOptions();
  options.compact_wal_on_checkpoint = false;
  {
    Engine engine(options);
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    ASSERT_TRUE(engine.AnnotateBatch(specs).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
    engine.WaitForWalCompaction();
    EXPECT_EQ(engine.wal_compaction().compactions, 0u);
    uintmax_t size_after_first = WalBytes();
    // Without compaction every checkpoint appends another marker record.
    ASSERT_TRUE(engine.Checkpoint().ok());
    engine.WaitForWalCompaction();
    EXPECT_EQ(engine.wal_compaction().compactions, 0u);
    EXPECT_GT(WalBytes(), size_after_first);
  }
  EngineOptions reopen = FileBackedOptions(nullptr, /*open_existing=*/true);
  reopen.compact_wal_on_checkpoint = false;
  Engine engine(reopen);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_EQ(engine.recovery().wal_records_replayed, specs.size());
  SetupDatabase(&engine);
  Engine oracle;
  ASSERT_TRUE(oracle.Init().ok());
  SetupDatabase(&oracle);
  ASSERT_TRUE(oracle.AnnotateBatch(specs).ok());
  EXPECT_EQ(Snapshot(&engine), Snapshot(&oracle));
}

// A transient store-apply failure must never make the database
// unrecoverable: the WAL-committed-but-unapplied record poisons the
// engine (further mutations are refused, so no later record can collide
// with its dense id), and the next reopen replays it back into the store.
TEST_F(CrashRecoveryTest, FailedStoreApplyPoisonsEngineUntilRecovery) {
  RemoveDbFiles();
  auto disk = std::make_shared<storage::FaultInjectingDiskManager>();
  auto* faults = disk.get();
  EngineOptions options = FileBackedOptions(disk);
  options.io_retry.max_attempts = 1;  // One injected EIO defeats the retry layer.
  std::vector<AnnotateSpec> committed;
  {
    Engine engine(options);
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    // Annotate with a one-shot EIO armed at the next disk op until one
    // lands inside the store apply itself (faults that hit validation
    // reads fail before the WAL append; faults that hit summary
    // maintenance fail after the store grew — both leave the engine live).
    bool poisoned = false;
    for (size_t i = 0; i < 200 && !poisoned; ++i) {
      faults->FailOnceAt(storage::IoOpKind::kAny, faults->op_count());
      size_t before = engine.annotations()->NumAnnotations();
      auto id = engine.Annotate(specs_[i]);
      if (engine.requires_recovery()) {
        ASSERT_FALSE(id.ok());
        committed.push_back(specs_[i]);  // Committed to the WAL, unapplied.
        poisoned = true;
      } else if (id.ok() || engine.annotations()->NumAnnotations() > before) {
        committed.push_back(specs_[i]);
      }
    }
    ASSERT_TRUE(poisoned) << "no injected fault ever landed in a store apply";
    faults->Reset();
    // Even with the disk healed, the poisoned engine refuses mutations: a
    // new record would reuse the unapplied record's id and wreck replay.
    EXPECT_FALSE(engine.Annotate(specs_[0]).ok());
    std::vector<AnnotateSpec> one(specs_.begin(), specs_.begin() + 1);
    EXPECT_FALSE(engine.AnnotateBatch(one).ok());
    EXPECT_FALSE(engine.AttachAnnotation(0, "notes", 1).ok());
    EXPECT_FALSE(engine.ArchiveAnnotation(0).ok());
  }

  Engine engine(FileBackedOptions(nullptr, /*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok()) << "recovery after a failed apply must succeed";
  EXPECT_EQ(engine.recovery().wal_records_replayed, committed.size());
  SetupDatabase(&engine);
  Engine oracle;
  ASSERT_TRUE(oracle.Init().ok());
  SetupDatabase(&oracle);
  for (const AnnotateSpec& spec : committed) {
    ASSERT_TRUE(oracle.Annotate(spec).ok());
  }
  EXPECT_EQ(Snapshot(&engine), Snapshot(&oracle));
  EXPECT_FALSE(engine.requires_recovery());
}

// A recovery that fails (here: a WAL whose magic rotted) must leave the
// page file — the only other copy of the annotation bodies — exactly as
// it found it, instead of truncating it before the log was validated.
TEST_F(CrashRecoveryTest, FailedReplayRestoresThePageFile) {
  RemoveDbFiles();
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 50);
  {
    Engine engine(FileBackedOptions());
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    ASSERT_TRUE(engine.AnnotateBatch(specs).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  std::string before = ReadFileBytes(db_path_);
  ASSERT_FALSE(before.empty());

  {
    const std::string segment =
        storage::SegmentedWal::SegmentPathFor(db_path_ + ".wal", 1);
    std::FILE* f = std::fopen(segment.c_str(), "rb+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite("GARBAGE!", 1, 8, f), 8u);
    ASSERT_EQ(std::fclose(f), 0);
  }
  {
    Engine engine(FileBackedOptions(nullptr, /*open_existing=*/true));
    Status status = engine.Init();
    ASSERT_TRUE(status.IsCorruption()) << status.ToString();
  }
  EXPECT_EQ(ReadFileBytes(db_path_), before);
  EXPECT_FALSE(std::filesystem::exists(db_path_ + ".recovering"));
}

// A crash in the middle of recovery leaves the original page file parked
// at db_path + ".recovering"; the next open must adopt it and finish the
// job rather than treat the database as fresh (which would truncate the
// WAL and lose everything).
TEST_F(CrashRecoveryTest, InterruptedRecoveryAdoptsParkedPageFile) {
  RemoveDbFiles();
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 50);
  {
    Engine engine(FileBackedOptions());
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    ASSERT_TRUE(engine.AnnotateBatch(specs).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  std::filesystem::rename(db_path_, db_path_ + ".recovering");

  Engine engine(FileBackedOptions(nullptr, /*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(engine.recovery().performed);
  EXPECT_EQ(engine.recovery().wal_records_replayed, specs.size());
  EXPECT_FALSE(std::filesystem::exists(db_path_ + ".recovering"));
  SetupDatabase(&engine);
  Engine oracle;
  ASSERT_TRUE(oracle.Init().ok());
  SetupDatabase(&oracle);
  ASSERT_TRUE(oracle.AnnotateBatch(specs).ok());
  EXPECT_EQ(Snapshot(&engine), Snapshot(&oracle));
}

// Crash-point sweep for segment rotation, background compaction, and the
// manifest/retire swaps: the segmented log is killed at EVERY scripted op
// of its fault schedule. All state-changing mutations happen before the
// hook is armed; the hooked phase appends only dead-on-arrival duplicate
// archives (logical no-ops), rotates, checkpoints and compacts — so
// whatever the crash point, the acknowledged history replays to the same
// oracle state. Closes the crash windows the segmented log introduced.
TEST_F(CrashRecoveryTest, CompactionCrashSweepRecoversAtEveryOp) {
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 20);
  Engine memory_oracle;
  ASSERT_TRUE(memory_oracle.Init().ok());
  SetupDatabase(&memory_oracle);
  ASSERT_TRUE(memory_oracle.AnnotateBatch(specs).ok());
  ApplyExtras(&memory_oracle);
  std::string expected = Snapshot(&memory_oracle);

  EngineOptions options = FileBackedOptions();
  options.wal_segment_bytes = 256;  // Tiny segments: rotation + compaction fire.

  auto ingest = [&](Engine* engine) {
    SetupDatabase(engine);
    if (::testing::Test::HasFatalFailure()) return;
    ASSERT_TRUE(engine->AnnotateBatch(specs).ok());
    ApplyExtras(engine);
    // Settle into a deterministic compacted state before the hook arms.
    ASSERT_TRUE(engine->Checkpoint().ok());
    engine->WaitForWalCompaction();
  };
  auto hooked_phase = [](Engine* engine) {
    // Duplicate archives fill segments with dead-on-arrival records that
    // the checkpoint's compaction pass will want to retire. Once the
    // sweep's kill fires, the log refuses writes and these calls (and the
    // checkpoint) fail — expected, hence no status assertions.
    for (int i = 0; i < 40; ++i) engine->ArchiveAnnotation(7).ok();
    engine->Checkpoint().ok();
    engine->WaitForWalCompaction();
  };

  // Probe pass: record the deterministic op schedule with a hook that
  // never fails, so the sweep below can kill each index exactly once.
  // Rotation ops fire on the engine thread mid-loop; compaction, manifest
  // and retire ops fire on the background thread while the engine waits.
  std::vector<std::string> op_names;
  {
    RemoveDbFiles();
    Engine engine(options);
    ASSERT_TRUE(engine.Init().ok());
    ingest(&engine);
    std::mutex names_mutex;
    engine.wal()->SetFaultHook([&op_names, &names_mutex](const char* op) {
      std::lock_guard<std::mutex> lock(names_mutex);
      op_names.emplace_back(op);
      return Status::OK();
    });
    hooked_phase(&engine);
    engine.wal()->SetFaultHook(nullptr);
  }
  auto seen = [&](const char* name) {
    return std::find(op_names.begin(), op_names.end(), name) != op_names.end();
  };
  ASSERT_TRUE(seen("rotate_create")) << "no rotation fired under the hook";
  ASSERT_TRUE(seen("rotate_dir_fsync"));
  ASSERT_TRUE(seen("manifest_rename"));
  ASSERT_TRUE(seen("manifest_dir_fsync"));
  ASSERT_TRUE(seen("compact_read")) << "no compaction pass fired under the hook";
  ASSERT_TRUE(seen("retire_remove"));
  ASSERT_TRUE(seen("retire_dir_fsync"));

  for (size_t kill = 0; kill < op_names.size(); ++kill) {
    SCOPED_TRACE("crash at scripted op " + std::to_string(kill) + " (" +
                 op_names[kill] + ")");
    RemoveDbFiles();
    {
      Engine engine(options);
      ASSERT_TRUE(engine.Init().ok());
      ingest(&engine);
      std::atomic<size_t> fired{0};
      engine.wal()->SetFaultHook([&fired, kill](const char* op) -> Status {
        if (fired.fetch_add(1, std::memory_order_relaxed) == kill) {
          return Status::IoError(std::string("simulated crash at ") + op);
        }
        return Status::OK();
      });
      hooked_phase(&engine);
      engine.wal()->SetFaultHook(nullptr);
      EXPECT_TRUE(engine.wal()->failed());
      // The destructor's best-effort checkpoint on the dead log degrades
      // to a logged error.
    }
    EngineOptions reopen = options;
    reopen.open_existing = true;
    Engine engine(reopen);
    ASSERT_TRUE(engine.Init().ok());
    EXPECT_TRUE(engine.recovery().performed);
    SetupDatabase(&engine);
    EXPECT_EQ(Snapshot(&engine), expected);
    // The reopened log checkpoints and compacts cleanly, retiring whatever
    // garbage the crash stranded.
    EXPECT_TRUE(engine.Checkpoint().ok());
    engine.WaitForWalCompaction();
    EXPECT_EQ(engine.wal_compaction().failures, 0u);
  }
}

// Parallel WAL replay is an implementation detail: at any parallelism the
// recovered store and summaries must be byte-identical to the serial
// replay, the chain partition must be stable, and the report must say how
// many workers ran.
TEST_F(CrashRecoveryTest, ParallelRecoveryMatchesSerialReplay) {
  RemoveDbFiles();
  std::string oracle_with_extras = BuildOracle(/*with_extras=*/true);
  ASSERT_FALSE(oracle_with_extras.empty());
  {
    Engine engine(FileBackedOptions());
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    ASSERT_TRUE(engine.AnnotateBatch(specs_).ok());
    ApplyExtras(&engine);
    ASSERT_TRUE(engine.Checkpoint().ok());
    engine.WaitForWalCompaction();
  }

  uint64_t parallel_chains = 0;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
    SCOPED_TRACE("recovery_threads=" + std::to_string(threads));
    // Replay a byte-identical copy each time: recovering mutates the files.
    const std::string copy_path = ::testing::TempDir() + "/insightnotes_parrec_" +
                                  std::to_string(reinterpret_cast<uintptr_t>(this)) +
                                  "_" + std::to_string(threads) + ".db";
    CopyDbFiles(db_path_, copy_path);
    if (::testing::Test::HasFatalFailure()) return;
    EngineOptions options = FileBackedOptions(nullptr, /*open_existing=*/true);
    options.db_path = copy_path;
    options.recovery_threads = threads;
    {
      Engine engine(options);
      ASSERT_TRUE(engine.Init().ok());
      EXPECT_TRUE(engine.recovery().performed);
      // 500 adds + 1 attach + 1 archive; markers don't count.
      EXPECT_EQ(engine.recovery().wal_records_replayed, kNumAnnotations + 2);
      EXPECT_EQ(engine.recovery().replay_threads, threads);
      if (threads == 1) {
        // Serial replay applies the log as one chain.
        EXPECT_EQ(engine.recovery().replay_chains, 1u);
      } else {
        // The 10 rows partition the log into per-row chains (the cross-row
        // attach merges two of them); the partition is a pure function of
        // the log, so every parallel run sees the same count.
        EXPECT_GE(engine.recovery().replay_chains, 2u);
        if (parallel_chains == 0) {
          parallel_chains = engine.recovery().replay_chains;
        } else {
          EXPECT_EQ(engine.recovery().replay_chains, parallel_chains);
        }
      }
      SetupDatabase(&engine);
      EXPECT_EQ(Snapshot(&engine), oracle_with_extras);
    }
    RemoveFilesWithPrefix(copy_path);
  }
}

// A failed background pass must not advance the "log is compact"
// accounting: it counts as a failure, retires nothing, and leaves the
// candidate segment on disk so the next checkpoint retries it.
TEST_F(CrashRecoveryTest, FailedCompactionKeepsSegmentForRetry) {
  RemoveDbFiles();
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 20);
  Engine memory_oracle;
  ASSERT_TRUE(memory_oracle.Init().ok());
  SetupDatabase(&memory_oracle);
  ASSERT_TRUE(memory_oracle.AnnotateBatch(specs).ok());
  ApplyExtras(&memory_oracle);
  std::string expected = Snapshot(&memory_oracle);

  EngineOptions options = FileBackedOptions();
  options.wal_segment_bytes = 256;
  const std::string wal_base = db_path_ + ".wal";
  std::vector<uint64_t> dead_segments;
  {
    Engine engine(options);
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    ASSERT_TRUE(engine.AnnotateBatch(specs).ok());
    ApplyExtras(&engine);
    // Duplicate archives: dead-on-arrival records that fill whole sealed
    // segments with garbage compaction will want to retire.
    for (int i = 0; i < 80; ++i) ASSERT_TRUE(engine.ArchiveAnnotation(7).ok());
    for (const auto& s : engine.wal()->Segments()) {
      if (!s.active && s.records > 0 && s.dead == s.records) {
        dead_segments.push_back(s.id);
      }
    }
    ASSERT_FALSE(dead_segments.empty()) << "no fully-dead sealed segment formed";

    engine.wal()->SetFaultHook([](const char* op) -> Status {
      if (std::string(op) == "compact_read") {
        return Status::IoError("simulated crash reading the candidate");
      }
      return Status::OK();
    });
    ASSERT_TRUE(engine.Checkpoint().ok());  // The marker lands; the pass dies.
    engine.WaitForWalCompaction();
    WalCompactionStats stats = engine.wal_compaction();
    EXPECT_GE(stats.failures, 1u);
    EXPECT_EQ(stats.compactions, 0u);
    EXPECT_EQ(stats.segments_retired, 0u);
    EXPECT_EQ(stats.records_dropped, 0u);
  }

  // Nothing was retired: the candidate segments are still on disk.
  for (uint64_t id : dead_segments) {
    EXPECT_TRUE(std::filesystem::exists(
        storage::SegmentedWal::SegmentPathFor(wal_base, id)))
        << "segment " << id;
  }

  EngineOptions reopen = options;
  reopen.open_existing = true;
  Engine engine(reopen);
  ASSERT_TRUE(engine.Init().ok());
  SetupDatabase(&engine);
  EXPECT_EQ(Snapshot(&engine), expected);
  // Replay re-derived the liveness, so this checkpoint retries — and
  // retires — the very segments the failed pass left behind.
  ASSERT_TRUE(engine.Checkpoint().ok());
  engine.WaitForWalCompaction();
  EXPECT_EQ(engine.wal_compaction().failures, 0u);
  EXPECT_GE(engine.wal_compaction().segments_retired, dead_segments.size());
  for (uint64_t id : dead_segments) {
    EXPECT_FALSE(std::filesystem::exists(
        storage::SegmentedWal::SegmentPathFor(wal_base, id)))
        << "segment " << id;
  }
}

// Checkpoint schedules compaction and returns without waiting for it: a
// stalled background pass must block neither the checkpoint call nor
// concurrent mutations. (A blocking checkpoint would deadlock here, so
// the test completing at all is the assertion.)
TEST_F(CrashRecoveryTest, CheckpointReturnsWhileCompactionRuns) {
  RemoveDbFiles();
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 20);
  EngineOptions options = FileBackedOptions();
  options.wal_segment_bytes = 256;
  Engine engine(options);
  ASSERT_TRUE(engine.Init().ok());
  SetupDatabase(&engine);
  ASSERT_TRUE(engine.AnnotateBatch(specs).ok());
  ApplyExtras(&engine);
  for (int i = 0; i < 80; ++i) ASSERT_TRUE(engine.ArchiveAnnotation(7).ok());

  std::atomic<bool> stalled{false};
  std::atomic<bool> release{false};
  engine.wal()->SetFaultHook([&stalled, &release](const char* op) -> Status {
    if (std::string(op) == "compact_read" && !release.load()) {
      stalled.store(true);
      while (!release.load()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    return Status::OK();
  });
  ASSERT_TRUE(engine.Checkpoint().ok());  // Returns while the pass is held.
  while (!stalled.load()) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // The pass has not finished, yet the engine keeps accepting mutations.
  EXPECT_EQ(engine.wal_compaction().compactions, 0u);
  ASSERT_TRUE(engine.ArchiveAnnotation(7).ok());
  release.store(true);
  engine.WaitForWalCompaction();
  EXPECT_GE(engine.wal_compaction().compactions, 1u);
  EXPECT_EQ(engine.wal_compaction().failures, 0u);
  engine.wal()->SetFaultHook(nullptr);
}

// The park rename that moves the page file aside at the start of recovery
// is followed by a parent-directory fsync through the DiskManager seam; a
// fault injected there must fail Init and leave the page file restored
// byte-identical, ready for a clean retry.
TEST_F(CrashRecoveryTest, ParkDirFsyncFaultRestoresPageFile) {
  RemoveDbFiles();
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 30);
  {
    Engine engine(FileBackedOptions());
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    ASSERT_TRUE(engine.AnnotateBatch(specs).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
  }
  std::string before = ReadFileBytes(db_path_);
  ASSERT_FALSE(before.empty());

  {
    auto disk = std::make_shared<storage::FaultInjectingDiskManager>();
    // Arm a directory-fsync fault at every op index: the first FsyncDir
    // call — the park rename's — trips it whatever its position.
    for (uint64_t k = 0; k < 1 << 14; ++k) {
      disk->FailOnceAt(storage::IoOpKind::kDirFsync, k);
    }
    Engine engine(FileBackedOptions(disk, /*open_existing=*/true));
    Status status = engine.Init();
    ASSERT_FALSE(status.ok());
    EXPECT_GE(disk->faults_injected(), 1u);
  }
  EXPECT_EQ(ReadFileBytes(db_path_), before);
  EXPECT_FALSE(std::filesystem::exists(db_path_ + ".recovering"));

  // With the disk healed, recovery completes and matches the oracle.
  Engine engine(FileBackedOptions(nullptr, /*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_EQ(engine.recovery().wal_records_replayed, specs.size());
  SetupDatabase(&engine);
  Engine oracle;
  ASSERT_TRUE(oracle.Init().ok());
  SetupDatabase(&oracle);
  ASSERT_TRUE(oracle.AnnotateBatch(specs).ok());
  EXPECT_EQ(Snapshot(&engine), Snapshot(&oracle));
}

// A database from the single-file WAL era (one `<db>.wal`, no manifest)
// must be adopted in place: the file becomes segment 1, a manifest is
// written, and replay proceeds as usual.
TEST_F(CrashRecoveryTest, LegacySingleFileWalIsMigrated) {
  RemoveDbFiles();
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 30);
  {
    Engine engine(FileBackedOptions());
    ASSERT_TRUE(engine.Init().ok());
    SetupDatabase(&engine);
    ASSERT_TRUE(engine.AnnotateBatch(specs).ok());
    ASSERT_TRUE(engine.Checkpoint().ok());
    engine.WaitForWalCompaction();
  }
  // Reshape the on-disk layout into the single-file era: the one segment
  // becomes `<db>.wal`, the manifest disappears.
  const std::string wal_base = db_path_ + ".wal";
  const std::string segment1 = storage::SegmentedWal::SegmentPathFor(wal_base, 1);
  ASSERT_TRUE(std::filesystem::exists(segment1));
  std::filesystem::rename(segment1, wal_base);
  std::filesystem::remove(storage::SegmentedWal::ManifestPathFor(wal_base));

  Engine engine(FileBackedOptions(nullptr, /*open_existing=*/true));
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_TRUE(engine.recovery().performed);
  EXPECT_EQ(engine.recovery().wal_records_replayed, specs.size());
  // The legacy file was migrated, not copied: segment 1 + manifest.
  EXPECT_FALSE(std::filesystem::exists(wal_base));
  EXPECT_TRUE(std::filesystem::exists(segment1));
  EXPECT_TRUE(
      std::filesystem::exists(storage::SegmentedWal::ManifestPathFor(wal_base)));
  SetupDatabase(&engine);
  Engine oracle;
  ASSERT_TRUE(oracle.Init().ok());
  SetupDatabase(&oracle);
  ASSERT_TRUE(oracle.AnnotateBatch(specs).ok());
  EXPECT_EQ(Snapshot(&engine), Snapshot(&oracle));
}

TEST_F(CrashRecoveryTest, SummarizerFailuresDegradeToStaleRows) {
  Engine engine;
  ASSERT_TRUE(engine.Init().ok());
  SetupDatabase(&engine);

  // Every classifier fold fails; ingest must still succeed, with the
  // damaged rows marked stale instead of the batch erroring out.
  engine.summaries()->SetSummarizerFaultHook(
      [](const std::string& instance, const ann::Annotation&) -> Status {
        if (instance == "BirdClass") return Status::IoError("summarizer knocked out");
        return Status::OK();
      });
  std::vector<AnnotateSpec> specs(specs_.begin(), specs_.begin() + 40);
  auto ids = engine.AnnotateBatch(specs);
  ASSERT_TRUE(ids.ok()) << ids.status().ToString();

  auto table = engine.catalog()->GetTable("notes");
  ASSERT_TRUE(table.ok());
  EXPECT_TRUE(engine.summaries()->IsStale((*table)->id(), 3));
  EXPECT_EQ(engine.summaries()->StaleRows().size(), kNumRows);  // 40 specs hit all 10 rows.

  // Once the summarizer heals, RepairStale rebuilds exactly the damaged
  // rows and the state matches an engine that never failed.
  engine.summaries()->SetSummarizerFaultHook(nullptr);
  auto repaired = engine.RepairStaleSummaries();
  ASSERT_TRUE(repaired.ok()) << repaired.status().ToString();
  EXPECT_EQ(*repaired, kNumRows);
  EXPECT_TRUE(engine.summaries()->StaleRows().empty());

  Engine healthy;
  ASSERT_TRUE(healthy.Init().ok());
  SetupDatabase(&healthy);
  ASSERT_TRUE(healthy.AnnotateBatch(specs).ok());
  EXPECT_EQ(Snapshot(&engine), Snapshot(&healthy));
}

// --- Persistent-index crash sweep -------------------------------------------
//
// The index file gets its own fault seam (EngineOptions::index_disk), so
// the sweep can kill index I/O at every sampled operation while the WAL
// and page file stay healthy — exactly the shadow-paging contract under
// test: whatever the crash point (mid-build, mid-split, mid-merge,
// mid-root-grow, mid-checkpoint-flush), reopening must serve either the
// last *committed* index epoch (caught up by the setup replay) or, when
// no index checkpoint ever committed, no index at all — and a re-run
// CREATE INDEX plus probes must match the no-crash oracle byte for byte.

class IndexCrashSweepTest : public ::testing::Test {
 protected:
  static constexpr int64_t kKeySpan = 40;   // id = (i * 11) % kKeySpan.
  static constexpr uint64_t kBuildRows = 120;   // Present at CREATE INDEX.
  static constexpr uint64_t kGrowRows = 80;     // Inserted afterwards.
  static constexpr uint64_t kDeleteEvery = 3;   // Drives merges/collapses.

  void SetUp() override {
    db_path_ = ::testing::TempDir() + "/insightnotes_idx_crash_" +
               std::to_string(reinterpret_cast<uintptr_t>(this)) + ".db";
    RemoveDbFiles();
    oracle_ = BuildOracle();
    ASSERT_FALSE(oracle_.empty());
  }
  void TearDown() override { RemoveDbFiles(); }

  void RemoveDbFiles() {
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::path dir = fs::path(db_path_).parent_path();
    const std::string stem = fs::path(db_path_).filename().string();
    for (fs::directory_iterator it(dir, ec), end; !ec && it != end;
         it.increment(ec)) {
      if (it->path().filename().string().rfind(stem, 0) == 0) {
        std::error_code remove_ec;
        fs::remove(it->path(), remove_ec);
      }
    }
  }

  EngineOptions Options(std::shared_ptr<storage::DiskManager> index_disk,
                        bool open_existing) {
    EngineOptions options;
    options.db_path = db_path_;
    options.open_existing = open_existing;
    options.index_disk = std::move(index_disk);
    options.index_max_node_entries = 4;  // Minimum fanout: deep trees,
    options.index_pool_pages = 8;        // every op hits real index I/O.
    options.io_retry.sleep = [](int64_t) {};
    return options;
  }

  static rel::Tuple Row(uint64_t i) {
    return rel::Tuple(
        {testutil::I(static_cast<int64_t>((i * 11) % kKeySpan))});
  }

  static void CreateTable(Engine* engine) {
    ASSERT_TRUE(engine
                    ->CreateTable("t", rel::Schema({{"id", rel::ValueType::kInt64,
                                                     "t"}}))
                    .ok());
  }

  /// The scripted index workload: build over kBuildRows (splits during the
  /// build), checkpoint, grow (maintained splits + root growth), delete
  /// every kDeleteEvery-th row (merges, redistributes, root collapse),
  /// checkpoint again. Faults make individual steps fail — the script
  /// shrugs and carries on, exactly like an application would.
  static void RunScript(Engine* engine) {
    for (uint64_t i = 0; i < kBuildRows; ++i) {
      ASSERT_TRUE(engine->Insert("t", Row(i)).ok());
    }
    (void)engine->CreateIndex("t", "id");
    (void)engine->Checkpoint();
    for (uint64_t i = kBuildRows; i < kBuildRows + kGrowRows; ++i) {
      ASSERT_TRUE(engine->Insert("t", Row(i)).ok());
    }
    auto table = engine->catalog()->GetTable("t");
    ASSERT_TRUE(table.ok());
    for (uint64_t i = 0; i < kBuildRows + kGrowRows; i += kDeleteEvery) {
      ASSERT_TRUE((*table)->Delete(i).ok());
    }
    (void)engine->Checkpoint();
  }

  /// Re-applies the final row state after reopen (rows are configuration):
  /// insert everything, then re-delete the same set.
  static void ReplayRows(Engine* engine) {
    for (uint64_t i = 0; i < kBuildRows + kGrowRows; ++i) {
      ASSERT_TRUE(engine->Insert("t", Row(i)).ok());
    }
    auto table = engine->catalog()->GetTable("t");
    ASSERT_TRUE(table.ok());
    for (uint64_t i = 0; i < kBuildRows + kGrowRows; i += kDeleteEvery) {
      ASSERT_TRUE((*table)->Delete(i).ok());
    }
  }

  /// Serializes every query result the index answers: one equality probe
  /// per key plus full/partial ranges, with the probed tuples rendered.
  /// This is the byte-identity surface the sweep compares.
  static std::string ProbeSnapshot(Engine* engine) {
    auto table = engine->catalog()->GetTable("t");
    EXPECT_TRUE(table.ok());
    if (!table.ok()) return "";
    std::ostringstream out;
    auto render = [&](const exec::IndexProbeSpec& spec) {
      std::vector<rel::RowId> rows;
      Status s = exec::ProbeIndex(**table, spec, &rows);
      if (!s.ok()) {
        out << "ERROR " << s.ToString() << "\n";
        return;
      }
      for (rel::RowId row : rows) {
        if (!(*table)->IsLive(row)) continue;
        auto tuple = (*table)->Get(row);
        EXPECT_TRUE(tuple.ok());
        if (tuple.ok()) out << row << ":" << tuple->ValueAt(0).ToString() << " ";
      }
      out << "\n";
    };
    for (int64_t key = 0; key < kKeySpan; ++key) {
      exec::IndexProbeSpec spec;
      spec.column = 0;
      spec.has_eq = true;
      spec.eq = testutil::I(key);
      out << "eq " << key << ": ";
      render(spec);
    }
    exec::IndexProbeSpec all;
    all.column = 0;
    out << "all: ";
    render(all);
    exec::IndexProbeSpec mid;
    mid.column = 0;
    mid.has_lo = true;
    mid.lo = testutil::I(kKeySpan / 4);
    mid.has_hi = true;
    mid.hi = testutil::I(3 * kKeySpan / 4);
    out << "mid: ";
    render(mid);
    return out.str();
  }

  /// Uninterrupted run of the same script: the ground truth.
  std::string BuildOracle() {
    RemoveDbFiles();
    Engine engine(Options(nullptr, /*open_existing=*/false));
    EXPECT_TRUE(engine.Init().ok());
    CreateTable(&engine);
    if (::testing::Test::HasFatalFailure()) return "";
    RunScript(&engine);
    auto table = engine.catalog()->GetTable("t");
    EXPECT_TRUE(table.ok() && (*table)->IndexOn(0) != nullptr);
    if (table.ok()) {
      EXPECT_TRUE((*table)->IndexOn(0)->tree()->CheckInvariants().ok());
    }
    std::string snapshot = ProbeSnapshot(&engine);
    RemoveDbFiles();
    return snapshot;
  }

  std::string db_path_;
  std::string oracle_;
};

TEST_F(IndexCrashSweepTest, IndexCrashAtEverySampledOpRecoversToOracle) {
  // Fault-free pass on a counting disk: the index-op range the sweep
  // samples. The same deterministic script reproduces the same op indices.
  uint64_t total_ops = 0;
  {
    RemoveDbFiles();
    auto probe_disk = std::make_shared<storage::FaultInjectingDiskManager>();
    Engine engine(Options(probe_disk, /*open_existing=*/false));
    ASSERT_TRUE(engine.Init().ok());
    CreateTable(&engine);
    RunScript(&engine);
    total_ops = probe_disk->op_count();
    ASSERT_GT(total_ops, 20u) << "index workload produced almost no index I/O";
  }

  constexpr uint64_t kSweep = 14;
  const uint64_t stride = std::max<uint64_t>(1, total_ops / kSweep);
  for (uint64_t crash_at = 1; crash_at <= total_ops; crash_at += stride) {
    SCOPED_TRACE("index crash at op " + std::to_string(crash_at) + " of " +
                 std::to_string(total_ops));
    RemoveDbFiles();
    {
      auto disk = std::make_shared<storage::FaultInjectingDiskManager>();
      disk->CrashAtOp(crash_at);
      Engine engine(Options(disk, /*open_existing=*/false));
      ASSERT_TRUE(engine.Init().ok());
      CreateTable(&engine);
      RunScript(&engine);
      // The engine "dies" here; its destructor checkpoint fails against
      // the crashed index disk, which must not corrupt anything either.
    }
    Engine engine(Options(nullptr, /*open_existing=*/true));
    ASSERT_TRUE(engine.Init().ok());
    CreateTable(&engine);
    ReplayRows(&engine);
    auto table = engine.catalog()->GetTable("t");
    ASSERT_TRUE(table.ok());
    if ((*table)->IndexOn(0) == nullptr) {
      // The crash predated the first committed index checkpoint: by
      // contract there is no index to adopt. The application re-runs its
      // DDL and ends up in the same place.
      ASSERT_TRUE(engine.CreateIndex("t", "id").ok());
    }
    ASSERT_NE((*table)->IndexOn(0), nullptr);
    ASSERT_TRUE((*table)->IndexOn(0)->tree()->CheckInvariants().ok());
    EXPECT_EQ(ProbeSnapshot(&engine), oracle_);
    EXPECT_TRUE(engine.Checkpoint().ok());
  }
}

}  // namespace
}  // namespace insightnotes::core
