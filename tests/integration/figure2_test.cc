// Golden reconstruction of the paper's Figure 2: the SPJ query
//   SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2
// over tuples r and s that carry classifier, cluster and snippet summaries,
// including annotations on projected-out columns (r.c, r.d, s.y) and
// annotations shared by both tuples.

#include <gtest/gtest.h>

#include "sql/session.h"
#include "testutil.h"

namespace insightnotes {
namespace {

using testutil::EngineFixture;

class Figure2Test : public EngineFixture {
 protected:
  void SetUp() override {
    EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
    session_ = std::make_unique<sql::SqlSession>(engine_.get());

    // Tuple r := R row 0 (a=1, b=2). Annotations across all columns:
    //  - behavior notes on kept column a and on the whole row,
    //  - anatomy note on projected-out column c  -> must be trimmed,
    //  - disease note on projected-out column d  -> must be trimmed,
    //  - a large article document (on column c)  -> snippet must be trimmed.
    a_on_a_ = Annotate("R", 0, "found eating stonewort near the shore", {0});
    a_whole_ = Annotate("R", 0, "observed flying in the region yesterday");
    a_on_c_ = Annotate("R", 0, "large one having size around three kilograms", {2});
    a_on_d_ = Annotate("R", 0, "signs of influenza infection on the beak", {3});
    core::AnnotateSpec wiki = Spec("R", 0,
                                   "The swan goose breeds in Mongolia. "
                                   "It winters in eastern China.",
                                   {2});
    wiki.kind = ann::AnnotationKind::kDocument;
    wiki.title = "Wikipedia article";
    a_wiki_on_c_ = *engine_->Annotate(wiki);
    core::AnnotateSpec exp = Spec("R", 0, "Experiment E produced this reading. ", {0});
    exp.kind = ann::AnnotationKind::kDocument;
    exp.title = "Experiment E";
    a_exp_on_a_ = *engine_->Annotate(exp);

    // Tuple s := S row 0 (x=1). One annotation on kept column x, one on the
    // projected-out column y, and one SHARED with r (attached to both).
    b_on_x_ = Annotate("S", 0, "why is this measurement so high", {0});
    b_on_y_ = Annotate("S", 0, "this column is derived from provenance records", {1});
    shared_ = Annotate("R", 0, "produced by experiment lineage pipeline");
    EXPECT_TRUE(engine_->AttachAnnotation(shared_, "S", 0).ok());
  }

  ann::AnnotationId Annotate(const std::string& table, rel::RowId row,
                             const std::string& body,
                             std::vector<size_t> columns = {}) {
    auto id = engine_->Annotate(Spec(table, row, body, std::move(columns)));
    EXPECT_TRUE(id.ok());
    return *id;
  }

  std::unique_ptr<sql::SqlSession> session_;
  ann::AnnotationId a_on_a_ = 0, a_whole_ = 0, a_on_c_ = 0, a_on_d_ = 0;
  ann::AnnotationId a_wiki_on_c_ = 0, a_exp_on_a_ = 0;
  ann::AnnotationId b_on_x_ = 0, b_on_y_ = 0, shared_ = 0;
};

TEST_F(Figure2Test, FullPipelineMatchesPaperSemantics) {
  auto out = session_->Execute(
      "Select r.a, r.b, s.z From R r, S s Where r.a = s.x And r.b = 2;");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  ASSERT_EQ(out->result.rows.size(), 1u);
  const core::AnnotatedTuple& row = out->result.rows[0];

  // Output data: (1, 2, z0).
  EXPECT_EQ(row.tuple.ValueAt(0).AsInt64(), 1);
  EXPECT_EQ(row.tuple.ValueAt(1).AsInt64(), 2);
  EXPECT_EQ(row.tuple.ValueAt(2).AsString(), "z0");

  // Step 1 (projection trim): annotations on r.c, r.d and s.y are gone;
  // annotations on r.a, whole-row and s.x survive, as does the shared one.
  auto* class1 = row.FindSummary("ClassBird1");
  ASSERT_NE(class1, nullptr);
  EXPECT_TRUE(class1->Contains(a_on_a_));
  EXPECT_TRUE(class1->Contains(a_whole_));
  EXPECT_FALSE(class1->Contains(a_on_c_));
  EXPECT_FALSE(class1->Contains(a_on_d_));
  EXPECT_TRUE(class1->Contains(shared_));

  // TextSummary1: the Wikipedia article (on r.c) is deleted from the
  // snippet object; Experiment E (on r.a) remains — exactly Figure 2.
  auto* snippets = row.FindSummary("TextSummary1");
  ASSERT_NE(snippets, nullptr);
  EXPECT_FALSE(snippets->Contains(a_wiki_on_c_));
  EXPECT_TRUE(snippets->Contains(a_exp_on_a_));
  EXPECT_EQ(snippets->NumComponents(), 1u);
  EXPECT_NE(snippets->Render().find("Experiment E"), std::string::npos);

  // Step 3 (join merge): ClassBird2 counterparts combined without double
  // counting the shared annotation.
  auto* class2 = row.FindSummary("ClassBird2");
  ASSERT_NE(class2, nullptr);
  // Surviving contributors: a_on_a, a_whole, a_exp_on_a, shared from r plus
  // b_on_x from s -> 5, with the shared annotation counted once despite
  // being attached to both r and s.
  EXPECT_EQ(class2->NumAnnotations(), 5u);
  EXPECT_TRUE(class2->Contains(shared_));
  EXPECT_TRUE(class2->Contains(b_on_x_));
  EXPECT_FALSE(class2->Contains(b_on_y_));

  // SimCluster merged the two sides over the same survivor set.
  auto* cluster = row.FindSummary("SimCluster");
  ASSERT_NE(cluster, nullptr);
  EXPECT_EQ(cluster->NumAnnotations(), 5u);
}

TEST_F(Figure2Test, ClusterMembershipAfterPipeline) {
  auto out = session_->Execute(
      "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2");
  ASSERT_TRUE(out.ok());
  const core::AnnotatedTuple& row = out->result.rows[0];
  auto* cluster = row.FindSummary("SimCluster");
  ASSERT_NE(cluster, nullptr);
  // Survivors: a_on_a_, a_whole_, a_exp_on_a_, shared_, b_on_x_ = 5.
  EXPECT_EQ(cluster->NumAnnotations(), 5u);
  EXPECT_FALSE(cluster->Contains(a_on_c_));
  EXPECT_FALSE(cluster->Contains(b_on_y_));
  // Zoom-in on every group returns only surviving annotations, and their
  // union is exactly the survivor set.
  std::set<ann::AnnotationId> seen;
  for (size_t g = 0; g < cluster->NumComponents(); ++g) {
    auto members = cluster->ZoomIn(g);
    ASSERT_TRUE(members.ok());
    for (auto id : *members) {
      EXPECT_TRUE(seen.insert(id).second) << "annotation in two groups";
    }
  }
  EXPECT_EQ(seen, (std::set<ann::AnnotationId>{a_on_a_, a_whole_, a_exp_on_a_,
                                               shared_, b_on_x_}));
}

TEST_F(Figure2Test, SelectionDoesNotChangeSummaries) {
  auto all = session_->Execute("SELECT * FROM R r");
  auto filtered = session_->Execute("SELECT * FROM R r WHERE r.b = 2");
  ASSERT_TRUE(all.ok());
  ASSERT_TRUE(filtered.ok());
  // Row 0 appears in both results with identical summaries.
  std::string render_all;
  for (const auto& row : all->result.rows) {
    if (row.tuple.ValueAt(0).AsInt64() == 1) {
      render_all = row.FindSummary("ClassBird1")->Render();
    }
  }
  std::string render_filtered =
      filtered->result.rows[0].FindSummary("ClassBird1")->Render();
  EXPECT_EQ(render_all, render_filtered);
}

TEST_F(Figure2Test, TraceShowsPipelineStages) {
  std::vector<core::TraceEvent> trace;
  auto out = session_->Execute(
      "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2", &trace);
  ASSERT_TRUE(out.ok());
  bool saw_scan = false;
  bool saw_project = false;
  bool saw_filter = false;
  bool saw_join = false;
  for (const auto& event : trace) {
    saw_scan |= event.op.rfind("SeqScan", 0) == 0;
    saw_project |= event.op.rfind("Project", 0) == 0;
    saw_filter |= event.op.rfind("Filter", 0) == 0;
    saw_join |= event.op.rfind("HashJoin", 0) == 0;
  }
  EXPECT_TRUE(saw_scan);
  EXPECT_TRUE(saw_project);
  EXPECT_TRUE(saw_filter);
  EXPECT_TRUE(saw_join);
}

}  // namespace
}  // namespace insightnotes
