// Parallel-execution oracle: morsel-driven parallel plans must produce
// results BYTE-IDENTICAL to the legacy serial tree — same tuples in the
// same order, identical summary renderings (including cluster
// representative election), identical attachment metadata. We run a
// spread of plan shapes (scan / filter / projection / equi hash join /
// summary filter / aggregate / order-by / distinct) at parallelism
// {1, 2, 8} with small morsels and compare full renderings.
//
// The stress tests at the bottom double as the TSAN target for the
// parallel partitioned hash-join build (see .github/workflows/ci.yml).

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "sql/session.h"
#include "testutil.h"

namespace insightnotes {
namespace {

using testutil::EngineFixture;
using testutil::I;
using testutil::S;

class ParallelExecTest : public EngineFixture {
 protected:
  void SetUp() override {
    EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
    CreateObservationTables();
  }

  /// obs(id, station, reading, note) with kObsRows rows spread over a few
  /// stations, plus station(sid, name); big enough that a small morsel
  /// size yields many morsels per scan.
  void CreateObservationTables() {
    ASSERT_TRUE(engine_
                    ->CreateTable("obs",
                                  rel::Schema({{"id", rel::ValueType::kInt64, "obs"},
                                               {"station", rel::ValueType::kInt64, "obs"},
                                               {"reading", rel::ValueType::kInt64, "obs"},
                                               {"note", rel::ValueType::kString, "obs"}}))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("station",
                                  rel::Schema({{"sid", rel::ValueType::kInt64, "station"},
                                               {"name", rel::ValueType::kString, "station"}}))
                    .ok());
    Random rng(42);
    for (int64_t i = 0; i < kObsRows; ++i) {
      auto row = engine_->Insert(
          "obs", rel::Tuple({I(i), I(i % 7), I(static_cast<int64_t>(rng.Uniform(50))),
                             S("n" + std::to_string(i % 11))}));
      ASSERT_TRUE(row.ok());
    }
    for (int64_t s = 0; s < 7; ++s) {
      ASSERT_TRUE(engine_
                      ->Insert("station",
                               rel::Tuple({I(s), S("st" + std::to_string(s))}))
                      .ok());
    }
    ASSERT_TRUE(engine_->LinkInstance("ClassBird1", "obs").ok());
    ASSERT_TRUE(engine_->LinkInstance("SimCluster", "obs").ok());

    // Annotations on a spread of rows/columns so summaries and attachment
    // trimming are exercised; some shared with `station` so join merges
    // must de-duplicate.
    const std::vector<std::string> bodies = {
        "found eating stonewort near the shore",
        "signs of influenza infection detected",
        "wingspan and body size measured today",
        "why is this measurement so high",
        "general remark about the observation",
    };
    for (int i = 0; i < 90; ++i) {
      rel::RowId row = static_cast<rel::RowId>(rng.Uniform(kObsRows));
      std::vector<size_t> columns;
      if (rng.Bernoulli(0.5)) columns.push_back(rng.Uniform(4));
      auto id =
          engine_->Annotate(Spec("obs", row, bodies[rng.Uniform(bodies.size())], columns));
      ASSERT_TRUE(id.ok());
      if (rng.Bernoulli(0.15)) {
        ASSERT_TRUE(
            engine_->AttachAnnotation(*id, "station", rng.Uniform(7)).ok());
      }
    }
  }

  /// Plans `sql_text` at the given parallelism/morsel size, executes it,
  /// and renders every row byte-for-byte: data values, summaries in
  /// pipeline order (instance=Render(), so representative election and
  /// component order count), attachments in order.
  std::vector<std::string> Run(const std::string& sql_text, size_t parallelism,
                               size_t morsel_size) {
    auto statement = sql::Parse(sql_text);
    EXPECT_TRUE(statement.ok()) << statement.status().ToString();
    auto* select = std::get_if<sql::SelectStatement>(&*statement);
    EXPECT_NE(select, nullptr);
    sql::PlannerOptions options;
    options.parallelism = parallelism;
    options.morsel_size = morsel_size;
    auto plan = sql::PlanSelect(*select, engine_.get(), options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto result = engine_->Execute(std::move(*plan));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::string> rows;
    if (!result.ok()) return rows;
    for (const core::AnnotatedTuple& row : result->rows) {
      std::ostringstream os;
      os << row.tuple.ToString();
      for (const auto& summary : row.summaries) {
        os << " || " << summary->instance_name() << "=" << summary->Render();
      }
      for (const auto& attachment : row.attachments) {
        os << " [A" << attachment.id << ":";
        for (size_t c : attachment.columns) os << c << ",";
        os << "]";
      }
      rows.push_back(os.str());
    }
    return rows;
  }

  /// Asserts parallel runs at 2 and 8 workers reproduce the serial run
  /// byte-for-byte, across two morsel sizes (one that divides the table
  /// unevenly on purpose).
  void ExpectOracle(const std::string& sql_text) {
    SCOPED_TRACE(sql_text);
    std::vector<std::string> serial = Run(sql_text, 1, 16);
    ASSERT_FALSE(::testing::Test::HasFailure());
    for (size_t parallelism : {2u, 8u}) {
      for (size_t morsel : {16u, 13u}) {
        SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                     " morsel=" + std::to_string(morsel));
        EXPECT_EQ(serial, Run(sql_text, parallelism, morsel));
      }
    }
  }

  // Above one morsel (256): smaller driving tables now plan serial even
  // with the parallelism knob raised.
  static constexpr int64_t kObsRows = 300;
};

TEST_F(ParallelExecTest, SeqScanOracle) {
  ExpectOracle("SELECT * FROM obs o");
}

TEST_F(ParallelExecTest, FilterProjectionOracle) {
  ExpectOracle("SELECT o.id, o.reading FROM obs o WHERE o.reading > 20");
}

TEST_F(ParallelExecTest, HashJoinOracle) {
  ExpectOracle(
      "SELECT o.id, o.reading, s.name FROM obs o, station s "
      "WHERE o.station = s.sid");
}

TEST_F(ParallelExecTest, HashJoinWithResidualFilterOracle) {
  ExpectOracle(
      "SELECT o.id, s.name FROM obs o, station s "
      "WHERE o.station = s.sid AND o.reading > 10 AND o.id < 100");
}

TEST_F(ParallelExecTest, SummaryFilterOracle) {
  ExpectOracle("SELECT o.id FROM obs o WHERE SUMMARY_COUNT(ClassBird1) > 0");
}

TEST_F(ParallelExecTest, AggregateOracle) {
  ExpectOracle(
      "SELECT o.station, COUNT(*), SUM(o.reading) FROM obs o "
      "GROUP BY o.station ORDER BY o.station");
}

TEST_F(ParallelExecTest, OrderByLimitOracle) {
  ExpectOracle(
      "SELECT o.id, o.reading FROM obs o ORDER BY o.reading DESC, o.id ASC "
      "LIMIT 25");
}

TEST_F(ParallelExecTest, DistinctOracle) {
  ExpectOracle("SELECT DISTINCT o.note FROM obs o ORDER BY o.note");
}

TEST_F(ParallelExecTest, Figure2JoinOracle) {
  // The original small Figure 2 tables: fewer rows than one morsel, so
  // most workers see no work — results must still match exactly.
  ExpectOracle(
      "SELECT r.a, r.b, s.z FROM R r, S s WHERE r.a = s.x AND r.b = 2");
}

TEST_F(ParallelExecTest, CrossProductFallsBackToSerialPlan) {
  // No equi-join conjunct: the parallel section builder must decline and
  // the serial tree must produce the usual result.
  std::vector<std::string> serial = Run("SELECT r.a, s.x FROM R r, S s", 1, 16);
  EXPECT_EQ(serial.size(), 9u);
  EXPECT_EQ(serial, Run("SELECT r.a, s.x FROM R r, S s", 8, 16));
}

TEST_F(ParallelExecTest, SetParallelismKnob) {
  sql::SqlSession session(engine_.get());
  auto out = session.Execute("SET PARALLELISM = 3");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->message, "parallelism = 3");
  EXPECT_EQ(session.parallelism(), 3u);
  // Clamped to >= 1.
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 0").ok());
  EXPECT_EQ(session.parallelism(), 1u);
  EXPECT_FALSE(session.Execute("SET FROBNICATION = 9").ok());
}

TEST_F(ParallelExecTest, SessionQueriesMatchAcrossKnobSettings) {
  sql::SqlSession session(engine_.get());
  const std::string q =
      "SELECT o.id, s.name FROM obs o, station s "
      "WHERE o.station = s.sid AND o.reading > 5";
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 1").ok());
  auto serial = session.Execute(q);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 8").ok());
  auto parallel = session.Execute(q);
  ASSERT_TRUE(parallel.ok());
  // Drop the "QID n (..)" header: each execution is assigned a fresh QID.
  auto body = [](const core::QueryResult& result) {
    std::string text = sql::FormatResult(result);
    return text.substr(text.find('\n') + 1);
  };
  EXPECT_EQ(body(serial->result), body(parallel->result));
}

TEST_F(ParallelExecTest, ExplainRendersPlanShape) {
  sql::SqlSession session(engine_.get());
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 4").ok());
  auto out = session.Execute(
      "EXPLAIN SELECT o.id, s.name FROM obs o, station s WHERE o.station = s.sid");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->message.find("Gather"), std::string::npos) << out->message;
  EXPECT_NE(out->message.find("HashJoinProbe"), std::string::npos) << out->message;
}

TEST_F(ParallelExecTest, ExplainAnalyzeReportsCounters) {
  sql::SqlSession session(engine_.get());
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 2").ok());
  auto out = session.Execute(
      "EXPLAIN ANALYZE SELECT o.id FROM obs o WHERE o.reading > 20");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->message.find("rows_out="), std::string::npos) << out->message;
  EXPECT_NE(out->message.find("row(s)"), std::string::npos) << out->message;
}

TEST_F(ParallelExecTest, TracedQueriesStaySerial) {
  // Trace events observe per-operator tuple order; a traced SELECT must
  // plan the legacy serial tree even with the knob raised.
  sql::SqlSession session(engine_.get());
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 8").ok());
  std::vector<core::TraceEvent> trace;
  auto out = session.Execute("SELECT o.id FROM obs o WHERE o.reading > 20", &trace);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_FALSE(trace.empty());
}

// TSAN target: hammer the parallel partitioned hash-join build and the
// worker pipelines from repeated executions so data races in the shared
// morsel cursor, partition build, or gather surface under
// ThreadSanitizer.
TEST_F(ParallelExecTest, StressParallelJoinRepeatedExecution) {
  const std::string q =
      "SELECT o.id, o.reading, s.name FROM obs o, station s "
      "WHERE o.station = s.sid AND o.reading > 3";
  std::vector<std::string> serial = Run(q, 1, 8);
  for (int iteration = 0; iteration < 10; ++iteration) {
    SCOPED_TRACE(iteration);
    EXPECT_EQ(serial, Run(q, 8, 8));
  }
}

}  // namespace
}  // namespace insightnotes
