// Query-lifecycle integration tests through the SQL session: SET
// STATEMENT_TIMEOUT, SET MEMORY_LIMIT and CancelCurrent() must abort a
// running plan — serial or parallel — with a clean kDeadlineExceeded /
// kResourceExhausted / kCancelled Status within a bounded number of
// cooperative interrupt checks, leaving the session able to answer the
// next statement byte-identically to a fresh serial run.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "exec/fault_injection.h"
#include "sql/session.h"
#include "testutil.h"

namespace insightnotes {
namespace {

using testutil::EngineFixture;
using testutil::I;
using testutil::S;

constexpr int64_t kFactRows = 400;
constexpr int64_t kBigRows = 2000;

class CancellationTest : public EngineFixture {
 protected:
  void SetUp() override {
    EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
    ASSERT_TRUE(engine_
                    ->CreateTable("t",
                                  rel::Schema({{"id", rel::ValueType::kInt64, "t"},
                                               {"grp", rel::ValueType::kInt64, "t"},
                                               {"val", rel::ValueType::kInt64, "t"}}))
                    .ok());
    // A wide build-side table so SET MEMORY_LIMIT trips inside the
    // hash-join build, not the driving scan.
    ASSERT_TRUE(engine_
                    ->CreateTable("big",
                                  rel::Schema({{"k", rel::ValueType::kInt64, "big"},
                                               {"pad", rel::ValueType::kString, "big"}}))
                    .ok());
    Random rng(3);
    for (int64_t i = 0; i < kFactRows; ++i) {
      ASSERT_TRUE(engine_
                      ->Insert("t", rel::Tuple({I(i), I(i % 10),
                                                I(static_cast<int64_t>(rng.Uniform(100)))}))
                      .ok());
    }
    const std::string pad(512, 'x');
    for (int64_t i = 0; i < kBigRows; ++i) {
      ASSERT_TRUE(
          engine_->Insert("big", rel::Tuple({I(i % kFactRows), S(pad)})).ok());
    }
  }

  /// Renders a row result for byte-identity comparison.
  static std::vector<std::string> Render(const core::QueryResult& result) {
    std::vector<std::string> rows;
    for (const core::AnnotatedTuple& row : result.rows) {
      rows.push_back(row.tuple.ToString());
    }
    return rows;
  }

  Result<std::vector<std::string>> Run(sql::SqlSession& session,
                                       const std::string& sql_text) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(sql::ExecutionOutput out, session.Execute(sql_text));
    return Render(out.result);
  }
};

TEST_F(CancellationTest, CancelAtCheckAbortsWithinBoundedBoundaries) {
  const std::string sql =
      "SELECT t.grp, COUNT(*), SUM(t.val) FROM t t GROUP BY t.grp ORDER BY t.grp";
  sql::SqlSession serial_session(engine_.get());
  ASSERT_TRUE(serial_session.Execute("SET PARALLELISM = 1").ok());
  auto expected = Run(serial_session, sql);
  ASSERT_TRUE(expected.ok());

  for (size_t parallelism : {size_t{1}, size_t{8}}) {
    sql::SqlSession session(engine_.get());
    ASSERT_TRUE(
        session.Execute("SET PARALLELISM = " + std::to_string(parallelism)).ok());
    const uint64_t trip = 3;
    session.query_context()->CancelAtCheck(trip);
    auto cancelled = Run(session, sql);
    ASSERT_FALSE(cancelled.ok()) << "parallelism " << parallelism;
    EXPECT_TRUE(cancelled.status().IsCancelled()) << cancelled.status().ToString();
    // Cooperative boundary bound: after the trip, every in-flight operator
    // surfaces the cancellation at its next check — the total stays within
    // a fixed slack of the trip point instead of running the plan dry.
    EXPECT_LE(session.query_context()->cancel_checks(), trip + 200)
        << "parallelism " << parallelism;

    // Disarmed, the very next statement is byte-identical to serial.
    session.query_context()->CancelAtCheck(0);
    auto clean = Run(session, sql);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_EQ(*clean, *expected);
  }
}

TEST_F(CancellationTest, CancelCurrentFromAnotherThread) {
  // A stalled worker keeps the statement in flight while another thread
  // calls CancelCurrent(); the cooperative checks pick the flag up at the
  // next morsel boundary.
  auto script = std::make_shared<exec::ExecFaultScript>();
  script->AddFault({0, 1, exec::ExecFaultAction::kStall, /*stall_ms=*/300});
  sql::PlannerOptions options;
  options.wrap_worker_pipeline = [script](std::unique_ptr<exec::Operator> pipe,
                                          size_t worker) {
    return std::make_unique<exec::FaultInjectingOperator>(std::move(pipe), script,
                                                          worker);
  };
  sql::SqlSession session(engine_.get(), options);
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 2").ok());

  std::atomic<bool> done{false};
  Status status = Status::OK();
  std::thread query([&] {
    auto result = session.Execute("SELECT t.id FROM t t WHERE t.val >= 0");
    status = result.status();
    done.store(true);
  });
  // Let the query reach the stall, then cancel from this thread.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  session.CancelCurrent();
  query.join();
  ASSERT_TRUE(done.load());
  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCancelled()) << status.ToString();

  // The session answers the next statement normally.
  sql::SqlSession serial_session(engine_.get());
  ASSERT_TRUE(serial_session.Execute("SET PARALLELISM = 1").ok());
  auto expected = Run(serial_session, "SELECT t.id FROM t t WHERE t.val >= 0");
  ASSERT_TRUE(expected.ok());
  auto clean = Run(session, "SELECT t.id FROM t t WHERE t.val >= 0");
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_EQ(*clean, *expected);
}

TEST_F(CancellationTest, StatementTimeoutExpires) {
  auto script = std::make_shared<exec::ExecFaultScript>();
  script->AddFault({0, 1, exec::ExecFaultAction::kStall, /*stall_ms=*/150});
  sql::PlannerOptions options;
  options.wrap_worker_pipeline = [script](std::unique_ptr<exec::Operator> pipe,
                                          size_t worker) {
    return std::make_unique<exec::FaultInjectingOperator>(std::move(pipe), script,
                                                          worker);
  };
  sql::SqlSession session(engine_.get(), options);
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 2").ok());
  ASSERT_TRUE(session.Execute("SET STATEMENT_TIMEOUT = 20").ok());
  auto timed_out = session.Execute("SELECT t.id FROM t t");
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsDeadlineExceeded())
      << timed_out.status().ToString();
  EXPECT_NE(timed_out.status().ToString().find("20 ms"), std::string::npos);

  // SET STATEMENT_TIMEOUT = 0 turns the deadline off (stall and all).
  ASSERT_TRUE(session.Execute("SET STATEMENT_TIMEOUT = 0").ok());
  script->ClearFired();
  auto clean = session.Execute("SELECT t.id FROM t t");
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
}

TEST_F(CancellationTest, MemoryLimitAbortsHashJoinBuildByName) {
  const std::string sql =
      "SELECT t.id, big.pad FROM t t, big big WHERE t.id = big.k";
  for (size_t parallelism : {size_t{1}, size_t{4}}) {
    sql::SqlSession session(engine_.get());
    ASSERT_TRUE(
        session.Execute("SET PARALLELISM = " + std::to_string(parallelism)).ok());
    // ~1 MB build side against a 256 KB budget: the driving scan fits, the
    // hash-join build cannot.
    ASSERT_TRUE(session.Execute("SET MEMORY_LIMIT = 262144").ok());
    auto exhausted = session.Execute(sql);
    ASSERT_FALSE(exhausted.ok()) << "parallelism " << parallelism;
    EXPECT_TRUE(exhausted.status().IsResourceExhausted())
        << exhausted.status().ToString();
    EXPECT_NE(exhausted.status().ToString().find("HashJoinBuild"), std::string::npos)
        << exhausted.status().ToString();
    EXPECT_NE(exhausted.status().ToString().find("memory limit exceeded"),
              std::string::npos);

    // Lifting the limit makes the same query complete.
    ASSERT_TRUE(session.Execute("SET MEMORY_LIMIT = 0").ok());
    auto clean = session.Execute(sql);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    EXPECT_EQ(clean->result.rows.size(), static_cast<size_t>(kBigRows));
  }
}

TEST_F(CancellationTest, ExplainAnalyzeReportsLifecycleCounters) {
  sql::SqlSession session(engine_.get());
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 1").ok());
  auto out = session.Execute(
      "EXPLAIN ANALYZE SELECT t.grp, SUM(t.val) FROM t t GROUP BY t.grp "
      "ORDER BY t.grp");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_NE(out->message.find("cancel_checks="), std::string::npos) << out->message;
  EXPECT_NE(out->message.find("mem_peak="), std::string::npos) << out->message;
}

TEST_F(CancellationTest, CancellationStressLeavesNoTornState) {
  // Hammer one session with alternating seeded cancellations and clean
  // runs at full parallelism; every clean run must match serial exactly.
  const std::string sql =
      "SELECT t.grp, COUNT(*) FROM t t, big big WHERE t.id = big.k "
      "GROUP BY t.grp ORDER BY t.grp";
  sql::SqlSession serial_session(engine_.get());
  ASSERT_TRUE(serial_session.Execute("SET PARALLELISM = 1").ok());
  auto expected = Run(serial_session, sql);
  ASSERT_TRUE(expected.ok());

  sql::SqlSession session(engine_.get());
  ASSERT_TRUE(session.Execute("SET PARALLELISM = 8").ok());
  Random rng(99);
  for (int round = 0; round < 25; ++round) {
    const uint64_t trip = 1 + rng.Uniform(60);
    session.query_context()->CancelAtCheck(trip);
    auto cancelled = Run(session, sql);
    if (!cancelled.ok()) {
      EXPECT_TRUE(cancelled.status().IsCancelled())
          << "round " << round << ": " << cancelled.status().ToString();
    }
    session.query_context()->CancelAtCheck(0);
    auto clean = Run(session, sql);
    ASSERT_TRUE(clean.ok()) << "round " << round << ": "
                            << clean.status().ToString();
    ASSERT_EQ(*clean, *expected) << "round " << round << " trip " << trip;
  }
}

}  // namespace
}  // namespace insightnotes
