// Property-based suites over the summary algebra (DESIGN.md §6): for
// randomized annotation populations across all three summary types we check
//   * counts partition: per-component sizes sum to NumAnnotations;
//   * zoom-in completeness: the union of ZoomIn(component) over all
//     components is exactly the contributing annotation id set;
//   * merge commutativity (up to representative choice);
//   * add/remove round trips;
//   * shared-annotation idempotence: merging an object with itself is a
//     no-op.

#include <gtest/gtest.h>

#include <set>

#include "common/random.h"
#include "core/summary_instance.h"
#include "core/summary_object.h"
#include "workload/annotation_gen.h"

namespace insightnotes::core {
namespace {

struct PropertyCase {
  int type;  // 0 classifier, 1 cluster, 2 snippet.
  uint64_t seed;
  size_t population;
};

std::string CaseName(const ::testing::TestParamInfo<PropertyCase>& info) {
  const char* types[] = {"classifier", "cluster", "snippet"};
  return std::string(types[info.param.type]) + "_seed" +
         std::to_string(info.param.seed) + "_n" +
         std::to_string(info.param.population);
}

class SummaryAlgebraProperty : public ::testing::TestWithParam<PropertyCase> {
 protected:
  void SetUp() override {
    const PropertyCase& param = GetParam();
    switch (param.type) {
      case 0: {
        instance_ = SummaryInstance::MakeClassifier(
            "p", {"Behavior", "Disease", "Anatomy", "Other"});
        for (const auto& [label, text] :
             workload::AnnotationGenerator::ClassBird1Training()) {
          ASSERT_TRUE(instance_->classifier()->Train(label, text).ok());
        }
        break;
      }
      case 1:
        instance_ = SummaryInstance::MakeCluster("p", 0.3);
        break;
      default:
        instance_ = SummaryInstance::MakeSnippet("p");
        break;
    }
    gen_ = std::make_unique<workload::AnnotationGenerator>(param.seed);
  }

  /// Generates annotation `id` deterministically for this test's seed.
  ann::Annotation MakeAnnotation(ann::AnnotationId id) {
    auto it = generated_.find(id);
    if (it != generated_.end()) return it->second;
    const auto& species = workload::CuratedSpecies()[id % 20];
    // Mix comments and documents so snippet objects see contributions.
    workload::GeneratedAnnotation g =
        (id % 4 == 0) ? gen_->GenerateDocument(species, 4)
                      : gen_->GenerateComment(species);
    g.annotation.id = id;
    generated_[id] = g.annotation;
    return g.annotation;
  }

  std::unique_ptr<SummaryObject> BuildObject(const std::vector<ann::AnnotationId>& ids) {
    auto object = instance_->NewObject();
    for (ann::AnnotationId id : ids) {
      Status s = object->AddAnnotation(MakeAnnotation(id));
      EXPECT_TRUE(s.ok() || s.IsAlreadyExists()) << s.ToString();
    }
    return object;
  }

  /// Ids the object actually holds (snippets ignore comments).
  std::set<ann::AnnotationId> ContributingIds(
      const SummaryObject& object, const std::vector<ann::AnnotationId>& ids) {
    std::set<ann::AnnotationId> out;
    for (ann::AnnotationId id : ids) {
      if (object.Contains(id)) out.insert(id);
    }
    return out;
  }

  std::unique_ptr<SummaryInstance> instance_;
  std::unique_ptr<workload::AnnotationGenerator> gen_;
  std::map<ann::AnnotationId, ann::Annotation> generated_;
};

TEST_P(SummaryAlgebraProperty, ComponentsPartitionAnnotations) {
  const PropertyCase& param = GetParam();
  std::vector<ann::AnnotationId> ids;
  for (size_t i = 0; i < param.population; ++i) ids.push_back(i);
  auto object = BuildObject(ids);

  std::set<ann::AnnotationId> via_zoom;
  size_t total_component_sizes = 0;
  for (size_t c = 0; c < object->NumComponents(); ++c) {
    auto members = object->ZoomIn(c);
    ASSERT_TRUE(members.ok());
    total_component_sizes += members->size();
    for (ann::AnnotationId id : *members) {
      EXPECT_TRUE(via_zoom.insert(id).second)
          << "annotation " << id << " in two components";
    }
  }
  EXPECT_EQ(via_zoom, ContributingIds(*object, ids));
  EXPECT_EQ(total_component_sizes, object->NumAnnotations());
}

TEST_P(SummaryAlgebraProperty, AddRemoveRoundTrip) {
  const PropertyCase& param = GetParam();
  std::vector<ann::AnnotationId> ids;
  for (size_t i = 0; i < param.population; ++i) ids.push_back(i);
  auto object = BuildObject(ids);
  std::string before = object->Render();

  ann::Annotation extra = MakeAnnotation(10000 + param.seed);
  ASSERT_TRUE(object->AddAnnotation(extra).ok());
  if (object->Contains(extra.id)) {
    ASSERT_TRUE(object->RemoveAnnotation(extra.id).ok());
  }
  EXPECT_EQ(object->Render(), before);
}

TEST_P(SummaryAlgebraProperty, MergeCommutativeOnMembership) {
  const PropertyCase& param = GetParam();
  std::vector<ann::AnnotationId> left_ids;
  std::vector<ann::AnnotationId> right_ids;
  Random rng(param.seed);
  for (size_t i = 0; i < param.population; ++i) {
    if (rng.Bernoulli(0.5)) left_ids.push_back(i);
    if (rng.Bernoulli(0.5)) right_ids.push_back(i);  // Overlap is intended.
  }
  auto ab = BuildObject(left_ids);
  auto ab_rhs = BuildObject(right_ids);
  ASSERT_TRUE(ab->MergeWith(*ab_rhs).ok());
  auto ba = BuildObject(right_ids);
  auto ba_rhs = BuildObject(left_ids);
  ASSERT_TRUE(ba->MergeWith(*ba_rhs).ok());

  EXPECT_EQ(ab->NumAnnotations(), ba->NumAnnotations());
  std::vector<ann::AnnotationId> all_ids;
  for (size_t i = 0; i < param.population; ++i) all_ids.push_back(i);
  EXPECT_EQ(ContributingIds(*ab, all_ids), ContributingIds(*ba, all_ids));
}

TEST_P(SummaryAlgebraProperty, SelfMergeIsIdempotent) {
  const PropertyCase& param = GetParam();
  std::vector<ann::AnnotationId> ids;
  for (size_t i = 0; i < param.population; ++i) ids.push_back(i);
  auto object = BuildObject(ids);
  size_t before = object->NumAnnotations();
  auto twin = object->Clone();
  ASSERT_TRUE(object->MergeWith(*twin).ok());
  EXPECT_EQ(object->NumAnnotations(), before);
}

TEST_P(SummaryAlgebraProperty, RemoveEveryAnnotationEmptiesObject) {
  const PropertyCase& param = GetParam();
  std::vector<ann::AnnotationId> ids;
  for (size_t i = 0; i < param.population; ++i) ids.push_back(i);
  auto object = BuildObject(ids);
  for (ann::AnnotationId id : ids) {
    if (object->Contains(id)) {
      ASSERT_TRUE(object->RemoveAnnotation(id).ok()) << id;
    }
  }
  EXPECT_EQ(object->NumAnnotations(), 0u);
  // Classifier keeps its (empty) label components; cluster/snippet have none.
  for (size_t c = 0; c < object->NumComponents(); ++c) {
    auto members = object->ZoomIn(c);
    ASSERT_TRUE(members.ok());
    EXPECT_TRUE(members->empty());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SummaryAlgebraProperty,
    ::testing::Values(PropertyCase{0, 1, 10}, PropertyCase{0, 2, 60},
                      PropertyCase{0, 3, 200}, PropertyCase{1, 1, 10},
                      PropertyCase{1, 2, 60}, PropertyCase{1, 3, 200},
                      PropertyCase{2, 1, 10}, PropertyCase{2, 2, 60},
                      PropertyCase{2, 3, 200}),
    CaseName);

}  // namespace
}  // namespace insightnotes::core
