#include <gtest/gtest.h>

#include <memory>

#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/nested_loop_join.h"
#include "exec/projection.h"
#include "exec/seq_scan.h"
#include "exec/sort.h"
#include "testutil.h"

namespace insightnotes::exec {
namespace {

using core::AnnotatedTuple;
using rel::CompareOp;
using rel::MakeCompare;
using rel::MakeLiteral;
using testutil::Col;
using testutil::I;
using testutil::S;

class OperatorTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
  }

  std::unique_ptr<Operator> Scan(const std::string& table, const std::string& alias) {
    auto scan = engine_->MakeScan(table, alias);
    EXPECT_TRUE(scan.ok());
    return std::move(*scan);
  }

  std::vector<AnnotatedTuple> Drain(Operator* op) {
    EXPECT_TRUE(op->Open().ok());
    std::vector<AnnotatedTuple> out;
    AnnotatedTuple t;
    while (true) {
      auto more = op->Next(&t);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      out.push_back(std::move(t));
      t = AnnotatedTuple();
    }
    return out;
  }
};

TEST_F(OperatorTest, SeqScanProducesAllRowsWithSummaries) {
  auto scan = Scan("R", "r");
  auto rows = Drain(scan.get());
  ASSERT_EQ(rows.size(), 3u);
  // Four instances linked to R.
  EXPECT_EQ(rows[0].summaries.size(), 4u);
  EXPECT_EQ(scan->OutputSchema().ToString(),
            "(r.a BIGINT, r.b BIGINT, r.c TEXT, r.d TEXT)");
}

TEST_F(OperatorTest, SeqScanWithoutSummaries) {
  auto scan = engine_->MakeScan("R", "r", /*with_summaries=*/false);
  ASSERT_TRUE(scan.ok());
  auto rows = Drain(scan->get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0].summaries.empty());
  EXPECT_TRUE(rows[0].attachments.empty());
}

TEST_F(OperatorTest, SeqScanCarriesAttachmentMetadata) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "eating stonewort", {2})).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "whole row note")).ok());
  auto scan = Scan("R", "r");
  auto rows = Drain(scan.get());
  ASSERT_EQ(rows[0].attachments.size(), 2u);
  EXPECT_EQ(rows[0].attachments[0].columns, (std::vector<size_t>{2}));
  EXPECT_TRUE(rows[0].attachments[1].columns.empty());
}

TEST_F(OperatorTest, FilterKeepsMatching) {
  auto scan = Scan("R", "r");
  const auto& schema = scan->OutputSchema();
  auto filter = std::make_unique<FilterOperator>(
      std::move(scan),
      MakeCompare(CompareOp::kEq, Col(schema, "r.b"), MakeLiteral(I(2))));
  auto rows = Drain(filter.get());
  ASSERT_EQ(rows.size(), 2u);
  for (const auto& row : rows) {
    EXPECT_EQ(row.tuple.ValueAt(1).AsInt64(), 2);
    EXPECT_EQ(row.summaries.size(), 4u);  // Selection leaves summaries alone.
  }
}

TEST_F(OperatorTest, ProjectionTrimsAnnotationsOnDroppedColumns) {
  // Annotation on column c (position 2) must vanish when projecting (a, b);
  // annotation on column a must survive; whole-row annotation survives.
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "eating stonewort", {2})).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "wingspan is large", {0})).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "influenza suspected")).ok());

  auto scan = Scan("R", "r");
  auto project = ProjectOperator::FromColumns(std::move(scan), {"r.a", "r.b"});
  ASSERT_TRUE(project.ok());
  auto rows = Drain(project->get());
  ASSERT_EQ(rows.size(), 3u);
  const AnnotatedTuple& row0 = rows[0];
  EXPECT_EQ(row0.tuple.NumValues(), 2u);
  ASSERT_EQ(row0.attachments.size(), 2u);
  // ClassBird1 object must have dropped exactly the column-c annotation.
  auto* class1 = row0.FindSummary("ClassBird1");
  ASSERT_NE(class1, nullptr);
  EXPECT_EQ(class1->NumAnnotations(), 2u);
  EXPECT_FALSE(class1->Contains(0));
  EXPECT_TRUE(class1->Contains(1));
  EXPECT_TRUE(class1->Contains(2));
}

TEST_F(OperatorTest, ProjectionRemapsAttachmentColumns) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "note on c", {2})).ok());
  auto scan = Scan("R", "r");
  // Output order (c, a): child column 2 -> output position 0.
  auto project = ProjectOperator::FromColumns(std::move(scan), {"r.c", "r.a"});
  ASSERT_TRUE(project.ok());
  auto rows = Drain(project->get());
  ASSERT_EQ(rows[0].attachments.size(), 1u);
  EXPECT_EQ(rows[0].attachments[0].columns, (std::vector<size_t>{0}));
}

TEST_F(OperatorTest, HashJoinMergesSummaries) {
  // ClassBird2 is linked to both R and S -> counterparts merge. ClassBird1
  // and TextSummary1 exist only on R -> propagate unchanged.
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "produced by experiment alpha")).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("S", 0, "why is this value so high")).ok());

  auto left = Scan("R", "r");
  auto right = Scan("S", "s");
  auto join = std::make_unique<HashJoinOperator>(
      std::move(left), std::move(right),
      Col(engine_->catalog()->GetTable("R").value()->schema().WithQualifier("r"), "r.a"),
      Col(engine_->catalog()->GetTable("S").value()->schema().WithQualifier("s"), "s.x"));
  auto rows = Drain(join.get());
  // R.a values {1,2,3} join S.x values {1,3,4} -> matches on 1 and 3.
  ASSERT_EQ(rows.size(), 2u);
  const AnnotatedTuple* joined_row0 = nullptr;
  for (const auto& row : rows) {
    if (row.tuple.ValueAt(0).AsInt64() == 1) joined_row0 = &row;
  }
  ASSERT_NE(joined_row0, nullptr);
  EXPECT_EQ(joined_row0->tuple.NumValues(), 7u);
  // Summary objects: ClassBird1, ClassBird2 (merged), SimCluster (merged),
  // TextSummary1 -> 4 distinct instances.
  EXPECT_EQ(joined_row0->summaries.size(), 4u);
  auto* class2 = joined_row0->FindSummary("ClassBird2");
  ASSERT_NE(class2, nullptr);
  EXPECT_EQ(class2->NumAnnotations(), 2u);  // One from each side.
}

TEST_F(OperatorTest, HashJoinSharedAnnotationCountedOnce) {
  // The same annotation attached to R row 0 and S row 0.
  auto id = engine_->Annotate(Spec("R", 0, "produced by experiment shared"));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine_->AttachAnnotation(*id, "S", 0).ok());

  auto join = std::make_unique<HashJoinOperator>(
      Scan("R", "r"), Scan("S", "s"),
      Col(engine_->catalog()->GetTable("R").value()->schema().WithQualifier("r"), "r.a"),
      Col(engine_->catalog()->GetTable("S").value()->schema().WithQualifier("s"), "s.x"));
  auto rows = Drain(join.get());
  for (const auto& row : rows) {
    if (row.tuple.ValueAt(0).AsInt64() != 1) continue;
    auto* class2 = row.FindSummary("ClassBird2");
    ASSERT_NE(class2, nullptr);
    EXPECT_EQ(class2->NumAnnotations(), 1u);  // Not double counted.
    // Attachment metadata also deduplicated.
    size_t count = 0;
    for (const auto& att : row.attachments) {
      if (att.id == *id) ++count;
    }
    EXPECT_EQ(count, 1u);
  }
}

TEST_F(OperatorTest, NestedLoopJoinMatchesHashJoinOnEquiPredicate) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 2, "note on row three")).ok());
  auto r_schema = engine_->catalog()->GetTable("R").value()->schema().WithQualifier("r");
  auto s_schema = engine_->catalog()->GetTable("S").value()->schema().WithQualifier("s");
  auto joined_schema = rel::Schema::Concat(r_schema, s_schema);

  auto hash_join = std::make_unique<HashJoinOperator>(
      Scan("R", "r"), Scan("S", "s"), Col(r_schema, "r.a"), Col(s_schema, "s.x"));
  auto nl_join = std::make_unique<NestedLoopJoinOperator>(
      Scan("R", "r"), Scan("S", "s"),
      MakeCompare(CompareOp::kEq, Col(joined_schema, "r.a"), Col(joined_schema, "s.x")));
  auto hash_rows = Drain(hash_join.get());
  auto nl_rows = Drain(nl_join.get());
  ASSERT_EQ(hash_rows.size(), nl_rows.size());
  for (size_t i = 0; i < hash_rows.size(); ++i) {
    EXPECT_EQ(hash_rows[i].tuple, nl_rows[i].tuple);
  }
}

TEST_F(OperatorTest, AggregateCountsAndMergesSummaries) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "eating stonewort")).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 1, "influenza signs")).ok());
  auto scan = Scan("R", "r");
  const auto& schema = scan->OutputSchema();
  std::vector<rel::ExprPtr> group;
  group.push_back(Col(schema, "r.b"));
  std::vector<AggregateItem> aggs;
  aggs.push_back(AggregateItem{AggregateFunction::kCountStar, nullptr, "cnt"});
  aggs.push_back(AggregateItem{AggregateFunction::kSum, Col(schema, "r.a"), "suma"});
  auto agg = std::make_unique<AggregateOperator>(
      std::move(scan), std::move(group),
      std::vector<rel::Column>{{"b", rel::ValueType::kInt64, ""}}, std::move(aggs));
  auto rows = Drain(agg.get());
  ASSERT_EQ(rows.size(), 2u);  // b = 2 (rows 0,1) and b = 9 (row 2).
  const AnnotatedTuple* b2 = nullptr;
  for (const auto& row : rows) {
    if (row.tuple.ValueAt(0).AsInt64() == 2) b2 = &row;
  }
  ASSERT_NE(b2, nullptr);
  EXPECT_EQ(b2->tuple.ValueAt(1).AsInt64(), 2);   // COUNT(*).
  EXPECT_EQ(b2->tuple.ValueAt(2).AsInt64(), 3);   // SUM(a) = 1 + 2.
  // Both rows' annotations merged into the group summary.
  auto* class1 = b2->FindSummary("ClassBird1");
  ASSERT_NE(class1, nullptr);
  EXPECT_EQ(class1->NumAnnotations(), 2u);
}

TEST_F(OperatorTest, GlobalAggregateOverEmptyInput) {
  auto scan = Scan("R", "r");
  const auto& schema = scan->OutputSchema();
  auto filter = std::make_unique<FilterOperator>(
      std::move(scan),
      MakeCompare(CompareOp::kEq, Col(schema, "r.a"), MakeLiteral(I(999))));
  std::vector<AggregateItem> aggs;
  aggs.push_back(AggregateItem{AggregateFunction::kCountStar, nullptr, "cnt"});
  auto agg = std::make_unique<AggregateOperator>(std::move(filter),
                                                 std::vector<rel::ExprPtr>{},
                                                 std::vector<rel::Column>{},
                                                 std::move(aggs));
  auto rows = Drain(agg.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 0);
}

TEST_F(OperatorTest, DistinctMergesDuplicateSummaries) {
  ASSERT_TRUE(engine_->Annotate(Spec("R", 0, "eating stonewort")).ok());
  ASSERT_TRUE(engine_->Annotate(Spec("R", 1, "influenza detected")).ok());
  // Project b only: rows 0 and 1 both give (2) -> duplicates to eliminate.
  auto project = ProjectOperator::FromColumns(Scan("R", "r"), {"r.b"});
  ASSERT_TRUE(project.ok());
  auto distinct = std::make_unique<DistinctOperator>(std::move(*project));
  auto rows = Drain(distinct.get());
  ASSERT_EQ(rows.size(), 2u);  // b = 2 and b = 9.
  const AnnotatedTuple* b2 = nullptr;
  for (const auto& row : rows) {
    if (row.tuple.ValueAt(0).AsInt64() == 2) b2 = &row;
  }
  ASSERT_NE(b2, nullptr);
  auto* class1 = b2->FindSummary("ClassBird1");
  ASSERT_NE(class1, nullptr);
  // Whole-row annotations of both collapsed rows merged.
  EXPECT_EQ(class1->NumAnnotations(), 2u);
}

TEST_F(OperatorTest, SortOrdersRows) {
  auto scan = Scan("R", "r");
  const auto& schema = scan->OutputSchema();
  std::vector<SortKey> keys;
  keys.push_back(SortKey{Col(schema, "r.a"), /*ascending=*/false});
  auto sort = std::make_unique<SortOperator>(std::move(scan), std::move(keys));
  auto rows = Drain(sort.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 3);
  EXPECT_EQ(rows[2].tuple.ValueAt(0).AsInt64(), 1);
}

TEST_F(OperatorTest, LimitStopsEarly) {
  auto limit = std::make_unique<LimitOperator>(Scan("R", "r"), 2);
  auto rows = Drain(limit.get());
  EXPECT_EQ(rows.size(), 2u);
}

TEST_F(OperatorTest, OperatorsAreReopenable) {
  auto scan = Scan("R", "r");
  auto first = Drain(scan.get());
  auto second = Drain(scan.get());
  EXPECT_EQ(first.size(), second.size());
}

TEST_F(OperatorTest, TraceSinkSeesTupleFlow) {
  auto filter = std::make_unique<FilterOperator>(
      Scan("R", "r"),
      MakeCompare(CompareOp::kEq,
                  Col(engine_->catalog()->GetTable("R").value()->schema().WithQualifier("r"), "r.b"),
                  MakeLiteral(I(2))));
  std::vector<core::TraceEvent> trace;
  auto result = engine_->Execute(std::move(filter), &trace);
  ASSERT_TRUE(result.ok());
  // 3 scan emissions + 2 filter emissions.
  EXPECT_EQ(trace.size(), 5u);
  int scans = 0;
  int filters = 0;
  for (const auto& event : trace) {
    if (event.op.rfind("SeqScan", 0) == 0) ++scans;
    if (event.op.rfind("Filter", 0) == 0) ++filters;
  }
  EXPECT_EQ(scans, 3);
  EXPECT_EQ(filters, 2);
}

}  // namespace
}  // namespace insightnotes::exec
