// Edge-case coverage for the summary-aware operators: duplicate join keys,
// NULL keys, sort stability, string aggregates, empty inputs, expression
// projections.

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/projection.h"
#include "exec/sort.h"
#include "testutil.h"

namespace insightnotes::exec {
namespace {

using core::AnnotatedTuple;
using testutil::Col;
using testutil::F;
using testutil::I;
using testutil::S;

class OperatorEdgeTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    ASSERT_TRUE(engine_
                    ->CreateTable("L", rel::Schema({{"k", rel::ValueType::kInt64, "L"},
                                                    {"v", rel::ValueType::kString, "L"}}))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("R2", rel::Schema({{"k", rel::ValueType::kInt64, "R2"},
                                                     {"w", rel::ValueType::kString, "R2"}}))
                    .ok());
  }

  void Insert(const std::string& table, rel::Tuple tuple) {
    ASSERT_TRUE(engine_->Insert(table, std::move(tuple)).ok());
  }

  std::unique_ptr<Operator> Scan(const std::string& table, const std::string& alias) {
    auto scan = engine_->MakeScan(table, alias);
    EXPECT_TRUE(scan.ok());
    return std::move(*scan);
  }

  std::vector<AnnotatedTuple> Drain(Operator* op) {
    EXPECT_TRUE(op->Open().ok());
    std::vector<AnnotatedTuple> out;
    AnnotatedTuple t;
    while (true) {
      auto more = op->Next(&t);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      out.push_back(std::move(t));
      t = AnnotatedTuple();
    }
    return out;
  }
};

TEST_F(OperatorEdgeTest, HashJoinDuplicateKeysProduceCrossMatches) {
  Insert("L", rel::Tuple({I(1), S("l1")}));
  Insert("L", rel::Tuple({I(1), S("l2")}));
  Insert("R2", rel::Tuple({I(1), S("r1")}));
  Insert("R2", rel::Tuple({I(1), S("r2")}));
  Insert("R2", rel::Tuple({I(2), S("r3")}));
  auto left = Scan("L", "l");
  auto right = Scan("R2", "r");
  auto join = std::make_unique<HashJoinOperator>(
      std::move(left), std::move(right), rel::MakeColumn(0, "l.k"),
      rel::MakeColumn(0, "r.k"));
  auto rows = Drain(join.get());
  EXPECT_EQ(rows.size(), 4u);  // 2 x 2 on key 1.
}

TEST_F(OperatorEdgeTest, HashJoinNullKeysNeverJoin) {
  Insert("L", rel::Tuple({rel::Value::Null(), S("null-left")}));
  Insert("R2", rel::Tuple({rel::Value::Null(), S("null-right")}));
  Insert("L", rel::Tuple({I(5), S("five")}));
  Insert("R2", rel::Tuple({I(5), S("cinq")}));
  auto join = std::make_unique<HashJoinOperator>(
      Scan("L", "l"), Scan("R2", "r"), rel::MakeColumn(0, "l.k"),
      rel::MakeColumn(0, "r.k"));
  auto rows = Drain(join.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(1).AsString(), "five");
}

TEST_F(OperatorEdgeTest, HashJoinEmptyBuildSide) {
  Insert("L", rel::Tuple({I(1), S("x")}));
  auto join = std::make_unique<HashJoinOperator>(
      Scan("L", "l"), Scan("R2", "r"), rel::MakeColumn(0, "l.k"),
      rel::MakeColumn(0, "r.k"));
  EXPECT_TRUE(Drain(join.get()).empty());
}

TEST_F(OperatorEdgeTest, SortIsStable) {
  // Equal keys keep insertion order.
  for (int i = 0; i < 5; ++i) {
    Insert("L", rel::Tuple({I(7), S("row" + std::to_string(i))}));
  }
  std::vector<SortKey> keys;
  keys.push_back(SortKey{rel::MakeColumn(0, "k"), true});
  auto sort = std::make_unique<SortOperator>(Scan("L", "l"), std::move(keys));
  auto rows = Drain(sort.get());
  ASSERT_EQ(rows.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[i].tuple.ValueAt(1).AsString(), "row" + std::to_string(i));
  }
}

TEST_F(OperatorEdgeTest, SortNullsFirst) {
  Insert("L", rel::Tuple({I(2), S("b")}));
  Insert("L", rel::Tuple({rel::Value::Null(), S("n")}));
  Insert("L", rel::Tuple({I(1), S("a")}));
  std::vector<SortKey> keys;
  keys.push_back(SortKey{rel::MakeColumn(0, "k"), true});
  auto sort = std::make_unique<SortOperator>(Scan("L", "l"), std::move(keys));
  auto rows = Drain(sort.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0].tuple.ValueAt(0).is_null());
  EXPECT_EQ(rows[1].tuple.ValueAt(0).AsInt64(), 1);
}

TEST_F(OperatorEdgeTest, LimitBeyondInputSize) {
  Insert("L", rel::Tuple({I(1), S("only")}));
  auto limit = std::make_unique<LimitOperator>(Scan("L", "l"), 100);
  EXPECT_EQ(Drain(limit.get()).size(), 1u);
}

TEST_F(OperatorEdgeTest, MinMaxOverStrings) {
  Insert("L", rel::Tuple({I(1), S("pear")}));
  Insert("L", rel::Tuple({I(2), S("apple")}));
  Insert("L", rel::Tuple({I(3), S("quince")}));
  std::vector<AggregateItem> aggs;
  aggs.push_back(AggregateItem{AggregateFunction::kMin, rel::MakeColumn(1, "v"), "lo"});
  aggs.push_back(AggregateItem{AggregateFunction::kMax, rel::MakeColumn(1, "v"), "hi"});
  auto agg = std::make_unique<AggregateOperator>(Scan("L", "l"),
                                                 std::vector<rel::ExprPtr>{},
                                                 std::vector<rel::Column>{},
                                                 std::move(aggs));
  auto rows = Drain(agg.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsString(), "apple");
  EXPECT_EQ(rows[0].tuple.ValueAt(1).AsString(), "quince");
}

TEST_F(OperatorEdgeTest, AggregateIgnoresNulls) {
  Insert("L", rel::Tuple({I(10), S("a")}));
  Insert("L", rel::Tuple({rel::Value::Null(), S("b")}));
  std::vector<AggregateItem> aggs;
  aggs.push_back(AggregateItem{AggregateFunction::kCount, rel::MakeColumn(0, "k"), "c"});
  aggs.push_back(AggregateItem{AggregateFunction::kSum, rel::MakeColumn(0, "k"), "s"});
  aggs.push_back(AggregateItem{AggregateFunction::kCountStar, nullptr, "n"});
  auto agg = std::make_unique<AggregateOperator>(Scan("L", "l"),
                                                 std::vector<rel::ExprPtr>{},
                                                 std::vector<rel::Column>{},
                                                 std::move(aggs));
  auto rows = Drain(agg.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 1);   // COUNT(k) skips NULL.
  EXPECT_EQ(rows[0].tuple.ValueAt(1).AsInt64(), 10);  // SUM skips NULL.
  EXPECT_EQ(rows[0].tuple.ValueAt(2).AsInt64(), 2);   // COUNT(*) does not.
}

TEST_F(OperatorEdgeTest, DistinctOnEmptyInput) {
  auto distinct = std::make_unique<DistinctOperator>(Scan("L", "l"));
  EXPECT_TRUE(Drain(distinct.get()).empty());
}

TEST_F(OperatorEdgeTest, DistinctTreatsNullsEqual) {
  Insert("L", rel::Tuple({rel::Value::Null(), S("x")}));
  Insert("L", rel::Tuple({rel::Value::Null(), S("x")}));
  auto distinct = std::make_unique<DistinctOperator>(Scan("L", "l"));
  EXPECT_EQ(Drain(distinct.get()).size(), 1u);
}

TEST_F(OperatorEdgeTest, ProjectionWithComputedExpression) {
  Insert("L", rel::Tuple({I(21), S("x")}));
  std::vector<ProjectionItem> items;
  ProjectionItem item;
  item.expr = rel::MakeArithmetic(rel::ArithmeticOp::kMul, rel::MakeColumn(0, "k"),
                                  rel::MakeLiteral(I(2)));
  item.output_name = "doubled";
  items.push_back(std::move(item));
  auto project = std::make_unique<ProjectOperator>(Scan("L", "l"), std::move(items));
  auto rows = Drain(project.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 42);
  EXPECT_EQ(project->OutputSchema().ColumnAt(0).name, "doubled");
}

TEST_F(OperatorEdgeTest, FilterTypeErrorSurfaces) {
  Insert("L", rel::Tuple({I(1), S("x")}));
  // Comparing a string column with an int literal is a type error.
  auto filter = std::make_unique<FilterOperator>(
      Scan("L", "l"), rel::MakeCompare(rel::CompareOp::kEq, rel::MakeColumn(1, "v"),
                                       rel::MakeLiteral(I(1))));
  ASSERT_TRUE(filter->Open().ok());
  AnnotatedTuple t;
  auto more = filter->Next(&t);
  EXPECT_TRUE(more.status().IsTypeError());
}

}  // namespace
}  // namespace insightnotes::exec
