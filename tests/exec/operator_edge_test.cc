// Edge-case coverage for the summary-aware operators: duplicate join keys,
// NULL keys, sort stability, string aggregates, empty inputs, expression
// projections — plus the top-k LIMIT pushdown property suite (boundary
// k values, tie groups straddling the cut, the shared TopKBound protocol,
// and the no-ORDER-BY RowQuota with a late-publishing worker).

#include <gtest/gtest.h>

#include "exec/aggregate.h"
#include "exec/distinct.h"
#include "exec/filter.h"
#include "exec/hash_join.h"
#include "exec/parallel.h"
#include "exec/projection.h"
#include "exec/sort.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "testutil.h"

namespace insightnotes::exec {
namespace {

using core::AnnotatedTuple;
using testutil::Col;
using testutil::F;
using testutil::I;
using testutil::S;

class OperatorEdgeTest : public testutil::EngineFixture {
 protected:
  void SetUp() override {
    testutil::EngineFixture::SetUp();
    ASSERT_TRUE(engine_
                    ->CreateTable("L", rel::Schema({{"k", rel::ValueType::kInt64, "L"},
                                                    {"v", rel::ValueType::kString, "L"}}))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("R2", rel::Schema({{"k", rel::ValueType::kInt64, "R2"},
                                                     {"w", rel::ValueType::kString, "R2"}}))
                    .ok());
  }

  void Insert(const std::string& table, rel::Tuple tuple) {
    ASSERT_TRUE(engine_->Insert(table, std::move(tuple)).ok());
  }

  std::unique_ptr<Operator> Scan(const std::string& table, const std::string& alias) {
    auto scan = engine_->MakeScan(table, alias);
    EXPECT_TRUE(scan.ok());
    return std::move(*scan);
  }

  std::vector<AnnotatedTuple> Drain(Operator* op) {
    EXPECT_TRUE(op->Open().ok());
    std::vector<AnnotatedTuple> out;
    AnnotatedTuple t;
    while (true) {
      auto more = op->Next(&t);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !*more) break;
      out.push_back(std::move(t));
      t = AnnotatedTuple();
    }
    return out;
  }
};

TEST_F(OperatorEdgeTest, HashJoinDuplicateKeysProduceCrossMatches) {
  Insert("L", rel::Tuple({I(1), S("l1")}));
  Insert("L", rel::Tuple({I(1), S("l2")}));
  Insert("R2", rel::Tuple({I(1), S("r1")}));
  Insert("R2", rel::Tuple({I(1), S("r2")}));
  Insert("R2", rel::Tuple({I(2), S("r3")}));
  auto left = Scan("L", "l");
  auto right = Scan("R2", "r");
  auto join = std::make_unique<HashJoinOperator>(
      std::move(left), std::move(right), rel::MakeColumn(0, "l.k"),
      rel::MakeColumn(0, "r.k"));
  auto rows = Drain(join.get());
  EXPECT_EQ(rows.size(), 4u);  // 2 x 2 on key 1.
}

TEST_F(OperatorEdgeTest, HashJoinNullKeysNeverJoin) {
  Insert("L", rel::Tuple({rel::Value::Null(), S("null-left")}));
  Insert("R2", rel::Tuple({rel::Value::Null(), S("null-right")}));
  Insert("L", rel::Tuple({I(5), S("five")}));
  Insert("R2", rel::Tuple({I(5), S("cinq")}));
  auto join = std::make_unique<HashJoinOperator>(
      Scan("L", "l"), Scan("R2", "r"), rel::MakeColumn(0, "l.k"),
      rel::MakeColumn(0, "r.k"));
  auto rows = Drain(join.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(1).AsString(), "five");
}

TEST_F(OperatorEdgeTest, HashJoinEmptyBuildSide) {
  Insert("L", rel::Tuple({I(1), S("x")}));
  auto join = std::make_unique<HashJoinOperator>(
      Scan("L", "l"), Scan("R2", "r"), rel::MakeColumn(0, "l.k"),
      rel::MakeColumn(0, "r.k"));
  EXPECT_TRUE(Drain(join.get()).empty());
}

TEST_F(OperatorEdgeTest, SortIsStable) {
  // Equal keys keep insertion order.
  for (int i = 0; i < 5; ++i) {
    Insert("L", rel::Tuple({I(7), S("row" + std::to_string(i))}));
  }
  std::vector<SortKey> keys;
  keys.push_back(SortKey{rel::MakeColumn(0, "k"), true});
  auto sort = std::make_unique<SortOperator>(Scan("L", "l"), std::move(keys));
  auto rows = Drain(sort.get());
  ASSERT_EQ(rows.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(rows[i].tuple.ValueAt(1).AsString(), "row" + std::to_string(i));
  }
}

TEST_F(OperatorEdgeTest, SortNullsFirst) {
  Insert("L", rel::Tuple({I(2), S("b")}));
  Insert("L", rel::Tuple({rel::Value::Null(), S("n")}));
  Insert("L", rel::Tuple({I(1), S("a")}));
  std::vector<SortKey> keys;
  keys.push_back(SortKey{rel::MakeColumn(0, "k"), true});
  auto sort = std::make_unique<SortOperator>(Scan("L", "l"), std::move(keys));
  auto rows = Drain(sort.get());
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_TRUE(rows[0].tuple.ValueAt(0).is_null());
  EXPECT_EQ(rows[1].tuple.ValueAt(0).AsInt64(), 1);
}

TEST_F(OperatorEdgeTest, LimitBeyondInputSize) {
  Insert("L", rel::Tuple({I(1), S("only")}));
  auto limit = std::make_unique<LimitOperator>(Scan("L", "l"), 100);
  EXPECT_EQ(Drain(limit.get()).size(), 1u);
}

TEST_F(OperatorEdgeTest, MinMaxOverStrings) {
  Insert("L", rel::Tuple({I(1), S("pear")}));
  Insert("L", rel::Tuple({I(2), S("apple")}));
  Insert("L", rel::Tuple({I(3), S("quince")}));
  std::vector<AggregateItem> aggs;
  aggs.push_back(AggregateItem{AggregateFunction::kMin, rel::MakeColumn(1, "v"), "lo"});
  aggs.push_back(AggregateItem{AggregateFunction::kMax, rel::MakeColumn(1, "v"), "hi"});
  auto agg = std::make_unique<AggregateOperator>(Scan("L", "l"),
                                                 std::vector<rel::ExprPtr>{},
                                                 std::vector<rel::Column>{},
                                                 std::move(aggs));
  auto rows = Drain(agg.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsString(), "apple");
  EXPECT_EQ(rows[0].tuple.ValueAt(1).AsString(), "quince");
}

TEST_F(OperatorEdgeTest, AggregateIgnoresNulls) {
  Insert("L", rel::Tuple({I(10), S("a")}));
  Insert("L", rel::Tuple({rel::Value::Null(), S("b")}));
  std::vector<AggregateItem> aggs;
  aggs.push_back(AggregateItem{AggregateFunction::kCount, rel::MakeColumn(0, "k"), "c"});
  aggs.push_back(AggregateItem{AggregateFunction::kSum, rel::MakeColumn(0, "k"), "s"});
  aggs.push_back(AggregateItem{AggregateFunction::kCountStar, nullptr, "n"});
  auto agg = std::make_unique<AggregateOperator>(Scan("L", "l"),
                                                 std::vector<rel::ExprPtr>{},
                                                 std::vector<rel::Column>{},
                                                 std::move(aggs));
  auto rows = Drain(agg.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 1);   // COUNT(k) skips NULL.
  EXPECT_EQ(rows[0].tuple.ValueAt(1).AsInt64(), 10);  // SUM skips NULL.
  EXPECT_EQ(rows[0].tuple.ValueAt(2).AsInt64(), 2);   // COUNT(*) does not.
}

TEST_F(OperatorEdgeTest, DistinctOnEmptyInput) {
  auto distinct = std::make_unique<DistinctOperator>(Scan("L", "l"));
  EXPECT_TRUE(Drain(distinct.get()).empty());
}

TEST_F(OperatorEdgeTest, DistinctTreatsNullsEqual) {
  Insert("L", rel::Tuple({rel::Value::Null(), S("x")}));
  Insert("L", rel::Tuple({rel::Value::Null(), S("x")}));
  auto distinct = std::make_unique<DistinctOperator>(Scan("L", "l"));
  EXPECT_EQ(Drain(distinct.get()).size(), 1u);
}

TEST_F(OperatorEdgeTest, ProjectionWithComputedExpression) {
  Insert("L", rel::Tuple({I(21), S("x")}));
  std::vector<ProjectionItem> items;
  ProjectionItem item;
  item.expr = rel::MakeArithmetic(rel::ArithmeticOp::kMul, rel::MakeColumn(0, "k"),
                                  rel::MakeLiteral(I(2)));
  item.output_name = "doubled";
  items.push_back(std::move(item));
  auto project = std::make_unique<ProjectOperator>(Scan("L", "l"), std::move(items));
  auto rows = Drain(project.get());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].tuple.ValueAt(0).AsInt64(), 42);
  EXPECT_EQ(project->OutputSchema().ColumnAt(0).name, "doubled");
}

// ---- Top-K LIMIT pushdown properties ----

class TopKPropertyTest : public OperatorEdgeTest {
 protected:
  /// 40 rows in 4 tie groups of 10 on k (0,0,...,1,1,...), v records the
  /// insertion order so stable-tie order is observable byte for byte.
  void FillTieGroups() {
    for (int i = 0; i < 40; ++i) {
      Insert("L", rel::Tuple({I(i / 10), S("row" + std::to_string(i))}));
    }
  }

  std::vector<std::string> RunSql(const std::string& sql_text, size_t parallelism,
                                  size_t morsel_size = 4) {
    auto statement = sql::Parse(sql_text);
    EXPECT_TRUE(statement.ok()) << statement.status().ToString();
    auto* select = std::get_if<sql::SelectStatement>(&*statement);
    EXPECT_NE(select, nullptr);
    sql::PlannerOptions options;
    options.parallelism = parallelism;
    options.morsel_size = morsel_size;
    auto plan = sql::PlanSelect(*select, engine_.get(), options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    auto result = engine_->Execute(std::move(*plan));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    std::vector<std::string> rows;
    if (result.ok()) {
      for (const auto& row : result->rows) rows.push_back(row.tuple.ToString());
    }
    return rows;
  }

  void ExpectSerialParallelEqual(const std::string& sql_text) {
    SCOPED_TRACE(sql_text);
    std::vector<std::string> serial = RunSql(sql_text, 1);
    for (size_t parallelism : {2u, 4u, 8u}) {
      SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
      EXPECT_EQ(serial, RunSql(sql_text, parallelism));
    }
  }
};

TEST_F(TopKPropertyTest, OrderByLimitBoundaryValues) {
  FillTieGroups();
  // k = 0, 1, n-1, n, and beyond n (n = 40).
  for (int k : {0, 1, 39, 40, 100}) {
    ExpectSerialParallelEqual("SELECT l.k, l.v FROM L l ORDER BY l.k LIMIT " +
                              std::to_string(k));
  }
}

TEST_F(TopKPropertyTest, DuplicateKeysStraddlingTheBoundary) {
  FillTieGroups();
  // LIMIT 15 cuts through the second tie group (rows 10..19 share k = 1):
  // the kept ties must be the first 5 of the group in insertion order.
  std::vector<std::string> rows =
      RunSql("SELECT l.v FROM L l ORDER BY l.k LIMIT 15", 8);
  ASSERT_EQ(rows.size(), 15u);
  for (int i = 0; i < 15; ++i) {
    EXPECT_EQ(rows[i], rel::Tuple({S("row" + std::to_string(i))}).ToString());
  }
  ExpectSerialParallelEqual("SELECT l.v FROM L l ORDER BY l.k LIMIT 15");
  ExpectSerialParallelEqual("SELECT l.v FROM L l ORDER BY l.k DESC LIMIT 15");
}

TEST_F(TopKPropertyTest, LimitUnderDistinctAndAggregation) {
  FillTieGroups();
  // DISTINCT dedups between sort and limit, so the planner must NOT push
  // the limit into the sort; the result must still match serial.
  ExpectSerialParallelEqual("SELECT DISTINCT l.k FROM L l ORDER BY l.k LIMIT 2");
  ExpectSerialParallelEqual("SELECT DISTINCT l.k FROM L l LIMIT 3");
  ExpectSerialParallelEqual(
      "SELECT l.k, COUNT(*) FROM L l GROUP BY l.k ORDER BY l.k LIMIT 2");
  ExpectSerialParallelEqual("SELECT l.k, COUNT(*) FROM L l GROUP BY l.k LIMIT 2");
}

TEST_F(TopKPropertyTest, NoOrderByQuotaTakesSerialPrefix) {
  FillTieGroups();
  // Plain LIMIT: serial semantics are the first k rows in insertion order;
  // the quota-stopped parallel scan must produce exactly those.
  for (int k : {0, 1, 7, 39, 40, 100}) {
    ExpectSerialParallelEqual("SELECT l.k, l.v FROM L l LIMIT " + std::to_string(k));
  }
  std::vector<std::string> rows = RunSql("SELECT l.v FROM L l LIMIT 7", 8);
  ASSERT_EQ(rows.size(), 7u);
  for (int i = 0; i < 7; ++i) {
    EXPECT_EQ(rows[i], rel::Tuple({S("row" + std::to_string(i))}).ToString());
  }
}

TEST_F(TopKPropertyTest, TopKBoundTightensMonotonically) {
  TopKBound bound(2, {true});
  ASSERT_TRUE(bound.Reset().ok());
  uint64_t version = 0;
  SortRunEntry seen;
  EXPECT_FALSE(bound.Refresh(&version, &seen));  // Nothing published yet.

  SortRunEntry first;
  first.keys = {I(5)};
  first.morsel = 0;
  first.pos = 3;
  EXPECT_TRUE(bound.Tighten(first));
  EXPECT_TRUE(bound.Refresh(&version, &seen));
  EXPECT_EQ(seen.keys[0].AsInt64(), 5);
  EXPECT_EQ(seen.pos, 3u);
  EXPECT_FALSE(bound.Refresh(&version, &seen));  // Version unchanged.

  SortRunEntry worse;
  worse.keys = {I(9)};
  EXPECT_FALSE(bound.Tighten(worse));  // Only strict tightening is kept.
  EXPECT_FALSE(bound.Refresh(&version, &seen));

  SortRunEntry tie_better;  // Same key, earlier serial rank: tighter.
  tie_better.keys = {I(5)};
  tie_better.morsel = 0;
  tie_better.pos = 1;
  EXPECT_TRUE(bound.Tighten(tie_better));
  SortRunEntry better;
  better.keys = {I(3)};
  EXPECT_TRUE(bound.Tighten(better));
  EXPECT_TRUE(bound.Refresh(&version, &seen));
  EXPECT_EQ(seen.keys[0].AsInt64(), 3);

  ASSERT_TRUE(bound.Reset().ok());  // Re-execution starts unbounded.
  version = 0;
  EXPECT_FALSE(bound.Refresh(&version, &seen));
}

TEST_F(TopKPropertyTest, RowQuotaWaitsForLatePublisher) {
  RowQuota quota(10);
  ASSERT_TRUE(quota.Reset().ok());
  EXPECT_FALSE(quota.Satisfied());
  // Later morsels complete first: plenty of rows, but the prefix is
  // blocked on morsel 0, still owned by a slow worker.
  quota.OnMorselDone(1, 6);
  quota.OnMorselDone(2, 6);
  quota.OnMorselDone(4, 100);
  EXPECT_FALSE(quota.Satisfied());
  // The late worker publishes morsel 0: prefix = morsels 0..2 with
  // 4 + 6 + 6 >= 10 rows (morsel 4 stays outside the contiguous prefix).
  quota.OnMorselDone(0, 4);
  EXPECT_TRUE(quota.Satisfied());

  RowQuota zero(0);
  ASSERT_TRUE(zero.Reset().ok());
  EXPECT_TRUE(zero.Satisfied());  // LIMIT 0 never dispatches anything.

  ASSERT_TRUE(quota.Reset().ok());
  EXPECT_FALSE(quota.Satisfied());  // Reset rearms the quota.
}

TEST_F(OperatorEdgeTest, FilterTypeErrorSurfaces) {
  Insert("L", rel::Tuple({I(1), S("x")}));
  // Comparing a string column with an int literal is a type error.
  auto filter = std::make_unique<FilterOperator>(
      Scan("L", "l"), rel::MakeCompare(rel::CompareOp::kEq, rel::MakeColumn(1, "v"),
                                       rel::MakeLiteral(I(1))));
  ASSERT_TRUE(filter->Open().ok());
  AnnotatedTuple t;
  auto more = filter->Next(&t);
  EXPECT_TRUE(more.status().IsTypeError());
}

}  // namespace
}  // namespace insightnotes::exec
