// Executor fault sweep, mirroring the storage-side crash sweeps: a
// scripted FaultInjectingOperator is spliced into worker pipelines (via
// PlannerOptions::wrap_worker_pipeline) or onto the serial plan root, and
// fails / throws / stalls at the Nth NextBatch call on a chosen worker.
// Swept across operator shapes (gather, hash join, aggregation, sort,
// distinct, LIMIT quota) x parallelism x fault point, the executor must
// always surface a clean non-OK Status (never hang, crash or return a
// silently truncated result), and the very next execution of the same
// query must be byte-identical to serial — failed workers leave no torn
// shared state behind.

#include "exec/fault_injection.h"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/random.h"
#include "sql/parser.h"
#include "sql/planner.h"
#include "testutil.h"

namespace insightnotes {
namespace {

using testutil::EngineFixture;
using testutil::I;
using testutil::S;

constexpr int64_t kFactRows = 96;
constexpr int64_t kDimRows = 8;
// Small morsels so even short queries cross several NextBatch boundaries.
constexpr size_t kMorselSize = 16;

// One query per parallel operator shape.
const char* const kQueries[] = {
    // Plain gather: scan + filter + projection.
    "SELECT t.id, t.val FROM t t WHERE t.val > 10",
    // Shared-build hash join probed by every worker.
    "SELECT t.id, d.name FROM t t, d d WHERE t.grp = d.k AND t.val < 40",
    // Partial aggregation below the gather, merge above it.
    "SELECT t.grp, COUNT(*), SUM(t.val) FROM t t GROUP BY t.grp ORDER BY t.grp",
    // Partial top-k sort with the shared bound.
    "SELECT t.id, t.val FROM t t ORDER BY t.val, t.id LIMIT 20",
    // Partial distinct.
    "SELECT DISTINCT t.grp, t.txt FROM t t",
    // Row-quota LIMIT pushdown (no ORDER BY).
    "SELECT t.id FROM t t WHERE t.val > 5 LIMIT 7",
};

class ExecFaultSweepTest : public EngineFixture {
 protected:
  void SetUp() override {
    EngineFixture::SetUp();
    CreateFigure2Tables();
    CreateFigure2Instances();
    ASSERT_TRUE(engine_
                    ->CreateTable("t",
                                  rel::Schema({{"id", rel::ValueType::kInt64, "t"},
                                               {"grp", rel::ValueType::kInt64, "t"},
                                               {"val", rel::ValueType::kInt64, "t"},
                                               {"txt", rel::ValueType::kString, "t"}}))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("d",
                                  rel::Schema({{"k", rel::ValueType::kInt64, "d"},
                                               {"name", rel::ValueType::kString, "d"}}))
                    .ok());
    Random rng(7);
    for (int64_t i = 0; i < kFactRows; ++i) {
      ASSERT_TRUE(engine_
                      ->Insert("t", rel::Tuple({I(i), I(i % kDimRows),
                                                I(static_cast<int64_t>(rng.Uniform(50))),
                                                S("s" + std::to_string(i % 5))}))
                      .ok());
    }
    for (int64_t k = 0; k < kDimRows; ++k) {
      ASSERT_TRUE(
          engine_->Insert("d", rel::Tuple({I(k), S("g" + std::to_string(k))})).ok());
    }
    ASSERT_TRUE(engine_->LinkInstance("ClassBird1", "t").ok());
    for (int i = 0; i < 20; ++i) {
      ASSERT_TRUE(engine_
                      ->Annotate(Spec("t", static_cast<rel::RowId>(rng.Uniform(kFactRows)),
                                      "signs of influenza infection detected"))
                      .ok());
    }
  }

  /// Plans `sql_text` with the given parallelism; with a script, worker
  /// pipelines are wrapped (parallel plans) or the plan root is (serial).
  std::unique_ptr<exec::Operator> Plan(const std::string& sql_text, size_t parallelism,
                                       std::shared_ptr<exec::ExecFaultScript> script) {
    auto statement = sql::Parse(sql_text);
    EXPECT_TRUE(statement.ok()) << statement.status().ToString();
    auto* select = std::get_if<sql::SelectStatement>(&*statement);
    EXPECT_NE(select, nullptr);
    sql::PlannerOptions options;
    options.parallelism = parallelism;
    options.morsel_size = kMorselSize;
    if (script != nullptr && parallelism > 1) {
      options.wrap_worker_pipeline = [script](std::unique_ptr<exec::Operator> pipe,
                                              size_t worker) {
        return std::make_unique<exec::FaultInjectingOperator>(std::move(pipe), script,
                                                              worker);
      };
    }
    auto plan = sql::PlanSelect(*select, engine_.get(), options);
    EXPECT_TRUE(plan.ok()) << plan.status().ToString();
    if (!plan.ok()) return nullptr;
    if (script != nullptr && parallelism == 1) {
      // Serial plans have no worker pipelines; fault the root instead.
      return std::make_unique<exec::FaultInjectingOperator>(std::move(*plan), script,
                                                            /*worker=*/0);
    }
    return std::move(*plan);
  }

  /// Executes and renders byte-for-byte (data, summaries, attachments).
  Result<std::vector<std::string>> Run(const std::string& sql_text, size_t parallelism,
                                       std::shared_ptr<exec::ExecFaultScript> script) {
    std::unique_ptr<exec::Operator> plan = Plan(sql_text, parallelism, script);
    if (plan == nullptr) return Status::Internal("planning failed");
    INSIGHTNOTES_ASSIGN_OR_RETURN(core::QueryResult result,
                                  engine_->Execute(std::move(plan)));
    std::vector<std::string> rows;
    for (const core::AnnotatedTuple& row : result.rows) {
      std::ostringstream os;
      os << row.tuple.ToString();
      for (const auto& summary : row.summaries) {
        os << " || " << summary->instance_name() << "=" << summary->Render();
      }
      for (const auto& attachment : row.attachments) {
        os << " [A" << attachment.id << "]";
      }
      rows.push_back(os.str());
    }
    return rows;
  }
};

TEST_F(ExecFaultSweepTest, EveryOperatorParallelismAndFaultPoint) {
  for (const char* sql : kQueries) {
    auto serial = Run(sql, 1, nullptr);
    ASSERT_TRUE(serial.ok()) << sql << ": " << serial.status().ToString();
    for (size_t parallelism : {size_t{1}, size_t{2}, size_t{8}}) {
      for (size_t worker : {size_t{0}, parallelism - 1}) {
        if (worker >= parallelism) continue;
        for (uint64_t nth : {uint64_t{1}, uint64_t{2}}) {
          for (exec::ExecFaultAction action :
               {exec::ExecFaultAction::kError, exec::ExecFaultAction::kThrow}) {
            // A throw through the serial root has no containment layer
            // (exception containment is a worker-pipeline property).
            if (parallelism == 1 && action == exec::ExecFaultAction::kThrow) continue;
            SCOPED_TRACE(std::string(sql) + " parallelism=" +
                         std::to_string(parallelism) + " worker=" +
                         std::to_string(worker) + " nth=" + std::to_string(nth) +
                         (action == exec::ExecFaultAction::kThrow ? " throw"
                                                                  : " error"));
            auto script = std::make_shared<exec::ExecFaultScript>();
            script->AddFault({worker, nth, action, 0});
            auto faulted = Run(sql, parallelism, script);
            if (script->fired() == 0) {
              // The plan finished before the fault point (short query /
              // quota cut dispatch): it must then match serial exactly.
              ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
              EXPECT_EQ(*faulted, *serial);
            } else {
              ASSERT_FALSE(faulted.ok())
                  << "fault fired but the query still succeeded";
              EXPECT_TRUE(faulted.status().IsInternal())
                  << faulted.status().ToString();
              EXPECT_NE(faulted.status().ToString().find(
                            action == exec::ExecFaultAction::kThrow
                                ? "pipeline threw"
                                : "injected fault"),
                        std::string::npos)
                  << faulted.status().ToString();
            }
            // The engine must answer the next, unfaulted query exactly as
            // a fresh serial run would — no torn shared state survives.
            auto clean = Run(sql, parallelism, nullptr);
            ASSERT_TRUE(clean.ok()) << clean.status().ToString();
            EXPECT_EQ(*clean, *serial);
          }
        }
      }
    }
  }
}

TEST_F(ExecFaultSweepTest, ThrowingWorkerAtFullParallelismIsContained) {
  // Satellite regression: a worker stage that throws (not returns) at
  // parallelism 8 must be contained by the pipeline job and surface as
  // Status::Internal, with all 7 peers drained and joined.
  const std::string sql = kQueries[2];  // Aggregation keeps all workers busy.
  auto serial = Run(sql, 1, nullptr);
  ASSERT_TRUE(serial.ok());
  for (size_t worker = 0; worker < 8; ++worker) {
    auto script = std::make_shared<exec::ExecFaultScript>();
    script->AddFault({worker, 1, exec::ExecFaultAction::kThrow, 0});
    auto faulted = Run(sql, 8, script);
    ASSERT_EQ(script->fired(), 1u) << "worker " << worker;
    ASSERT_FALSE(faulted.ok()) << "worker " << worker;
    EXPECT_TRUE(faulted.status().IsInternal()) << faulted.status().ToString();
    EXPECT_NE(faulted.status().ToString().find("worker pipeline threw"),
              std::string::npos)
        << faulted.status().ToString();
    auto clean = Run(sql, 8, nullptr);
    ASSERT_TRUE(clean.ok());
    EXPECT_EQ(*clean, *serial);
  }
}

TEST_F(ExecFaultSweepTest, StalledWorkerHitsTheDeadline) {
  // A worker that stalls mid-morsel does not block cancellation forever:
  // the statement deadline fires at the next cooperative check after the
  // stall, and the query unwinds with kDeadlineExceeded.
  const std::string sql = kQueries[0];
  auto context = std::make_shared<exec::QueryContext>();
  auto script = std::make_shared<exec::ExecFaultScript>();
  script->AddFault({0, 1, exec::ExecFaultAction::kStall, /*stall_ms=*/100});
  std::unique_ptr<exec::Operator> plan = Plan(sql, 2, script);
  ASSERT_NE(plan, nullptr);
  plan->SetQueryContext(context);
  context->BeginStatement(/*timeout_ms=*/20, 0);
  auto result = engine_->Execute(std::move(plan));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded()) << result.status().ToString();
  EXPECT_EQ(script->fired(), 1u);

  // The next statement under a fresh deadline succeeds.
  context->BeginStatement(0, 0);
  auto serial = Run(sql, 1, nullptr);
  auto clean = Run(sql, 2, nullptr);
  ASSERT_TRUE(serial.ok());
  ASSERT_TRUE(clean.ok());
  EXPECT_EQ(*clean, *serial);
}

TEST_F(ExecFaultSweepTest, FirstErrorInMorselOrderWins) {
  // Two workers fail at their first NextBatch; the surfaced error must be
  // deterministic across repetitions (the worker owning the earlier morsel
  // wins, regardless of wall-clock finishing order).
  const std::string sql = kQueries[0];
  std::string first_message;
  for (int round = 0; round < 10; ++round) {
    auto script = std::make_shared<exec::ExecFaultScript>();
    script->AddFault({0, 1, exec::ExecFaultAction::kError, 0});
    script->AddFault({1, 1, exec::ExecFaultAction::kError, 0});
    auto faulted = Run(sql, 2, script);
    ASSERT_FALSE(faulted.ok());
    ASSERT_GE(script->fired(), 1u);
    if (round == 0) {
      first_message = faulted.status().ToString();
    } else {
      EXPECT_EQ(faulted.status().ToString(), first_message) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace insightnotes
