// Unit tests of the query-lifecycle primitives: the shared MemoryBudget,
// the per-operator MemoryReservation ledger (slab batching, epoch
// staleness across budget resets), and QueryContext's cooperative
// cancellation / deadline / cancel-at-check seam.

#include "exec/query_context.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace insightnotes::exec {
namespace {

TEST(MemoryBudgetTest, TracksUsageAndPeak) {
  MemoryBudget budget;
  budget.Reset(1000);
  EXPECT_TRUE(budget.TryReserve(400));
  EXPECT_TRUE(budget.TryReserve(500));
  EXPECT_EQ(budget.used(), 900u);
  EXPECT_EQ(budget.peak(), 900u);
  budget.Release(500);
  EXPECT_EQ(budget.used(), 400u);
  EXPECT_EQ(budget.peak(), 900u);  // Peak survives releases.
}

TEST(MemoryBudgetTest, RejectsOverLimitAndRollsBack) {
  MemoryBudget budget;
  budget.Reset(1000);
  EXPECT_TRUE(budget.TryReserve(800));
  EXPECT_FALSE(budget.TryReserve(300));
  EXPECT_EQ(budget.used(), 800u);  // Failed reservation left no residue.
  EXPECT_TRUE(budget.TryReserve(200));
}

TEST(MemoryBudgetTest, ZeroLimitIsUnlimited) {
  MemoryBudget budget;
  budget.Reset(0);
  EXPECT_TRUE(budget.TryReserve(size_t{1} << 40));
  EXPECT_EQ(budget.peak(), size_t{1} << 40);
}

TEST(MemoryReservationTest, ChargesInSlabs) {
  MemoryBudget budget;
  budget.Reset(0);
  MemoryReservation reservation;
  reservation.Attach(&budget, "TestOp");
  // Many small charges reserve whole slabs, not per-charge bytes.
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(reservation.Charge(100).ok());
  EXPECT_EQ(reservation.charged(), 10000u);
  EXPECT_EQ(budget.used(), MemoryReservation::kChunk);
  reservation.ReleaseAll();
  EXPECT_EQ(budget.used(), 0u);
  EXPECT_EQ(reservation.charged(), 0u);
  EXPECT_EQ(reservation.peak(), 10000u);  // Peak survives for metrics.
}

TEST(MemoryReservationTest, OverrunNamesTheOperator) {
  MemoryBudget budget;
  budget.Reset(MemoryReservation::kChunk);
  MemoryReservation reservation;
  reservation.Attach(&budget, "HashJoinBuild(s.x)");
  ASSERT_TRUE(reservation.Charge(1000).ok());
  Status overrun = reservation.Charge(2 * MemoryReservation::kChunk);
  ASSERT_TRUE(overrun.IsResourceExhausted()) << overrun.ToString();
  EXPECT_NE(overrun.ToString().find("HashJoinBuild(s.x)"), std::string::npos)
      << overrun.ToString();
  EXPECT_NE(overrun.ToString().find("memory limit exceeded"), std::string::npos);
}

TEST(MemoryReservationTest, DetachedNeverFails) {
  MemoryReservation reservation;
  EXPECT_TRUE(reservation.Charge(size_t{1} << 40).ok());
  EXPECT_EQ(reservation.peak(), size_t{1} << 40);
}

TEST(MemoryReservationTest, StaleHoldingsDropAcrossBudgetReset) {
  // A retained plan's reservation survives into the next statement; the
  // budget Reset between the two must not be corrupted by the stale ledger
  // releasing (underflow) or assuming its old slabs still count.
  MemoryBudget budget;
  budget.Reset(0);
  MemoryReservation reservation;
  reservation.Attach(&budget, "Sort");
  ASSERT_TRUE(reservation.Charge(3 * MemoryReservation::kChunk).ok());
  ASSERT_GT(budget.used(), 0u);

  budget.Reset(0);  // New statement.
  EXPECT_EQ(budget.used(), 0u);
  reservation.ReleaseAll();  // Stale: must NOT underflow used().
  EXPECT_EQ(budget.used(), 0u);

  ASSERT_TRUE(reservation.Charge(MemoryReservation::kChunk).ok());
  EXPECT_EQ(budget.used(), MemoryReservation::kChunk);
}

TEST(QueryContextTest, CancelTripsNextCheck) {
  QueryContext context;
  context.BeginStatement(0, 0);
  EXPECT_TRUE(context.CheckInterrupt().ok());
  context.Cancel();
  Status status = context.CheckInterrupt();
  ASSERT_TRUE(status.IsCancelled()) << status.ToString();
  // BeginStatement re-arms.
  context.BeginStatement(0, 0);
  EXPECT_TRUE(context.CheckInterrupt().ok());
}

TEST(QueryContextTest, DeadlineExpires) {
  QueryContext context;
  context.BeginStatement(/*timeout_ms=*/5, 0);
  EXPECT_TRUE(context.CheckInterrupt().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  Status status = context.CheckInterrupt();
  ASSERT_TRUE(status.IsDeadlineExceeded()) << status.ToString();
  EXPECT_NE(status.ToString().find("5 ms"), std::string::npos) << status.ToString();
}

TEST(QueryContextTest, CancelAtCheckIsDeterministic) {
  QueryContext context;
  context.CancelAtCheck(3);
  context.BeginStatement(0, 0);  // The trip survives re-arming.
  EXPECT_TRUE(context.CheckInterrupt().ok());
  EXPECT_TRUE(context.CheckInterrupt().ok());
  EXPECT_TRUE(context.CheckInterrupt().IsCancelled());
  EXPECT_EQ(context.cancel_checks(), 3u);

  context.CancelAtCheck(0);  // Disarm.
  context.BeginStatement(0, 0);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(context.CheckInterrupt().ok());
}

TEST(QueryContextTest, ConcurrentChecksCountExactly) {
  QueryContext context;
  context.BeginStatement(0, 0);
  constexpr int kThreads = 8;
  constexpr int kChecksPerThread = 1000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&context] {
      for (int i = 0; i < kChecksPerThread; ++i) {
        Status status = context.CheckInterrupt();
        ASSERT_TRUE(status.ok());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(context.cancel_checks(), uint64_t{kThreads} * kChecksPerThread);
}

TEST(QueryContextTest, SharedBudgetAcrossWorkers) {
  QueryContext context;
  context.BeginStatement(0, /*memory_limit_bytes=*/0);
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&context, t] {
      MemoryReservation reservation;
      reservation.Attach(&context.budget(), "Worker" + std::to_string(t));
      for (int i = 0; i < 100; ++i) ASSERT_TRUE(reservation.Charge(1024).ok());
      reservation.ReleaseAll();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(context.budget().used(), 0u);
  EXPECT_GE(context.budget().peak(), MemoryReservation::kChunk);
}

}  // namespace
}  // namespace insightnotes::exec
