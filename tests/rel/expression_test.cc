#include "rel/expression.h"

#include <gtest/gtest.h>

namespace insightnotes::rel {
namespace {

Tuple TestTuple() {
  // (id=1, name="swan", weight=3.5, count=NULL)
  return Tuple({Value(static_cast<int64_t>(1)), Value("swan"), Value(3.5),
                Value::Null()});
}

TEST(ExpressionTest, ColumnRefReadsValue) {
  auto expr = MakeColumn(1, "name");
  auto v = expr->Evaluate(TestTuple());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "swan");
}

TEST(ExpressionTest, ColumnRefOutOfRange) {
  auto expr = MakeColumn(9);
  EXPECT_TRUE(expr->Evaluate(TestTuple()).status().IsInternal());
}

TEST(ExpressionTest, LiteralEvaluatesToItself) {
  auto expr = MakeLiteral(Value(static_cast<int64_t>(7)));
  EXPECT_EQ(expr->Evaluate(TestTuple())->AsInt64(), 7);
}

struct CompareCase {
  CompareOp op;
  int64_t lhs;
  int64_t rhs;
  bool expected;
};

class CompareEvalTest : public ::testing::TestWithParam<CompareCase> {};

TEST_P(CompareEvalTest, EvaluatesCorrectly) {
  const auto& c = GetParam();
  auto expr = MakeCompare(c.op, MakeLiteral(Value(c.lhs)), MakeLiteral(Value(c.rhs)));
  auto v = expr->EvaluateBool(TestTuple());
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, CompareEvalTest,
    ::testing::Values(CompareCase{CompareOp::kEq, 2, 2, true},
                      CompareCase{CompareOp::kEq, 2, 3, false},
                      CompareCase{CompareOp::kNe, 2, 3, true},
                      CompareCase{CompareOp::kNe, 2, 2, false},
                      CompareCase{CompareOp::kLt, 2, 3, true},
                      CompareCase{CompareOp::kLt, 3, 2, false},
                      CompareCase{CompareOp::kLe, 2, 2, true},
                      CompareCase{CompareOp::kLe, 3, 2, false},
                      CompareCase{CompareOp::kGt, 3, 2, true},
                      CompareCase{CompareOp::kGt, 2, 3, false},
                      CompareCase{CompareOp::kGe, 2, 2, true},
                      CompareCase{CompareOp::kGe, 2, 3, false}));

TEST(ExpressionTest, CompareWithNullIsNullAndFalseAsPredicate) {
  auto expr = MakeCompare(CompareOp::kEq, MakeColumn(3, "count"),
                          MakeLiteral(Value(static_cast<int64_t>(0))));
  auto v = expr->Evaluate(TestTuple());
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_null());
  EXPECT_FALSE(*expr->EvaluateBool(TestTuple()));
}

TEST(ExpressionTest, AndOrShortCircuit) {
  auto true_lit = [] { return MakeLiteral(Value(static_cast<int64_t>(1))); };
  auto false_lit = [] { return MakeLiteral(Value(static_cast<int64_t>(0))); };
  // Error expression on the right should never be evaluated.
  auto error_expr = [] { return MakeColumn(99); };
  EXPECT_FALSE(*MakeAnd(false_lit(), error_expr())->EvaluateBool(TestTuple()));
  EXPECT_TRUE(*MakeOr(true_lit(), error_expr())->EvaluateBool(TestTuple()));
  EXPECT_TRUE(*MakeAnd(true_lit(), true_lit())->EvaluateBool(TestTuple()));
  EXPECT_FALSE(*MakeOr(false_lit(), false_lit())->EvaluateBool(TestTuple()));
}

TEST(ExpressionTest, NotInverts) {
  auto expr = MakeNot(MakeCompare(CompareOp::kEq, MakeColumn(0, "id"),
                                  MakeLiteral(Value(static_cast<int64_t>(1)))));
  EXPECT_FALSE(*expr->EvaluateBool(TestTuple()));
}

TEST(ExpressionTest, ArithmeticIntAndFloat) {
  auto plus = MakeArithmetic(ArithmeticOp::kAdd, MakeColumn(0, "id"),
                             MakeLiteral(Value(static_cast<int64_t>(10))));
  EXPECT_EQ(plus->Evaluate(TestTuple())->AsInt64(), 11);
  auto times = MakeArithmetic(ArithmeticOp::kMul, MakeColumn(2, "weight"),
                              MakeLiteral(Value(2.0)));
  EXPECT_DOUBLE_EQ(times->Evaluate(TestTuple())->AsFloat64(), 7.0);
}

TEST(ExpressionTest, DivisionByZeroIsError) {
  auto div = MakeArithmetic(ArithmeticOp::kDiv, MakeLiteral(Value(static_cast<int64_t>(1))),
                            MakeLiteral(Value(static_cast<int64_t>(0))));
  EXPECT_TRUE(div->Evaluate(TestTuple()).status().IsInvalidArgument());
}

TEST(ExpressionTest, StringConcatenation) {
  auto cat = MakeArithmetic(ArithmeticOp::kAdd, MakeLiteral(Value("swan ")),
                            MakeLiteral(Value("goose")));
  EXPECT_EQ(cat->Evaluate(TestTuple())->AsString(), "swan goose");
}

TEST(ExpressionTest, ArithmeticWithNullIsNull) {
  auto expr = MakeArithmetic(ArithmeticOp::kAdd, MakeColumn(3, "count"),
                             MakeLiteral(Value(static_cast<int64_t>(1))));
  EXPECT_TRUE(expr->Evaluate(TestTuple())->is_null());
}

TEST(ExpressionTest, CollectColumnRefs) {
  auto expr = MakeAnd(
      MakeCompare(CompareOp::kEq, MakeColumn(0), MakeColumn(2)),
      MakeCompare(CompareOp::kGt, MakeColumn(1), MakeLiteral(Value("a"))));
  std::vector<size_t> refs;
  expr->CollectColumnRefs(&refs);
  EXPECT_EQ(refs, (std::vector<size_t>{0, 2, 1}));
}

TEST(ExpressionTest, CloneIsDeepAndEquivalent) {
  auto expr = MakeAnd(
      MakeCompare(CompareOp::kLt, MakeColumn(0, "id"), MakeLiteral(Value(static_cast<int64_t>(5)))),
      MakeNot(MakeCompare(CompareOp::kEq, MakeColumn(1, "name"), MakeLiteral(Value("x")))));
  auto clone = expr->Clone();
  EXPECT_EQ(expr->ToString(), clone->ToString());
  EXPECT_EQ(*expr->EvaluateBool(TestTuple()), *clone->EvaluateBool(TestTuple()));
}

TEST(ExpressionTest, ToStringRendering) {
  auto expr = MakeCompare(CompareOp::kGe, MakeColumn(2, "r.weight"),
                          MakeLiteral(Value(1.5)));
  EXPECT_EQ(expr->ToString(), "(r.weight >= 1.5)");
  auto lit = MakeLiteral(Value("swan"));
  EXPECT_EQ(lit->ToString(), "'swan'");
}

}  // namespace
}  // namespace insightnotes::rel
