// Structural-invariant property tests for the persistent B+-tree: randomized
// insert/delete/range workloads against an ordered-set oracle, asserting the
// full structural battery (sorted keys, uniform leaf depth, fanout bounds,
// leaf-chain == in-order walk) after every batch. Seeded like the query
// fuzzer: failures print the seed, replay with INSIGHTNOTES_FUZZ_SEED=<n>.

#include "rel/btree.h"

#include <cstdlib>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "rel/btree_page.h"
#include "rel/value.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace insightnotes {
namespace {

constexpr uint64_t kDefaultSeed = 20260806;

uint64_t FuzzSeed() {
  const char* env = std::getenv("INSIGHTNOTES_FUZZ_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return kDefaultSeed;
}

class BTreeTest : public ::testing::Test {
 protected:
  // Tiny fanout (6) forces multi-level trees on small data; the 16-frame
  // pool forces eviction write-backs mid-workload.
  void Open(size_t fanout = 6, size_t frames = 16) {
    ASSERT_TRUE(disk_.Open("").ok());
    pool_ = std::make_unique<storage::BufferPool>(&disk_, frames);
    store_ = std::make_unique<rel::BTreeStore>(pool_.get(),
                                               rel::BTreeStoreMeta{}, fanout);
    auto tree = rel::BTree::Create(store_.get());
    ASSERT_TRUE(tree.ok()) << tree.status();
    tree_ = std::move(*tree);
  }

  storage::DiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<rel::BTreeStore> store_;
  std::unique_ptr<rel::BTree> tree_;
};

using Oracle = std::set<std::pair<int64_t, rel::RowId>>;

std::vector<rel::RowId> OracleRange(const Oracle& oracle, const int64_t* lo,
                                    const int64_t* hi) {
  std::vector<rel::RowId> rows;
  for (const auto& [key, row] : oracle) {
    if (lo != nullptr && key < *lo) continue;
    if (hi != nullptr && key > *hi) continue;
    rows.push_back(row);
  }
  return rows;
}

TEST_F(BTreeTest, RandomizedIntWorkloadMatchesOracle) {
  Open();
  const uint64_t seed = FuzzSeed();
  std::mt19937_64 rng(seed);
  Oracle oracle;
  rel::RowId next_row = 0;
  for (int batch = 0; batch < 60; ++batch) {
    SCOPED_TRACE("batch " + std::to_string(batch) +
                 "; replay: INSIGHTNOTES_FUZZ_SEED=" + std::to_string(seed));
    for (int op = 0; op < 25; ++op) {
      if (!oracle.empty() && rng() % 3 == 0) {
        auto it = oracle.begin();
        std::advance(it, rng() % oracle.size());
        ASSERT_TRUE(
            tree_->RemoveForRow(rel::Value(it->first), it->second).ok());
        oracle.erase(it);
      } else {
        int64_t key = static_cast<int64_t>(rng() % 40);
        rel::RowId row = next_row++;
        ASSERT_TRUE(tree_->InsertForRow(rel::Value(key), row).ok());
        oracle.insert({key, row});
      }
    }
    // Commit an epoch now and then so copy-on-write shadows committed
    // pages (stale sibling hints + free-list reuse get exercised).
    if (batch % 7 == 6) {
      ASSERT_TRUE(pool_->FlushAll().ok());
      store_->CommitEpoch();
    }
    Status invariants = tree_->CheckInvariants();
    ASSERT_TRUE(invariants.ok()) << invariants;
    ASSERT_EQ(tree_->NumEntries(), oracle.size());

    std::vector<rel::RowId> all;
    ASSERT_TRUE(tree_->RangeInto(nullptr, nullptr, &all).ok());
    ASSERT_EQ(all, OracleRange(oracle, nullptr, nullptr));

    for (int q = 0; q < 5; ++q) {
      int64_t lo = static_cast<int64_t>(rng() % 40);
      int64_t hi = static_cast<int64_t>(rng() % 40);  // Sometimes reversed.
      rel::Value lo_v(lo), hi_v(hi);
      std::vector<rel::RowId> got;
      ASSERT_TRUE(tree_->RangeInto(&lo_v, &hi_v, &got).ok());
      std::vector<rel::RowId> want =
          lo <= hi ? OracleRange(oracle, &lo, &hi) : std::vector<rel::RowId>{};
      ASSERT_EQ(got, want) << "range [" << lo << ", " << hi << "]";

      int64_t eq = static_cast<int64_t>(rng() % 40);
      got.clear();
      ASSERT_TRUE(tree_->LookupInto(rel::Value(eq), &got).ok());
      ASSERT_EQ(got, OracleRange(oracle, &eq, &eq)) << "lookup " << eq;
    }
  }
}

TEST_F(BTreeTest, RandomizedStringWorkloadMatchesOracle) {
  Open();
  const uint64_t sseed = FuzzSeed() + 1;
  std::mt19937_64 rng(sseed);
  std::set<std::pair<std::string, rel::RowId>> oracle;
  rel::RowId next_row = 0;
  auto rand_key = [&rng]() {
    size_t len = rng() % 4;
    std::string s;
    for (size_t i = 0; i < len; ++i) {
      s.push_back(static_cast<char>('a' + rng() % 3));
    }
    return s;
  };
  for (int batch = 0; batch < 40; ++batch) {
    SCOPED_TRACE("batch " + std::to_string(batch) +
                 "; replay: INSIGHTNOTES_FUZZ_SEED=" + std::to_string(sseed - 1));
    for (int op = 0; op < 20; ++op) {
      if (!oracle.empty() && rng() % 3 == 0) {
        auto it = oracle.begin();
        std::advance(it, rng() % oracle.size());
        ASSERT_TRUE(
            tree_->RemoveForRow(rel::Value(it->first), it->second).ok());
        oracle.erase(it);
      } else {
        std::string key = rand_key();
        rel::RowId row = next_row++;
        ASSERT_TRUE(tree_->InsertForRow(rel::Value(key), row).ok());
        oracle.insert({std::move(key), row});
      }
    }
    Status invariants = tree_->CheckInvariants();
    ASSERT_TRUE(invariants.ok()) << invariants;
    ASSERT_EQ(tree_->NumEntries(), oracle.size());
    std::string probe = rand_key();
    std::vector<rel::RowId> got;
    ASSERT_TRUE(tree_->LookupInto(rel::Value(probe), &got).ok());
    std::vector<rel::RowId> want;
    for (const auto& [key, row] : oracle) {
      if (key == probe) want.push_back(row);
    }
    ASSERT_EQ(got, want) << "lookup \"" << probe << "\"";
  }
}

TEST_F(BTreeTest, FullPageFanoutWorkload) {
  Open(/*fanout=*/0, /*frames=*/64);  // Page-capacity nodes: 127/113.
  Oracle oracle;
  std::mt19937_64 rng(FuzzSeed() + 2);
  for (rel::RowId row = 0; row < 3000; ++row) {
    int64_t key = static_cast<int64_t>(rng() % 500);
    ASSERT_TRUE(tree_->InsertForRow(rel::Value(key), row).ok());
    oracle.insert({key, row});
  }
  for (int i = 0; i < 800; ++i) {
    auto it = oracle.begin();
    std::advance(it, rng() % oracle.size());
    ASSERT_TRUE(tree_->RemoveForRow(rel::Value(it->first), it->second).ok());
    oracle.erase(it);
  }
  Status invariants = tree_->CheckInvariants();
  ASSERT_TRUE(invariants.ok()) << invariants;
  std::vector<rel::RowId> all;
  ASSERT_TRUE(tree_->RangeInto(nullptr, nullptr, &all).ok());
  ASSERT_EQ(all, OracleRange(oracle, nullptr, nullptr));
}

TEST_F(BTreeTest, MixedTypeOrderingNullsNumbersStrings) {
  Open();
  // Rows chosen so the expected full-scan order spells out the class order:
  // null < numerics (int/double coerced) < strings.
  ASSERT_TRUE(tree_->InsertForRow(rel::Value("apple"), 4).ok());
  ASSERT_TRUE(tree_->InsertForRow(rel::Value(int64_t{7}), 2).ok());
  ASSERT_TRUE(tree_->InsertForRow(rel::Value(2.5), 1).ok());
  ASSERT_TRUE(tree_->InsertForRow(rel::Value(), 0).ok());
  ASSERT_TRUE(tree_->InsertForRow(rel::Value(7.5), 3).ok());
  ASSERT_TRUE(tree_->InsertForRow(rel::Value("banana"), 5).ok());
  std::vector<rel::RowId> all;
  ASSERT_TRUE(tree_->RangeInto(nullptr, nullptr, &all).ok());
  EXPECT_EQ(all, (std::vector<rel::RowId>{0, 1, 2, 3, 4, 5}));
  // Numeric range probes coerce int<->double like Value::Compare.
  rel::Value lo(int64_t{3}), hi(7.4);
  all.clear();
  ASSERT_TRUE(tree_->RangeInto(&lo, &hi, &all).ok());
  EXPECT_EQ(all, (std::vector<rel::RowId>{2}));
}

TEST_F(BTreeTest, LongStringProbesReturnSupersets) {
  Open();
  // Strings sharing a 23-byte prefix share an encoding: probes return the
  // union and callers re-filter (the planner keeps residual predicates).
  std::string prefix(23, 'x');
  ASSERT_TRUE(tree_->InsertForRow(rel::Value(prefix + "aaa"), 0).ok());
  ASSERT_TRUE(tree_->InsertForRow(rel::Value(prefix + "zzz"), 1).ok());
  ASSERT_TRUE(tree_->InsertForRow(rel::Value("unrelated"), 2).ok());
  std::vector<rel::RowId> got;
  ASSERT_TRUE(tree_->LookupInto(rel::Value(prefix + "aaa"), &got).ok());
  EXPECT_EQ(got, (std::vector<rel::RowId>{0, 1}));  // Superset, never less.
}

TEST_F(BTreeTest, EmptyTreeAndReversedBounds) {
  Open();
  std::vector<rel::RowId> got;
  ASSERT_TRUE(tree_->LookupInto(rel::Value(int64_t{1}), &got).ok());
  EXPECT_TRUE(got.empty());
  ASSERT_TRUE(tree_->RangeInto(nullptr, nullptr, &got).ok());
  EXPECT_TRUE(got.empty());
  ASSERT_TRUE(tree_->InsertForRow(rel::Value(int64_t{5}), 0).ok());
  rel::Value lo(int64_t{9}), hi(int64_t{1});
  ASSERT_TRUE(tree_->RangeInto(&lo, &hi, &got).ok());
  EXPECT_TRUE(got.empty());
  ASSERT_TRUE(tree_->CheckInvariants().ok());
}

TEST_F(BTreeTest, CoveredRowsMakeSetupReplayIdempotent) {
  Open();
  for (rel::RowId row = 0; row < 10; ++row) {
    ASSERT_TRUE(tree_->InsertForRow(rel::Value(int64_t(row % 3)), row).ok());
  }
  tree_->set_covered_rows(10);
  // A caller re-running its setup re-inserts covered rows: no-ops.
  for (rel::RowId row = 0; row < 10; ++row) {
    ASSERT_TRUE(tree_->InsertForRow(rel::Value(int64_t(row % 3)), row).ok());
  }
  EXPECT_EQ(tree_->NumEntries(), 10u);
  // Deleting a covered row whose entry is already gone is tolerated...
  ASSERT_TRUE(tree_->RemoveForRow(rel::Value(int64_t{0}), 0).ok());
  ASSERT_TRUE(tree_->RemoveForRow(rel::Value(int64_t{0}), 0).ok());
  EXPECT_EQ(tree_->NumEntries(), 9u);
  // ...but a missing entry at or past the covered bound is an error.
  EXPECT_FALSE(tree_->RemoveForRow(rel::Value(int64_t{0}), 99).ok());
}

TEST_F(BTreeTest, CommittedTreeSurvivesUncommittedMutations) {
  Open();
  Oracle committed;
  std::mt19937_64 rng(FuzzSeed() + 3);
  for (rel::RowId row = 0; row < 400; ++row) {
    int64_t key = static_cast<int64_t>(rng() % 50);
    ASSERT_TRUE(tree_->InsertForRow(rel::Value(key), row).ok());
    committed.insert({key, row});
  }
  // Commit: flush + seal the epoch, snapshot the metadata a checkpoint
  // record would persist.
  ASSERT_TRUE(pool_->FlushAll().ok());
  ASSERT_TRUE(disk_.Fsync().ok());
  rel::BTreeMeta tree_meta = tree_->meta();
  rel::BTreeStoreMeta store_meta = store_->CommitMeta();
  store_->CommitEpoch();
  // Post-commit mutations shadow committed pages and recycle free ones;
  // none of it is flushed, like a crash mid-epoch.
  for (rel::RowId row = 400; row < 600; ++row) {
    ASSERT_TRUE(
        tree_->InsertForRow(rel::Value(int64_t(rng() % 50)), row).ok());
  }
  Oracle live = committed;  // `committed` keeps the as-of-commit view.
  for (int i = 0; i < 150; ++i) {
    auto it = live.begin();
    std::advance(it, rng() % live.size());
    ASSERT_TRUE(tree_->RemoveForRow(rel::Value(it->first), it->second).ok());
    live.erase(it);
  }
  // "Crash": drop the pool (dirty frames lost) and re-attach from the
  // committed metadata over the same disk image.
  tree_.reset();
  store_.reset();
  pool_.reset();
  pool_ = std::make_unique<storage::BufferPool>(&disk_, 16);
  store_ = std::make_unique<rel::BTreeStore>(pool_.get(), store_meta, 6);
  tree_ = rel::BTree::Attach(store_.get(), tree_meta);
  Status invariants = tree_->CheckInvariants();
  ASSERT_TRUE(invariants.ok()) << invariants;
  std::vector<rel::RowId> all;
  ASSERT_TRUE(tree_->RangeInto(nullptr, nullptr, &all).ok());
  ASSERT_EQ(all, OracleRange(committed, nullptr, nullptr));
}

TEST_F(BTreeTest, DiscardReturnsPagesForReuse) {
  Open();
  for (rel::RowId row = 0; row < 200; ++row) {
    ASSERT_TRUE(tree_->InsertForRow(rel::Value(int64_t(row)), row).ok());
  }
  ASSERT_TRUE(tree_->Discard().ok());
  // A new tree grown to the same size must fit in the recycled pages.
  uint64_t pages_before = store_->CommitMeta().page_count;
  auto tree = rel::BTree::Create(store_.get());
  ASSERT_TRUE(tree.ok());
  tree_ = std::move(*tree);
  for (rel::RowId row = 0; row < 200; ++row) {
    ASSERT_TRUE(tree_->InsertForRow(rel::Value(int64_t(row)), row).ok());
  }
  EXPECT_EQ(store_->CommitMeta().page_count, pages_before);
  ASSERT_TRUE(tree_->CheckInvariants().ok());
}

}  // namespace
}  // namespace insightnotes
