#include <gtest/gtest.h>

#include "rel/schema.h"
#include "rel/tuple.h"

namespace insightnotes::rel {
namespace {

Schema BirdSchema() {
  return Schema({{"id", ValueType::kInt64, "r"},
                 {"name", ValueType::kString, "r"},
                 {"weight", ValueType::kFloat64, "r"}});
}

TEST(SchemaTest, IndexOfQualifiedAndBare) {
  Schema s = BirdSchema();
  EXPECT_EQ(*s.IndexOf("r.id"), 0u);
  EXPECT_EQ(*s.IndexOf("name"), 1u);
  EXPECT_EQ(*s.IndexOf("weight"), 2u);
  EXPECT_TRUE(s.IndexOf("missing").status().IsNotFound());
  EXPECT_TRUE(s.IndexOf("s.id").status().IsNotFound());
}

TEST(SchemaTest, AmbiguousBareNameIsError) {
  Schema joined = Schema::Concat(BirdSchema(), BirdSchema().WithQualifier("s"));
  EXPECT_TRUE(joined.IndexOf("id").status().IsInvalidArgument());
  EXPECT_EQ(*joined.IndexOf("r.id"), 0u);
  EXPECT_EQ(*joined.IndexOf("s.id"), 3u);
}

TEST(SchemaTest, WithQualifierRewritesAll) {
  Schema s = BirdSchema().WithQualifier("x");
  for (const auto& c : s.columns()) {
    EXPECT_EQ(c.qualifier, "x");
  }
  EXPECT_EQ(*s.IndexOf("x.name"), 1u);
}

TEST(SchemaTest, ConcatPreservesOrder) {
  Schema joined = Schema::Concat(BirdSchema(), BirdSchema().WithQualifier("s"));
  EXPECT_EQ(joined.NumColumns(), 6u);
  EXPECT_EQ(joined.ColumnAt(0).QualifiedName(), "r.id");
  EXPECT_EQ(joined.ColumnAt(3).QualifiedName(), "s.id");
}

TEST(SchemaTest, ToStringIsReadable) {
  EXPECT_EQ(BirdSchema().ToString(), "(r.id BIGINT, r.name TEXT, r.weight DOUBLE)");
}

TEST(TupleTest, ConcatJoinsValues) {
  Tuple l({Value(static_cast<int64_t>(1)), Value("a")});
  Tuple r({Value(2.0)});
  Tuple joined = Tuple::Concat(l, r);
  EXPECT_EQ(joined.NumValues(), 3u);
  EXPECT_EQ(joined.ValueAt(2).AsFloat64(), 2.0);
}

TEST(TupleTest, SerializationRoundTrip) {
  Tuple t({Value(static_cast<int64_t>(42)), Value::Null(), Value("swan goose"),
           Value(3.25)});
  std::string bytes;
  t.Serialize(&bytes);
  auto back = Tuple::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, t);
}

TEST(TupleTest, EmptyTupleRoundTrip) {
  Tuple t;
  std::string bytes;
  t.Serialize(&bytes);
  auto back = Tuple::Deserialize(bytes);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->NumValues(), 0u);
}

TEST(TupleTest, DeserializeRejectsGarbage) {
  EXPECT_TRUE(Tuple::Deserialize("").status().IsParseError());
  EXPECT_TRUE(Tuple::Deserialize("\x05").status().IsParseError());
}

TEST(TupleTest, HashEqualityContract) {
  Tuple a({Value(static_cast<int64_t>(5)), Value("x")});
  Tuple b({Value(5.0), Value("x")});
  Tuple c({Value(static_cast<int64_t>(5)), Value("y")});
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(a == c);
}

TEST(TupleTest, ToString) {
  Tuple t({Value(static_cast<int64_t>(1)), Value("swan"), Value::Null()});
  EXPECT_EQ(t.ToString(), "(1, swan, NULL)");
}

}  // namespace
}  // namespace insightnotes::rel
