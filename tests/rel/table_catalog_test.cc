#include <gtest/gtest.h>

#include <memory>

#include "rel/catalog.h"
#include "rel/table.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

namespace insightnotes::rel {
namespace {

class TableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(disk_.Open("").ok());
    pool_ = std::make_unique<storage::BufferPool>(&disk_, 64);
    catalog_ = std::make_unique<Catalog>(pool_.get());
    auto table = catalog_->CreateTable(
        "birds", Schema({{"id", ValueType::kInt64, "birds"},
                         {"name", ValueType::kString, "birds"},
                         {"weight", ValueType::kFloat64, "birds"}}));
    ASSERT_TRUE(table.ok());
    birds_ = *table;
  }

  Tuple Bird(int64_t id, const std::string& name, double weight) {
    return Tuple({Value(id), Value(name), Value(weight)});
  }

  storage::DiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<Catalog> catalog_;
  Table* birds_ = nullptr;
};

TEST_F(TableTest, InsertAndGet) {
  auto row = birds_->Insert(Bird(1, "Swan Goose", 3.2));
  ASSERT_TRUE(row.ok());
  auto t = birds_->Get(*row);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ValueAt(1).AsString(), "Swan Goose");
  EXPECT_EQ(birds_->NumRows(), 1u);
}

TEST_F(TableTest, RowIdsAreDenseAndStable) {
  auto r0 = birds_->Insert(Bird(1, "a", 1.0));
  auto r1 = birds_->Insert(Bird(2, "b", 2.0));
  ASSERT_TRUE(r0.ok());
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r0, 0u);
  EXPECT_EQ(*r1, 1u);
}

TEST_F(TableTest, ArityMismatchRejected) {
  Tuple wrong({Value(static_cast<int64_t>(1))});
  EXPECT_TRUE(birds_->Insert(wrong).status().IsInvalidArgument());
}

TEST_F(TableTest, TypeMismatchRejected) {
  Tuple wrong({Value("not-an-int"), Value("name"), Value(1.0)});
  EXPECT_TRUE(birds_->Insert(wrong).status().IsTypeError());
}

TEST_F(TableTest, NullFitsAnyColumn) {
  Tuple with_null({Value(static_cast<int64_t>(1)), Value::Null(), Value::Null()});
  EXPECT_TRUE(birds_->Insert(with_null).ok());
}

TEST_F(TableTest, DeleteHidesRow) {
  auto row = birds_->Insert(Bird(1, "x", 1.0));
  ASSERT_TRUE(row.ok());
  ASSERT_TRUE(birds_->Delete(*row).ok());
  EXPECT_TRUE(birds_->Get(*row).status().IsNotFound());
  EXPECT_FALSE(birds_->IsLive(*row));
  EXPECT_EQ(birds_->NumRows(), 0u);
  EXPECT_TRUE(birds_->Delete(*row).IsNotFound());
  // New inserts never reuse the deleted RowId.
  auto next = birds_->Insert(Bird(2, "y", 2.0));
  ASSERT_TRUE(next.ok());
  EXPECT_NE(*next, *row);
}

TEST_F(TableTest, ScanVisitsLiveRowsInOrder) {
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(birds_->Insert(Bird(i, "bird" + std::to_string(i), i * 0.5)).ok());
  }
  ASSERT_TRUE(birds_->Delete(5).ok());
  std::vector<RowId> seen;
  ASSERT_TRUE(birds_
                  ->Scan([&](RowId row, const Tuple& t) {
                    EXPECT_EQ(t.ValueAt(0).AsInt64(), static_cast<int64_t>(row));
                    seen.push_back(row);
                    return true;
                  })
                  .ok());
  EXPECT_EQ(seen.size(), 19u);
  EXPECT_EQ(std::count(seen.begin(), seen.end(), 5), 0);
}

TEST_F(TableTest, LargeTableSpansManyPages) {
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(birds_->Insert(Bird(i, "species-" + std::to_string(i), 1.0)).ok());
  }
  EXPECT_EQ(birds_->NumRows(), 2000u);
  auto t = birds_->Get(1999);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->ValueAt(1).AsString(), "species-1999");
}

TEST_F(TableTest, CatalogNameCollision) {
  EXPECT_TRUE(catalog_->CreateTable("birds", Schema()).status().IsAlreadyExists());
}

TEST_F(TableTest, CatalogLookup) {
  auto t = catalog_->GetTable("birds");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name(), "birds");
  EXPECT_TRUE(catalog_->GetTable("nope").status().IsNotFound());
  auto by_id = catalog_->GetTableById((*t)->id());
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(*by_id, *t);
}

TEST_F(TableTest, CatalogDrop) {
  ASSERT_TRUE(catalog_->CreateTable("tmp", Schema()).ok());
  ASSERT_TRUE(catalog_->DropTable("tmp").ok());
  EXPECT_TRUE(catalog_->GetTable("tmp").status().IsNotFound());
  EXPECT_TRUE(catalog_->DropTable("tmp").IsNotFound());
}

TEST_F(TableTest, CatalogTableNamesSorted) {
  ASSERT_TRUE(catalog_->CreateTable("zebras", Schema()).ok());
  ASSERT_TRUE(catalog_->CreateTable("ants", Schema()).ok());
  EXPECT_EQ(catalog_->TableNames(),
            (std::vector<std::string>{"ants", "birds", "zebras"}));
}

}  // namespace
}  // namespace insightnotes::rel
