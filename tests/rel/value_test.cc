#include "rel/value.h"

#include <gtest/gtest.h>

namespace insightnotes::rel {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(static_cast<int64_t>(7)).AsInt64(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsFloat64(), 2.5);
  EXPECT_EQ(Value("swan").AsString(), "swan");
  EXPECT_EQ(Value("swan").type(), ValueType::kString);
}

TEST(ValueTest, NumericCoercionInCompare) {
  Value five(static_cast<int64_t>(5));
  Value five_f(5.0);
  Value six(static_cast<int64_t>(6));
  EXPECT_EQ(*five.Compare(five_f), 0);
  EXPECT_LT(*five.Compare(six), 0);
  EXPECT_GT(*six.Compare(five_f), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(*Value("apple").Compare(Value("banana")), 0);
  EXPECT_EQ(*Value("swan").Compare(Value("swan")), 0);
}

TEST(ValueTest, MixedTypeCompareIsTypeError) {
  EXPECT_TRUE(Value("x").Compare(Value(static_cast<int64_t>(1))).status().IsTypeError());
  EXPECT_TRUE(Value(1.0).Compare(Value("x")).status().IsTypeError());
}

TEST(ValueTest, NullOrdering) {
  Value null = Value::Null();
  EXPECT_EQ(*null.Compare(Value::Null()), 0);
  EXPECT_LT(*null.Compare(Value(static_cast<int64_t>(0))), 0);
  EXPECT_GT(*Value("a").Compare(null), 0);
}

TEST(ValueTest, EqualityAndHashConsistency) {
  Value a(static_cast<int64_t>(5));
  Value b(5.0);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.Hash(), b.Hash());
  EXPECT_FALSE(Value("5") == a);
  EXPECT_TRUE(Value::Null() == Value::Null());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value(static_cast<int64_t>(-3)).ToString(), "-3");
  EXPECT_EQ(Value("text").ToString(), "text");
}

TEST(ValueTest, ToNumeric) {
  EXPECT_DOUBLE_EQ(*Value(static_cast<int64_t>(3)).ToNumeric(), 3.0);
  EXPECT_DOUBLE_EQ(*Value(2.5).ToNumeric(), 2.5);
  EXPECT_TRUE(Value("x").ToNumeric().status().IsTypeError());
  EXPECT_TRUE(Value::Null().ToNumeric().status().IsTypeError());
}

class ValueSerializationTest : public ::testing::TestWithParam<Value> {};

TEST_P(ValueSerializationTest, RoundTrips) {
  const Value& v = GetParam();
  std::string bytes;
  v.Serialize(&bytes);
  size_t offset = 0;
  auto back = Value::Deserialize(bytes, &offset);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(offset, bytes.size());
  EXPECT_EQ(back->type(), v.type());
  if (!v.is_null()) {
    EXPECT_TRUE(*back == v);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RoundTrip, ValueSerializationTest,
    ::testing::Values(Value::Null(), Value(static_cast<int64_t>(0)),
                      Value(static_cast<int64_t>(-123456789)),
                      Value(static_cast<int64_t>(INT64_MAX)), Value(0.0),
                      Value(-2.5e300), Value(""), Value("swan goose"),
                      Value(std::string(10000, 'x')),
                      Value(std::string("\x00\x01\xff", 3))));

TEST(ValueTest, DeserializeRejectsTruncation) {
  Value v(static_cast<int64_t>(42));
  std::string bytes;
  v.Serialize(&bytes);
  bytes.resize(bytes.size() - 1);
  size_t offset = 0;
  EXPECT_TRUE(Value::Deserialize(bytes, &offset).status().IsParseError());
  size_t at_end = bytes.size();
  EXPECT_TRUE(Value::Deserialize(bytes, &at_end).status().IsParseError());
}

}  // namespace
}  // namespace insightnotes::rel
