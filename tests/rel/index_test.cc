#include "rel/index.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace insightnotes::rel {
namespace {

Value I(int64_t v) { return Value(v); }

TEST(HashIndexTest, InsertLookup) {
  HashIndex idx;
  idx.Insert(Value("swan"), 1);
  idx.Insert(Value("swan"), 2);
  idx.Insert(Value("goose"), 3);
  auto rows = idx.Lookup(Value("swan"));
  EXPECT_EQ(rows, (std::vector<RowId>{1, 2}));
  EXPECT_EQ(idx.Lookup(Value("heron")).size(), 0u);
  EXPECT_EQ(idx.NumEntries(), 3u);
}

TEST(HashIndexTest, RemoveSpecificPairing) {
  HashIndex idx;
  idx.Insert(I(5), 1);
  idx.Insert(I(5), 2);
  ASSERT_TRUE(idx.Remove(I(5), 1).ok());
  EXPECT_EQ(idx.Lookup(I(5)), (std::vector<RowId>{2}));
  EXPECT_TRUE(idx.Remove(I(5), 99).IsNotFound());
  EXPECT_TRUE(idx.Remove(I(6), 2).IsNotFound());
  ASSERT_TRUE(idx.Remove(I(5), 2).ok());
  EXPECT_EQ(idx.NumEntries(), 0u);
}

TEST(HashIndexTest, NumericKeyCoercion) {
  HashIndex idx;
  idx.Insert(I(5), 1);
  // 5.0 must find the int key 5 (Value equality/hash coercion contract).
  EXPECT_EQ(idx.Lookup(Value(5.0)), (std::vector<RowId>{1}));
}

TEST(OrderedIndexTest, RangeQueries) {
  OrderedIndex idx;
  for (int64_t i = 0; i < 10; ++i) idx.Insert(I(i), static_cast<RowId>(i * 10));
  Value lo = I(3);
  Value hi = I(6);
  auto rows = idx.Range(&lo, &hi);
  EXPECT_EQ(rows, (std::vector<RowId>{30, 40, 50, 60}));
}

TEST(OrderedIndexTest, UnboundedRanges) {
  OrderedIndex idx;
  for (int64_t i = 0; i < 5; ++i) idx.Insert(I(i), static_cast<RowId>(i));
  Value hi = I(1);
  EXPECT_EQ(idx.Range(nullptr, &hi), (std::vector<RowId>{0, 1}));
  Value lo = I(3);
  EXPECT_EQ(idx.Range(&lo, nullptr), (std::vector<RowId>{3, 4}));
  EXPECT_EQ(idx.Range(nullptr, nullptr).size(), 5u);
}

TEST(OrderedIndexTest, EmptyRange) {
  OrderedIndex idx;
  idx.Insert(I(1), 1);
  Value lo = I(5);
  Value hi = I(9);
  EXPECT_TRUE(idx.Range(&lo, &hi).empty());
}

TEST(OrderedIndexTest, RemoveAndLookup) {
  OrderedIndex idx;
  idx.Insert(Value("a"), 1);
  idx.Insert(Value("b"), 2);
  ASSERT_TRUE(idx.Remove(Value("a"), 1).ok());
  EXPECT_TRUE(idx.Lookup(Value("a")).empty());
  EXPECT_EQ(idx.Lookup(Value("b")), (std::vector<RowId>{2}));
}

TEST(ValueLessTest, MixedTypesHaveTotalOrder) {
  ValueLess less;
  Value null = Value::Null();
  Value num = I(5);
  Value str = Value("a");
  EXPECT_TRUE(less(null, num));
  EXPECT_TRUE(less(num, str));
  EXPECT_TRUE(less(null, str));
  EXPECT_FALSE(less(str, num));
  EXPECT_FALSE(less(num, num));
  // Strict weak ordering sanity: !(a<b) && !(b<a) for equal values.
  EXPECT_FALSE(less(I(5), Value(5.0)));
  EXPECT_FALSE(less(Value(5.0), I(5)));
}

TEST(HashIndexTest, LookupIntoAppendsToExistingRows) {
  HashIndex idx;
  idx.Insert(I(1), 10);
  idx.Insert(I(2), 20);
  std::vector<RowId> out = {99};
  idx.LookupInto(I(1), &out);
  EXPECT_EQ(out, (std::vector<RowId>{99, 10}));
  idx.LookupInto(I(7), &out);  // Miss appends nothing.
  EXPECT_EQ(out, (std::vector<RowId>{99, 10}));
}

TEST(OrderedIndexTest, RangeIntoAppendsToExistingRows) {
  OrderedIndex idx;
  for (int64_t i = 0; i < 5; ++i) idx.Insert(I(i), static_cast<RowId>(i));
  std::vector<RowId> out = {99};
  Value lo = I(1), hi = I(3);
  idx.RangeInto(&lo, &hi, &out);
  EXPECT_EQ(out, (std::vector<RowId>{99, 1, 2, 3}));
  idx.LookupInto(I(4), &out);
  EXPECT_EQ(out, (std::vector<RowId>{99, 1, 2, 3, 4}));
}

// Regression: reversed bounds (hi < lo) used to seed the walk with
// begin past end — unterminated iteration over invalid iterators (UB).
// They must yield an empty result instead, for same-type and cross-type
// reversals alike (the planner widens strict bounds but never reorders
// user-supplied constants).
TEST(OrderedIndexTest, ReversedBoundsYieldEmpty) {
  OrderedIndex idx;
  for (int64_t i = 0; i < 10; ++i) idx.Insert(I(i), static_cast<RowId>(i));
  idx.Insert(Value("z"), 100);
  Value lo = I(7), hi = I(2);
  EXPECT_TRUE(idx.Range(&lo, &hi).empty());
  std::vector<RowId> out = {99};
  idx.RangeInto(&lo, &hi, &out);
  EXPECT_EQ(out, (std::vector<RowId>{99}));  // Untouched, not grown.
  Value slo = Value("z"), shi = I(5);  // Cross-type: string > every int.
  idx.RangeInto(&slo, &shi, &out);
  EXPECT_EQ(out, (std::vector<RowId>{99}));
  Value eq = I(4);  // Equal bounds are NOT reversed: inclusive singleton.
  idx.RangeInto(&eq, &eq, &out);
  EXPECT_EQ(out, (std::vector<RowId>{99, 4}));
}

TEST(OrderedIndexTest, MixedTypeKeysDoNotCrash) {
  OrderedIndex idx;
  idx.Insert(Value::Null(), 0);
  idx.Insert(I(1), 1);
  idx.Insert(Value("z"), 2);
  EXPECT_EQ(idx.NumEntries(), 3u);
  EXPECT_EQ(idx.Range(nullptr, nullptr).size(), 3u);
}

}  // namespace
}  // namespace insightnotes::rel
