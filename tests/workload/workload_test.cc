#include "workload/workload.h"

#include <gtest/gtest.h>

#include "workload/annotation_gen.h"
#include "workload/bird_data.h"

namespace insightnotes::workload {
namespace {

TEST(BirdDataTest, CuratedSpeciesAreWellFormed) {
  const auto& curated = CuratedSpecies();
  ASSERT_GE(curated.size(), 20u);
  for (const auto& s : curated) {
    EXPECT_FALSE(s.common_name.empty());
    EXPECT_FALSE(s.scientific_name.empty());
    EXPECT_GT(s.weight_kg, 0.0);
    EXPECT_GT(s.population_estimate, 0);
  }
}

TEST(BirdDataTest, GenerateSpeciesIsDeterministic) {
  auto a = GenerateSpecies(100, 7);
  auto b = GenerateSpecies(100, 7);
  ASSERT_EQ(a.size(), 100u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].common_name, b[i].common_name);
    EXPECT_EQ(a[i].weight_kg, b[i].weight_kg);
  }
  // Synthetic names are unique.
  std::set<std::string> names;
  for (const auto& s : a) names.insert(s.common_name);
  EXPECT_EQ(names.size(), 100u);
}

TEST(AnnotationGenTest, CommentsMatchRequestedClass) {
  AnnotationGenerator gen(3);
  const auto& species = CuratedSpecies()[0];
  auto behavior = gen.GenerateComment(species, AnnotationClass::kBehavior);
  EXPECT_EQ(behavior.label, AnnotationClass::kBehavior);
  EXPECT_EQ(behavior.annotation.kind, ann::AnnotationKind::kComment);
  EXPECT_FALSE(behavior.annotation.body.empty());
  EXPECT_FALSE(behavior.annotation.author.empty());
}

TEST(AnnotationGenTest, TemplatesExpandPlaceholders) {
  AnnotationGenerator gen(5);
  const auto& species = CuratedSpecies()[0];  // Swan Goose.
  bool saw_expansion = false;
  for (int i = 0; i < 50; ++i) {
    auto g = gen.GenerateComment(species);
    EXPECT_EQ(g.annotation.body.find('%'), std::string::npos) << g.annotation.body;
    if (g.annotation.body.find("Swan Goose") != std::string::npos ||
        g.annotation.body.find("East Asia") != std::string::npos) {
      saw_expansion = true;
    }
  }
  EXPECT_TRUE(saw_expansion);
}

TEST(AnnotationGenTest, DocumentsAreLarge) {
  AnnotationGenerator gen(7);
  auto doc = gen.GenerateDocument(CuratedSpecies()[0], 30);
  EXPECT_EQ(doc.annotation.kind, ann::AnnotationKind::kDocument);
  EXPECT_GT(doc.annotation.body.size(), 1000u);
  EXPECT_FALSE(doc.annotation.title.empty());
}

TEST(AnnotationGenTest, TrainingDataCoversAllLabels) {
  auto t1 = AnnotationGenerator::ClassBird1Training();
  std::set<size_t> labels1;
  for (const auto& [label, text] : t1) labels1.insert(label);
  EXPECT_EQ(labels1, (std::set<size_t>{0, 1, 2, 3}));
  auto t2 = AnnotationGenerator::ClassBird2Training();
  std::set<size_t> labels2;
  for (const auto& [label, text] : t2) labels2.insert(label);
  EXPECT_EQ(labels2, (std::set<size_t>{0, 1, 2}));
}

class WorkloadBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<core::Engine>();
    ASSERT_TRUE(engine_->Init().ok());
  }
  std::unique_ptr<core::Engine> engine_;
};

TEST_F(WorkloadBuilderTest, BuildsFullyAnnotatedDatabase) {
  WorkloadConfig config;
  config.num_species = 20;
  config.annotations_per_tuple = 10;
  WorkloadBuilder builder(config);
  auto stats = builder.Build(engine_.get());
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->num_rows, 20u);
  EXPECT_EQ(stats->num_annotations, 200u);
  EXPECT_GE(stats->num_attachments, stats->num_annotations);
  auto table = engine_->catalog()->GetTable("birds");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ((*table)->NumRows(), 20u);
  EXPECT_EQ(engine_->annotations()->NumAnnotations(), 200u);
  // All four instances linked.
  EXPECT_EQ(engine_->summaries()->LinkedTo((*table)->id()).size(), 4u);
}

TEST_F(WorkloadBuilderTest, SummariesMaintainedDuringBuild) {
  WorkloadConfig config;
  config.num_species = 10;
  config.annotations_per_tuple = 20;
  config.zipf_skew = 0.0;  // Spread evenly so every row gets some.
  WorkloadBuilder builder(config);
  auto stats = builder.Build(engine_.get());
  ASSERT_TRUE(stats.ok());
  auto table = engine_->catalog()->GetTable("birds");
  ASSERT_TRUE(table.ok());
  uint64_t total = 0;
  for (rel::RowId row = 0; row < 10; ++row) {
    auto summaries = engine_->summaries()->SummariesFor((*table)->id(), row);
    ASSERT_TRUE(summaries.ok());
    ASSERT_EQ(summaries->size(), 4u);
    total += (*summaries)[0]->NumAnnotations();
  }
  EXPECT_GE(total, stats->num_annotations);  // Shared attachments add more.
}

TEST_F(WorkloadBuilderTest, ClassifierBeatsChanceOnGroundTruth) {
  WorkloadConfig config;
  config.num_species = 10;
  config.annotations_per_tuple = 50;
  config.document_fraction = 0.0;
  WorkloadBuilder builder(config);
  auto stats = builder.Build(engine_.get());
  ASSERT_TRUE(stats.ok());
  auto instance = engine_->summaries()->GetInstance("ClassBird1");
  ASSERT_TRUE(instance.ok());
  // Check classification accuracy on the first four classes.
  size_t correct = 0;
  size_t considered = 0;
  for (ann::AnnotationId id = 0; id < stats->labels.size(); ++id) {
    auto label = stats->labels[id];
    if (static_cast<int>(label) > 3) continue;  // ClassBird2 territory.
    auto note = engine_->annotations()->Get(id);
    ASSERT_TRUE(note.ok());
    size_t predicted = (*instance)->classifier()->Classify(note->body);
    considered++;
    if (predicted == static_cast<size_t>(label)) ++correct;
  }
  ASSERT_GT(considered, 50u);
  // Far better than the 25% chance baseline.
  EXPECT_GT(static_cast<double>(correct) / considered, 0.7);
}

TEST_F(WorkloadBuilderTest, ZipfSkewConcentratesAnnotations) {
  WorkloadConfig config;
  config.num_species = 50;
  config.annotations_per_tuple = 20;
  config.zipf_skew = 1.2;
  config.shared_fraction = 0.0;
  WorkloadBuilder builder(config);
  auto stats = builder.Build(engine_.get());
  ASSERT_TRUE(stats.ok());
  auto table = engine_->catalog()->GetTable("birds");
  ASSERT_TRUE(table.ok());
  size_t first_row = engine_->annotations()->OnRow((*table)->id(), 0).size();
  size_t tail_row = engine_->annotations()->OnRow((*table)->id(), 40).size();
  EXPECT_GT(first_row, tail_row * 3);
}

TEST_F(WorkloadBuilderTest, StreamRequiresBase) {
  WorkloadBuilder builder(WorkloadConfig{});
  EXPECT_TRUE(builder.StreamAnnotations(engine_.get(), 5).status().IsInternal());
}

}  // namespace
}  // namespace insightnotes::workload
