#include "txt/tfidf.h"

#include <gtest/gtest.h>

#include <cmath>

#include "txt/vocabulary.h"

namespace insightnotes::txt {
namespace {

TEST(VocabularyTest, InternsTerms) {
  Vocabulary v;
  TermId a = v.GetOrAdd("swan");
  TermId b = v.GetOrAdd("goose");
  TermId a2 = v.GetOrAdd("swan");
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.TermOf(a), "swan");
  EXPECT_EQ(v.Lookup("goose"), b);
  EXPECT_EQ(v.Lookup("heron"), kInvalidTermId);
}

TEST(VocabularyTest, IdfDecreasesWithDocumentFrequency) {
  Vocabulary v;
  TermId common = v.GetOrAdd("bird");
  TermId rare = v.GetOrAdd("stonewort");
  for (int i = 0; i < 100; ++i) {
    v.BumpDocumentCount();
    v.BumpDocumentFrequency(common);
  }
  v.BumpDocumentFrequency(rare);
  EXPECT_LT(v.Idf(common), v.Idf(rare));
}

TEST(SparseVectorTest, FromTokensCountsTerms) {
  Vocabulary vocab;
  SparseVector v = SparseVector::FromTokens({"a", "b", "a", "c", "a"}, &vocab);
  EXPECT_EQ(v.NumNonZero(), 3u);
  EXPECT_DOUBLE_EQ(v.Get(vocab.Lookup("a")), 3.0);
  EXPECT_DOUBLE_EQ(v.Get(vocab.Lookup("b")), 1.0);
  EXPECT_DOUBLE_EQ(v.Get(vocab.Lookup("c")), 1.0);
}

TEST(SparseVectorTest, FromTokensConstSkipsUnknown) {
  Vocabulary vocab;
  vocab.GetOrAdd("known");
  SparseVector v = SparseVector::FromTokensConst({"known", "unknown"}, vocab);
  EXPECT_EQ(v.NumNonZero(), 1u);
  EXPECT_EQ(vocab.size(), 1u);
}

TEST(SparseVectorTest, SetGetAndErase) {
  SparseVector v;
  v.Set(5, 2.0);
  v.Set(1, 1.0);
  v.Set(9, 3.0);
  EXPECT_DOUBLE_EQ(v.Get(5), 2.0);
  EXPECT_DOUBLE_EQ(v.Get(2), 0.0);
  v.Set(5, 0.0);  // Erase.
  EXPECT_DOUBLE_EQ(v.Get(5), 0.0);
  EXPECT_EQ(v.NumNonZero(), 2u);
}

TEST(SparseVectorTest, EntriesStaySorted) {
  SparseVector v;
  v.Set(9, 1.0);
  v.Set(1, 1.0);
  v.Set(5, 1.0);
  TermId prev = 0;
  for (const auto& e : v.entries()) {
    EXPECT_GE(e.term, prev);
    prev = e.term;
  }
}

TEST(SparseVectorTest, AddScaledMerges) {
  SparseVector a;
  a.Set(1, 1.0);
  a.Set(2, 2.0);
  SparseVector b;
  b.Set(2, 3.0);
  b.Set(4, 4.0);
  a.AddScaled(b, 2.0);
  EXPECT_DOUBLE_EQ(a.Get(1), 1.0);
  EXPECT_DOUBLE_EQ(a.Get(2), 8.0);
  EXPECT_DOUBLE_EQ(a.Get(4), 8.0);
}

TEST(SparseVectorTest, AddScaledCancellationRemovesEntry) {
  SparseVector a;
  a.Set(3, 5.0);
  SparseVector b;
  b.Set(3, 5.0);
  a.AddScaled(b, -1.0);
  EXPECT_EQ(a.NumNonZero(), 0u);
  EXPECT_TRUE(a.empty());
}

TEST(SparseVectorTest, DotAndNorm) {
  SparseVector a;
  a.Set(1, 3.0);
  a.Set(2, 4.0);
  SparseVector b;
  b.Set(2, 2.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 8.0);
  EXPECT_DOUBLE_EQ(a.Norm(), 5.0);
}

TEST(SparseVectorTest, CosineProperties) {
  SparseVector a;
  a.Set(1, 1.0);
  a.Set(2, 1.0);
  SparseVector scaled;
  scaled.Set(1, 10.0);
  scaled.Set(2, 10.0);
  SparseVector orthogonal;
  orthogonal.Set(3, 1.0);
  SparseVector zero;
  EXPECT_NEAR(a.Cosine(scaled), 1.0, 1e-9);
  EXPECT_DOUBLE_EQ(a.Cosine(orthogonal), 0.0);
  EXPECT_DOUBLE_EQ(a.Cosine(zero), 0.0);
  EXPECT_DOUBLE_EQ(zero.Cosine(zero), 0.0);
  // Symmetry.
  SparseVector c;
  c.Set(1, 2.0);
  c.Set(3, 1.0);
  EXPECT_DOUBLE_EQ(a.Cosine(c), c.Cosine(a));
}

TEST(SparseVectorTest, NormalizedHasUnitNorm) {
  SparseVector a;
  a.Set(1, 3.0);
  a.Set(2, 4.0);
  SparseVector n = a.Normalized();
  EXPECT_NEAR(n.Norm(), 1.0, 1e-12);
  EXPECT_NEAR(n.Get(1), 0.6, 1e-12);
  SparseVector zero;
  EXPECT_TRUE(zero.Normalized().empty());
}

}  // namespace
}  // namespace insightnotes::txt
