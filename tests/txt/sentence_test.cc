#include "txt/sentence.h"

#include <gtest/gtest.h>

namespace insightnotes::txt {
namespace {

TEST(SentenceTest, SplitsOnTerminators) {
  auto s = SplitSentences("First sentence. Second one! Third? Fourth");
  ASSERT_EQ(s.size(), 4u);
  EXPECT_EQ(s[0], "First sentence.");
  EXPECT_EQ(s[1], "Second one!");
  EXPECT_EQ(s[2], "Third?");
  EXPECT_EQ(s[3], "Fourth");
}

TEST(SentenceTest, HonorsAbbreviations) {
  auto s = SplitSentences("Large birds, e.g. swans, migrate. They fly far.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "Large birds, e.g. swans, migrate.");
}

TEST(SentenceTest, DoesNotSplitDecimals) {
  auto s = SplitSentences("Mean weight is 3.2 kg. Wingspan is 1.6 m.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "Mean weight is 3.2 kg.");
  EXPECT_EQ(s[1], "Wingspan is 1.6 m.");
}

TEST(SentenceTest, NewlinesAreBoundaries) {
  auto s = SplitSentences("line one\nline two\n\nline three");
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], "line two");
}

TEST(SentenceTest, EmptyInput) {
  EXPECT_TRUE(SplitSentences("").empty());
  EXPECT_TRUE(SplitSentences("   \n  \n").empty());
}

TEST(SentenceTest, TrailingTextWithoutTerminator) {
  auto s = SplitSentences("No terminator here");
  ASSERT_EQ(s.size(), 1u);
  EXPECT_EQ(s[0], "No terminator here");
}

TEST(SentenceTest, TitleAbbreviation) {
  auto s = SplitSentences("Dr. Smith observed the goose. It flew away.");
  ASSERT_EQ(s.size(), 2u);
  EXPECT_EQ(s[0], "Dr. Smith observed the goose.");
}

}  // namespace
}  // namespace insightnotes::txt
