#include "txt/tokenizer.h"

#include <gtest/gtest.h>

#include "txt/stopwords.h"

namespace insightnotes::txt {
namespace {

TEST(TokenizerTest, LowercasesAndSplits) {
  TokenizerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("Swan Goose, Anser!"),
            (std::vector<std::string>{"swan", "goose", "anser"}));
}

TEST(TokenizerTest, DropsStopwords) {
  TokenizerOptions opts;
  opts.stem = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("the bird is eating a stonewort"),
            (std::vector<std::string>{"bird", "eating", "stonewort"}));
}

TEST(TokenizerTest, StemsTokens) {
  Tokenizer t;  // Default: lowercase + stopwords + stem.
  auto tokens = t.Tokenize("The birds were eating stoneworts");
  EXPECT_EQ(tokens, (std::vector<std::string>{"bird", "eat", "stonewort"}));
}

TEST(TokenizerTest, DropsShortTokens) {
  TokenizerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("x yz abc"), (std::vector<std::string>{"yz", "abc"}));
}

TEST(TokenizerTest, KeepsDigits) {
  TokenizerOptions opts;
  opts.remove_stopwords = false;
  opts.stem = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("weight 3200g approx"),
            (std::vector<std::string>{"weight", "3200g", "approx"}));
}

TEST(TokenizerTest, EmptyAndPunctuationOnly) {
  Tokenizer t;
  EXPECT_TRUE(t.Tokenize("").empty());
  EXPECT_TRUE(t.Tokenize("?!... --- ,,,").empty());
}

TEST(TokenizerTest, NoLowercaseOption) {
  TokenizerOptions opts;
  opts.lowercase = false;
  opts.remove_stopwords = false;
  opts.stem = false;
  Tokenizer t(opts);
  EXPECT_EQ(t.Tokenize("Swan GOOSE"), (std::vector<std::string>{"Swan", "GOOSE"}));
}

TEST(StopwordsTest, KnownStopwords) {
  EXPECT_TRUE(IsStopword("the"));
  EXPECT_TRUE(IsStopword("a"));
  EXPECT_TRUE(IsStopword("yourselves"));
  EXPECT_TRUE(IsStopword("because"));
}

TEST(StopwordsTest, NonStopwords) {
  EXPECT_FALSE(IsStopword("bird"));
  EXPECT_FALSE(IsStopword("swan"));
  EXPECT_FALSE(IsStopword(""));
  EXPECT_FALSE(IsStopword("thee"));
}

}  // namespace
}  // namespace insightnotes::txt
