#include "txt/stemmer.h"

#include <gtest/gtest.h>

namespace insightnotes::txt {
namespace {

struct StemCase {
  const char* input;
  const char* expected;
};

class PorterStemTest : public ::testing::TestWithParam<StemCase> {};

TEST_P(PorterStemTest, StemsAsReference) {
  const StemCase& c = GetParam();
  EXPECT_EQ(PorterStem(c.input), c.expected) << "input=" << c.input;
}

// Expected outputs follow Porter's reference implementation vocabulary.
INSTANTIATE_TEST_SUITE_P(
    ReferenceVocabulary, PorterStemTest,
    ::testing::Values(
        StemCase{"caresses", "caress"}, StemCase{"ponies", "poni"},
        StemCase{"ties", "ti"}, StemCase{"caress", "caress"},
        StemCase{"cats", "cat"}, StemCase{"feed", "feed"},
        StemCase{"agreed", "agre"}, StemCase{"plastered", "plaster"},
        StemCase{"bled", "bled"}, StemCase{"motoring", "motor"},
        StemCase{"sing", "sing"}, StemCase{"conflated", "conflat"},
        StemCase{"troubled", "troubl"}, StemCase{"sized", "size"},
        StemCase{"hopping", "hop"}, StemCase{"tanned", "tan"},
        StemCase{"falling", "fall"}, StemCase{"hissing", "hiss"},
        StemCase{"fizzed", "fizz"}, StemCase{"failing", "fail"},
        StemCase{"filing", "file"}, StemCase{"happy", "happi"},
        StemCase{"sky", "sky"}, StemCase{"relational", "relat"},
        StemCase{"conditional", "condit"}, StemCase{"rational", "ration"},
        StemCase{"valenci", "valenc"}, StemCase{"digitizer", "digit"},
        StemCase{"operator", "oper"}, StemCase{"feudalism", "feudal"},
        StemCase{"decisiveness", "decis"}, StemCase{"hopefulness", "hope"},
        StemCase{"formaliti", "formal"}, StemCase{"sensitiviti", "sensit"},
        StemCase{"triplicate", "triplic"}, StemCase{"formative", "form"},
        StemCase{"formalize", "formal"}, StemCase{"electriciti", "electr"},
        StemCase{"electrical", "electr"}, StemCase{"hopeful", "hope"},
        StemCase{"goodness", "good"}, StemCase{"revival", "reviv"},
        StemCase{"allowance", "allow"}, StemCase{"inference", "infer"},
        StemCase{"airliner", "airlin"}, StemCase{"adjustable", "adjust"},
        StemCase{"defensible", "defens"}, StemCase{"irritant", "irrit"},
        StemCase{"replacement", "replac"}, StemCase{"adjustment", "adjust"},
        StemCase{"dependent", "depend"}, StemCase{"adoption", "adopt"},
        StemCase{"communism", "commun"}, StemCase{"activate", "activ"},
        StemCase{"angulariti", "angular"}, StemCase{"homologous", "homolog"},
        StemCase{"effective", "effect"}, StemCase{"bowdlerize", "bowdler"},
        StemCase{"probate", "probat"}, StemCase{"rate", "rate"},
        StemCase{"cease", "ceas"}, StemCase{"controll", "control"},
        StemCase{"roll", "roll"}));

TEST(PorterStemEdgeTest, ShortWordsUnchanged) {
  EXPECT_EQ(PorterStem("a"), "a");
  EXPECT_EQ(PorterStem("is"), "is");
  EXPECT_EQ(PorterStem(""), "");
}

TEST(PorterStemEdgeTest, NonLowercaseInputUnchanged) {
  EXPECT_EQ(PorterStem("Observing"), "Observing");
  EXPECT_EQ(PorterStem("bird42"), "bird42");
}

TEST(PorterStemEdgeTest, IdempotentOnCommonDomainWords) {
  for (const char* w : {"behavior", "diseas", "anatomi", "provenance"}) {
    std::string once = PorterStem(w);
    EXPECT_EQ(PorterStem(once), once) << w;
  }
}

TEST(PorterStemEdgeTest, InflectionsCollapse) {
  EXPECT_EQ(PorterStem("observing"), PorterStem("observed"));
  EXPECT_EQ(PorterStem("observes"), PorterStem("observed"));
  EXPECT_EQ(PorterStem("migrations"), PorterStem("migration"));
}

}  // namespace
}  // namespace insightnotes::txt
