#include "common/string_util.h"

#include <gtest/gtest.h>

namespace insightnotes {
namespace {

TEST(SplitTest, BasicSplit) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(SplitWhitespaceTest, DropsEmptyFields) {
  EXPECT_EQ(SplitWhitespace("  swan   goose \t anser\n"),
            (std::vector<std::string>{"swan", "goose", "anser"}));
  EXPECT_TRUE(SplitWhitespace("   ").empty());
  EXPECT_TRUE(SplitWhitespace("").empty());
}

TEST(JoinTest, Joins) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"only"}, ","), "only");
}

TEST(StripWhitespaceTest, Strips) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace("  \t\n "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(CaseTest, LowerUpper) {
  EXPECT_EQ(ToLower("Anser CYGNOIDES 42"), "anser cygnoides 42");
  EXPECT_EQ(ToUpper("select"), "SELECT");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("selects", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("select", "selekt"));
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("zoomin", "zoom"));
  EXPECT_FALSE(StartsWith("zoom", "zoomin"));
  EXPECT_TRUE(EndsWith("summary_test.cc", ".cc"));
  EXPECT_FALSE(EndsWith(".cc", "summary_test.cc"));
}

TEST(EllipsizeTest, TruncatesLongStrings) {
  EXPECT_EQ(Ellipsize("short", 10), "short");
  EXPECT_EQ(Ellipsize("exactly10!", 10), "exactly10!");
  EXPECT_EQ(Ellipsize("a very long annotation body", 10), "a very ...");
  EXPECT_EQ(Ellipsize("abcdef", 3), "abc");
  EXPECT_EQ(Ellipsize("abcdef", 2), "ab");
}

}  // namespace
}  // namespace insightnotes
