#include "common/random.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace insightnotes {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(42);
  Random b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformStaysInBounds) {
  Random r(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.Uniform(17), 17u);
  }
}

TEST(RandomTest, UniformInRangeInclusive) {
  Random r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = r.UniformInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random r(11);
  for (int i = 0; i < 1000; ++i) {
    double d = r.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliRespectsProbabilityRoughly) {
  Random r(13);
  int hits = 0;
  constexpr int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) {
    if (r.Bernoulli(0.25)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.03);
}

TEST(RandomTest, ZipfSkewsTowardSmallRanks) {
  Random r(17);
  constexpr uint64_t kN = 1000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) {
    uint64_t v = r.Zipf(kN, 1.0);
    ASSERT_LT(v, kN);
    counts[v]++;
  }
  // Rank 0 must be sampled far more often than rank 100.
  EXPECT_GT(counts[0], counts[100] * 3);
}

TEST(RandomTest, ZipfZeroSkewIsUniformish) {
  Random r(19);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 20000; ++i) {
    counts[r.Zipf(10, 0.0)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 2000, 300);
  }
}

TEST(RandomTest, WeightedFollowsWeights) {
  Random r(23);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    counts[r.Weighted(weights)]++;
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / static_cast<double>(kTrials), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(kTrials), 0.3, 0.03);
  EXPECT_NEAR(counts[3] / static_cast<double>(kTrials), 0.6, 0.03);
}

TEST(RandomTest, WeightedDegenerateCases) {
  Random r(29);
  EXPECT_EQ(r.Weighted({}), 0u);
  EXPECT_EQ(r.Weighted({0.0, 0.0}), 0u);
  EXPECT_EQ(r.Weighted({0.0, 5.0}), 1u);
}

TEST(RandomTest, ZipfBoundaries) {
  Random r(31);
  EXPECT_EQ(r.Zipf(0, 1.0), 0u);
  EXPECT_EQ(r.Zipf(1, 1.0), 0u);
  EXPECT_EQ(r.Zipf(1, 0.0), 0u);
}

}  // namespace
}  // namespace insightnotes
