#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace insightnotes {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, FuturesCarryResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Submit([i]() { return i * i; }));
  }
  int sum = 0;
  for (auto& f : futures) sum += f.get();
  int expected = 0;
  for (int i = 0; i < 32; ++i) expected += i * i;
  EXPECT_EQ(sum, expected);
}

TEST(ThreadPoolTest, FuturesPropagateExceptions) {
  ThreadPool pool(2);
  auto future = pool.Submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressure) {
  // One worker, a tiny queue: submitting more jobs than capacity must not
  // deadlock or drop work — producers block until space frees up.
  ThreadPool pool(1, /*max_queued=*/2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter]() { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, WaitIdleDrains) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 64; ++i) {
    pool.Submit([&counter]() { ++counter; });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 40; ++i) {
      pool.Submit([&counter]() { ++counter; });
    }
    // No explicit wait: the destructor must drain the queue gracefully.
  }
  EXPECT_EQ(counter.load(), 40);
}

TEST(ThreadPoolTest, AtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  auto f = pool.Submit([]() { return 7; });
  EXPECT_EQ(f.get(), 7);
}

}  // namespace
}  // namespace insightnotes
