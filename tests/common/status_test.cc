#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace insightnotes {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table 'birds' does not exist");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table 'birds' does not exist");
  EXPECT_EQ(s.ToString(), "not found: table 'birds' does not exist");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::IoError("x").IsIoError());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::CapacityExceeded("x").IsCapacityExceeded());
}

TEST(StatusTest, CopyPreservesState) {
  Status s = Status::Internal("boom");
  Status t = s;
  EXPECT_TRUE(t.IsInternal());
  EXPECT_EQ(t.message(), "boom");
  EXPECT_TRUE(s.IsInternal());
}

TEST(StatusTest, WithContextPrefixesMessage) {
  Status s = Status::IoError("disk full").WithContext("writing page 7");
  EXPECT_TRUE(s.IsIoError());
  EXPECT_EQ(s.message(), "writing page 7: disk full");
  EXPECT_TRUE(Status::OK().WithContext("nope").ok());
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  auto inner = []() { return Status::InvalidArgument("bad"); };
  auto outer = [&]() -> Status {
    INSIGHTNOTES_RETURN_IF_ERROR(inner());
    return Status::OK();
  };
  EXPECT_TRUE(outer().IsInvalidArgument());
}

TEST(StatusTest, ReturnIfErrorPassesThroughOk) {
  auto inner = []() { return Status::OK(); };
  bool reached_end = false;
  auto outer = [&]() -> Status {
    INSIGHTNOTES_RETURN_IF_ERROR(inner());
    reached_end = true;
    return Status::OK();
  };
  EXPECT_TRUE(outer().ok());
  EXPECT_TRUE(reached_end);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, MovesOutValue) {
  Result<std::string> r = std::string("hello");
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto make = [](bool ok) -> Result<int> {
    if (ok) return 7;
    return Status::Internal("no");
  };
  auto use = [&](bool ok) -> Result<int> {
    INSIGHTNOTES_ASSIGN_OR_RETURN(int v, make(ok));
    return v * 2;
  };
  EXPECT_EQ(*use(true), 14);
  EXPECT_TRUE(use(false).status().IsInternal());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "ok");
  EXPECT_EQ(StatusCodeToString(StatusCode::kParseError), "parse error");
  EXPECT_EQ(StatusCodeToString(StatusCode::kCapacityExceeded), "capacity exceeded");
}

}  // namespace
}  // namespace insightnotes
