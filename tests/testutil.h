// Shared test fixtures: a fully wired engine with the Figure 2 setup —
// tables R(a,b,c,d) and S(x,y,z), classifier instances ClassBird1 (on R),
// ClassBird2 (on R and S), a SimCluster instance (R and S) and a
// TextSummary1 snippet instance (R).

#ifndef INSIGHTNOTES_TESTS_TESTUTIL_H_
#define INSIGHTNOTES_TESTS_TESTUTIL_H_

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/engine.h"
#include "core/summary_instance.h"
#include "exec/operator.h"
#include "rel/expression.h"

namespace insightnotes::testutil {

inline rel::Value I(int64_t v) { return rel::Value(v); }
inline rel::Value S(const std::string& v) { return rel::Value(v); }
inline rel::Value F(double v) { return rel::Value(v); }

/// Bound column reference by (qualified) name against `schema`.
inline rel::ExprPtr Col(const rel::Schema& schema, const std::string& name) {
  auto index = schema.IndexOf(name);
  EXPECT_TRUE(index.ok()) << index.status().ToString();
  return rel::MakeColumn(index.ok() ? *index : 0, name);
}

class EngineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    engine_ = std::make_unique<core::Engine>(options_);
    ASSERT_TRUE(engine_->Init().ok()) << "engine init failed";
  }

  /// Creates R(a BIGINT, b BIGINT, c TEXT, d TEXT) and
  /// S(x BIGINT, y TEXT, z TEXT) with a few rows.
  void CreateFigure2Tables() {
    ASSERT_TRUE(engine_
                    ->CreateTable("R", rel::Schema({{"a", rel::ValueType::kInt64, "R"},
                                                    {"b", rel::ValueType::kInt64, "R"},
                                                    {"c", rel::ValueType::kString, "R"},
                                                    {"d", rel::ValueType::kString, "R"}}))
                    .ok());
    ASSERT_TRUE(engine_
                    ->CreateTable("S", rel::Schema({{"x", rel::ValueType::kInt64, "S"},
                                                    {"y", rel::ValueType::kString, "S"},
                                                    {"z", rel::ValueType::kString, "S"}}))
                    .ok());
    // R rows: (1,2,c0,d0), (2,2,c1,d1), (3,9,c2,d2).
    for (int64_t i = 1; i <= 3; ++i) {
      auto row = engine_->Insert(
          "R", rel::Tuple({I(i), I(i <= 2 ? 2 : 9), S("c" + std::to_string(i - 1)),
                           S("d" + std::to_string(i - 1))}));
      ASSERT_TRUE(row.ok());
    }
    // S rows: (1,y0,z0), (3,y1,z1), (4,y2,z2).
    ASSERT_TRUE(engine_->Insert("S", rel::Tuple({I(1), S("y0"), S("z0")})).ok());
    ASSERT_TRUE(engine_->Insert("S", rel::Tuple({I(3), S("y1"), S("z1")})).ok());
    ASSERT_TRUE(engine_->Insert("S", rel::Tuple({I(4), S("y2"), S("z2")})).ok());
  }

  /// Registers and links the Figure 2 summary instances.
  void CreateFigure2Instances() {
    auto class1 = core::SummaryInstance::MakeClassifier(
        "ClassBird1", {"Behavior", "Disease", "Anatomy", "Other"});
    TrainBirdClassifier(class1->classifier());
    ASSERT_TRUE(engine_->RegisterInstance(std::move(class1)).ok());

    auto class2 = core::SummaryInstance::MakeClassifier(
        "ClassBird2", {"Provenance", "Comment", "Question"});
    auto* nb2 = class2->classifier();
    ASSERT_TRUE(nb2->Train(0, "produced by experiment lineage derived source").ok());
    ASSERT_TRUE(nb2->Train(1, "observed noted comment remark general").ok());
    ASSERT_TRUE(nb2->Train(2, "why what unclear question wondering unsure").ok());
    ASSERT_TRUE(engine_->RegisterInstance(std::move(class2)).ok());

    ASSERT_TRUE(
        engine_->RegisterInstance(core::SummaryInstance::MakeCluster("SimCluster", 0.3)).ok());
    mining::SnippetOptions snippet_opts;
    snippet_opts.max_sentences = 1;
    snippet_opts.max_chars = 120;
    ASSERT_TRUE(engine_
                    ->RegisterInstance(core::SummaryInstance::MakeSnippet(
                        "TextSummary1", snippet_opts))
                    .ok());

    ASSERT_TRUE(engine_->LinkInstance("ClassBird1", "R").ok());
    ASSERT_TRUE(engine_->LinkInstance("ClassBird2", "R").ok());
    ASSERT_TRUE(engine_->LinkInstance("ClassBird2", "S").ok());
    ASSERT_TRUE(engine_->LinkInstance("SimCluster", "R").ok());
    ASSERT_TRUE(engine_->LinkInstance("SimCluster", "S").ok());
    ASSERT_TRUE(engine_->LinkInstance("TextSummary1", "R").ok());
  }

  static void TrainBirdClassifier(mining::NaiveBayesClassifier* nb) {
    ASSERT_TRUE(nb->Train(0, "eating stonewort foraging flying migration behavior").ok());
    ASSERT_TRUE(nb->Train(1, "influenza infection sick parasite disease lesion").ok());
    ASSERT_TRUE(nb->Train(2, "size weight wingspan beak feathers anatomy large").ok());
    ASSERT_TRUE(nb->Train(3, "article wikipedia photo link reference misc").ok());
  }

  core::AnnotateSpec Spec(const std::string& table, rel::RowId row,
                          const std::string& body, std::vector<size_t> columns = {}) {
    core::AnnotateSpec spec;
    spec.table = table;
    spec.row = row;
    spec.columns = std::move(columns);
    spec.body = body;
    spec.author = "tester";
    return spec;
  }

  core::EngineOptions options_;
  std::unique_ptr<core::Engine> engine_;
};

}  // namespace insightnotes::testutil

#endif  // INSIGHTNOTES_TESTS_TESTUTIL_H_
