#include "mining/clustering.h"

#include <gtest/gtest.h>

namespace insightnotes::mining {
namespace {

class ClusteringTest : public ::testing::Test {
 protected:
  txt::SparseVector V(const std::string& text) { return vectorizer_.Vectorize(text); }
  TextVectorizer vectorizer_;
};

TEST_F(ClusteringTest, SimilarDocumentsShareAGroup) {
  ClusterSet cs(0.3);
  ASSERT_TRUE(cs.Add(1, V("the goose was eating stonewort plants")).ok());
  ASSERT_TRUE(cs.Add(2, V("goose eating stonewort near the lake")).ok());
  ASSERT_TRUE(cs.Add(3, V("wingspan measured at 160 centimeters")).ok());
  EXPECT_EQ(cs.NumGroups(), 2u);
  EXPECT_EQ(cs.NumDocuments(), 3u);
}

TEST_F(ClusteringTest, DissimilarDocumentsSeedNewGroups) {
  ClusterSet cs(0.9);  // Very strict threshold.
  ASSERT_TRUE(cs.Add(1, V("alpha beta gamma")).ok());
  ASSERT_TRUE(cs.Add(2, V("delta epsilon zeta")).ok());
  ASSERT_TRUE(cs.Add(3, V("eta theta iota")).ok());
  EXPECT_EQ(cs.NumGroups(), 3u);
}

TEST_F(ClusteringTest, DuplicateAddRejected) {
  ClusterSet cs;
  ASSERT_TRUE(cs.Add(1, V("hello world")).ok());
  EXPECT_TRUE(cs.Add(1, V("hello again")).status().IsAlreadyExists());
}

TEST_F(ClusteringTest, RepresentativeIsAMember) {
  ClusterSet cs(0.2);
  ASSERT_TRUE(cs.Add(10, V("swan goose eating stonewort")).ok());
  ASSERT_TRUE(cs.Add(20, V("goose eating stonewort daily")).ok());
  ASSERT_TRUE(cs.Add(30, V("stonewort eaten by goose swan")).ok());
  for (const auto& g : cs.groups()) {
    EXPECT_TRUE(std::binary_search(g.members.begin(), g.members.end(),
                                   g.representative));
  }
}

TEST_F(ClusteringTest, RemoveDropsEffectAndReelects) {
  ClusterSet cs(0.2);
  ASSERT_TRUE(cs.Add(1, V("goose eating stonewort plants lake")).ok());
  ASSERT_TRUE(cs.Add(2, V("goose eating stonewort")).ok());
  ASSERT_TRUE(cs.Add(3, V("eating stonewort lake")).ok());
  ASSERT_EQ(cs.NumGroups(), 1u);
  DocId rep = cs.groups()[0].representative;
  ASSERT_TRUE(cs.Remove(rep).ok());
  ASSERT_EQ(cs.NumGroups(), 1u);
  EXPECT_EQ(cs.groups()[0].size(), 2u);
  EXPECT_NE(cs.groups()[0].representative, rep);
  EXPECT_FALSE(cs.Contains(rep));
}

TEST_F(ClusteringTest, RemoveLastMemberDeletesGroup) {
  ClusterSet cs;
  ASSERT_TRUE(cs.Add(1, V("solitary document")).ok());
  ASSERT_TRUE(cs.Remove(1).ok());
  EXPECT_EQ(cs.NumGroups(), 0u);
  EXPECT_EQ(cs.NumDocuments(), 0u);
  EXPECT_TRUE(cs.Remove(1).IsNotFound());
}

TEST_F(ClusteringTest, AddRemoveIsIdentity) {
  ClusterSet cs(0.25);
  ASSERT_TRUE(cs.Add(1, V("goose eating stonewort")).ok());
  ASSERT_TRUE(cs.Add(2, V("goose eating plants")).ok());
  std::vector<std::vector<DocId>> before;
  for (const auto& g : cs.groups()) before.push_back(g.members);
  ASSERT_TRUE(cs.Add(99, V("totally unrelated telescope hardware")).ok());
  ASSERT_TRUE(cs.Remove(99).ok());
  std::vector<std::vector<DocId>> after;
  for (const auto& g : cs.groups()) after.push_back(g.members);
  EXPECT_EQ(before, after);
}

TEST_F(ClusteringTest, MergeDisjointAppendsGroups) {
  ClusterSet a(0.9);
  ASSERT_TRUE(a.Add(1, V("alpha beta")).ok());
  ClusterSet b(0.9);
  ASSERT_TRUE(b.Add(2, V("gamma delta")).ok());
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.NumGroups(), 2u);
  EXPECT_EQ(a.NumDocuments(), 2u);
}

TEST_F(ClusteringTest, MergeSharedMembersNotDoubleCounted) {
  // The same annotation (doc 5) is attached to both tuples (Figure 2's
  // "five common annotations" case).
  ClusterSet a(0.2);
  ASSERT_TRUE(a.Add(5, V("goose eating stonewort")).ok());
  ASSERT_TRUE(a.Add(6, V("goose eating plants")).ok());
  ClusterSet b(0.2);
  ASSERT_TRUE(b.Add(5, V("goose eating stonewort")).ok());
  ASSERT_TRUE(b.Add(7, V("stonewort eaten by birds")).ok());
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.NumDocuments(), 3u);  // 5, 6, 7 — doc 5 counted once.
  size_t total_members = 0;
  for (const auto& g : a.groups()) total_members += g.size();
  EXPECT_EQ(total_members, 3u);
}

TEST_F(ClusteringTest, MergeOverlappingGroupsCombine) {
  ClusterSet a(0.99);  // Strict: nothing auto-joins.
  ASSERT_TRUE(a.Add(1, V("one two")).ok());
  ASSERT_TRUE(a.Add(2, V("three four")).ok());
  ClusterSet b(0.99);
  ASSERT_TRUE(b.Add(1, V("one two")).ok());
  ASSERT_TRUE(b.Add(3, V("five six")).ok());
  // b's group {1,3}? No: strict threshold separates them; b has {1} and {3}.
  ASSERT_EQ(b.NumGroups(), 2u);
  ASSERT_TRUE(a.Merge(b).ok());
  // Group containing 1 stays a single group; 3 arrives as its own group.
  EXPECT_EQ(a.NumDocuments(), 3u);
  EXPECT_EQ(a.NumGroups(), 3u);
}

TEST_F(ClusteringTest, MergeBridgingGroupCombinesLocalGroups) {
  ClusterSet a(0.99);
  ASSERT_TRUE(a.Add(1, V("one two")).ok());
  ASSERT_TRUE(a.Add(2, V("three four")).ok());
  ASSERT_EQ(a.NumGroups(), 2u);
  // `b` holds docs 1 and 2 in ONE group (loose threshold): merging must
  // bridge a's two groups into one.
  ClusterSet b(0.0);
  ASSERT_TRUE(b.Add(1, V("one two")).ok());
  ASSERT_TRUE(b.Add(2, V("three four")).ok());
  ASSERT_EQ(b.NumGroups(), 1u);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.NumGroups(), 1u);
  EXPECT_EQ(a.groups()[0].members, (std::vector<DocId>{1, 2}));
}

TEST_F(ClusteringTest, MergeCommutativeOnMembership) {
  auto build = [&](std::vector<std::pair<DocId, std::string>> docs) {
    ClusterSet cs(0.3);
    for (auto& [id, text] : docs) EXPECT_TRUE(cs.Add(id, V(text)).ok());
    return cs;
  };
  auto a1 = build({{1, "goose eating stonewort"}, {2, "wingspan anatomy size"}});
  auto b1 = build({{3, "goose eating plants stonewort"}, {4, "disease influenza"}});
  auto a2 = build({{1, "goose eating stonewort"}, {2, "wingspan anatomy size"}});
  auto b2 = build({{3, "goose eating plants stonewort"}, {4, "disease influenza"}});
  ASSERT_TRUE(a1.Merge(b1).ok());
  ASSERT_TRUE(b2.Merge(a2).ok());
  EXPECT_EQ(a1.NumDocuments(), b2.NumDocuments());
  EXPECT_TRUE(a1.SameGrouping(b2));
}

TEST_F(ClusteringTest, GroupMembersAccessor) {
  ClusterSet cs;
  ASSERT_TRUE(cs.Add(42, V("hello world")).ok());
  auto members = cs.GroupMembers(0);
  ASSERT_TRUE(members.ok());
  EXPECT_EQ(*members, (std::vector<DocId>{42}));
  EXPECT_TRUE(cs.GroupMembers(5).status().IsOutOfRange());
}

TEST_F(ClusteringTest, EmptyTextDocumentsCluster) {
  ClusterSet cs;
  // Zero vectors have 0 cosine to everything: each seeds its own group.
  ASSERT_TRUE(cs.Add(1, V("")).ok());
  ASSERT_TRUE(cs.Add(2, V("")).ok());
  EXPECT_EQ(cs.NumGroups(), 2u);
}

}  // namespace
}  // namespace insightnotes::mining
