#include "mining/naive_bayes.h"

#include <gtest/gtest.h>

#include <cmath>

namespace insightnotes::mining {
namespace {

// The ornithological labels from the paper's ClassBird1 instance.
NaiveBayesClassifier BirdClassifier() {
  NaiveBayesClassifier nb({"Behavior", "Disease", "Anatomy", "Other"});
  // Behavior.
  EXPECT_TRUE(nb.Train(0, "found eating stonewort near the shore").ok());
  EXPECT_TRUE(nb.Train(0, "observed flying south in large flocks migrating").ok());
  EXPECT_TRUE(nb.Train(0, "aggressive behavior during nesting season").ok());
  EXPECT_TRUE(nb.Train(0, "foraging and eating aquatic plants at dusk").ok());
  // Disease.
  EXPECT_TRUE(nb.Train(1, "signs of avian influenza infection detected").ok());
  EXPECT_TRUE(nb.Train(1, "sick individual with parasite infestation").ok());
  EXPECT_TRUE(nb.Train(1, "lesions suggest fungal disease on the beak").ok());
  // Anatomy.
  EXPECT_TRUE(nb.Train(2, "large one having size around 3 kilograms").ok());
  EXPECT_TRUE(nb.Train(2, "long neck and orange beak with white feathers").ok());
  EXPECT_TRUE(nb.Train(2, "wingspan measured at 160 centimeters body weight high").ok());
  // Other.
  EXPECT_TRUE(nb.Train(3, "see related wikipedia article for details").ok());
  EXPECT_TRUE(nb.Train(3, "photo attached from the trip last weekend").ok());
  return nb;
}

TEST(NaiveBayesTest, ClassifiesDomainExamples) {
  auto nb = BirdClassifier();
  EXPECT_EQ(nb.Classify("the goose was eating stonewort"), 0u);       // Behavior.
  EXPECT_EQ(nb.Classify("infected with avian influenza parasite"), 1u);  // Disease.
  EXPECT_EQ(nb.Classify("body size and wingspan measured"), 2u);      // Anatomy.
}

TEST(NaiveBayesTest, PriorsBreakTiesForUnknownText) {
  NaiveBayesClassifier nb({"a", "b"});
  ASSERT_TRUE(nb.Train(0, "alpha words here").ok());
  ASSERT_TRUE(nb.Train(0, "more alpha content").ok());
  ASSERT_TRUE(nb.Train(1, "beta text").ok());
  // Tokens unknown to the model: decided by the prior (label 0 trained more).
  EXPECT_EQ(nb.Classify("zzz qqq"), 0u);
}

TEST(NaiveBayesTest, UntrainedModelDefaultsToFirstLabel) {
  NaiveBayesClassifier nb({"x", "y", "z"});
  EXPECT_EQ(nb.Classify("anything at all"), 0u);
  EXPECT_EQ(nb.num_training_docs(), 0u);
}

TEST(NaiveBayesTest, TrainValidatesLabel) {
  NaiveBayesClassifier nb({"only"});
  EXPECT_TRUE(nb.Train(1, "oops").IsInvalidArgument());
  EXPECT_TRUE(nb.Train(0, "fine").ok());
}

TEST(NaiveBayesTest, ScoresAreFiniteAndOrdered) {
  auto nb = BirdClassifier();
  auto scores = nb.Scores("eating and foraging behavior");
  ASSERT_EQ(scores.size(), 4u);
  for (double s : scores) {
    EXPECT_TRUE(std::isfinite(s));
    EXPECT_LT(s, 0.0);  // Log probabilities.
  }
  EXPECT_GT(scores[0], scores[1]);
  EXPECT_GT(scores[0], scores[3]);
}

TEST(NaiveBayesTest, IncrementalTrainingShiftsDecision) {
  NaiveBayesClassifier nb({"refute", "approve"});
  ASSERT_TRUE(nb.Train(0, "value is wrong incorrect mistaken").ok());
  ASSERT_TRUE(nb.Train(1, "confirmed correct verified").ok());
  EXPECT_EQ(nb.Classify("this is wrong"), 0u);
  // Teach it that "suspicious" means refute.
  EXPECT_EQ(nb.Classify("suspicious suspicious suspicious"), 0u);  // Prior tie -> 0 anyway.
  ASSERT_TRUE(nb.Train(1, "suspicious but confirmed correct").ok());
  ASSERT_TRUE(nb.Train(1, "suspicious reading verified fine").ok());
  EXPECT_EQ(nb.Classify("suspicious"), 1u);
}

TEST(NaiveBayesTest, StemmingUnifiesInflections) {
  NaiveBayesClassifier nb({"feeding", "nesting"});
  ASSERT_TRUE(nb.Train(0, "eating eats feeding fed").ok());
  ASSERT_TRUE(nb.Train(1, "nest nests nesting").ok());
  EXPECT_EQ(nb.Classify("it was eating"), 0u);
  EXPECT_EQ(nb.Classify("building a nest"), 1u);
}

TEST(NaiveBayesTest, VocabularyGrowsWithTraining) {
  NaiveBayesClassifier nb({"a"});
  size_t before = nb.vocabulary_size();
  ASSERT_TRUE(nb.Train(0, "completely novel terminology stonewort").ok());
  EXPECT_GT(nb.vocabulary_size(), before);
}

}  // namespace
}  // namespace insightnotes::mining
