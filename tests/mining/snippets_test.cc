#include "mining/snippets.h"

#include <gtest/gtest.h>

#include "txt/sentence.h"

namespace insightnotes::mining {
namespace {

TEST(SnippetTest, EmptyDocument) {
  SnippetExtractor ex;
  EXPECT_EQ(ex.Summarize(""), "");
  EXPECT_EQ(ex.Summarize("   \n "), "");
}

TEST(SnippetTest, ShortDocumentReturnedWhole) {
  SnippetExtractor ex;
  EXPECT_EQ(ex.Summarize("The swan goose is large."), "The swan goose is large.");
}

TEST(SnippetTest, SelectsDominantTopicSentences) {
  SnippetOptions opts;
  opts.max_sentences = 1;
  opts.max_chars = 500;
  SnippetExtractor ex(opts);
  std::string doc =
      "The swan goose eats stonewort. "
      "Stonewort grows in lakes where the swan goose feeds on stonewort daily. "
      "Unrelated trivia about telescopes.";
  std::string snippet = ex.Summarize(doc);
  // The middle sentence covers the dominant terms (stonewort/goose) most.
  EXPECT_NE(snippet.find("stonewort"), std::string::npos);
  EXPECT_EQ(snippet.find("telescopes"), std::string::npos);
}

TEST(SnippetTest, PreservesDocumentOrder) {
  SnippetOptions opts;
  opts.max_sentences = 2;
  opts.max_chars = 500;
  SnippetExtractor ex(opts);
  std::string doc =
      "Geese migrate south in winter. "
      "Completely different filler text here. "
      "Migration of geese follows the south winter routes.";
  std::string snippet = ex.Summarize(doc);
  size_t first = snippet.find("Geese migrate");
  size_t second = snippet.find("Migration of geese");
  ASSERT_NE(first, std::string::npos);
  ASSERT_NE(second, std::string::npos);
  EXPECT_LT(first, second);
}

TEST(SnippetTest, RespectsMaxChars) {
  SnippetOptions opts;
  opts.max_sentences = 5;
  opts.max_chars = 50;
  SnippetExtractor ex(opts);
  std::string doc(
      "A very long sentence about the swan goose and its behavior in the wild. "
      "Another long sentence about the swan goose follows here.");
  std::string snippet = ex.Summarize(doc);
  EXPECT_LE(snippet.size(), 50u);
  EXPECT_EQ(snippet.substr(snippet.size() - 3), "...");
}

TEST(SnippetTest, DeterministicAcrossCalls) {
  SnippetExtractor ex;
  std::string doc =
      "Sentence one about geese. Sentence two about swans. "
      "Sentence three about geese and swans together.";
  EXPECT_EQ(ex.Summarize(doc), ex.Summarize(doc));
}

TEST(SnippetTest, ScoresMatchSentenceCount) {
  SnippetExtractor ex;
  std::vector<std::string> sentences = {"geese eat plants", "geese fly", ""};
  auto scores = ex.ScoreSentences(sentences);
  ASSERT_EQ(scores.size(), 3u);
  EXPECT_GT(scores[0], 0.0);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);
}

TEST(SnippetTest, RepeatedTermsRaiseScore) {
  SnippetExtractor ex;
  // "goose" dominates the document; the sentence with two mentions of the
  // dominant term outranks the one-off sentence of equal length.
  std::vector<std::string> sentences = {"goose watched goose", "heron watched once"};
  auto scores = ex.ScoreSentences(sentences);
  EXPECT_GT(scores[0], scores[1]);
}

}  // namespace
}  // namespace insightnotes::mining
