#include "workload/annotation_gen.h"

#include <array>

namespace insightnotes::workload {

namespace {

// Template pools per class. "%N" = species common name, "%S" = scientific
// name, "%R" = region, "%D" = a random small number.
const std::array<std::vector<std::string>, kNumAnnotationClasses> kTemplates = {{
    // Behavior.
    {"found eating stonewort near the shore",
     "observed foraging at dusk with a flock of %D birds",
     "aggressive behavior during nesting season noted",
     "seen migrating south across %R in formation",
     "pair observed building a nest close to the water",
     "diving repeatedly for small fish and aquatic plants",
     "the %N was calling loudly at dawn",
     "courtship display lasted about %D minutes"},
    // Disease.
    {"signs of avian influenza infection detected in this population",
     "sick individual with visible parasite infestation",
     "lesions on the beak suggest a fungal disease",
     "unusual lethargy may indicate infection",
     "%D individuals found dead, disease suspected",
     "feather loss consistent with mite infestation"},
    // Anatomy.
    {"large one having size around %D kilograms",
     "wingspan measured at %D centimeters",
     "long neck and orange beak with white feathers",
     "body weight above average for %N",
     "juvenile plumage still visible on the wings",
     "unusually short tail feathers on this specimen",
     "size seems wrong for an adult %N"},
    // Other.
    {"see the attached photo from the trip to %R",
     "related wikipedia article linked for reference",
     "recording of the call uploaded separately",
     "misc note: equipment calibration was off today"},
    // Provenance.
    {"record produced by experiment E%D pipeline",
     "derived from the %R winter survey dataset",
     "value imported from the legacy database by the curation team",
     "lineage: aggregated from %D field reports",
     "source: banding station log %D"},
    // Comment.
    {"beautiful specimen observed this morning",
     "third sighting of %N in this county this year",
     "weather was cloudy, visibility moderate",
     "count may be off by a few individuals",
     "general remark: habitat quality declining in %R",
     "confirmed the earlier observation by another watcher"},
    // Question.
    {"why is the population estimate for %N so high",
     "is this really %S or a similar species",
     "unclear whether this was an adult or juvenile",
     "what explains the unusual coloration observed here",
     "needs verification by a regional expert"},
}};

const std::vector<std::string> kDocumentSentences = {
    "The %N (%S) is a bird of the family noted across %R.",
    "It breeds in the northern parts of its range and winters further south.",
    "Adults weigh around %D kilograms with considerable seasonal variation.",
    "The species feeds on aquatic vegetation, seeds and small invertebrates.",
    "Population estimates have fluctuated over the last %D decades.",
    "Conservation programs in %R monitor nesting sites each season.",
    "Migration routes cross several major flyways.",
    "The call is a distinctive honking that carries over long distances.",
    "Juveniles reach maturity after roughly %D years.",
    "Habitat loss remains the primary threat according to recent surveys.",
};

}  // namespace

std::string_view AnnotationClassToString(AnnotationClass c) {
  switch (c) {
    case AnnotationClass::kBehavior:
      return "Behavior";
    case AnnotationClass::kDisease:
      return "Disease";
    case AnnotationClass::kAnatomy:
      return "Anatomy";
    case AnnotationClass::kOther:
      return "Other";
    case AnnotationClass::kProvenance:
      return "Provenance";
    case AnnotationClass::kComment:
      return "Comment";
    case AnnotationClass::kQuestion:
      return "Question";
  }
  return "?";
}

std::string AnnotationGenerator::FillTemplate(const std::string& tmpl,
                                              const BirdSpecies& species) {
  std::string out;
  out.reserve(tmpl.size() + 32);
  for (size_t i = 0; i < tmpl.size(); ++i) {
    if (tmpl[i] == '%' && i + 1 < tmpl.size()) {
      switch (tmpl[i + 1]) {
        case 'N':
          out += species.common_name;
          ++i;
          continue;
        case 'S':
          out += species.scientific_name;
          ++i;
          continue;
        case 'R':
          out += species.region;
          ++i;
          continue;
        case 'D':
          out += std::to_string(1 + rng_.Uniform(40));
          ++i;
          continue;
        default:
          break;
      }
    }
    out.push_back(tmpl[i]);
  }
  return out;
}

GeneratedAnnotation AnnotationGenerator::GenerateComment(const BirdSpecies& species) {
  auto klass = static_cast<AnnotationClass>(rng_.Weighted(class_weights_));
  return GenerateComment(species, klass);
}

GeneratedAnnotation AnnotationGenerator::GenerateComment(const BirdSpecies& species,
                                                         AnnotationClass klass) {
  const auto& pool = kTemplates[static_cast<size_t>(klass)];
  GeneratedAnnotation out;
  out.label = klass;
  out.annotation.kind = ann::AnnotationKind::kComment;
  out.annotation.body = FillTemplate(pool[rng_.Uniform(pool.size())], species);
  out.annotation.author = "watcher" + std::to_string(rng_.Uniform(200000));
  out.annotation.timestamp = static_cast<int64_t>(1600000000 + rng_.Uniform(86400 * 365));
  return out;
}

GeneratedAnnotation AnnotationGenerator::GenerateDocument(const BirdSpecies& species,
                                                          size_t sentences) {
  GeneratedAnnotation out;
  out.label = AnnotationClass::kOther;
  out.annotation.kind = ann::AnnotationKind::kDocument;
  out.annotation.title = "Article: " + species.common_name;
  out.annotation.author = "curator" + std::to_string(rng_.Uniform(500));
  out.annotation.timestamp = static_cast<int64_t>(1600000000 + rng_.Uniform(86400 * 365));
  std::string body;
  for (size_t i = 0; i < sentences; ++i) {
    if (i > 0) body += " ";
    body += FillTemplate(kDocumentSentences[rng_.Uniform(kDocumentSentences.size())],
                         species);
  }
  out.annotation.body = std::move(body);
  return out;
}

std::vector<std::pair<size_t, std::string>> AnnotationGenerator::ClassBird1Training() {
  return {
      {0, "found eating stonewort foraging flock feeding"},
      {0, "observed flying migrating south nesting behavior"},
      {0, "aggressive courtship display diving calling dawn dusk"},
      {1, "avian influenza infection sick disease detected"},
      {1, "parasite infestation lesions fungal lethargy dead"},
      {1, "feather loss mite disease suspected infection"},
      {2, "size kilograms wingspan centimeters weight measured"},
      {2, "neck beak feathers plumage tail wings specimen body"},
      {2, "large adult juvenile size wrong average anatomy"},
      {3, "photo wikipedia article linked recording uploaded misc"},
      {3, "attached reference equipment calibration note trip"},
  };
}

std::vector<std::pair<size_t, std::string>> AnnotationGenerator::ClassBird2Training() {
  return {
      {0, "produced experiment pipeline derived dataset imported lineage source log"},
      {0, "record legacy database curation aggregated field reports banding station"},
      {1, "beautiful specimen sighting weather cloudy remark confirmed observation count"},
      {1, "general comment habitat quality morning county year watcher"},
      {2, "why is unclear whether question what explains needs verification expert"},
      {2, "is this really species similar unsure wondering high"},
  };
}

}  // namespace insightnotes::workload
