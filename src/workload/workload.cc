#include "workload/workload.h"

namespace insightnotes::workload {

rel::Schema BirdTableSchema(const std::string& table_name) {
  return rel::Schema({{"id", rel::ValueType::kInt64, table_name},
                      {"name", rel::ValueType::kString, table_name},
                      {"sci_name", rel::ValueType::kString, table_name},
                      {"family", rel::ValueType::kString, table_name},
                      {"region", rel::ValueType::kString, table_name},
                      {"weight", rel::ValueType::kFloat64, table_name},
                      {"population", rel::ValueType::kInt64, table_name}});
}

Status WorkloadBuilder::CreateInstances(core::Engine* engine) {
  if (config_.with_classifier1) {
    auto instance = core::SummaryInstance::MakeClassifier(
        "ClassBird1", {"Behavior", "Disease", "Anatomy", "Other"});
    for (const auto& [label, text] : AnnotationGenerator::ClassBird1Training()) {
      INSIGHTNOTES_RETURN_IF_ERROR(instance->classifier()->Train(label, text));
    }
    INSIGHTNOTES_RETURN_IF_ERROR(engine->RegisterInstance(std::move(instance)));
    INSIGHTNOTES_RETURN_IF_ERROR(
        engine->LinkInstance("ClassBird1", config_.table_name));
  }
  if (config_.with_classifier2) {
    auto instance = core::SummaryInstance::MakeClassifier(
        "ClassBird2", {"Provenance", "Comment", "Question"});
    for (const auto& [label, text] : AnnotationGenerator::ClassBird2Training()) {
      INSIGHTNOTES_RETURN_IF_ERROR(instance->classifier()->Train(label, text));
    }
    INSIGHTNOTES_RETURN_IF_ERROR(engine->RegisterInstance(std::move(instance)));
    INSIGHTNOTES_RETURN_IF_ERROR(
        engine->LinkInstance("ClassBird2", config_.table_name));
  }
  if (config_.with_cluster) {
    INSIGHTNOTES_RETURN_IF_ERROR(engine->RegisterInstance(
        core::SummaryInstance::MakeCluster("SimCluster", 0.35)));
    INSIGHTNOTES_RETURN_IF_ERROR(
        engine->LinkInstance("SimCluster", config_.table_name));
  }
  if (config_.with_snippet) {
    mining::SnippetOptions options;
    options.max_sentences = 2;
    options.max_chars = 200;
    INSIGHTNOTES_RETURN_IF_ERROR(engine->RegisterInstance(
        core::SummaryInstance::MakeSnippet("TextSummary1", options)));
    INSIGHTNOTES_RETURN_IF_ERROR(
        engine->LinkInstance("TextSummary1", config_.table_name));
  }
  return Status::OK();
}

Result<WorkloadStats> WorkloadBuilder::BuildBase(core::Engine* engine) {
  species_ = GenerateSpecies(config_.num_species, config_.seed);
  INSIGHTNOTES_RETURN_IF_ERROR(
      engine->CreateTable(config_.table_name, BirdTableSchema(config_.table_name))
          .status());
  for (size_t i = 0; i < species_.size(); ++i) {
    const BirdSpecies& s = species_[i];
    rel::Tuple tuple({rel::Value(static_cast<int64_t>(i)), rel::Value(s.common_name),
                      rel::Value(s.scientific_name), rel::Value(s.family),
                      rel::Value(s.region), rel::Value(s.weight_kg),
                      rel::Value(s.population_estimate)});
    INSIGHTNOTES_RETURN_IF_ERROR(engine->Insert(config_.table_name, tuple).status());
  }
  INSIGHTNOTES_RETURN_IF_ERROR(CreateInstances(engine));
  WorkloadStats stats;
  stats.num_rows = species_.size();
  return stats;
}

Result<WorkloadStats> WorkloadBuilder::StreamAnnotations(core::Engine* engine,
                                                         size_t count) {
  if (species_.empty()) {
    return Status::Internal("StreamAnnotations called before BuildBase");
  }
  WorkloadStats stats;
  stats.num_rows = species_.size();
  Random rng(config_.seed ^ 0xA11071A7E5ULL);
  AnnotationGenerator gen(config_.seed + 1);
  size_t num_columns = BirdTableSchema(config_.table_name).NumColumns();
  for (size_t i = 0; i < count; ++i) {
    rel::RowId row = rng.Zipf(species_.size(), config_.zipf_skew);
    const BirdSpecies& species = species_[row];
    GeneratedAnnotation generated;
    if (rng.Bernoulli(config_.document_fraction)) {
      generated = gen.GenerateDocument(species, config_.document_sentences);
      ++stats.num_documents;
    } else {
      generated = gen.GenerateComment(species);
    }
    core::AnnotateSpec spec;
    spec.table = config_.table_name;
    spec.row = row;
    if (rng.Bernoulli(config_.cell_fraction)) {
      spec.columns = {rng.Uniform(num_columns)};
    }
    spec.body = generated.annotation.body;
    spec.author = generated.annotation.author;
    spec.kind = generated.annotation.kind;
    spec.title = generated.annotation.title;
    spec.timestamp = generated.annotation.timestamp;
    INSIGHTNOTES_ASSIGN_OR_RETURN(ann::AnnotationId id, engine->Annotate(spec));
    ++stats.num_annotations;
    ++stats.num_attachments;
    if (stats.labels.size() <= id) stats.labels.resize(id + 1, AnnotationClass::kOther);
    stats.labels[id] = generated.label;
    if (rng.Bernoulli(config_.shared_fraction)) {
      rel::RowId other = rng.Uniform(species_.size());
      if (other != row) {
        INSIGHTNOTES_RETURN_IF_ERROR(
            engine->AttachAnnotation(id, config_.table_name, other, spec.columns));
        ++stats.num_shared;
        ++stats.num_attachments;
      }
    }
  }
  return stats;
}

Result<WorkloadStats> WorkloadBuilder::Build(core::Engine* engine) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(WorkloadStats base, BuildBase(engine));
  INSIGHTNOTES_ASSIGN_OR_RETURN(
      WorkloadStats stream,
      StreamAnnotations(engine, config_.num_species * config_.annotations_per_tuple));
  stream.num_rows = base.num_rows;
  return stream;
}

}  // namespace insightnotes::workload
