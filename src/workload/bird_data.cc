#include "workload/bird_data.h"

namespace insightnotes::workload {

const std::vector<BirdSpecies>& CuratedSpecies() {
  static const auto* kSpecies = new std::vector<BirdSpecies>{
      {"Swan Goose", "Anser cygnoides", "Anatidae", "East Asia", 3.2, 60000},
      {"Mute Swan", "Cygnus olor", "Anatidae", "Eurasia", 11.0, 500000},
      {"Grey Heron", "Ardea cinerea", "Ardeidae", "Eurasia", 1.5, 790000},
      {"Bald Eagle", "Haliaeetus leucocephalus", "Accipitridae", "North America", 4.3, 316000},
      {"Peregrine Falcon", "Falco peregrinus", "Falconidae", "Worldwide", 0.9, 140000},
      {"Common Kingfisher", "Alcedo atthis", "Alcedinidae", "Eurasia", 0.04, 600000},
      {"Barn Owl", "Tyto alba", "Tytonidae", "Worldwide", 0.5, 4900000},
      {"Atlantic Puffin", "Fratercula arctica", "Alcidae", "North Atlantic", 0.45, 12000000},
      {"Great Cormorant", "Phalacrocorax carbo", "Phalacrocoracidae", "Worldwide", 2.6, 1400000},
      {"Sandhill Crane", "Antigone canadensis", "Gruidae", "North America", 4.0, 827000},
      {"European Robin", "Erithacus rubecula", "Muscicapidae", "Europe", 0.02, 130000000},
      {"Ruby-throated Hummingbird", "Archilochus colubris", "Trochilidae", "North America", 0.003, 34000000},
      {"Canada Goose", "Branta canadensis", "Anatidae", "North America", 4.5, 7000000},
      {"Snowy Owl", "Bubo scandiacus", "Strigidae", "Arctic", 2.0, 28000},
      {"American Flamingo", "Phoenicopterus ruber", "Phoenicopteridae", "Caribbean", 2.8, 330000},
      {"Emperor Penguin", "Aptenodytes forsteri", "Spheniscidae", "Antarctica", 30.0, 476000},
      {"Common Loon", "Gavia immer", "Gaviidae", "North America", 4.1, 640000},
      {"Osprey", "Pandion haliaetus", "Pandionidae", "Worldwide", 1.6, 500000},
      {"Black-capped Chickadee", "Poecile atricapillus", "Paridae", "North America", 0.011, 41000000},
      {"Northern Cardinal", "Cardinalis cardinalis", "Cardinalidae", "North America", 0.045, 130000000},
  };
  return *kSpecies;
}

std::vector<BirdSpecies> GenerateSpecies(size_t count, uint64_t seed) {
  const auto& curated = CuratedSpecies();
  std::vector<BirdSpecies> out;
  out.reserve(count);
  for (size_t i = 0; i < count && i < curated.size(); ++i) {
    out.push_back(curated[i]);
  }
  Random rng(seed);
  static const char* kPrefixes[] = {"Lesser", "Greater", "Northern", "Southern",
                                    "Spotted", "Crested", "Masked", "Golden"};
  size_t next = out.size();
  while (out.size() < count) {
    const BirdSpecies& base = curated[rng.Uniform(curated.size())];
    BirdSpecies species = base;
    const char* prefix = kPrefixes[rng.Uniform(8)];
    species.common_name = std::string(prefix) + " " + base.common_name + " " +
                          std::to_string(next);
    species.scientific_name = base.scientific_name + " var" + std::to_string(next);
    species.weight_kg = base.weight_kg * (0.5 + rng.NextDouble());
    species.population_estimate =
        static_cast<int64_t>(static_cast<double>(base.population_estimate) *
                             (0.1 + 2.0 * rng.NextDouble()));
    out.push_back(std::move(species));
    ++next;
  }
  return out;
}

}  // namespace insightnotes::workload
