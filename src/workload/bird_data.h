// Synthetic ornithological base data standing in for the AKN dataset the
// demo uses (Section 3): bird species with scientific names, families,
// ranges and body measurements. Deterministic given a seed.

#ifndef INSIGHTNOTES_WORKLOAD_BIRD_DATA_H_
#define INSIGHTNOTES_WORKLOAD_BIRD_DATA_H_

#include <string>
#include <vector>

#include "common/random.h"

namespace insightnotes::workload {

struct BirdSpecies {
  std::string common_name;
  std::string scientific_name;
  std::string family;
  std::string region;
  double weight_kg = 0.0;
  int64_t population_estimate = 0;
};

/// The curated seed list (well-known birds, as the demo suggests).
const std::vector<BirdSpecies>& CuratedSpecies();

/// Returns `count` species: the curated list first, then deterministic
/// synthetic species derived from it.
std::vector<BirdSpecies> GenerateSpecies(size_t count, uint64_t seed);

}  // namespace insightnotes::workload

#endif  // INSIGHTNOTES_WORKLOAD_BIRD_DATA_H_
