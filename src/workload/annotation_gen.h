// Template-driven free-text annotation generator with ground-truth class
// labels. Mimics the AKN/eBird annotation stream the demo describes
// (birdwatchers adding 1.6M free-text observations per month): behavior,
// disease, anatomy observations, provenance notes, plain comments and
// questions, plus occasional large attached documents.

#ifndef INSIGHTNOTES_WORKLOAD_ANNOTATION_GEN_H_
#define INSIGHTNOTES_WORKLOAD_ANNOTATION_GEN_H_

#include <string>
#include <vector>

#include "annotation/annotation.h"
#include "common/random.h"
#include "workload/bird_data.h"

namespace insightnotes::workload {

/// Ground-truth classes. The first four match ClassBird1's labels, the last
/// three feed ClassBird2-style instances.
enum class AnnotationClass : int {
  kBehavior = 0,
  kDisease = 1,
  kAnatomy = 2,
  kOther = 3,
  kProvenance = 4,
  kComment = 5,
  kQuestion = 6,
};
inline constexpr size_t kNumAnnotationClasses = 7;

std::string_view AnnotationClassToString(AnnotationClass c);

struct GeneratedAnnotation {
  ann::Annotation annotation;
  AnnotationClass label = AnnotationClass::kComment;
};

class AnnotationGenerator {
 public:
  explicit AnnotationGenerator(uint64_t seed) : rng_(seed) {}

  /// A free-text comment about `species`, drawn from one class's template
  /// pool (class chosen by `class_weights`; defaults to a realistic mix).
  GeneratedAnnotation GenerateComment(const BirdSpecies& species);

  /// A comment of a specific class.
  GeneratedAnnotation GenerateComment(const BirdSpecies& species,
                                      AnnotationClass klass);

  /// A large attached document (~`sentences` sentences) about `species`.
  GeneratedAnnotation GenerateDocument(const BirdSpecies& species, size_t sentences);

  /// Training examples for a classifier over the first four classes
  /// (Behavior/Disease/Anatomy/Other) or the provenance trio.
  static std::vector<std::pair<size_t, std::string>> ClassBird1Training();
  static std::vector<std::pair<size_t, std::string>> ClassBird2Training();

  void set_class_weights(std::vector<double> weights) {
    class_weights_ = std::move(weights);
  }

 private:
  std::string FillTemplate(const std::string& tmpl, const BirdSpecies& species);

  Random rng_;
  // Default mix: mostly behavior observations and comments, like eBird.
  std::vector<double> class_weights_ = {0.30, 0.08, 0.18, 0.06, 0.10, 0.20, 0.08};
};

}  // namespace insightnotes::workload

#endif  // INSIGHTNOTES_WORKLOAD_ANNOTATION_GEN_H_
