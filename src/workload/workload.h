// WorkloadBuilder: assembles a fully annotated ornithological database
// inside an Engine — base table, summary instances (trained), links, and a
// Zipf-skewed annotation stream — the shared setup of the examples and
// every benchmark.

#ifndef INSIGHTNOTES_WORKLOAD_WORKLOAD_H_
#define INSIGHTNOTES_WORKLOAD_WORKLOAD_H_

#include <string>
#include <vector>

#include "core/engine.h"
#include "workload/annotation_gen.h"
#include "workload/bird_data.h"

namespace insightnotes::workload {

struct WorkloadConfig {
  uint64_t seed = 42;
  std::string table_name = "birds";
  size_t num_species = 50;
  /// Mean annotations per tuple (paper: annotation counts run 30x-250x the
  /// data; scale to taste per experiment).
  size_t annotations_per_tuple = 30;
  /// Skew of the per-tuple annotation counts (0 = uniform).
  double zipf_skew = 0.8;
  /// Fraction of annotations that are large attached documents.
  double document_fraction = 0.03;
  size_t document_sentences = 20;
  /// Fraction of annotations additionally attached to a second random
  /// tuple (shared annotations / provenance notes).
  double shared_fraction = 0.05;
  /// Fraction of annotations attached to a specific column rather than the
  /// whole row.
  double cell_fraction = 0.4;

  /// Instances to create and link. Disable selectively for ablations.
  bool with_classifier1 = true;  // ClassBird1: Behavior/Disease/Anatomy/Other.
  bool with_classifier2 = true;  // ClassBird2: Provenance/Comment/Question.
  bool with_cluster = true;      // SimCluster.
  bool with_snippet = true;      // TextSummary1.
};

struct WorkloadStats {
  size_t num_rows = 0;
  uint64_t num_annotations = 0;
  uint64_t num_attachments = 0;
  uint64_t num_documents = 0;
  uint64_t num_shared = 0;
  /// Ground-truth labels per annotation id (classifier accuracy checks).
  std::vector<AnnotationClass> labels;
};

/// Schema of the generated table:
/// (id BIGINT, name TEXT, sci_name TEXT, family TEXT, region TEXT,
///  weight DOUBLE, population BIGINT).
rel::Schema BirdTableSchema(const std::string& table_name);

class WorkloadBuilder {
 public:
  explicit WorkloadBuilder(WorkloadConfig config) : config_(std::move(config)) {}

  /// Creates the table, instances and links in `engine`, inserts the
  /// species and streams in the annotations (maintaining summaries
  /// incrementally).
  Result<WorkloadStats> Build(core::Engine* engine);

  /// Only the base table and instances — annotations streamed separately
  /// (for maintenance benches that time the annotation path itself).
  Result<WorkloadStats> BuildBase(core::Engine* engine);

  /// Streams `count` annotations onto random rows of the built table.
  Result<WorkloadStats> StreamAnnotations(core::Engine* engine, size_t count);

  const WorkloadConfig& config() const { return config_; }

 private:
  Status CreateInstances(core::Engine* engine);

  WorkloadConfig config_;
  std::vector<BirdSpecies> species_;
};

}  // namespace insightnotes::workload

#endif  // INSIGHTNOTES_WORKLOAD_WORKLOAD_H_
