#include "annotation/wal_records.h"

#include <algorithm>
#include <cstring>

namespace insightnotes::ann {

namespace {

enum : uint8_t {
  kAddTag = 1,
  kAttachTag = 2,
  kArchiveTag = 3,
  kCheckpointTag = 4,
  kIndexCreateTag = 5,
  kIndexCheckpointTag = 6,
};

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

template <typename T>
void PutFixed(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

void PutString(std::string* out, const std::string& s) {
  PutFixed<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutRegion(std::string* out, const CellRegion& region) {
  PutFixed<uint32_t>(out, region.table);
  PutFixed<uint64_t>(out, region.row);
  PutFixed<uint32_t>(out, static_cast<uint32_t>(region.columns.size()));
  for (size_t c : region.columns) PutFixed<uint64_t>(out, static_cast<uint64_t>(c));
}

/// Sequential reader over a record payload; any out-of-bounds read flips
/// `ok` and sticks.
struct Reader {
  std::string_view data;
  size_t pos = 0;
  bool ok = true;

  bool Take(void* out, size_t len) {
    if (!ok || pos + len > data.size()) {
      ok = false;
      return false;
    }
    std::memcpy(out, data.data() + pos, len);
    pos += len;
    return true;
  }

  uint8_t U8() {
    uint8_t v = 0;
    Take(&v, sizeof(v));
    return v;
  }

  template <typename T>
  T Fixed() {
    T v{};
    Take(&v, sizeof(T));
    return v;
  }

  std::string String() {
    uint32_t len = Fixed<uint32_t>();
    if (!ok || pos + len > data.size()) {
      ok = false;
      return {};
    }
    std::string s(data.substr(pos, len));
    pos += len;
    return s;
  }

  CellRegion Region() {
    CellRegion region;
    region.table = Fixed<uint32_t>();
    region.row = Fixed<uint64_t>();
    uint32_t count = Fixed<uint32_t>();
    // Bound by remaining bytes so a corrupt count cannot force a huge
    // allocation.
    if (!ok || static_cast<size_t>(count) * sizeof(uint64_t) > data.size() - pos) {
      ok = false;
      return region;
    }
    region.columns.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      region.columns.push_back(static_cast<size_t>(Fixed<uint64_t>()));
    }
    return region;
  }
};

}  // namespace

std::string EncodeWalEntry(const WalEntry& entry) {
  std::string out;
  if (const auto* add = std::get_if<WalAddRecord>(&entry)) {
    PutU8(&out, kAddTag);
    PutFixed<uint64_t>(&out, add->expected_id);
    PutU8(&out, static_cast<uint8_t>(add->note.kind));
    PutFixed<int64_t>(&out, add->note.timestamp);
    PutString(&out, add->note.author);
    PutString(&out, add->note.title);
    PutString(&out, add->note.body);
    PutRegion(&out, add->region);
  } else if (const auto* attach = std::get_if<WalAttachRecord>(&entry)) {
    PutU8(&out, kAttachTag);
    PutFixed<uint64_t>(&out, attach->id);
    PutRegion(&out, attach->region);
  } else if (const auto* archive = std::get_if<WalArchiveRecord>(&entry)) {
    PutU8(&out, kArchiveTag);
    PutFixed<uint64_t>(&out, archive->id);
  } else if (const auto* checkpoint = std::get_if<WalCheckpointRecord>(&entry)) {
    PutU8(&out, kCheckpointTag);
    PutFixed<uint64_t>(&out, checkpoint->num_annotations);
  } else if (const auto* create = std::get_if<WalIndexCreateRecord>(&entry)) {
    PutU8(&out, kIndexCreateTag);
    PutString(&out, create->table);
    PutFixed<uint64_t>(&out, create->column);
  } else {
    const auto& ickpt = std::get<WalIndexCheckpointRecord>(entry);
    PutU8(&out, kIndexCheckpointTag);
    PutFixed<uint64_t>(&out, ickpt.page_count);
    PutFixed<uint64_t>(&out, ickpt.next_stamp);
    PutFixed<uint32_t>(&out, static_cast<uint32_t>(ickpt.free_pages.size()));
    for (uint32_t page : ickpt.free_pages) PutFixed<uint32_t>(&out, page);
    PutFixed<uint32_t>(&out, static_cast<uint32_t>(ickpt.indexes.size()));
    for (const WalIndexCheckpointEntry& index : ickpt.indexes) {
      PutString(&out, index.table);
      PutFixed<uint64_t>(&out, index.column);
      PutFixed<uint32_t>(&out, index.root);
      PutFixed<uint32_t>(&out, index.height);
      PutFixed<uint64_t>(&out, index.entries);
      PutFixed<uint64_t>(&out, index.covered_rows);
    }
  }
  return out;
}

Result<WalEntry> DecodeWalEntry(std::string_view payload) {
  Reader reader{payload};
  uint8_t tag = reader.U8();
  switch (tag) {
    case kAddTag: {
      WalAddRecord add;
      add.expected_id = reader.Fixed<uint64_t>();
      add.note.kind = static_cast<AnnotationKind>(reader.U8());
      add.note.timestamp = reader.Fixed<int64_t>();
      add.note.author = reader.String();
      add.note.title = reader.String();
      add.note.body = reader.String();
      add.region = reader.Region();
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(std::move(add));
    }
    case kAttachTag: {
      WalAttachRecord attach;
      attach.id = reader.Fixed<uint64_t>();
      attach.region = reader.Region();
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(std::move(attach));
    }
    case kArchiveTag: {
      WalArchiveRecord archive;
      archive.id = reader.Fixed<uint64_t>();
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(std::move(archive));
    }
    case kCheckpointTag: {
      WalCheckpointRecord checkpoint;
      checkpoint.num_annotations = reader.Fixed<uint64_t>();
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(checkpoint);
    }
    case kIndexCreateTag: {
      WalIndexCreateRecord create;
      create.table = reader.String();
      create.column = reader.Fixed<uint64_t>();
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(std::move(create));
    }
    case kIndexCheckpointTag: {
      WalIndexCheckpointRecord ickpt;
      ickpt.page_count = reader.Fixed<uint64_t>();
      ickpt.next_stamp = reader.Fixed<uint64_t>();
      uint32_t free_count = reader.Fixed<uint32_t>();
      if (!reader.ok ||
          static_cast<size_t>(free_count) * sizeof(uint32_t) >
              payload.size() - reader.pos) {
        break;
      }
      ickpt.free_pages.reserve(free_count);
      for (uint32_t i = 0; i < free_count; ++i) {
        ickpt.free_pages.push_back(reader.Fixed<uint32_t>());
      }
      uint32_t index_count = reader.Fixed<uint32_t>();
      // Each entry is at least 32 bytes; bound before reserving.
      if (!reader.ok ||
          static_cast<size_t>(index_count) * 32 > payload.size() - reader.pos) {
        break;
      }
      ickpt.indexes.reserve(index_count);
      for (uint32_t i = 0; i < index_count; ++i) {
        WalIndexCheckpointEntry index;
        index.table = reader.String();
        index.column = reader.Fixed<uint64_t>();
        index.root = reader.Fixed<uint32_t>();
        index.height = reader.Fixed<uint32_t>();
        index.entries = reader.Fixed<uint64_t>();
        index.covered_rows = reader.Fixed<uint64_t>();
        ickpt.indexes.push_back(std::move(index));
      }
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(std::move(ickpt));
    }
    default:
      return Status::Corruption("unknown WAL record tag " + std::to_string(tag));
  }
  return Status::Corruption("malformed WAL record (tag " + std::to_string(tag) + ")");
}

WalChainKey ChainKeyOf(const WalEntry& entry) {
  WalChainKey key;
  if (const auto* add = std::get_if<WalAddRecord>(&entry)) {
    key.annotation = add->expected_id;
    key.has_row = true;
    key.table = add->region.table;
    key.row = add->region.row;
  } else if (const auto* attach = std::get_if<WalAttachRecord>(&entry)) {
    key.annotation = attach->id;
    key.has_row = true;
    key.table = attach->region.table;
    key.row = attach->region.row;
  } else if (const auto* archive = std::get_if<WalArchiveRecord>(&entry)) {
    key.annotation = archive->id;
  } else {
    // Checkpoint and index records are cross-chain barriers: they assert
    // or snapshot global state and join no replay chain.
    key.is_marker = true;
  }
  return key;
}

namespace {

std::vector<size_t> SortedUniqueColumns(std::vector<size_t> columns) {
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  return columns;
}

}  // namespace

void WalLivenessTracker::ReportDead(uint64_t segment_id, uint32_t record_index) {
  if (on_dead_) on_dead_(segment_id, record_index);
}

void WalLivenessTracker::Observe(const WalEntry& entry, uint64_t segment_id,
                                 uint32_t record_index) {
  if (std::holds_alternative<WalCheckpointRecord>(entry)) {
    if (has_marker_) ReportDead(marker_pos_.first, marker_pos_.second);
    has_marker_ = true;
    marker_pos_ = {segment_id, record_index};
    return;
  }
  if (std::holds_alternative<WalIndexCreateRecord>(entry)) {
    // Pure intent; dies once the next index checkpoint commits (replay
    // reads only the latest checkpoint, never the creates).
    pending_index_creates_.emplace_back(segment_id, record_index);
    return;
  }
  if (std::holds_alternative<WalIndexCheckpointRecord>(entry)) {
    if (has_index_marker_) {
      ReportDead(index_marker_pos_.first, index_marker_pos_.second);
    }
    for (const auto& pos : pending_index_creates_) {
      ReportDead(pos.first, pos.second);
    }
    pending_index_creates_.clear();
    has_index_marker_ = true;
    index_marker_pos_ = {segment_id, record_index};
    return;
  }
  if (const auto* archive = std::get_if<WalArchiveRecord>(&entry)) {
    if (!archived_.insert(archive->id).second) {
      ReportDead(segment_id, record_index);  // Already archived: no-op record.
    }
    return;
  }
  AnnotationId id;
  const CellRegion* region;
  bool is_add = false;
  if (const auto* add = std::get_if<WalAddRecord>(&entry)) {
    id = add->expected_id;
    region = &add->region;
    is_add = true;
  } else {
    const auto& attach = std::get<WalAttachRecord>(entry);
    id = attach.id;
    region = &attach.region;
  }
  auto key = std::make_tuple(id, region->table, region->row);
  std::vector<size_t> columns = SortedUniqueColumns(region->columns);
  auto [it, first_for_pair] = pairs_.try_emplace(key);
  PairState& state = it->second;
  if (first_for_pair || is_add) {
    // First record of this (annotation, row) pair — it pins the row's
    // attachment insertion position and always stays live.
    state.whole_row = columns.empty();
    state.columns = std::move(columns);
    return;
  }
  if (state.whole_row) {
    // The pair already covers the whole row; this re-attach adds nothing.
    ReportDead(segment_id, record_index);
    return;
  }
  if (columns.empty()) {
    // Whole-row re-attach: absorbs the union for good. Every earlier
    // non-first re-attach is now redundant (first + this one replays to
    // the same whole-row attachment); this record itself is terminal.
    for (const auto& pos : state.supersedable) ReportDead(pos.first, pos.second);
    state.supersedable.clear();
    state.whole_row = true;
    state.columns.clear();
    return;
  }
  if (std::includes(state.columns.begin(), state.columns.end(), columns.begin(),
                    columns.end())) {
    // Adds no columns to the union: pure no-op.
    ReportDead(segment_id, record_index);
    return;
  }
  std::vector<size_t> merged = state.columns;
  merged.insert(merged.end(), columns.begin(), columns.end());
  merged = SortedUniqueColumns(std::move(merged));
  if (columns.size() == merged.size()) {
    // This record alone covers the whole accumulated union, so the earlier
    // non-first re-attaches became redundant: first + this one replays to
    // the full union.
    for (const auto& pos : state.supersedable) ReportDead(pos.first, pos.second);
    state.supersedable.clear();
  }
  state.columns = std::move(merged);
  state.supersedable.emplace_back(segment_id, record_index);
}

}  // namespace insightnotes::ann
