#include "annotation/wal_records.h"

#include <cstring>

namespace insightnotes::ann {

namespace {

enum : uint8_t { kAddTag = 1, kAttachTag = 2, kArchiveTag = 3, kCheckpointTag = 4 };

void PutU8(std::string* out, uint8_t v) { out->push_back(static_cast<char>(v)); }

template <typename T>
void PutFixed(std::string* out, T v) {
  char buf[sizeof(T)];
  std::memcpy(buf, &v, sizeof(T));
  out->append(buf, sizeof(T));
}

void PutString(std::string* out, const std::string& s) {
  PutFixed<uint32_t>(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

void PutRegion(std::string* out, const CellRegion& region) {
  PutFixed<uint32_t>(out, region.table);
  PutFixed<uint64_t>(out, region.row);
  PutFixed<uint32_t>(out, static_cast<uint32_t>(region.columns.size()));
  for (size_t c : region.columns) PutFixed<uint64_t>(out, static_cast<uint64_t>(c));
}

/// Sequential reader over a record payload; any out-of-bounds read flips
/// `ok` and sticks.
struct Reader {
  std::string_view data;
  size_t pos = 0;
  bool ok = true;

  bool Take(void* out, size_t len) {
    if (!ok || pos + len > data.size()) {
      ok = false;
      return false;
    }
    std::memcpy(out, data.data() + pos, len);
    pos += len;
    return true;
  }

  uint8_t U8() {
    uint8_t v = 0;
    Take(&v, sizeof(v));
    return v;
  }

  template <typename T>
  T Fixed() {
    T v{};
    Take(&v, sizeof(T));
    return v;
  }

  std::string String() {
    uint32_t len = Fixed<uint32_t>();
    if (!ok || pos + len > data.size()) {
      ok = false;
      return {};
    }
    std::string s(data.substr(pos, len));
    pos += len;
    return s;
  }

  CellRegion Region() {
    CellRegion region;
    region.table = Fixed<uint32_t>();
    region.row = Fixed<uint64_t>();
    uint32_t count = Fixed<uint32_t>();
    // Bound by remaining bytes so a corrupt count cannot force a huge
    // allocation.
    if (!ok || static_cast<size_t>(count) * sizeof(uint64_t) > data.size() - pos) {
      ok = false;
      return region;
    }
    region.columns.reserve(count);
    for (uint32_t i = 0; i < count; ++i) {
      region.columns.push_back(static_cast<size_t>(Fixed<uint64_t>()));
    }
    return region;
  }
};

}  // namespace

std::string EncodeWalEntry(const WalEntry& entry) {
  std::string out;
  if (const auto* add = std::get_if<WalAddRecord>(&entry)) {
    PutU8(&out, kAddTag);
    PutFixed<uint64_t>(&out, add->expected_id);
    PutU8(&out, static_cast<uint8_t>(add->note.kind));
    PutFixed<int64_t>(&out, add->note.timestamp);
    PutString(&out, add->note.author);
    PutString(&out, add->note.title);
    PutString(&out, add->note.body);
    PutRegion(&out, add->region);
  } else if (const auto* attach = std::get_if<WalAttachRecord>(&entry)) {
    PutU8(&out, kAttachTag);
    PutFixed<uint64_t>(&out, attach->id);
    PutRegion(&out, attach->region);
  } else if (const auto* archive = std::get_if<WalArchiveRecord>(&entry)) {
    PutU8(&out, kArchiveTag);
    PutFixed<uint64_t>(&out, archive->id);
  } else {
    const auto& checkpoint = std::get<WalCheckpointRecord>(entry);
    PutU8(&out, kCheckpointTag);
    PutFixed<uint64_t>(&out, checkpoint.num_annotations);
  }
  return out;
}

Result<WalEntry> DecodeWalEntry(std::string_view payload) {
  Reader reader{payload};
  uint8_t tag = reader.U8();
  switch (tag) {
    case kAddTag: {
      WalAddRecord add;
      add.expected_id = reader.Fixed<uint64_t>();
      add.note.kind = static_cast<AnnotationKind>(reader.U8());
      add.note.timestamp = reader.Fixed<int64_t>();
      add.note.author = reader.String();
      add.note.title = reader.String();
      add.note.body = reader.String();
      add.region = reader.Region();
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(std::move(add));
    }
    case kAttachTag: {
      WalAttachRecord attach;
      attach.id = reader.Fixed<uint64_t>();
      attach.region = reader.Region();
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(std::move(attach));
    }
    case kArchiveTag: {
      WalArchiveRecord archive;
      archive.id = reader.Fixed<uint64_t>();
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(std::move(archive));
    }
    case kCheckpointTag: {
      WalCheckpointRecord checkpoint;
      checkpoint.num_annotations = reader.Fixed<uint64_t>();
      if (!reader.ok || reader.pos != payload.size()) break;
      return WalEntry(checkpoint);
    }
    default:
      return Status::Corruption("unknown WAL record tag " + std::to_string(tag));
  }
  return Status::Corruption("malformed WAL record (tag " + std::to_string(tag) + ")");
}

}  // namespace insightnotes::ann
