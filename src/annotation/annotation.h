// Annotation model: free-text comments and attached documents that users
// pin to cells or whole rows of base tables. An annotation is a first-class
// object with identity; one annotation may be attached to many regions
// (e.g. the same provenance note on every tuple an experiment produced) —
// the case the paper's AnnotationInvariant/DataInvariant optimization
// exploits.

#ifndef INSIGHTNOTES_ANNOTATION_ANNOTATION_H_
#define INSIGHTNOTES_ANNOTATION_ANNOTATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "rel/table.h"
#include "rel/tuple.h"

namespace insightnotes::ann {

using AnnotationId = uint64_t;
inline constexpr AnnotationId kInvalidAnnotationId = static_cast<AnnotationId>(-1);

enum class AnnotationKind : uint8_t {
  kComment = 0,   // Short free-text observation.
  kDocument = 1,  // Large attached article/document (snippet-summarized).
};

struct Annotation {
  AnnotationId id = kInvalidAnnotationId;
  AnnotationKind kind = AnnotationKind::kComment;
  std::string author;
  int64_t timestamp = 0;  // Seconds since epoch (workload-generated).
  std::string title;      // Document title; empty for plain comments.
  std::string body;       // Comment text or full document content.
  bool archived = false;  // Curation flag: obsolete / proven wrong.
};

/// The region of a base table an annotation attaches to: a whole row when
/// `columns` is empty, otherwise the listed column positions of that row.
struct CellRegion {
  rel::TableId table = 0;
  rel::RowId row = rel::kInvalidRowId;
  std::vector<size_t> columns;  // Sorted, deduplicated; empty = whole row.

  /// True if the annotation remains relevant when only the columns in
  /// `kept` survive a projection: whole-row annotations always survive;
  /// cell annotations survive iff they cover at least one kept column.
  /// (This is the projection semantics of Figure 2 / Theorem 1.)
  bool SurvivesProjection(const std::vector<size_t>& kept) const;

  friend bool operator==(const CellRegion&, const CellRegion&) = default;
};

std::string_view AnnotationKindToString(AnnotationKind kind);

}  // namespace insightnotes::ann

#endif  // INSIGHTNOTES_ANNOTATION_ANNOTATION_H_
