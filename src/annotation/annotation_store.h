// AnnotationStore: the raw-annotation repository. Bodies (which can be
// multi-page documents) live in a heap file; metadata and the
// (table, row) -> attachments index live in memory. The summary manager
// subscribes to insertions; zoom-in resolves summary components back to the
// raw annotations stored here.

#ifndef INSIGHTNOTES_ANNOTATION_ANNOTATION_STORE_H_
#define INSIGHTNOTES_ANNOTATION_ANNOTATION_STORE_H_

#include <atomic>
#include <functional>
#include <map>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "annotation/annotation.h"
#include "common/result.h"
#include "storage/heap_file.h"

namespace insightnotes::ann {

/// An annotation's attachment to one region of one row.
struct Attachment {
  AnnotationId annotation = kInvalidAnnotationId;
  std::vector<size_t> columns;  // Empty = whole row.
};

/// Thread-safety: writers (Add/Attach/Archive) must still be externally
/// serialized (the engine's writer mutex does this), but the read surface
/// (Get/OnRow/OnCell/RegionsOf/IsArchived/ScanTable/ForEachRow) is now safe
/// against one concurrent writer: a shared_mutex over the metadata
/// (exclusive for mutation, shared for reads) keeps readers off reallocating
/// vectors, and body bytes go through the heap file's own latch. OnRow's
/// returned reference is only guaranteed stable for rows the active writer
/// does not touch — epoch-pinned queries read attachments from their
/// snapshot, not from here. The parallel-recovery surface stays lock-free
/// (disjoint pre-sized slots; no readers exist during recovery).
class AnnotationStore {
 public:
  /// `pool` backs the annotation-body heap file and must outlive the store.
  explicit AnnotationStore(storage::BufferPool* pool) : bodies_(pool) {}

  AnnotationStore(const AnnotationStore&) = delete;
  AnnotationStore& operator=(const AnnotationStore&) = delete;

  /// Stores a new annotation and attaches it to `region`. `note.id` is
  /// assigned by the store; `region.columns` is sorted and deduplicated.
  Result<AnnotationId> Add(Annotation note, const CellRegion& region);

  /// Attaches an existing annotation to an additional region (shared
  /// annotations). Idempotent per (annotation, table, row): re-attaching to
  /// the same row unions the column sets.
  Status Attach(AnnotationId id, const CellRegion& region);

  /// Full annotation (body materialized from the heap file).
  Result<Annotation> Get(AnnotationId id) const;

  /// Attachments on a row, in insertion order. Empty vector if none.
  const std::vector<Attachment>& OnRow(rel::TableId table, rel::RowId row) const;

  /// Annotation ids on a row that cover column `column` (whole-row
  /// annotations included).
  std::vector<AnnotationId> OnCell(rel::TableId table, rel::RowId row,
                                   size_t column) const;

  /// All regions an annotation is attached to.
  Result<std::vector<CellRegion>> RegionsOf(AnnotationId id) const;

  /// Curation: marks the annotation obsolete. Archived annotations remain
  /// retrievable (zoom-in shows them flagged) but new summaries skip them.
  Status Archive(AnnotationId id);

  bool IsArchived(AnnotationId id) const;

  /// Number of distinct annotations.
  uint64_t NumAnnotations() const {
    return num_annotations_.load(std::memory_order_acquire);
  }

  /// Number of (annotation, row) attachments.
  uint64_t NumAttachments() const {
    return num_attachments_.load(std::memory_order_relaxed);
  }

  // --- Parallel-recovery surface (WAL replay only) ---------------------------
  // Recovery partitions the log into chains such that any two records
  // touching the same annotation id or the same (table, row) share a chain,
  // then replays chains concurrently. These methods make that safe on an
  // empty store: BeginParallelRecovery pre-sizes the id-indexed meta table
  // and pre-creates every row's attachment vector, so concurrent chains
  // never mutate shared map structure — each chain only touches the meta
  // slots of its own ids and the attachment vectors of its own rows. Body
  // appends go through the heap file under an internal mutex (placement
  // order is scheduling-dependent; the logical state is not).

  /// Must be called on an empty store. `rows` lists every (table, row) any
  /// replayed record attaches to.
  Status BeginParallelRecovery(
      uint64_t num_annotations,
      const std::vector<std::pair<rel::TableId, rel::RowId>>& rows);

  /// Replays one add record into meta slot `id` (chains know their ids;
  /// recovery verified density up front).
  Status RecoverAdd(AnnotationId id, Annotation note, const CellRegion& region);

  /// Replays one attach record. Fails if `id` was not recovered yet —
  /// within a chain that means the log attached before adding.
  Status RecoverAttach(AnnotationId id, const CellRegion& region);

  Status RecoverArchive(AnnotationId id);

  /// Verifies every meta slot was filled and leaves recovery mode.
  Status EndParallelRecovery();

  /// Calls `fn` for each attachment on each row of `table`; stops early on
  /// false.
  void ScanTable(rel::TableId table,
                 const std::function<bool(rel::RowId, const Attachment&)>& fn) const;

  /// Calls `fn` once per annotated row across all tables with that row's
  /// attachments in insertion order. Row visit order is unspecified. Used
  /// by WAL compaction to snapshot the attachment index.
  void ForEachRow(const std::function<void(rel::TableId, rel::RowId,
                                           const std::vector<Attachment>&)>& fn) const;

 private:
  struct Meta {
    AnnotationKind kind;
    std::string author;
    int64_t timestamp;
    std::string title;
    bool archived = false;
    storage::RecordId body;
    std::vector<CellRegion> regions;
  };

  using RowKey = std::pair<rel::TableId, rel::RowId>;
  struct RowKeyHash {
    size_t operator()(const RowKey& k) const {
      return std::hash<uint64_t>{}((static_cast<uint64_t>(k.first) << 40) ^ k.second);
    }
  };

  /// Shared attach logic. With `recovery` the row's attachment vector must
  /// have been pre-created by BeginParallelRecovery (no map mutation).
  Status AttachImpl(AnnotationId id, const CellRegion& region, bool recovery);

  storage::HeapFile bodies_;  // Internally latched; serializes body I/O.
  // Guards metas_ and by_row_ structure: exclusive for normal mutation,
  // shared for reads. Not taken on the recovery paths (see above).
  mutable std::shared_mutex meta_latch_;
  std::vector<Meta> metas_;  // Indexed by AnnotationId.
  std::unordered_map<RowKey, std::vector<Attachment>, RowKeyHash> by_row_;
  // metas_.size(), readable without the latch.
  std::atomic<uint64_t> num_annotations_{0};
  // Atomic so concurrent recovery chains can bump it; plain increments
  // elsewhere (writers are externally serialized).
  std::atomic<uint64_t> num_attachments_{0};
  bool in_recovery_ = false;
  std::vector<uint8_t> recovered_;  // Per-id: meta slot filled during recovery.
};

}  // namespace insightnotes::ann

#endif  // INSIGHTNOTES_ANNOTATION_ANNOTATION_STORE_H_
