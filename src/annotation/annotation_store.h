// AnnotationStore: the raw-annotation repository. Bodies (which can be
// multi-page documents) live in a heap file; metadata and the
// (table, row) -> attachments index live in memory. The summary manager
// subscribes to insertions; zoom-in resolves summary components back to the
// raw annotations stored here.

#ifndef INSIGHTNOTES_ANNOTATION_ANNOTATION_STORE_H_
#define INSIGHTNOTES_ANNOTATION_ANNOTATION_STORE_H_

#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "annotation/annotation.h"
#include "common/result.h"
#include "storage/heap_file.h"

namespace insightnotes::ann {

/// An annotation's attachment to one region of one row.
struct Attachment {
  AnnotationId annotation = kInvalidAnnotationId;
  std::vector<size_t> columns;  // Empty = whole row.
};

/// Thread-safety: writers (Add/Attach/Archive) must be externally
/// serialized. The read surface (Get/OnRow/OnCell/RegionsOf/IsArchived/
/// ScanTable) is safe for concurrent readers while no writer is active —
/// body fetches go through the shared (not thread-safe) buffer pool and are
/// serialized internally; the metadata maps are read without locks. Ingest
/// shards reading disjoint tuple buckets rely on this.
class AnnotationStore {
 public:
  /// `pool` backs the annotation-body heap file and must outlive the store.
  explicit AnnotationStore(storage::BufferPool* pool) : bodies_(pool) {}

  AnnotationStore(const AnnotationStore&) = delete;
  AnnotationStore& operator=(const AnnotationStore&) = delete;

  /// Stores a new annotation and attaches it to `region`. `note.id` is
  /// assigned by the store; `region.columns` is sorted and deduplicated.
  Result<AnnotationId> Add(Annotation note, const CellRegion& region);

  /// Attaches an existing annotation to an additional region (shared
  /// annotations). Idempotent per (annotation, table, row): re-attaching to
  /// the same row unions the column sets.
  Status Attach(AnnotationId id, const CellRegion& region);

  /// Full annotation (body materialized from the heap file).
  Result<Annotation> Get(AnnotationId id) const;

  /// Attachments on a row, in insertion order. Empty vector if none.
  const std::vector<Attachment>& OnRow(rel::TableId table, rel::RowId row) const;

  /// Annotation ids on a row that cover column `column` (whole-row
  /// annotations included).
  std::vector<AnnotationId> OnCell(rel::TableId table, rel::RowId row,
                                   size_t column) const;

  /// All regions an annotation is attached to.
  Result<std::vector<CellRegion>> RegionsOf(AnnotationId id) const;

  /// Curation: marks the annotation obsolete. Archived annotations remain
  /// retrievable (zoom-in shows them flagged) but new summaries skip them.
  Status Archive(AnnotationId id);

  bool IsArchived(AnnotationId id) const;

  /// Number of distinct annotations.
  uint64_t NumAnnotations() const { return metas_.size(); }

  /// Number of (annotation, row) attachments.
  uint64_t NumAttachments() const { return num_attachments_; }

  /// Calls `fn` for each attachment on each row of `table`; stops early on
  /// false.
  void ScanTable(rel::TableId table,
                 const std::function<bool(rel::RowId, const Attachment&)>& fn) const;

  /// Calls `fn` once per annotated row across all tables with that row's
  /// attachments in insertion order. Row visit order is unspecified. Used
  /// by WAL compaction to snapshot the attachment index.
  void ForEachRow(const std::function<void(rel::TableId, rel::RowId,
                                           const std::vector<Attachment>&)>& fn) const;

 private:
  struct Meta {
    AnnotationKind kind;
    std::string author;
    int64_t timestamp;
    std::string title;
    bool archived = false;
    storage::RecordId body;
    std::vector<CellRegion> regions;
  };

  using RowKey = std::pair<rel::TableId, rel::RowId>;
  struct RowKeyHash {
    size_t operator()(const RowKey& k) const {
      return std::hash<uint64_t>{}((static_cast<uint64_t>(k.first) << 40) ^ k.second);
    }
  };

  // Serializes body reads: HeapFile::Get mutates buffer-pool frame state
  // (pins, eviction) even though it is logically const.
  mutable std::mutex bodies_mutex_;
  storage::HeapFile bodies_;
  std::vector<Meta> metas_;  // Indexed by AnnotationId.
  std::unordered_map<RowKey, std::vector<Attachment>, RowKeyHash> by_row_;
  uint64_t num_attachments_ = 0;
};

}  // namespace insightnotes::ann

#endif  // INSIGHTNOTES_ANNOTATION_ANNOTATION_STORE_H_
