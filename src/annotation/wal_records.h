// Logical WAL records of the annotation layer. Every mutation of the
// raw-annotation repository (Add / Attach / Archive) is encoded as one of
// these and committed to the storage WAL before the store or the in-memory
// maps change; recovery decodes and re-applies them in order, which
// deterministically reproduces annotation ids and heap-file contents.
//
// Encoding: a leading type byte, then fixed-width little-endian integers
// and u32-length-prefixed strings. The storage WAL frames and checksums
// each record, so the codec itself only validates structure.

#ifndef INSIGHTNOTES_ANNOTATION_WAL_RECORDS_H_
#define INSIGHTNOTES_ANNOTATION_WAL_RECORDS_H_

#include <string>
#include <variant>

#include "annotation/annotation.h"
#include "common/result.h"

namespace insightnotes::ann {

/// A new annotation stored and attached to its first region. `expected_id`
/// is the id the store assigned; replay verifies it reproduces the same
/// one (ids are dense and assigned in insertion order).
struct WalAddRecord {
  AnnotationId expected_id = kInvalidAnnotationId;
  Annotation note;  // `id` and `archived` are not encoded.
  CellRegion region;
};

/// An existing annotation attached to an additional region.
struct WalAttachRecord {
  AnnotationId id = kInvalidAnnotationId;
  CellRegion region;
};

/// An annotation archived by curation.
struct WalArchiveRecord {
  AnnotationId id = kInvalidAnnotationId;
};

/// A durability point written by Engine::Checkpoint after the page file was
/// flushed and fsynced: every annotation up to `num_annotations` is on disk.
/// Replay uses it as a consistency check (the store rebuilt from the
/// preceding records must hold exactly that many annotations), and it marks
/// where a future log-compaction pass could cut the log.
struct WalCheckpointRecord {
  uint64_t num_annotations = 0;
};

using WalEntry = std::variant<WalAddRecord, WalAttachRecord, WalArchiveRecord,
                              WalCheckpointRecord>;

std::string EncodeWalEntry(const WalEntry& entry);

/// Decodes one record payload; malformed bytes yield Corruption.
Result<WalEntry> DecodeWalEntry(std::string_view payload);

}  // namespace insightnotes::ann

#endif  // INSIGHTNOTES_ANNOTATION_WAL_RECORDS_H_
