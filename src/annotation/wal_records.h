// Logical WAL records of the annotation layer. Every mutation of the
// raw-annotation repository (Add / Attach / Archive) is encoded as one of
// these and committed to the storage WAL before the store or the in-memory
// maps change; recovery decodes and re-applies them in order, which
// deterministically reproduces annotation ids and heap-file contents.
//
// Encoding: a leading type byte, then fixed-width little-endian integers
// and u32-length-prefixed strings. The storage WAL frames and checksums
// each record, so the codec itself only validates structure.

#ifndef INSIGHTNOTES_ANNOTATION_WAL_RECORDS_H_
#define INSIGHTNOTES_ANNOTATION_WAL_RECORDS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <tuple>
#include <unordered_set>
#include <variant>
#include <vector>

#include "annotation/annotation.h"
#include "common/result.h"

namespace insightnotes::ann {

/// A new annotation stored and attached to its first region. `expected_id`
/// is the id the store assigned; replay verifies it reproduces the same
/// one (ids are dense and assigned in insertion order).
struct WalAddRecord {
  AnnotationId expected_id = kInvalidAnnotationId;
  Annotation note;  // `id` and `archived` are not encoded.
  CellRegion region;
};

/// An existing annotation attached to an additional region.
struct WalAttachRecord {
  AnnotationId id = kInvalidAnnotationId;
  CellRegion region;
};

/// An annotation archived by curation.
struct WalArchiveRecord {
  AnnotationId id = kInvalidAnnotationId;
};

/// A durability point written by Engine::Checkpoint after the page file was
/// flushed and fsynced: every annotation up to `num_annotations` is on disk.
/// Replay uses it as a consistency check (the store rebuilt from the
/// preceding records must hold exactly that many annotations), and it marks
/// where a future log-compaction pass could cut the log.
struct WalCheckpointRecord {
  uint64_t num_annotations = 0;
};

/// Intent marker appended when CREATE INDEX starts persisting a B+-tree.
/// Replay ignores it (only a committed index checkpoint makes an index
/// real); it documents the index set in the log and feeds liveness.
struct WalIndexCreateRecord {
  std::string table;
  uint64_t column = 0;  // Schema column position.
};

/// One persistent index inside a WalIndexCheckpointRecord: the committed
/// B+-tree root plus the covered-row bound (the committed tree reflects
/// heap rows [0, covered_rows) — rows the caller re-creates after open are
/// skipped by index maintenance up to that bound).
struct WalIndexCheckpointEntry {
  std::string table;
  uint64_t column = 0;
  uint32_t root = 0;
  uint32_t height = 0;
  uint64_t entries = 0;
  uint64_t covered_rows = 0;
};

/// The index commit point, appended by Engine::Checkpoint / CreateIndex
/// after the index file was flushed and fsynced: the roots of every
/// persistent index plus the shared allocator state (page count, stamp
/// counter, free list). Recovery adopts the latest one wholesale — opening
/// an engine never rebuilds an index from a table scan. A record's free
/// list includes the pages the commit shadowed, so the reopened allocator
/// can recycle them immediately.
struct WalIndexCheckpointRecord {
  uint64_t page_count = 0;
  uint64_t next_stamp = 1;
  std::vector<uint32_t> free_pages;
  std::vector<WalIndexCheckpointEntry> indexes;
};

using WalEntry = std::variant<WalAddRecord, WalAttachRecord, WalArchiveRecord,
                              WalCheckpointRecord, WalIndexCreateRecord,
                              WalIndexCheckpointRecord>;

std::string EncodeWalEntry(const WalEntry& entry);

/// Decodes one record payload; malformed bytes yield Corruption.
Result<WalEntry> DecodeWalEntry(std::string_view payload);

/// What one record touches, for recovery's chain partition. Two mutation
/// records must replay in log order iff they share a chain key: the same
/// annotation id (dense-id assignment, the per-annotation region list) or
/// the same (table, row) (a row's attachments replay in insertion order).
/// Records sharing neither commute. Checkpoint markers are cross-chain
/// barriers (`is_marker`): they assert a global count and join no chain.
struct WalChainKey {
  AnnotationId annotation = kInvalidAnnotationId;
  bool has_row = false;
  rel::TableId table = 0;
  rel::RowId row = 0;
  bool is_marker = false;
};

WalChainKey ChainKeyOf(const WalEntry& entry);

/// Tracks which log records are superseded ("dead") as newer mutations
/// land, feeding per-segment liveness accounting (SegmentedWal::MarkDead).
/// Observe() must see every durably appended (or replayed) record in log
/// order. A record is only reported dead when dropping it provably leaves
/// replay's final state unchanged:
///   * a checkpoint marker dies when the next marker is appended (markers
///     are pure assertions about the prefix before them);
///   * a repeated archive of an already-archived annotation is a no-op;
///   * a re-attach of (annotation, row) dies when it adds no columns to
///     the accumulated union, and the *earlier* non-first re-attaches die
///     when a later one covers the whole union by itself (replaying just
///     the first record — which pins the attachment's insertion position —
///     plus the covering one reproduces the same union; a whole-row attach
///     covers everything and absorbs the column set for good).
/// Add records never die (annotations are never deleted; archived ones
/// stay retrievable), and the first record attaching an annotation to a
/// row never dies (it pins the row's attachment order).
class WalLivenessTracker {
 public:
  using DeadFn = std::function<void(uint64_t segment_id, uint32_t record_index)>;

  /// Sink for dead positions; replaceable (recovery collects into a
  /// vector, then the engine rebinds to the reopened log).
  void set_on_dead(DeadFn fn) { on_dead_ = std::move(fn); }

  void Observe(const WalEntry& entry, uint64_t segment_id, uint32_t record_index);

 private:
  struct PairState {
    std::vector<size_t> columns;  // Accumulated union; meaningless if whole_row.
    bool whole_row = false;
    // Positions of live non-first re-attaches, superseded as the union grows.
    std::vector<std::pair<uint64_t, uint32_t>> supersedable;
  };

  void ReportDead(uint64_t segment_id, uint32_t record_index);

  std::map<std::tuple<AnnotationId, rel::TableId, rel::RowId>, PairState> pairs_;
  std::unordered_set<AnnotationId> archived_;
  bool has_marker_ = false;
  std::pair<uint64_t, uint32_t> marker_pos_{0, 0};
  // Index commit records supersede like checkpoint markers: a new index
  // checkpoint kills the previous one and every create-intent before it
  // (replay only ever reads the latest index checkpoint).
  bool has_index_marker_ = false;
  std::pair<uint64_t, uint32_t> index_marker_pos_{0, 0};
  std::vector<std::pair<uint64_t, uint32_t>> pending_index_creates_;
  DeadFn on_dead_;
};

}  // namespace insightnotes::ann

#endif  // INSIGHTNOTES_ANNOTATION_WAL_RECORDS_H_
