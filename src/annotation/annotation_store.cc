#include "annotation/annotation_store.h"

#include <algorithm>

namespace insightnotes::ann {

namespace {

const std::vector<Attachment> kNoAttachments;

std::vector<size_t> NormalizeColumns(std::vector<size_t> columns) {
  std::sort(columns.begin(), columns.end());
  columns.erase(std::unique(columns.begin(), columns.end()), columns.end());
  return columns;
}

}  // namespace

Result<AnnotationId> AnnotationStore::Add(Annotation note, const CellRegion& region) {
  if (region.row == rel::kInvalidRowId) {
    return Status::InvalidArgument("annotation region has no row");
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::RecordId body_rid, bodies_.Append(note.body));
  std::unique_lock<std::shared_mutex> lock(meta_latch_);
  AnnotationId id = metas_.size();
  Meta meta;
  meta.kind = note.kind;
  meta.author = std::move(note.author);
  meta.timestamp = note.timestamp;
  meta.title = std::move(note.title);
  meta.body = body_rid;
  metas_.push_back(std::move(meta));
  num_annotations_.store(metas_.size(), std::memory_order_release);
  INSIGHTNOTES_RETURN_IF_ERROR(AttachImpl(id, region, /*recovery=*/false));
  return id;
}

Status AnnotationStore::Attach(AnnotationId id, const CellRegion& region) {
  std::unique_lock<std::shared_mutex> lock(meta_latch_);
  return AttachImpl(id, region, /*recovery=*/false);
}

// Called with meta_latch_ held exclusively, except on the recovery path
// (disjoint pre-created slots, no concurrent readers).
Status AnnotationStore::AttachImpl(AnnotationId id, const CellRegion& region,
                                   bool recovery) {
  if (id >= metas_.size()) {
    return Status::NotFound("annotation " + std::to_string(id) + " does not exist");
  }
  if (region.row == rel::kInvalidRowId) {
    return Status::InvalidArgument("annotation region has no row");
  }
  CellRegion normalized = region;
  normalized.columns = NormalizeColumns(std::move(normalized.columns));

  Meta& meta = metas_[id];
  RowKey key{normalized.table, normalized.row};
  std::vector<Attachment>* attachments_ptr;
  if (recovery) {
    // Pre-created by BeginParallelRecovery: concurrent chains must never
    // insert (a rehash would race with chains reading other rows).
    auto it = by_row_.find(key);
    if (it == by_row_.end()) {
      return Status::Internal("recovery row (" + std::to_string(key.first) + ", " +
                              std::to_string(key.second) + ") was not pre-created");
    }
    attachments_ptr = &it->second;
  } else {
    attachments_ptr = &by_row_[key];
  }
  auto& attachments = *attachments_ptr;
  // Re-attachment to the same row unions column sets (idempotent).
  for (Attachment& a : attachments) {
    if (a.annotation == id) {
      std::vector<size_t> merged = a.columns;
      merged.insert(merged.end(), normalized.columns.begin(), normalized.columns.end());
      // A whole-row attachment (empty set) absorbs any cell attachment.
      if (a.columns.empty() || normalized.columns.empty()) {
        a.columns.clear();
      } else {
        a.columns = NormalizeColumns(std::move(merged));
      }
      for (CellRegion& r : meta.regions) {
        if (r.table == normalized.table && r.row == normalized.row) {
          r.columns = a.columns;
          break;
        }
      }
      return Status::OK();
    }
  }
  attachments.push_back(Attachment{id, normalized.columns});
  meta.regions.push_back(normalized);
  ++num_attachments_;
  return Status::OK();
}

Status AnnotationStore::BeginParallelRecovery(
    uint64_t num_annotations,
    const std::vector<std::pair<rel::TableId, rel::RowId>>& rows) {
  if (!metas_.empty() || !by_row_.empty() || NumAttachments() != 0) {
    return Status::Internal("parallel recovery requires an empty store");
  }
  if (in_recovery_) {
    return Status::Internal("parallel recovery already in progress");
  }
  // Pre-size the id-indexed structures and pre-create every row key so the
  // replay chains never mutate shared container structure: a chain only
  // writes the meta slots of its own ids and the attachment vectors of its
  // own rows.
  metas_.resize(num_annotations);
  num_annotations_.store(num_annotations, std::memory_order_release);
  recovered_.assign(num_annotations, 0);
  by_row_.reserve(rows.size());
  for (const auto& [table, row] : rows) {
    by_row_.try_emplace(RowKey{table, row});
  }
  in_recovery_ = true;
  return Status::OK();
}

Status AnnotationStore::RecoverAdd(AnnotationId id, Annotation note,
                                   const CellRegion& region) {
  if (!in_recovery_) return Status::Internal("RecoverAdd outside recovery");
  if (id >= metas_.size()) {
    return Status::Corruption("recovered annotation id " + std::to_string(id) +
                              " out of range");
  }
  if (recovered_[id]) {
    return Status::Corruption("annotation " + std::to_string(id) +
                              " added twice in the log");
  }
  if (region.row == rel::kInvalidRowId) {
    return Status::Corruption("recovered annotation region has no row");
  }
  // The heap file's own latch serializes concurrent chain appends.
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::RecordId body_rid, bodies_.Append(note.body));
  Meta& meta = metas_[id];
  meta.kind = note.kind;
  meta.author = std::move(note.author);
  meta.timestamp = note.timestamp;
  meta.title = std::move(note.title);
  meta.body = body_rid;
  recovered_[id] = 1;
  return AttachImpl(id, region, /*recovery=*/true);
}

Status AnnotationStore::RecoverAttach(AnnotationId id, const CellRegion& region) {
  if (!in_recovery_) return Status::Internal("RecoverAttach outside recovery");
  if (id >= metas_.size() || !recovered_[id]) {
    return Status::Corruption("log attaches annotation " + std::to_string(id) +
                              " before adding it");
  }
  return AttachImpl(id, region, /*recovery=*/true);
}

Status AnnotationStore::RecoverArchive(AnnotationId id) {
  if (!in_recovery_) return Status::Internal("RecoverArchive outside recovery");
  if (id >= metas_.size() || !recovered_[id]) {
    return Status::Corruption("log archives annotation " + std::to_string(id) +
                              " before adding it");
  }
  metas_[id].archived = true;
  return Status::OK();
}

Status AnnotationStore::EndParallelRecovery() {
  if (!in_recovery_) return Status::Internal("EndParallelRecovery outside recovery");
  in_recovery_ = false;
  for (size_t id = 0; id < recovered_.size(); ++id) {
    if (!recovered_[id]) {
      return Status::Corruption("annotation " + std::to_string(id) +
                                " was never added during replay");
    }
  }
  recovered_.clear();
  return Status::OK();
}

Result<Annotation> AnnotationStore::Get(AnnotationId id) const {
  Annotation note;
  storage::RecordId body_rid;
  {
    std::shared_lock<std::shared_mutex> lock(meta_latch_);
    if (id >= metas_.size()) {
      return Status::NotFound("annotation " + std::to_string(id) + " does not exist");
    }
    const Meta& meta = metas_[id];
    note.id = id;
    note.kind = meta.kind;
    note.author = meta.author;
    note.timestamp = meta.timestamp;
    note.title = meta.title;
    note.archived = meta.archived;
    body_rid = meta.body;
  }
  // Body fetch outside the metadata latch; the heap file latches itself.
  INSIGHTNOTES_ASSIGN_OR_RETURN(note.body, bodies_.Get(body_rid));
  return note;
}

const std::vector<Attachment>& AnnotationStore::OnRow(rel::TableId table,
                                                      rel::RowId row) const {
  std::shared_lock<std::shared_mutex> lock(meta_latch_);
  auto it = by_row_.find(RowKey{table, row});
  return it == by_row_.end() ? kNoAttachments : it->second;
}

std::vector<AnnotationId> AnnotationStore::OnCell(rel::TableId table, rel::RowId row,
                                                  size_t column) const {
  std::shared_lock<std::shared_mutex> lock(meta_latch_);
  std::vector<AnnotationId> out;
  auto it = by_row_.find(RowKey{table, row});
  if (it == by_row_.end()) return out;
  for (const Attachment& a : it->second) {
    if (a.columns.empty() ||
        std::find(a.columns.begin(), a.columns.end(), column) != a.columns.end()) {
      out.push_back(a.annotation);
    }
  }
  return out;
}

Result<std::vector<CellRegion>> AnnotationStore::RegionsOf(AnnotationId id) const {
  std::shared_lock<std::shared_mutex> lock(meta_latch_);
  if (id >= metas_.size()) {
    return Status::NotFound("annotation " + std::to_string(id) + " does not exist");
  }
  return metas_[id].regions;
}

Status AnnotationStore::Archive(AnnotationId id) {
  std::unique_lock<std::shared_mutex> lock(meta_latch_);
  if (id >= metas_.size()) {
    return Status::NotFound("annotation " + std::to_string(id) + " does not exist");
  }
  metas_[id].archived = true;
  return Status::OK();
}

bool AnnotationStore::IsArchived(AnnotationId id) const {
  std::shared_lock<std::shared_mutex> lock(meta_latch_);
  return id < metas_.size() && metas_[id].archived;
}

void AnnotationStore::ScanTable(
    rel::TableId table,
    const std::function<bool(rel::RowId, const Attachment&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(meta_latch_);
  // Deterministic order: collect row keys for this table, sorted by row.
  std::vector<rel::RowId> rows;
  for (const auto& [key, attachments] : by_row_) {
    if (key.first == table && !attachments.empty()) rows.push_back(key.second);
  }
  std::sort(rows.begin(), rows.end());
  for (rel::RowId row : rows) {
    for (const Attachment& a : by_row_.at(RowKey{table, row})) {
      if (!fn(row, a)) return;
    }
  }
}

void AnnotationStore::ForEachRow(
    const std::function<void(rel::TableId, rel::RowId,
                             const std::vector<Attachment>&)>& fn) const {
  std::shared_lock<std::shared_mutex> lock(meta_latch_);
  for (const auto& [key, attachments] : by_row_) {
    if (!attachments.empty()) fn(key.first, key.second, attachments);
  }
}

}  // namespace insightnotes::ann
