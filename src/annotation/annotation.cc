#include "annotation/annotation.h"

#include <algorithm>

namespace insightnotes::ann {

bool CellRegion::SurvivesProjection(const std::vector<size_t>& kept) const {
  if (columns.empty()) return true;  // Whole-row annotation.
  for (size_t c : columns) {
    if (std::find(kept.begin(), kept.end(), c) != kept.end()) return true;
  }
  return false;
}

std::string_view AnnotationKindToString(AnnotationKind kind) {
  switch (kind) {
    case AnnotationKind::kComment:
      return "comment";
    case AnnotationKind::kDocument:
      return "document";
  }
  return "?";
}

}  // namespace insightnotes::ann
