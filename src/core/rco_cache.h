// The zoom-in result cache (Section 2.2): recent query-result snapshots
// compete for a limited disk-backed budget. Eviction is governed by the
// paper's RCO policy — Recency, Complexity (cost to recompute the result),
// Overhead (result size) — with LRU and LFU available as ablation baselines
// and kNone disabling caching entirely.

#ifndef INSIGHTNOTES_CORE_RCO_CACHE_H_
#define INSIGHTNOTES_CORE_RCO_CACHE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/result.h"
#include "core/zoom_in.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace insightnotes::core {

enum class CachePolicy : uint8_t { kNone = 0, kLru = 1, kLfu = 2, kRco = 3 };

std::string_view CachePolicyToString(CachePolicy policy);

struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;  // Entries larger than the whole budget.
  size_t bytes_used = 0;
};

/// Weights of the RCO score. score(e) = wr*recency(e) + wc*complexity(e)
/// - wo*overhead(e); the entry with the lowest score is evicted first.
struct RcoWeights {
  double recency = 1.0;
  double complexity = 1.0;
  double overhead = 0.5;
};

class ZoomInCache {
 public:
  /// `budget_bytes` caps the sum of serialized snapshot sizes. `path` backs
  /// the cache file ("" = in-memory backing, still exercising the same
  /// page/heap path).
  ZoomInCache(CachePolicy policy, size_t budget_bytes, const std::string& path = "",
              RcoWeights weights = {});
  ~ZoomInCache();

  ZoomInCache(const ZoomInCache&) = delete;
  ZoomInCache& operator=(const ZoomInCache&) = delete;

  Status Init();

  /// Admits the snapshot of `qid` with recompute cost `cost_seconds`.
  /// Snapshots that cannot fit even an empty cache are rejected (counted in
  /// stats.rejected); under kNone everything is rejected. Replacing an
  /// existing qid is atomic from the reader's perspective: the old snapshot
  /// stays readable until the replacement has fully succeeded, and a failed
  /// or rejected replacement keeps it.
  Status Put(QueryId qid, const ResultSnapshot& snapshot, double cost_seconds);

  /// Fetches the snapshot for `qid`, bumping its recency/frequency. NotFound
  /// on miss (evicted, rejected, or never inserted). Hit/recency accounting
  /// happens only once the snapshot has actually been read back: a failed
  /// backing read counts as a miss and leaves the entry's metadata alone.
  Result<ResultSnapshot> Get(QueryId qid);

  /// Test-only fault injection: tombstones the backing heap record of `qid`
  /// while keeping its directory entry, simulating a torn cache file. Later
  /// reads of (and evictions targeting) the entry fail at the heap layer.
  Status CorruptBackingRecordForTest(QueryId qid);

  bool Contains(QueryId qid) const { return entries_.contains(qid); }

  const CacheStats& stats() const { return stats_; }
  CachePolicy policy() const { return policy_; }
  size_t budget_bytes() const { return budget_; }

 private:
  struct Entry {
    storage::RecordId record;
    size_t size = 0;
    double cost = 0.0;
    uint64_t last_ref = 0;  // Logical tick.
    uint64_t ref_count = 0;
  };

  /// Evicts entries until `needed` bytes fit, where `reclaimable` bytes of
  /// the current usage will be freed by the caller on success (the entry
  /// being replaced) and `exclude`, when non-null, must never be picked as
  /// a victim. Returns false if impossible.
  bool MakeRoom(size_t needed, size_t reclaimable = 0, const QueryId* exclude = nullptr);
  /// Picks the eviction victim under the configured policy, skipping
  /// `exclude`. Must not be called when no candidate exists.
  QueryId PickVictim(const QueryId* exclude) const;
  /// RCO score against pre-computed normalization maxima (hoisted out of
  /// the candidate loop: one pre-pass per eviction, not one per candidate).
  double RcoScore(const Entry& e, double max_cost, size_t max_size) const;

  CachePolicy policy_;
  size_t budget_;
  RcoWeights weights_;
  std::string path_;
  storage::DiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<storage::HeapFile> heap_;
  std::map<QueryId, Entry> entries_;
  uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_RCO_CACHE_H_
