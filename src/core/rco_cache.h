// The zoom-in result cache (Section 2.2): recent query-result snapshots
// compete for a limited disk-backed budget. Eviction is governed by the
// paper's RCO policy — Recency, Complexity (cost to recompute the result),
// Overhead (result size) — with LRU and LFU available as ablation baselines
// and kNone disabling caching entirely.
//
// Thread-safe: the directory is sharded by QID, each shard behind its own
// mutex, so concurrent sessions probing distinct results do not serialize
// on one lock. Get takes only its shard's mutex (and holds it across the
// backing heap read, so an eviction can never delete the record mid-read);
// Put / eviction need the global directory view and take every shard mutex
// in ascending index order. Statistics are atomic counters read without any
// lock via the by-value stats() snapshot.

#ifndef INSIGHTNOTES_CORE_RCO_CACHE_H_
#define INSIGHTNOTES_CORE_RCO_CACHE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/result.h"
#include "core/zoom_in.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/heap_file.h"

namespace insightnotes::core {

enum class CachePolicy : uint8_t { kNone = 0, kLru = 1, kLfu = 2, kRco = 3 };

std::string_view CachePolicyToString(CachePolicy policy);

/// Point-in-time snapshot of the cache's atomic counters. Consistent per
/// counter (each is a single atomic load), not across counters — two
/// counters may straddle a concurrent operation.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t insertions = 0;
  uint64_t evictions = 0;
  uint64_t rejected = 0;  // Entries larger than the whole budget.
  size_t bytes_used = 0;
};

/// Weights of the RCO score. score(e) = wr*recency(e) + wc*complexity(e)
/// - wo*overhead(e); the entry with the lowest score is evicted first.
struct RcoWeights {
  double recency = 1.0;
  double complexity = 1.0;
  double overhead = 0.5;
};

class ZoomInCache {
 public:
  /// Wildcard epoch key: entries stored under it match any lookup and any
  /// lookup with it matches any entry. Engine epochs start at 1, so 0 is
  /// free to mean "executed against live state, no pinned epoch".
  static constexpr uint64_t kAnyEpoch = 0;

  /// `budget_bytes` caps the sum of serialized snapshot sizes. `path` backs
  /// the cache file ("" = in-memory backing, still exercising the same
  /// page/heap path).
  ZoomInCache(CachePolicy policy, size_t budget_bytes, const std::string& path = "",
              RcoWeights weights = {});
  ~ZoomInCache();

  ZoomInCache(const ZoomInCache&) = delete;
  ZoomInCache& operator=(const ZoomInCache&) = delete;

  Status Init();

  /// Admits the snapshot of `qid` with recompute cost `cost_seconds`,
  /// keyed by the epoch the result was computed at (kAnyEpoch = live).
  /// Snapshots that cannot fit even an empty cache are rejected (counted in
  /// stats().rejected); under kNone everything is rejected. Replacing an
  /// existing qid is atomic from the reader's perspective: the old snapshot
  /// stays readable until the replacement has fully succeeded, and a failed
  /// or rejected replacement keeps it.
  Status Put(QueryId qid, const ResultSnapshot& snapshot, double cost_seconds,
             uint64_t epoch = kAnyEpoch);

  /// Fetches the snapshot for `qid`, bumping its recency/frequency. NotFound
  /// on miss (evicted, rejected, never inserted, or cached at a different
  /// epoch than requested). Hit/recency accounting happens only once the
  /// snapshot has actually been read back: a failed backing read counts as
  /// a miss and leaves the entry's metadata alone.
  Result<ResultSnapshot> Get(QueryId qid, uint64_t epoch = kAnyEpoch);

  /// Test-only fault injection: tombstones the backing heap record of `qid`
  /// while keeping its directory entry, simulating a torn cache file. Later
  /// reads of (and evictions targeting) the entry fail at the heap layer.
  Status CorruptBackingRecordForTest(QueryId qid);

  bool Contains(QueryId qid) const;

  CacheStats stats() const;
  CachePolicy policy() const { return policy_; }
  size_t budget_bytes() const { return budget_; }

 private:
  static constexpr size_t kNumShards = 8;

  struct Entry {
    storage::RecordId record;
    size_t size = 0;
    double cost = 0.0;
    uint64_t epoch = kAnyEpoch;  // Epoch the cached result was computed at.
    uint64_t last_ref = 0;       // Logical tick.
    uint64_t ref_count = 0;
  };

  struct Shard {
    mutable std::mutex mutex;
    std::map<QueryId, Entry> entries;
  };

  static size_t ShardOf(QueryId qid) { return qid % kNumShards; }

  /// Acquires every shard mutex in ascending index order (the global lock
  /// order; Get holds a single shard mutex and never a second one).
  std::array<std::unique_lock<std::mutex>, kNumShards> LockAll() const;

  /// Evicts entries until `needed` bytes fit, where `reclaimable` bytes of
  /// the current usage will be freed by the caller on success (the entry
  /// being replaced) and `exclude`, when non-null, must never be picked as
  /// a victim. Returns false if impossible. All shard mutexes held.
  bool MakeRoom(size_t needed, size_t reclaimable = 0, const QueryId* exclude = nullptr);
  /// Picks the eviction victim under the configured policy, skipping
  /// `exclude`. Must not be called when no candidate exists. All shard
  /// mutexes held.
  QueryId PickVictim(const QueryId* exclude) const;
  /// RCO score against pre-computed normalization maxima (hoisted out of
  /// the candidate loop: one pre-pass per eviction, not one per candidate).
  double RcoScore(const Entry& e, double max_cost, size_t max_size) const;

  size_t NumEntriesLocked() const;

  CachePolicy policy_;
  size_t budget_;
  RcoWeights weights_;
  std::string path_;
  storage::DiskManager disk_;
  std::unique_ptr<storage::BufferPool> pool_;
  std::unique_ptr<storage::HeapFile> heap_;
  std::array<Shard, kNumShards> shards_;
  std::atomic<uint64_t> tick_{0};
  // Atomic so stats() never takes a lock and concurrent bumps cannot be
  // lost (the pre-sharding counters were plain uint64_t).
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
  std::atomic<uint64_t> insertions_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> rejected_{0};
  std::atomic<size_t> bytes_used_{0};
};

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_RCO_CACHE_H_
