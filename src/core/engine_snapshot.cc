#include "core/engine_snapshot.h"

#include <algorithm>

#include "core/summary_manager.h"

namespace insightnotes::core {

EngineSnapshot::~EngineSnapshot() {
  if (retired_ != nullptr) retired_->fetch_add(1, std::memory_order_relaxed);
}

const EngineSnapshot::RowState* EngineSnapshot::FindRow(rel::TableId table,
                                                        rel::RowId row) const {
  const RowKey key{table, row};
  const Shard* shard = shards_[ShardOf(key)].get();
  if (shard == nullptr) return nullptr;
  auto it = shard->rows.find(key);
  return it == shard->rows.end() ? nullptr : it->second.get();
}

Result<std::vector<std::unique_ptr<SummaryObject>>> EngineSnapshot::SummariesFor(
    rel::TableId table, rel::RowId row) const {
  std::vector<std::unique_ptr<SummaryObject>> out;
  const RowState* state = FindRow(table, row);
  if (state != nullptr && state->has_objects) {
    out.reserve(state->summaries.size());
    for (const auto& object : state->summaries) out.push_back(object->Clone());
    return out;
  }
  // Same fallback as SummaryManager::SummariesFor: one empty object per
  // instance linked (at this epoch) to the table.
  if (links_ != nullptr) {
    auto it = links_->find(table);
    if (it != links_->end()) {
      out.reserve(it->second.size());
      for (SummaryInstance* instance : it->second) out.push_back(instance->NewObject());
    }
  }
  return out;
}

void EngineSnapshot::AppendAttachments(rel::TableId table, rel::RowId row,
                                       std::vector<AttachmentInfo>* out) const {
  const RowState* state = FindRow(table, row);
  if (state == nullptr) return;
  for (const ann::Attachment& att : state->attachments) {
    if (IsArchived(att.annotation)) continue;
    out->push_back(AttachmentInfo{att.annotation, att.columns});
  }
}

std::shared_ptr<const EngineSnapshot::RowState> EngineSnapshot::ReadRowState(
    const Sources& src, const RowKey& key) {
  const std::vector<ann::Attachment>& atts = src.store->OnRow(key.first, key.second);
  const std::vector<std::unique_ptr<SummaryObject>>* objects =
      src.manager->RowObjects(key.first, key.second);
  if (atts.empty() && objects == nullptr) return nullptr;
  auto state = std::make_shared<RowState>();
  state->attachments = atts;
  if (objects != nullptr) {
    state->has_objects = true;
    state->summaries.reserve(objects->size());
    for (const auto& object : *objects) {
      // Clone() is O(1): the copy shares the object's COW payload; the
      // maintainer's next fold detaches via Own() without touching this one.
      state->summaries.push_back(
          std::shared_ptr<const SummaryObject>(object->Clone()));
    }
  }
  return state;
}

void EngineSnapshot::CaptureGlobals(const Sources& src) {
  num_annotations_ = src.store->NumAnnotations();
  links_ = std::make_shared<const std::map<rel::TableId, std::vector<SummaryInstance*>>>(
      src.manager->AllLinks());
  bool any_archived = false;
  std::vector<uint8_t> archived(num_annotations_, 0);
  for (uint64_t id = 0; id < num_annotations_; ++id) {
    if (src.store->IsArchived(id)) {
      archived[id] = 1;
      any_archived = true;
    }
  }
  if (any_archived) {
    archived_ = std::make_shared<const std::vector<uint8_t>>(std::move(archived));
  } else {
    archived_ = nullptr;
  }
}

std::shared_ptr<const EngineSnapshot> EngineSnapshot::BuildFull(
    const Sources& src, std::unordered_map<rel::TableId, rel::RowId> bounds,
    uint64_t epoch, std::shared_ptr<std::atomic<uint64_t>> retire_counter) {
  auto snap = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snap->epoch_ = epoch;
  snap->bounds_ = std::move(bounds);
  snap->retired_ = std::move(retire_counter);
  snap->CaptureGlobals(src);

  std::array<std::shared_ptr<Shard>, kNumShards> building;
  // Every row with maintained objects also has attachments (folds only run
  // on annotated rows), so the store's row index enumerates all row state.
  // Keys are collected first so ReadRowState never re-enters the store's
  // latch from inside the ForEachRow callback.
  std::vector<RowKey> keys;
  src.store->ForEachRow([&](rel::TableId table, rel::RowId row,
                            const std::vector<ann::Attachment>&) {
    keys.emplace_back(table, row);
  });
  for (const RowKey& key : keys) {
    std::shared_ptr<const RowState> state = ReadRowState(src, key);
    if (state == nullptr) continue;
    std::shared_ptr<Shard>& shard = building[ShardOf(key)];
    if (shard == nullptr) shard = std::make_shared<Shard>();
    shard->rows.emplace(key, std::move(state));
  }
  for (size_t i = 0; i < kNumShards; ++i) snap->shards_[i] = std::move(building[i]);
  return snap;
}

std::shared_ptr<const EngineSnapshot> EngineSnapshot::BuildDelta(
    const EngineSnapshot& prev, const Sources& src,
    const std::vector<RowKey>& dirty,
    const std::vector<ann::AnnotationId>& newly_archived,
    std::unordered_map<rel::TableId, rel::RowId> bounds, uint64_t epoch,
    std::shared_ptr<std::atomic<uint64_t>> retire_counter) {
  auto snap = std::shared_ptr<EngineSnapshot>(new EngineSnapshot());
  snap->epoch_ = epoch;
  snap->bounds_ = std::move(bounds);
  snap->retired_ = std::move(retire_counter);
  snap->num_annotations_ = src.store->NumAnnotations();
  snap->links_ = prev.links_;
  snap->shards_ = prev.shards_;  // Structural sharing; dirty shards replaced below.

  if (newly_archived.empty()) {
    snap->archived_ = prev.archived_;
  } else {
    std::vector<uint8_t> archived(snap->num_annotations_, 0);
    if (prev.archived_ != nullptr) {
      std::copy(prev.archived_->begin(), prev.archived_->end(), archived.begin());
    }
    for (ann::AnnotationId id : newly_archived) {
      if (id < archived.size()) archived[id] = 1;
    }
    snap->archived_ = std::make_shared<const std::vector<uint8_t>>(std::move(archived));
  }

  std::array<std::shared_ptr<Shard>, kNumShards> copied;
  for (const RowKey& key : dirty) {
    const size_t idx = ShardOf(key);
    if (copied[idx] == nullptr) {
      copied[idx] = prev.shards_[idx] != nullptr
                        ? std::make_shared<Shard>(*prev.shards_[idx])
                        : std::make_shared<Shard>();
    }
    std::shared_ptr<const RowState> state = ReadRowState(src, key);
    if (state != nullptr) {
      copied[idx]->rows[key] = std::move(state);
    } else {
      copied[idx]->rows.erase(key);
    }
  }
  for (size_t i = 0; i < kNumShards; ++i) {
    if (copied[i] != nullptr) snap->shards_[i] = std::move(copied[i]);
  }
  return snap;
}

}  // namespace insightnotes::core
