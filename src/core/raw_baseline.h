// Raw-annotation propagation baseline: models conventional annotation
// management engines (DBNotes, Mondrian, bdbms — the paper's references
// [6, 11, 20]) that ship the *full raw annotations* through the query
// pipeline. Used as the comparator in the query-overhead experiments (E2):
// InsightNotes propagates fixed-size summaries instead.

#ifndef INSIGHTNOTES_CORE_RAW_BASELINE_H_
#define INSIGHTNOTES_CORE_RAW_BASELINE_H_

#include <vector>

#include "annotation/annotation_store.h"
#include "common/result.h"
#include "rel/expression.h"
#include "rel/table.h"

namespace insightnotes::core {

/// A tuple dragging its raw annotations (full bodies), as a conventional
/// engine would propagate them.
struct RawTuple {
  rel::Tuple tuple;
  std::vector<ann::Annotation> annotations;
  std::vector<std::vector<size_t>> coverage;  // Per annotation, covered columns.
};

class RawPropagationEngine {
 public:
  explicit RawPropagationEngine(const ann::AnnotationStore* store) : store_(store) {}

  /// Scan with raw annotations attached (bodies materialized — the cost
  /// real raw-propagation engines pay). Archived annotations are skipped.
  Result<std::vector<RawTuple>> Scan(const rel::Table& table) const;

  /// Selection: annotations propagate untouched.
  Result<std::vector<RawTuple>> Filter(std::vector<RawTuple> in,
                                       const rel::Expression& predicate) const;

  /// Projection to `kept` child columns: annotations covering only dropped
  /// columns are eliminated; the rest are copied through.
  std::vector<RawTuple> Project(const std::vector<RawTuple>& in,
                                const std::vector<size_t>& kept) const;

  /// Hash equi-join; annotation sets are unioned with by-id deduplication.
  Result<std::vector<RawTuple>> Join(const std::vector<RawTuple>& left,
                                     const std::vector<RawTuple>& right,
                                     const rel::Expression& left_key,
                                     const rel::Expression& right_key) const;

 private:
  const ann::AnnotationStore* store_;
};

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_RAW_BASELINE_H_
