// Level 2 of the summarization hierarchy: summary instances. An instance
// fixes the algorithm, its configuration (class labels, cluster threshold,
// snippet limits), training state, and the optimization properties. It owns
// the shared mining kernels its per-tuple summary objects use, plus the
// summarize-once caches exploited when the invariant properties hold.

#ifndef INSIGHTNOTES_CORE_SUMMARY_INSTANCE_H_
#define INSIGHTNOTES_CORE_SUMMARY_INSTANCE_H_

#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "annotation/annotation.h"
#include "common/result.h"
#include "core/summary_type.h"
#include "mining/clustering.h"
#include "mining/naive_bayes.h"
#include "mining/snippets.h"
#include "txt/tfidf.h"

namespace insightnotes::core {

class SummaryObject;

/// SummaryInstance doubles as the DocVectorStore of its cluster objects:
/// document vectors are computed once and held here (the vectorize-once
/// optimization), so per-tuple cluster objects carry only ids + centroids
/// and stay cheap to clone through the query pipeline.
class SummaryInstance : public mining::DocVectorStore {
 public:
  /// Classifier instance: labels define the output classes; train via
  /// `classifier()` before (or while) annotations arrive.
  static std::unique_ptr<SummaryInstance> MakeClassifier(
      std::string name, std::vector<std::string> labels,
      SummaryProperties properties = {});

  /// Cluster instance: `threshold` is the cosine similarity at or above
  /// which an annotation joins an existing group. Clustering depends on the
  /// tuple's current groups, so annotation_invariant is forced to false
  /// (only vectorization is cacheable).
  static std::unique_ptr<SummaryInstance> MakeCluster(
      std::string name, double threshold = 0.35, SummaryProperties properties = {});

  /// Snippet instance: summarizes document-kind annotations only.
  static std::unique_ptr<SummaryInstance> MakeSnippet(
      std::string name, mining::SnippetOptions options = {},
      SummaryProperties properties = {});

  SummaryInstance(const SummaryInstance&) = delete;
  SummaryInstance& operator=(const SummaryInstance&) = delete;

  const std::string& name() const { return name_; }
  SummaryTypeKind type() const { return type_; }
  const SummaryProperties& properties() const { return properties_; }

  /// Creates an empty summary object bound to this instance. The object
  /// holds a non-owning pointer back; the instance must outlive it.
  std::unique_ptr<SummaryObject> NewObject();

  /// Kernels (null unless the type matches).
  mining::NaiveBayesClassifier* classifier() { return classifier_.get(); }
  const mining::NaiveBayesClassifier* classifier() const { return classifier_.get(); }
  mining::SnippetExtractor* extractor() { return extractor_.get(); }
  double cluster_threshold() const { return cluster_threshold_; }

  // --- Summarize-once interface used by summary objects -------------------
  // Each returns the per-annotation summarization result, consulting the
  // instance-level cache when the properties make the result invariant.
  //
  // Thread-safety: these three methods, GetVector and the cache counters
  // are safe to call from concurrent ingest shards. The classifier and
  // snippet kernels are const/stateless and run unlocked; the cluster
  // vectorizer mutates the shared vocabulary and is serialized on a kernel
  // mutex. For ingest that must be byte-identical to serial execution, the
  // vocabulary must be grown in deterministic order first — see
  // TokenizeBody/CommitTokens below.

  /// Class label index for `note` (Classifier instances).
  size_t ClassifyAnnotation(const ann::Annotation& note);

  /// Term vector for `note` (Cluster instances).
  txt::SparseVector VectorizeAnnotation(const ann::Annotation& note);

  /// Extractive snippet for `note` (Snippet instances).
  std::string SummarizeDocument(const ann::Annotation& note);

  // --- Two-phase vectorization (parallel ingest, Cluster instances) --------
  // Vocabulary term ids are assigned in insertion order, so growing the
  // vocabulary from concurrent shards would be nondeterministic. Parallel
  // ingest instead splits vectorization: TokenizeBody (the expensive part)
  // is pure and runs on any thread; CommitTokens folds the tokens into the
  // shared vocabulary and warms the vectorize-once cache, and must be
  // called serially in the same order a serial ingest would vectorize.

  /// Normalized term tokens of `note` under this instance's tokenizer
  /// configuration. Thread-safe; no shared state is touched.
  std::vector<std::string> TokenizeBody(const ann::Annotation& note) const;

  /// Folds `tokens` (from TokenizeBody of the same annotation) into the
  /// vocabulary and caches the resulting vector for `id`. No-op if `id` is
  /// already cached (shared annotations commit once). NOT thread-safe:
  /// callers serialize commits in deterministic order.
  void CommitTokens(ann::AnnotationId id, const std::vector<std::string>& tokens);

  /// Cache-efficiency counters (experiment E5).
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  void ResetCacheCounters() { cache_hits_ = cache_misses_ = 0; }

  /// Drops all summarize-once cache entries (used by ablation benches on
  /// classifier/snippet instances; do NOT clear a cluster instance's caches
  /// while cluster objects for it are alive — they resolve member vectors
  /// through this store).
  void ClearCaches();

  /// mining::DocVectorStore: vector of an annotation previously passed to
  /// VectorizeAnnotation.
  const txt::SparseVector* GetVector(mining::DocId doc) const override;

 private:
  SummaryInstance(std::string name, SummaryTypeKind type, SummaryProperties properties)
      : name_(std::move(name)), type_(type), properties_(properties) {}

  friend class ClusterObject;

  std::string name_;
  SummaryTypeKind type_;
  SummaryProperties properties_;

  std::unique_ptr<mining::NaiveBayesClassifier> classifier_;
  std::unique_ptr<mining::TextVectorizer> vectorizer_;
  std::unique_ptr<mining::SnippetExtractor> extractor_;
  double cluster_threshold_ = 0.35;

  // Summarize-once caches, keyed by annotation id. Guarded by cache_mutex_
  // (concurrent ingest shards hit them for shared annotations); cached
  // values are never mutated after insertion, so pointers handed out by
  // GetVector stay valid without the lock.
  mutable std::mutex cache_mutex_;
  // Serializes the vectorizer (it mutates the shared vocabulary).
  std::mutex kernel_mutex_;
  std::unordered_map<ann::AnnotationId, size_t> label_cache_;
  std::unordered_map<ann::AnnotationId, txt::SparseVector> vector_cache_;
  std::unordered_map<ann::AnnotationId, std::string> snippet_cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
};

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_SUMMARY_INSTANCE_H_
