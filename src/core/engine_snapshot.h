// Epoch-based snapshot isolation for concurrent multi-session reads.
//
// The engine maintains a single *published* EngineSnapshot: an immutable,
// internally consistent view of everything a query reads at execution time
// — per-row attachment lists, per-row summary-object versions, the archived
// bitmap, and per-table visible-row bounds. Mutators (serialized on the
// engine's writer mutex) install the next snapshot copy-on-write after the
// WAL commit and the in-memory apply both succeeded, so a published epoch
// never exposes a half-applied mutation.
//
// Readers pin the current epoch with one atomic acquire-load
// (Engine::PinSnapshot) and keep the returned shared_ptr for the whole
// query; nothing a reader touches through the snapshot is ever mutated
// afterwards. Retirement is refcounted: when the last reader (and the
// engine's published slot) drop an epoch, the snapshot destructs, frees the
// shards only it referenced, and bumps a retire counter the tests observe.
//
// Copy-on-write is sharded so publication stays O(dirty rows), not O(all
// rows): row states live in kNumShards hash shards, each an immutable map
// behind a shared_ptr. A delta publish copies only the shards containing
// dirty rows; clean shards are shared structurally with the previous epoch.
// Summary objects are cloned into the snapshot at publish time — their COW
// internal state makes the clone O(1), and the maintainer's next in-place
// fold takes a private copy (Own()), leaving the snapshot's version intact.

#ifndef INSIGHTNOTES_CORE_ENGINE_SNAPSHOT_H_
#define INSIGHTNOTES_CORE_ENGINE_SNAPSHOT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "annotation/annotation_store.h"
#include "common/result.h"
#include "core/annotated_tuple.h"
#include "core/summary_object.h"

namespace insightnotes::core {

class SummaryManager;

class EngineSnapshot {
 public:
  using RowKey = std::pair<rel::TableId, rel::RowId>;

  /// Everything the snapshot knows about one annotated row. `attachments`
  /// is unfiltered (archived ids are masked at read time by this epoch's
  /// bitmap); `has_objects` distinguishes "maintained objects exist (maybe
  /// empty after an unlink)" from "row never summarized" — the two cases
  /// produce different fallback summaries, exactly like
  /// SummaryManager::SummariesFor.
  struct RowState {
    std::vector<ann::Attachment> attachments;
    bool has_objects = false;
    std::vector<std::shared_ptr<const SummaryObject>> summaries;
  };

  static constexpr size_t kNumShards = 64;

  /// Where a publish reads engine state from. Only the writer thread (under
  /// the writer mutex) constructs snapshots, so plain const access is safe.
  struct Sources {
    const ann::AnnotationStore* store = nullptr;
    const SummaryManager* manager = nullptr;
  };

  ~EngineSnapshot();

  EngineSnapshot(const EngineSnapshot&) = delete;
  EngineSnapshot& operator=(const EngineSnapshot&) = delete;

  // --- Read surface (lock-free; any thread) --------------------------------

  /// Monotone publication counter; epoch 0 is the empty pre-Init state.
  uint64_t epoch() const { return epoch_; }

  /// Annotation ids below this bound existed when the epoch was published.
  uint64_t num_annotations() const { return num_annotations_; }

  /// True when the snapshot has a visible-row bound for `table`. Tables
  /// created or filled behind the engine's back (direct rel::Table use in
  /// tests) are not covered; scans fall back to live reads for them.
  bool CoversTable(rel::TableId table) const { return bounds_.contains(table); }

  /// Rows [0, bound) of `table` existed at publication. 0 when uncovered.
  rel::RowId VisibleRows(rel::TableId table) const {
    auto it = bounds_.find(table);
    return it == bounds_.end() ? 0 : it->second;
  }

  /// Archived-at-this-epoch test. Ids at or past the bitmap (annotated
  /// after the last archive) are not archived.
  bool IsArchived(ann::AnnotationId id) const {
    return archived_ != nullptr && id < archived_->size() && (*archived_)[id] != 0;
  }

  /// Deep copies of the row's summary objects as of this epoch — the exact
  /// counterpart of SummaryManager::SummariesFor, including the
  /// empty-object fallback for never-annotated rows.
  Result<std::vector<std::unique_ptr<SummaryObject>>> SummariesFor(
      rel::TableId table, rel::RowId row) const;

  /// Appends the row's non-archived attachments (as of this epoch) to
  /// `out`, in insertion order — the scan operators' attachment source.
  void AppendAttachments(rel::TableId table, rel::RowId row,
                         std::vector<AttachmentInfo>* out) const;

  /// The row's state, or nullptr if the row had no annotations and no
  /// maintained objects at publication.
  const RowState* FindRow(rel::TableId table, rel::RowId row) const;

  // --- Writer-side construction (engine only, under the writer mutex) ------

  /// Builds a snapshot from scratch: every annotated row is re-read from
  /// the store/manager. Used at Init/recovery and after table-wide changes
  /// (Link/Unlink, stale repair).
  static std::shared_ptr<const EngineSnapshot> BuildFull(
      const Sources& src, std::unordered_map<rel::TableId, rel::RowId> bounds,
      uint64_t epoch, std::shared_ptr<std::atomic<uint64_t>> retire_counter);

  /// Builds the next epoch from `prev`, re-reading only `dirty` rows and
  /// sharing every clean shard. `newly_archived` lists ids archived by this
  /// mutation (the bitmap is copied only when non-empty).
  static std::shared_ptr<const EngineSnapshot> BuildDelta(
      const EngineSnapshot& prev, const Sources& src,
      const std::vector<RowKey>& dirty,
      const std::vector<ann::AnnotationId>& newly_archived,
      std::unordered_map<rel::TableId, rel::RowId> bounds, uint64_t epoch,
      std::shared_ptr<std::atomic<uint64_t>> retire_counter);

 private:
  struct RowKeyHash {
    size_t operator()(const RowKey& k) const {
      return std::hash<uint64_t>{}((static_cast<uint64_t>(k.first) << 40) ^ k.second);
    }
  };
  struct Shard {
    std::unordered_map<RowKey, std::shared_ptr<const RowState>, RowKeyHash> rows;
  };

  EngineSnapshot() = default;

  static size_t ShardOf(const RowKey& key) { return RowKeyHash{}(key) % kNumShards; }

  /// Reads one row's current state from the live store/manager. Returns
  /// nullptr when the row has neither attachments nor maintained objects.
  static std::shared_ptr<const RowState> ReadRowState(const Sources& src,
                                                      const RowKey& key);

  /// Copies the manager's current links and the store's archived flags into
  /// this snapshot (full-build path).
  void CaptureGlobals(const Sources& src);

  uint64_t epoch_ = 0;
  uint64_t num_annotations_ = 0;
  std::array<std::shared_ptr<const Shard>, kNumShards> shards_;
  // Null until something is archived (ids beyond the vector are live).
  std::shared_ptr<const std::vector<uint8_t>> archived_;
  // Instance links at publication, for the empty-object fallback. Shared
  // across delta epochs (Link/Unlink republish in full).
  std::shared_ptr<const std::map<rel::TableId, std::vector<SummaryInstance*>>> links_;
  std::unordered_map<rel::TableId, rel::RowId> bounds_;
  std::shared_ptr<std::atomic<uint64_t>> retired_;
};

/// RAII pin on one epoch: holding the pointer keeps every row state, shard
/// and summary version of that epoch alive; dropping the last one retires
/// the epoch. Copyable (a parallel plan's workers share the query's pin).
using ReadSnapshot = std::shared_ptr<const EngineSnapshot>;

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_ENGINE_SNAPSHOT_H_
