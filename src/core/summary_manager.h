// SummaryManager: instance registry, instance<->relation links (the
// many-to-many of Figure 4), and incremental maintenance of the per-row
// summary objects as annotations stream in (Section 2.3).

#ifndef INSIGHTNOTES_CORE_SUMMARY_MANAGER_H_
#define INSIGHTNOTES_CORE_SUMMARY_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "annotation/annotation_store.h"
#include "common/result.h"
#include "core/summary_instance.h"
#include "core/summary_object.h"

namespace insightnotes::core {

class SummaryManager {
 public:
  /// `store` must outlive the manager.
  explicit SummaryManager(ann::AnnotationStore* store) : store_(store) {}

  SummaryManager(const SummaryManager&) = delete;
  SummaryManager& operator=(const SummaryManager&) = delete;

  // --- Instance registry (level 2) ---------------------------------------
  Status RegisterInstance(std::unique_ptr<SummaryInstance> instance);
  Result<SummaryInstance*> GetInstance(const std::string& name) const;
  std::vector<std::string> InstanceNames() const;

  // --- Links (instance <-> relation, many-to-many) ------------------------
  /// Linking an instance to a table summarizes all existing annotations on
  /// that table immediately and maintains them incrementally afterwards.
  Status Link(const std::string& instance_name, rel::TableId table);
  /// Unlinking drops the instance's objects on that table.
  Status Unlink(const std::string& instance_name, rel::TableId table);
  std::vector<SummaryInstance*> LinkedTo(rel::TableId table) const;
  bool IsLinked(const std::string& instance_name, rel::TableId table) const;

  // --- Incremental maintenance --------------------------------------------
  /// Folds annotation `id` (just attached to `region`) into the summary
  /// objects of that row for every linked instance. Archived annotations
  /// are skipped. Called by the engine after AnnotationStore::Add/Attach.
  Status OnAnnotationAttached(ann::AnnotationId id, const ann::CellRegion& region);

  /// Recomputes one row's objects from scratch (the non-incremental
  /// baseline of experiment E1, and the unarchive path).
  Status RebuildRow(rel::TableId table, rel::RowId row);

  /// Rebuilds every annotated row of `table`.
  Status RebuildTable(rel::TableId table);

  // --- Query-time access ----------------------------------------------------
  /// Deep copies of the row's summary objects (scan operators take these
  /// into the pipeline). Rows without annotations get empty objects, one
  /// per linked instance.
  Result<std::vector<std::unique_ptr<SummaryObject>>> SummariesFor(
      rel::TableId table, rel::RowId row) const;

  /// The maintained objects themselves (read-only), or nullptr if the row
  /// has none yet.
  const std::vector<std::unique_ptr<SummaryObject>>* RowObjects(
      rel::TableId table, rel::RowId row) const;

  uint64_t NumMaintainedRows() const { return objects_.size(); }

 private:
  using RowKey = std::pair<rel::TableId, rel::RowId>;

  /// Returns the row's object for `instance`, creating it if needed.
  SummaryObject* GetOrCreateObject(const RowKey& key, SummaryInstance* instance);

  ann::AnnotationStore* store_;
  std::map<std::string, std::unique_ptr<SummaryInstance>> instances_;
  std::map<rel::TableId, std::vector<SummaryInstance*>> links_;
  // Maintained per-row summary objects, one per linked instance.
  std::map<RowKey, std::vector<std::unique_ptr<SummaryObject>>> objects_;
};

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_SUMMARY_MANAGER_H_
