// SummaryManager: instance registry, instance<->relation links (the
// many-to-many of Figure 4), and incremental maintenance of the per-row
// summary objects as annotations stream in (Section 2.3).

#ifndef INSIGHTNOTES_CORE_SUMMARY_MANAGER_H_
#define INSIGHTNOTES_CORE_SUMMARY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "annotation/annotation_store.h"
#include "common/result.h"
#include "core/annotated_tuple.h"
#include "core/summary_instance.h"
#include "core/summary_object.h"

namespace insightnotes {
class ThreadPool;
}

namespace insightnotes::core {

/// One annotation of an ingest batch, fully materialized (body included) so
/// ingest shards never touch the annotation store's heap file.
struct BatchAnnotation {
  ann::Annotation note;
  ann::CellRegion region;
};

/// The mergeable summary half of a group / distinct-set entry: the summary
/// objects and attachment metadata of every tuple collapsed into the entry
/// so far. The serial operators fold tuples into it one at a time (Seed +
/// Fold); the parallel partial-state operators additionally Combine whole
/// per-morsel states in ascending morsel order, which re-associates the
/// same left-fold and therefore yields byte-identical merged summaries
/// (see DESIGN.md "Parallel aggregation, sort, and distinct").
///
/// `whole_row` selects the attachment semantics: aggregation collapses a
/// group to one output row whose attachments are whole-row references (the
/// per-column coverage of the source tuples is meaningless on the
/// aggregated row), while DISTINCT keeps per-column coverage and unions
/// column sets exactly like MergeForGrouping.
class PartialSummaryState {
 public:
  PartialSummaryState() = default;
  PartialSummaryState(PartialSummaryState&&) noexcept = default;
  PartialSummaryState& operator=(PartialSummaryState&&) noexcept = default;
  PartialSummaryState(const PartialSummaryState&) = delete;
  PartialSummaryState& operator=(const PartialSummaryState&) = delete;

  /// Adopts the first tuple of the entry: moves its summaries (and, for
  /// `whole_row == false`, its attachments) into the state; `first->tuple`
  /// is left untouched for the caller. `reserve_hint` pre-sizes the
  /// attachment merge buffer so folding duplicates does not reallocate per
  /// tuple.
  void Seed(AnnotatedTuple* first, bool whole_row, size_t reserve_hint);

  /// Folds one further tuple of the entry (a duplicate of the seed under
  /// the grouping key). Byte-identical to the serial merge path.
  Status Fold(const AnnotatedTuple& dup);

  /// Folds a whole later state (same key, later morsels) into this one.
  Status Combine(PartialSummaryState&& other);

  /// Moves the merged summaries and attachments onto `out`.
  void Release(AnnotatedTuple* out);

 private:
  bool whole_row_ = false;
  std::vector<std::unique_ptr<SummaryObject>> summaries_;
  std::vector<AttachmentInfo> attachments_;
};

class SummaryManager {
 public:
  /// `store` must outlive the manager.
  explicit SummaryManager(ann::AnnotationStore* store) : store_(store) {}

  SummaryManager(const SummaryManager&) = delete;
  SummaryManager& operator=(const SummaryManager&) = delete;

  // --- Instance registry (level 2) ---------------------------------------
  Status RegisterInstance(std::unique_ptr<SummaryInstance> instance);
  Result<SummaryInstance*> GetInstance(const std::string& name) const;
  std::vector<std::string> InstanceNames() const;

  // --- Links (instance <-> relation, many-to-many) ------------------------
  /// Linking an instance to a table summarizes all existing annotations on
  /// that table immediately and maintains them incrementally afterwards.
  Status Link(const std::string& instance_name, rel::TableId table);
  /// Unlinking drops the instance's objects on that table.
  Status Unlink(const std::string& instance_name, rel::TableId table);
  std::vector<SummaryInstance*> LinkedTo(rel::TableId table) const;
  bool IsLinked(const std::string& instance_name, rel::TableId table) const;
  /// Copy of the full link map (snapshot publication captures it so the
  /// empty-object fallback is evaluated against epoch-time links).
  std::map<rel::TableId, std::vector<SummaryInstance*>> AllLinks() const {
    return links_;
  }

  // --- Incremental maintenance --------------------------------------------
  /// Folds annotation `id` (just attached to `region`) into the summary
  /// objects of that row for every linked instance. Archived annotations
  /// are skipped. Called by the engine after AnnotationStore::Add/Attach.
  Status OnAnnotationAttached(ann::AnnotationId id, const ann::CellRegion& region);

  /// Folds a whole ingest batch into the maintained summary objects. With a
  /// null `pool` (or a single worker) items are folded serially in batch
  /// order — exactly N calls to the OnAnnotationAttached path. With a pool,
  /// ingestion is sharded by target row: per-tuple summary state is
  /// partitionable by row id, so shards own disjoint row sets and fold
  /// their rows' annotations in batch order. Cluster vocabulary growth is
  /// committed in a deterministic serial pre-pass (tokenization itself runs
  /// on the pool), so the resulting summary objects are byte-identical to a
  /// serial ingest of the same batch. On error the batch is not rolled
  /// back; affected rows can be repaired with RebuildRow.
  Status ApplyAnnotationBatch(const std::vector<BatchAnnotation>& batch,
                              ThreadPool* pool = nullptr);

  /// Recomputes one row's objects from scratch (the non-incremental
  /// baseline of experiment E1, and the unarchive path).
  Status RebuildRow(rel::TableId table, rel::RowId row);

  /// Rebuilds every annotated row of `table`.
  Status RebuildTable(rel::TableId table);

  // --- Query-time access ----------------------------------------------------
  /// Deep copies of the row's summary objects (scan operators take these
  /// into the pipeline). Rows without annotations get empty objects, one
  /// per linked instance.
  Result<std::vector<std::unique_ptr<SummaryObject>>> SummariesFor(
      rel::TableId table, rel::RowId row) const;

  /// The maintained objects themselves (read-only), or nullptr if the row
  /// has none yet.
  const std::vector<std::unique_ptr<SummaryObject>>* RowObjects(
      rel::TableId table, rel::RowId row) const;

  uint64_t NumMaintainedRows() const { return objects_.size(); }

  // --- Graceful degradation -------------------------------------------------
  /// When a summarizer fails on one annotation, the affected row's summary
  /// objects are marked stale and ingest continues; the raw annotation is
  /// already durable, so the summaries can be recomputed later. Stale rows
  /// still answer queries (with the last successfully folded state).

  /// True if the row's summary objects missed at least one annotation.
  bool IsStale(rel::TableId table, rel::RowId row) const;

  /// All currently stale rows, in (table, row) order.
  std::vector<std::pair<rel::TableId, rel::RowId>> StaleRows() const;

  /// Recomputes every stale row from the annotation store and clears its
  /// stale mark. Returns how many rows were repaired; a row whose rebuild
  /// fails again stays stale and the first error is returned.
  Result<size_t> RepairStale();

  /// Deterministic failure injection for tests: invoked before each
  /// summarizer fold with the instance name and the annotation; a non-OK
  /// return is treated as a summarizer failure for that fold.
  using SummarizerFaultHook =
      std::function<Status(const std::string& instance_name, const ann::Annotation& note)>;
  void SetSummarizerFaultHook(SummarizerFaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  using RowKey = std::pair<rel::TableId, rel::RowId>;

  /// Returns the row's object for `instance`, creating it if needed.
  SummaryObject* GetOrCreateObject(const RowKey& key, SummaryInstance* instance);

  /// Folds one materialized annotation into `row`'s objects for every
  /// linked instance (the shared core of OnAnnotationAttached and the batch
  /// path). Summarizer failures degrade to a stale mark, not an error.
  Status FoldAnnotation(const ann::Annotation& note, const ann::CellRegion& region);

  /// One summarizer fold: fault hook (if set), then AddAnnotation.
  Status ApplyToObject(SummaryObject* object, SummaryInstance* instance,
                       const ann::Annotation& note);

  void MarkStale(const RowKey& key);

  ann::AnnotationStore* store_;
  std::map<std::string, std::unique_ptr<SummaryInstance>> instances_;
  std::map<rel::TableId, std::vector<SummaryInstance*>> links_;
  // Maintained per-row summary objects, one per linked instance.
  std::map<RowKey, std::vector<std::unique_ptr<SummaryObject>>> objects_;
  // Rows whose objects missed a fold. Guarded by a mutex because phase-4
  // batch shards mark rows stale concurrently.
  mutable std::mutex stale_mutex_;
  std::set<RowKey> stale_rows_;
  SummarizerFaultHook fault_hook_;
};

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_SUMMARY_MANAGER_H_
