#include "core/summary_manager.h"

#include <algorithm>
#include <future>

#include "common/logging.h"
#include "common/thread_pool.h"

namespace insightnotes::core {

void PartialSummaryState::Seed(AnnotatedTuple* first, bool whole_row,
                               size_t reserve_hint) {
  whole_row_ = whole_row;
  summaries_ = std::move(first->summaries);
  if (whole_row) {
    // The group's output row carries whole-row references: strip the
    // per-column coverage of the seed tuple's attachments.
    attachments_.reserve(std::max(reserve_hint, first->attachments.size()));
    for (const AttachmentInfo& att : first->attachments) {
      attachments_.push_back(AttachmentInfo{att.id, {}});
    }
  } else {
    attachments_ = std::move(first->attachments);
    attachments_.reserve(std::max(reserve_hint, attachments_.size()));
  }
}

Status PartialSummaryState::Fold(const AnnotatedTuple& dup) {
  INSIGHTNOTES_RETURN_IF_ERROR(MergeSummaryLists(&summaries_, dup.summaries));
  if (whole_row_) {
    // Whole-row union: append each annotation id not seen yet. Equivalent
    // to stripping the duplicate's columns and running the full attachment
    // merge (all entries are whole-row, so unioning column sets is a
    // no-op), minus the per-duplicate allocation.
    for (const AttachmentInfo& att : dup.attachments) {
      bool seen = false;
      for (const AttachmentInfo& have : attachments_) {
        if (have.id == att.id) {
          seen = true;
          break;
        }
      }
      if (!seen) attachments_.push_back(AttachmentInfo{att.id, {}});
    }
    return Status::OK();
  }
  MergeAttachmentLists(&attachments_, dup.attachments, /*offset=*/0);
  return Status::OK();
}

Status PartialSummaryState::Combine(PartialSummaryState&& other) {
  INSIGHTNOTES_RETURN_IF_ERROR(MergeSummaryLists(&summaries_, other.summaries_));
  if (whole_row_) {
    attachments_.reserve(attachments_.size() + other.attachments_.size());
    for (const AttachmentInfo& att : other.attachments_) {
      bool seen = false;
      for (const AttachmentInfo& have : attachments_) {
        if (have.id == att.id) {
          seen = true;
          break;
        }
      }
      if (!seen) attachments_.push_back(AttachmentInfo{att.id, {}});
    }
    return Status::OK();
  }
  MergeAttachmentLists(&attachments_, other.attachments_, /*offset=*/0);
  return Status::OK();
}

void PartialSummaryState::Release(AnnotatedTuple* out) {
  out->summaries = std::move(summaries_);
  out->attachments = std::move(attachments_);
}

Status SummaryManager::RegisterInstance(std::unique_ptr<SummaryInstance> instance) {
  const std::string& name = instance->name();
  if (instances_.contains(name)) {
    return Status::AlreadyExists("summary instance '" + name + "' already registered");
  }
  instances_.emplace(name, std::move(instance));
  return Status::OK();
}

Result<SummaryInstance*> SummaryManager::GetInstance(const std::string& name) const {
  auto it = instances_.find(name);
  if (it == instances_.end()) {
    return Status::NotFound("summary instance '" + name + "' not registered");
  }
  return it->second.get();
}

std::vector<std::string> SummaryManager::InstanceNames() const {
  std::vector<std::string> names;
  names.reserve(instances_.size());
  for (const auto& [name, instance] : instances_) names.push_back(name);
  return names;
}

Status SummaryManager::Link(const std::string& instance_name, rel::TableId table) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(SummaryInstance * instance, GetInstance(instance_name));
  auto& linked = links_[table];
  if (std::find(linked.begin(), linked.end(), instance) != linked.end()) {
    return Status::AlreadyExists("instance '" + instance_name +
                                 "' already linked to table " + std::to_string(table));
  }
  linked.push_back(instance);
  // Summarize the table's existing annotations under the new instance.
  Status status = Status::OK();
  store_->ScanTable(table, [&](rel::RowId row, const ann::Attachment& att) {
    if (store_->IsArchived(att.annotation)) return true;
    auto note = store_->Get(att.annotation);
    if (!note.ok()) {
      status = note.status();
      return false;
    }
    SummaryObject* object = GetOrCreateObject(RowKey{table, row}, instance);
    Status s = ApplyToObject(object, instance, *note);
    if (!s.ok() && !s.IsAlreadyExists()) {
      MarkStale(RowKey{table, row});
      INSIGHTNOTES_LOG(Warning) << "summarizer '" << instance->name()
                                << "' failed while linking table " << table
                                << "; row " << row << " marked stale: " << s.ToString();
    }
    return true;
  });
  return status;
}

Status SummaryManager::Unlink(const std::string& instance_name, rel::TableId table) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(SummaryInstance * instance, GetInstance(instance_name));
  auto it = links_.find(table);
  if (it == links_.end()) {
    return Status::NotFound("instance '" + instance_name + "' not linked to table " +
                            std::to_string(table));
  }
  auto pos = std::find(it->second.begin(), it->second.end(), instance);
  if (pos == it->second.end()) {
    return Status::NotFound("instance '" + instance_name + "' not linked to table " +
                            std::to_string(table));
  }
  it->second.erase(pos);
  // Drop this instance's objects on the table.
  for (auto& [key, objects] : objects_) {
    if (key.first != table) continue;
    objects.erase(std::remove_if(objects.begin(), objects.end(),
                                 [&](const std::unique_ptr<SummaryObject>& o) {
                                   return o->instance() == instance;
                                 }),
                  objects.end());
  }
  return Status::OK();
}

std::vector<SummaryInstance*> SummaryManager::LinkedTo(rel::TableId table) const {
  auto it = links_.find(table);
  return it == links_.end() ? std::vector<SummaryInstance*>{} : it->second;
}

bool SummaryManager::IsLinked(const std::string& instance_name,
                              rel::TableId table) const {
  auto instance = GetInstance(instance_name);
  if (!instance.ok()) return false;
  auto it = links_.find(table);
  if (it == links_.end()) return false;
  return std::find(it->second.begin(), it->second.end(), *instance) != it->second.end();
}

Status SummaryManager::OnAnnotationAttached(ann::AnnotationId id,
                                            const ann::CellRegion& region) {
  if (store_->IsArchived(id)) return Status::OK();
  if (LinkedTo(region.table).empty()) return Status::OK();
  INSIGHTNOTES_ASSIGN_OR_RETURN(ann::Annotation note, store_->Get(id));
  return FoldAnnotation(note, region);
}

Status SummaryManager::FoldAnnotation(const ann::Annotation& note,
                                      const ann::CellRegion& region) {
  RowKey key{region.table, region.row};
  for (SummaryInstance* instance : LinkedTo(region.table)) {
    SummaryObject* object = GetOrCreateObject(key, instance);
    Status s = ApplyToObject(object, instance, note);
    // Re-attachment to the same row (column-set growth) is not an error. A
    // genuine summarizer failure degrades to a stale mark: the annotation
    // itself is durable, so the row can be repaired later.
    if (!s.ok() && !s.IsAlreadyExists()) {
      MarkStale(key);
      INSIGHTNOTES_LOG(Warning) << "summarizer '" << instance->name()
                                << "' failed on annotation " << note.id << "; row ("
                                << region.table << ", " << region.row
                                << ") marked stale: " << s.ToString();
    }
  }
  return Status::OK();
}

Status SummaryManager::ApplyToObject(SummaryObject* object, SummaryInstance* instance,
                                     const ann::Annotation& note) {
  if (fault_hook_) {
    INSIGHTNOTES_RETURN_IF_ERROR(fault_hook_(instance->name(), note));
  }
  return object->AddAnnotation(note);
}

void SummaryManager::MarkStale(const RowKey& key) {
  std::lock_guard<std::mutex> lock(stale_mutex_);
  stale_rows_.insert(key);
}

bool SummaryManager::IsStale(rel::TableId table, rel::RowId row) const {
  std::lock_guard<std::mutex> lock(stale_mutex_);
  return stale_rows_.contains(RowKey{table, row});
}

std::vector<std::pair<rel::TableId, rel::RowId>> SummaryManager::StaleRows() const {
  std::lock_guard<std::mutex> lock(stale_mutex_);
  return {stale_rows_.begin(), stale_rows_.end()};
}

Result<size_t> SummaryManager::RepairStale() {
  std::vector<RowKey> rows;
  {
    std::lock_guard<std::mutex> lock(stale_mutex_);
    rows.assign(stale_rows_.begin(), stale_rows_.end());
  }
  size_t repaired = 0;
  Status first_error = Status::OK();
  for (const RowKey& key : rows) {
    Status s = RebuildRow(key.first, key.second);
    if (s.ok()) {
      std::lock_guard<std::mutex> lock(stale_mutex_);
      stale_rows_.erase(key);
      ++repaired;
    } else if (first_error.ok()) {
      first_error = s;  // Row stays stale for the next repair attempt.
    }
  }
  if (!first_error.ok()) return first_error;
  return repaired;
}

Status SummaryManager::ApplyAnnotationBatch(const std::vector<BatchAnnotation>& batch,
                                            ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() <= 1 || batch.size() <= 1) {
    for (const BatchAnnotation& item : batch) {
      if (item.note.archived || store_->IsArchived(item.note.id)) continue;
      INSIGHTNOTES_RETURN_IF_ERROR(FoldAnnotation(item.note, item.region));
    }
    return Status::OK();
  }

  // Per-item ingest plan: which instances maintain the target table, and
  // (for cluster instances) the parallel-tokenized body.
  struct ItemPlan {
    bool skip = false;
    std::vector<SummaryInstance*> linked;
    // tokens[k] corresponds to linked[k]; non-empty only for kCluster.
    std::vector<std::vector<std::string>> tokens;
  };
  std::vector<ItemPlan> plans(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    const BatchAnnotation& item = batch[i];
    ItemPlan& plan = plans[i];
    plan.linked = LinkedTo(item.region.table);
    plan.skip = plan.linked.empty() || item.note.archived ||
                store_->IsArchived(item.note.id);
    if (!plan.skip) plan.tokens.resize(plan.linked.size());
  }

  // Phase 1 — parallel tokenization (pure; no shared state).
  const size_t num_shards = pool->num_threads();
  {
    std::vector<std::future<void>> done;
    size_t chunk = (batch.size() + num_shards - 1) / num_shards;
    for (size_t begin = 0; begin < batch.size(); begin += chunk) {
      size_t end = std::min(batch.size(), begin + chunk);
      done.push_back(pool->Submit([&batch, &plans, begin, end]() {
        for (size_t i = begin; i < end; ++i) {
          if (plans[i].skip) continue;
          for (size_t k = 0; k < plans[i].linked.size(); ++k) {
            if (plans[i].linked[k]->type() != SummaryTypeKind::kCluster) continue;
            plans[i].tokens[k] = plans[i].linked[k]->TokenizeBody(batch[i].note);
          }
        }
      }));
    }
    for (auto& f : done) f.get();
  }

  // Phase 2 — serial, batch-order vocabulary fold: term ids end up exactly
  // as a serial ingest would assign them (determinism guarantee), and the
  // vectorize-once caches are warm before the shards start.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (plans[i].skip) continue;
    for (size_t k = 0; k < plans[i].linked.size(); ++k) {
      if (plans[i].linked[k]->type() != SummaryTypeKind::kCluster) continue;
      plans[i].linked[k]->CommitTokens(batch[i].note.id, plans[i].tokens[k]);
    }
  }

  // Phase 3 — serial object creation, so the objects_ map is structurally
  // frozen while shards mutate disjoint rows' objects.
  for (size_t i = 0; i < batch.size(); ++i) {
    if (plans[i].skip) continue;
    RowKey key{batch[i].region.table, batch[i].region.row};
    for (SummaryInstance* instance : plans[i].linked) {
      GetOrCreateObject(key, instance);
    }
  }

  // Phase 4 — sharded fold. Shard ownership is by row id, so every object
  // is mutated by exactly one shard, and each shard folds its rows'
  // annotations in batch order — the same per-row order a serial ingest
  // applies.
  std::vector<std::future<Status>> shards;
  shards.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards.push_back(pool->Submit([this, &batch, &plans, s, num_shards]() -> Status {
      for (size_t i = 0; i < batch.size(); ++i) {
        if (plans[i].skip) continue;
        if (batch[i].region.row % num_shards != s) continue;
        auto it = objects_.find(RowKey{batch[i].region.table, batch[i].region.row});
        if (it == objects_.end()) {
          return Status::Internal("batch ingest: row objects missing");
        }
        for (SummaryInstance* instance : plans[i].linked) {
          SummaryObject* object = nullptr;
          for (const auto& candidate : it->second) {
            if (candidate->instance() == instance) {
              object = candidate.get();
              break;
            }
          }
          if (object == nullptr) {
            return Status::Internal("batch ingest: object missing for instance '" +
                                    instance->name() + "'");
          }
          Status st = ApplyToObject(object, instance, batch[i].note);
          if (!st.ok() && !st.IsAlreadyExists()) {
            // Per-tuple summarizer failure degrades to a stale mark instead
            // of failing the whole batch (MarkStale is mutex-guarded).
            MarkStale(RowKey{batch[i].region.table, batch[i].region.row});
            INSIGHTNOTES_LOG(Warning)
                << "summarizer '" << instance->name() << "' failed on annotation "
                << batch[i].note.id << " during batch ingest; row ("
                << batch[i].region.table << ", " << batch[i].region.row
                << ") marked stale: " << st.ToString();
          }
        }
      }
      return Status::OK();
    }));
  }
  Status result = Status::OK();
  for (auto& f : shards) {
    Status s = f.get();
    if (result.ok() && !s.ok()) result = s;
  }
  return result;
}

Status SummaryManager::RebuildRow(rel::TableId table, rel::RowId row) {
  RowKey key{table, row};
  objects_.erase(key);
  for (const ann::Attachment& att : store_->OnRow(table, row)) {
    if (store_->IsArchived(att.annotation)) continue;
    INSIGHTNOTES_ASSIGN_OR_RETURN(ann::Annotation note, store_->Get(att.annotation));
    for (SummaryInstance* instance : LinkedTo(table)) {
      SummaryObject* object = GetOrCreateObject(key, instance);
      // Rebuild propagates summarizer errors (no degradation): RepairStale
      // relies on it to tell a repaired row from one that is still failing.
      Status s = ApplyToObject(object, instance, note);
      if (!s.ok() && !s.IsAlreadyExists()) return s;
    }
  }
  return Status::OK();
}

Status SummaryManager::RebuildTable(rel::TableId table) {
  std::vector<rel::RowId> rows;
  store_->ScanTable(table, [&](rel::RowId row, const ann::Attachment&) {
    if (rows.empty() || rows.back() != row) rows.push_back(row);
    return true;
  });
  // Also clear rows whose objects exist but no longer have annotations.
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->first.first == table &&
        !std::binary_search(rows.begin(), rows.end(), it->first.second)) {
      it = objects_.erase(it);
    } else {
      ++it;
    }
  }
  for (rel::RowId row : rows) {
    INSIGHTNOTES_RETURN_IF_ERROR(RebuildRow(table, row));
  }
  return Status::OK();
}

Result<std::vector<std::unique_ptr<SummaryObject>>> SummaryManager::SummariesFor(
    rel::TableId table, rel::RowId row) const {
  std::vector<std::unique_ptr<SummaryObject>> out;
  const auto* maintained = RowObjects(table, row);
  if (maintained != nullptr) {
    out.reserve(maintained->size());
    for (const auto& object : *maintained) out.push_back(object->Clone());
    return out;
  }
  // No annotations yet: empty objects, one per linked instance, so queries
  // always see a uniform summary shape.
  for (SummaryInstance* instance : LinkedTo(table)) {
    out.push_back(instance->NewObject());
  }
  return out;
}

const std::vector<std::unique_ptr<SummaryObject>>* SummaryManager::RowObjects(
    rel::TableId table, rel::RowId row) const {
  auto it = objects_.find(RowKey{table, row});
  return it == objects_.end() ? nullptr : &it->second;
}

SummaryObject* SummaryManager::GetOrCreateObject(const RowKey& key,
                                                 SummaryInstance* instance) {
  auto& objects = objects_[key];
  for (const auto& object : objects) {
    if (object->instance() == instance) return object.get();
  }
  objects.push_back(instance->NewObject());
  return objects.back().get();
}

}  // namespace insightnotes::core
