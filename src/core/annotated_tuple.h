// AnnotatedTuple: the unit flowing through InsightNotes' extended query
// pipeline — a data tuple plus (a) its summary objects and (b) compact
// attachment metadata (annotation id -> covered column positions). The
// metadata is what lets the projection operator trim exactly the
// annotations whose columns were projected out, and lets joins avoid double
// counting annotations shared by both inputs, all without touching the raw
// annotation repository (Section 2.1).

#ifndef INSIGHTNOTES_CORE_ANNOTATED_TUPLE_H_
#define INSIGHTNOTES_CORE_ANNOTATED_TUPLE_H_

#include <memory>
#include <string_view>
#include <vector>

#include "annotation/annotation.h"
#include "common/result.h"
#include "core/summary_object.h"
#include "rel/tuple.h"

namespace insightnotes::core {

/// One annotation's coverage of the tuple, in *current output schema*
/// positions. Empty `columns` = whole-row: survives every projection.
struct AttachmentInfo {
  ann::AnnotationId id = ann::kInvalidAnnotationId;
  std::vector<size_t> columns;

  friend bool operator==(const AttachmentInfo&, const AttachmentInfo&) = default;
};

/// Move-only; use Clone() for explicit deep copies (summary objects are
/// owned polymorphic state).
class AnnotatedTuple {
 public:
  AnnotatedTuple() = default;
  explicit AnnotatedTuple(rel::Tuple tuple) : tuple(std::move(tuple)) {}

  AnnotatedTuple(AnnotatedTuple&&) noexcept = default;
  AnnotatedTuple& operator=(AnnotatedTuple&&) noexcept = default;
  AnnotatedTuple(const AnnotatedTuple&) = delete;
  AnnotatedTuple& operator=(const AnnotatedTuple&) = delete;

  AnnotatedTuple Clone() const;

  /// Summary object produced by instance `name`, or nullptr.
  SummaryObject* FindSummary(std::string_view name) const;

  /// Attachment record for annotation `id`, or nullptr.
  AttachmentInfo* FindAttachment(ann::AnnotationId id);

  rel::Tuple tuple;
  std::vector<std::unique_ptr<SummaryObject>> summaries;
  std::vector<AttachmentInfo> attachments;

  /// Scan-position ranks stamped by the leaf scans of a *reordered* plan
  /// (cost-based join reorder): one entry per base table in join
  /// contribution order, each the row's emission position within its scan.
  /// MergeAnnotatedTuples concatenates them; the RestoreOrderOperator above
  /// the joins sorts by these keys permuted back into FROM order — making
  /// the reordered plan's output byte-identical to the canonical left-deep
  /// FROM-order plan — then clears them. Empty in non-reordered plans
  /// (zero overhead on the default path).
  std::vector<uint32_t> order_ranks;
};

/// A run of AnnotatedTuples moved through the batch-at-a-time operator
/// interface. `morsel` tags the scan morsel the batch descends from: the
/// parallel executor's gather stage re-serializes worker output by this
/// index, which is what makes parallel results byte-identical to serial
/// execution (each per-tuple pipeline stage maps one input batch to one
/// output batch, so the tag survives the whole pipeline section).
struct AnnotatedBatch {
  std::vector<AnnotatedTuple> tuples;
  uint64_t morsel = 0;

  void Clear() {
    tuples.clear();
    morsel = 0;
  }
};

/// Join-merge (Figure 2 step 3): appends `right`'s values to `left`,
/// merges counterpart summary objects (matched by instance) without double
/// counting shared annotations, unions non-counterpart objects, and merges
/// attachment metadata with `right`'s column positions shifted by `left`'s
/// original width. `left` is modified in place.
Status MergeAnnotatedTuples(AnnotatedTuple* left, const AnnotatedTuple& right);

/// Grouping/duplicate-elimination merge: like the join merge but the data
/// tuple of `into` is kept as-is and attachment column positions are
/// preserved (the inputs share one schema).
Status MergeForGrouping(AnnotatedTuple* into, const AnnotatedTuple& other);

/// The summary half of the merges above: counterpart objects (same
/// instance) combine via MergeWith, objects without a counterpart are
/// cloned in. The partial-state operators fold per-morsel summary lists
/// through this, so partial merging stays byte-identical to the serial
/// per-tuple fold.
Status MergeSummaryLists(std::vector<std::unique_ptr<SummaryObject>>* into,
                         const std::vector<std::unique_ptr<SummaryObject>>& incoming);

/// The attachment half: merges `incoming` into `list`, shifting incoming
/// column positions by `offset`. An annotation present on both sides keeps
/// one entry with the union of covered columns; whole-row coverage (empty
/// set) absorbs column sets. First-seen order of annotation ids is
/// preserved.
void MergeAttachmentLists(std::vector<AttachmentInfo>* list,
                          const std::vector<AttachmentInfo>& incoming, size_t offset);

/// Coarse byte estimates for the per-query memory budget (see
/// exec/query_context.h). Summary objects are polymorphic, so each is
/// costed at a flat per-object figure rather than walked; the estimate
/// only needs to scale with materialized state, not be exact.
size_t ApproxBytes(const rel::Tuple& tuple);
size_t ApproxBytes(const AnnotatedTuple& tuple);
size_t ApproxBytes(const AnnotatedBatch& batch);

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_ANNOTATED_TUPLE_H_
