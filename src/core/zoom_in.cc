#include "core/zoom_in.h"

#include <cstring>

namespace insightnotes::core {

namespace {

void PutU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Result<uint32_t> GetU32(std::string_view in, size_t* offset) {
  if (*offset + sizeof(uint32_t) > in.size()) {
    return Status::ParseError("snapshot: truncated u32");
  }
  uint32_t v;
  std::memcpy(&v, in.data() + *offset, sizeof(v));
  *offset += sizeof(v);
  return v;
}

Result<uint64_t> GetU64(std::string_view in, size_t* offset) {
  if (*offset + sizeof(uint64_t) > in.size()) {
    return Status::ParseError("snapshot: truncated u64");
  }
  uint64_t v;
  std::memcpy(&v, in.data() + *offset, sizeof(v));
  *offset += sizeof(v);
  return v;
}

Result<std::string> GetString(std::string_view in, size_t* offset) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(uint32_t len, GetU32(in, offset));
  if (*offset + len > in.size()) {
    return Status::ParseError("snapshot: truncated string");
  }
  std::string s(in.substr(*offset, len));
  *offset += len;
  return s;
}

}  // namespace

Result<ResultSnapshot> ResultSnapshot::Capture(
    const rel::Schema& schema, const std::vector<AnnotatedTuple>& tuples) {
  ResultSnapshot snapshot;
  snapshot.column_names.reserve(schema.NumColumns());
  for (const rel::Column& c : schema.columns()) {
    snapshot.column_names.push_back(c.QualifiedName());
  }
  snapshot.rows.reserve(tuples.size());
  for (const AnnotatedTuple& t : tuples) {
    RowSnapshot row;
    row.tuple = t.tuple;
    row.summaries.reserve(t.summaries.size());
    for (const auto& object : t.summaries) {
      SummarySnapshot s;
      s.instance = object->instance_name();
      s.rendered = object->Render();
      size_t n = object->NumComponents();
      s.components.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        ComponentSnapshot component;
        INSIGHTNOTES_ASSIGN_OR_RETURN(component.label, object->ComponentLabel(i));
        INSIGHTNOTES_ASSIGN_OR_RETURN(component.ids, object->ZoomIn(i));
        s.components.push_back(std::move(component));
      }
      row.summaries.push_back(std::move(s));
    }
    snapshot.rows.push_back(std::move(row));
  }
  return snapshot;
}

void ResultSnapshot::Serialize(std::string* out) const {
  PutU32(out, static_cast<uint32_t>(column_names.size()));
  for (const std::string& name : column_names) PutString(out, name);
  PutU32(out, static_cast<uint32_t>(rows.size()));
  for (const RowSnapshot& row : rows) {
    row.tuple.Serialize(out);
    PutU32(out, static_cast<uint32_t>(row.summaries.size()));
    for (const SummarySnapshot& s : row.summaries) {
      PutString(out, s.instance);
      PutString(out, s.rendered);
      PutU32(out, static_cast<uint32_t>(s.components.size()));
      for (const ComponentSnapshot& c : s.components) {
        PutString(out, c.label);
        PutU32(out, static_cast<uint32_t>(c.ids.size()));
        for (ann::AnnotationId id : c.ids) PutU64(out, id);
      }
    }
  }
}

Result<ResultSnapshot> ResultSnapshot::Deserialize(std::string_view in) {
  ResultSnapshot snapshot;
  size_t offset = 0;
  INSIGHTNOTES_ASSIGN_OR_RETURN(uint32_t num_columns, GetU32(in, &offset));
  snapshot.column_names.reserve(num_columns);
  for (uint32_t i = 0; i < num_columns; ++i) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(std::string name, GetString(in, &offset));
    snapshot.column_names.push_back(std::move(name));
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(uint32_t num_rows, GetU32(in, &offset));
  snapshot.rows.reserve(num_rows);
  for (uint32_t r = 0; r < num_rows; ++r) {
    RowSnapshot row;
    // Tuple::Deserialize consumes from the front: hand it the remaining
    // view, then recompute the offset from the re-serialized length.
    INSIGHTNOTES_ASSIGN_OR_RETURN(row.tuple, rel::Tuple::Deserialize(in.substr(offset)));
    std::string reserialized;
    row.tuple.Serialize(&reserialized);
    offset += reserialized.size();
    INSIGHTNOTES_ASSIGN_OR_RETURN(uint32_t num_summaries, GetU32(in, &offset));
    row.summaries.reserve(num_summaries);
    for (uint32_t s = 0; s < num_summaries; ++s) {
      SummarySnapshot summary;
      INSIGHTNOTES_ASSIGN_OR_RETURN(summary.instance, GetString(in, &offset));
      INSIGHTNOTES_ASSIGN_OR_RETURN(summary.rendered, GetString(in, &offset));
      INSIGHTNOTES_ASSIGN_OR_RETURN(uint32_t num_components, GetU32(in, &offset));
      summary.components.reserve(num_components);
      for (uint32_t c = 0; c < num_components; ++c) {
        ComponentSnapshot component;
        INSIGHTNOTES_ASSIGN_OR_RETURN(component.label, GetString(in, &offset));
        INSIGHTNOTES_ASSIGN_OR_RETURN(uint32_t num_ids, GetU32(in, &offset));
        component.ids.reserve(num_ids);
        for (uint32_t i = 0; i < num_ids; ++i) {
          INSIGHTNOTES_ASSIGN_OR_RETURN(uint64_t id, GetU64(in, &offset));
          component.ids.push_back(id);
        }
        summary.components.push_back(std::move(component));
      }
      row.summaries.push_back(std::move(summary));
    }
    snapshot.rows.push_back(std::move(row));
  }
  return snapshot;
}

size_t ResultSnapshot::SizeBytes() const {
  std::string bytes;
  Serialize(&bytes);
  return bytes.size();
}

Result<std::vector<std::pair<size_t, ComponentSnapshot>>> ResolveZoomIn(
    const ResultSnapshot& snapshot, const ZoomInRequest& request) {
  std::vector<std::pair<size_t, ComponentSnapshot>> out;
  for (size_t r = 0; r < snapshot.rows.size(); ++r) {
    const RowSnapshot& row = snapshot.rows[r];
    if (request.predicate != nullptr) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(bool pass, request.predicate->EvaluateBool(row.tuple));
      if (!pass) continue;
    }
    const SummarySnapshot* target = nullptr;
    for (const SummarySnapshot& s : row.summaries) {
      if (s.instance == request.instance_name) {
        target = &s;
        break;
      }
    }
    if (target == nullptr) {
      return Status::NotFound("result has no summary object of instance '" +
                              request.instance_name + "'");
    }
    if (request.component_index >= target->components.size()) {
      // Rows where the component is absent (e.g. fewer cluster groups)
      // contribute nothing rather than failing the whole command.
      continue;
    }
    out.emplace_back(r, target->components[request.component_index]);
  }
  return out;
}

}  // namespace insightnotes::core
