#include "core/summary_type.h"

namespace insightnotes::core {

std::string_view SummaryTypeKindToString(SummaryTypeKind kind) {
  switch (kind) {
    case SummaryTypeKind::kClassifier:
      return "Classifier";
    case SummaryTypeKind::kCluster:
      return "Cluster";
    case SummaryTypeKind::kSnippet:
      return "Snippet";
  }
  return "?";
}

}  // namespace insightnotes::core
