#include "core/rco_cache.h"

#include <algorithm>
#include <cstdio>

namespace insightnotes::core {

std::string_view CachePolicyToString(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone:
      return "none";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kLfu:
      return "lfu";
    case CachePolicy::kRco:
      return "rco";
  }
  return "?";
}

ZoomInCache::ZoomInCache(CachePolicy policy, size_t budget_bytes,
                         const std::string& path, RcoWeights weights)
    : policy_(policy), budget_(budget_bytes), weights_(weights), path_(path) {}

ZoomInCache::~ZoomInCache() {
  heap_.reset();
  pool_.reset();
  Status s = disk_.Close();
  (void)s;
  if (!path_.empty()) std::remove(path_.c_str());
}

Status ZoomInCache::Init() {
  INSIGHTNOTES_RETURN_IF_ERROR(disk_.Open(path_));
  // A small frame pool: cache entries stream through rather than reside.
  pool_ = std::make_unique<storage::BufferPool>(&disk_, 64);
  heap_ = std::make_unique<storage::HeapFile>(pool_.get());
  return Status::OK();
}

std::array<std::unique_lock<std::mutex>, ZoomInCache::kNumShards>
ZoomInCache::LockAll() const {
  std::array<std::unique_lock<std::mutex>, kNumShards> locks;
  for (size_t i = 0; i < kNumShards; ++i) {
    locks[i] = std::unique_lock<std::mutex>(shards_[i].mutex);
  }
  return locks;
}

size_t ZoomInCache::NumEntriesLocked() const {
  size_t n = 0;
  for (const Shard& shard : shards_) n += shard.entries.size();
  return n;
}

Status ZoomInCache::Put(QueryId qid, const ResultSnapshot& snapshot,
                        double cost_seconds, uint64_t epoch) {
  if (policy_ == CachePolicy::kNone) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();
  }
  if (heap_ == nullptr) return Status::Internal("cache not initialized");
  std::string bytes;
  snapshot.Serialize(&bytes);
  if (bytes.size() > budget_) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();  // Larger than the whole cache: never admitted.
  }
  // Insertion needs the global directory view (eviction scans every shard),
  // so it takes all shard mutexes; concurrent Gets on other shards proceed.
  auto locks = LockAll();
  Shard& home = shards_[ShardOf(qid)];
  // An existing entry for the same qid is replaced, but it must stay
  // readable until the replacement has fully succeeded: it is pinned
  // against eviction (MakeRoom skips it) and its bytes are discounted from
  // the room calculation since they are reclaimed below.
  auto existing = home.entries.find(qid);
  size_t reclaimable = existing != home.entries.end() ? existing->second.size : 0;
  const QueryId* pinned = existing != home.entries.end() ? &qid : nullptr;
  if (!MakeRoom(bytes.size(), reclaimable, pinned)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Status::OK();  // Old snapshot (if any) remains readable.
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::RecordId record, heap_->Append(bytes));
  if (existing != home.entries.end()) {
    // The replacement is durable; now drop the old backing record.
    Status s = heap_->Delete(existing->second.record);
    bytes_used_.fetch_sub(existing->second.size, std::memory_order_relaxed);
    home.entries.erase(existing);
    if (!s.ok()) return s;
  }
  Entry entry;
  entry.record = record;
  entry.size = bytes.size();
  entry.cost = cost_seconds;
  entry.epoch = epoch;
  entry.last_ref = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  entry.ref_count = 1;
  home.entries[qid] = entry;
  bytes_used_.fetch_add(entry.size, std::memory_order_relaxed);
  insertions_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Result<ResultSnapshot> ZoomInCache::Get(QueryId qid, uint64_t epoch) {
  Shard& home = shards_[ShardOf(qid)];
  // The shard mutex is held across the backing read: Put/eviction take all
  // shard mutexes, so the record cannot be deleted from under us.
  std::unique_lock<std::mutex> lock(home.mutex);
  auto it = home.entries.find(qid);
  if (it == home.entries.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("result " + std::to_string(qid) + " not cached");
  }
  if (epoch != kAnyEpoch && it->second.epoch != kAnyEpoch &&
      it->second.epoch != epoch) {
    // Cached at a different epoch than the caller pinned: serving it would
    // mix summary versions, so it is a miss (the caller re-executes).
    misses_.fetch_add(1, std::memory_order_relaxed);
    return Status::NotFound("result " + std::to_string(qid) + " cached at epoch " +
                            std::to_string(it->second.epoch) + ", not " +
                            std::to_string(epoch));
  }
  // Read first: the hit is counted and recency/frequency bumped only for a
  // snapshot the caller actually receives. A failed backing read (or a
  // corrupt snapshot) is a miss and leaves the entry's metadata untouched.
  auto bytes = heap_->Get(it->second.record);
  if (!bytes.ok()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return bytes.status();
  }
  auto snapshot = ResultSnapshot::Deserialize(*bytes);
  if (!snapshot.ok()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return snapshot.status();
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  it->second.last_ref = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
  ++it->second.ref_count;
  return snapshot;
}

Status ZoomInCache::CorruptBackingRecordForTest(QueryId qid) {
  Shard& home = shards_[ShardOf(qid)];
  std::unique_lock<std::mutex> lock(home.mutex);
  auto it = home.entries.find(qid);
  if (it == home.entries.end()) {
    return Status::NotFound("result " + std::to_string(qid) + " not cached");
  }
  return heap_->Delete(it->second.record);
}

bool ZoomInCache::Contains(QueryId qid) const {
  const Shard& home = shards_[ShardOf(qid)];
  std::unique_lock<std::mutex> lock(home.mutex);
  return home.entries.contains(qid);
}

CacheStats ZoomInCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.bytes_used = bytes_used_.load(std::memory_order_relaxed);
  return s;
}

bool ZoomInCache::MakeRoom(size_t needed, size_t reclaimable, const QueryId* exclude) {
  while (bytes_used_.load(std::memory_order_relaxed) - reclaimable + needed >
         budget_) {
    // The pinned entry (the one being replaced) is not an eviction
    // candidate.
    if (NumEntriesLocked() <= (exclude != nullptr ? 1u : 0u)) return false;
    QueryId victim = PickVictim(exclude);
    Shard& shard = shards_[ShardOf(victim)];
    auto it = shard.entries.find(victim);
    Status s = heap_->Delete(it->second.record);
    if (!s.ok()) return false;
    bytes_used_.fetch_sub(it->second.size, std::memory_order_relaxed);
    shard.entries.erase(it);
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

QueryId ZoomInCache::PickVictim(const QueryId* exclude) const {
  // Hoisted normalization pre-pass: one O(n) scan per eviction instead of
  // one per candidate (PickVictim used to be O(n^2) under kRco).
  double max_cost = 1e-9;
  size_t max_size = 1;
  if (policy_ == CachePolicy::kRco) {
    for (const Shard& shard : shards_) {
      for (const auto& [qid, e] : shard.entries) {
        max_cost = std::max(max_cost, e.cost);
        max_size = std::max(max_size, e.size);
      }
    }
  }
  // Ties break toward the smaller qid: shards are iterated out of qid
  // order, so the tie-break must be explicit to keep victim selection
  // deterministic (and identical to the pre-sharding single-map scan).
  bool have_victim = false;
  QueryId victim = 0;
  uint64_t best_tick = 0;
  double best_score = 0.0;
  for (const Shard& shard : shards_) {
    for (const auto& [qid, e] : shard.entries) {
      if (exclude != nullptr && qid == *exclude) continue;
      switch (policy_) {
        case CachePolicy::kLru:
          if (!have_victim || e.last_ref < best_tick ||
              (e.last_ref == best_tick && qid < victim)) {
            best_tick = e.last_ref;
            victim = qid;
          }
          break;
        case CachePolicy::kLfu:
          if (!have_victim || e.ref_count < best_tick ||
              (e.ref_count == best_tick && qid < victim)) {
            best_tick = e.ref_count;
            victim = qid;
          }
          break;
        case CachePolicy::kRco: {
          double score = RcoScore(e, max_cost, max_size);
          if (!have_victim || score < best_score ||
              (score == best_score && qid < victim)) {
            best_score = score;
            victim = qid;
          }
          break;
        }
        case CachePolicy::kNone:
          if (!have_victim || qid < victim) victim = qid;
          break;
      }
      have_victim = true;
    }
  }
  return victim;
}

double ZoomInCache::RcoScore(const Entry& e, double max_cost, size_t max_size) const {
  // Recency in (0, 1]: 1 for the most recent reference.
  double age =
      static_cast<double>(tick_.load(std::memory_order_relaxed) - e.last_ref);
  double recency = 1.0 / (1.0 + age);
  double complexity = e.cost / max_cost;
  double overhead = static_cast<double>(e.size) / static_cast<double>(max_size);
  return weights_.recency * recency + weights_.complexity * complexity -
         weights_.overhead * overhead;
}

}  // namespace insightnotes::core
