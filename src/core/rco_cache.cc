#include "core/rco_cache.h"

#include <algorithm>
#include <cstdio>

namespace insightnotes::core {

std::string_view CachePolicyToString(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone:
      return "none";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kLfu:
      return "lfu";
    case CachePolicy::kRco:
      return "rco";
  }
  return "?";
}

ZoomInCache::ZoomInCache(CachePolicy policy, size_t budget_bytes,
                         const std::string& path, RcoWeights weights)
    : policy_(policy), budget_(budget_bytes), weights_(weights), path_(path) {}

ZoomInCache::~ZoomInCache() {
  heap_.reset();
  pool_.reset();
  Status s = disk_.Close();
  (void)s;
  if (!path_.empty()) std::remove(path_.c_str());
}

Status ZoomInCache::Init() {
  INSIGHTNOTES_RETURN_IF_ERROR(disk_.Open(path_));
  // A small frame pool: cache entries stream through rather than reside.
  pool_ = std::make_unique<storage::BufferPool>(&disk_, 64);
  heap_ = std::make_unique<storage::HeapFile>(pool_.get());
  return Status::OK();
}

Status ZoomInCache::Put(QueryId qid, const ResultSnapshot& snapshot,
                        double cost_seconds) {
  if (policy_ == CachePolicy::kNone) {
    ++stats_.rejected;
    return Status::OK();
  }
  if (heap_ == nullptr) return Status::Internal("cache not initialized");
  std::string bytes;
  snapshot.Serialize(&bytes);
  if (bytes.size() > budget_) {
    ++stats_.rejected;
    return Status::OK();  // Larger than the whole cache: never admitted.
  }
  // Replace an existing entry for the same result.
  if (auto it = entries_.find(qid); it != entries_.end()) {
    INSIGHTNOTES_RETURN_IF_ERROR(heap_->Delete(it->second.record));
    stats_.bytes_used -= it->second.size;
    entries_.erase(it);
  }
  if (!MakeRoom(bytes.size())) {
    ++stats_.rejected;
    return Status::OK();
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::RecordId record, heap_->Append(bytes));
  Entry entry;
  entry.record = record;
  entry.size = bytes.size();
  entry.cost = cost_seconds;
  entry.last_ref = ++tick_;
  entry.ref_count = 1;
  entries_[qid] = entry;
  stats_.bytes_used += entry.size;
  ++stats_.insertions;
  return Status::OK();
}

Result<ResultSnapshot> ZoomInCache::Get(QueryId qid) {
  auto it = entries_.find(qid);
  if (it == entries_.end()) {
    ++stats_.misses;
    return Status::NotFound("result " + std::to_string(qid) + " not cached");
  }
  ++stats_.hits;
  it->second.last_ref = ++tick_;
  ++it->second.ref_count;
  INSIGHTNOTES_ASSIGN_OR_RETURN(std::string bytes, heap_->Get(it->second.record));
  return ResultSnapshot::Deserialize(bytes);
}

bool ZoomInCache::MakeRoom(size_t needed) {
  while (stats_.bytes_used + needed > budget_) {
    if (entries_.empty()) return false;
    QueryId victim = PickVictim();
    auto it = entries_.find(victim);
    Status s = heap_->Delete(it->second.record);
    if (!s.ok()) return false;
    stats_.bytes_used -= it->second.size;
    entries_.erase(it);
    ++stats_.evictions;
  }
  return true;
}

QueryId ZoomInCache::PickVictim() const {
  QueryId victim = entries_.begin()->first;
  switch (policy_) {
    case CachePolicy::kLru: {
      uint64_t oldest = entries_.begin()->second.last_ref;
      for (const auto& [qid, e] : entries_) {
        if (e.last_ref < oldest) {
          oldest = e.last_ref;
          victim = qid;
        }
      }
      break;
    }
    case CachePolicy::kLfu: {
      uint64_t fewest = entries_.begin()->second.ref_count;
      for (const auto& [qid, e] : entries_) {
        if (e.ref_count < fewest) {
          fewest = e.ref_count;
          victim = qid;
        }
      }
      break;
    }
    case CachePolicy::kRco: {
      double lowest = RcoScore(entries_.begin()->second);
      for (const auto& [qid, e] : entries_) {
        double score = RcoScore(e);
        if (score < lowest) {
          lowest = score;
          victim = qid;
        }
      }
      break;
    }
    case CachePolicy::kNone:
      break;
  }
  return victim;
}

double ZoomInCache::RcoScore(const Entry& e) const {
  double max_cost = 1e-9;
  size_t max_size = 1;
  for (const auto& [qid, other] : entries_) {
    max_cost = std::max(max_cost, other.cost);
    max_size = std::max(max_size, other.size);
  }
  // Recency in (0, 1]: 1 for the most recent reference.
  double age = static_cast<double>(tick_ - e.last_ref);
  double recency = 1.0 / (1.0 + age);
  double complexity = e.cost / max_cost;
  double overhead = static_cast<double>(e.size) / static_cast<double>(max_size);
  return weights_.recency * recency + weights_.complexity * complexity -
         weights_.overhead * overhead;
}

}  // namespace insightnotes::core
