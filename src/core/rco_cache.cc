#include "core/rco_cache.h"

#include <algorithm>
#include <cstdio>

namespace insightnotes::core {

std::string_view CachePolicyToString(CachePolicy policy) {
  switch (policy) {
    case CachePolicy::kNone:
      return "none";
    case CachePolicy::kLru:
      return "lru";
    case CachePolicy::kLfu:
      return "lfu";
    case CachePolicy::kRco:
      return "rco";
  }
  return "?";
}

ZoomInCache::ZoomInCache(CachePolicy policy, size_t budget_bytes,
                         const std::string& path, RcoWeights weights)
    : policy_(policy), budget_(budget_bytes), weights_(weights), path_(path) {}

ZoomInCache::~ZoomInCache() {
  heap_.reset();
  pool_.reset();
  Status s = disk_.Close();
  (void)s;
  if (!path_.empty()) std::remove(path_.c_str());
}

Status ZoomInCache::Init() {
  INSIGHTNOTES_RETURN_IF_ERROR(disk_.Open(path_));
  // A small frame pool: cache entries stream through rather than reside.
  pool_ = std::make_unique<storage::BufferPool>(&disk_, 64);
  heap_ = std::make_unique<storage::HeapFile>(pool_.get());
  return Status::OK();
}

Status ZoomInCache::Put(QueryId qid, const ResultSnapshot& snapshot,
                        double cost_seconds) {
  if (policy_ == CachePolicy::kNone) {
    ++stats_.rejected;
    return Status::OK();
  }
  if (heap_ == nullptr) return Status::Internal("cache not initialized");
  std::string bytes;
  snapshot.Serialize(&bytes);
  if (bytes.size() > budget_) {
    ++stats_.rejected;
    return Status::OK();  // Larger than the whole cache: never admitted.
  }
  // An existing entry for the same qid is replaced, but it must stay
  // readable until the replacement has fully succeeded: it is pinned
  // against eviction (MakeRoom skips it) and its bytes are discounted from
  // the room calculation since they are reclaimed below.
  auto existing = entries_.find(qid);
  size_t reclaimable = existing != entries_.end() ? existing->second.size : 0;
  const QueryId* pinned = existing != entries_.end() ? &qid : nullptr;
  if (!MakeRoom(bytes.size(), reclaimable, pinned)) {
    ++stats_.rejected;  // Old snapshot (if any) remains readable.
    return Status::OK();
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::RecordId record, heap_->Append(bytes));
  if (existing != entries_.end()) {
    // The replacement is durable; now drop the old backing record.
    Status s = heap_->Delete(existing->second.record);
    stats_.bytes_used -= existing->second.size;
    entries_.erase(existing);
    if (!s.ok()) return s;
  }
  Entry entry;
  entry.record = record;
  entry.size = bytes.size();
  entry.cost = cost_seconds;
  entry.last_ref = ++tick_;
  entry.ref_count = 1;
  entries_[qid] = entry;
  stats_.bytes_used += entry.size;
  ++stats_.insertions;
  return Status::OK();
}

Result<ResultSnapshot> ZoomInCache::Get(QueryId qid) {
  auto it = entries_.find(qid);
  if (it == entries_.end()) {
    ++stats_.misses;
    return Status::NotFound("result " + std::to_string(qid) + " not cached");
  }
  // Read first: the hit is counted and recency/frequency bumped only for a
  // snapshot the caller actually receives. A failed backing read (or a
  // corrupt snapshot) is a miss and leaves the entry's metadata untouched.
  auto bytes = heap_->Get(it->second.record);
  if (!bytes.ok()) {
    ++stats_.misses;
    return bytes.status();
  }
  auto snapshot = ResultSnapshot::Deserialize(*bytes);
  if (!snapshot.ok()) {
    ++stats_.misses;
    return snapshot.status();
  }
  ++stats_.hits;
  it->second.last_ref = ++tick_;
  ++it->second.ref_count;
  return snapshot;
}

Status ZoomInCache::CorruptBackingRecordForTest(QueryId qid) {
  auto it = entries_.find(qid);
  if (it == entries_.end()) {
    return Status::NotFound("result " + std::to_string(qid) + " not cached");
  }
  return heap_->Delete(it->second.record);
}

bool ZoomInCache::MakeRoom(size_t needed, size_t reclaimable, const QueryId* exclude) {
  while (stats_.bytes_used - reclaimable + needed > budget_) {
    // The pinned entry (the one being replaced) is not an eviction
    // candidate.
    if (entries_.size() <= (exclude != nullptr ? 1u : 0u)) return false;
    QueryId victim = PickVictim(exclude);
    auto it = entries_.find(victim);
    Status s = heap_->Delete(it->second.record);
    if (!s.ok()) return false;
    stats_.bytes_used -= it->second.size;
    entries_.erase(it);
    ++stats_.evictions;
  }
  return true;
}

QueryId ZoomInCache::PickVictim(const QueryId* exclude) const {
  // Hoisted normalization pre-pass: one O(n) scan per eviction instead of
  // one per candidate (PickVictim used to be O(n^2) under kRco).
  double max_cost = 1e-9;
  size_t max_size = 1;
  if (policy_ == CachePolicy::kRco) {
    for (const auto& [qid, e] : entries_) {
      max_cost = std::max(max_cost, e.cost);
      max_size = std::max(max_size, e.size);
    }
  }
  bool have_victim = false;
  QueryId victim = 0;
  uint64_t best_tick = 0;
  double best_score = 0.0;
  for (const auto& [qid, e] : entries_) {
    if (exclude != nullptr && qid == *exclude) continue;
    switch (policy_) {
      case CachePolicy::kLru:
        if (!have_victim || e.last_ref < best_tick) {
          best_tick = e.last_ref;
          victim = qid;
        }
        break;
      case CachePolicy::kLfu:
        if (!have_victim || e.ref_count < best_tick) {
          best_tick = e.ref_count;
          victim = qid;
        }
        break;
      case CachePolicy::kRco: {
        double score = RcoScore(e, max_cost, max_size);
        if (!have_victim || score < best_score) {
          best_score = score;
          victim = qid;
        }
        break;
      }
      case CachePolicy::kNone:
        if (!have_victim) victim = qid;
        break;
    }
    have_victim = true;
  }
  return victim;
}

double ZoomInCache::RcoScore(const Entry& e, double max_cost, size_t max_size) const {
  // Recency in (0, 1]: 1 for the most recent reference.
  double age = static_cast<double>(tick_ - e.last_ref);
  double recency = 1.0 / (1.0 + age);
  double complexity = e.cost / max_cost;
  double overhead = static_cast<double>(e.size) / static_cast<double>(max_size);
  return weights_.recency * recency + weights_.complexity * complexity -
         weights_.overhead * overhead;
}

}  // namespace insightnotes::core
