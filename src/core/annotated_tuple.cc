#include "core/annotated_tuple.h"

#include <algorithm>

namespace insightnotes::core {

void MergeAttachmentLists(std::vector<AttachmentInfo>* list,
                          const std::vector<AttachmentInfo>& incoming, size_t offset) {
  for (const AttachmentInfo& in : incoming) {
    std::vector<size_t> shifted;
    shifted.reserve(in.columns.size());
    for (size_t c : in.columns) shifted.push_back(c + offset);

    auto existing = std::find_if(list->begin(), list->end(),
                                 [&](const AttachmentInfo& a) { return a.id == in.id; });
    if (existing == list->end()) {
      list->push_back(AttachmentInfo{in.id, std::move(shifted)});
      continue;
    }
    if (existing->columns.empty() || in.columns.empty()) {
      existing->columns.clear();
    } else {
      existing->columns.insert(existing->columns.end(), shifted.begin(), shifted.end());
      std::sort(existing->columns.begin(), existing->columns.end());
      existing->columns.erase(
          std::unique(existing->columns.begin(), existing->columns.end()),
          existing->columns.end());
    }
  }
}

namespace {

SummaryObject* FindIn(const std::vector<std::unique_ptr<SummaryObject>>& list,
                      std::string_view name) {
  for (const auto& s : list) {
    if (s->instance_name() == name) return s.get();
  }
  return nullptr;
}

}  // namespace

Status MergeSummaryLists(std::vector<std::unique_ptr<SummaryObject>>* into,
                         const std::vector<std::unique_ptr<SummaryObject>>& incoming) {
  for (const auto& summary : incoming) {
    SummaryObject* counterpart = FindIn(*into, summary->instance_name());
    if (counterpart != nullptr) {
      // Counterpart objects combine (ClassBird2 / SimCluster in Figure 2).
      INSIGHTNOTES_RETURN_IF_ERROR(counterpart->MergeWith(*summary));
    } else {
      // Objects with no counterpart propagate unchanged (ClassBird1,
      // TextSummary1 in Figure 2).
      into->push_back(summary->Clone());
    }
  }
  return Status::OK();
}

AnnotatedTuple AnnotatedTuple::Clone() const {
  AnnotatedTuple copy(tuple);
  copy.summaries.reserve(summaries.size());
  for (const auto& s : summaries) copy.summaries.push_back(s->Clone());
  copy.attachments = attachments;
  copy.order_ranks = order_ranks;
  return copy;
}

SummaryObject* AnnotatedTuple::FindSummary(std::string_view name) const {
  for (const auto& s : summaries) {
    if (s->instance_name() == name) return s.get();
  }
  return nullptr;
}

AttachmentInfo* AnnotatedTuple::FindAttachment(ann::AnnotationId id) {
  for (AttachmentInfo& a : attachments) {
    if (a.id == id) return &a;
  }
  return nullptr;
}

Status MergeAnnotatedTuples(AnnotatedTuple* left, const AnnotatedTuple& right) {
  size_t left_width = left->tuple.NumValues();
  left->tuple = rel::Tuple::Concat(left->tuple, right.tuple);
  INSIGHTNOTES_RETURN_IF_ERROR(MergeSummaryLists(&left->summaries, right.summaries));
  MergeAttachmentLists(&left->attachments, right.attachments, left_width);
  left->order_ranks.insert(left->order_ranks.end(), right.order_ranks.begin(),
                           right.order_ranks.end());
  return Status::OK();
}

Status MergeForGrouping(AnnotatedTuple* into, const AnnotatedTuple& other) {
  INSIGHTNOTES_RETURN_IF_ERROR(MergeSummaryLists(&into->summaries, other.summaries));
  MergeAttachmentLists(&into->attachments, other.attachments, /*offset=*/0);
  return Status::OK();
}

namespace {
// Flat per-summary-object figure: a SummaryObject carries an instance
// name, aggregate state and (for cluster summaries) representative text.
constexpr size_t kSummaryObjectApproxBytes = 192;
}  // namespace

size_t ApproxBytes(const rel::Tuple& tuple) {
  size_t bytes = sizeof(rel::Tuple) + tuple.NumValues() * sizeof(rel::Value);
  for (size_t i = 0; i < tuple.NumValues(); ++i) {
    const rel::Value& v = tuple.ValueAt(i);
    if (v.type() == rel::ValueType::kString) bytes += v.AsString().capacity();
  }
  return bytes;
}

size_t ApproxBytes(const AnnotatedTuple& tuple) {
  size_t bytes = ApproxBytes(tuple.tuple) +
                 tuple.summaries.size() * kSummaryObjectApproxBytes;
  for (const AttachmentInfo& att : tuple.attachments) {
    bytes += sizeof(AttachmentInfo) + att.columns.capacity() * sizeof(size_t);
  }
  return bytes;
}

size_t ApproxBytes(const AnnotatedBatch& batch) {
  size_t bytes = sizeof(AnnotatedBatch);
  for (const AnnotatedTuple& tuple : batch.tuples) bytes += ApproxBytes(tuple);
  return bytes;
}

}  // namespace insightnotes::core
