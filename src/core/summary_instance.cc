#include "core/summary_instance.h"

#include "core/summary_object.h"

namespace insightnotes::core {

std::unique_ptr<SummaryInstance> SummaryInstance::MakeClassifier(
    std::string name, std::vector<std::string> labels, SummaryProperties properties) {
  auto instance = std::unique_ptr<SummaryInstance>(new SummaryInstance(
      std::move(name), SummaryTypeKind::kClassifier, properties));
  instance->classifier_ =
      std::make_unique<mining::NaiveBayesClassifier>(std::move(labels));
  return instance;
}

std::unique_ptr<SummaryInstance> SummaryInstance::MakeCluster(
    std::string name, double threshold, SummaryProperties properties) {
  // Cluster assignment inspects the tuple's existing groups, so the result
  // of summarizing an annotation is not annotation-invariant by definition.
  properties.annotation_invariant = false;
  auto instance = std::unique_ptr<SummaryInstance>(
      new SummaryInstance(std::move(name), SummaryTypeKind::kCluster, properties));
  instance->vectorizer_ = std::make_unique<mining::TextVectorizer>();
  instance->cluster_threshold_ = threshold;
  return instance;
}

std::unique_ptr<SummaryInstance> SummaryInstance::MakeSnippet(
    std::string name, mining::SnippetOptions options, SummaryProperties properties) {
  auto instance = std::unique_ptr<SummaryInstance>(
      new SummaryInstance(std::move(name), SummaryTypeKind::kSnippet, properties));
  instance->extractor_ = std::make_unique<mining::SnippetExtractor>(options);
  return instance;
}

std::unique_ptr<SummaryObject> SummaryInstance::NewObject() {
  switch (type_) {
    case SummaryTypeKind::kClassifier:
      return std::make_unique<ClassifierObject>(this);
    case SummaryTypeKind::kCluster:
      return std::make_unique<ClusterObject>(this);
    case SummaryTypeKind::kSnippet:
      return std::make_unique<SnippetObject>(this);
  }
  return nullptr;
}

size_t SummaryInstance::ClassifyAnnotation(const ann::Annotation& note) {
  if (properties_.SummarizeOnceEligible()) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = label_cache_.find(note.id);
    if (it != label_cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }
  // The classifier is const/stateless: concurrent shards classify unlocked.
  size_t label = classifier_->Classify(note.body);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++cache_misses_;
  if (properties_.SummarizeOnceEligible()) label_cache_.emplace(note.id, label);
  return label;
}

txt::SparseVector SummaryInstance::VectorizeAnnotation(const ann::Annotation& note) {
  // Vectorization is invariant even when cluster assignment is not. The
  // vector is ALWAYS retained here — cluster objects resolve member vectors
  // through this store (GetVector) so they stay lightweight. The invariant
  // property only controls whether a cached vector is *reused* (the
  // summarize-once optimization) or recomputed for accounting purposes.
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = vector_cache_.find(note.id);
    if (it != vector_cache_.end() && properties_.data_invariant) {
      ++cache_hits_;
      return it->second;
    }
  }
  txt::SparseVector vec;
  {
    // The vectorizer grows the shared vocabulary: serialize it. Parallel
    // ingest avoids this path by committing tokens up front (CommitTokens),
    // so only non-data-invariant recomputation contends here.
    std::lock_guard<std::mutex> lock(kernel_mutex_);
    vec = vectorizer_->Vectorize(note.body);
  }
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++cache_misses_;
  // emplace (not assignment): a vector already cached for this id is
  // identical, and readers may hold GetVector pointers into it.
  vector_cache_.emplace(note.id, vec);
  return vec;
}

std::string SummaryInstance::SummarizeDocument(const ann::Annotation& note) {
  if (properties_.SummarizeOnceEligible()) {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = snippet_cache_.find(note.id);
    if (it != snippet_cache_.end()) {
      ++cache_hits_;
      return it->second;
    }
  }
  // The extractor is const/stateless: concurrent shards summarize unlocked.
  std::string snippet = extractor_->Summarize(note.body);
  std::lock_guard<std::mutex> lock(cache_mutex_);
  ++cache_misses_;
  if (properties_.SummarizeOnceEligible()) snippet_cache_.emplace(note.id, snippet);
  return snippet;
}

std::vector<std::string> SummaryInstance::TokenizeBody(const ann::Annotation& note) const {
  if (vectorizer_ == nullptr) return {};
  return vectorizer_->tokenizer().Tokenize(note.body);
}

void SummaryInstance::CommitTokens(ann::AnnotationId id,
                                   const std::vector<std::string>& tokens) {
  if (vectorizer_ == nullptr) return;
  std::unique_lock<std::mutex> cache_lock(cache_mutex_);
  if (vector_cache_.contains(id)) return;  // Shared annotation: commit once.
  cache_lock.unlock();
  txt::SparseVector vec;
  {
    std::lock_guard<std::mutex> lock(kernel_mutex_);
    vec = vectorizer_->VectorizeTokens(tokens);
  }
  cache_lock.lock();
  vector_cache_.emplace(id, std::move(vec));
}

const txt::SparseVector* SummaryInstance::GetVector(mining::DocId doc) const {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  auto it = vector_cache_.find(doc);
  return it == vector_cache_.end() ? nullptr : &it->second;
}

void SummaryInstance::ClearCaches() {
  std::lock_guard<std::mutex> lock(cache_mutex_);
  label_cache_.clear();
  vector_cache_.clear();
  snippet_cache_.clear();
}

}  // namespace insightnotes::core
