// Zoom-in query processing (Section 2.2): query results are materialized as
// compact *snapshots* — tuples plus, per summary object, the rendered form
// and the annotation ids behind each component. Snapshots serve future
// ZoomIn commands without re-running the query; they are what competes for
// the RCO-managed disk cache (rco_cache.h).

#ifndef INSIGHTNOTES_CORE_ZOOM_IN_H_
#define INSIGHTNOTES_CORE_ZOOM_IN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "annotation/annotation.h"
#include "common/result.h"
#include "core/annotated_tuple.h"
#include "rel/expression.h"
#include "rel/schema.h"

namespace insightnotes::core {

/// Result identifier handed to users for ZoomIn references.
using QueryId = uint64_t;

struct ComponentSnapshot {
  std::string label;                      // "Behavior", "A2 x5", doc title...
  std::vector<ann::AnnotationId> ids;     // Raw annotations behind it.
};

struct SummarySnapshot {
  std::string instance;   // Instance name (zoom-in's ON clause target).
  std::string rendered;   // Display form.
  std::vector<ComponentSnapshot> components;
};

struct RowSnapshot {
  rel::Tuple tuple;
  std::vector<SummarySnapshot> summaries;
};

/// Everything needed to display a result and answer zoom-ins on it.
struct ResultSnapshot {
  std::vector<std::string> column_names;
  std::vector<RowSnapshot> rows;

  /// Captures `tuples` (with their summary objects) into snapshot form.
  static Result<ResultSnapshot> Capture(const rel::Schema& schema,
                                        const std::vector<AnnotatedTuple>& tuples);

  /// Binary round trip (cache storage format).
  void Serialize(std::string* out) const;
  static Result<ResultSnapshot> Deserialize(std::string_view in);

  /// Approximate in-memory/cache footprint.
  size_t SizeBytes() const;
};

/// A ZoomIn command: "ZOOMIN REFERENCE QID <qid> [WHERE <predicate>]
/// ON <instance> INDEX <component>".
struct ZoomInRequest {
  QueryId qid = 0;
  rel::ExprPtr predicate;     // Optional, bound against the result schema.
  std::string instance_name;  // Which summary object.
  size_t component_index = 0; // Which component within it (0-based).
};

struct ZoomInRowResult {
  size_t row_index = 0;          // Position in the referenced result.
  rel::Tuple tuple;              // The result row itself.
  std::string component_label;   // e.g. "refute".
  std::vector<ann::Annotation> annotations;  // The raw annotations.
};

struct ZoomInResult {
  std::vector<ZoomInRowResult> rows;
  bool served_from_cache = false;  // False when the query was re-executed.
};

/// Resolves `request` against a snapshot: selects rows by predicate, finds
/// the named summary, and returns the component's annotation ids per row
/// (bodies are fetched by the engine).
Result<std::vector<std::pair<size_t, ComponentSnapshot>>> ResolveZoomIn(
    const ResultSnapshot& snapshot, const ZoomInRequest& request);

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_ZOOM_IN_H_
