#include "core/engine.h"

#include <filesystem>
#include <map>
#include <utility>

#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/recovery.h"
#include "exec/seq_scan.h"
#include "rel/stats.h"
#include "storage/wal.h"  // storage::FsyncDirOf

namespace insightnotes::core {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

Engine::~Engine() {
  if (pool_ != nullptr) {
    Status s = Checkpoint();
    if (!s.ok()) {
      INSIGHTNOTES_LOG(Error) << "checkpoint on shutdown failed: " << s.ToString();
    }
  }
  StopWalCompactor();
}

namespace {

/// Where the pre-recovery page file is parked while WAL replay rebuilds a
/// fresh one (see Engine::InitStorage).
std::string ParkedPathFor(const std::string& db_path) {
  return db_path + ".recovering";
}

}  // namespace

Status Engine::Init() {
  Status status = InitStorage();
  if (!status.ok() && !parked_page_file_.empty()) {
    // Recovery failed after the old page file was parked aside. Put it
    // back: it is the only other copy of the annotation bodies, and it
    // must survive a failed recovery (e.g. a corrupt WAL) intact.
    RestoreParkedPageFile();
  }
  return status;
}

Status Engine::InitStorage() {
  StopWalCompactor();
  recovery_required_ = Status::OK();
  poisoned_.store(false, std::memory_order_release);
  disk_ = options_.disk != nullptr ? options_.disk
                                   : std::make_shared<storage::DiskManager>();
  const bool file_backed = !options_.db_path.empty();
  std::error_code ec;
  if (options_.open_existing && file_backed &&
      std::filesystem::exists(ParkedPathFor(options_.db_path), ec)) {
    // A parked page file means an earlier recovery was interrupted. The
    // parked copy is the pre-recovery original; whatever sits at db_path
    // is at best a partial rebuild. Adopt the original and recover from it
    // (the WAL, untouched by the interrupted attempt, replays either way).
    std::filesystem::remove(options_.db_path, ec);
    std::error_code rename_ec;
    std::filesystem::rename(ParkedPathFor(options_.db_path), options_.db_path,
                            rename_ec);
    if (rename_ec) {
      return Status::IoError("cannot adopt page file '" +
                             ParkedPathFor(options_.db_path) +
                             "' parked by an interrupted recovery: " +
                             rename_ec.message());
    }
    // The adoption must survive a power loss: sync the directory entry, or
    // a crash here could resurrect the parked name and re-run this branch
    // against a half-written rename.
    INSIGHTNOTES_RETURN_IF_ERROR(FsyncParentDir(options_.db_path));
  }
  const bool recover = options_.open_existing && file_backed &&
                       std::filesystem::exists(options_.db_path, ec);

  if (recover) {
    // Audit the old page file: count pages whose checksum no longer
    // verifies (torn writes from the crash). The page file is only a cache
    // of annotation bodies — the WAL is the source of truth — so it is
    // rebuilt by replay; but it is parked aside, not destroyed, until
    // replay has actually succeeded.
    INSIGHTNOTES_RETURN_IF_ERROR(
        disk_->Open(options_.db_path, storage::DiskOpenMode::kOpenExisting));
    recovery_.performed = true;
    recovery_.pages_scanned = disk_->num_pages();
    auto page = std::make_unique<char[]>(storage::kPageSize);
    for (storage::PageId id = 0; id < recovery_.pages_scanned; ++id) {
      Status read = storage::RetryIo(options_.io_retry,
                                     [&] { return disk_->ReadPage(id, page.get()); });
      if (read.IsCorruption()) {
        ++recovery_.corrupt_pages;
        INSIGHTNOTES_LOG(Warning) << "recovery: " << read.ToString();
      } else if (!read.ok()) {
        return read;
      }
    }
    INSIGHTNOTES_RETURN_IF_ERROR(disk_->Close());
    std::error_code rename_ec;
    std::filesystem::rename(options_.db_path, ParkedPathFor(options_.db_path),
                            rename_ec);
    if (rename_ec) {
      return Status::IoError("cannot park page file '" + options_.db_path +
                             "' for recovery: " + rename_ec.message());
    }
    // Record the park before syncing it: if the directory fsync fails, the
    // rename already happened, and Init() must rename the file back rather
    // than strand it at the parked name.
    parked_page_file_ = ParkedPathFor(options_.db_path);
    // Durable park: a crash mid-recovery must find the parked name on
    // disk, or the interrupted-recovery adoption above cannot fire.
    INSIGHTNOTES_RETURN_IF_ERROR(FsyncParentDir(options_.db_path));
  }
  INSIGHTNOTES_RETURN_IF_ERROR(
      disk_->Open(options_.db_path, storage::DiskOpenMode::kTruncate));

  pool_ = std::make_unique<storage::BufferPool>(disk_.get(), options_.buffer_pool_pages,
                                                options_.io_retry);
  catalog_ = std::make_unique<rel::Catalog>(pool_.get());
  store_ = std::make_unique<ann::AnnotationStore>(pool_.get());
  manager_ = std::make_unique<SummaryManager>(store_.get());
  cache_ = std::make_unique<ZoomInCache>(options_.cache_policy,
                                         options_.cache_budget_bytes,
                                         options_.cache_path, options_.rco_weights);
  INSIGHTNOTES_RETURN_IF_ERROR(cache_->Init());

  bool adopt_index_checkpoint = false;
  ann::WalIndexCheckpointRecord index_checkpoint;
  if (file_backed) {
    const std::string wal_path = options_.db_path + ".wal";
    uint64_t keep_bytes = UINT64_MAX;
    uint64_t active_records = 0;
    // Replay observes records before the log is reopened, so dead
    // positions are parked here and forwarded once it is.
    std::vector<storage::WalRecordPos> replay_dead;
    tracker_ = ann::WalLivenessTracker();
    if (recover) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(storage::SegmentedWal::Manifest manifest,
                                    storage::SegmentedWal::LoadForReplay(wal_path));
      tracker_.set_on_dead([&replay_dead](uint64_t segment_id, uint32_t record_index) {
        replay_dead.push_back({segment_id, record_index});
      });
      WalReplayOptions replay_options;
      replay_options.threads = options_.recovery_threads;
      INSIGHTNOTES_ASSIGN_OR_RETURN(
          WalReplayStats replayed,
          ReplaySegmentedWal(manifest, store_.get(), &tracker_, replay_options));
      recovery_.wal_records_replayed = replayed.mutation_records;
      recovery_.wal_bytes_truncated = replayed.active_truncated_bytes;
      recovery_.checkpoints_replayed = replayed.checkpoints;
      recovery_.records_since_checkpoint = replayed.records_since_checkpoint;
      recovery_.replay_chains = replayed.chains;
      recovery_.replay_threads = replayed.threads_used;
      keep_bytes = replayed.active_valid_bytes;
      active_records = replayed.active_records;
      recovery_.index_checkpoints_replayed = replayed.index_checkpoints;
      adopt_index_checkpoint = replayed.has_index_checkpoint;
      index_checkpoint = std::move(replayed.latest_index_checkpoint);
      if (replayed.active_truncated_bytes > 0) {
        INSIGHTNOTES_LOG(Warning)
            << "recovery: dropped " << replayed.active_truncated_bytes
            << " torn-tail byte(s) from the active segment of '" << wal_path << "'";
      }
    }
    wal_ = std::make_unique<storage::SegmentedWal>();
    storage::SegmentedWal::Options wal_options;
    wal_options.segment_bytes = options_.wal_segment_bytes;
    wal_options.compact_min_dead_ratio = options_.wal_compact_min_dead_ratio;
    INSIGHTNOTES_RETURN_IF_ERROR(wal_->Open(wal_path, /*truncate=*/!recover,
                                            keep_bytes, active_records, wal_options));
    // From here on superseded records feed the live log's per-segment
    // accounting directly; first flush what replay collected.
    tracker_.set_on_dead([this](uint64_t segment_id, uint32_t record_index) {
      if (wal_ != nullptr) wal_->MarkDead(segment_id, record_index);
    });
    for (const storage::WalRecordPos& pos : replay_dead) wal_->MarkDead(pos);
  }
  if (!parked_page_file_.empty()) {
    // Replay succeeded; the parked pre-recovery page file is obsolete.
    std::filesystem::remove(parked_page_file_, ec);
    if (ec) {
      INSIGHTNOTES_LOG(Warning) << "cannot remove parked page file '"
                                << parked_page_file_ << "': " << ec.message();
    } else {
      Status synced = FsyncParentDir(options_.db_path);
      if (!synced.ok()) {
        INSIGHTNOTES_LOG(Warning) << "cannot sync unlink of parked page file: "
                                  << synced.ToString();
      }
    }
    parked_page_file_.clear();
  }
  INSIGHTNOTES_RETURN_IF_ERROR(
      InitIndexStorage(adopt_index_checkpoint, index_checkpoint));
  {
    // First epoch: recovered row states (attachments only — summary links
    // are configuration, re-established after Init).
    std::lock_guard<std::mutex> writer(writer_mutex_);
    PublishFull();
  }
  return Status::OK();
}

Status Engine::InitIndexStorage(bool adopt,
                                const ann::WalIndexCheckpointRecord& checkpoint) {
  index_store_.reset();
  index_pool_.reset();
  pending_indexes_.clear();
  index_disk_ = options_.index_disk != nullptr
                    ? options_.index_disk
                    : std::make_shared<storage::DiskManager>();
  const std::string idx_path =
      options_.db_path.empty() ? "" : options_.db_path + ".idx";
  // Sanity-check the checkpoint against itself before trusting it; a record
  // that fails here (or an index file shorter than its page count) means
  // the idx file and the log disagree — drop the indexes rather than the
  // open. Queries fall back to scans and CREATE INDEX can be re-run.
  auto checkpoint_valid = [&checkpoint]() {
    for (storage::PageId id : checkpoint.free_pages) {
      if (id >= checkpoint.page_count) return false;
    }
    for (const ann::WalIndexCheckpointEntry& e : checkpoint.indexes) {
      if (e.root != storage::kInvalidPageId && e.root >= checkpoint.page_count) {
        return false;
      }
    }
    return true;
  };
  bool adopted = false;
  if (adopt && !idx_path.empty()) {
    std::error_code ec;
    if (!checkpoint_valid()) {
      INSIGHTNOTES_LOG(Warning)
          << "index checkpoint is self-inconsistent; dropping persistent "
             "indexes (re-run CREATE INDEX)";
    } else if (!std::filesystem::exists(idx_path, ec)) {
      INSIGHTNOTES_LOG(Warning)
          << "index file '" << idx_path
          << "' is missing; dropping persistent indexes (re-run CREATE INDEX)";
    } else {
      Status opened =
          index_disk_->Open(idx_path, storage::DiskOpenMode::kOpenExisting);
      if (!opened.ok()) return opened;
      if (index_disk_->num_pages() < checkpoint.page_count) {
        INSIGHTNOTES_LOG(Warning)
            << "index file '" << idx_path << "' holds "
            << index_disk_->num_pages() << " page(s), checkpoint expects "
            << checkpoint.page_count
            << "; dropping persistent indexes (re-run CREATE INDEX)";
        INSIGHTNOTES_RETURN_IF_ERROR(index_disk_->Close());
        INSIGHTNOTES_RETURN_IF_ERROR(
            index_disk_->Open(idx_path, storage::DiskOpenMode::kTruncate));
      } else {
        adopted = true;
      }
    }
  }
  if (!adopted) {
    if (!index_disk_->is_open()) {
      INSIGHTNOTES_RETURN_IF_ERROR(
          index_disk_->Open(idx_path, storage::DiskOpenMode::kTruncate));
    }
  }
  const size_t frames = options_.index_pool_pages != 0
                            ? options_.index_pool_pages
                            : options_.buffer_pool_pages;
  index_pool_ = std::make_unique<storage::BufferPool>(index_disk_.get(), frames,
                                                      options_.io_retry);
  rel::BTreeStoreMeta store_meta;
  if (adopted) {
    store_meta.page_count = checkpoint.page_count;
    store_meta.next_stamp = checkpoint.next_stamp;
    store_meta.free_pages.assign(checkpoint.free_pages.begin(),
                                 checkpoint.free_pages.end());
    for (const ann::WalIndexCheckpointEntry& e : checkpoint.indexes) {
      rel::BTreeMeta meta;
      meta.root = e.root;
      meta.height = e.height;
      meta.entries = e.entries;
      meta.covered_rows = e.covered_rows;
      pending_indexes_[e.table][static_cast<size_t>(e.column)] = meta;
      ++recovery_.indexes_recovered;
    }
  }
  index_store_ = std::make_unique<rel::BTreeStore>(
      index_pool_.get(), std::move(store_meta), options_.index_max_node_entries);
  return Status::OK();
}

Status Engine::FsyncParentDir(const std::string& path) {
  const std::string dir = std::filesystem::path(path).parent_path().string();
  if (disk_ != nullptr) return disk_->FsyncDir(dir.empty() ? "." : dir);
  return storage::FsyncDir(dir.empty() ? "." : dir);
}

void Engine::RestoreParkedPageFile() {
  // Tear down in reverse construction order: catalog/store/manager hold
  // raw pointers into the pool, the pool into the disk.
  cache_.reset();
  manager_.reset();
  store_.reset();
  catalog_.reset();  // Tables' B+-trees die before the index store/pool.
  index_store_.reset();
  index_pool_.reset();
  if (index_disk_ != nullptr && index_disk_->is_open()) {
    Status closed = index_disk_->Close();
    if (!closed.ok()) {
      INSIGHTNOTES_LOG(Error) << "closing index file after failed recovery: "
                              << closed.ToString();
    }
  }
  pool_.reset();
  wal_.reset();
  if (disk_ != nullptr && disk_->is_open()) {
    Status closed = disk_->Close();
    if (!closed.ok()) {
      INSIGHTNOTES_LOG(Error) << "closing page file after failed recovery: "
                              << closed.ToString();
    }
  }
  std::error_code ec;
  std::filesystem::remove(options_.db_path, ec);  // The partial rebuild.
  std::error_code rename_ec;
  std::filesystem::rename(parked_page_file_, options_.db_path, rename_ec);
  if (rename_ec) {
    // The original survives at the parked path; the next open_existing
    // Init adopts it from there.
    INSIGHTNOTES_LOG(Error) << "cannot restore parked page file '"
                            << parked_page_file_
                            << "' after failed recovery: " << rename_ec.message();
  } else {
    Status synced = FsyncParentDir(options_.db_path);
    if (!synced.ok()) {
      INSIGHTNOTES_LOG(Warning) << "cannot sync restore of parked page file: "
                                << synced.ToString();
    }
    parked_page_file_.clear();
  }
}

Status Engine::LogWalEntry(const ann::WalEntry& entry) {
  if (wal_ == nullptr) return Status::OK();
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::WalRecordPos pos,
                                wal_->Append(ann::EncodeWalEntry(entry)));
  INSIGHTNOTES_RETURN_IF_ERROR(wal_->Sync());
  // Only acknowledged records count for liveness: a record rewound by
  // RewindWal must never have marked an earlier one dead.
  tracker_.Observe(entry, pos.segment_id, pos.record_index);
  return Status::OK();
}

Status Engine::MaybeRotateWal() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->MaybeRotate();
}

Status Engine::CheckMutable() const {
  if (recovery_required_.ok()) return Status::OK();
  return Status::Internal(
      "engine requires recovery (reopen with open_existing to replay the "
      "WAL); mutations refused after: " +
      recovery_required_.ToString());
}

void Engine::MarkRecoveryRequired(const Status& cause) {
  if (recovery_required_.ok()) recovery_required_ = cause;
  // New snapshot pins are refused from here on; already-pinned readers
  // drain against their (pre-failure) epoch undisturbed.
  poisoned_.store(true, std::memory_order_release);
  INSIGHTNOTES_LOG(Error)
      << "a WAL-committed record failed to apply; engine requires recovery: "
      << cause.ToString();
}

Result<ReadSnapshot> Engine::PinSnapshot() const {
  if (poisoned_.load(std::memory_order_acquire)) {
    return Status::Internal(
        "engine requires recovery: new snapshots are refused (pinned "
        "readers may finish)");
  }
  std::shared_ptr<const EngineSnapshot> snap =
      published_.load(std::memory_order_acquire);
  if (snap == nullptr) {
    return Status::Internal("no published snapshot (engine not initialized)");
  }
  return snap;
}

uint64_t Engine::CurrentEpoch() const {
  std::shared_ptr<const EngineSnapshot> snap =
      published_.load(std::memory_order_acquire);
  return snap == nullptr ? 0 : snap->epoch();
}

std::unordered_map<rel::TableId, rel::RowId> Engine::CurrentBounds() const {
  std::unordered_map<rel::TableId, rel::RowId> bounds;
  if (catalog_ == nullptr) return bounds;
  for (const std::string& name : catalog_->TableNames()) {
    Result<rel::Table*> table = catalog_->GetTable(name);
    if (table.ok()) bounds[(*table)->id()] = (*table)->RowBound();
  }
  return bounds;
}

// Writer mutex held: epoch_counter_ and the load/build/store sequence are
// single-writer; readers only ever acquire-load published_.
void Engine::PublishFull() {
  EngineSnapshot::Sources src{store_.get(), manager_.get()};
  published_.store(EngineSnapshot::BuildFull(src, CurrentBounds(), ++epoch_counter_,
                                             epochs_retired_),
                   std::memory_order_release);
}

void Engine::PublishDelta(const std::vector<EngineSnapshot::RowKey>& dirty,
                          const std::vector<ann::AnnotationId>& newly_archived) {
  std::shared_ptr<const EngineSnapshot> prev =
      published_.load(std::memory_order_acquire);
  if (prev == nullptr) {
    PublishFull();
    return;
  }
  EngineSnapshot::Sources src{store_.get(), manager_.get()};
  published_.store(EngineSnapshot::BuildDelta(*prev, src, dirty, newly_archived,
                                              CurrentBounds(), ++epoch_counter_,
                                              epochs_retired_),
                   std::memory_order_release);
}

Result<storage::SegmentedWal::Mark> Engine::WalMark() {
  if (wal_ == nullptr) return storage::SegmentedWal::Mark{};
  return wal_->MarkPos();
}

void Engine::RewindWal(const storage::SegmentedWal::Mark& mark) {
  if (wal_ == nullptr) return;
  Status s = wal_->TruncateTo(mark);
  if (!s.ok()) {
    // The WAL is now failed and refuses appends, so the stray record can
    // never be followed by one that collides with its id at replay.
    INSIGHTNOTES_LOG(Error) << "WAL rewind failed: " << s.ToString();
  }
}

Status Engine::Checkpoint() {
  // Serialized with the other mutators: the durability point must not
  // interleave with a half-applied mutation. No epoch is published — a
  // checkpoint changes nothing readers can see.
  std::lock_guard<std::mutex> writer(writer_mutex_);
  Status first_error = Status::OK();
  auto keep_first = [&first_error](Status s) {
    if (first_error.ok() && !s.ok()) first_error = std::move(s);
  };
  if (pool_ != nullptr) keep_first(pool_->FlushAll());
  if (disk_ != nullptr && disk_->is_open()) keep_first(disk_->Fsync());
  if (wal_ != nullptr && wal_->is_open()) keep_first(wal_->Sync());
  // Commit the persistent indexes first: a failed index flush must
  // suppress the annotation checkpoint marker below too, or replay could
  // pair a new annotation count with a stale index epoch.
  if (first_error.ok() && recovery_required_.ok()) {
    keep_first(CommitIndexCheckpoint());
  }
  // Mark the durability point in the log. Skipped when the flush failed or
  // the engine is in the recovery-required state (the store would disagree
  // with the log). The marker supersedes the previous one (the liveness
  // tracker reports it dead), and with compaction enabled a background
  // pass is scheduled to retire mostly-dead sealed segments — Checkpoint
  // itself never blocks on the rewrite.
  if (first_error.ok() && recovery_required_.ok() && wal_ != nullptr &&
      wal_->is_open()) {
    keep_first(MaybeRotateWal());
    keep_first(LogWalEntry(ann::WalCheckpointRecord{store_->NumAnnotations()}));
    if (options_.compact_wal_on_checkpoint) ScheduleWalCompaction();
  }
  return first_error;
}

Status Engine::CommitIndexCheckpoint() {
  if (index_store_ == nullptr) return Status::OK();
  ann::WalIndexCheckpointRecord record;
  for (const std::string& name : catalog_->TableNames()) {
    Result<rel::Table*> table = catalog_->GetTable(name);
    if (!table.ok()) continue;
    for (const rel::PersistentIndexInfo& info : (*table)->PersistentIndexes()) {
      if (!info.usable) {
        // A broken tree may be half-mutated; committing its root would make
        // the damage durable. Keep the previous committed checkpoint live
        // instead — replay heals the index on reopen.
        INSIGHTNOTES_LOG(Warning)
            << "skipping index checkpoint: index on '" << name << "' column "
            << info.column << " is broken";
        return Status::OK();
      }
      ann::WalIndexCheckpointEntry entry;
      entry.table = name;
      entry.column = info.column;
      entry.root = info.meta.root;
      entry.height = info.meta.height;
      entry.entries = info.meta.entries;
      entry.covered_rows = info.meta.covered_rows;
      record.indexes.push_back(std::move(entry));
    }
  }
  // Indexes whose tables were never re-created this run are still live on
  // disk; carry them forward or the new checkpoint would silently drop them.
  for (const auto& [name, columns] : pending_indexes_) {
    for (const auto& [column, meta] : columns) {
      ann::WalIndexCheckpointEntry entry;
      entry.table = name;
      entry.column = column;
      entry.root = meta.root;
      entry.height = meta.height;
      entry.entries = meta.entries;
      entry.covered_rows = meta.covered_rows;
      record.indexes.push_back(std::move(entry));
    }
  }
  rel::BTreeStoreMeta meta = index_store_->CommitMeta();
  if (record.indexes.empty() && meta.page_count == 0) {
    return Status::OK();  // Nothing persistent yet; keep the WAL quiet.
  }
  record.page_count = meta.page_count;
  record.next_stamp = meta.next_stamp;
  record.free_pages.assign(meta.free_pages.begin(), meta.free_pages.end());
  INSIGHTNOTES_RETURN_IF_ERROR(index_pool_->FlushAll());
  if (index_disk_ != nullptr && index_disk_->is_open()) {
    INSIGHTNOTES_RETURN_IF_ERROR(index_disk_->Fsync());
  }
  if (!options_.db_path.empty()) {
    // The first commit also has to make the file's directory entry
    // durable, or a crash could adopt a checkpoint whose file vanished.
    INSIGHTNOTES_RETURN_IF_ERROR(FsyncParentDir(options_.db_path + ".idx"));
  }
  INSIGHTNOTES_RETURN_IF_ERROR(LogWalEntry(record));
  index_store_->CommitEpoch();
  return Status::OK();
}

void Engine::ScheduleWalCompaction() {
  std::lock_guard<std::mutex> lock(compact_mutex_);
  ++compact_scheduled_;
  if (!wal_compactor_.joinable()) {
    compact_stop_ = false;
    wal_compactor_ = std::thread([this] { WalCompactorLoop(); });
  }
  compact_cv_.notify_all();
}

void Engine::WaitForWalCompaction() {
  std::unique_lock<std::mutex> lock(compact_mutex_);
  compact_cv_.wait(lock, [this] { return compact_completed_ >= compact_scheduled_; });
}

void Engine::StopWalCompactor() {
  {
    std::lock_guard<std::mutex> lock(compact_mutex_);
    if (!wal_compactor_.joinable()) return;
    compact_stop_ = true;
    compact_cv_.notify_all();
  }
  wal_compactor_.join();
  wal_compactor_ = std::thread();
}

void Engine::WalCompactorLoop() {
  std::unique_lock<std::mutex> lock(compact_mutex_);
  while (true) {
    compact_cv_.wait(lock, [this] {
      return compact_stop_ || compact_completed_ < compact_scheduled_;
    });
    if (compact_completed_ >= compact_scheduled_) break;  // Stop, fully drained.
    const uint64_t target = compact_scheduled_;
    lock.unlock();
    // One scheduled pass drains every qualifying segment: compacting one
    // can push another over the threshold relative to the shrunken log.
    while (wal_ != nullptr) {
      Result<storage::SegmentedWal::CompactionResult> pass = wal_->CompactOnce();
      std::lock_guard<std::mutex> stats_lock(wal_compaction_mutex_);
      if (!pass.ok()) {
        ++wal_compaction_.failures;
        INSIGHTNOTES_LOG(Warning)
            << "background WAL compaction pass failed (will retry at the "
               "next checkpoint): "
            << pass.status().ToString();
        break;
      }
      if (!pass->compacted) break;
      ++wal_compaction_.compactions;
      wal_compaction_.records_written += pass->live_records;
      wal_compaction_.records_dropped += pass->dead_records;
      ++wal_compaction_.segments_retired;
    }
    lock.lock();
    if (compact_completed_ < target) compact_completed_ = target;
    compact_cv_.notify_all();
  }
}

WalCompactionStats Engine::wal_compaction() const {
  std::lock_guard<std::mutex> lock(wal_compaction_mutex_);
  return wal_compaction_;
}

Result<size_t> Engine::RepairStaleSummaries() {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  Result<size_t> repaired = manager_->RepairStale();
  // Repairs touch arbitrary rows; a full rebuild is the safe publication.
  if (repaired.ok() && *repaired > 0) PublishFull();
  return repaired;
}

Result<rel::Table*> Engine::CreateTable(const std::string& name, rel::Schema schema) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  Result<rel::Table*> table = catalog_->CreateTable(name, std::move(schema));
  if (table.ok()) {
    // Reattach committed indexes recovered for this table *before* the
    // caller re-inserts its rows: the trees' covered_rows bounds make that
    // replay a no-op against the committed contents.
    auto pending = pending_indexes_.find(name);
    if (pending != pending_indexes_.end()) {
      for (const auto& [column, meta] : pending->second) {
        if (column >= (*table)->schema().NumColumns()) {
          INSIGHTNOTES_LOG(Warning)
              << "recovered index on '" << name << "' column " << column
              << " does not fit the re-created schema; dropping it";
          std::unique_ptr<rel::BTree> orphan =
              rel::BTree::Attach(index_store_.get(), meta);
          Status freed = orphan->Discard();
          if (!freed.ok()) {
            INSIGHTNOTES_LOG(Warning) << "discarding the dropped index failed: "
                                      << freed.ToString();
          }
          continue;
        }
        (*table)->SwapIndex(column,
                            rel::BTree::Attach(index_store_.get(), meta));
      }
      pending_indexes_.erase(pending);
    }
    // Bounds-only delta: the new table starts empty but must be covered, or
    // epoch readers would fall back to live reads on it.
    PublishDelta({});
  }
  return table;
}

Result<rel::RowId> Engine::Insert(const std::string& table, rel::Tuple tuple) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  std::lock_guard<std::mutex> writer(writer_mutex_);
  Result<rel::RowId> row = t->Insert(tuple);
  // Bounds-only delta: a fresh row has no annotations yet, so only the
  // visible-row bound moves.
  if (row.ok()) PublishDelta({});
  return row;
}

Result<uint64_t> Engine::Analyze(const std::string& table) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  // Serialized with mutators so the scan sees a stable store. Stats are
  // advisory — no epoch is published.
  std::lock_guard<std::mutex> writer(writer_mutex_);
  const rel::Schema& schema = t->schema();
  std::vector<std::vector<rel::Value>> column_values(schema.NumColumns());
  uint64_t rows = 0;
  auto stats = std::make_shared<rel::TableStats>();
  INSIGHTNOTES_RETURN_IF_ERROR(
      t->Scan([&](rel::RowId row, const rel::Tuple& tuple) {
        ++rows;
        for (size_t c = 0; c < schema.NumColumns(); ++c) {
          column_values[c].push_back(tuple.ValueAt(c));
        }
        // Live (non-archived) annotation count of this row, for
        // SUMMARY_COUNT selectivity.
        int64_t live = 0;
        for (const ann::Attachment& attachment : store_->OnRow(t->id(), row)) {
          if (!store_->IsArchived(attachment.annotation)) ++live;
        }
        stats->ann_count_freq.emplace_back(live, 1);
        if (live > 0) {
          ++stats->annotated_rows;
          stats->total_annotations += static_cast<uint64_t>(live);
        }
        return true;
      }));
  stats->row_count = rows;
  for (std::vector<rel::Value>& values : column_values) {
    stats->columns.push_back(rel::BuildColumnStats(std::move(values)));
  }
  // Collapse the per-row (count, 1) entries into the sorted distribution.
  {
    std::map<int64_t, uint64_t> freq;
    for (const auto& [count, n] : stats->ann_count_freq) freq[count] += n;
    stats->ann_count_freq.assign(freq.begin(), freq.end());
  }
  for (const SummaryInstance* instance : manager_->LinkedTo(t->id())) {
    rel::InstanceDensity density;
    density.instance = instance->name();
    density.annotated_rows = stats->annotated_rows;
    density.total_annotations = stats->total_annotations;
    stats->instances.push_back(std::move(density));
  }
  t->SetStats(std::move(stats));
  return rows;
}

Status Engine::CreateIndex(const std::string& table, const std::string& column) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  INSIGHTNOTES_ASSIGN_OR_RETURN(size_t position, t->schema().IndexOf(column));
  // Serialized with mutators (the build scans the heap); indexes are not
  // part of the snapshot, so no epoch is published.
  std::lock_guard<std::mutex> writer(writer_mutex_);
  INSIGHTNOTES_RETURN_IF_ERROR(CheckMutable());
  // Build a persistent B+-tree from the current heap. The writer mutex
  // keeps the unlatched scan safe: nothing can insert or delete while it
  // runs. In-memory engines get the same tree over an in-memory index file,
  // so every index exercise goes through one code path.
  INSIGHTNOTES_ASSIGN_OR_RETURN(std::unique_ptr<rel::BTree> tree,
                                rel::BTree::Create(index_store_.get()));
  Status built = Status::OK();
  Status scanned = t->Scan([&](rel::RowId row, const rel::Tuple& tuple) {
    built = tree->InsertForRow(tuple.ValueAt(position), row);
    return built.ok();
  });
  if (built.ok() && !scanned.ok()) built = scanned;
  if (!built.ok()) {
    Status freed = tree->Discard();  // Fresh pages: immediately reusable.
    if (!freed.ok()) {
      INSIGHTNOTES_LOG(Warning) << "discarding the failed index build: "
                                << freed.ToString();
    }
    return built;
  }
  tree->set_covered_rows(t->RowBound());
  // Log the intent (replay ignores it; it feeds WAL liveness), attach the
  // tree, retire the previous backing, and commit. A failed commit leaves
  // the new tree attached — its contents are correct, only un-durable; the
  // next successful checkpoint commits it.
  INSIGHTNOTES_RETURN_IF_ERROR(MaybeRotateWal());
  INSIGHTNOTES_RETURN_IF_ERROR(
      LogWalEntry(ann::WalIndexCreateRecord{table, position}));
  std::unique_ptr<rel::BTree> old = t->SwapIndex(position, std::move(tree));
  if (old != nullptr) {
    Status freed = old->Discard();  // Committed pages: reusable next epoch.
    if (!freed.ok()) {
      INSIGHTNOTES_LOG(Warning) << "discarding the replaced index failed: "
                                << freed.ToString();
    }
  }
  return CommitIndexCheckpoint();
}

Result<rel::Table*> Engine::ValidateAnnotateSpec(const AnnotateSpec& spec) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table, catalog_->GetTable(spec.table));
  if (!table->IsLive(spec.row)) {
    return Status::NotFound("row " + std::to_string(spec.row) + " not in table '" +
                            spec.table + "'");
  }
  for (size_t c : spec.columns) {
    if (c >= table->schema().NumColumns()) {
      return Status::OutOfRange("column position " + std::to_string(c) +
                                " outside schema of '" + spec.table + "'");
    }
  }
  return table;
}

namespace {

ann::Annotation NoteFromSpec(const AnnotateSpec& spec) {
  ann::Annotation note;
  note.kind = spec.kind;
  note.author = spec.author;
  note.timestamp = spec.timestamp;
  note.title = spec.title;
  note.body = spec.body;
  return note;
}

}  // namespace

Result<ann::AnnotationId> Engine::Annotate(const AnnotateSpec& spec) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  INSIGHTNOTES_RETURN_IF_ERROR(CheckMutable());
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table, ValidateAnnotateSpec(spec));
  ann::CellRegion region{table->id(), spec.row, spec.columns};
  ann::Annotation note = NoteFromSpec(spec);
  // Rotation happens only here, between mutations: the rollback mark below
  // must stay within the active segment for the whole mutation.
  INSIGHTNOTES_RETURN_IF_ERROR(MaybeRotateWal());
  // Write-ahead: the record is durable before the store mutates, so a crash
  // between the two replays the annotation instead of losing it.
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::SegmentedWal::Mark wal_mark, WalMark());
  Status logged = LogWalEntry(ann::WalAddRecord{store_->NumAnnotations(), note, region});
  if (!logged.ok()) {
    // Never acknowledged: cut any half-landed bytes back out so the next
    // append cannot follow a torn or unsynced frame.
    RewindWal(wal_mark);
    return logged;
  }
  Result<ann::AnnotationId> added = store_->Add(note, region);
  if (!added.ok()) {
    // The record is committed but unapplied: replay resurrects it on the
    // next open. Until then no further record may be logged — it would
    // reuse this record's dense id and make replay diverge.
    MarkRecoveryRequired(added.status());
    return added.status();
  }
  Status maintained = manager_->OnAnnotationAttached(*added, region);
  // The annotation is committed either way; the next epoch must reflect it
  // (a maintenance failure leaves the row's summaries repairable, and the
  // snapshot re-reads whatever state the manager holds).
  PublishDelta({{table->id(), spec.row}});
  INSIGHTNOTES_RETURN_IF_ERROR(maintained);
  return *added;
}

ThreadPool* Engine::EnsureIngestPool(size_t num_threads) {
  if (ingest_pool_ == nullptr || ingest_pool_->num_threads() != num_threads) {
    ingest_pool_ = std::make_unique<ThreadPool>(num_threads);
  }
  return ingest_pool_.get();
}

ThreadPool* Engine::ExecPool(size_t num_threads) {
  // Cached per size and never destroyed: a retained plan (zoom-in
  // re-execution) keeps a raw pool pointer, which must stay valid even as
  // other sessions request different parallelism degrees.
  std::lock_guard<std::mutex> lock(exec_pools_mutex_);
  std::unique_ptr<ThreadPool>& pool = exec_pools_[num_threads];
  if (pool == nullptr) pool = std::make_unique<ThreadPool>(num_threads);
  return pool.get();
}

Result<std::vector<ann::AnnotationId>> Engine::AnnotateBatch(
    std::span<const AnnotateSpec> specs, const AnnotateBatchOptions& options) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  INSIGHTNOTES_RETURN_IF_ERROR(CheckMutable());
  // Validate the whole batch up front so a malformed spec cannot leave a
  // half-ingested batch behind.
  std::vector<rel::Table*> tables;
  tables.reserve(specs.size());
  for (const AnnotateSpec& spec : specs) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table, ValidateAnnotateSpec(spec));
    tables.push_back(table);
  }
  std::vector<BatchAnnotation> batch;
  batch.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    BatchAnnotation item;
    item.note = NoteFromSpec(specs[i]);
    item.region = ann::CellRegion{tables[i]->id(), specs[i].row, specs[i].columns};
    batch.push_back(std::move(item));
  }
  // Write-ahead, one sync for the whole batch: every record is durable
  // before the first store mutation, so a crash anywhere in the append loop
  // replays the full batch. Rotation happens up front — never between the
  // rollback mark and the appends it might have to undo.
  if (wal_ != nullptr) {
    INSIGHTNOTES_RETURN_IF_ERROR(MaybeRotateWal());
    ann::AnnotationId next_id = store_->NumAnnotations();
    std::vector<ann::WalEntry> entries;
    entries.reserve(batch.size());
    std::vector<storage::WalRecordPos> positions;
    positions.reserve(batch.size());
    Result<storage::SegmentedWal::Mark> batch_mark = wal_->MarkPos();
    Status logged = batch_mark.ok() ? Status::OK() : batch_mark.status();
    for (size_t i = 0; i < batch.size() && logged.ok(); ++i) {
      entries.emplace_back(
          ann::WalAddRecord{next_id + i, batch[i].note, batch[i].region});
      Result<storage::WalRecordPos> pos =
          wal_->Append(ann::EncodeWalEntry(entries.back()));
      if (!pos.ok()) {
        logged = pos.status();
        break;
      }
      positions.push_back(*pos);
    }
    if (logged.ok()) logged = wal_->Sync();
    if (!logged.ok()) {
      // No record was acknowledged and none applied; roll the whole batch
      // back out of the log.
      if (batch_mark.ok()) RewindWal(*batch_mark);
      return logged;
    }
    // The whole batch is acknowledged — now it may feed liveness.
    for (size_t i = 0; i < positions.size(); ++i) {
      tracker_.Observe(entries[i], positions[i].segment_id,
                       positions[i].record_index);
    }
  }
  // Store appends stay serial (the heap file is single-writer) and in spec
  // order, so ids come out exactly as N Annotate() calls would assign them.
  std::vector<ann::AnnotationId> ids;
  ids.reserve(specs.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    BatchAnnotation& item = batch[i];
    Result<ann::AnnotationId> added = store_->Add(item.note, item.region);
    if (!added.ok()) {
      // Records from position i on are committed but unapplied; replay
      // resurrects them, so further logging must stop (see Annotate).
      MarkRecoveryRequired(added.status());
      return added.status();
    }
    item.note.id = *added;
    ids.push_back(*added);
  }
  ThreadPool* pool =
      options.num_threads > 1 ? EnsureIngestPool(options.num_threads) : nullptr;
  Status applied = manager_->ApplyAnnotationBatch(batch, pool);
  // Publish one epoch for the whole batch — running readers keep their
  // pinned epoch, the next query sees every new annotation at once.
  std::vector<EngineSnapshot::RowKey> dirty;
  dirty.reserve(batch.size());
  for (const BatchAnnotation& item : batch) {
    dirty.emplace_back(item.region.table, item.region.row);
  }
  PublishDelta(dirty);
  INSIGHTNOTES_RETURN_IF_ERROR(applied);
  return ids;
}

Status Engine::AttachAnnotation(ann::AnnotationId id, const std::string& table,
                                rel::RowId row, std::vector<size_t> columns) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  INSIGHTNOTES_RETURN_IF_ERROR(CheckMutable());
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  if (!t->IsLive(row)) {
    return Status::NotFound("row " + std::to_string(row) + " not in table '" + table +
                            "'");
  }
  if (id >= store_->NumAnnotations()) {
    return Status::NotFound("annotation " + std::to_string(id) + " does not exist");
  }
  ann::CellRegion region{t->id(), row, std::move(columns)};
  INSIGHTNOTES_RETURN_IF_ERROR(MaybeRotateWal());
  // Validation precedes the log append: a record the store would reject
  // must never reach the WAL, or replay would fail on it.
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::SegmentedWal::Mark wal_mark, WalMark());
  Status logged = LogWalEntry(ann::WalAttachRecord{id, region});
  if (!logged.ok()) {
    RewindWal(wal_mark);
    return logged;
  }
  Status applied = store_->Attach(id, region);
  if (!applied.ok()) {
    MarkRecoveryRequired(applied);
    return applied;
  }
  Status maintained = manager_->OnAnnotationAttached(id, region);
  PublishDelta({{region.table, region.row}});
  return maintained;
}

Status Engine::ArchiveAnnotation(ann::AnnotationId id) {
  std::lock_guard<std::mutex> writer(writer_mutex_);
  INSIGHTNOTES_RETURN_IF_ERROR(CheckMutable());
  INSIGHTNOTES_ASSIGN_OR_RETURN(auto regions, store_->RegionsOf(id));
  INSIGHTNOTES_RETURN_IF_ERROR(MaybeRotateWal());
  INSIGHTNOTES_ASSIGN_OR_RETURN(storage::SegmentedWal::Mark wal_mark, WalMark());
  Status logged = LogWalEntry(ann::WalArchiveRecord{id});
  if (!logged.ok()) {
    RewindWal(wal_mark);
    return logged;
  }
  Status applied = store_->Archive(id);
  if (!applied.ok()) {
    MarkRecoveryRequired(applied);
    return applied;
  }
  // Remove the archived annotation's effect from every affected row.
  Status rebuilt = Status::OK();
  for (const ann::CellRegion& region : regions) {
    rebuilt = manager_->RebuildRow(region.table, region.row);
    if (!rebuilt.ok()) break;
  }
  // The archive is committed regardless of rebuild success; the epoch must
  // carry the flipped archived bit so pinned readers elsewhere stay put and
  // new readers skip the annotation.
  std::vector<EngineSnapshot::RowKey> dirty;
  dirty.reserve(regions.size());
  for (const ann::CellRegion& region : regions) {
    dirty.emplace_back(region.table, region.row);
  }
  PublishDelta(dirty, {id});
  return rebuilt;
}

Status Engine::RegisterInstance(std::unique_ptr<SummaryInstance> instance) {
  // Registration alone changes no links or objects; no publish needed.
  std::lock_guard<std::mutex> writer(writer_mutex_);
  return manager_->RegisterInstance(std::move(instance));
}

Status Engine::LinkInstance(const std::string& instance, const std::string& table) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  std::lock_guard<std::mutex> writer(writer_mutex_);
  Status linked = manager_->Link(instance, t->id());
  // Link re-summarizes every annotated row of the table: full rebuild.
  if (linked.ok()) PublishFull();
  return linked;
}

Status Engine::UnlinkInstance(const std::string& instance, const std::string& table) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  std::lock_guard<std::mutex> writer(writer_mutex_);
  Status unlinked = manager_->Unlink(instance, t->id());
  if (unlinked.ok()) PublishFull();
  return unlinked;
}

Result<QueryResult> Engine::Execute(std::unique_ptr<exec::Operator> plan,
                                    std::vector<TraceEvent>* trace) {
  ExecuteOptions options;
  options.trace = trace;
  return Execute(std::move(plan), std::move(options));
}

Result<QueryResult> Engine::Execute(std::unique_ptr<exec::Operator> plan,
                                    ExecuteOptions options) {
  if (options.trace != nullptr) {
    std::vector<TraceEvent>* trace = options.trace;
    plan->SetTraceSink([trace](const std::string& op, const AnnotatedTuple& t) {
      TraceEvent event;
      event.op = op;
      event.tuple = t.tuple.ToString();
      for (const auto& s : t.summaries) {
        if (!event.summaries.empty()) event.summaries += " ";
        event.summaries += s->instance_name() + "=" + s->Render();
      }
      trace->push_back(std::move(event));
    });
  }

  // Resolve the epoch this query reads. An explicit snapshot wins; else the
  // current epoch is pinned with one acquire-load. A refused pin (storage
  // not initialized, or the recovery-required state) falls back to live
  // reads, preserving "reads still serve the pre-failure state".
  ReadSnapshot snap = options.snapshot;
  if (snap == nullptr) {
    Result<ReadSnapshot> pinned = PinSnapshot();
    if (pinned.ok()) snap = *pinned;
  }
  // The snapshot rides on the plan's query context; bare operator trees
  // (tests, benches) get a default one.
  std::shared_ptr<exec::QueryContext> context = plan->shared_query_context();
  if (context == nullptr) {
    context = std::make_shared<exec::QueryContext>();
    plan->SetQueryContext(context);
  }
  context->SetSnapshot(snap);

  Stopwatch watch;
  QueryResult result;
  result.schema = plan->OutputSchema();
  auto drain = [&]() -> Status {
    INSIGHTNOTES_RETURN_IF_ERROR(plan->Open());
    result.rows.reserve(plan->EstimatedRows());
    AnnotatedBatch batch;
    while (true) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, plan->NextBatch(&batch));
      if (!more) break;
      for (AnnotatedTuple& tuple : batch.tuples) {
        result.rows.push_back(std::move(tuple));
      }
    }
    return Status::OK();
  };
  Status executed = drain();
  context->SetSnapshot(nullptr);  // The plan is fully drained or failed.
  if (!executed.ok()) {
    // A cancelled / timed-out / failed plan must not leave workers running
    // or memory reserved: Close joins the parallel section and releases
    // every operator's reservation before the plan is destroyed.
    Status closed = plan->Close();
    if (!closed.ok()) {
      INSIGHTNOTES_LOG(Warning) << "closing failed plan: " << closed.ToString();
    }
    return executed;
  }
  result.execute_seconds = watch.ElapsedSeconds();
  result.epoch = snap != nullptr ? snap->epoch() : 0;
  result.qid = options.qid != 0
                   ? options.qid
                   : next_qid_.fetch_add(1, std::memory_order_relaxed) + 1;
  if (options.trace != nullptr) plan->SetTraceSink(nullptr);
  if (!options.retain) return result;

  // Materialize the snapshot into the zoom-in cache and retain the plan
  // (with its pinned epoch, so re-execution reproduces these bytes) for
  // cache-miss re-execution.
  auto stored = std::make_shared<StoredQuery>();
  stored->schema = result.schema;
  stored->cost = result.execute_seconds;
  stored->snapshot = snap;
  INSIGHTNOTES_ASSIGN_OR_RETURN(ResultSnapshot snapshot,
                                ResultSnapshot::Capture(result.schema, result.rows));
  INSIGHTNOTES_RETURN_IF_ERROR(cache_->Put(result.qid, snapshot,
                                           result.execute_seconds,
                                           EpochKeyOf(*stored)));
  stored->plan = std::move(plan);
  {
    std::lock_guard<std::mutex> lock(queries_mutex_);
    queries_[result.qid] = std::move(stored);
  }
  return result;
}

Result<std::unique_ptr<exec::Operator>> Engine::MakeScan(const std::string& table,
                                                         const std::string& alias,
                                                         bool with_summaries) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  return std::unique_ptr<exec::Operator>(std::make_unique<exec::SeqScanOperator>(
      t, alias.empty() ? table : alias, manager_.get(), store_.get(), with_summaries));
}

uint64_t Engine::EpochKeyOf(const StoredQuery& stored) {
  return stored.snapshot != nullptr ? stored.snapshot->epoch()
                                    : ZoomInCache::kAnyEpoch;
}

Result<ResultSnapshot> Engine::SnapshotFor(QueryId qid, bool* from_cache) {
  std::shared_ptr<StoredQuery> stored;
  {
    std::lock_guard<std::mutex> lock(queries_mutex_);
    auto it = queries_.find(qid);
    if (it != queries_.end()) stored = it->second;
  }
  const uint64_t epoch_key =
      stored != nullptr ? EpochKeyOf(*stored) : ZoomInCache::kAnyEpoch;
  auto cached = cache_->Get(qid, epoch_key);
  if (cached.ok()) {
    *from_cache = true;
    return cached;
  }
  *from_cache = false;
  if (stored == nullptr) {
    return Status::NotFound("QID " + std::to_string(qid) + " is unknown");
  }
  // Cache miss: transparently re-execute the retained plan. Operators are
  // stateful, so only one session may drive the plan at a time; the cache
  // is re-checked under the lock so a raced miss does not execute twice.
  std::lock_guard<std::mutex> exec_lock(stored->exec_mutex);
  cached = cache_->Get(qid, epoch_key);
  if (cached.ok()) {
    *from_cache = true;
    return cached;
  }
  INSIGHTNOTES_LOG(Info) << "zoom-in cache miss for QID " << qid << "; re-executing";
  std::shared_ptr<exec::QueryContext> context =
      stored->plan->shared_query_context();
  if (context == nullptr) {
    context = std::make_shared<exec::QueryContext>();
    stored->plan->SetQueryContext(context);
  }
  // Re-pin the epoch the result was first computed at: a zoom-in after
  // further ingest reproduces the original bytes.
  context->SetSnapshot(stored->snapshot);
  std::vector<AnnotatedTuple> rows;
  auto reexecute = [&]() -> Status {
    INSIGHTNOTES_RETURN_IF_ERROR(stored->plan->Open());
    rows.reserve(stored->plan->EstimatedRows());
    AnnotatedBatch batch;
    while (true) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, stored->plan->NextBatch(&batch));
      if (!more) break;
      for (AnnotatedTuple& tuple : batch.tuples) {
        rows.push_back(std::move(tuple));
      }
    }
    return Status::OK();
  };
  Status executed = reexecute();
  context->SetSnapshot(nullptr);
  if (!executed.ok()) {
    Status closed = stored->plan->Close();
    if (!closed.ok()) {
      INSIGHTNOTES_LOG(Warning) << "closing failed re-execution: "
                                << closed.ToString();
    }
    return executed;
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(ResultSnapshot snapshot,
                                ResultSnapshot::Capture(stored->schema, rows));
  INSIGHTNOTES_RETURN_IF_ERROR(cache_->Put(qid, snapshot, stored->cost, epoch_key));
  return snapshot;
}

Result<rel::Schema> Engine::SchemaOf(QueryId qid) const {
  std::lock_guard<std::mutex> lock(queries_mutex_);
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("QID " + std::to_string(qid) + " is unknown");
  }
  return it->second->schema;
}

Result<ZoomInResult> Engine::ZoomIn(const ZoomInRequest& request) {
  ZoomInResult result;
  // The query's pinned epoch (if any) decides how archived-ness is
  // reported below.
  ReadSnapshot pinned;
  {
    std::lock_guard<std::mutex> lock(queries_mutex_);
    auto it = queries_.find(request.qid);
    if (it != queries_.end()) pinned = it->second->snapshot;
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(ResultSnapshot snapshot,
                                SnapshotFor(request.qid, &result.served_from_cache));
  INSIGHTNOTES_ASSIGN_OR_RETURN(auto matches, ResolveZoomIn(snapshot, request));
  result.rows.reserve(matches.size());
  for (auto& [row_index, component] : matches) {
    ZoomInRowResult row;
    row.row_index = row_index;
    row.tuple = snapshot.rows[row_index].tuple;
    row.component_label = component.label;
    row.annotations.reserve(component.ids.size());
    for (ann::AnnotationId id : component.ids) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(ann::Annotation note, store_->Get(id));
      // Bodies are immutable once stored, but archived-ness is curation
      // state: report it as of the query's epoch, not live, so the zoom-in
      // is consistent with the summaries it drills into.
      if (pinned != nullptr) note.archived = pinned->IsArchived(id);
      row.annotations.push_back(std::move(note));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace insightnotes::core
