#include "core/engine.h"

#include <filesystem>

#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "exec/seq_scan.h"

namespace insightnotes::core {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

Engine::~Engine() {
  if (pool_ != nullptr) {
    Status s = Checkpoint();
    if (!s.ok()) {
      INSIGHTNOTES_LOG(Error) << "checkpoint on shutdown failed: " << s.ToString();
    }
  }
}

Status Engine::Init() {
  disk_ = options_.disk != nullptr ? options_.disk
                                   : std::make_shared<storage::DiskManager>();
  const bool file_backed = !options_.db_path.empty();
  std::error_code ec;
  const bool recover = options_.open_existing && file_backed &&
                       std::filesystem::exists(options_.db_path, ec);

  if (recover) {
    // Audit the old page file: count pages whose checksum no longer
    // verifies (torn writes from the crash). The page file is only a cache
    // of annotation bodies — the WAL is the source of truth — so after the
    // audit it is truncated and rebuilt by replay.
    INSIGHTNOTES_RETURN_IF_ERROR(
        disk_->Open(options_.db_path, storage::DiskOpenMode::kOpenExisting));
    recovery_.performed = true;
    recovery_.pages_scanned = disk_->num_pages();
    auto page = std::make_unique<char[]>(storage::kPageSize);
    for (storage::PageId id = 0; id < recovery_.pages_scanned; ++id) {
      Status read = storage::RetryIo(options_.io_retry,
                                     [&] { return disk_->ReadPage(id, page.get()); });
      if (read.IsCorruption()) {
        ++recovery_.corrupt_pages;
        INSIGHTNOTES_LOG(Warning) << "recovery: " << read.ToString();
      } else if (!read.ok()) {
        return read;
      }
    }
    INSIGHTNOTES_RETURN_IF_ERROR(disk_->Close());
  }
  INSIGHTNOTES_RETURN_IF_ERROR(
      disk_->Open(options_.db_path, storage::DiskOpenMode::kTruncate));

  pool_ = std::make_unique<storage::BufferPool>(disk_.get(), options_.buffer_pool_pages,
                                                options_.io_retry);
  catalog_ = std::make_unique<rel::Catalog>(pool_.get());
  store_ = std::make_unique<ann::AnnotationStore>(pool_.get());
  manager_ = std::make_unique<SummaryManager>(store_.get());
  cache_ = std::make_unique<ZoomInCache>(options_.cache_policy,
                                         options_.cache_budget_bytes,
                                         options_.cache_path, options_.rco_weights);
  INSIGHTNOTES_RETURN_IF_ERROR(cache_->Init());

  if (file_backed) {
    const std::string wal_path = options_.db_path + ".wal";
    uint64_t keep_bytes = UINT64_MAX;
    if (recover) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(
          storage::WriteAheadLog::ReplayStats replayed,
          storage::WriteAheadLog::Replay(
              wal_path, [this](std::string_view payload) { return ApplyWalRecord(payload); }));
      recovery_.wal_records_replayed = replayed.records;
      recovery_.wal_bytes_truncated = replayed.truncated_bytes;
      keep_bytes = replayed.valid_bytes;
      if (replayed.truncated_bytes > 0) {
        INSIGHTNOTES_LOG(Warning) << "recovery: dropped " << replayed.truncated_bytes
                                  << " torn-tail byte(s) from '" << wal_path << "'";
      }
    }
    wal_ = std::make_unique<storage::WriteAheadLog>();
    INSIGHTNOTES_RETURN_IF_ERROR(wal_->Open(wal_path, /*truncate=*/!recover, keep_bytes));
  }
  return Status::OK();
}

Status Engine::ApplyWalRecord(std::string_view payload) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(ann::WalEntry entry, ann::DecodeWalEntry(payload));
  if (const auto* add = std::get_if<ann::WalAddRecord>(&entry)) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(ann::AnnotationId id,
                                  store_->Add(add->note, add->region));
    // Ids are dense and assigned in insertion order, so replay must hand
    // back exactly the id the original ingest logged.
    if (id != add->expected_id) {
      return Status::Corruption("WAL replay assigned annotation id " +
                                std::to_string(id) + ", log expected " +
                                std::to_string(add->expected_id));
    }
    return Status::OK();
  }
  if (const auto* attach = std::get_if<ann::WalAttachRecord>(&entry)) {
    return store_->Attach(attach->id, attach->region);
  }
  return store_->Archive(std::get<ann::WalArchiveRecord>(entry).id);
}

Status Engine::LogWalEntry(const ann::WalEntry& entry) {
  if (wal_ == nullptr) return Status::OK();
  INSIGHTNOTES_RETURN_IF_ERROR(wal_->Append(ann::EncodeWalEntry(entry)));
  return wal_->Sync();
}

Status Engine::Checkpoint() {
  Status first_error = Status::OK();
  auto keep_first = [&first_error](Status s) {
    if (first_error.ok() && !s.ok()) first_error = std::move(s);
  };
  if (pool_ != nullptr) keep_first(pool_->FlushAll());
  if (disk_ != nullptr && disk_->is_open()) keep_first(disk_->Fsync());
  if (wal_ != nullptr && wal_->is_open()) keep_first(wal_->Sync());
  return first_error;
}

Result<size_t> Engine::RepairStaleSummaries() { return manager_->RepairStale(); }

Result<rel::Table*> Engine::CreateTable(const std::string& name, rel::Schema schema) {
  return catalog_->CreateTable(name, std::move(schema));
}

Result<rel::RowId> Engine::Insert(const std::string& table, rel::Tuple tuple) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  return t->Insert(tuple);
}

Result<rel::Table*> Engine::ValidateAnnotateSpec(const AnnotateSpec& spec) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table, catalog_->GetTable(spec.table));
  if (!table->IsLive(spec.row)) {
    return Status::NotFound("row " + std::to_string(spec.row) + " not in table '" +
                            spec.table + "'");
  }
  for (size_t c : spec.columns) {
    if (c >= table->schema().NumColumns()) {
      return Status::OutOfRange("column position " + std::to_string(c) +
                                " outside schema of '" + spec.table + "'");
    }
  }
  return table;
}

namespace {

ann::Annotation NoteFromSpec(const AnnotateSpec& spec) {
  ann::Annotation note;
  note.kind = spec.kind;
  note.author = spec.author;
  note.timestamp = spec.timestamp;
  note.title = spec.title;
  note.body = spec.body;
  return note;
}

}  // namespace

Result<ann::AnnotationId> Engine::Annotate(const AnnotateSpec& spec) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table, ValidateAnnotateSpec(spec));
  ann::CellRegion region{table->id(), spec.row, spec.columns};
  ann::Annotation note = NoteFromSpec(spec);
  // Write-ahead: the record is durable before the store mutates, so a crash
  // between the two replays the annotation instead of losing it.
  INSIGHTNOTES_RETURN_IF_ERROR(
      LogWalEntry(ann::WalAddRecord{store_->NumAnnotations(), note, region}));
  INSIGHTNOTES_ASSIGN_OR_RETURN(ann::AnnotationId id, store_->Add(note, region));
  INSIGHTNOTES_RETURN_IF_ERROR(manager_->OnAnnotationAttached(id, region));
  return id;
}

ThreadPool* Engine::EnsureIngestPool(size_t num_threads) {
  if (ingest_pool_ == nullptr || ingest_pool_->num_threads() != num_threads) {
    ingest_pool_ = std::make_unique<ThreadPool>(num_threads);
  }
  return ingest_pool_.get();
}

Result<std::vector<ann::AnnotationId>> Engine::AnnotateBatch(
    std::span<const AnnotateSpec> specs, const AnnotateBatchOptions& options) {
  // Validate the whole batch up front so a malformed spec cannot leave a
  // half-ingested batch behind.
  std::vector<rel::Table*> tables;
  tables.reserve(specs.size());
  for (const AnnotateSpec& spec : specs) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table, ValidateAnnotateSpec(spec));
    tables.push_back(table);
  }
  std::vector<BatchAnnotation> batch;
  batch.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    BatchAnnotation item;
    item.note = NoteFromSpec(specs[i]);
    item.region = ann::CellRegion{tables[i]->id(), specs[i].row, specs[i].columns};
    batch.push_back(std::move(item));
  }
  // Write-ahead, one sync for the whole batch: every record is durable
  // before the first store mutation, so a crash anywhere in the append loop
  // replays the full batch.
  if (wal_ != nullptr) {
    ann::AnnotationId next_id = store_->NumAnnotations();
    for (size_t i = 0; i < batch.size(); ++i) {
      INSIGHTNOTES_RETURN_IF_ERROR(wal_->Append(ann::EncodeWalEntry(
          ann::WalAddRecord{next_id + i, batch[i].note, batch[i].region})));
    }
    INSIGHTNOTES_RETURN_IF_ERROR(wal_->Sync());
  }
  // Store appends stay serial (the heap file is single-writer) and in spec
  // order, so ids come out exactly as N Annotate() calls would assign them.
  std::vector<ann::AnnotationId> ids;
  ids.reserve(specs.size());
  for (BatchAnnotation& item : batch) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(ann::AnnotationId id,
                                  store_->Add(item.note, item.region));
    item.note.id = id;
    ids.push_back(id);
  }
  ThreadPool* pool =
      options.num_threads > 1 ? EnsureIngestPool(options.num_threads) : nullptr;
  INSIGHTNOTES_RETURN_IF_ERROR(manager_->ApplyAnnotationBatch(batch, pool));
  return ids;
}

Status Engine::AttachAnnotation(ann::AnnotationId id, const std::string& table,
                                rel::RowId row, std::vector<size_t> columns) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  if (!t->IsLive(row)) {
    return Status::NotFound("row " + std::to_string(row) + " not in table '" + table +
                            "'");
  }
  if (id >= store_->NumAnnotations()) {
    return Status::NotFound("annotation " + std::to_string(id) + " does not exist");
  }
  ann::CellRegion region{t->id(), row, std::move(columns)};
  // Validation precedes the log append: a record the store would reject
  // must never reach the WAL, or replay would fail on it.
  INSIGHTNOTES_RETURN_IF_ERROR(LogWalEntry(ann::WalAttachRecord{id, region}));
  INSIGHTNOTES_RETURN_IF_ERROR(store_->Attach(id, region));
  return manager_->OnAnnotationAttached(id, region);
}

Status Engine::ArchiveAnnotation(ann::AnnotationId id) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(auto regions, store_->RegionsOf(id));
  INSIGHTNOTES_RETURN_IF_ERROR(LogWalEntry(ann::WalArchiveRecord{id}));
  INSIGHTNOTES_RETURN_IF_ERROR(store_->Archive(id));
  // Remove the archived annotation's effect from every affected row.
  for (const ann::CellRegion& region : regions) {
    INSIGHTNOTES_RETURN_IF_ERROR(manager_->RebuildRow(region.table, region.row));
  }
  return Status::OK();
}

Status Engine::RegisterInstance(std::unique_ptr<SummaryInstance> instance) {
  return manager_->RegisterInstance(std::move(instance));
}

Status Engine::LinkInstance(const std::string& instance, const std::string& table) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  return manager_->Link(instance, t->id());
}

Status Engine::UnlinkInstance(const std::string& instance, const std::string& table) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  return manager_->Unlink(instance, t->id());
}

Result<QueryResult> Engine::Execute(std::unique_ptr<exec::Operator> plan,
                                    std::vector<TraceEvent>* trace) {
  if (trace != nullptr) {
    plan->SetTraceSink([trace](const std::string& op, const AnnotatedTuple& t) {
      TraceEvent event;
      event.op = op;
      event.tuple = t.tuple.ToString();
      for (const auto& s : t.summaries) {
        if (!event.summaries.empty()) event.summaries += " ";
        event.summaries += s->instance_name() + "=" + s->Render();
      }
      trace->push_back(std::move(event));
    });
  }

  Stopwatch watch;
  INSIGHTNOTES_RETURN_IF_ERROR(plan->Open());
  QueryResult result;
  result.schema = plan->OutputSchema();
  AnnotatedTuple tuple;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, plan->Next(&tuple));
    if (!more) break;
    result.rows.push_back(std::move(tuple));
    tuple = AnnotatedTuple();
  }
  result.execute_seconds = watch.ElapsedSeconds();
  result.qid = ++next_qid_;

  // Materialize the snapshot into the zoom-in cache and retain the plan for
  // cache-miss re-execution.
  INSIGHTNOTES_ASSIGN_OR_RETURN(ResultSnapshot snapshot,
                                ResultSnapshot::Capture(result.schema, result.rows));
  INSIGHTNOTES_RETURN_IF_ERROR(
      cache_->Put(result.qid, snapshot, result.execute_seconds));
  if (trace != nullptr) plan->SetTraceSink(nullptr);
  queries_[result.qid] =
      StoredQuery{std::move(plan), result.schema, result.execute_seconds};
  return result;
}

Result<std::unique_ptr<exec::Operator>> Engine::MakeScan(const std::string& table,
                                                         const std::string& alias,
                                                         bool with_summaries) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  return std::unique_ptr<exec::Operator>(std::make_unique<exec::SeqScanOperator>(
      t, alias.empty() ? table : alias, manager_.get(), store_.get(), with_summaries));
}

Result<ResultSnapshot> Engine::SnapshotFor(QueryId qid, bool* from_cache) {
  auto cached = cache_->Get(qid);
  if (cached.ok()) {
    *from_cache = true;
    return cached;
  }
  *from_cache = false;
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("QID " + std::to_string(qid) + " is unknown");
  }
  // Cache miss: transparently re-execute the retained plan.
  INSIGHTNOTES_LOG(Info) << "zoom-in cache miss for QID " << qid << "; re-executing";
  StoredQuery& stored = it->second;
  INSIGHTNOTES_RETURN_IF_ERROR(stored.plan->Open());
  std::vector<AnnotatedTuple> rows;
  AnnotatedTuple tuple;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, stored.plan->Next(&tuple));
    if (!more) break;
    rows.push_back(std::move(tuple));
    tuple = AnnotatedTuple();
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(ResultSnapshot snapshot,
                                ResultSnapshot::Capture(stored.schema, rows));
  INSIGHTNOTES_RETURN_IF_ERROR(cache_->Put(qid, snapshot, stored.cost));
  return snapshot;
}

Result<rel::Schema> Engine::SchemaOf(QueryId qid) const {
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("QID " + std::to_string(qid) + " is unknown");
  }
  return it->second.schema;
}

Result<ZoomInResult> Engine::ZoomIn(const ZoomInRequest& request) {
  ZoomInResult result;
  INSIGHTNOTES_ASSIGN_OR_RETURN(ResultSnapshot snapshot,
                                SnapshotFor(request.qid, &result.served_from_cache));
  INSIGHTNOTES_ASSIGN_OR_RETURN(auto matches, ResolveZoomIn(snapshot, request));
  result.rows.reserve(matches.size());
  for (auto& [row_index, component] : matches) {
    ZoomInRowResult row;
    row.row_index = row_index;
    row.tuple = snapshot.rows[row_index].tuple;
    row.component_label = component.label;
    row.annotations.reserve(component.ids.size());
    for (ann::AnnotationId id : component.ids) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(ann::Annotation note, store_->Get(id));
      row.annotations.push_back(std::move(note));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace insightnotes::core
