#include "core/engine.h"

#include <filesystem>
#include <queue>

#include "common/clock.h"
#include "common/logging.h"
#include "common/thread_pool.h"
#include "exec/seq_scan.h"

namespace insightnotes::core {

Engine::Engine(EngineOptions options) : options_(std::move(options)) {}

Engine::~Engine() {
  if (pool_ != nullptr) {
    Status s = Checkpoint();
    if (!s.ok()) {
      INSIGHTNOTES_LOG(Error) << "checkpoint on shutdown failed: " << s.ToString();
    }
  }
}

namespace {

/// Where the pre-recovery page file is parked while WAL replay rebuilds a
/// fresh one (see Engine::InitStorage).
std::string ParkedPathFor(const std::string& db_path) {
  return db_path + ".recovering";
}

}  // namespace

Status Engine::Init() {
  Status status = InitStorage();
  if (!status.ok() && !parked_page_file_.empty()) {
    // Recovery failed after the old page file was parked aside. Put it
    // back: it is the only other copy of the annotation bodies, and it
    // must survive a failed recovery (e.g. a corrupt WAL) intact.
    RestoreParkedPageFile();
  }
  return status;
}

Status Engine::InitStorage() {
  recovery_required_ = Status::OK();
  disk_ = options_.disk != nullptr ? options_.disk
                                   : std::make_shared<storage::DiskManager>();
  const bool file_backed = !options_.db_path.empty();
  std::error_code ec;
  if (options_.open_existing && file_backed &&
      std::filesystem::exists(ParkedPathFor(options_.db_path), ec)) {
    // A parked page file means an earlier recovery was interrupted. The
    // parked copy is the pre-recovery original; whatever sits at db_path
    // is at best a partial rebuild. Adopt the original and recover from it
    // (the WAL, untouched by the interrupted attempt, replays either way).
    std::filesystem::remove(options_.db_path, ec);
    std::error_code rename_ec;
    std::filesystem::rename(ParkedPathFor(options_.db_path), options_.db_path,
                            rename_ec);
    if (rename_ec) {
      return Status::IoError("cannot adopt page file '" +
                             ParkedPathFor(options_.db_path) +
                             "' parked by an interrupted recovery: " +
                             rename_ec.message());
    }
  }
  const bool recover = options_.open_existing && file_backed &&
                       std::filesystem::exists(options_.db_path, ec);

  if (recover) {
    // Audit the old page file: count pages whose checksum no longer
    // verifies (torn writes from the crash). The page file is only a cache
    // of annotation bodies — the WAL is the source of truth — so it is
    // rebuilt by replay; but it is parked aside, not destroyed, until
    // replay has actually succeeded.
    INSIGHTNOTES_RETURN_IF_ERROR(
        disk_->Open(options_.db_path, storage::DiskOpenMode::kOpenExisting));
    recovery_.performed = true;
    recovery_.pages_scanned = disk_->num_pages();
    auto page = std::make_unique<char[]>(storage::kPageSize);
    for (storage::PageId id = 0; id < recovery_.pages_scanned; ++id) {
      Status read = storage::RetryIo(options_.io_retry,
                                     [&] { return disk_->ReadPage(id, page.get()); });
      if (read.IsCorruption()) {
        ++recovery_.corrupt_pages;
        INSIGHTNOTES_LOG(Warning) << "recovery: " << read.ToString();
      } else if (!read.ok()) {
        return read;
      }
    }
    INSIGHTNOTES_RETURN_IF_ERROR(disk_->Close());
    std::error_code rename_ec;
    std::filesystem::rename(options_.db_path, ParkedPathFor(options_.db_path),
                            rename_ec);
    if (rename_ec) {
      return Status::IoError("cannot park page file '" + options_.db_path +
                             "' for recovery: " + rename_ec.message());
    }
    parked_page_file_ = ParkedPathFor(options_.db_path);
  }
  INSIGHTNOTES_RETURN_IF_ERROR(
      disk_->Open(options_.db_path, storage::DiskOpenMode::kTruncate));

  pool_ = std::make_unique<storage::BufferPool>(disk_.get(), options_.buffer_pool_pages,
                                                options_.io_retry);
  catalog_ = std::make_unique<rel::Catalog>(pool_.get());
  store_ = std::make_unique<ann::AnnotationStore>(pool_.get());
  manager_ = std::make_unique<SummaryManager>(store_.get());
  cache_ = std::make_unique<ZoomInCache>(options_.cache_policy,
                                         options_.cache_budget_bytes,
                                         options_.cache_path, options_.rco_weights);
  INSIGHTNOTES_RETURN_IF_ERROR(cache_->Init());

  if (file_backed) {
    const std::string wal_path = options_.db_path + ".wal";
    uint64_t keep_bytes = UINT64_MAX;
    if (recover) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(
          storage::WriteAheadLog::ReplayStats replayed,
          storage::WriteAheadLog::Replay(
              wal_path, [this](std::string_view payload) { return ApplyWalRecord(payload); }));
      // Checkpoint markers are consistency checks, not mutations — report
      // only the records that actually rebuilt store state.
      recovery_.wal_records_replayed =
          replayed.records - recovery_.checkpoints_replayed;
      recovery_.wal_bytes_truncated = replayed.truncated_bytes;
      keep_bytes = replayed.valid_bytes;
      if (replayed.truncated_bytes > 0) {
        INSIGHTNOTES_LOG(Warning) << "recovery: dropped " << replayed.truncated_bytes
                                  << " torn-tail byte(s) from '" << wal_path << "'";
      }
    }
    wal_ = std::make_unique<storage::WriteAheadLog>();
    INSIGHTNOTES_RETURN_IF_ERROR(wal_->Open(wal_path, /*truncate=*/!recover, keep_bytes));
  }
  if (!parked_page_file_.empty()) {
    // Replay succeeded; the parked pre-recovery page file is obsolete.
    std::filesystem::remove(parked_page_file_, ec);
    if (ec) {
      INSIGHTNOTES_LOG(Warning) << "cannot remove parked page file '"
                                << parked_page_file_ << "': " << ec.message();
    }
    parked_page_file_.clear();
  }
  return Status::OK();
}

void Engine::RestoreParkedPageFile() {
  // Tear down in reverse construction order: catalog/store/manager hold
  // raw pointers into the pool, the pool into the disk.
  cache_.reset();
  manager_.reset();
  store_.reset();
  catalog_.reset();
  pool_.reset();
  wal_.reset();
  if (disk_ != nullptr && disk_->is_open()) {
    Status closed = disk_->Close();
    if (!closed.ok()) {
      INSIGHTNOTES_LOG(Error) << "closing page file after failed recovery: "
                              << closed.ToString();
    }
  }
  std::error_code ec;
  std::filesystem::remove(options_.db_path, ec);  // The partial rebuild.
  std::error_code rename_ec;
  std::filesystem::rename(parked_page_file_, options_.db_path, rename_ec);
  if (rename_ec) {
    // The original survives at the parked path; the next open_existing
    // Init adopts it from there.
    INSIGHTNOTES_LOG(Error) << "cannot restore parked page file '"
                            << parked_page_file_
                            << "' after failed recovery: " << rename_ec.message();
  } else {
    parked_page_file_.clear();
  }
}

Status Engine::ApplyWalRecord(std::string_view payload) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(ann::WalEntry entry, ann::DecodeWalEntry(payload));
  if (const auto* checkpoint = std::get_if<ann::WalCheckpointRecord>(&entry)) {
    // A checkpoint marker asserts the store state at the time it was
    // written; replay must reproduce exactly that state here.
    if (store_->NumAnnotations() != checkpoint->num_annotations) {
      return Status::Corruption(
          "WAL checkpoint expects " + std::to_string(checkpoint->num_annotations) +
          " annotation(s), replay produced " +
          std::to_string(store_->NumAnnotations()));
    }
    ++recovery_.checkpoints_replayed;
    recovery_.records_since_checkpoint = 0;
    return Status::OK();
  }
  ++recovery_.records_since_checkpoint;
  if (const auto* add = std::get_if<ann::WalAddRecord>(&entry)) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(ann::AnnotationId id,
                                  store_->Add(add->note, add->region));
    // Ids are dense and assigned in insertion order, so replay must hand
    // back exactly the id the original ingest logged.
    if (id != add->expected_id) {
      return Status::Corruption("WAL replay assigned annotation id " +
                                std::to_string(id) + ", log expected " +
                                std::to_string(add->expected_id));
    }
    return Status::OK();
  }
  if (const auto* attach = std::get_if<ann::WalAttachRecord>(&entry)) {
    return store_->Attach(attach->id, attach->region);
  }
  return store_->Archive(std::get<ann::WalArchiveRecord>(entry).id);
}

Status Engine::LogWalEntry(const ann::WalEntry& entry) {
  if (wal_ == nullptr) return Status::OK();
  INSIGHTNOTES_RETURN_IF_ERROR(wal_->Append(ann::EncodeWalEntry(entry)));
  return wal_->Sync();
}

Status Engine::CheckMutable() const {
  if (recovery_required_.ok()) return Status::OK();
  return Status::Internal(
      "engine requires recovery (reopen with open_existing to replay the "
      "WAL); mutations refused after: " +
      recovery_required_.ToString());
}

void Engine::MarkRecoveryRequired(const Status& cause) {
  if (recovery_required_.ok()) recovery_required_ = cause;
  INSIGHTNOTES_LOG(Error)
      << "a WAL-committed record failed to apply; engine requires recovery: "
      << cause.ToString();
}

Result<uint64_t> Engine::WalOffset() {
  if (wal_ == nullptr) return uint64_t{0};
  return wal_->AppendOffset();
}

void Engine::RewindWal(uint64_t offset) {
  if (wal_ == nullptr) return;
  Status s = wal_->TruncateTo(offset);
  if (!s.ok()) {
    // The WAL is now failed and refuses appends, so the stray record can
    // never be followed by one that collides with its id at replay.
    INSIGHTNOTES_LOG(Error) << "WAL rewind failed: " << s.ToString();
  }
}

Status Engine::Checkpoint() {
  Status first_error = Status::OK();
  auto keep_first = [&first_error](Status s) {
    if (first_error.ok() && !s.ok()) first_error = std::move(s);
  };
  if (pool_ != nullptr) keep_first(pool_->FlushAll());
  if (disk_ != nullptr && disk_->is_open()) keep_first(disk_->Fsync());
  if (wal_ != nullptr && wal_->is_open()) keep_first(wal_->Sync());
  // Mark the durability point in the log. Skipped when the flush failed or
  // the engine is in the recovery-required state (the store would disagree
  // with the log). With compaction enabled the whole history is rewritten
  // as a snapshot ending in the marker; otherwise (or when the rewrite
  // fails while the log still accepts appends) the marker is appended to
  // the existing history.
  if (first_error.ok() && recovery_required_.ok() && wal_ != nullptr &&
      wal_->is_open()) {
    if (options_.compact_wal_on_checkpoint) {
      Status compacted = CompactWal();
      if (compacted.ok()) return first_error;
      INSIGHTNOTES_LOG(Warning) << "WAL compaction failed, appending a plain "
                                   "checkpoint marker instead: "
                                << compacted.ToString();
    }
    keep_first(LogWalEntry(ann::WalCheckpointRecord{store_->NumAnnotations()}));
  }
  return first_error;
}

Status Engine::CompactWal() {
  if (wal_ == nullptr || !wal_->is_open()) {
    return Status::Internal("no open WAL to compact");
  }
  // Snapshot the store as the minimal record sequence whose replay rebuilds
  // it exactly: one add per annotation (its first region), one attach per
  // further region, archives, then the checkpoint marker. Replay imposes
  // ordering constraints the original history satisfied but a naive
  // per-annotation emission would not:
  //   * adds must appear in id order (replay verifies dense ids),
  //   * an annotation's regions must appear in region-list order,
  //   * the attachments of one row must appear in the row's insertion
  //     order (OnRow exposes it; summaries depend on it).
  // Each constraint is an edge of a DAG over (annotation, region) events —
  // acyclic because the original mutation history is a linear extension of
  // it — and a deterministic topological order (smallest (id, region)
  // first) linearizes them.
  const uint64_t num = store_->NumAnnotations();
  std::vector<std::vector<ann::CellRegion>> regions(num);
  std::vector<size_t> offset(num + 1, 0);
  for (ann::AnnotationId a = 0; a < num; ++a) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(regions[a], store_->RegionsOf(a));
    if (regions[a].empty()) {
      return Status::Internal("annotation " + std::to_string(a) +
                              " has no regions; cannot snapshot WAL");
    }
    offset[a + 1] = offset[a] + regions[a].size();
  }
  const size_t n = offset[num];
  std::vector<std::vector<size_t>> out(n);
  std::vector<size_t> indegree(n, 0);
  auto add_edge = [&](size_t from, size_t to) {
    out[from].push_back(to);
    ++indegree[to];
  };
  for (ann::AnnotationId a = 0; a < num; ++a) {
    for (size_t r = 0; r + 1 < regions[a].size(); ++r) {
      add_edge(offset[a] + r, offset[a] + r + 1);
    }
    if (a + 1 < num) add_edge(offset[a], offset[a + 1]);
  }
  Status row_chains = Status::OK();
  store_->ForEachRow([&](rel::TableId table, rel::RowId row,
                         const std::vector<ann::Attachment>& attachments) {
    size_t prev = SIZE_MAX;
    for (const ann::Attachment& attachment : attachments) {
      size_t node = SIZE_MAX;
      const std::vector<ann::CellRegion>& list = regions[attachment.annotation];
      for (size_t r = 0; r < list.size(); ++r) {
        if (list[r].table == table && list[r].row == row) {
          node = offset[attachment.annotation] + r;
          break;
        }
      }
      if (node == SIZE_MAX) {
        if (row_chains.ok()) {
          row_chains = Status::Internal(
              "attachment of annotation " + std::to_string(attachment.annotation) +
              " has no matching region; cannot snapshot WAL");
        }
        return;
      }
      if (prev != SIZE_MAX) add_edge(prev, node);
      prev = node;
    }
  });
  INSIGHTNOTES_RETURN_IF_ERROR(row_chains);

  std::priority_queue<size_t, std::vector<size_t>, std::greater<size_t>> ready;
  for (size_t node = 0; node < n; ++node) {
    if (indegree[node] == 0) ready.push(node);
  }
  std::vector<size_t> order;
  order.reserve(n);
  while (!ready.empty()) {
    size_t node = ready.top();
    ready.pop();
    order.push_back(node);
    for (size_t next : out[node]) {
      if (--indegree[next] == 0) ready.push(next);
    }
  }
  if (order.size() != n) {
    return Status::Internal("cyclic ordering constraints; cannot snapshot WAL");
  }

  std::vector<std::string> payloads;
  payloads.reserve(n + 1);
  for (size_t node : order) {
    auto owner = static_cast<ann::AnnotationId>(
        std::upper_bound(offset.begin(), offset.end(), node) - offset.begin() - 1);
    size_t r = node - offset[owner];
    if (r == 0) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(ann::Annotation note, store_->Get(owner));
      payloads.push_back(ann::EncodeWalEntry(
          ann::WalAddRecord{owner, std::move(note), regions[owner][0]}));
    } else {
      payloads.push_back(
          ann::EncodeWalEntry(ann::WalAttachRecord{owner, regions[owner][r]}));
    }
  }
  for (ann::AnnotationId a = 0; a < num; ++a) {
    if (store_->IsArchived(a)) {
      payloads.push_back(ann::EncodeWalEntry(ann::WalArchiveRecord{a}));
    }
  }
  payloads.push_back(ann::EncodeWalEntry(ann::WalCheckpointRecord{num}));

  INSIGHTNOTES_RETURN_IF_ERROR(wal_->Rewrite(payloads));
  ++wal_compaction_.compactions;
  wal_compaction_.records_written += payloads.size();
  return Status::OK();
}

Result<size_t> Engine::RepairStaleSummaries() { return manager_->RepairStale(); }

Result<rel::Table*> Engine::CreateTable(const std::string& name, rel::Schema schema) {
  return catalog_->CreateTable(name, std::move(schema));
}

Result<rel::RowId> Engine::Insert(const std::string& table, rel::Tuple tuple) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  return t->Insert(tuple);
}

Result<rel::Table*> Engine::ValidateAnnotateSpec(const AnnotateSpec& spec) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table, catalog_->GetTable(spec.table));
  if (!table->IsLive(spec.row)) {
    return Status::NotFound("row " + std::to_string(spec.row) + " not in table '" +
                            spec.table + "'");
  }
  for (size_t c : spec.columns) {
    if (c >= table->schema().NumColumns()) {
      return Status::OutOfRange("column position " + std::to_string(c) +
                                " outside schema of '" + spec.table + "'");
    }
  }
  return table;
}

namespace {

ann::Annotation NoteFromSpec(const AnnotateSpec& spec) {
  ann::Annotation note;
  note.kind = spec.kind;
  note.author = spec.author;
  note.timestamp = spec.timestamp;
  note.title = spec.title;
  note.body = spec.body;
  return note;
}

}  // namespace

Result<ann::AnnotationId> Engine::Annotate(const AnnotateSpec& spec) {
  INSIGHTNOTES_RETURN_IF_ERROR(CheckMutable());
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table, ValidateAnnotateSpec(spec));
  ann::CellRegion region{table->id(), spec.row, spec.columns};
  ann::Annotation note = NoteFromSpec(spec);
  // Write-ahead: the record is durable before the store mutates, so a crash
  // between the two replays the annotation instead of losing it.
  INSIGHTNOTES_ASSIGN_OR_RETURN(uint64_t wal_mark, WalOffset());
  Status logged = LogWalEntry(ann::WalAddRecord{store_->NumAnnotations(), note, region});
  if (!logged.ok()) {
    // Never acknowledged: cut any half-landed bytes back out so the next
    // append cannot follow a torn or unsynced frame.
    RewindWal(wal_mark);
    return logged;
  }
  Result<ann::AnnotationId> added = store_->Add(note, region);
  if (!added.ok()) {
    // The record is committed but unapplied: replay resurrects it on the
    // next open. Until then no further record may be logged — it would
    // reuse this record's dense id and make replay diverge.
    MarkRecoveryRequired(added.status());
    return added.status();
  }
  INSIGHTNOTES_RETURN_IF_ERROR(manager_->OnAnnotationAttached(*added, region));
  return *added;
}

ThreadPool* Engine::EnsureIngestPool(size_t num_threads) {
  if (ingest_pool_ == nullptr || ingest_pool_->num_threads() != num_threads) {
    ingest_pool_ = std::make_unique<ThreadPool>(num_threads);
  }
  return ingest_pool_.get();
}

ThreadPool* Engine::ExecPool(size_t num_threads) {
  if (exec_pool_ == nullptr || exec_pool_->num_threads() != num_threads) {
    exec_pool_ = std::make_unique<ThreadPool>(num_threads);
  }
  return exec_pool_.get();
}

Result<std::vector<ann::AnnotationId>> Engine::AnnotateBatch(
    std::span<const AnnotateSpec> specs, const AnnotateBatchOptions& options) {
  INSIGHTNOTES_RETURN_IF_ERROR(CheckMutable());
  // Validate the whole batch up front so a malformed spec cannot leave a
  // half-ingested batch behind.
  std::vector<rel::Table*> tables;
  tables.reserve(specs.size());
  for (const AnnotateSpec& spec : specs) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * table, ValidateAnnotateSpec(spec));
    tables.push_back(table);
  }
  std::vector<BatchAnnotation> batch;
  batch.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    BatchAnnotation item;
    item.note = NoteFromSpec(specs[i]);
    item.region = ann::CellRegion{tables[i]->id(), specs[i].row, specs[i].columns};
    batch.push_back(std::move(item));
  }
  // Write-ahead, one sync for the whole batch: every record is durable
  // before the first store mutation, so a crash anywhere in the append loop
  // replays the full batch.
  std::vector<uint64_t> wal_marks;  // Offset before each record's frame.
  if (wal_ != nullptr) {
    wal_marks.reserve(batch.size());
    ann::AnnotationId next_id = store_->NumAnnotations();
    Status logged;
    for (size_t i = 0; i < batch.size() && logged.ok(); ++i) {
      Result<uint64_t> mark = wal_->AppendOffset();
      if (!mark.ok()) {
        logged = mark.status();
        break;
      }
      wal_marks.push_back(*mark);
      logged = wal_->Append(ann::EncodeWalEntry(
          ann::WalAddRecord{next_id + i, batch[i].note, batch[i].region}));
    }
    if (logged.ok()) logged = wal_->Sync();
    if (!logged.ok()) {
      // No record was acknowledged and none applied; roll the whole batch
      // back out of the log.
      if (!wal_marks.empty()) RewindWal(wal_marks.front());
      return logged;
    }
  }
  // Store appends stay serial (the heap file is single-writer) and in spec
  // order, so ids come out exactly as N Annotate() calls would assign them.
  std::vector<ann::AnnotationId> ids;
  ids.reserve(specs.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    BatchAnnotation& item = batch[i];
    Result<ann::AnnotationId> added = store_->Add(item.note, item.region);
    if (!added.ok()) {
      // Records from position i on are committed but unapplied; replay
      // resurrects them, so further logging must stop (see Annotate).
      MarkRecoveryRequired(added.status());
      return added.status();
    }
    item.note.id = *added;
    ids.push_back(*added);
  }
  ThreadPool* pool =
      options.num_threads > 1 ? EnsureIngestPool(options.num_threads) : nullptr;
  INSIGHTNOTES_RETURN_IF_ERROR(manager_->ApplyAnnotationBatch(batch, pool));
  return ids;
}

Status Engine::AttachAnnotation(ann::AnnotationId id, const std::string& table,
                                rel::RowId row, std::vector<size_t> columns) {
  INSIGHTNOTES_RETURN_IF_ERROR(CheckMutable());
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  if (!t->IsLive(row)) {
    return Status::NotFound("row " + std::to_string(row) + " not in table '" + table +
                            "'");
  }
  if (id >= store_->NumAnnotations()) {
    return Status::NotFound("annotation " + std::to_string(id) + " does not exist");
  }
  ann::CellRegion region{t->id(), row, std::move(columns)};
  // Validation precedes the log append: a record the store would reject
  // must never reach the WAL, or replay would fail on it.
  INSIGHTNOTES_ASSIGN_OR_RETURN(uint64_t wal_mark, WalOffset());
  Status logged = LogWalEntry(ann::WalAttachRecord{id, region});
  if (!logged.ok()) {
    RewindWal(wal_mark);
    return logged;
  }
  Status applied = store_->Attach(id, region);
  if (!applied.ok()) {
    MarkRecoveryRequired(applied);
    return applied;
  }
  return manager_->OnAnnotationAttached(id, region);
}

Status Engine::ArchiveAnnotation(ann::AnnotationId id) {
  INSIGHTNOTES_RETURN_IF_ERROR(CheckMutable());
  INSIGHTNOTES_ASSIGN_OR_RETURN(auto regions, store_->RegionsOf(id));
  INSIGHTNOTES_ASSIGN_OR_RETURN(uint64_t wal_mark, WalOffset());
  Status logged = LogWalEntry(ann::WalArchiveRecord{id});
  if (!logged.ok()) {
    RewindWal(wal_mark);
    return logged;
  }
  Status applied = store_->Archive(id);
  if (!applied.ok()) {
    MarkRecoveryRequired(applied);
    return applied;
  }
  // Remove the archived annotation's effect from every affected row.
  for (const ann::CellRegion& region : regions) {
    INSIGHTNOTES_RETURN_IF_ERROR(manager_->RebuildRow(region.table, region.row));
  }
  return Status::OK();
}

Status Engine::RegisterInstance(std::unique_ptr<SummaryInstance> instance) {
  return manager_->RegisterInstance(std::move(instance));
}

Status Engine::LinkInstance(const std::string& instance, const std::string& table) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  return manager_->Link(instance, t->id());
}

Status Engine::UnlinkInstance(const std::string& instance, const std::string& table) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  return manager_->Unlink(instance, t->id());
}

Result<QueryResult> Engine::Execute(std::unique_ptr<exec::Operator> plan,
                                    std::vector<TraceEvent>* trace) {
  if (trace != nullptr) {
    plan->SetTraceSink([trace](const std::string& op, const AnnotatedTuple& t) {
      TraceEvent event;
      event.op = op;
      event.tuple = t.tuple.ToString();
      for (const auto& s : t.summaries) {
        if (!event.summaries.empty()) event.summaries += " ";
        event.summaries += s->instance_name() + "=" + s->Render();
      }
      trace->push_back(std::move(event));
    });
  }

  Stopwatch watch;
  INSIGHTNOTES_RETURN_IF_ERROR(plan->Open());
  QueryResult result;
  result.schema = plan->OutputSchema();
  result.rows.reserve(plan->EstimatedRows());
  AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, plan->NextBatch(&batch));
    if (!more) break;
    for (AnnotatedTuple& tuple : batch.tuples) {
      result.rows.push_back(std::move(tuple));
    }
  }
  result.execute_seconds = watch.ElapsedSeconds();
  result.qid = ++next_qid_;

  // Materialize the snapshot into the zoom-in cache and retain the plan for
  // cache-miss re-execution.
  INSIGHTNOTES_ASSIGN_OR_RETURN(ResultSnapshot snapshot,
                                ResultSnapshot::Capture(result.schema, result.rows));
  INSIGHTNOTES_RETURN_IF_ERROR(
      cache_->Put(result.qid, snapshot, result.execute_seconds));
  if (trace != nullptr) plan->SetTraceSink(nullptr);
  queries_[result.qid] =
      StoredQuery{std::move(plan), result.schema, result.execute_seconds};
  return result;
}

Result<std::unique_ptr<exec::Operator>> Engine::MakeScan(const std::string& table,
                                                         const std::string& alias,
                                                         bool with_summaries) {
  INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Table * t, catalog_->GetTable(table));
  return std::unique_ptr<exec::Operator>(std::make_unique<exec::SeqScanOperator>(
      t, alias.empty() ? table : alias, manager_.get(), store_.get(), with_summaries));
}

Result<ResultSnapshot> Engine::SnapshotFor(QueryId qid, bool* from_cache) {
  auto cached = cache_->Get(qid);
  if (cached.ok()) {
    *from_cache = true;
    return cached;
  }
  *from_cache = false;
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("QID " + std::to_string(qid) + " is unknown");
  }
  // Cache miss: transparently re-execute the retained plan.
  INSIGHTNOTES_LOG(Info) << "zoom-in cache miss for QID " << qid << "; re-executing";
  StoredQuery& stored = it->second;
  INSIGHTNOTES_RETURN_IF_ERROR(stored.plan->Open());
  std::vector<AnnotatedTuple> rows;
  rows.reserve(stored.plan->EstimatedRows());
  AnnotatedBatch batch;
  while (true) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool more, stored.plan->NextBatch(&batch));
    if (!more) break;
    for (AnnotatedTuple& tuple : batch.tuples) {
      rows.push_back(std::move(tuple));
    }
  }
  INSIGHTNOTES_ASSIGN_OR_RETURN(ResultSnapshot snapshot,
                                ResultSnapshot::Capture(stored.schema, rows));
  INSIGHTNOTES_RETURN_IF_ERROR(cache_->Put(qid, snapshot, stored.cost));
  return snapshot;
}

Result<rel::Schema> Engine::SchemaOf(QueryId qid) const {
  auto it = queries_.find(qid);
  if (it == queries_.end()) {
    return Status::NotFound("QID " + std::to_string(qid) + " is unknown");
  }
  return it->second.schema;
}

Result<ZoomInResult> Engine::ZoomIn(const ZoomInRequest& request) {
  ZoomInResult result;
  INSIGHTNOTES_ASSIGN_OR_RETURN(ResultSnapshot snapshot,
                                SnapshotFor(request.qid, &result.served_from_cache));
  INSIGHTNOTES_ASSIGN_OR_RETURN(auto matches, ResolveZoomIn(snapshot, request));
  result.rows.reserve(matches.size());
  for (auto& [row_index, component] : matches) {
    ZoomInRowResult row;
    row.row_index = row_index;
    row.tuple = snapshot.rows[row_index].tuple;
    row.component_label = component.label;
    row.annotations.reserve(component.ids.size());
    for (ann::AnnotationId id : component.ids) {
      INSIGHTNOTES_ASSIGN_OR_RETURN(ann::Annotation note, store_->Get(id));
      row.annotations.push_back(std::move(note));
    }
    result.rows.push_back(std::move(row));
  }
  return result;
}

}  // namespace insightnotes::core
