// Engine: the public facade of InsightNotes. Wires together the storage
// substrate, catalog, annotation store, summary manager, query execution,
// QID registry and the zoom-in cache. Typical flow:
//
//   Engine engine;
//   engine.Init();
//   engine.CreateTable("birds", schema);
//   engine.RegisterInstance(SummaryInstance::MakeClassifier(...));
//   engine.LinkInstance("ClassBird1", "birds");
//   engine.Annotate({.table = "birds", .row = 0, .body = "eating stonewort"});
//   auto result = engine.Execute(std::move(plan));       // QID assigned.
//   auto raw = engine.ZoomIn({.qid = result->qid, ...}); // Raw annotations.

#ifndef INSIGHTNOTES_CORE_ENGINE_H_
#define INSIGHTNOTES_CORE_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "annotation/annotation_store.h"
#include "annotation/wal_records.h"
#include "common/result.h"
#include "core/engine_snapshot.h"
#include "core/rco_cache.h"
#include "core/summary_manager.h"
#include "core/zoom_in.h"
#include "exec/operator.h"
#include "rel/btree.h"
#include "rel/catalog.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/io_retry.h"
#include "storage/wal_segments.h"

namespace insightnotes::core {

struct EngineOptions {
  std::string db_path;            // "" = in-memory database file.
  size_t buffer_pool_pages = 1024;
  CachePolicy cache_policy = CachePolicy::kRco;
  size_t cache_budget_bytes = 4 << 20;
  std::string cache_path;         // "" = in-memory cache backing.
  RcoWeights rco_weights;
  /// Reopen an existing database file instead of truncating it: Init audits
  /// the page file's checksums, then rebuilds the store by replaying the
  /// segmented write-ahead log rooted at `db_path + ".wal"` (see
  /// Engine::recovery()).
  bool open_existing = false;
  /// Backoff schedule the buffer pool applies to transient disk errors.
  storage::IoRetryPolicy io_retry;
  /// Test seam: a caller-supplied disk (e.g. a FaultInjectingDiskManager)
  /// to use instead of a plain DiskManager. Must not be open yet.
  std::shared_ptr<storage::DiskManager> disk;
  /// Test seam like `disk`, but for the index file (`db_path + ".idx"`).
  std::shared_ptr<storage::DiskManager> index_disk;
  /// Clamp on persistent B+-tree node fanout (0 = use the page capacity);
  /// tests shrink it to force deep trees on tiny data.
  size_t index_max_node_entries = 0;
  /// Buffer-pool frames for the index file (0 = same as buffer_pool_pages).
  size_t index_pool_pages = 0;
  /// Compact the WAL in the background: each checkpoint schedules an
  /// incremental pass that retires the mostly-dead sealed segments (see
  /// storage::SegmentedWal::CompactOnce), bounding log growth across
  /// checkpoint/reopen cycles without stalling ingest.
  bool compact_wal_on_checkpoint = true;
  /// Size threshold at which the active WAL segment is sealed and a fresh
  /// one opened (between mutations).
  uint64_t wal_segment_bytes = 1 << 20;
  /// Minimum dead-record fraction before a sealed segment is compacted.
  double wal_compact_min_dead_ratio = 0.25;
  /// WAL replay parallelism on reopen: 0 = one task per hardware thread,
  /// 1 = the exact serial replay path, N > 1 = replay chains over N pool
  /// workers. Any setting rebuilds the identical logical store state.
  size_t recovery_threads = 0;
};

/// What background WAL compaction has done over this engine's life.
struct WalCompactionStats {
  uint64_t compactions = 0;        // Successful segment-rewrite swaps.
  uint64_t records_written = 0;    // Live records carried into fresh segments.
  uint64_t records_dropped = 0;    // Proven-dead records eliminated.
  uint64_t segments_retired = 0;   // Old segment files removed.
  uint64_t failures = 0;           // Failed passes (the candidate is retried).
};

/// What Init did when reopening an existing database file.
struct RecoveryReport {
  bool performed = false;           // False for fresh/in-memory databases.
  uint64_t wal_records_replayed = 0;  // Mutation records only (no markers).
  uint64_t wal_bytes_truncated = 0;  // Torn WAL tail cut off before appends.
  uint32_t pages_scanned = 0;        // Pages audited in the old page file.
  uint32_t corrupt_pages = 0;        // Pages whose checksum failed the audit.
  uint64_t checkpoints_replayed = 0;  // kCheckpoint markers seen (and verified).
  // Mutation records decoded after the last checkpoint marker (the work a
  // checkpoint-aware replay would actually redo).
  uint64_t records_since_checkpoint = 0;
  uint64_t replay_chains = 0;   // Independent chains replay partitioned into.
  size_t replay_threads = 1;    // Parallelism replay actually used.
  // Persistent indexes adopted from the latest WAL index checkpoint —
  // recovery never rebuilds an index from a table scan, it reattaches the
  // committed roots (trees surface on their tables at CreateTable).
  uint64_t indexes_recovered = 0;
  uint64_t index_checkpoints_replayed = 0;
};

/// One emitted tuple as seen by an operator — the demo's under-the-hood log.
struct TraceEvent {
  std::string op;         // Operator name, e.g. "HashJoin(r.a = s.x)".
  std::string tuple;      // Rendered data values.
  std::string summaries;  // Rendered summary objects.
};

struct QueryResult {
  QueryId qid = 0;
  rel::Schema schema;
  std::vector<AnnotatedTuple> rows;
  double execute_seconds = 0.0;
  uint64_t epoch = 0;  // Epoch the query ran against (0 = live reads).
};

/// Per-call knobs of Engine::Execute (concurrent sessions use all three).
struct ExecuteOptions {
  /// 0 = assign from the engine's global counter; non-zero = the caller
  /// (a session with its own QID namespace) picked the id.
  QueryId qid = 0;
  /// Epoch to execute against; null pins the current epoch at entry.
  ReadSnapshot snapshot;
  /// Register the result for zoom-in (cache insert + retained plan). Bulk
  /// benchmark/fuzz readers pass false so the registry stays bounded.
  bool retain = true;
  /// Per-operator tuple flow recording (Figure 2 walk-through).
  std::vector<TraceEvent>* trace = nullptr;
};

struct AnnotateSpec {
  std::string table;
  rel::RowId row = rel::kInvalidRowId;
  std::vector<size_t> columns;  // Empty = whole row.
  std::string body;
  std::string author = "anonymous";
  ann::AnnotationKind kind = ann::AnnotationKind::kComment;
  std::string title;
  int64_t timestamp = 0;
};

/// Options of the batched annotation-ingest facade.
struct AnnotateBatchOptions {
  /// Ingest shards/workers. 1 (the default) runs the exact serial path;
  /// N > 1 shards summary maintenance by target row across a thread pool.
  /// Either way the maintained summary objects are byte-identical to
  /// serial ingest of the same specs (see DESIGN.md "Concurrency model").
  size_t num_threads = 1;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Opens the storage substrate. With `options.open_existing` and a
  /// file-backed `db_path`, an existing database is recovered: the page
  /// file's checksums are audited, the file is parked at
  /// `db_path + ".recovering"`, and the raw-annotation store is rebuilt
  /// by replaying the WAL (the page file is a rebuildable cache of
  /// annotation bodies; the log is the source of truth). The parked copy
  /// is deleted once replay succeeds and restored if Init fails first, so
  /// a failed recovery never destroys the pre-recovery data. Summary
  /// instances,
  /// links and the catalog are configuration — re-register and re-link them
  /// after Init; Link() re-summarizes the recovered annotations.
  Status Init();

  /// What recovery did during Init (all-zero unless open_existing hit an
  /// existing file).
  const RecoveryReport& recovery() const { return recovery_; }

  /// True after a WAL-committed mutation failed to apply to the store: the
  /// log is ahead of memory, so Annotate/AnnotateBatch/Attach/Archive are
  /// refused (a later record would reuse the unapplied record's dense id
  /// and make replay diverge). Reads still serve the pre-failure state;
  /// reopen with open_existing to replay the log and resume.
  bool requires_recovery() const { return !recovery_required_.ok(); }

  /// Flushes dirty pages, fsyncs the page file, syncs the WAL, rotates the
  /// active segment if it crossed the size threshold, and appends a
  /// kCheckpoint marker recording the durable annotation count. With
  /// `options.compact_wal_on_checkpoint` it then *schedules* an incremental
  /// compaction pass on the background compactor thread and returns without
  /// waiting — ingest continues while mostly-dead sealed segments are
  /// rewritten (WaitForWalCompaction blocks on the pass for tests and
  /// benches). A failed pass leaves the segment list unchanged
  /// (wal_compaction().failures counts it; the next pass retries the same
  /// candidate). Called best-effort by the destructor; call it explicitly
  /// at batch boundaries for a durability point. Replay verifies each
  /// marker and reports how many records follow the last one
  /// (RecoveryReport) — see "Durability & failure model" in DESIGN.md.
  Status Checkpoint();

  /// Blocks until every compaction pass scheduled so far has finished.
  void WaitForWalCompaction();

  /// What background WAL compaction has done so far (snapshot; the
  /// compactor thread updates it concurrently).
  WalCompactionStats wal_compaction() const;

  /// Rebuilds every summary row marked stale by a degraded summarizer
  /// failure (see SummaryManager::RepairStale). Returns rows repaired.
  Result<size_t> RepairStaleSummaries();

  // --- Schema & data -------------------------------------------------------
  Result<rel::Table*> CreateTable(const std::string& name, rel::Schema schema);
  Result<rel::RowId> Insert(const std::string& table, rel::Tuple tuple);

  // --- Statistics & indexes --------------------------------------------------
  /// ANALYZE <table>: one scan collecting per-column distributions (NDV,
  /// min/max, equi-depth histogram, null fraction), the live-annotation
  /// count distribution, and per-instance summary density; installs the
  /// snapshot on the table for the cost-based optimizer. Returns the rows
  /// analyzed. Stats are advisory — plans stay correct (just differently
  /// shaped) when they go stale; re-run ANALYZE after bulk changes.
  Result<uint64_t> Analyze(const std::string& table);
  /// CREATE INDEX ON <table>(<column>): builds (or rebuilds) the ordered
  /// secondary index the optimizer's index-backed access paths probe.
  Status CreateIndex(const std::string& table, const std::string& column);

  // --- Annotations ----------------------------------------------------------
  /// Adds an annotation and incrementally maintains affected summaries.
  Result<ann::AnnotationId> Annotate(const AnnotateSpec& spec);
  /// Batched ingest: validates every spec up front, appends the annotations
  /// to the store in order (ids are assigned exactly as N Annotate calls
  /// would), then folds them into the maintained summaries — serially for
  /// `options.num_threads == 1`, sharded by target row otherwise. Returns
  /// the assigned ids in spec order. On a mid-batch maintenance error the
  /// stored annotations remain; affected rows can be repaired with
  /// SummaryManager::RebuildRow.
  Result<std::vector<ann::AnnotationId>> AnnotateBatch(
      std::span<const AnnotateSpec> specs, const AnnotateBatchOptions& options = {});
  /// Attaches an existing annotation to another region (shared annotations).
  Status AttachAnnotation(ann::AnnotationId id, const std::string& table,
                          rel::RowId row, std::vector<size_t> columns = {});
  /// Curation: archive + remove the annotation's effect from summaries.
  Status ArchiveAnnotation(ann::AnnotationId id);

  // --- Summary instances ----------------------------------------------------
  Status RegisterInstance(std::unique_ptr<SummaryInstance> instance);
  Status LinkInstance(const std::string& instance, const std::string& table);
  Status UnlinkInstance(const std::string& instance, const std::string& table);

  // --- Snapshot isolation ----------------------------------------------------
  /// Pins the currently published epoch: one acquire-load, no locks. The
  /// returned handle keeps that epoch's row states, summary versions and
  /// archived bitmap alive until released; mutators never touch it. Refused
  /// (without disturbing already-pinned readers) once the engine entered the
  /// recovery-required state.
  Result<ReadSnapshot> PinSnapshot() const;

  /// Epoch of the currently published snapshot (0 before Init).
  uint64_t CurrentEpoch() const;

  /// Epochs fully retired so far: published, superseded, and dropped by
  /// their last reader. The tests' leak check for epoch lifetime.
  uint64_t RetiredEpochs() const {
    return epochs_retired_->load(std::memory_order_acquire);
  }

  /// Allocates a QID namespace for one SqlSession. Namespace 0 (the first)
  /// is the legacy single-session namespace backed by the engine's global
  /// counter; later sessions derive QIDs as (namespace << 48) | local.
  uint64_t NewSessionNamespace() {
    return next_session_ns_.fetch_add(1, std::memory_order_relaxed);
  }

  // --- Query execution ------------------------------------------------------
  /// Runs `plan` to completion, assigns a QID, registers the result in the
  /// zoom-in cache, and retains the plan for cache-miss re-execution. With
  /// `trace` non-null, per-operator tuple flow is recorded (Figure 2
  /// walk-through / demo feature 3). The query executes against one pinned
  /// epoch (see ExecuteOptions::snapshot), so concurrent AnnotateBatch
  /// ingest never bleeds into a running result.
  Result<QueryResult> Execute(std::unique_ptr<exec::Operator> plan,
                              std::vector<TraceEvent>* trace = nullptr);

  /// Execute with explicit per-call options (sessions, benches, fuzz).
  Result<QueryResult> Execute(std::unique_ptr<exec::Operator> plan,
                              ExecuteOptions options);

  /// Builds a summary-aware scan over `table`.
  Result<std::unique_ptr<exec::Operator>> MakeScan(const std::string& table,
                                                   const std::string& alias = "",
                                                   bool with_summaries = true);

  // --- Zoom-in ---------------------------------------------------------------
  /// Resolves a ZoomIn command: serves the referenced result from the cache
  /// or transparently re-executes its retained plan, then fetches the raw
  /// annotations behind the requested summary component.
  Result<ZoomInResult> ZoomIn(const ZoomInRequest& request);

  /// Output schema of a previously executed query (for binding ZoomIn WHERE
  /// predicates against the result).
  Result<rel::Schema> SchemaOf(QueryId qid) const;

  /// Returns the query-execution pool with `num_threads` workers, building
  /// it on first use. Used by the planner's parallel section
  /// (exec::GatherOperator). Pools are cached per size and never destroyed
  /// while the engine lives, so plans retained for zoom-in re-execution
  /// keep valid pool pointers even as other sessions request different
  /// parallelism degrees.
  ThreadPool* ExecPool(size_t num_threads);

  // --- Component access (benches, tests, shell) ------------------------------
  rel::Catalog* catalog() { return catalog_.get(); }
  rel::BTreeStore* index_store() { return index_store_.get(); }
  storage::BufferPool* index_pool() { return index_pool_.get(); }
  ann::AnnotationStore* annotations() { return store_.get(); }
  SummaryManager* summaries() { return manager_.get(); }
  ZoomInCache* cache() { return cache_.get(); }
  storage::BufferPool* buffer_pool() { return pool_.get(); }
  storage::DiskManager* disk() { return disk_.get(); }
  storage::SegmentedWal* wal() { return wal_.get(); }

 private:
  struct StoredQuery {
    std::unique_ptr<exec::Operator> plan;
    rel::Schema schema;
    double cost = 0.0;
    /// Epoch the stored result was computed at; re-execution re-pins it so
    /// a zoom-in after further ingest reproduces the original bytes.
    ReadSnapshot snapshot;
    /// Serializes cache-miss re-execution of this plan across sessions
    /// (operators are stateful; two threads must not Open() one plan).
    std::mutex exec_mutex;
  };

  Result<ResultSnapshot> SnapshotFor(QueryId qid, bool* from_cache);

  /// Cache key for a stored query's result (kAnyEpoch when it ran live).
  static uint64_t EpochKeyOf(const StoredQuery& stored);

  /// Visible-row bound of every catalog table right now (writer thread).
  std::unordered_map<rel::TableId, rel::RowId> CurrentBounds() const;

  /// Publishes a from-scratch snapshot of the current state (Init, Link/
  /// Unlink, stale repair). Writer mutex must be held.
  void PublishFull();

  /// Publishes the next epoch re-reading only `dirty` rows. Writer mutex
  /// must be held.
  void PublishDelta(const std::vector<EngineSnapshot::RowKey>& dirty,
                    const std::vector<ann::AnnotationId>& newly_archived = {});

  /// Validates an annotate spec against the catalog (table, row liveness,
  /// column range) and returns the target table.
  Result<rel::Table*> ValidateAnnotateSpec(const AnnotateSpec& spec);

  /// Lazily (re)builds the ingest pool with `num_threads` workers.
  ThreadPool* EnsureIngestPool(size_t num_threads);

  /// Init minus the failure cleanup: Init() restores the parked page file
  /// if this returns an error after parking it.
  Status InitStorage();

  /// Opens the index file and builds the shared B+-tree allocator. With a
  /// valid index checkpoint replayed from the WAL the existing file is
  /// adopted (committed trees park in pending_indexes_ until their tables
  /// are re-created); otherwise the file is truncated and every index
  /// starts over. Runs inside InitStorage, after WAL replay.
  Status InitIndexStorage(bool adopt, const ann::WalIndexCheckpointRecord& checkpoint);

  /// The index-commit point: flushes + fsyncs the index file, appends a
  /// WalIndexCheckpointRecord snapshotting every persistent index root and
  /// the allocator state, then seals the shadow-paging epoch. Skipped (OK)
  /// while a broken index could commit a half-mutated tree — the previous
  /// committed checkpoint simply stays live. Writer mutex must be held.
  Status CommitIndexCheckpoint();

  /// Best-effort undo of a failed recovery: tears the half-built storage
  /// stack down and moves the parked pre-recovery page file back to
  /// `options_.db_path`.
  void RestoreParkedPageFile();

  /// Appends `entry` to the WAL, syncs it, and feeds the liveness tracker
  /// (no-op without a WAL). Must run before the mutation it describes
  /// touches the store.
  Status LogWalEntry(const ann::WalEntry& entry);

  /// Rotates the active WAL segment when it crossed the size threshold.
  /// Must run before a mutation captures its rollback mark (rotation moves
  /// the append position to a fresh segment, invalidating older marks).
  Status MaybeRotateWal();

  /// OK while WAL-logged mutations are accepted; the recovery-required
  /// error otherwise (see requires_recovery()).
  Status CheckMutable() const;

  /// Enters the recovery-required state after `cause` prevented a
  /// WAL-committed record from applying to the store.
  void MarkRecoveryRequired(const Status& cause);

  /// The active-segment append position to pass to RewindWal (default-
  /// constructed without a WAL).
  Result<storage::SegmentedWal::Mark> WalMark();

  /// Rolls unacknowledged record bytes at or past `mark` back out of the
  /// WAL. Best-effort: on failure the WAL enters its failed state and
  /// refuses further appends, so the stray record can never be followed by
  /// a diverging one.
  void RewindWal(const storage::SegmentedWal::Mark& mark);

  /// Fsyncs the directory holding `path` through the DiskManager seam
  /// (falls back to the plain filesystem sync when no disk exists yet).
  Status FsyncParentDir(const std::string& path);

  /// Queues one background compaction pass (starts the compactor thread on
  /// first use).
  void ScheduleWalCompaction();

  /// Drains scheduled passes, then joins the compactor thread.
  void StopWalCompactor();

  void WalCompactorLoop();

  EngineOptions options_;
  std::shared_ptr<storage::DiskManager> disk_;
  std::unique_ptr<storage::SegmentedWal> wal_;
  /// Observes every acknowledged WAL record and forwards superseded
  /// positions to the log's per-segment dead-record accounting.
  ann::WalLivenessTracker tracker_;
  RecoveryReport recovery_;
  Status recovery_required_;  // Non-OK: mutations refused, see requires_recovery().
  // Non-empty while the pre-recovery page file sits parked at
  // `db_path + ".recovering"` (from after the audit until replay succeeds).
  std::string parked_page_file_;
  std::unique_ptr<storage::BufferPool> pool_;
  // Index storage: its own page file (db_path + ".idx"), pool and shared
  // B+-tree allocator. Declared before catalog_ so the tables' trees are
  // destroyed before the store/pool they point into.
  std::shared_ptr<storage::DiskManager> index_disk_;
  std::unique_ptr<storage::BufferPool> index_pool_;
  std::unique_ptr<rel::BTreeStore> index_store_;
  // Committed indexes replayed from the WAL whose tables the caller has not
  // re-created yet: table name -> column -> committed tree state.
  std::map<std::string, std::map<size_t, rel::BTreeMeta>> pending_indexes_;
  std::unique_ptr<rel::Catalog> catalog_;
  std::unique_ptr<ann::AnnotationStore> store_;
  std::unique_ptr<SummaryManager> manager_;
  std::unique_ptr<ZoomInCache> cache_;
  std::unique_ptr<ThreadPool> ingest_pool_;  // Lazily sized by AnnotateBatch.
  // Exec pools cached per worker count (see ExecPool()).
  std::mutex exec_pools_mutex_;
  std::map<size_t, std::unique_ptr<ThreadPool>> exec_pools_;
  // Query registry: guarded by queries_mutex_ so concurrent sessions can
  // register/look up results; entries are shared_ptr so a lookup can leave
  // the lock before re-executing.
  mutable std::mutex queries_mutex_;
  std::unordered_map<QueryId, std::shared_ptr<StoredQuery>> queries_;
  // Atomic: sessions in namespace 0 assign QIDs concurrently.
  std::atomic<QueryId> next_qid_{100};  // Figure 3 shows QIDs starting at 101.
  std::atomic<uint64_t> next_session_ns_{0};

  // --- Epoch publication (single writer, many readers) ----------------------
  // Serializes every mutator (Annotate/AnnotateBatch/Attach/Archive/
  // Checkpoint/DDL/Analyze/Link). Readers never take it.
  std::mutex writer_mutex_;
  // The published epoch; readers pin it with one acquire-load.
  std::atomic<std::shared_ptr<const EngineSnapshot>> published_;
  uint64_t epoch_counter_ = 0;  // Writer-mutex-guarded.
  // Outlives any pinned snapshot (snapshots hold a shared_ptr to it), so a
  // reader draining after engine teardown still retires cleanly.
  std::shared_ptr<std::atomic<uint64_t>> epochs_retired_ =
      std::make_shared<std::atomic<uint64_t>>(0);
  // Mirrors requires_recovery() for lock-free PinSnapshot refusal.
  std::atomic<bool> poisoned_{false};

  // Background WAL compactor: Checkpoint schedules passes; the thread
  // drains them. Guarded by compact_mutex_ except the stats, which have
  // their own lock so wal_compaction() never blocks behind a pass.
  std::thread wal_compactor_;
  std::mutex compact_mutex_;
  std::condition_variable compact_cv_;
  bool compact_stop_ = false;
  uint64_t compact_scheduled_ = 0;
  uint64_t compact_completed_ = 0;
  mutable std::mutex wal_compaction_mutex_;
  WalCompactionStats wal_compaction_;
};

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_ENGINE_H_
