// Level 1 of the InsightNotes summarization hierarchy (Figure 4): the
// summary *types* built into the engine — Classifier, Cluster and Snippet.
// Domain admins instantiate them as summary *instances* (level 2,
// summary_instance.h); per-tuple summarization output forms the summary
// *objects* (level 3, summary_object.h).

#ifndef INSIGHTNOTES_CORE_SUMMARY_TYPE_H_
#define INSIGHTNOTES_CORE_SUMMARY_TYPE_H_

#include <cstdint>
#include <string_view>

namespace insightnotes::core {

enum class SummaryTypeKind : uint8_t {
  kClassifier = 0,
  kCluster = 1,
  kSnippet = 2,
};

std::string_view SummaryTypeKindToString(SummaryTypeKind kind);

/// Instance properties steering the engine's maintenance optimizations
/// (Section 2.3). AnnotationInvariant: summarizing a new annotation does not
/// depend on the tuple's existing annotations. DataInvariant: it does not
/// depend on the tuple's data values. When both hold, a shared annotation is
/// summarized once and the result is reused on every tuple it is attached to.
struct SummaryProperties {
  bool annotation_invariant = true;
  bool data_invariant = true;

  bool SummarizeOnceEligible() const { return annotation_invariant && data_invariant; }
};

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_SUMMARY_TYPE_H_
