#include "core/raw_baseline.h"

#include <algorithm>
#include <unordered_map>

#include "rel/index.h"

namespace insightnotes::core {

Result<std::vector<RawTuple>> RawPropagationEngine::Scan(const rel::Table& table) const {
  std::vector<RawTuple> out;
  Status status = Status::OK();
  Status scan_status = table.Scan([&](rel::RowId row, const rel::Tuple& tuple) {
    RawTuple rt;
    rt.tuple = tuple;
    for (const ann::Attachment& att : store_->OnRow(table.id(), row)) {
      if (store_->IsArchived(att.annotation)) continue;
      auto note = store_->Get(att.annotation);
      if (!note.ok()) {
        status = note.status();
        return false;
      }
      rt.annotations.push_back(std::move(*note));
      rt.coverage.push_back(att.columns);
    }
    out.push_back(std::move(rt));
    return true;
  });
  INSIGHTNOTES_RETURN_IF_ERROR(scan_status);
  INSIGHTNOTES_RETURN_IF_ERROR(status);
  return out;
}

Result<std::vector<RawTuple>> RawPropagationEngine::Filter(
    std::vector<RawTuple> in, const rel::Expression& predicate) const {
  std::vector<RawTuple> out;
  out.reserve(in.size());
  for (RawTuple& rt : in) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(bool pass, predicate.EvaluateBool(rt.tuple));
    if (pass) out.push_back(std::move(rt));
  }
  return out;
}

std::vector<RawTuple> RawPropagationEngine::Project(
    const std::vector<RawTuple>& in, const std::vector<size_t>& kept) const {
  std::vector<RawTuple> out;
  out.reserve(in.size());
  for (const RawTuple& rt : in) {
    RawTuple projected;
    for (size_t c : kept) projected.tuple.Append(rt.tuple.ValueAt(c));
    for (size_t i = 0; i < rt.annotations.size(); ++i) {
      const std::vector<size_t>& coverage = rt.coverage[i];
      bool survives = coverage.empty() ||
                      std::any_of(coverage.begin(), coverage.end(), [&](size_t c) {
                        return std::find(kept.begin(), kept.end(), c) != kept.end();
                      });
      if (!survives) continue;
      // Remap coverage to output positions.
      std::vector<size_t> remapped;
      for (size_t c : coverage) {
        auto it = std::find(kept.begin(), kept.end(), c);
        if (it != kept.end()) remapped.push_back(static_cast<size_t>(it - kept.begin()));
      }
      projected.annotations.push_back(rt.annotations[i]);  // Full body copy.
      projected.coverage.push_back(std::move(remapped));
    }
    out.push_back(std::move(projected));
  }
  return out;
}

Result<std::vector<RawTuple>> RawPropagationEngine::Join(
    const std::vector<RawTuple>& left, const std::vector<RawTuple>& right,
    const rel::Expression& left_key, const rel::Expression& right_key) const {
  std::unordered_map<rel::Value, std::vector<size_t>, rel::ValueHash, rel::ValueEq> build;
  for (size_t i = 0; i < right.size(); ++i) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value key, right_key.Evaluate(right[i].tuple));
    if (key.is_null()) continue;
    build[key].push_back(i);
  }
  std::vector<RawTuple> out;
  for (const RawTuple& l : left) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(rel::Value key, left_key.Evaluate(l.tuple));
    if (key.is_null()) continue;
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (size_t r_index : it->second) {
      const RawTuple& r = right[r_index];
      RawTuple joined;
      joined.tuple = rel::Tuple::Concat(l.tuple, r.tuple);
      joined.annotations = l.annotations;  // Full body copies again.
      joined.coverage = l.coverage;
      size_t offset = l.tuple.NumValues();
      for (size_t i = 0; i < r.annotations.size(); ++i) {
        // Deduplicate shared annotations by id (linear scan: raw engines
        // have no compact id sets to merge).
        bool duplicate = std::any_of(
            joined.annotations.begin(), joined.annotations.end(),
            [&](const ann::Annotation& a) { return a.id == r.annotations[i].id; });
        if (duplicate) continue;
        joined.annotations.push_back(r.annotations[i]);
        std::vector<size_t> shifted;
        for (size_t c : r.coverage[i]) shifted.push_back(c + offset);
        joined.coverage.push_back(std::move(shifted));
      }
      out.push_back(std::move(joined));
    }
  }
  return out;
}

}  // namespace insightnotes::core
