#include "core/recovery.h"

#include <algorithm>
#include <future>
#include <map>
#include <thread>
#include <utility>
#include <variant>
#include <vector>

#include "common/thread_pool.h"
#include "storage/wal.h"

namespace insightnotes::core {

namespace {

struct DecodedSegment {
  std::vector<ann::WalEntry> entries;
  storage::WriteAheadLog::ReplayStats stats;
};

/// Reads and decodes one segment file. Only the active (last) segment may
/// end in a torn tail — sealed segments were fsynced before the manifest
/// sealed them.
Status DecodeSegment(const std::string& path, bool is_active, DecodedSegment* out) {
  Result<storage::WriteAheadLog::ReplayStats> replayed =
      storage::WriteAheadLog::Replay(path, [out](std::string_view payload) {
        INSIGHTNOTES_ASSIGN_OR_RETURN(ann::WalEntry entry,
                                      ann::DecodeWalEntry(payload));
        out->entries.push_back(std::move(entry));
        return Status::OK();
      });
  if (!replayed.ok()) return replayed.status();
  out->stats = *replayed;
  if (!is_active && out->stats.truncated_bytes > 0) {
    return Status::Corruption(
        "sealed WAL segment '" + path + "' ends in " +
        std::to_string(out->stats.truncated_bytes) +
        " torn byte(s); only the active segment may have a torn tail");
  }
  return Status::OK();
}

/// Union-find with path halving; chains are its connected components.
class UnionFind {
 public:
  int MakeSet() {
    parent_.push_back(static_cast<int>(parent_.size()));
    return parent_.back();
  }

  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void Union(int a, int b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent_[b] = a;
  }

 private:
  std::vector<int> parent_;
};

/// One mutation record in global log order.
struct RecordRef {
  const ann::WalEntry* entry = nullptr;
  uint64_t segment_id = 0;
  uint32_t record_index = 0;
};

Status ApplyViaRecoverySurface(ann::AnnotationStore* store, const ann::WalEntry& entry) {
  if (const auto* add = std::get_if<ann::WalAddRecord>(&entry)) {
    return store->RecoverAdd(add->expected_id, add->note, add->region);
  }
  if (const auto* attach = std::get_if<ann::WalAttachRecord>(&entry)) {
    return store->RecoverAttach(attach->id, attach->region);
  }
  return store->RecoverArchive(std::get<ann::WalArchiveRecord>(entry).id);
}

Status ApplySerially(ann::AnnotationStore* store, const ann::WalEntry& entry) {
  if (const auto* add = std::get_if<ann::WalAddRecord>(&entry)) {
    INSIGHTNOTES_ASSIGN_OR_RETURN(ann::AnnotationId id,
                                  store->Add(add->note, add->region));
    if (id != add->expected_id) {
      return Status::Corruption("WAL replay assigned annotation id " +
                                std::to_string(id) + ", log expected " +
                                std::to_string(add->expected_id));
    }
    return Status::OK();
  }
  if (const auto* attach = std::get_if<ann::WalAttachRecord>(&entry)) {
    return store->Attach(attach->id, attach->region);
  }
  return store->Archive(std::get<ann::WalArchiveRecord>(entry).id);
}

}  // namespace

Result<WalReplayStats> ReplaySegmentedWal(
    const storage::SegmentedWal::Manifest& manifest, ann::AnnotationStore* store,
    ann::WalLivenessTracker* tracker, const WalReplayOptions& options) {
  WalReplayStats stats;
  size_t threads = options.threads;
  if (threads == 0) {
    threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  stats.threads_used = threads;
  if (manifest.segments.empty()) return stats;

  // --- Phase 1: decode every segment (parallel across segments) -------------
  const size_t num_segments = manifest.segments.size();
  std::vector<DecodedSegment> decoded(num_segments);
  std::vector<Status> decode_status(num_segments);
  if (threads > 1 && num_segments > 1) {
    ThreadPool pool(std::min(threads, num_segments));
    std::vector<std::future<void>> futures;
    futures.reserve(num_segments);
    for (size_t i = 0; i < num_segments; ++i) {
      futures.push_back(pool.Submit([&, i] {
        decode_status[i] =
            DecodeSegment(manifest.segments[i].path,
                          /*is_active=*/i + 1 == num_segments, &decoded[i]);
      }));
    }
    for (auto& f : futures) f.get();
  } else {
    for (size_t i = 0; i < num_segments; ++i) {
      decode_status[i] = DecodeSegment(manifest.segments[i].path,
                                       /*is_active=*/i + 1 == num_segments,
                                       &decoded[i]);
    }
  }
  for (const Status& s : decode_status) {
    INSIGHTNOTES_RETURN_IF_ERROR(s);
  }
  const DecodedSegment& active = decoded.back();
  stats.active_valid_bytes = active.stats.valid_bytes;
  stats.active_truncated_bytes = active.stats.truncated_bytes;
  stats.active_records = active.entries.size();

  // --- Phase 2: verify markers & dense ids, partition into chains (serial) ---
  std::vector<RecordRef> records;  // Mutation records, global log order.
  UnionFind uf;
  std::map<ann::AnnotationId, int> annotation_node;
  std::map<std::pair<rel::TableId, rel::RowId>, int> row_node;
  std::vector<int> record_node;  // Parallel to `records`.
  uint64_t next_add_id = 0;
  for (size_t i = 0; i < num_segments; ++i) {
    const uint64_t segment_id = manifest.segments[i].id;
    for (size_t r = 0; r < decoded[i].entries.size(); ++r) {
      const ann::WalEntry& entry = decoded[i].entries[r];
      const auto record_index = static_cast<uint32_t>(r);
      if (tracker != nullptr) tracker->Observe(entry, segment_id, record_index);
      ann::WalChainKey key = ann::ChainKeyOf(entry);
      if (key.is_marker) {
        // Index records are markers too: they join no chain and carry no
        // annotation-count assertion. Creates are intent only; the last
        // index checkpoint is adopted wholesale by the engine.
        if (std::holds_alternative<ann::WalIndexCreateRecord>(entry)) {
          ++stats.index_creates;
          continue;
        }
        if (const auto* ickpt =
                std::get_if<ann::WalIndexCheckpointRecord>(&entry)) {
          ++stats.index_checkpoints;
          stats.has_index_checkpoint = true;
          stats.latest_index_checkpoint = *ickpt;
          continue;
        }
        // A marker asserts the store state at the time it was written;
        // replay of the preceding records must reproduce exactly that
        // count. Compaction never drops add records, so the arithmetic
        // holds across compacted histories too.
        const auto& marker = std::get<ann::WalCheckpointRecord>(entry);
        if (next_add_id != marker.num_annotations) {
          return Status::Corruption(
              "WAL checkpoint expects " + std::to_string(marker.num_annotations) +
              " annotation(s), replay produced " + std::to_string(next_add_id));
        }
        ++stats.checkpoints;
        stats.records_since_checkpoint = 0;
        continue;
      }
      ++stats.records_since_checkpoint;
      ++stats.mutation_records;
      if (const auto* add = std::get_if<ann::WalAddRecord>(&entry)) {
        // Ids are dense and assigned in insertion order, so the log must
        // add exactly id 0, 1, 2, … in order.
        if (add->expected_id != next_add_id) {
          return Status::Corruption("WAL replay assigned annotation id " +
                                    std::to_string(next_add_id) + ", log expected " +
                                    std::to_string(add->expected_id));
        }
        ++next_add_id;
      }
      auto [ann_it, ann_new] = annotation_node.try_emplace(key.annotation, -1);
      if (ann_new) ann_it->second = uf.MakeSet();
      int node = ann_it->second;
      if (key.has_row) {
        auto [row_it, row_new] =
            row_node.try_emplace(std::make_pair(key.table, key.row), -1);
        if (row_new) row_it->second = uf.MakeSet();
        uf.Union(node, row_it->second);
      }
      records.push_back(RecordRef{&entry, segment_id, record_index});
      record_node.push_back(node);
    }
  }

  // --- Phase 3: apply ---------------------------------------------------------
  if (threads <= 1) {
    for (const RecordRef& record : records) {
      INSIGHTNOTES_RETURN_IF_ERROR(ApplySerially(store, *record.entry));
    }
    stats.chains = records.empty() ? 0 : 1;
    return stats;
  }

  std::map<int, std::vector<size_t>> chains;  // Root -> record positions, in order.
  for (size_t i = 0; i < records.size(); ++i) {
    chains[uf.Find(record_node[i])].push_back(i);
  }
  stats.chains = chains.size();
  std::vector<std::pair<rel::TableId, rel::RowId>> rows;
  rows.reserve(row_node.size());
  for (const auto& [key, node] : row_node) rows.push_back(key);
  INSIGHTNOTES_RETURN_IF_ERROR(store->BeginParallelRecovery(next_add_id, rows));
  {
    ThreadPool pool(threads);
    std::vector<std::future<Status>> futures;
    futures.reserve(chains.size());
    for (const auto& [root, positions] : chains) {
      futures.push_back(pool.Submit([&records, &positions, store] {
        for (size_t pos : positions) {
          INSIGHTNOTES_RETURN_IF_ERROR(
              ApplyViaRecoverySurface(store, *records[pos].entry));
        }
        return Status::OK();
      }));
    }
    for (auto& f : futures) {
      INSIGHTNOTES_RETURN_IF_ERROR(f.get());
    }
  }
  INSIGHTNOTES_RETURN_IF_ERROR(store->EndParallelRecovery());
  return stats;
}

}  // namespace insightnotes::core
