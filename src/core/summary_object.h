// Level 3 of the summarization hierarchy: per-tuple summary objects and
// their query-time algebra. Every object supports the closed operation set
// the extended operators need (Section 2.1):
//
//   AddAnnotation     — incremental maintenance on annotation insert;
//   RemoveAnnotation  — projection trim: eliminate one annotation's effect
//                       (Figure 2 step 1, incl. representative re-election);
//   MergeWith         — join/grouping/duplicate-elimination merge that never
//                       double-counts an annotation attached to both inputs
//                       (Figure 2's "22 instead of 27" case);
//   ZoomIn            — map a summary component back to the exact raw
//                       annotation ids behind it (Section 2.2).
//
// Because the algebra is closed, summary processing can be plugged in at
// any stage of a query plan — the paper's pipelining contribution.

#ifndef INSIGHTNOTES_CORE_SUMMARY_OBJECT_H_
#define INSIGHTNOTES_CORE_SUMMARY_OBJECT_H_

#include <memory>
#include <string>
#include <vector>

#include "annotation/annotation.h"
#include "common/result.h"
#include "core/summary_instance.h"
#include "core/summary_type.h"
#include "mining/clustering.h"

namespace insightnotes::core {

class SummaryObject {
 public:
  virtual ~SummaryObject() = default;

  /// The instance (level 2) this object was produced by. Counterpart
  /// matching during merges is by instance name.
  SummaryInstance* instance() const { return instance_; }
  const std::string& instance_name() const { return instance_->name(); }
  SummaryTypeKind type() const { return instance_->type(); }

  /// Folds a new annotation into the summary.
  virtual Status AddAnnotation(const ann::Annotation& note) = 0;

  /// Removes one annotation's effect; NotFound if it never contributed
  /// (snippet objects ignore non-document annotations, so removal of one is
  /// a no-op OK).
  virtual Status RemoveAnnotation(ann::AnnotationId id) = 0;

  /// True if `id` currently contributes to this summary.
  virtual bool Contains(ann::AnnotationId id) const = 0;

  /// Merges `other` (same instance) into this object without double
  /// counting shared annotation ids.
  virtual Status MergeWith(const SummaryObject& other) = 0;

  virtual std::unique_ptr<SummaryObject> Clone() const = 0;

  /// Number of distinct annotations contributing.
  virtual size_t NumAnnotations() const = 0;

  // --- Zoom-in surface ----------------------------------------------------
  /// Components are the user-visible parts of a summary: class labels for
  /// classifiers, groups for clusters, snippets for snippet objects.
  virtual size_t NumComponents() const = 0;
  virtual Result<std::string> ComponentLabel(size_t index) const = 0;
  /// Raw annotation ids behind component `index`.
  virtual Result<std::vector<ann::AnnotationId>> ZoomIn(size_t index) const = 0;

  /// Display form, e.g. "[(Behavior, 33), (Disease, 8), ...]".
  virtual std::string Render() const = 0;

 protected:
  explicit SummaryObject(SummaryInstance* instance) : instance_(instance) {}
  SummaryObject(const SummaryObject&) = default;

  SummaryInstance* instance_;  // Not owned; outlives the object.
};

// The concrete objects below use copy-on-write state: Clone() (what scans
// and selections do for every tuple) is O(1); a private copy is taken only
// when an operator actually mutates the summary (projection trim, join
// merge). This is what keeps summary propagation cheap relative to
// raw-annotation propagation regardless of the annotation volume.

/// Classifier-type object: per-label annotation counts + id lists.
class ClassifierObject final : public SummaryObject {
 public:
  explicit ClassifierObject(SummaryInstance* instance);

  Status AddAnnotation(const ann::Annotation& note) override;
  Status RemoveAnnotation(ann::AnnotationId id) override;
  bool Contains(ann::AnnotationId id) const override;
  Status MergeWith(const SummaryObject& other) override;
  std::unique_ptr<SummaryObject> Clone() const override;
  size_t NumAnnotations() const override;
  size_t NumComponents() const override;
  Result<std::string> ComponentLabel(size_t index) const override;
  Result<std::vector<ann::AnnotationId>> ZoomIn(size_t index) const override;
  std::string Render() const override;

  /// Count for label `index` (0 for out-of-range).
  size_t LabelCount(size_t index) const;

 private:
  using LabelIds = std::vector<std::vector<ann::AnnotationId>>;
  /// Takes a private copy of the shared state before mutation.
  LabelIds& Own();

  // ids_per_label_[label] is sorted ascending. Shared between clones until
  // one of them mutates.
  std::shared_ptr<LabelIds> ids_per_label_;
};

/// Cluster-type object: groups of similar annotations with an elected
/// representative per group (rendered as "{A<rep> x<size>}").
class ClusterObject final : public SummaryObject {
 public:
  explicit ClusterObject(SummaryInstance* instance);

  Status AddAnnotation(const ann::Annotation& note) override;
  Status RemoveAnnotation(ann::AnnotationId id) override;
  bool Contains(ann::AnnotationId id) const override;
  Status MergeWith(const SummaryObject& other) override;
  std::unique_ptr<SummaryObject> Clone() const override;
  size_t NumAnnotations() const override;
  size_t NumComponents() const override;
  Result<std::string> ComponentLabel(size_t index) const override;
  Result<std::vector<ann::AnnotationId>> ZoomIn(size_t index) const override;
  std::string Render() const override;

  const mining::ClusterSet& clusters() const { return *clusters_; }

 private:
  mining::ClusterSet& Own();

  std::shared_ptr<mining::ClusterSet> clusters_;  // COW.
};

/// Snippet-type object: one extractive snippet per document annotation.
/// Comment-kind annotations do not contribute.
class SnippetObject final : public SummaryObject {
 public:
  explicit SnippetObject(SummaryInstance* instance);

  Status AddAnnotation(const ann::Annotation& note) override;
  Status RemoveAnnotation(ann::AnnotationId id) override;
  bool Contains(ann::AnnotationId id) const override;
  Status MergeWith(const SummaryObject& other) override;
  std::unique_ptr<SummaryObject> Clone() const override;
  size_t NumAnnotations() const override;
  size_t NumComponents() const override;
  Result<std::string> ComponentLabel(size_t index) const override;
  Result<std::vector<ann::AnnotationId>> ZoomIn(size_t index) const override;
  std::string Render() const override;

 private:
  struct Entry {
    ann::AnnotationId id;
    std::string title;
    std::string snippet;
  };
  std::vector<Entry>& Own();

  // Sorted by id (deterministic rendering). Shared between clones (COW).
  std::shared_ptr<std::vector<Entry>> entries_;
};

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_SUMMARY_OBJECT_H_
