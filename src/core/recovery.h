// WAL replay over the segmented log. Recovery runs in three phases:
//
//   1. Decode. Every segment file is read and decoded independently (in
//      parallel on a thread pool when more than one replay thread is
//      requested). A torn tail is only legal in the last — active —
//      segment; sealed segments were fsynced before the manifest sealed
//      them, so a short one is Corruption.
//   2. Verify & partition (serial). The decoded records are walked in log
//      order: checkpoint markers are checked arithmetically (the add
//      records before a marker must number exactly what it asserts), add
//      ids are checked dense, the liveness tracker observes every record,
//      and a union-find over chain keys (annotation id, (table, row))
//      partitions the mutation records into chains. Two records that touch
//      the same annotation or the same row always land in the same chain,
//      so records in different chains commute (see ann::ChainKeyOf).
//   3. Apply. With one replay thread the records are applied serially
//      through the store's normal Add/Attach/Archive path — byte-identical
//      to the historical replay loop. With N > 1 each chain is one thread-
//      pool task replaying its records in log order through the store's
//      parallel-recovery surface; the resulting logical store state is
//      identical to serial replay (heap-file placement of bodies may
//      differ, which nothing observes).

#ifndef INSIGHTNOTES_CORE_RECOVERY_H_
#define INSIGHTNOTES_CORE_RECOVERY_H_

#include <cstdint>

#include "annotation/annotation_store.h"
#include "annotation/wal_records.h"
#include "common/result.h"
#include "storage/wal_segments.h"

namespace insightnotes::core {

struct WalReplayOptions {
  /// Replay parallelism: 0 = one task per hardware thread, 1 = the exact
  /// serial path, N > 1 = chains spread over N pool workers.
  size_t threads = 0;
};

/// What ReplaySegmentedWal did, including what the engine needs to reopen
/// the log (active-segment cut point) and to report recovery.
struct WalReplayStats {
  uint64_t mutation_records = 0;   // Add/attach/archive records applied.
  uint64_t checkpoints = 0;        // Markers seen (and verified).
  uint64_t records_since_checkpoint = 0;  // Mutations after the last marker.
  uint64_t active_valid_bytes = UINT64_MAX;  // keep_bytes for the active segment.
  uint64_t active_truncated_bytes = 0;       // Torn tail cut off the active segment.
  uint64_t active_records = 0;     // Record count of the active segment.
  uint64_t chains = 0;             // Independent replay chains (parallel mode).
  size_t threads_used = 1;
  // Persistent-index records (markers, not mutations): create intents are
  // counted but ignored — only a committed index checkpoint makes an index
  // real — and the *last* index checkpoint wins wholesale (it snapshots
  // every index root plus the shared allocator state).
  uint64_t index_creates = 0;
  uint64_t index_checkpoints = 0;
  bool has_index_checkpoint = false;
  ann::WalIndexCheckpointRecord latest_index_checkpoint;
};

/// Rebuilds `store` (which must be empty) from the segments listed by
/// `manifest` (see storage::SegmentedWal::LoadForReplay). When `tracker`
/// is non-null it observes every record in log order, reporting superseded
/// positions through its sink — the engine forwards them to the reopened
/// log's per-segment liveness accounting. On any error the store is left
/// half-built; the caller discards it (Engine::Init restores the parked
/// page file and fails).
Result<WalReplayStats> ReplaySegmentedWal(
    const storage::SegmentedWal::Manifest& manifest, ann::AnnotationStore* store,
    ann::WalLivenessTracker* tracker, const WalReplayOptions& options = {});

}  // namespace insightnotes::core

#endif  // INSIGHTNOTES_CORE_RECOVERY_H_
