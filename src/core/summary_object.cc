#include "core/summary_object.h"

#include <algorithm>

namespace insightnotes::core {

namespace {

/// Inserts `id` into sorted `ids` if absent; returns false if present.
bool InsertSorted(std::vector<ann::AnnotationId>* ids, ann::AnnotationId id) {
  auto it = std::lower_bound(ids->begin(), ids->end(), id);
  if (it != ids->end() && *it == id) return false;
  ids->insert(it, id);
  return true;
}

bool EraseSorted(std::vector<ann::AnnotationId>* ids, ann::AnnotationId id) {
  auto it = std::lower_bound(ids->begin(), ids->end(), id);
  if (it == ids->end() || *it != id) return false;
  ids->erase(it);
  return true;
}

Status CheckSameInstance(const SummaryObject& a, const SummaryObject& b) {
  if (a.instance() != b.instance()) {
    return Status::InvalidArgument("cannot merge summary objects of instances '" +
                                   a.instance_name() + "' and '" +
                                   b.instance_name() + "'");
  }
  return Status::OK();
}

}  // namespace

// --- ClassifierObject -------------------------------------------------------

ClassifierObject::ClassifierObject(SummaryInstance* instance)
    : SummaryObject(instance),
      ids_per_label_(std::make_shared<LabelIds>(instance->classifier()->num_labels())) {}

ClassifierObject::LabelIds& ClassifierObject::Own() {
  if (ids_per_label_.use_count() > 1) {
    ids_per_label_ = std::make_shared<LabelIds>(*ids_per_label_);
  }
  return *ids_per_label_;
}

Status ClassifierObject::AddAnnotation(const ann::Annotation& note) {
  size_t label = instance_->ClassifyAnnotation(note);
  if (label >= ids_per_label_->size()) {
    return Status::Internal("classifier produced out-of-range label");
  }
  if (!InsertSorted(&Own()[label], note.id)) {
    return Status::AlreadyExists("annotation " + std::to_string(note.id) +
                                 " already summarized");
  }
  return Status::OK();
}

Status ClassifierObject::RemoveAnnotation(ann::AnnotationId id) {
  if (!Contains(id)) {
    return Status::NotFound("annotation " + std::to_string(id) +
                            " not in classifier object");
  }
  for (auto& ids : Own()) {
    if (EraseSorted(&ids, id)) return Status::OK();
  }
  return Status::NotFound("annotation " + std::to_string(id) +
                          " not in classifier object");
}

bool ClassifierObject::Contains(ann::AnnotationId id) const {
  for (const auto& ids : *ids_per_label_) {
    if (std::binary_search(ids.begin(), ids.end(), id)) return true;
  }
  return false;
}

Status ClassifierObject::MergeWith(const SummaryObject& other) {
  INSIGHTNOTES_RETURN_IF_ERROR(CheckSameInstance(*this, other));
  const auto& rhs = static_cast<const ClassifierObject&>(other);
  LabelIds& mine = Own();
  for (size_t label = 0; label < mine.size(); ++label) {
    for (ann::AnnotationId id : (*rhs.ids_per_label_)[label]) {
      // Shared annotations (present on both sides) are counted once.
      InsertSorted(&mine[label], id);
    }
  }
  return Status::OK();
}

std::unique_ptr<SummaryObject> ClassifierObject::Clone() const {
  return std::make_unique<ClassifierObject>(*this);
}

size_t ClassifierObject::NumAnnotations() const {
  size_t n = 0;
  for (const auto& ids : *ids_per_label_) n += ids.size();
  return n;
}

size_t ClassifierObject::NumComponents() const { return ids_per_label_->size(); }

Result<std::string> ClassifierObject::ComponentLabel(size_t index) const {
  if (index >= ids_per_label_->size()) {
    return Status::OutOfRange("classifier has no component " + std::to_string(index));
  }
  return instance_->classifier()->labels()[index];
}

Result<std::vector<ann::AnnotationId>> ClassifierObject::ZoomIn(size_t index) const {
  if (index >= ids_per_label_->size()) {
    return Status::OutOfRange("classifier has no component " + std::to_string(index));
  }
  return (*ids_per_label_)[index];
}

std::string ClassifierObject::Render() const {
  std::string out = "[";
  const auto& labels = instance_->classifier()->labels();
  for (size_t i = 0; i < ids_per_label_->size(); ++i) {
    if (i > 0) out += ", ";
    out += "(" + labels[i] + ", " + std::to_string((*ids_per_label_)[i].size()) + ")";
  }
  out += "]";
  return out;
}

size_t ClassifierObject::LabelCount(size_t index) const {
  return index < ids_per_label_->size() ? (*ids_per_label_)[index].size() : 0;
}

// --- ClusterObject ----------------------------------------------------------

ClusterObject::ClusterObject(SummaryInstance* instance)
    : SummaryObject(instance),
      clusters_(std::make_shared<mining::ClusterSet>(instance->cluster_threshold(),
                                                     /*store=*/instance)) {}

mining::ClusterSet& ClusterObject::Own() {
  if (clusters_.use_count() > 1) {
    clusters_ = std::make_shared<mining::ClusterSet>(*clusters_);
  }
  return *clusters_;
}

Status ClusterObject::AddAnnotation(const ann::Annotation& note) {
  txt::SparseVector vec = instance_->VectorizeAnnotation(note);
  return Own().Add(note.id, vec).status();
}

Status ClusterObject::RemoveAnnotation(ann::AnnotationId id) {
  if (!clusters_->Contains(id)) {
    return Status::NotFound("document " + std::to_string(id) + " not clustered");
  }
  return Own().Remove(id);
}

bool ClusterObject::Contains(ann::AnnotationId id) const {
  return clusters_->Contains(id);
}

Status ClusterObject::MergeWith(const SummaryObject& other) {
  INSIGHTNOTES_RETURN_IF_ERROR(CheckSameInstance(*this, other));
  const auto& rhs = static_cast<const ClusterObject&>(other);
  return Own().Merge(*rhs.clusters_);
}

std::unique_ptr<SummaryObject> ClusterObject::Clone() const {
  return std::make_unique<ClusterObject>(*this);
}

size_t ClusterObject::NumAnnotations() const { return clusters_->NumDocuments(); }

size_t ClusterObject::NumComponents() const { return clusters_->NumGroups(); }

Result<std::string> ClusterObject::ComponentLabel(size_t index) const {
  if (index >= clusters_->NumGroups()) {
    return Status::OutOfRange("cluster object has no group " + std::to_string(index));
  }
  const mining::ClusterGroup& g = clusters_->groups()[index];
  return "A" + std::to_string(g.representative) + " x" + std::to_string(g.size());
}

Result<std::vector<ann::AnnotationId>> ClusterObject::ZoomIn(size_t index) const {
  return clusters_->GroupMembers(index);
}

std::string ClusterObject::Render() const {
  std::string out = "{";
  for (size_t i = 0; i < clusters_->NumGroups(); ++i) {
    if (i > 0) out += ", ";
    out += *ComponentLabel(i);
  }
  out += "}";
  return out;
}

// --- SnippetObject ----------------------------------------------------------

SnippetObject::SnippetObject(SummaryInstance* instance)
    : SummaryObject(instance), entries_(std::make_shared<std::vector<Entry>>()) {}

std::vector<SnippetObject::Entry>& SnippetObject::Own() {
  if (entries_.use_count() > 1) {
    entries_ = std::make_shared<std::vector<Entry>>(*entries_);
  }
  return *entries_;
}

Status SnippetObject::AddAnnotation(const ann::Annotation& note) {
  if (note.kind != ann::AnnotationKind::kDocument) {
    return Status::OK();  // Snippet instances only summarize documents.
  }
  if (Contains(note.id)) {
    return Status::AlreadyExists("document " + std::to_string(note.id) +
                                 " already summarized");
  }
  Entry entry;
  entry.id = note.id;
  entry.title = note.title;
  entry.snippet = instance_->SummarizeDocument(note);
  auto& entries = Own();
  auto it = std::lower_bound(entries.begin(), entries.end(), note.id,
                             [](const Entry& e, ann::AnnotationId id) { return e.id < id; });
  entries.insert(it, std::move(entry));
  return Status::OK();
}

Status SnippetObject::RemoveAnnotation(ann::AnnotationId id) {
  if (!Contains(id)) {
    // Non-document annotations never contributed: removing their effect is
    // a no-op by design (the projection trim removes blindly by id).
    return Status::OK();
  }
  auto& entries = Own();
  auto it = std::lower_bound(entries.begin(), entries.end(), id,
                             [](const Entry& e, ann::AnnotationId i) { return e.id < i; });
  entries.erase(it);
  return Status::OK();
}

bool SnippetObject::Contains(ann::AnnotationId id) const {
  auto it = std::lower_bound(entries_->begin(), entries_->end(), id,
                             [](const Entry& e, ann::AnnotationId i) { return e.id < i; });
  return it != entries_->end() && it->id == id;
}

Status SnippetObject::MergeWith(const SummaryObject& other) {
  INSIGHTNOTES_RETURN_IF_ERROR(CheckSameInstance(*this, other));
  const auto& rhs = static_cast<const SnippetObject&>(other);
  if (rhs.entries_->empty()) return Status::OK();
  auto& entries = Own();
  for (const Entry& e : *rhs.entries_) {
    auto it = std::lower_bound(entries.begin(), entries.end(), e.id,
                               [](const Entry& x, ann::AnnotationId i) { return x.id < i; });
    if (it != entries.end() && it->id == e.id) continue;  // Shared document.
    entries.insert(it, e);
  }
  return Status::OK();
}

std::unique_ptr<SummaryObject> SnippetObject::Clone() const {
  return std::make_unique<SnippetObject>(*this);
}

size_t SnippetObject::NumAnnotations() const { return entries_->size(); }

size_t SnippetObject::NumComponents() const { return entries_->size(); }

Result<std::string> SnippetObject::ComponentLabel(size_t index) const {
  if (index >= entries_->size()) {
    return Status::OutOfRange("snippet object has no component " +
                              std::to_string(index));
  }
  const Entry& e = (*entries_)[index];
  return e.title.empty() ? ("doc " + std::to_string(e.id)) : e.title;
}

Result<std::vector<ann::AnnotationId>> SnippetObject::ZoomIn(size_t index) const {
  if (index >= entries_->size()) {
    return Status::OutOfRange("snippet object has no component " +
                              std::to_string(index));
  }
  return std::vector<ann::AnnotationId>{(*entries_)[index].id};
}

std::string SnippetObject::Render() const {
  std::string out = "[";
  for (size_t i = 0; i < entries_->size(); ++i) {
    if (i > 0) out += ", ";
    out += "\"" + (*entries_)[i].snippet + "\"";
  }
  out += "]";
  return out;
}

}  // namespace insightnotes::core
