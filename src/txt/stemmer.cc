#include "txt/stemmer.h"

#include <cctype>

namespace insightnotes::txt {

namespace {

// Implementation of the classic 5-step Porter algorithm. Operates on a
// mutable buffer `b` with logical end `k` (index of last character).
class PorterContext {
 public:
  explicit PorterContext(std::string word) : b_(std::move(word)), k_(b_.size() - 1) {}

  std::string Run() {
    if (b_.size() <= 2) return b_;
    Step1ab();
    Step1c();
    Step2();
    Step3();
    Step4();
    Step5();
    b_.resize(k_ + 1);
    return b_;
  }

 private:
  bool IsConsonant(size_t i) const {
    switch (b_[i]) {
      case 'a':
      case 'e':
      case 'i':
      case 'o':
      case 'u':
        return false;
      case 'y':
        return i == 0 ? true : !IsConsonant(i - 1);
      default:
        return true;
    }
  }

  // Measure of the word prefix [0, j]: number of VC sequences.
  size_t Measure(size_t j) const {
    size_t n = 0;
    size_t i = 0;
    while (true) {
      if (i > j) return n;
      if (!IsConsonant(i)) break;
      ++i;
    }
    ++i;
    while (true) {
      while (true) {
        if (i > j) return n;
        if (IsConsonant(i)) break;
        ++i;
      }
      ++i;
      ++n;
      while (true) {
        if (i > j) return n;
        if (!IsConsonant(i)) break;
        ++i;
      }
      ++i;
    }
  }

  // True if [0, j] contains a vowel.
  bool HasVowel(size_t j) const {
    for (size_t i = 0; i <= j; ++i) {
      if (!IsConsonant(i)) return true;
    }
    return false;
  }

  // True if word ends with a double consonant at position j.
  bool DoubleConsonant(size_t j) const {
    if (j < 1) return false;
    if (b_[j] != b_[j - 1]) return false;
    return IsConsonant(j);
  }

  // True if [i-2, i] is consonant-vowel-consonant and the final consonant is
  // not w, x or y. Used to detect e.g. -hop- in "hopping".
  bool CvcEndsAt(size_t i) const {
    if (i < 2) return false;
    if (!IsConsonant(i) || IsConsonant(i - 1) || !IsConsonant(i - 2)) return false;
    char ch = b_[i];
    return ch != 'w' && ch != 'x' && ch != 'y';
  }

  // True if the word [0, k_] ends with `s`; sets j_ to the stem end. The
  // suffix must leave at least one stem character (a word equal to the
  // suffix has measure 0 and would never be rewritten anyway), which keeps
  // j_ a valid index.
  bool Ends(std::string_view s) {
    size_t len = s.size();
    if (len >= k_ + 1) return false;
    if (b_.compare(k_ + 1 - len, len, s) != 0) return false;
    j_ = k_ - len;
    return true;
  }

  // Replaces the suffix (j_+1 .. k_) with `s`.
  void SetTo(std::string_view s) {
    b_.resize(j_ + 1);
    b_.append(s);
    k_ = b_.size() - 1;
  }

  // Replaces the suffix with `s` iff the stem measure is positive.
  void ReplaceIfMeasurePositive(std::string_view s) {
    if (Measure(j_) > 0) SetTo(s);
  }

  // Step 1a: plurals. caresses->caress, ponies->poni, cats->cat.
  // Step 1b: -eed/-ed/-ing. feed->feed, agreed->agree, plastered->plaster.
  void Step1ab() {
    if (b_[k_] == 's') {
      if (Ends("sses")) {
        k_ -= 2;
      } else if (Ends("ies")) {
        SetTo("i");
      } else if (b_[k_ - 1] != 's') {
        --k_;
      }
    }
    if (Ends("eed")) {
      if (Measure(j_) > 0) --k_;
    } else if ((Ends("ed") || Ends("ing")) && HasVowel(j_)) {
      k_ = j_;
      if (Ends("at")) {
        SetTo("ate");
      } else if (Ends("bl")) {
        SetTo("ble");
      } else if (Ends("iz")) {
        SetTo("ize");
      } else if (DoubleConsonant(k_)) {
        char ch = b_[k_];
        if (ch != 'l' && ch != 's' && ch != 'z') --k_;
      } else if (Measure(k_) == 1 && CvcEndsAt(k_)) {
        j_ = k_;
        SetTo("e");
      }
    }
    b_.resize(k_ + 1);
  }

  // Step 1c: y -> i when there is another vowel in the stem.
  void Step1c() {
    if (Ends("y") && HasVowel(j_)) b_[k_] = 'i';
  }

  // Step 2: double suffixes -> single ones when measure > 0.
  void Step2() {
    if (k_ < 2) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("ational")) { ReplaceIfMeasurePositive("ate"); return; }
        if (Ends("tional")) { ReplaceIfMeasurePositive("tion"); return; }
        break;
      case 'c':
        if (Ends("enci")) { ReplaceIfMeasurePositive("ence"); return; }
        if (Ends("anci")) { ReplaceIfMeasurePositive("ance"); return; }
        break;
      case 'e':
        if (Ends("izer")) { ReplaceIfMeasurePositive("ize"); return; }
        break;
      case 'l':
        if (Ends("bli")) { ReplaceIfMeasurePositive("ble"); return; }
        if (Ends("alli")) { ReplaceIfMeasurePositive("al"); return; }
        if (Ends("entli")) { ReplaceIfMeasurePositive("ent"); return; }
        if (Ends("eli")) { ReplaceIfMeasurePositive("e"); return; }
        if (Ends("ousli")) { ReplaceIfMeasurePositive("ous"); return; }
        break;
      case 'o':
        if (Ends("ization")) { ReplaceIfMeasurePositive("ize"); return; }
        if (Ends("ation")) { ReplaceIfMeasurePositive("ate"); return; }
        if (Ends("ator")) { ReplaceIfMeasurePositive("ate"); return; }
        break;
      case 's':
        if (Ends("alism")) { ReplaceIfMeasurePositive("al"); return; }
        if (Ends("iveness")) { ReplaceIfMeasurePositive("ive"); return; }
        if (Ends("fulness")) { ReplaceIfMeasurePositive("ful"); return; }
        if (Ends("ousness")) { ReplaceIfMeasurePositive("ous"); return; }
        break;
      case 't':
        if (Ends("aliti")) { ReplaceIfMeasurePositive("al"); return; }
        if (Ends("iviti")) { ReplaceIfMeasurePositive("ive"); return; }
        if (Ends("biliti")) { ReplaceIfMeasurePositive("ble"); return; }
        break;
      case 'g':
        if (Ends("logi")) { ReplaceIfMeasurePositive("log"); return; }
        break;
      default:
        break;
    }
  }

  // Step 3: -icate/-ative/-alize/... -> stem.
  void Step3() {
    switch (b_[k_]) {
      case 'e':
        if (Ends("icate")) { ReplaceIfMeasurePositive("ic"); return; }
        if (Ends("ative")) { ReplaceIfMeasurePositive(""); return; }
        if (Ends("alize")) { ReplaceIfMeasurePositive("al"); return; }
        break;
      case 'i':
        if (Ends("iciti")) { ReplaceIfMeasurePositive("ic"); return; }
        break;
      case 'l':
        if (Ends("ical")) { ReplaceIfMeasurePositive("ic"); return; }
        if (Ends("ful")) { ReplaceIfMeasurePositive(""); return; }
        break;
      case 's':
        if (Ends("ness")) { ReplaceIfMeasurePositive(""); return; }
        break;
      default:
        break;
    }
  }

  // Step 4: strip -ant/-ence/-ment/... when measure > 1.
  void Step4() {
    if (k_ < 1) return;
    switch (b_[k_ - 1]) {
      case 'a':
        if (Ends("al")) break;
        return;
      case 'c':
        if (Ends("ance")) break;
        if (Ends("ence")) break;
        return;
      case 'e':
        if (Ends("er")) break;
        return;
      case 'i':
        if (Ends("ic")) break;
        return;
      case 'l':
        if (Ends("able")) break;
        if (Ends("ible")) break;
        return;
      case 'n':
        if (Ends("ant")) break;
        if (Ends("ement")) break;
        if (Ends("ment")) break;
        if (Ends("ent")) break;
        return;
      case 'o':
        if (Ends("ion") && (b_[j_] == 's' || b_[j_] == 't')) break;
        if (Ends("ou")) break;
        return;
      case 's':
        if (Ends("ism")) break;
        return;
      case 't':
        if (Ends("ate")) break;
        if (Ends("iti")) break;
        return;
      case 'u':
        if (Ends("ous")) break;
        return;
      case 'v':
        if (Ends("ive")) break;
        return;
      case 'z':
        if (Ends("ize")) break;
        return;
      default:
        return;
    }
    if (Measure(j_) > 1) {
      k_ = j_;
      b_.resize(k_ + 1);
    }
  }

  // Step 5: remove final -e and reduce -ll when measure > 1.
  void Step5() {
    if (k_ > 0 && b_[k_] == 'e') {
      size_t m = Measure(k_ - 1);
      if (m > 1 || (m == 1 && !CvcEndsAt(k_ - 1))) --k_;
    }
    if (b_[k_] == 'l' && DoubleConsonant(k_) && Measure(k_) > 1) --k_;
    b_.resize(k_ + 1);
  }

  std::string b_;
  size_t k_;  // Index of the last character.
  size_t j_ = 0;  // Stem end set by Ends().
};

}  // namespace

std::string PorterStem(std::string_view word) {
  for (char c : word) {
    if (!std::islower(static_cast<unsigned char>(c))) return std::string(word);
  }
  if (word.size() <= 2) return std::string(word);
  return PorterContext(std::string(word)).Run();
}

}  // namespace insightnotes::txt
