// Sentence segmentation for the extractive snippet summarizer.

#ifndef INSIGHTNOTES_TXT_SENTENCE_H_
#define INSIGHTNOTES_TXT_SENTENCE_H_

#include <string>
#include <string_view>
#include <vector>

namespace insightnotes::txt {

/// Splits `text` into sentences on '.', '!', '?' and newlines, honoring a
/// small abbreviation list ("e.g.", "i.e.", "Dr.", ...). Whitespace is
/// stripped and empty sentences dropped.
std::vector<std::string> SplitSentences(std::string_view text);

}  // namespace insightnotes::txt

#endif  // INSIGHTNOTES_TXT_SENTENCE_H_
