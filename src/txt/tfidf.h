// Sparse term vectors and cosine similarity: the geometric substrate of the
// clustering kernel and the snippet sentence scorer.

#ifndef INSIGHTNOTES_TXT_TFIDF_H_
#define INSIGHTNOTES_TXT_TFIDF_H_

#include <cstdint>
#include <string>
#include <vector>

#include "txt/vocabulary.h"

namespace insightnotes::txt {

/// Sparse vector over TermId dimensions, kept sorted by term id. Supports
/// the add/subtract/scale operations the incremental cluster centroids need.
class SparseVector {
 public:
  SparseVector() = default;

  /// Builds a term-frequency vector from tokens (unnormalized counts).
  static SparseVector FromTokens(const std::vector<std::string>& tokens,
                                 Vocabulary* vocab);

  /// Builds a term-frequency vector using only existing vocabulary entries
  /// (unknown terms are skipped). Leaves `vocab` unmodified.
  static SparseVector FromTokensConst(const std::vector<std::string>& tokens,
                                      const Vocabulary& vocab);

  void Set(TermId id, double value);
  double Get(TermId id) const;

  /// this += other * scale.
  void AddScaled(const SparseVector& other, double scale);

  double Dot(const SparseVector& other) const;
  double Norm() const;

  /// Cosine similarity in [0, 1] for non-negative vectors; 0 if either is 0.
  double Cosine(const SparseVector& other) const;

  /// L2-normalized copy (zero vector stays zero).
  SparseVector Normalized() const;

  size_t NumNonZero() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  struct Entry {
    TermId term;
    double value;
  };
  const std::vector<Entry>& entries() const { return entries_; }

 private:
  // Invariant: sorted by term, no zero values (within epsilon after ops).
  std::vector<Entry> entries_;
};

}  // namespace insightnotes::txt

#endif  // INSIGHTNOTES_TXT_TFIDF_H_
