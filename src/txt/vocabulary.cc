#include "txt/vocabulary.h"

#include <cmath>

namespace insightnotes::txt {

TermId Vocabulary::GetOrAdd(std::string_view term) {
  auto it = index_.find(std::string(term));
  if (it != index_.end()) return it->second;
  TermId id = static_cast<TermId>(terms_.size());
  terms_.emplace_back(term);
  doc_freq_.push_back(0);
  index_.emplace(terms_.back(), id);
  return id;
}

TermId Vocabulary::Lookup(std::string_view term) const {
  auto it = index_.find(std::string(term));
  return it == index_.end() ? kInvalidTermId : it->second;
}

void Vocabulary::BumpDocumentFrequency(TermId id) { ++doc_freq_[id]; }

double Vocabulary::Idf(TermId id) const {
  double n = static_cast<double>(num_documents_);
  double df = static_cast<double>(doc_freq_[id]);
  return std::log((n + 1.0) / (df + 1.0)) + 1.0;
}

}  // namespace insightnotes::txt
