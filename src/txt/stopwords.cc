#include "txt/stopwords.h"

#include <algorithm>
#include <array>

namespace insightnotes::txt {

namespace {

// Sorted so we can binary-search. Standard English list (SMART subset).
constexpr std::array<std::string_view, 127> kStopwords = {
    "a",       "about",  "above",   "after",  "again",   "against", "all",
    "am",      "an",     "and",     "any",    "are",     "as",      "at",
    "be",      "because", "been",   "before", "being",   "below",   "between",
    "both",    "but",    "by",      "can",    "cannot",  "could",   "did",
    "do",      "does",   "doing",   "down",   "during",  "each",    "few",
    "for",     "from",   "further", "had",    "has",     "have",    "having",
    "he",      "her",    "here",    "hers",   "herself", "him",     "himself",
    "his",     "how",    "i",       "if",     "in",      "into",    "is",
    "it",      "its",    "itself",  "just",   "me",      "more",    "most",
    "my",      "myself", "no",      "nor",    "not",     "now",     "of",
    "off",     "on",     "once",    "only",   "or",      "other",   "our",
    "ours",    "ourselves", "out",  "over",   "own",     "same",    "she",
    "should",  "so",     "some",    "such",   "than",    "that",    "the",
    "their",   "theirs", "them",    "themselves", "then", "there",  "these",
    "they",    "this",   "those",   "through", "to",     "too",     "under",
    "until",   "up",     "very",    "was",    "we",      "were",    "what",
    "when",    "where",  "which",   "while",  "who",     "whom",    "why",
    "will",    "with",   "would",   "you",    "your",    "yours",   "yourself",
    "yourselves"};

static_assert(std::is_sorted(kStopwords.begin(), kStopwords.end()),
              "stopword table must stay sorted for binary search");

}  // namespace

bool IsStopword(std::string_view word) {
  return std::binary_search(kStopwords.begin(), kStopwords.end(), word);
}

}  // namespace insightnotes::txt
