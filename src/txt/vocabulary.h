// Vocabulary: interns term strings to dense integer ids and tracks document
// frequencies, so the mining kernels can work on integer term ids.

#ifndef INSIGHTNOTES_TXT_VOCABULARY_H_
#define INSIGHTNOTES_TXT_VOCABULARY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace insightnotes::txt {

using TermId = uint32_t;
inline constexpr TermId kInvalidTermId = static_cast<TermId>(-1);

/// Append-only term dictionary. Term ids are dense and stable.
class Vocabulary {
 public:
  /// Returns the id for `term`, adding it if unseen.
  TermId GetOrAdd(std::string_view term);

  /// Returns the id for `term` or kInvalidTermId if unseen.
  TermId Lookup(std::string_view term) const;

  /// Inverse mapping; `id` must be valid.
  const std::string& TermOf(TermId id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

  /// Document-frequency tracking: call once per distinct term per document.
  void BumpDocumentFrequency(TermId id);
  uint32_t DocumentFrequency(TermId id) const { return doc_freq_[id]; }

  /// Number of documents folded into the df counts (caller-maintained via
  /// BumpDocumentCount).
  void BumpDocumentCount() { ++num_documents_; }
  uint64_t num_documents() const { return num_documents_; }

  /// Smoothed inverse document frequency: ln((N + 1) / (df + 1)) + 1.
  double Idf(TermId id) const;

 private:
  std::unordered_map<std::string, TermId> index_;
  std::vector<std::string> terms_;
  std::vector<uint32_t> doc_freq_;
  uint64_t num_documents_ = 0;
};

}  // namespace insightnotes::txt

#endif  // INSIGHTNOTES_TXT_VOCABULARY_H_
