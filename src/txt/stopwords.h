// English stopword list used by the tokenizer.

#ifndef INSIGHTNOTES_TXT_STOPWORDS_H_
#define INSIGHTNOTES_TXT_STOPWORDS_H_

#include <string_view>

namespace insightnotes::txt {

/// True if `word` (already lower-cased) is an English stopword.
bool IsStopword(std::string_view word);

}  // namespace insightnotes::txt

#endif  // INSIGHTNOTES_TXT_STOPWORDS_H_
