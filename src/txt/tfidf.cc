#include "txt/tfidf.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace insightnotes::txt {

namespace {
constexpr double kEpsilon = 1e-12;
}  // namespace

SparseVector SparseVector::FromTokens(const std::vector<std::string>& tokens,
                                      Vocabulary* vocab) {
  std::map<TermId, double> counts;
  for (const std::string& token : tokens) {
    counts[vocab->GetOrAdd(token)] += 1.0;
  }
  SparseVector v;
  v.entries_.reserve(counts.size());
  for (const auto& [term, value] : counts) {
    v.entries_.push_back({term, value});
  }
  return v;
}

SparseVector SparseVector::FromTokensConst(const std::vector<std::string>& tokens,
                                           const Vocabulary& vocab) {
  std::map<TermId, double> counts;
  for (const std::string& token : tokens) {
    TermId id = vocab.Lookup(token);
    if (id != kInvalidTermId) counts[id] += 1.0;
  }
  SparseVector v;
  v.entries_.reserve(counts.size());
  for (const auto& [term, value] : counts) {
    v.entries_.push_back({term, value});
  }
  return v;
}

void SparseVector::Set(TermId id, double value) {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, TermId t) { return e.term < t; });
  if (it != entries_.end() && it->term == id) {
    if (std::fabs(value) < kEpsilon) {
      entries_.erase(it);
    } else {
      it->value = value;
    }
  } else if (std::fabs(value) >= kEpsilon) {
    entries_.insert(it, {id, value});
  }
}

double SparseVector::Get(TermId id) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), id,
      [](const Entry& e, TermId t) { return e.term < t; });
  return (it != entries_.end() && it->term == id) ? it->value : 0.0;
}

void SparseVector::AddScaled(const SparseVector& other, double scale) {
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() || j < other.entries_.size()) {
    if (j >= other.entries_.size() ||
        (i < entries_.size() && entries_[i].term < other.entries_[j].term)) {
      merged.push_back(entries_[i++]);
    } else if (i >= entries_.size() || other.entries_[j].term < entries_[i].term) {
      double v = other.entries_[j].value * scale;
      if (std::fabs(v) >= kEpsilon) merged.push_back({other.entries_[j].term, v});
      ++j;
    } else {
      double v = entries_[i].value + other.entries_[j].value * scale;
      if (std::fabs(v) >= kEpsilon) merged.push_back({entries_[i].term, v});
      ++i;
      ++j;
    }
  }
  entries_ = std::move(merged);
}

double SparseVector::Dot(const SparseVector& other) const {
  double sum = 0.0;
  size_t i = 0;
  size_t j = 0;
  while (i < entries_.size() && j < other.entries_.size()) {
    if (entries_[i].term < other.entries_[j].term) {
      ++i;
    } else if (other.entries_[j].term < entries_[i].term) {
      ++j;
    } else {
      sum += entries_[i].value * other.entries_[j].value;
      ++i;
      ++j;
    }
  }
  return sum;
}

double SparseVector::Norm() const {
  double sum = 0.0;
  for (const Entry& e : entries_) sum += e.value * e.value;
  return std::sqrt(sum);
}

double SparseVector::Cosine(const SparseVector& other) const {
  double na = Norm();
  double nb = other.Norm();
  if (na < kEpsilon || nb < kEpsilon) return 0.0;
  double c = Dot(other) / (na * nb);
  return std::clamp(c, 0.0, 1.0);
}

SparseVector SparseVector::Normalized() const {
  SparseVector out = *this;
  double n = Norm();
  if (n < kEpsilon) return out;
  for (Entry& e : out.entries_) e.value /= n;
  return out;
}

}  // namespace insightnotes::txt
