// Tokenization of free-text annotations into normalized terms.
//
// The pipeline (configurable): lower-case -> split on non-alphanumerics ->
// drop stopwords -> drop very short tokens -> Porter-stem. This feeds the
// Naive Bayes classifier, the similarity clustering, and TF-IDF sentence
// scoring in the snippet summarizer.

#ifndef INSIGHTNOTES_TXT_TOKENIZER_H_
#define INSIGHTNOTES_TXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace insightnotes::txt {

struct TokenizerOptions {
  bool lowercase = true;
  bool remove_stopwords = true;
  bool stem = true;
  /// Tokens shorter than this (after normalization) are dropped.
  size_t min_token_length = 2;
};

/// Stateless, reusable tokenizer.
class Tokenizer {
 public:
  Tokenizer() = default;
  explicit Tokenizer(TokenizerOptions options) : options_(options) {}

  /// Splits `text` into normalized term tokens.
  std::vector<std::string> Tokenize(std::string_view text) const;

  const TokenizerOptions& options() const { return options_; }

 private:
  TokenizerOptions options_;
};

}  // namespace insightnotes::txt

#endif  // INSIGHTNOTES_TXT_TOKENIZER_H_
