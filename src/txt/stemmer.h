// Porter stemmer (M.F. Porter, 1980): reduces English words to stems so
// that inflected forms ("observing", "observed", "observes") collapse to a
// common term for classification and similarity purposes.

#ifndef INSIGHTNOTES_TXT_STEMMER_H_
#define INSIGHTNOTES_TXT_STEMMER_H_

#include <string>
#include <string_view>

namespace insightnotes::txt {

/// Returns the Porter stem of `word`. `word` must already be lower-case
/// ASCII; non-alphabetic input is returned unchanged.
std::string PorterStem(std::string_view word);

}  // namespace insightnotes::txt

#endif  // INSIGHTNOTES_TXT_STEMMER_H_
