#include "txt/tokenizer.h"

#include <cctype>

#include "txt/stemmer.h"
#include "txt/stopwords.h"

namespace insightnotes::txt {

std::vector<std::string> Tokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&]() {
    if (current.size() < options_.min_token_length) {
      current.clear();
      return;
    }
    if (options_.remove_stopwords && IsStopword(current)) {
      current.clear();
      return;
    }
    if (options_.stem) {
      tokens.push_back(PorterStem(current));
    } else {
      tokens.push_back(current);
    }
    current.clear();
  };
  for (char raw : text) {
    auto c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current.push_back(options_.lowercase ? static_cast<char>(std::tolower(c)) : raw);
    } else {
      flush();
    }
  }
  flush();
  return tokens;
}

}  // namespace insightnotes::txt
