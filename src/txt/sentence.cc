#include "txt/sentence.h"

#include <array>
#include <cctype>

#include "common/string_util.h"

namespace insightnotes::txt {

namespace {

// Trailing words after which a '.' does not end a sentence.
constexpr std::array<std::string_view, 10> kAbbreviations = {
    "dr", "mr", "mrs", "ms", "prof", "e.g", "i.e", "etc", "vs", "fig"};

bool EndsWithAbbreviation(std::string_view text_before_dot) {
  // Extract the final word (letters and internal dots only).
  size_t end = text_before_dot.size();
  size_t start = end;
  while (start > 0) {
    char c = text_before_dot[start - 1];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '.') {
      --start;
    } else {
      break;
    }
  }
  if (start == end) return false;
  std::string word = ToLower(text_before_dot.substr(start, end - start));
  for (std::string_view abbr : kAbbreviations) {
    if (word == abbr) return true;
  }
  return false;
}

}  // namespace

std::vector<std::string> SplitSentences(std::string_view text) {
  std::vector<std::string> sentences;
  std::string current;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '\n') {
      std::string_view stripped = StripWhitespace(current);
      if (!stripped.empty()) sentences.emplace_back(stripped);
      current.clear();
      continue;
    }
    current.push_back(c);
    if (c == '!' || c == '?' ||
        (c == '.' && !EndsWithAbbreviation(
                         std::string_view(current).substr(0, current.size() - 1)))) {
      // A terminator followed by end-of-text, whitespace, or a quote closes
      // the sentence; "3.14" stays together because the next char is a digit.
      bool boundary = (i + 1 >= text.size()) ||
                      std::isspace(static_cast<unsigned char>(text[i + 1])) ||
                      text[i + 1] == '"' || text[i + 1] == '\'';
      if (boundary) {
        std::string_view stripped = StripWhitespace(current);
        if (!stripped.empty()) sentences.emplace_back(stripped);
        current.clear();
      }
    }
  }
  std::string_view stripped = StripWhitespace(current);
  if (!stripped.empty()) sentences.emplace_back(stripped);
  return sentences;
}

}  // namespace insightnotes::txt
