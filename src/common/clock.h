// Wall-clock timing helpers for benches and the zoom-in cache's recency
// bookkeeping. The cache takes a Clock interface so tests can inject a
// deterministic logical clock.

#ifndef INSIGHTNOTES_COMMON_CLOCK_H_
#define INSIGHTNOTES_COMMON_CLOCK_H_

#include <chrono>
#include <cstdint>

namespace insightnotes {

/// Abstract monotonically non-decreasing tick source.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in nanoseconds from an arbitrary epoch.
  virtual int64_t NowNanos() = 0;
};

/// Real steady-clock implementation.
class SteadyClock final : public Clock {
 public:
  int64_t NowNanos() override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }
};

/// Manually advanced clock for tests.
class ManualClock final : public Clock {
 public:
  int64_t NowNanos() override { return now_; }
  void AdvanceNanos(int64_t delta) { now_ += delta; }

 private:
  int64_t now_ = 0;
};

/// Scoped stopwatch.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace insightnotes

#endif  // INSIGHTNOTES_COMMON_CLOCK_H_
