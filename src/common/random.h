// Deterministic PRNG used by the workload generators, tests and benches.
// A thin splitmix64/xoshiro-style generator: explicit seed, reproducible
// across platforms (unlike std::default_random_engine distributions).

#ifndef INSIGHTNOTES_COMMON_RANDOM_H_
#define INSIGHTNOTES_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace insightnotes {

/// Deterministic 64-bit PRNG with convenience samplers. Not cryptographic.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed + 0x9e3779b97f4a7c15ULL) {}

  /// Next raw 64-bit value (splitmix64).
  uint64_t NextUint64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound) { return NextUint64() % bound; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInRange(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextUint64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Zipf-distributed rank in [0, n) with skew `s` (s = 0 is uniform).
  /// Uses inverse-CDF over precomputed weights when n is small, otherwise
  /// rejection-free approximation via the harmonic CDF.
  uint64_t Zipf(uint64_t n, double s);

  /// Samples an index according to non-negative `weights` (need not sum to 1).
  size_t Weighted(const std::vector<double>& weights);

 private:
  uint64_t state_;
};

}  // namespace insightnotes

#endif  // INSIGHTNOTES_COMMON_RANDOM_H_
