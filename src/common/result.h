// Result<T>: value-or-Status, the return type of fallible value-producing
// functions throughout InsightNotes (see common/status.h for the error
// model).

#ifndef INSIGHTNOTES_COMMON_RESULT_H_
#define INSIGHTNOTES_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <type_traits>
#include <utility>

#include "common/status.h"

namespace insightnotes {

/// Holds either a T or a non-OK Status. Accessing the value of an errored
/// Result is a programming error (checked by assert in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status. Constructing a Result from
  /// an OK status is a bug: it would claim success without a value.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if errored.
  T value_or(T fallback) const& { return ok() ? *value_ : std::move(fallback); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace insightnotes

/// Evaluates `rexpr` (a Result<T>), propagating its Status on error,
/// otherwise assigning the value to `lhs`. `lhs` may include a declaration,
/// e.g. INSIGHTNOTES_ASSIGN_OR_RETURN(auto table, catalog.GetTable("r")).
#define INSIGHTNOTES_ASSIGN_OR_RETURN(lhs, rexpr)                          \
  INSIGHTNOTES_ASSIGN_OR_RETURN_IMPL_(                                     \
      INSIGHTNOTES_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define INSIGHTNOTES_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                        \
  if (!result.ok()) return result.status();                     \
  lhs = std::move(result).value()

#define INSIGHTNOTES_CONCAT_(a, b) INSIGHTNOTES_CONCAT_IMPL_(a, b)
#define INSIGHTNOTES_CONCAT_IMPL_(a, b) a##b

#endif  // INSIGHTNOTES_COMMON_RESULT_H_
