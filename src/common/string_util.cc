#include "common/string_util.h"

#include <cctype>

namespace insightnotes {

std::vector<std::string> Split(std::string_view input, char delim) {
  std::vector<std::string> parts;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(delim, start);
    if (pos == std::string_view::npos) {
      parts.emplace_back(input.substr(start));
      break;
    }
    parts.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
  return parts;
}

std::vector<std::string> SplitWhitespace(std::string_view input) {
  std::vector<std::string> parts;
  size_t i = 0;
  while (i < input.size()) {
    while (i < input.size() && std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    size_t start = i;
    while (i < input.size() && !std::isspace(static_cast<unsigned char>(input[i]))) ++i;
    if (i > start) parts.emplace_back(input.substr(start, i - start));
  }
  return parts;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view input) {
  size_t begin = 0;
  size_t end = input.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(input[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(input[end - 1]))) --end;
  return input.substr(begin, end - begin);
}

std::string ToLower(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view input) {
  std::string out(input);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::string Ellipsize(std::string_view s, size_t max_chars) {
  if (s.size() <= max_chars) return std::string(s);
  if (max_chars <= 3) return std::string(s.substr(0, max_chars));
  return std::string(s.substr(0, max_chars - 3)) + "...";
}

}  // namespace insightnotes
