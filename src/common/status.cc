#include "common/status.h"

namespace insightnotes {

namespace {
const std::string kEmptyString;
}  // namespace

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "ok";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kNotImplemented:
      return "not implemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kIoError:
      return "io error";
    case StatusCode::kParseError:
      return "parse error";
    case StatusCode::kTypeError:
      return "type error";
    case StatusCode::kCapacityExceeded:
      return "capacity exceeded";
    case StatusCode::kCorruption:
      return "corruption";
    case StatusCode::kCancelled:
      return "cancelled";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
  }
  return "unknown";
}

Status::Status(StatusCode code, std::string message) {
  if (code != StatusCode::kOk) {
    rep_ = std::make_shared<const Rep>(Rep{code, std::move(message)});
  }
}

const std::string& Status::message() const {
  return rep_ == nullptr ? kEmptyString : rep_->message;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string result(StatusCodeToString(code()));
  result += ": ";
  result += message();
  return result;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  return Status(code(), std::move(msg));
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace insightnotes
