// Hashing helpers: FNV-1a for strings/bytes and boost-style hash combining.

#ifndef INSIGHTNOTES_COMMON_HASH_H_
#define INSIGHTNOTES_COMMON_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace insightnotes {

/// 64-bit FNV-1a over arbitrary bytes.
inline uint64_t Fnv1a64(const void* data, size_t len) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = 14695981039346656037ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= 1099511628211ULL;
  }
  return h;
}

inline uint64_t Fnv1a64(std::string_view s) { return Fnv1a64(s.data(), s.size()); }

namespace internal_hash {

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) lookup table, built at
/// compile time.
struct Crc32Table {
  uint32_t entries[256];
  constexpr Crc32Table() : entries{} {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      entries[i] = c;
    }
  }
};

inline constexpr Crc32Table kCrc32Table{};

}  // namespace internal_hash

/// CRC-32 (IEEE 802.3) over arbitrary bytes. Pass a previous result as
/// `crc` to checksum data incrementally.
inline uint32_t Crc32(const void* data, size_t len, uint32_t crc = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < len; ++i) {
    crc = internal_hash::kCrc32Table.entries[(crc ^ p[i]) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

inline uint32_t Crc32(std::string_view s) { return Crc32(s.data(), s.size()); }

/// Combines `value`'s hash into `seed` (boost::hash_combine recipe, 64-bit).
template <typename T>
inline void HashCombine(uint64_t* seed, const T& value) {
  *seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

}  // namespace insightnotes

#endif  // INSIGHTNOTES_COMMON_HASH_H_
