// Status: the error-reporting vocabulary type of InsightNotes.
//
// Library code does not throw exceptions. Fallible functions return Status
// (or Result<T>, see common/result.h) and callers propagate with the
// INSIGHTNOTES_RETURN_IF_ERROR macro. This mirrors the Arrow / RocksDB
// convention for database systems code.

#ifndef INSIGHTNOTES_COMMON_STATUS_H_
#define INSIGHTNOTES_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace insightnotes {

enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kNotImplemented = 5,
  kInternal = 6,
  kIoError = 7,
  kParseError = 8,
  kTypeError = 9,
  kCapacityExceeded = 10,
  kCorruption = 11,
  kCancelled = 12,
  kDeadlineExceeded = 13,
  kResourceExhausted = 14,
};

/// Returns the canonical lower-case name of a status code ("ok",
/// "invalid argument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// A Status holds either success (OK) or an error code plus a human-readable
/// message. OK carries no allocation; error states share an immutable
/// representation, so Status is cheap to copy and move.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message);

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ == nullptr ? StatusCode::kOk : rep_->code; }
  /// The error message; empty for OK.
  const std::string& message() const;

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsIoError() const { return code() == StatusCode::kIoError; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsCapacityExceeded() const { return code() == StatusCode::kCapacityExceeded; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const { return code() == StatusCode::kDeadlineExceeded; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status whose message is prefixed with `context`.
  /// OK statuses are returned unchanged.
  Status WithContext(std::string_view context) const;

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };
  // nullptr <=> OK. shared_ptr keeps copies cheap; Status is immutable.
  std::shared_ptr<const Rep> rep_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace insightnotes

/// Propagates a non-OK Status to the caller.
#define INSIGHTNOTES_RETURN_IF_ERROR(expr)                  \
  do {                                                      \
    ::insightnotes::Status _status = (expr);                \
    if (!_status.ok()) return _status;                      \
  } while (false)

#endif  // INSIGHTNOTES_COMMON_STATUS_H_
