// Small string helpers shared across modules.

#ifndef INSIGHTNOTES_COMMON_STRING_UTIL_H_
#define INSIGHTNOTES_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace insightnotes {

/// Splits `input` on `delim`, keeping empty fields.
std::vector<std::string> Split(std::string_view input, char delim);

/// Splits `input` on any run of whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view input);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

/// ASCII lower-case copy.
std::string ToLower(std::string_view input);

/// ASCII upper-case copy.
std::string ToUpper(std::string_view input);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// Truncates `s` to at most `max_chars` characters, appending "..." when
/// truncation happened. Used when rendering snippets and representatives.
std::string Ellipsize(std::string_view s, size_t max_chars);

}  // namespace insightnotes

#endif  // INSIGHTNOTES_COMMON_STRING_UTIL_H_
