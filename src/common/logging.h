// Minimal leveled logger. Logging is off by default at DEBUG level; the
// engine and benches raise verbosity explicitly. Not thread-safe beyond the
// atomicity of single stream insertions (adequate for this codebase, which
// is single-threaded per engine instance).

#ifndef INSIGHTNOTES_COMMON_LOGGING_H_
#define INSIGHTNOTES_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace insightnotes {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Returns the process-wide minimum level that is actually emitted.
LogLevel GetLogLevel();

/// Sets the process-wide minimum emitted level.
void SetLogLevel(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and emits it to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging
}  // namespace insightnotes

#define INSIGHTNOTES_LOG(level)                                     \
  ::insightnotes::internal_logging::LogMessage(                     \
      ::insightnotes::LogLevel::k##level, __FILE__, __LINE__)

#endif  // INSIGHTNOTES_COMMON_LOGGING_H_
