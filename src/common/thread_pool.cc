#include "common/thread_pool.h"

#include <algorithm>

namespace insightnotes {

ThreadPool::ThreadPool(size_t num_threads, size_t max_queued)
    : max_queued_(std::max<size_t>(max_queued, 1)) {
  workers_.reserve(std::max<size_t>(num_threads, 1));
  for (size_t i = 0; i < std::max<size_t>(num_threads, 1); ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Enqueue(std::function<void()> job) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this]() { return queue_.size() < max_queued_ || shutdown_; });
    if (shutdown_) {
      // Submitting during shutdown: the packaged_task is dropped and its
      // future reports broken_promise rather than running on a dead pool.
      return;
    }
    queue_.push_back(std::move(job));
  }
  not_empty_.notify_one();
}

void ThreadPool::WaitIdle() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_.wait(lock, [this]() { return queue_.empty() && running_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this]() { return !queue_.empty() || shutdown_; });
      // Graceful shutdown: keep draining until the queue is empty.
      if (queue_.empty()) return;
      job = std::move(queue_.front());
      queue_.pop_front();
      ++running_;
    }
    not_full_.notify_one();
    job();
    {
      std::unique_lock<std::mutex> lock(mutex_);
      --running_;
      if (queue_.empty() && running_ == 0) idle_.notify_all();
    }
  }
}

}  // namespace insightnotes
