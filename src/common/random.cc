#include "common/random.h"

#include <cmath>

namespace insightnotes {

uint64_t Random::Zipf(uint64_t n, double s) {
  if (n == 0) return 0;
  if (s <= 0.0) return Uniform(n);
  // Inverse-CDF sampling over H(n, s). For the sizes used here (n up to a
  // few million), a binary search over the partial harmonic sums computed
  // with the integral approximation is accurate and fast.
  // CDF(k) ~= (k^{1-s} - 1) / (n^{1-s} - 1) for s != 1, log form for s == 1.
  double u = NextDouble();
  double k;
  if (std::fabs(s - 1.0) < 1e-9) {
    // CDF(k) = ln(k+1) / ln(n+1)
    k = std::exp(u * std::log(static_cast<double>(n) + 1.0)) - 1.0;
  } else {
    double one_minus_s = 1.0 - s;
    double denom = std::pow(static_cast<double>(n) + 1.0, one_minus_s) - 1.0;
    k = std::pow(u * denom + 1.0, 1.0 / one_minus_s) - 1.0;
  }
  auto rank = static_cast<uint64_t>(k);
  if (rank >= n) rank = n - 1;
  return rank;
}

size_t Random::Weighted(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0 || weights.empty()) return 0;
  double u = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (u < acc) return i;
  }
  return weights.size() - 1;
}

}  // namespace insightnotes
