// Fixed-size worker pool with a bounded work queue — the engine's
// concurrency substrate (parallel annotation ingest, future parallel
// operators). Submit() hands back a std::future; when the queue is at
// capacity it blocks the producer (backpressure) rather than growing
// without bound. Destruction is graceful: already-queued work is drained
// before the workers join.

#ifndef INSIGHTNOTES_COMMON_THREAD_POOL_H_
#define INSIGHTNOTES_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace insightnotes {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least one). `max_queued` bounds the
  /// number of not-yet-started jobs; Submit blocks once it is reached.
  explicit ThreadPool(size_t num_threads, size_t max_queued = 1024);

  /// Drains the queue, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. Exceptions thrown
  /// by `fn` surface through the future. Blocks while the queue is full.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task]() { (*task)(); });
    return future;
  }

  /// Blocks until every queued and running job has finished.
  void WaitIdle();

  size_t num_threads() const { return workers_.size(); }
  size_t max_queued() const { return max_queued_; }

 private:
  void Enqueue(std::function<void()> job);
  void WorkerLoop();

  const size_t max_queued_;
  std::mutex mutex_;
  std::condition_variable not_empty_;  // Workers wait for jobs.
  std::condition_variable not_full_;   // Producers wait for queue space.
  std::condition_variable idle_;       // WaitIdle waits for quiescence.
  std::deque<std::function<void()>> queue_;
  size_t running_ = 0;    // Jobs currently executing on a worker.
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace insightnotes

#endif  // INSIGHTNOTES_COMMON_THREAD_POOL_H_
