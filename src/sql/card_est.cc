#include "sql/card_est.h"

#include <algorithm>

namespace insightnotes::sql {

namespace {

double Clamp01(double s) { return std::min(1.0, std::max(0.0, s)); }

/// Flips an asymmetric comparison for <literal> <op> <column> normalization.
rel::CompareOp FlipOp(rel::CompareOp op) {
  switch (op) {
    case rel::CompareOp::kLt: return rel::CompareOp::kGt;
    case rel::CompareOp::kLe: return rel::CompareOp::kGe;
    case rel::CompareOp::kGt: return rel::CompareOp::kLt;
    case rel::CompareOp::kGe: return rel::CompareOp::kLe;
    default: return op;
  }
}

double DefaultForOp(rel::CompareOp op) {
  switch (op) {
    case rel::CompareOp::kEq: return kDefaultEqSelectivity;
    case rel::CompareOp::kNe: return 1.0 - kDefaultEqSelectivity;
    default: return kDefaultRangeSelectivity;
  }
}

const rel::ColumnStats* StatsFor(const rel::Schema& schema,
                                 const std::string& name,
                                 const rel::TableStats* stats) {
  if (stats == nullptr) return nullptr;
  Result<size_t> index = schema.IndexOf(name);
  if (!index.ok() || *index >= stats->columns.size()) return nullptr;
  return &stats->columns[*index];
}

double CompareSelectivity(const AstExpr& pred, const rel::Schema& schema,
                          const rel::TableStats* stats) {
  // Normalize to <column> <op> <literal>.
  const AstExpr* column = nullptr;
  const AstExpr* literal = nullptr;
  rel::CompareOp op = pred.compare_op;
  if (pred.left->kind == AstExpr::Kind::kColumn &&
      pred.right->kind == AstExpr::Kind::kLiteral) {
    column = pred.left.get();
    literal = pred.right.get();
  } else if (pred.right->kind == AstExpr::Kind::kColumn &&
             pred.left->kind == AstExpr::Kind::kLiteral) {
    column = pred.right.get();
    literal = pred.left.get();
    op = FlipOp(op);
  } else {
    return DefaultForOp(op);
  }
  const rel::ColumnStats* cs = StatsFor(schema, column->name, stats);
  if (cs == nullptr) return DefaultForOp(op);
  const rel::Value& v = literal->value;
  switch (op) {
    case rel::CompareOp::kEq:
      return Clamp01(cs->EqSelectivity(v));
    case rel::CompareOp::kNe:
      return Clamp01(1.0 - cs->EqSelectivity(v));
    case rel::CompareOp::kLt:
      return Clamp01(cs->RangeSelectivity(nullptr, false, &v, false));
    case rel::CompareOp::kLe:
      return Clamp01(cs->RangeSelectivity(nullptr, false, &v, true));
    case rel::CompareOp::kGt:
      return Clamp01(cs->RangeSelectivity(&v, false, nullptr, false));
    case rel::CompareOp::kGe:
      return Clamp01(cs->RangeSelectivity(&v, true, nullptr, false));
  }
  return kDefaultUnknownSelectivity;
}

}  // namespace

double EstimateSelectivity(const AstExpr& pred, const rel::Schema& schema,
                           const rel::TableStats* stats) {
  switch (pred.kind) {
    case AstExpr::Kind::kCompare:
      return CompareSelectivity(pred, schema, stats);
    case AstExpr::Kind::kLogical: {
      double l = EstimateSelectivity(*pred.left, schema, stats);
      double r = EstimateSelectivity(*pred.right, schema, stats);
      // Independence assumption: AND multiplies, OR inclusion-excludes.
      if (pred.logical_op == rel::LogicalOp::kAnd) return Clamp01(l * r);
      return Clamp01(l + r - l * r);
    }
    case AstExpr::Kind::kNot:
      return Clamp01(1.0 - EstimateSelectivity(*pred.left, schema, stats));
    default:
      return kDefaultUnknownSelectivity;
  }
}

double ColumnNdv(const rel::Schema& schema, const std::string& name,
                 const rel::TableStats* stats, double fallback) {
  const rel::ColumnStats* cs = StatsFor(schema, name, stats);
  if (cs == nullptr || cs->ndv == 0) return std::max(1.0, fallback);
  return std::max(1.0, static_cast<double>(cs->ndv));
}

double EstimateJoinRows(double left_rows, double right_rows, double left_ndv,
                        double right_ndv) {
  left_rows = std::max(0.0, left_rows);
  right_rows = std::max(0.0, right_rows);
  double l = std::max(1.0, std::min(left_ndv, std::max(1.0, left_rows)));
  double r = std::max(1.0, std::min(right_ndv, std::max(1.0, right_rows)));
  return left_rows * right_rows / std::max(l, r);
}

}  // namespace insightnotes::sql
